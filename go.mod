module narada

go 1.22
