package narada

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"narada/internal/bdn"
	"narada/internal/broker"
	"narada/internal/core"
	"narada/internal/fragment"
	"narada/internal/reliable"
	"narada/internal/simnet"
	"narada/internal/testbed"
	"narada/internal/topology"
)

// TestFullSystemStory is the capstone integration test: one deployment
// exercising the complete life of an entity in the messaging infrastructure —
// discovery of the nearest broker, connection, subscription, cross-network
// delivery, reliable streams, fragmentation, replay of missed history, and
// survival of a BDN failure.
func TestFullSystemStory(t *testing.T) {
	specs := testbed.PaperBrokers()
	tb, err := testbed.New(testbed.Options{
		Topology:     topology.Star,
		InjectPolicy: bdn.InjectClosestFarthest,
		Scale:        200,
		Seed:         2026,
		Brokers:      specs,
		BDNCount:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	// Act 1 — discovery: a Bloomington client finds its nearest broker.
	d := tb.NewDiscoverer(simnet.SiteBloomington, "story-client", core.Config{
		CollectWindow: 2 * time.Second,
		MaxResponses:  5,
	})
	res, err := d.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responses) != 5 || res.Via != core.ViaBDN {
		t.Fatalf("discovery degraded: %d responses via %s", len(res.Responses), res.Via)
	}

	// Act 2 — pub/sub across the network: subscribe at the discovered
	// broker, publish from the far side of the WAN.
	node := tb.ClientNode(simnet.SiteBloomington, "story-app")
	client, err := broker.Connect(node, res.Selected.Endpoint("tcp"), "story-app")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Subscribe("story/**"); err != nil {
		t.Fatal(err)
	}
	tb.Net.Clock().Sleep(200 * time.Millisecond)
	if err := tb.BrokerByName("broker-cardiff").Publish("story/hello", []byte("transatlantic")); err != nil {
		t.Fatal(err)
	}
	ev, err := client.Next(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(ev.Payload) != "transatlantic" {
		t.Fatalf("payload = %q", ev.Payload)
	}

	// Act 3 — a large dataset moves reliably and fragmented across the
	// network.
	subNode := tb.ClientNode(simnet.SiteFSU, "story-consumer")
	subClient, err := broker.Connect(subNode, tb.BrokerByName("broker-fsu").StreamAddr(), "story-consumer")
	if err != nil {
		t.Fatal(err)
	}
	defer subClient.Close()
	sub := reliable.NewSubscriber(subClient)
	defer sub.Close()
	if err := sub.Subscribe("story/data/*"); err != nil {
		t.Fatal(err)
	}
	tb.Net.Clock().Sleep(200 * time.Millisecond)

	pubClient, err := broker.Connect(node, res.Selected.Endpoint("tcp"), "story-producer")
	if err != nil {
		t.Fatal(err)
	}
	defer pubClient.Close()
	pub, err := reliable.NewPublisher(node, pubClient, reliable.PublisherConfig{
		Source: "story-producer", RedeliverAfter: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	var sb bytes.Buffer
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&sb, "row-%05d,value=%d\n", i, i*i)
	}
	dataset := sb.Bytes()
	frags, err := fragment.Split(dataset, fragment.Config{Compress: true, FragmentSize: 8192})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frags {
		if err := pub.Publish("story/data/run1", fragment.Encode(f)); err != nil {
			t.Fatal(err)
		}
	}
	co := fragment.NewCoalescer(0, nil)
	deadline := time.Now().Add(30 * time.Second)
	var rebuilt []byte
	for rebuilt == nil && time.Now().Before(deadline) {
		env, err := sub.Next(5 * time.Second)
		if err != nil {
			continue
		}
		f, err := fragment.Decode(env.Payload)
		if err != nil {
			t.Fatal(err)
		}
		payload, done, err := co.Add(f)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			rebuilt = payload
		}
	}
	if !bytes.Equal(rebuilt, dataset) {
		t.Fatalf("dataset corrupted in transit: %d vs %d bytes", len(rebuilt), len(dataset))
	}

	// Act 4 — the primary BDN dies; rediscovery succeeds via the secondary.
	tb.BDNs[0].Close()
	cfg := d.Config()
	cfg.AckTimeout = 300 * time.Millisecond
	cfg.MaxRetransmits = 1
	d2 := tb.NewDiscoverer(simnet.SiteBloomington, "story-client-2", cfg)
	res2, err := d2.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Via != core.ViaBDN || res2.BDN == res.BDN {
		t.Fatalf("failover did not engage: via=%s bdn=%s", res2.Via, res2.BDN)
	}
}
