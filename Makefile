GO ?= go

.PHONY: all build test race vet fmt-check verify bench bench-gate fuzz obs-smoke health-smoke chaos-smoke loadgen-smoke flows-smoke events-smoke profiles-smoke durability-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# verify is the tier-1 gate: everything must pass before a merge.
verify: build vet fmt-check test race

# bench runs the publish fast-path micro-benchmarks that back
# BENCH_fastpath.json (fan-out, topic matching, codec, dedup).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkPublishFanout' -benchmem -benchtime=2s ./internal/broker/
	$(GO) test -run '^$$' -bench 'BenchmarkTableMatch' -benchmem -benchtime=2s ./internal/topics/
	$(GO) test -run '^$$' -bench 'BenchmarkEventCodec' -benchmem -benchtime=2s ./internal/event/
	$(GO) test -run '^$$' -bench 'BenchmarkSeenParallel' -benchmem -benchtime=2s ./internal/dedup/

# bench-gate re-runs the publish fan-out benchmark and fails on a >2% ns/op
# regression or any allocs/op above the gates recorded in BENCH_fanout.json.
bench-gate:
	sh scripts/bench_gate.sh

# loadgen-smoke boots a real broker on loopback and drives the open-loop load
# generator through two fixed-rate stages, asserting zero loss and sane
# latency percentiles in the JSON report.
loadgen-smoke:
	sh scripts/loadgen_smoke.sh

# obs-smoke boots a real broker with -telemetry-addr and checks /healthz and
# the /metrics exposition, then a BDN + broker + obscollect fabric and
# asserts one synthetic probe trace assembles end to end.
obs-smoke:
	sh scripts/obs_smoke.sh

# health-smoke boots a BDN + 2 brokers + obscollect on real sockets, kills a
# broker and asserts the deadman alert fires on /alerts, then resolves once a
# broker under the same identity restarts.
health-smoke:
	sh scripts/health_smoke.sh

# flows-smoke boots an obscollect + a broker with the publish sampler enabled
# and drives loadgen traffic through it, asserting the collector's /flows
# endpoint accounts the topic and at least one message trace assembles.
flows-smoke:
	sh scripts/flows_smoke.sh

# chaos-smoke boots a BDN + supervised broker on real sockets, kills and
# restarts the BDN on the same port, and asserts the broker re-registers
# itself and discovery keeps selecting it.
chaos-smoke:
	sh scripts/chaos_smoke.sh

# events-smoke boots a BDN + 2 linked brokers + obscollect on real sockets,
# kill -9s the dialed broker, and asserts the survivor's link_down and
# reconnect burst reach /events, /topology?at= time-travels across the
# teardown, and the deadman alert embeds its correlated event window.
events-smoke:
	sh scripts/events_smoke.sh

# profiles-smoke boots a BDN + 2 profiling brokers + obscollect on real
# sockets with loadgen traffic, asserts periodic pprof captures are pulled
# into the collector's /profiles (spooled on disk, rendered by ?view=top),
# then kill -9s a broker and asserts the deadman alert links the node's
# retained captures — the flight recorder's dead-node fallback.
profiles-smoke:
	sh scripts/profiles_smoke.sh

# durability-smoke boots a 3-member replicated BDN cluster (-data-dir,
# -peers, -lease) + 2 supervised brokers on real sockets, SIGKILLs the
# primary, and asserts a standby promotes with the full replicated table,
# discovery keeps answering, and the brokers' bdn reconnect counters stay
# at zero — failover without a single re-registration.
durability-smoke:
	sh scripts/durability_smoke.sh

# ci is the full pre-merge pipeline: verify + obs-smoke.
ci:
	sh scripts/ci.sh

# fuzz gives the differential fuzzers a short budget each; CI-friendly.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzTableMatchDifferential -fuzztime 30s ./internal/topics/
	$(GO) test -run '^$$' -fuzz FuzzTableCOWvsLocked -fuzztime 30s ./internal/topics/
