package broker

import (
	"sync"
	"sync/atomic"

	"narada/internal/obs"
	"narada/internal/transport"
)

// egressQueueSize bounds the frames queued in front of one connection. At
// 512 frames a slow peer can lag ~half a second of full-rate traffic before
// the overflow policy kicks in, while a dead peer costs at most one queue of
// memory instead of a stalled routing loop.
const egressQueueSize = 512

// maxCoalesce bounds how many queued frames one writer wakeup drains into a
// single flush. Large enough to amortise the per-write cost (syscall on real
// sockets) under load, small enough that one flush cannot monopolise the
// connection against control traffic queued behind it.
const maxCoalesce = 64

// egress is the bounded asynchronous outbound queue in front of every link
// and client connection. The routing loop enqueues ref-counted shared frames
// and moves on; a dedicated writer goroutine drains the queue into the
// connection, so one slow or dead peer no longer head-of-line-blocks
// delivery to everyone else. Each wakeup the writer drains every queued
// frame (up to maxCoalesce) and writes them as one batch — a single
// vectored write on transports that support it — so under load the
// per-frame syscall cost amortises away.
//
// Two enqueue disciplines implement the fabric's policies:
//
//   - sendData (publishes, discovery floods): never blocks; when the queue
//     is full the oldest queued frame is dropped and counted, trading
//     completeness for liveness exactly like the client-side inbox.
//   - sendControl (interest updates, heartbeats): never dropped; blocks
//     until queued, applying bounded backpressure for the small volume of
//     correctness-critical control traffic.
//
// Every frame enqueued transfers one reference to the queue; the writer (or
// the teardown drain) releases it after the write. A frame rejected at
// enqueue time is released immediately, so callers never need to track
// whether the queue accepted it.
type egress struct {
	conn  transport.Conn
	batch transport.BatchSender // non-nil when conn supports vectored writes
	ch    chan *sharedFrame

	stopOnce sync.Once
	stop     chan struct{} // ask the writer to flush and exit
	dead     chan struct{} // closed when the writer has exited
	down     atomic.Bool   // writer gone: reject new frames without queuing

	frames []*sharedFrame // writer-local coalescing scratch
	bufs   [][]byte       // writer-local batch view of frames

	dropped  *obs.Counter   // broker-wide overflow counter
	perFlush *obs.Histogram // frames per writer flush; nil in bare tests
}

func newEgress(conn transport.Conn, dropped *obs.Counter, perFlush *obs.Histogram) *egress {
	b, _ := conn.(transport.BatchSender)
	return &egress{
		conn:     conn,
		batch:    b,
		ch:       make(chan *sharedFrame, egressQueueSize),
		stop:     make(chan struct{}),
		dead:     make(chan struct{}),
		frames:   make([]*sharedFrame, 0, maxCoalesce),
		bufs:     make([][]byte, 0, maxCoalesce),
		dropped:  dropped,
		perFlush: perFlush,
	}
}

// run drains the queue into the connection until the connection fails or a
// close flushes the queue. A failed send closes the connection so the
// owning recv loop tears the session down. On exit the queue is marked down
// and drained, releasing every undelivered frame back to its pool.
func (q *egress) run() {
	defer close(q.dead)
	defer q.drainRelease()
	for {
		select {
		case f := <-q.ch:
			if !q.writeCoalesced(f) {
				return
			}
		case <-q.stop:
			q.flush()
			return
		}
	}
}

// writeCoalesced drains whatever else is already queued behind first (up to
// maxCoalesce) and writes the run as one batch. It reports false when the
// connection failed.
func (q *egress) writeCoalesced(first *sharedFrame) bool {
	q.frames = append(q.frames[:0], first)
drain:
	for len(q.frames) < maxCoalesce {
		select {
		case f := <-q.ch:
			q.frames = append(q.frames, f)
		default:
			break drain
		}
	}
	if q.perFlush != nil {
		q.perFlush.Observe(float64(len(q.frames)))
	}
	var err error
	if q.batch != nil && len(q.frames) > 1 {
		q.bufs = q.bufs[:0]
		for _, f := range q.frames {
			q.bufs = append(q.bufs, f.bytes())
		}
		err = q.batch.SendBatch(q.bufs)
	} else {
		for _, f := range q.frames {
			if err = q.conn.Send(f.bytes()); err != nil {
				break
			}
		}
	}
	for i, f := range q.frames {
		f.release()
		q.frames[i] = nil
	}
	if err != nil {
		_ = q.conn.Close()
		return false
	}
	return true
}

// flush best-effort drains whatever is queued at close time; frames that
// fail to send (connection already down) are released by the exit drain.
func (q *egress) flush() {
	for {
		select {
		case f := <-q.ch:
			if !q.writeCoalesced(f) {
				return
			}
		default:
			return
		}
	}
}

// drainRelease marks the queue down and releases every frame still queued,
// so no reference leaks when a connection dies with frames in flight.
func (q *egress) drainRelease() {
	q.down.Store(true)
	for {
		select {
		case f := <-q.ch:
			f.release()
		default:
			return
		}
	}
}

// close asks the writer to flush queued frames and exit. Safe to call more
// than once and concurrently with enqueues.
func (q *egress) close() {
	q.stopOnce.Do(func() { close(q.stop) })
}

// sendData enqueues an application/dissemination frame with the drop-oldest
// overflow policy, consuming the caller's reference either way.
func (q *egress) sendData(f *sharedFrame) {
	if q.down.Load() {
		f.release()
		return
	}
	select {
	case q.ch <- f:
		q.reapIfDown()
		return
	default:
	}
	// Queue full: evict the oldest frame, then retry once. A concurrent
	// writer drain can make room in between, in which case nothing is lost.
	select {
	case old := <-q.ch:
		old.release()
		q.dropped.Add(1)
	default:
	}
	select {
	case q.ch <- f:
		q.reapIfDown()
	default:
		f.release()
		q.dropped.Add(1)
	}
}

// reapIfDown closes the enqueue/teardown race: if the writer exited between
// our down-check and our enqueue, nothing will ever drain the frame we just
// queued. The down store happens before the writer's exit drain, so seeing
// down==false here guarantees the exit drain (which runs after) will reap
// our frame; seeing true means we must drain ourselves. Draining twice is
// harmless — every frame is received, and thus released, exactly once.
func (q *egress) reapIfDown() {
	if q.down.Load() {
		q.drainRelease()
	}
}

// depth returns the number of frames currently queued (telemetry only).
func (q *egress) depth() int { return len(q.ch) }

// sendControl enqueues a control frame that must not be dropped, blocking
// until there is room. It reports false when the writer has already exited
// (connection down) — a frame a dead writer will never deliver does not
// count as sent — so callers can stop producing; the frame's reference is
// consumed either way.
func (q *egress) sendControl(f *sharedFrame) bool {
	if q.down.Load() {
		f.release()
		return false
	}
	select {
	case q.ch <- f:
		if q.down.Load() { // writer exited concurrently; reap our frame
			q.drainRelease()
			return false
		}
		return true
	case <-q.dead:
		f.release()
		return false
	}
}
