package broker

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"narada/internal/obs"
	"narada/internal/transport"
)

// egressQueueSize bounds the frames queued in front of one connection. At
// 512 frames a slow peer can lag ~half a second of full-rate traffic before
// the overflow policy kicks in, while a dead peer costs at most one queue of
// memory instead of a stalled routing loop.
const egressQueueSize = 512

// maxCoalesce bounds how many queued frames one writer wakeup drains into a
// single flush. Large enough to amortise the per-write cost (syscall on real
// sockets) under load, small enough that one flush cannot monopolise the
// connection against control traffic queued behind it.
const maxCoalesce = 64

// maxEgressFrame is the largest encoded frame an egress queue accepts; bigger
// frames are dropped (and counted with reason frame_too_large) rather than
// handed to the transport, where a multi-megabyte write would stall the
// writer against every frame coalesced behind it.
const maxEgressFrame = 1 << 20

// egressTel bundles the instruments every egress queue records into. One
// instance is shared by all of a broker's queues; bare tests construct their
// own. The drop counters must be non-nil; everything else is optional (nil
// histograms/flow table/tracer are skipped or no-ops).
type egressTel struct {
	dropQueueFull *obs.Counter // bounded queue overflowed (drop-oldest)
	dropConnDown  *obs.Counter // writer already gone when the frame arrived
	dropTooLarge  *obs.Counter // frame exceeded maxEgressFrame

	perFlush *obs.Histogram   // frames per writer flush
	latency  *obs.Histogram   // narada_delivery_latency_seconds (born→flush)
	tracer   *obs.Tracer      // msg-flush / msg-drop spans for sampled frames
	now      func() time.Time // NTP-aligned clock for span/latency stamps
}

// clock returns the telemetry clock (wall clock when unset).
func (t *egressTel) clock() time.Time {
	if t.now != nil {
		return t.now()
	}
	return time.Now()
}

// egress is the bounded asynchronous outbound queue in front of every link
// and client connection. The routing loop enqueues ref-counted shared frames
// and moves on; a dedicated writer goroutine drains the queue into the
// connection, so one slow or dead peer no longer head-of-line-blocks
// delivery to everyone else. Each wakeup the writer drains every queued
// frame (up to maxCoalesce) and writes them as one batch — a single
// vectored write on transports that support it — so under load the
// per-frame syscall cost amortises away.
//
// Two enqueue disciplines implement the fabric's policies:
//
//   - sendData (publishes, discovery floods): never blocks; when the queue
//     is full the oldest queued frame is dropped and counted, trading
//     completeness for liveness exactly like the client-side inbox.
//   - sendControl (interest updates, heartbeats): never dropped; blocks
//     until queued, applying bounded backpressure for the small volume of
//     correctness-critical control traffic.
//
// Every frame enqueued transfers one reference to the queue; the writer (or
// the teardown drain) releases it after the write. A frame rejected at
// enqueue time is released immediately, so callers never need to track
// whether the queue accepted it.
type egress struct {
	conn  transport.Conn
	batch transport.BatchSender // non-nil when conn supports vectored writes
	ch    chan *sharedFrame

	stopOnce sync.Once
	stop     chan struct{} // ask the writer to flush and exit
	dead     chan struct{} // closed when the writer has exited
	down     atomic.Bool   // writer gone: reject new frames without queuing

	frames []*sharedFrame // writer-local coalescing scratch
	bufs   [][]byte       // writer-local batch view of frames

	tel  *egressTel // shared instruments; never nil
	dest string     // "local" (client) or "link", stamped on spans
}

func newEgress(conn transport.Conn, tel *egressTel, dest string) *egress {
	b, _ := conn.(transport.BatchSender)
	return &egress{
		conn:   conn,
		batch:  b,
		ch:     make(chan *sharedFrame, egressQueueSize),
		stop:   make(chan struct{}),
		dead:   make(chan struct{}),
		frames: make([]*sharedFrame, 0, maxCoalesce),
		bufs:   make([][]byte, 0, maxCoalesce),
		tel:    tel,
		dest:   dest,
	}
}

// drop accounts one dropped frame — counter by reason, per-topic flow tally
// via the entry handle routePublish stamped (no topic re-hashing: overflow
// eviction runs inside the publish hot loop), and an msg-drop trace event
// when the frame was sampled — then releases the caller's reference.
func (q *egress) drop(f *sharedFrame, reason int) {
	switch reason {
	case obs.DropConnDown:
		q.tel.dropConnDown.Add(1)
	case obs.DropFrameTooLarge:
		q.tel.dropTooLarge.Add(1)
	default:
		q.tel.dropQueueFull.Add(1)
	}
	f.flow.Dropped(reason)
	if f.traceID != "" && q.tel.tracer != nil {
		q.tel.tracer.Trace(f.traceID).Event("msg-drop", q.tel.clock(),
			obs.A("dest", q.dest), obs.A("reason", obs.DropReasonNames[reason]))
	}
	f.release()
}

// run drains the queue into the connection until the connection fails or a
// close flushes the queue. A failed send closes the connection so the
// owning recv loop tears the session down. On exit the queue is marked down
// and drained, releasing every undelivered frame back to its pool.
func (q *egress) run() {
	defer close(q.dead)
	defer q.drainRelease()
	for {
		select {
		case f := <-q.ch:
			if !q.writeCoalesced(f) {
				return
			}
		case <-q.stop:
			q.flush()
			return
		}
	}
}

// writeCoalesced drains whatever else is already queued behind first (up to
// maxCoalesce) and writes the run as one batch. It reports false when the
// connection failed.
func (q *egress) writeCoalesced(first *sharedFrame) bool {
	q.frames = append(q.frames[:0], first)
drain:
	for len(q.frames) < maxCoalesce {
		select {
		case f := <-q.ch:
			q.frames = append(q.frames, f)
		default:
			break drain
		}
	}
	if q.tel.perFlush != nil {
		q.tel.perFlush.Observe(float64(len(q.frames)))
	}
	var err error
	if q.batch != nil && len(q.frames) > 1 {
		q.bufs = q.bufs[:0]
		for _, f := range q.frames {
			q.bufs = append(q.bufs, f.bytes())
		}
		err = q.batch.SendBatch(q.bufs)
	} else {
		for _, f := range q.frames {
			if err = q.conn.Send(f.bytes()); err != nil {
				break
			}
		}
	}
	if err != nil {
		// The connection failed mid-flush. Frames already written by the
		// per-frame loop are conservatively counted with the rest: a failed
		// flush means the peer cannot be assumed to have received any of it.
		for i, f := range q.frames {
			q.drop(f, obs.DropConnDown)
			q.frames[i] = nil
		}
		_ = q.conn.Close()
		return false
	}
	q.observeFlushed()
	for i, f := range q.frames {
		f.release()
		q.frames[i] = nil
	}
	return true
}

// observeFlushed records delivery accounting for a successfully written
// batch: per-topic delivered tallies, the end-to-end delivery latency
// histogram (event origin → flush, on the NTP-aligned clock), and an
// msg-flush span per sampled frame whose duration is the wall-clock
// queue wait from egress enqueue to this flush. Clock reads happen once per
// batch, not per frame. Control and replay frames (no flow handle, no trace)
// are skipped entirely; the latency histogram additionally needs a born
// stamp, which publishers that set no Timestamp don't provide.
func (q *egress) observeFlushed() {
	var at time.Time // batch-wide clocks, read lazily on the first data frame
	var wallNs int64
	batch := len(q.frames)
	for _, f := range q.frames {
		if f.flow == nil && f.traceID == "" {
			continue
		}
		if wallNs == 0 {
			at = q.tel.clock()
			wallNs = time.Now().UnixNano()
		}
		if f.born != 0 && q.tel.latency != nil {
			if d := at.UnixNano() - f.born; d > 0 {
				q.tel.latency.Observe(time.Duration(d).Seconds())
			}
		}
		if f.flow != nil {
			f.flow.Delivered(len(f.buf))
		}
		if f.traceID != "" && q.tel.tracer != nil {
			wait := time.Duration(wallNs - f.enqueuedNs)
			if wait <= 0 {
				wait = time.Nanosecond // clock granularity; the wait happened
			}
			q.tel.tracer.Trace(f.traceID).Span("msg-flush", at, wait,
				obs.A("dest", q.dest), obs.A("batch", strconv.Itoa(batch)))
		}
	}
}

// flush best-effort drains whatever is queued at close time; frames that
// fail to send (connection already down) are released by the exit drain.
func (q *egress) flush() {
	for {
		select {
		case f := <-q.ch:
			if !q.writeCoalesced(f) {
				return
			}
		default:
			return
		}
	}
}

// drainRelease marks the queue down and releases every frame still queued,
// so no reference leaks when a connection dies with frames in flight. The
// undelivered frames are accounted as conn-down drops.
func (q *egress) drainRelease() {
	q.down.Store(true)
	for {
		select {
		case f := <-q.ch:
			q.drop(f, obs.DropConnDown)
		default:
			return
		}
	}
}

// close asks the writer to flush queued frames and exit. Safe to call more
// than once and concurrently with enqueues.
func (q *egress) close() {
	q.stopOnce.Do(func() { close(q.stop) })
}

// dropBatch accumulates queue-full eviction accounting across one fan-out's
// enqueues. When a publish overflows many egress queues at once — the storm
// case: every subscriber queue backed up behind the same hot topic — the
// per-eviction cost collapses to one atomic add per topic run instead of one
// per evicted frame, which matters because eviction happens inside the
// publish hot loop. Frames are still traced and released immediately; only
// the counter and flow-tally adds are deferred until settle.
type dropBatch struct {
	tel  *egressTel
	flow *obs.FlowEntry
	n    uint64
}

// evicted absorbs one queue-full eviction from queue q: the msg-drop trace
// event (sampled frames only) and the frame release happen now, the counting
// is batched.
func (d *dropBatch) evicted(q *egress, f *sharedFrame) {
	if f.flow != d.flow {
		d.settle()
		d.flow = f.flow
	}
	d.tel = q.tel
	d.n++
	if f.traceID != "" && q.tel.tracer != nil {
		q.tel.tracer.Trace(f.traceID).Event("msg-drop", q.tel.clock(),
			obs.A("dest", q.dest),
			obs.A("reason", obs.DropReasonNames[obs.DropQueueFull]))
	}
	f.release()
}

// settle flushes the accumulated evictions into the reason counter and the
// flow table. Must be called before the batch's owner releases it.
func (d *dropBatch) settle() {
	if d.n == 0 {
		return
	}
	d.tel.dropQueueFull.Add(d.n)
	d.flow.DroppedN(obs.DropQueueFull, d.n)
	d.n = 0
}

// sendData enqueues an application/dissemination frame with the drop-oldest
// overflow policy, consuming the caller's reference either way.
func (q *egress) sendData(f *sharedFrame) { q.sendDataBatch(f, nil) }

// sendDataBatch is sendData with optional batched eviction accounting: a
// non-nil db absorbs queue-full evictions for a later settle instead of
// counting each one immediately. The publish fan-out passes its per-scratch
// batch; everyone else passes nil.
func (q *egress) sendDataBatch(f *sharedFrame, db *dropBatch) {
	if q.down.Load() {
		q.drop(f, obs.DropConnDown)
		return
	}
	if len(f.buf) > maxEgressFrame {
		q.drop(f, obs.DropFrameTooLarge)
		return
	}
	select {
	case q.ch <- f:
		q.reapIfDown()
		return
	default:
	}
	// Queue full: evict the oldest frame, then retry once. A concurrent
	// writer drain can make room in between, in which case nothing is lost.
	select {
	case old := <-q.ch:
		if db != nil {
			db.evicted(q, old)
		} else {
			q.drop(old, obs.DropQueueFull)
		}
	default:
	}
	select {
	case q.ch <- f:
		q.reapIfDown()
	default:
		if db != nil {
			db.evicted(q, f)
		} else {
			q.drop(f, obs.DropQueueFull)
		}
	}
}

// reapIfDown closes the enqueue/teardown race: if the writer exited between
// our down-check and our enqueue, nothing will ever drain the frame we just
// queued. The down store happens before the writer's exit drain, so seeing
// down==false here guarantees the exit drain (which runs after) will reap
// our frame; seeing true means we must drain ourselves. Draining twice is
// harmless — every frame is received, and thus released, exactly once.
func (q *egress) reapIfDown() {
	if q.down.Load() {
		q.drainRelease()
	}
}

// depth returns the number of frames currently queued (telemetry only).
func (q *egress) depth() int { return len(q.ch) }

// sendControl enqueues a control frame that must not be dropped, blocking
// until there is room. It reports false when the writer has already exited
// (connection down) — a frame a dead writer will never deliver does not
// count as sent — so callers can stop producing; the frame's reference is
// consumed either way.
func (q *egress) sendControl(f *sharedFrame) bool {
	if q.down.Load() {
		q.drop(f, obs.DropConnDown)
		return false
	}
	select {
	case q.ch <- f:
		if q.down.Load() { // writer exited concurrently; reap our frame
			q.drainRelease()
			return false
		}
		return true
	case <-q.dead:
		q.drop(f, obs.DropConnDown)
		return false
	}
}
