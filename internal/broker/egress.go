package broker

import (
	"sync"

	"narada/internal/obs"
	"narada/internal/transport"
)

// egressQueueSize bounds the frames queued in front of one connection. At
// 512 frames a slow peer can lag ~half a second of full-rate traffic before
// the overflow policy kicks in, while a dead peer costs at most one queue of
// memory instead of a stalled routing loop.
const egressQueueSize = 512

// egress is the bounded asynchronous outbound queue in front of every link
// and client connection. The routing loop enqueues frames and moves on; a
// dedicated writer goroutine drains the queue into the connection, so one
// slow or dead peer no longer head-of-line-blocks delivery to everyone else.
//
// Two enqueue disciplines implement the fabric's policies:
//
//   - sendData (publishes, discovery floods): never blocks; when the queue
//     is full the oldest queued frame is dropped and counted, trading
//     completeness for liveness exactly like the client-side inbox.
//   - sendControl (interest updates, heartbeats): never dropped; blocks
//     until queued, applying bounded backpressure for the small volume of
//     correctness-critical control traffic.
type egress struct {
	conn transport.Conn
	ch   chan []byte

	stopOnce sync.Once
	stop     chan struct{} // ask the writer to flush and exit
	dead     chan struct{} // closed when the writer has exited

	dropped *obs.Counter // broker-wide overflow counter
}

func newEgress(conn transport.Conn, dropped *obs.Counter) *egress {
	return &egress{
		conn:    conn,
		ch:      make(chan []byte, egressQueueSize),
		stop:    make(chan struct{}),
		dead:    make(chan struct{}),
		dropped: dropped,
	}
}

// run drains the queue into the connection until the connection fails or a
// close flushes the queue. A failed send closes the connection so the
// owning recv loop tears the session down.
func (q *egress) run() {
	defer close(q.dead)
	for {
		select {
		case frame := <-q.ch:
			if q.conn.Send(frame) != nil {
				_ = q.conn.Close()
				return
			}
		case <-q.stop:
			q.flush()
			return
		}
	}
}

// flush best-effort drains whatever is queued at close time; frames that
// fail to send (connection already down) are discarded.
func (q *egress) flush() {
	for {
		select {
		case frame := <-q.ch:
			if q.conn.Send(frame) != nil {
				_ = q.conn.Close()
				return
			}
		default:
			return
		}
	}
}

// close asks the writer to flush queued frames and exit. Safe to call more
// than once and concurrently with enqueues.
func (q *egress) close() {
	q.stopOnce.Do(func() { close(q.stop) })
}

// sendData enqueues an application/dissemination frame with the drop-oldest
// overflow policy.
func (q *egress) sendData(frame []byte) {
	select {
	case q.ch <- frame:
		return
	default:
	}
	// Queue full: evict the oldest frame, then retry once. A concurrent
	// writer drain can make room in between, in which case nothing is lost.
	select {
	case <-q.ch:
		q.dropped.Add(1)
	default:
	}
	select {
	case q.ch <- frame:
	default:
		q.dropped.Add(1)
	}
}

// depth returns the number of frames currently queued (telemetry only).
func (q *egress) depth() int { return len(q.ch) }

// sendControl enqueues a control frame that must not be dropped, blocking
// until there is room. It reports false when the writer has already exited
// (connection down), so callers can stop producing.
func (q *egress) sendControl(frame []byte) bool {
	select {
	case q.ch <- frame:
		return true
	case <-q.dead:
		return false
	}
}
