package broker

import (
	"time"

	"narada/internal/core"
	"narada/internal/event"
	"narada/internal/obs"
	"narada/internal/supervise"
	"narada/internal/topics"
)

// Supervision kinds distinguish the two long-lived relationships a broker
// maintains: broker-to-broker links and BDN registrations. They key the
// Supervisor lookup and label the supervision metrics.
const (
	SuperviseLink = "link"
	SuperviseBDN  = "bdn"
)

// superviseDial establishes one supervised relationship: the first dial runs
// synchronously so the caller sees its error, and on success a supervise
// runner owns the relationship for the broker's lifetime — every time the
// session dies it redials under the configured backoff policy. dial must
// return a channel that closes when the session ends. Calling again for a
// relationship that is already supervised is a no-op.
func (b *Broker) superviseDial(kind, addr string, dial func(string) (<-chan struct{}, error)) error {
	key := kind + ":" + addr
	b.mu.Lock()
	select {
	case <-b.closed:
		b.mu.Unlock()
		return errClosed
	default:
	}
	if _, ok := b.supervisors[key]; ok {
		b.mu.Unlock()
		return nil
	}
	b.supervisors[key] = nil // reserve against a concurrent call
	b.mu.Unlock()

	initial, err := dial(addr)
	if err != nil {
		b.mu.Lock()
		delete(b.supervisors, key)
		b.mu.Unlock()
		return err
	}

	r := supervise.New(supervise.RunnerConfig{
		Target:  addr,
		Policy:  *b.cfg.Supervise,
		Clock:   b.node.Clock(),
		Dial:    func() (<-chan struct{}, error) { return dial(addr) },
		Initial: initial,
		Logger:  b.cfg.Logger.With("kind", kind),
		Journal: b.cfg.Journal,
		OnState: func(s supervise.State) { b.tel.setLinkState(kind, addr, s) },
		OnAttempt: func(ok bool) {
			b.tel.reconnectAttempt(kind)
			if ok {
				b.tel.reconnected(kind)
			}
		},
	})
	b.tel.setLinkState(kind, addr, supervise.Connected)

	b.mu.Lock()
	select {
	case <-b.closed:
		// Close already swept the supervisor map; this runner would never be
		// stopped, so do not start it.
		delete(b.supervisors, key)
		b.mu.Unlock()
		r.Stop()
		return errClosed
	default:
	}
	b.supervisors[key] = r
	b.mu.Unlock()
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		r.Run()
	}()
	return nil
}

// Supervisor returns the runner owning the supervised relationship of the
// given kind ("link" or "bdn") to addr, or nil when none exists.
func (b *Broker) Supervisor(kind, addr string) *supervise.Runner {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.supervisors[kind+":"+addr]
}

// advertisement assembles this broker's current advertisement, stamped with
// the configured TTL so BDN registrations age out unless refreshed.
func (b *Broker) advertisement() *event.Event {
	adv := &core.Advertisement{Broker: b.Info(), IssuedAt: b.now(), TTL: b.cfg.AdvertiseTTL}
	ev := event.New(event.TypeAdvertisement, topics.AdvertisementTopic, core.EncodeAdvertisement(adv))
	ev.Source = b.cfg.LogicalAddress
	ev.Timestamp = adv.IssuedAt
	return ev
}

// advertiseLoop periodically refreshes this broker's registrations: every
// AdvertiseInterval it re-sends the advertisement over each live BDN
// registration link, renewing the TTL deadline the BDN stamped. Refresh
// rides the control queue — registration freshness must not be crowded out
// by data traffic.
func (b *Broker) advertiseLoop() {
	defer b.wg.Done()
	clock := b.node.Clock()
	for {
		select {
		case <-b.closed:
			return
		case <-clock.After(b.cfg.AdvertiseInterval):
		}
		b.mu.Lock()
		bdns := make([]*link, 0, 2)
		for _, lk := range b.links {
			if lk.role == roleBDN {
				bdns = append(bdns, lk)
			}
		}
		b.mu.Unlock()
		if len(bdns) == 0 {
			continue
		}
		// One shared frame, one reference per registration link.
		f := b.frames.encode(b.advertisement(), int32(len(bdns)))
		for _, lk := range bdns {
			if lk.out.sendControl(f) {
				b.noteAdvertised(lk.peer)
			}
		}
	}
}

// noteAdvertised records a successful advertisement to a BDN registration
// target, feeding the registration-age gauge.
func (b *Broker) noteAdvertised(target string) {
	now := b.node.Clock().Now()
	b.mu.Lock()
	_, known := b.lastAd[target]
	b.lastAd[target] = now
	b.mu.Unlock()
	b.cfg.Journal.Emit(obs.EventAdRefreshed, target, "")
	if !known {
		b.tel.registrationAgeGauge(b, target)
	}
}

// lastAdvertised returns when the broker last successfully sent its
// advertisement to target (zero time if never).
func (b *Broker) lastAdvertised(target string) time.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastAd[target]
}
