package broker

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"narada/internal/core"
	"narada/internal/event"
	"narada/internal/metrics"
	"narada/internal/ntptime"
	"narada/internal/simnet"
	"narada/internal/transport"
	"narada/internal/uuid"
)

// benchEnv builds a very fast same-site simulated network so the broker's
// own processing, not simulated WAN latency, dominates.
func benchEnv(b *testing.B) (*simnet.Network, func(host string) (*transport.SimNode, *ntptime.Service)) {
	b.Helper()
	net := simnet.NewPaperWAN(simnet.Config{Scale: 20000, Seed: 1})
	rng := rand.New(rand.NewSource(1))
	mk := func(host string) (*transport.SimNode, *ntptime.Service) {
		node := transport.NewSimNode(net, simnet.SiteIndianapolis, host, 0)
		ntp := ntptime.NewService(node.Clock(), 0, rng)
		ntp.InitImmediately()
		return node, ntp
	}
	return net, mk
}

func benchBroker(b *testing.B, mk func(string) (*transport.SimNode, *ntptime.Service), name string, cfg Config) *Broker {
	b.Helper()
	node, ntp := mk(name)
	cfg.LogicalAddress = name
	cfg.Sampler = metrics.NewStaticSampler(metrics.Usage{TotalMemBytes: 1 << 30})
	br, err := New(node, ntp, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := br.Start(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(br.Close)
	return br
}

// BenchmarkLocalDelivery measures one-broker publish -> subscriber delivery.
func BenchmarkLocalDelivery(b *testing.B) {
	_, mk := benchEnv(b)
	br := benchBroker(b, mk, "bench", Config{})
	node, _ := mk("sub")
	c, err := Connect(node, br.StreamAddr(), "sub")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Subscribe("bench/topic"); err != nil {
		b.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)

	payload := make([]byte, 256)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := br.Publish("bench/topic", payload); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Next(10 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChainDelivery measures publish -> delivery across a 3-broker
// chain (two link hops).
func BenchmarkChainDelivery(b *testing.B) {
	_, mk := benchEnv(b)
	b1 := benchBroker(b, mk, "c1", Config{})
	b2 := benchBroker(b, mk, "c2", Config{})
	b3 := benchBroker(b, mk, "c3", Config{})
	if err := b2.LinkTo(b1.StreamAddr()); err != nil {
		b.Fatal(err)
	}
	if err := b3.LinkTo(b2.StreamAddr()); err != nil {
		b.Fatal(err)
	}
	node, _ := mk("sub")
	c, err := Connect(node, b3.StreamAddr(), "sub")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Subscribe("bench/chain"); err != nil {
		b.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	payload := make([]byte, 256)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := b1.Publish("bench/chain", payload); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Next(10 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiscoveryResponse measures the broker's full discovery-request
// handling path: decode, dedup, policy, response construction, UDP send.
func BenchmarkDiscoveryResponse(b *testing.B) {
	_, mk := benchEnv(b)
	br := benchBroker(b, mk, "disc", Config{})
	node, _ := mk("probe")
	pc, err := node.ListenPacket(0)
	if err != nil {
		b.Fatal(err)
	}
	defer pc.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := &core.DiscoveryRequest{ID: uuid.New(), Requester: "probe",
			ResponseAddr: pc.LocalAddr()}
		ev := event.New(event.TypeDiscoveryRequest, "", core.EncodeDiscoveryRequest(req))
		if err := pc.Send(br.UDPAddr(), event.Encode(ev)); err != nil {
			b.Fatal(err)
		}
		if _, _, err := pc.RecvTimeout(10 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubscriptionChurn measures subscribe/unsubscribe round trips
// including interest propagation over one link.
func BenchmarkSubscriptionChurn(b *testing.B) {
	_, mk := benchEnv(b)
	b1 := benchBroker(b, mk, "s1", Config{Routing: RouteSubscriptions})
	b2 := benchBroker(b, mk, "s2", Config{Routing: RouteSubscriptions})
	if err := b2.LinkTo(b1.StreamAddr()); err != nil {
		b.Fatal(err)
	}
	node, _ := mk("churner")
	c, err := Connect(node, b2.StreamAddr(), "churner")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	// Identify the session before the broker's hello window (10 s of model
	// time, which is sub-millisecond wall time at this scale) expires.
	if err := c.Subscribe("churn/warmup"); err != nil {
		b.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pattern := fmt.Sprintf("churn/t%d", i%100)
		if err := c.Subscribe(pattern); err != nil {
			b.Fatal(err)
		}
		if err := c.Unsubscribe(pattern); err != nil {
			b.Fatal(err)
		}
	}
}
