package broker

import (
	"narada/internal/obs"
	"narada/internal/supervise"
)

// telemetry bundles the broker's metric handles. Handles are resolved once
// in initTelemetry, so recording on the publish fast path is a single atomic
// add. A broker constructed without a registry records into a private
// throwaway registry — the handles are always valid and the hot paths stay
// branch-free.
type telemetry struct {
	framesPublish   *obs.Counter // ingress publish frames (links + clients)
	framesDiscovery *obs.Counter // ingress discovery requests (all paths)
	framesControl   *obs.Counter // ingress control/heartbeat/(un)subscribe
	framesOther     *obs.Counter // anything else
	framesMalformed *obs.Counter // inbound frames that failed to decode

	reconnAttemptLink *obs.Counter // supervised link redial attempts
	reconnAttemptBDN  *obs.Counter // supervised registration redial attempts
	reconnLink        *obs.Counter // successful supervised link redials
	reconnBDN         *obs.Counter // successful supervised registration redials

	deliveredLocal *obs.Counter // publish frames enqueued to local clients
	deliveredLink  *obs.Counter // publish frames enqueued to links

	discoveryDup     *obs.Counter // requests suppressed by the dedup cache
	discoveryDenied  *obs.Counter // requests rejected by the response policy
	discoveryAnswers *obs.Counter // discovery responses sent
	pings            *obs.Counter // UDP pings answered

	egressDropQueueFull *obs.Counter // drop-oldest on a full egress queue
	egressDropConnDown  *obs.Counter // frame arrived after the writer died
	egressDropTooLarge  *obs.Counter // frame over the egress size ceiling

	framePoolHit    *obs.Counter   // shared-frame encodes served from the pool
	framePoolMiss   *obs.Counter   // shared-frame encodes that allocated
	framesPerFlush  *obs.Histogram // frames coalesced into one egress flush
	deliveryLatency *obs.Histogram // event origin -> egress flush, seconds

	// reg and who back the per-target supervision gauges, whose label sets
	// are only known when a supervised relationship is created. These sit
	// off the fast path (state transitions and advertise refreshes only).
	reg *obs.Registry
	who obs.Label

	tracer *obs.Tracer
}

// initTelemetry registers this broker's metric families on reg (a nil reg
// gets a private registry so the handles still work) and captures the trace
// recorder. Instance identity rides in labels — broker="<logical>" for
// broker families, node="<logical>" for the shared dedup/ntptime families —
// so one registry can serve a whole in-process deployment.
func (b *Broker) initTelemetry(reg *obs.Registry, tracer *obs.Tracer) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	who := obs.L("broker", b.cfg.LogicalAddress)
	node := obs.L("node", b.cfg.LogicalAddress)
	t := &b.tel
	t.tracer = tracer

	t.reg, t.who = reg, who

	const frames = "narada_broker_frames_total"
	const framesHelp = "Frames received by the broker, by kind."
	t.framesPublish = reg.Counter(frames, framesHelp, who, obs.L("kind", "publish"))
	t.framesDiscovery = reg.Counter(frames, framesHelp, who, obs.L("kind", "discovery"))
	t.framesControl = reg.Counter(frames, framesHelp, who, obs.L("kind", "control"))
	t.framesOther = reg.Counter(frames, framesHelp, who, obs.L("kind", "other"))
	t.framesMalformed = reg.Counter("narada_broker_frames_malformed_total",
		"Inbound frames that failed to decode and were discarded.", who)

	const reconnAttempts = "narada_broker_reconnect_attempts_total"
	const reconnAttemptsHelp = "Supervised redial attempts, by relationship kind."
	t.reconnAttemptLink = reg.Counter(reconnAttempts, reconnAttemptsHelp, who, obs.L("kind", SuperviseLink))
	t.reconnAttemptBDN = reg.Counter(reconnAttempts, reconnAttemptsHelp, who, obs.L("kind", SuperviseBDN))
	const reconns = "narada_broker_reconnects_total"
	const reconnsHelp = "Successful supervised redials, by relationship kind."
	t.reconnLink = reg.Counter(reconns, reconnsHelp, who, obs.L("kind", SuperviseLink))
	t.reconnBDN = reg.Counter(reconns, reconnsHelp, who, obs.L("kind", SuperviseBDN))

	const delivered = "narada_broker_publish_delivered_total"
	const deliveredHelp = "Publish frames enqueued for delivery, by destination."
	t.deliveredLocal = reg.Counter(delivered, deliveredHelp, who, obs.L("dest", "local"))
	t.deliveredLink = reg.Counter(delivered, deliveredHelp, who, obs.L("dest", "link"))

	const disc = "narada_broker_discovery_requests_total"
	const discHelp = "Discovery requests processed, by outcome."
	t.discoveryDup = reg.Counter(disc, discHelp, who, obs.L("outcome", "duplicate"))
	t.discoveryDenied = reg.Counter(disc, discHelp, who, obs.L("outcome", "denied"))
	t.discoveryAnswers = reg.Counter("narada_broker_discovery_responses_total",
		"Discovery responses sent over UDP.", who)
	t.pings = reg.Counter("narada_broker_pings_total", "UDP pings answered.", who)

	const dropped = "narada_broker_egress_dropped_total"
	const droppedHelp = "Frames dropped at egress queues, by reason."
	t.egressDropQueueFull = reg.Counter(dropped, droppedHelp, who, obs.L("reason", "queue_full"))
	t.egressDropConnDown = reg.Counter(dropped, droppedHelp, who, obs.L("reason", "conn_down"))
	t.egressDropTooLarge = reg.Counter(dropped, droppedHelp, who, obs.L("reason", "frame_too_large"))

	const framePool = "narada_broker_frame_pool_total"
	const framePoolHelp = "Shared-frame encodes, by whether the pool had a recycled frame."
	t.framePoolHit = reg.Counter(framePool, framePoolHelp, who, obs.L("result", "hit"))
	t.framePoolMiss = reg.Counter(framePool, framePoolHelp, who, obs.L("result", "miss"))
	t.framesPerFlush = reg.Histogram("narada_broker_egress_frames_per_flush",
		"Frames coalesced into a single egress writer flush.",
		[]float64{1, 2, 4, 8, 16, 32, 64}, who)
	t.deliveryLatency = reg.Histogram("narada_delivery_latency_seconds",
		"End-to-end delivery latency: event origin timestamp to egress flush, NTP-aligned.",
		[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}, who)

	reg.GaugeFunc("narada_broker_links", "Active broker-to-broker links.",
		func() float64 { return float64(b.LinkCount()) }, who)
	reg.GaugeFunc("narada_broker_clients", "Connected clients (including BDN subscribers).",
		func() float64 { return float64(b.ClientCount()) }, who)
	reg.GaugeFunc("narada_broker_egress_queue_depth",
		"Frames currently queued across all egress queues.",
		func() float64 { return float64(b.egressQueueDepth()) }, who)

	const dedupHits = "narada_dedup_hits_total"
	const dedupHitsHelp = "Duplicate hits in the suppression caches."
	const dedupAdds = "narada_dedup_adds_total"
	const dedupAddsHelp = "Distinct insertions into the suppression caches."
	reg.CounterFunc(dedupHits, dedupHitsHelp,
		func() uint64 { h, _ := b.reqDedup.Stats(); return h }, node, obs.L("cache", "request"))
	reg.CounterFunc(dedupAdds, dedupAddsHelp,
		func() uint64 { _, a := b.reqDedup.Stats(); return a }, node, obs.L("cache", "request"))
	reg.CounterFunc(dedupHits, dedupHitsHelp,
		func() uint64 { h, _ := b.evDedup.Stats(); return h }, node, obs.L("cache", "event"))
	reg.CounterFunc(dedupAdds, dedupAddsHelp,
		func() uint64 { _, a := b.evDedup.Stats(); return a }, node, obs.L("cache", "event"))

	reg.GaugeFunc("narada_ntptime_offset_seconds",
		"Signed error of the NTP-corrected clock against true UTC.",
		func() float64 { return b.ntp.Residual().Seconds() }, node)
	reg.GaugeFunc("narada_ntptime_synchronized",
		"1 once the NTP service has computed clock offsets.",
		func() float64 {
			if b.ntp.Synchronized() {
				return 1
			}
			return 0
		}, node)
}

// reconnectAttempt counts one supervised redial attempt of the given kind.
func (t *telemetry) reconnectAttempt(kind string) {
	if kind == SuperviseBDN {
		t.reconnAttemptBDN.Inc()
		return
	}
	t.reconnAttemptLink.Inc()
}

// reconnected counts one successful supervised redial of the given kind.
func (t *telemetry) reconnected(kind string) {
	if kind == SuperviseBDN {
		t.reconnBDN.Inc()
		return
	}
	t.reconnLink.Inc()
}

// setLinkState publishes a supervised relationship's health as a gauge:
// 0 connected, 1 degraded, 2 reconnecting, 3 stopped. The per-target series
// is created on the relationship's first transition; re-registration returns
// the same handle, so this is safe to call on every transition.
func (t *telemetry) setLinkState(kind, target string, s supervise.State) {
	t.reg.Gauge("narada_broker_link_state",
		"Supervised relationship state (0 connected, 1 degraded, 2 reconnecting, 3 stopped).",
		t.who, obs.L("kind", kind), obs.L("target", target)).Set(float64(s))
}

// registrationAgeGauge registers the registration-age series for one BDN
// target the first time the broker advertises to it: seconds since the last
// successful advertisement, the client-side view of registration freshness.
func (t *telemetry) registrationAgeGauge(b *Broker, target string) {
	t.reg.GaugeFunc("narada_broker_registration_age_seconds",
		"Seconds since the broker last refreshed its advertisement at the BDN.",
		func() float64 {
			last := b.lastAdvertised(target)
			if last.IsZero() {
				return 0
			}
			return b.node.Clock().Now().Sub(last).Seconds()
		}, t.who, obs.L("target", target))
}

// reqTrace wraps an obs.Trace for discovery-request events; the zero value
// records nothing, so untraced deployments pay no attr construction.
type reqTrace struct{ tr *obs.Trace }

// event records a point event stamped with this broker's identity and clock.
// kv is alternating attribute keys and values.
func (t reqTrace) event(b *Broker, name string, kv ...string) {
	if t.tr == nil {
		return
	}
	attrs := make([]obs.Attr, 0, 1+len(kv)/2)
	attrs = append(attrs, obs.A("broker", b.cfg.LogicalAddress))
	for i := 0; i+1 < len(kv); i += 2 {
		attrs = append(attrs, obs.A(kv[i], kv[i+1]))
	}
	t.tr.Event(name, b.node.Clock().Now(), attrs...)
}

// egressQueueDepth sums the frames queued in front of every live connection.
// Called at scrape time only.
func (b *Broker) egressQueueDepth() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, lk := range b.links {
		if lk.out != nil {
			n += lk.out.depth()
		}
	}
	for _, c := range b.clients {
		if c.out != nil {
			n += c.out.depth()
		}
	}
	return n
}
