package broker

import (
	"errors"
	"strconv"
	"sync"
	"time"

	"narada/internal/event"
	"narada/internal/topics"
	"narada/internal/transport"
)

// link is an established broker-to-broker (or BDN-to-broker) connection.
type link struct {
	peer string // peer logical address
	role string // roleLink or roleBDN
	conn transport.Conn
	out  *egress // asynchronous outbound queue (set before registration)

	mu       sync.Mutex
	lastRecv time.Time // last inbound frame, for heartbeat liveness
}

func (lk *link) touch(now time.Time) {
	lk.mu.Lock()
	lk.lastRecv = now
	lk.mu.Unlock()
}

func (lk *link) lastSeen() time.Time {
	lk.mu.Lock()
	defer lk.mu.Unlock()
	return lk.lastRecv
}

// clientConn is a subscriber/publisher connection.
type clientConn struct {
	id   string // remote address, used as subscriber identity
	conn transport.Conn
	out  *egress // asynchronous outbound queue (set before registration)
}

// acceptLoop admits stream connections and classifies them by their first
// event: a LinkHello makes a broker link or BDN connection; anything else is
// treated as the first event of a client session.
func (b *Broker) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.listener.Accept()
		if err != nil {
			return
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.handleConn(conn)
		}()
	}
}

func (b *Broker) handleConn(conn transport.Conn) {
	// Bound the wait for the first frame: an idle pre-hello connection is
	// not yet tracked anywhere, and Close must not hang on its goroutine.
	frame, err := conn.RecvTimeout(helloTimeout)
	if err != nil {
		_ = conn.Close()
		return
	}
	ev, err := event.Decode(frame)
	if err != nil {
		_ = conn.Close()
		return
	}
	if ev.Type == event.TypeLinkHello {
		b.serveLink(&link{peer: ev.Source, role: ev.Header(helloRoleHeader), conn: conn}, true)
		return
	}
	c := &clientConn{id: conn.RemoteAddr(), conn: conn}
	c.out = b.newEgress(conn, "local")
	if !b.registerClient(c) {
		_ = conn.Close()
		return
	}
	b.startEgress(c.out)
	b.connectionsChanged()
	b.handleClientEvent(c, ev)
	b.serveClient(c)
}

// serveClient pumps a client session until it disconnects.
func (b *Broker) serveClient(c *clientConn) {
	defer func() {
		c.out.close()
		_ = c.conn.Close()
		patterns := b.subs.Patterns(c.id)
		b.subs.UnsubscribeAll(c.id)
		for _, pattern := range patterns {
			b.localInterestChanged(pattern, -1)
		}
		b.mu.Lock()
		delete(b.clients, c.id)
		b.mu.Unlock()
		b.connectionsChanged()
	}()
	for {
		frame, err := c.conn.Recv()
		if err != nil {
			return
		}
		ev, err := event.Decode(frame)
		if err != nil {
			b.tel.framesMalformed.Inc()
			continue
		}
		b.handleClientEvent(c, ev)
	}
}

func (b *Broker) handleClientEvent(c *clientConn, ev *event.Event) {
	switch ev.Type {
	case event.TypeSubscribe:
		b.tel.framesControl.Inc()
		// The registration carries the client's delivery queue, so matching
		// on the publish path hands the queue straight back — no client-map
		// lookup, no lock.
		added, err := b.subs.SubscribeValue(c.id, ev.Topic, c.out)
		if err == nil && added {
			b.localInterestChanged(ev.Topic, +1)
		}
	case event.TypeUnsubscribe:
		b.tel.framesControl.Inc()
		if b.subs.Unsubscribe(c.id, ev.Topic) {
			b.localInterestChanged(ev.Topic, -1)
		}
	case event.TypePublish:
		b.tel.framesPublish.Inc()
		if topics.Validate(ev.Topic) != nil {
			return
		}
		if ev.Source == "" {
			ev.Source = c.id
		}
		if b.evDedup.Seen(ev.ID) {
			return
		}
		b.routePublish(ev, "")
	case event.TypeControl:
		b.tel.framesControl.Inc()
		// Replay request: re-deliver retained history matching the pattern
		// straight to this client.
		if ev.Header(controlOpHeader) == opReplay && b.history != nil {
			// strconv.Atoi is far cheaper than fmt.Sscanf and, unlike it,
			// rejects trailing garbage instead of silently accepting it.
			limit, err := strconv.Atoi(ev.Header(replayLimitHeader))
			if err != nil || limit < 0 {
				limit = 0
			}
			for _, past := range b.history.Replay(ev.Topic, limit) {
				c.out.sendData(b.frames.encode(past, 1))
			}
		}
	case event.TypeDiscoveryRequest:
		// Injection from a connected entity (e.g. a BDN speaking the client
		// protocol, or a test harness).
		b.tel.framesDiscovery.Inc()
		b.handleDiscoveryRequest(ev, "")
	case event.TypeAdvertisement:
		// Clients relaying advertisements publish them on the public topic.
		b.tel.framesOther.Inc()
		if b.evDedup.Seen(ev.ID) {
			return
		}
		fwd := ev.Clone()
		fwd.Type = event.TypePublish
		fwd.Topic = topics.AdvertisementTopic
		b.routePublish(fwd, "")
	default:
		// Ignore unsupported client events.
	}
}

// LinkTo establishes a broker link to a peer broker's stream address. With
// Config.Supervise set the link becomes self-healing: a supervise runner
// redials it whenever the session dies (heartbeat teardown, peer restart,
// healed partition), and every fresh link re-announces this side's interest
// table to the peer. The initial dial still runs synchronously so the
// caller sees its error either way.
func (b *Broker) LinkTo(addr string) error {
	if b.cfg.Supervise != nil {
		return b.superviseDial(SuperviseLink, addr, b.dialLink)
	}
	_, err := b.dialLink(addr)
	return err
}

// dialLink performs one link dial + hello handshake and hands the link to
// serveLink on its own goroutine. The returned channel closes when the link
// session ends (however it ends), which is what a supervise runner watches.
func (b *Broker) dialLink(addr string) (<-chan struct{}, error) {
	conn, err := b.node.Dial(addr)
	if err != nil {
		return nil, err
	}
	hello := event.New(event.TypeLinkHello, "", nil)
	hello.Source = b.cfg.LogicalAddress
	hello.SetHeader(helloRoleHeader, roleLink)
	hello.Timestamp = b.now()
	if err := conn.Send(event.Encode(hello)); err != nil {
		_ = conn.Close()
		return nil, err
	}
	// Peer replies with its own hello so both sides learn identities.
	frame, err := conn.RecvTimeout(helloTimeout)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	reply, err := event.Decode(frame)
	if err != nil || reply.Type != event.TypeLinkHello {
		_ = conn.Close()
		return nil, errors.New("broker: link handshake failed")
	}
	lk := &link{peer: reply.Source, role: roleLink, conn: conn}
	done := make(chan struct{})
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		defer close(done)
		b.serveLink(lk, false)
	}()
	return done, nil
}
