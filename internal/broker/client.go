package broker

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"narada/internal/event"
	"narada/internal/ntptime"
	"narada/internal/topics"
	"narada/internal/transport"
)

// Client is an entity connected to a broker: it publishes events and
// receives events on subscribed topics. Once connected to a broker (usually
// the one returned by discovery), an entity has access to the services of
// the whole broker network.
type Client struct {
	name  string
	conn  transport.Conn
	clock ntptime.Clock

	inbox chan *event.Event
	done  chan struct{} // closed by Close; the inbox itself is never closed
	once  sync.Once
}

// clientInboxSize bounds undelivered events per client before backpressure.
const clientInboxSize = 256

// Connect dials a broker's stream endpoint and starts the receive pump.
func Connect(node transport.Node, addr, name string) (*Client, error) {
	conn, err := node.Dial(addr)
	if err != nil {
		return nil, err
	}
	c := &Client{name: name, conn: conn, clock: node.Clock(),
		inbox: make(chan *event.Event, clientInboxSize),
		done:  make(chan struct{})}
	go c.pump()
	return c, nil
}

func (c *Client) pump() {
	defer c.Close()
	for {
		frame, err := c.conn.Recv()
		if err != nil {
			return
		}
		ev, err := event.Decode(frame)
		if err != nil {
			continue
		}
		select {
		case c.inbox <- ev:
		default:
			// Slow consumer: drop oldest to keep the session live.
			select {
			case <-c.inbox:
			default:
			}
			select {
			case c.inbox <- ev:
			default:
			}
		}
	}
}

// Subscribe registers interest in a topic pattern.
func (c *Client) Subscribe(pattern string) error {
	if err := topics.ValidatePattern(pattern); err != nil {
		return err
	}
	ev := event.New(event.TypeSubscribe, pattern, nil)
	ev.Source = c.name
	return c.conn.Send(event.Encode(ev))
}

// Unsubscribe removes a subscription.
func (c *Client) Unsubscribe(pattern string) error {
	ev := event.New(event.TypeUnsubscribe, pattern, nil)
	ev.Source = c.name
	return c.conn.Send(event.Encode(ev))
}

// Publish issues an event on a topic.
func (c *Client) Publish(topic string, payload []byte) error {
	if err := topics.Validate(topic); err != nil {
		return err
	}
	ev := event.New(event.TypePublish, topic, payload)
	ev.Source = c.name
	return c.conn.Send(event.Encode(ev))
}

// ErrClientClosed is returned by Next after Close.
var ErrClientClosed = errors.New("broker: client closed")

// Next blocks for the next delivered event, up to the timeout (0 = forever).
// Events already queued are still delivered after Close.
func (c *Client) Next(timeout time.Duration) (*event.Event, error) {
	// Prefer queued events even when the session has been closed.
	select {
	case ev := <-c.inbox:
		return ev, nil
	default:
	}
	var expire <-chan time.Time
	if timeout > 0 {
		expire = c.clock.After(timeout)
	}
	select {
	case ev := <-c.inbox:
		return ev, nil
	case <-c.done:
		select {
		case ev := <-c.inbox:
			return ev, nil
		default:
			return nil, ErrClientClosed
		}
	case <-expire:
		return nil, transport.ErrTimeout
	}
}

// Close terminates the session.
func (c *Client) Close() {
	c.once.Do(func() {
		close(c.done)
		_ = c.conn.Close()
	})
}

// RequestReplay asks the broker to re-deliver up to limit retained events
// matching the pattern (0 = broker's full retained window). Replayed events
// arrive through Next like live deliveries. The broker must have the replay
// service enabled (Config.ReplayCapacity > 0); otherwise this is a no-op.
func (c *Client) RequestReplay(pattern string, limit int) error {
	if err := topics.ValidatePattern(pattern); err != nil {
		return err
	}
	ev := event.New(event.TypeControl, pattern, nil)
	ev.Source = c.name
	ev.SetHeader("op", "replay")
	ev.SetHeader("limit", fmt.Sprintf("%d", limit))
	return c.conn.Send(event.Encode(ev))
}
