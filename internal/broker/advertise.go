package broker

import (
	"fmt"

	"narada/internal/obs"

	"narada/internal/core"
	"narada/internal/event"
	"narada/internal/topics"
)

// RegisterWithBDN advertises this broker to a BDN (paper §2.1–2.3, first
// dissemination form: "sending this advertisement directly to the BDNs that
// are listed in the broker's configuration file") and keeps the connection
// open: the BDN uses it as one of its "active concurrent connections to one
// or more brokers" for injecting discovery requests into the network. With
// Config.Supervise set the registration becomes self-healing: when the
// connection dies (BDN restart, heartbeat teardown, partition) a supervise
// runner redials it and the fresh dial re-sends the advertisement, so the
// broker reappears at the BDN without operator action.
func (b *Broker) RegisterWithBDN(addr string) error {
	if b.cfg.Supervise != nil {
		return b.superviseDial(SuperviseBDN, addr, b.dialRegistration)
	}
	_, err := b.dialRegistration(addr)
	return err
}

// dialRegistration performs one registration dial: hello, advertisement,
// then a pump goroutine that accepts BDN request injections and (with
// HeartbeatInterval set) exchanges keepalives so a silently dead BDN is
// detected — registration links previously had no liveness at all. The
// returned channel closes when the registration session ends.
func (b *Broker) dialRegistration(addr string) (<-chan struct{}, error) {
	conn, err := b.node.Dial(addr)
	if err != nil {
		return nil, err
	}
	hello := event.New(event.TypeLinkHello, "", nil)
	hello.Source = b.cfg.LogicalAddress
	hello.SetHeader(helloRoleHeader, roleLink) // from the BDN's view we are a broker link
	hello.Timestamp = b.now()
	if err := conn.Send(event.Encode(hello)); err != nil {
		_ = conn.Close()
		return nil, err
	}

	if err := conn.Send(event.Encode(b.advertisement())); err != nil {
		_ = conn.Close()
		return nil, err
	}

	lk := &link{peer: "bdn:" + addr, role: roleBDN, conn: conn}
	lk.out = b.newEgress(conn, "link")
	if !b.registerLink(lk) {
		_ = conn.Close()
		return nil, errClosed
	}
	b.startEgress(lk.out)
	b.connectionsChanged()
	b.cfg.Journal.Emit(obs.EventLinkUp, lk.peer, "role="+lk.role)
	b.noteAdvertised(lk.peer)
	lk.touch(b.node.Clock().Now())
	if b.cfg.HeartbeatInterval > 0 {
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.heartbeatLink(lk)
		}()
	}

	done := make(chan struct{})
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		defer close(done)
		defer func() {
			lk.out.close()
			_ = conn.Close()
			b.mu.Lock()
			wasCurrent := b.links[lk.peer] == lk
			if wasCurrent {
				delete(b.links, lk.peer)
				b.rebuildLinkSnap()
			}
			b.mu.Unlock()
			if wasCurrent {
				b.cfg.Journal.Emit(obs.EventLinkDown, lk.peer, "role="+lk.role)
			}
			b.connectionsChanged()
		}()
		for {
			frame, err := conn.Recv()
			if err != nil {
				return
			}
			lk.touch(b.node.Clock().Now())
			ev, err := event.Decode(frame)
			if err != nil {
				b.tel.framesMalformed.Inc()
				continue
			}
			switch ev.Type {
			case event.TypeDiscoveryRequest:
				// BDN injection: fromPeer is this BDN connection so the
				// flood covers every true broker link.
				b.handleDiscoveryRequest(ev, lk.peer)
			case event.TypeLinkHeartbeat:
				// BDN's keepalive echo; the touch above is the point.
				b.tel.framesControl.Inc()
			}
		}
	}()
	return done, nil
}

// PublishAdvertisement disseminates this broker's advertisement on the public
// topic all BDNs subscribe to (paper §2.3, second form) — useful when the
// broker does not know any BDN address directly.
func (b *Broker) PublishAdvertisement() error {
	adv := &core.Advertisement{Broker: b.Info(), IssuedAt: b.now(), TTL: b.cfg.AdvertiseTTL}
	return b.Publish(topics.AdvertisementTopic, core.EncodeAdvertisement(adv))
}

// JoinNetwork adds this broker to an existing broker network the way the
// paper prescribes for new brokers ("an entity may wish to add a broker to
// this network; in both these cases it is essential for the entity to
// discover a broker"): run the discovery scheme, link to the selected
// nearest broker, and return its info.
func (b *Broker) JoinNetwork(d *core.Discoverer) (core.BrokerInfo, error) {
	res, err := d.Discover()
	if err != nil {
		return core.BrokerInfo{}, fmt.Errorf("broker %s: joining: %w", b.cfg.LogicalAddress, err)
	}
	addr := res.Selected.Endpoint("tcp")
	if addr == "" {
		return core.BrokerInfo{}, fmt.Errorf("broker %s: discovered %s advertises no tcp endpoint",
			b.cfg.LogicalAddress, res.Selected.LogicalAddress)
	}
	if err := b.LinkTo(addr); err != nil {
		return core.BrokerInfo{}, fmt.Errorf("broker %s: linking to discovered %s: %w",
			b.cfg.LogicalAddress, res.Selected.LogicalAddress, err)
	}
	return res.Selected, nil
}
