package broker

import (
	"errors"
	"fmt"

	"narada/internal/core"
	"narada/internal/event"
	"narada/internal/topics"
)

// RegisterWithBDN advertises this broker to a BDN (paper §2.1–2.3, first
// dissemination form: "sending this advertisement directly to the BDNs that
// are listed in the broker's configuration file") and keeps the connection
// open: the BDN uses it as one of its "active concurrent connections to one
// or more brokers" for injecting discovery requests into the network.
func (b *Broker) RegisterWithBDN(addr string) error {
	conn, err := b.node.Dial(addr)
	if err != nil {
		return err
	}
	hello := event.New(event.TypeLinkHello, "", nil)
	hello.Source = b.cfg.LogicalAddress
	hello.SetHeader(helloRoleHeader, roleLink) // from the BDN's view we are a broker link
	hello.Timestamp = b.now()
	if err := conn.Send(event.Encode(hello)); err != nil {
		_ = conn.Close()
		return err
	}

	adv := &core.Advertisement{Broker: b.Info(), IssuedAt: b.now()}
	ev := event.New(event.TypeAdvertisement, topics.AdvertisementTopic, core.EncodeAdvertisement(adv))
	ev.Source = b.cfg.LogicalAddress
	ev.Timestamp = adv.IssuedAt
	if err := conn.Send(event.Encode(ev)); err != nil {
		_ = conn.Close()
		return err
	}

	lk := &link{peer: "bdn:" + addr, role: roleBDN, conn: conn}
	lk.out = newEgress(conn, b.tel.egressDropped)
	if !b.registerLink(lk) {
		_ = conn.Close()
		return errors.New("broker: closed")
	}
	b.startEgress(lk.out)
	b.connectionsChanged()

	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		defer func() {
			lk.out.close()
			_ = conn.Close()
			b.mu.Lock()
			if b.links[lk.peer] == lk {
				delete(b.links, lk.peer)
			}
			b.mu.Unlock()
			b.connectionsChanged()
		}()
		for {
			frame, err := conn.Recv()
			if err != nil {
				return
			}
			ev, err := event.Decode(frame)
			if err != nil {
				continue
			}
			if ev.Type == event.TypeDiscoveryRequest {
				// BDN injection: fromPeer is this BDN connection so the
				// flood covers every true broker link.
				b.handleDiscoveryRequest(ev, lk.peer)
			}
		}
	}()
	return nil
}

// PublishAdvertisement disseminates this broker's advertisement on the public
// topic all BDNs subscribe to (paper §2.3, second form) — useful when the
// broker does not know any BDN address directly.
func (b *Broker) PublishAdvertisement() error {
	adv := &core.Advertisement{Broker: b.Info(), IssuedAt: b.now()}
	return b.Publish(topics.AdvertisementTopic, core.EncodeAdvertisement(adv))
}

// JoinNetwork adds this broker to an existing broker network the way the
// paper prescribes for new brokers ("an entity may wish to add a broker to
// this network; in both these cases it is essential for the entity to
// discover a broker"): run the discovery scheme, link to the selected
// nearest broker, and return its info.
func (b *Broker) JoinNetwork(d *core.Discoverer) (core.BrokerInfo, error) {
	res, err := d.Discover()
	if err != nil {
		return core.BrokerInfo{}, fmt.Errorf("broker %s: joining: %w", b.cfg.LogicalAddress, err)
	}
	addr := res.Selected.Endpoint("tcp")
	if addr == "" {
		return core.BrokerInfo{}, fmt.Errorf("broker %s: discovered %s advertises no tcp endpoint",
			b.cfg.LogicalAddress, res.Selected.LogicalAddress)
	}
	if err := b.LinkTo(addr); err != nil {
		return core.BrokerInfo{}, fmt.Errorf("broker %s: linking to discovered %s: %w",
			b.cfg.LogicalAddress, res.Selected.LogicalAddress, err)
	}
	return res.Selected, nil
}
