package broker

import (
	"strconv"

	"narada/internal/core"
	"narada/internal/event"
)

// udpLoop serves the broker's datagram endpoint: UDP pings (answered with
// pongs echoing the sender's timestamp) and discovery requests arriving
// directly, via multicast, or from a requester replaying its cached target
// set.
func (b *Broker) udpLoop() {
	defer b.wg.Done()
	for {
		payload, from, err := b.udp.Recv()
		if err != nil {
			return
		}
		ev, err := event.Decode(payload)
		if err != nil {
			continue
		}
		switch ev.Type {
		case event.TypePing:
			b.tel.framesControl.Inc()
			b.answerPing(ev, from)
		case event.TypeDiscoveryRequest:
			b.tel.framesDiscovery.Inc()
			b.handleDiscoveryRequest(ev, "")
		default:
			// Other datagram traffic is not part of the protocol.
			b.tel.framesOther.Inc()
		}
	}
}

// answerPing echoes the ping's timestamp in a pong so the requester can
// compute the RTT purely from its own clock (paper §6). Pings and pongs
// travel over UDP for the §5.2 reasons: constant requester-side resources
// and loss-as-signal filtering of remote brokers.
func (b *Broker) answerPing(ev *event.Event, from string) {
	ping, err := core.DecodePing(ev.Payload)
	if err != nil {
		return
	}
	pong := &core.Pong{
		ID:        ping.ID,
		EchoSent:  ping.SentAt,
		Seq:       ping.Seq,
		Responder: b.cfg.LogicalAddress,
	}
	reply := event.New(event.TypePong, "", core.EncodePong(pong))
	reply.Source = b.cfg.LogicalAddress
	reply.Timestamp = b.now()
	// Pings sent by a discovery's refinement phase carry the request's trace
	// context; echo it on the pong and record the handling against the trace.
	if id, origin, hop, ok := ev.Trace(); ok {
		reply.SetTrace(id, origin, hop)
		if b.tel.tracer != nil {
			tr := reqTrace{b.tel.tracer.Trace(id)}
			tr.event(b, "broker-ping", "seq", strconv.Itoa(int(ping.Seq)), "origin", origin)
		}
	}
	_ = b.udp.Send(from, event.Encode(reply))
	b.tel.pings.Inc()
}

// handleDiscoveryRequest implements the broker side of paper §4–5: duplicate
// suppression by request UUID, network re-dissemination (so the request can
// reach every broker connected in the network), a policy gate, and the
// construction + UDP delivery of the discovery response.
//
// fromPeer names the link the request arrived on ("" for UDP/client/BDN
// ingress) so the flood does not echo straight back.
func (b *Broker) handleDiscoveryRequest(ev *event.Event, fromPeer string) {
	req, err := core.DecodeDiscoveryRequest(ev.Payload)
	if err != nil {
		return
	}
	// "Every broker keeps track of the last 1000 broker discovery requests
	// so that additional CPU/network cycles are not expended on previously
	// processed requests."
	if b.reqDedup.Seen(req.ID) {
		b.tel.discoveryDup.Inc()
		return
	}
	// Wire trace context: requests issued by instrumented requesters carry
	// it in headers; requests from pre-propagation peers fall back to the
	// body's request UUID and requester name so the context heals here.
	traceID, origin, _, hasTrace := ev.Trace()
	if !hasTrace {
		traceID, origin = req.ID.String(), req.Requester
	}
	// Trace the request's passage through this broker; resolve the trace
	// once.
	var tr reqTrace
	if b.tel.tracer != nil {
		tr = reqTrace{b.tel.tracer.Trace(traceID)}
	}

	// Propagate through the broker network before responding: dissemination
	// latency dominates discovery time (Figures 2/9/11), so forwarding first
	// lets downstream brokers overlap their work with ours. The forwarded
	// copy carries an incremented hop count for diagnostics.
	if ev.TTL > 0 {
		fwdReq := *req
		fwdReq.Hops++
		// Shallow event copy: only the TTL, payload and trace headers differ,
		// and Encode does not retain the event. The headers map is re-made so
		// the hop bump cannot alias the inbound event's map.
		fwd := *ev
		fwd.TTL--
		fwd.Payload = core.EncodeDiscoveryRequest(&fwdReq)
		fwd.Headers = make(map[string]string, len(ev.Headers)+3)
		for k, v := range ev.Headers {
			fwd.Headers[k] = v
		}
		fwd.SetTrace(traceID, origin, fwdReq.Hops)
		links := b.linksExcept(fromPeer)
		if len(links) > 0 {
			f := b.frames.encode(&fwd, int32(len(links)))
			for _, lk := range links {
				lk.out.sendData(f)
			}
		}
		tr.event(b, "broker-fanout", "links", strconv.Itoa(len(links)),
			"hops", strconv.Itoa(int(req.Hops)), "origin", origin)
	}

	if !b.cfg.Policy.Permits(req) {
		b.tel.discoveryDenied.Inc()
		tr.event(b, "broker-denied", "requester", req.Requester)
		b.cfg.Logger.Debug("discovery request denied by policy",
			"requester", req.Requester, "realm", req.Realm)
		return
	}
	if req.ResponseAddr == "" {
		return
	}
	if b.cfg.ProcessingDelay > 0 {
		b.node.Clock().Sleep(b.cfg.ProcessingDelay)
	}

	resp := &core.DiscoveryResponse{
		RequestID: req.ID,
		Timestamp: b.now(),
		Broker:    b.Info(),
		Usage:     b.Usage(),
	}
	reply := event.New(event.TypeDiscoveryResponse, "", core.EncodeDiscoveryResponse(resp))
	reply.Source = b.cfg.LogicalAddress
	reply.Timestamp = resp.Timestamp
	reply.SetTrace(traceID, origin, req.Hops)
	// "The communication protocol used for transporting this response is
	// UDP" — sent from the broker's datagram endpoint to the requester.
	_ = b.udp.Send(req.ResponseAddr, event.Encode(reply))
	b.tel.discoveryAnswers.Inc()
	tr.event(b, "broker-respond", "to", req.ResponseAddr)
	b.cfg.Logger.Debug("discovery response sent",
		"requester", req.Requester, "to", req.ResponseAddr, "hops", req.Hops)
}
