package broker

import (
	"strings"
	"sync"

	"narada/internal/event"
)

// Subscription-interest propagation for RouteSubscriptions mode: brokers
// tell their neighbours which topic patterns their side of the network is
// interested in, and publishes are forwarded over a link only when the peer
// registered a matching interest — instead of flooding every event over
// every link.
//
// Interest bookkeeping is reference-counted per contribution source: the
// local client population is one source, and each link peer is another.
// A pattern is advertised to link L exactly while some source other than L
// holds a reference, which yields loop-free convergence on trees and (with
// the existing event dedup + TTL) correctness on cyclic topologies.

// linkSubscriberPrefix namespaces link identities inside the subscription
// table; the NUL byte cannot appear in client connection addresses.
const linkSubscriberPrefix = "\x00link:"

func linkSubscriberID(peer string) string { return linkSubscriberPrefix + peer }

func isLinkSubscriber(id string) (peer string, ok bool) {
	if strings.HasPrefix(id, linkSubscriberPrefix) {
		return id[len(linkSubscriberPrefix):], true
	}
	return "", false
}

// Control-event headers used for interest propagation and replay.
const (
	controlOpHeader   = "op"
	opSubAdd          = "sub-add"
	opSubDel          = "sub-del"
	opReplay          = "replay"
	replayLimitHeader = "limit"
)

// interestState tracks pattern references per contribution source.
type interestState struct {
	mu     sync.Mutex
	local  map[string]int            // pattern -> local client registrations
	remote map[string]map[string]int // peer -> pattern -> references
}

func newInterestState() *interestState {
	return &interestState{
		local:  make(map[string]int),
		remote: make(map[string]map[string]int),
	}
}

// contributionsExcluding counts references to pattern from every source
// except the named peer ("" excludes nothing). Caller holds mu.
func (s *interestState) contributionsExcluding(pattern, peer string) int {
	n := s.local[pattern]
	for p, pats := range s.remote {
		if p == peer {
			continue
		}
		n += pats[pattern]
	}
	return n
}

// patternsExcluding returns the patterns visible to a new peer. Caller holds mu.
func (s *interestState) patternsExcluding(peer string) []string {
	seen := make(map[string]struct{})
	for pattern, n := range s.local {
		if n > 0 {
			seen[pattern] = struct{}{}
		}
	}
	for p, pats := range s.remote {
		if p == peer {
			continue
		}
		for pattern, n := range pats {
			if n > 0 {
				seen[pattern] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for pattern := range seen {
		out = append(out, pattern)
	}
	return out
}

// interestUpdate adjusts one source's reference count for a pattern by
// delta (±1) and returns the links that must be told (those whose
// excluded-view crossed 0). source is "" for the local client population.
func (b *Broker) interestUpdate(pattern, source string, delta int) (notify []*link, op string) {
	s := b.interest
	s.mu.Lock()
	defer s.mu.Unlock()

	peers := b.linksExcept(source) // snapshot of candidate links
	before := make(map[string]int, len(peers))
	for _, lk := range peers {
		before[lk.peer] = s.contributionsExcluding(pattern, lk.peer)
	}

	if source == "" {
		s.local[pattern] += delta
		if s.local[pattern] <= 0 {
			delete(s.local, pattern)
		}
	} else {
		pats, ok := s.remote[source]
		if !ok {
			pats = make(map[string]int)
			s.remote[source] = pats
		}
		pats[pattern] += delta
		if pats[pattern] <= 0 {
			delete(pats, pattern)
			if len(pats) == 0 {
				delete(s.remote, source)
			}
		}
	}

	for _, lk := range peers {
		after := s.contributionsExcluding(pattern, lk.peer)
		switch {
		case before[lk.peer] == 0 && after > 0:
			notify = append(notify, lk)
			op = opSubAdd
		case before[lk.peer] > 0 && after == 0:
			notify = append(notify, lk)
			op = opSubDel
		}
	}
	return notify, op
}

// sendInterest transmits one interest-control event over a link. Interest
// updates are correctness-critical, so they use the non-droppable control
// discipline of the egress queue.
func (b *Broker) sendInterest(lk *link, op, pattern string) {
	ev := event.New(event.TypeControl, pattern, nil)
	ev.Source = b.cfg.LogicalAddress
	ev.SetHeader(controlOpHeader, op)
	_ = lk.out.sendControl(b.frames.encode(ev, 1))
}

// localInterestChanged is called when a client subscription is added or
// removed (delta ±1); it updates the counts and notifies affected links.
func (b *Broker) localInterestChanged(pattern string, delta int) {
	if b.cfg.Routing != RouteSubscriptions {
		return
	}
	notify, op := b.interestUpdate(pattern, "", delta)
	for _, lk := range notify {
		b.sendInterest(lk, op, pattern)
	}
}

// handleInterestControl processes a sub-add/sub-del from a link peer.
func (b *Broker) handleInterestControl(lk *link, ev *event.Event) {
	if b.cfg.Routing != RouteSubscriptions {
		return
	}
	pattern := ev.Topic
	switch ev.Header(controlOpHeader) {
	case opSubAdd:
		_ = b.subs.Subscribe(linkSubscriberID(lk.peer), pattern)
		notify, op := b.interestUpdate(pattern, lk.peer, +1)
		for _, other := range notify {
			b.sendInterest(other, op, pattern)
		}
	case opSubDel:
		b.subs.Unsubscribe(linkSubscriberID(lk.peer), pattern)
		notify, op := b.interestUpdate(pattern, lk.peer, -1)
		for _, other := range notify {
			b.sendInterest(other, op, pattern)
		}
	}
}

// announceInterestTo sends the full current interest snapshot to a freshly
// established link, so the new peer learns what this side wants.
func (b *Broker) announceInterestTo(lk *link) {
	if b.cfg.Routing != RouteSubscriptions {
		return
	}
	b.interest.mu.Lock()
	patterns := b.interest.patternsExcluding(lk.peer)
	b.interest.mu.Unlock()
	for _, pattern := range patterns {
		b.sendInterest(lk, opSubAdd, pattern)
	}
}

// dropLinkInterest removes every reference held by a departed peer and
// propagates the resulting deletions.
func (b *Broker) dropLinkInterest(peer string) {
	if b.cfg.Routing != RouteSubscriptions {
		return
	}
	b.subs.UnsubscribeAll(linkSubscriberID(peer))
	b.interest.mu.Lock()
	pats := b.interest.remote[peer]
	patterns := make([]string, 0, len(pats))
	for pattern, n := range pats {
		for i := 0; i < n; i++ {
			patterns = append(patterns, pattern)
		}
	}
	b.interest.mu.Unlock()
	for _, pattern := range patterns {
		notify, op := b.interestUpdate(pattern, peer, -1)
		for _, other := range notify {
			b.sendInterest(other, op, pattern)
		}
	}
}
