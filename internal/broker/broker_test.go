package broker

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"narada/internal/core"
	"narada/internal/event"
	"narada/internal/metrics"
	"narada/internal/ntptime"
	"narada/internal/simnet"
	"narada/internal/transport"
	"narada/internal/uuid"
)

const mib = 1024 * 1024

// env spins up a simulated WAN for broker tests.
type env struct {
	net *simnet.Network
	t   *testing.T
	rng *rand.Rand
}

func newEnv(t *testing.T, seed int64) *env {
	return &env{
		net: simnet.NewPaperWAN(simnet.Config{Scale: 300, Seed: seed}),
		t:   t,
		rng: rand.New(rand.NewSource(seed)),
	}
}

func (e *env) node(site, host string) (*transport.SimNode, *ntptime.Service) {
	skew := e.net.RandomSkew(20 * time.Millisecond)
	node := transport.NewSimNode(e.net, site, host, skew)
	ntp := ntptime.NewService(node.Clock(), skew, e.rng)
	ntp.InitImmediately()
	return node, ntp
}

func (e *env) broker(site, name string, cfg Config) *Broker {
	e.t.Helper()
	node, ntp := e.node(site, name)
	if cfg.LogicalAddress == "" {
		cfg.LogicalAddress = name
	}
	if cfg.Realm == "" {
		cfg.Realm = site
	}
	if cfg.Sampler == nil {
		cfg.Sampler = metrics.NewStaticSampler(metrics.Usage{
			TotalMemBytes: 512 * mib, UsedMemBytes: 64 * mib,
		})
	}
	b, err := New(node, ntp, cfg)
	if err != nil {
		e.t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		e.t.Fatal(err)
	}
	e.t.Cleanup(b.Close)
	return b
}

func TestNewRequiresLogicalAddress(t *testing.T) {
	e := newEnv(t, 1)
	node, ntp := e.node(simnet.SiteUMN, "x")
	if _, err := New(node, ntp, Config{}); err == nil {
		t.Fatal("missing logical address accepted")
	}
}

func TestDoubleStartRejected(t *testing.T) {
	e := newEnv(t, 2)
	b := e.broker(simnet.SiteUMN, "b1", Config{})
	if err := b.Start(); err == nil {
		t.Fatal("second Start accepted")
	}
}

func TestLocalPubSub(t *testing.T) {
	e := newEnv(t, 3)
	b := e.broker(simnet.SiteUMN, "b1", Config{})
	node, _ := e.node(simnet.SiteUMN, "client")
	c, err := Connect(node, b.StreamAddr(), "client")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Subscribe("sports/*"); err != nil {
		t.Fatal(err)
	}
	e.net.Clock().Sleep(50 * time.Millisecond) // let the subscribe land

	pub, err := Connect(node, b.StreamAddr(), "publisher")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish("sports/cricket", []byte("score")); err != nil {
		t.Fatal(err)
	}
	ev, err := c.Next(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Topic != "sports/cricket" || string(ev.Payload) != "score" {
		t.Fatalf("got %q on %q", ev.Payload, ev.Topic)
	}
}

func TestSubscriberDoesNotReceiveUnmatched(t *testing.T) {
	e := newEnv(t, 4)
	b := e.broker(simnet.SiteUMN, "b1", Config{})
	node, _ := e.node(simnet.SiteUMN, "client")
	c, _ := Connect(node, b.StreamAddr(), "client")
	defer c.Close()
	_ = c.Subscribe("sports/cricket")
	e.net.Clock().Sleep(50 * time.Millisecond)
	_ = c.Publish("news/weather", []byte("rain"))
	if _, err := c.Next(300 * time.Millisecond); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("unmatched event delivered: %v", err)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	e := newEnv(t, 5)
	b := e.broker(simnet.SiteUMN, "b1", Config{})
	node, _ := e.node(simnet.SiteUMN, "client")
	c, _ := Connect(node, b.StreamAddr(), "client")
	defer c.Close()
	_ = c.Subscribe("a/b")
	e.net.Clock().Sleep(50 * time.Millisecond)
	_ = c.Unsubscribe("a/b")
	e.net.Clock().Sleep(50 * time.Millisecond)
	_ = c.Publish("a/b", []byte("x"))
	if _, err := c.Next(300 * time.Millisecond); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("event delivered after unsubscribe: %v", err)
	}
}

func TestPubSubAcrossLinks(t *testing.T) {
	// Events published at one broker must reach subscribers at a broker
	// three links away (flooding with TTL).
	e := newEnv(t, 6)
	brokers := []*Broker{
		e.broker(simnet.SiteIndianapolis, "b1", Config{}),
		e.broker(simnet.SiteUMN, "b2", Config{}),
		e.broker(simnet.SiteNCSA, "b3", Config{}),
		e.broker(simnet.SiteFSU, "b4", Config{}),
	}
	for i := 1; i < len(brokers); i++ {
		if err := brokers[i].LinkTo(brokers[i-1].StreamAddr()); err != nil {
			t.Fatal(err)
		}
	}
	e.net.Clock().Sleep(100 * time.Millisecond)

	node, _ := e.node(simnet.SiteFSU, "sub")
	c, _ := Connect(node, brokers[3].StreamAddr(), "sub")
	defer c.Close()
	_ = c.Subscribe("wan/**")
	e.net.Clock().Sleep(100 * time.Millisecond)

	if err := brokers[0].Publish("wan/test/hello", []byte("across")); err != nil {
		t.Fatal(err)
	}
	ev, err := c.Next(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(ev.Payload) != "across" {
		t.Fatalf("payload = %q", ev.Payload)
	}
}

func TestFloodDedupNoDuplicateDelivery(t *testing.T) {
	// A triangle has two paths to every broker: subscribers must still see
	// each event exactly once.
	e := newEnv(t, 7)
	b1 := e.broker(simnet.SiteIndianapolis, "t1", Config{})
	b2 := e.broker(simnet.SiteUMN, "t2", Config{})
	b3 := e.broker(simnet.SiteNCSA, "t3", Config{})
	for _, pair := range [][2]*Broker{{b2, b1}, {b3, b1}, {b3, b2}} {
		if err := pair[0].LinkTo(pair[1].StreamAddr()); err != nil {
			t.Fatal(err)
		}
	}
	e.net.Clock().Sleep(100 * time.Millisecond)

	node, _ := e.node(simnet.SiteNCSA, "sub")
	c, _ := Connect(node, b3.StreamAddr(), "sub")
	defer c.Close()
	_ = c.Subscribe("x/y")
	e.net.Clock().Sleep(100 * time.Millisecond)

	if err := b1.Publish("x/y", []byte("once")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if ev, err := c.Next(500 * time.Millisecond); err == nil {
		t.Fatalf("duplicate delivery: %v on %s", ev.ID, ev.Topic)
	}
}

func TestLinkCountTracked(t *testing.T) {
	e := newEnv(t, 8)
	b1 := e.broker(simnet.SiteUMN, "b1", Config{})
	b2 := e.broker(simnet.SiteNCSA, "b2", Config{})
	if err := b2.LinkTo(b1.StreamAddr()); err != nil {
		t.Fatal(err)
	}
	e.net.Clock().Sleep(100 * time.Millisecond)
	if b1.LinkCount() != 1 || b2.LinkCount() != 1 {
		t.Fatalf("link counts = %d/%d, want 1/1", b1.LinkCount(), b2.LinkCount())
	}
	if b1.Usage().Links != 1 {
		t.Fatalf("sampler links = %d, want 1", b1.Usage().Links)
	}
}

// sendDiscoveryRequest fires a request at the broker over UDP and collects
// the response (if any) on a fresh endpoint.
func sendDiscoveryRequest(t *testing.T, e *env, b *Broker, req *core.DiscoveryRequest, wait time.Duration) *core.DiscoveryResponse {
	t.Helper()
	node, _ := e.node(simnet.SiteBloomington, fmt.Sprintf("probe%d", e.rng.Int()))
	pc, err := node.ListenPacket(0)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	req.ResponseAddr = pc.LocalAddr()
	ev := event.New(event.TypeDiscoveryRequest, "", core.EncodeDiscoveryRequest(req))
	ev.Source = req.Requester
	if err := pc.Send(b.UDPAddr(), event.Encode(ev)); err != nil {
		t.Fatal(err)
	}
	payload, _, err := pc.RecvTimeout(wait)
	if err != nil {
		return nil
	}
	got, err := event.Decode(payload)
	if err != nil || got.Type != event.TypeDiscoveryResponse {
		return nil
	}
	resp, err := core.DecodeDiscoveryResponse(got.Payload)
	if err != nil {
		return nil
	}
	return resp
}

func TestDiscoveryRequestOverUDP(t *testing.T) {
	e := newEnv(t, 9)
	b := e.broker(simnet.SiteIndianapolis, "b1", Config{Hostname: "complexity", Geo: "Indianapolis"})
	req := &core.DiscoveryRequest{ID: uuid.New(), Requester: "probe", Realm: "bloomington"}
	resp := sendDiscoveryRequest(t, e, b, req, 2*time.Second)
	if resp == nil {
		t.Fatal("no discovery response")
	}
	if resp.RequestID != req.ID {
		t.Fatal("response correlates to wrong request")
	}
	if resp.Broker.LogicalAddress != "b1" || resp.Broker.Endpoint("udp") == "" ||
		resp.Broker.Endpoint("tcp") == "" {
		t.Fatalf("incomplete broker info: %+v", resp.Broker)
	}
	if resp.Usage.TotalMemBytes == 0 {
		t.Fatal("usage metrics missing")
	}
	if resp.Timestamp.IsZero() {
		t.Fatal("NTP timestamp missing")
	}
}

func TestDiscoveryRequestDeduplicated(t *testing.T) {
	e := newEnv(t, 10)
	b := e.broker(simnet.SiteIndianapolis, "b1", Config{})
	req := &core.DiscoveryRequest{ID: uuid.New(), Requester: "probe"}
	if resp := sendDiscoveryRequest(t, e, b, req, 2*time.Second); resp == nil {
		t.Fatal("first request got no response")
	}
	// Same UUID again: the broker must not expend cycles on it.
	if resp := sendDiscoveryRequest(t, e, b, req, 500*time.Millisecond); resp != nil {
		t.Fatal("duplicate request answered")
	}
}

func TestResponsePolicyCredential(t *testing.T) {
	e := newEnv(t, 11)
	b := e.broker(simnet.SiteIndianapolis, "b1", Config{
		Policy: core.ResponsePolicy{RequiredCredential: []byte("sesame")},
	})
	noCred := &core.DiscoveryRequest{ID: uuid.New(), Requester: "probe"}
	if resp := sendDiscoveryRequest(t, e, b, noCred, 500*time.Millisecond); resp != nil {
		t.Fatal("request without credential answered")
	}
	withCred := &core.DiscoveryRequest{ID: uuid.New(), Requester: "probe", Credentials: []byte("sesame")}
	if resp := sendDiscoveryRequest(t, e, b, withCred, 2*time.Second); resp == nil {
		t.Fatal("credentialed request not answered")
	}
}

func TestResponsePolicyRealm(t *testing.T) {
	e := newEnv(t, 12)
	b := e.broker(simnet.SiteIndianapolis, "b1", Config{
		Policy: core.ResponsePolicy{AllowedRealms: []string{"umn"}},
	})
	wrongRealm := &core.DiscoveryRequest{ID: uuid.New(), Requester: "probe", Realm: "cardiff"}
	if resp := sendDiscoveryRequest(t, e, b, wrongRealm, 500*time.Millisecond); resp != nil {
		t.Fatal("request from disallowed realm answered")
	}
}

func TestPingPongOverUDP(t *testing.T) {
	e := newEnv(t, 13)
	b := e.broker(simnet.SiteIndianapolis, "b1", Config{})
	node, _ := e.node(simnet.SiteBloomington, "pinger")
	pc, _ := node.ListenPacket(0)
	defer pc.Close()

	sent := node.Clock().Now()
	ping := &core.Ping{ID: uuid.New(), SentAt: sent, Seq: 3}
	ev := event.New(event.TypePing, "", core.EncodePing(ping))
	if err := pc.Send(b.UDPAddr(), event.Encode(ev)); err != nil {
		t.Fatal(err)
	}
	payload, _, err := pc.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	got, err := event.Decode(payload)
	if err != nil || got.Type != event.TypePong {
		t.Fatalf("reply type %v err %v", got.Type, err)
	}
	pong, err := core.DecodePong(got.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if pong.ID != ping.ID || pong.Seq != 3 || !pong.EchoSent.Equal(sent) {
		t.Fatalf("pong fields wrong: %+v", pong)
	}
	if pong.Responder != "b1" {
		t.Fatalf("responder = %q", pong.Responder)
	}
}

func TestDiscoveryRequestFloodedAcrossChain(t *testing.T) {
	// Request injected at one end of a 3-broker chain: all three respond.
	e := newEnv(t, 14)
	b1 := e.broker(simnet.SiteIndianapolis, "c1", Config{})
	b2 := e.broker(simnet.SiteUMN, "c2", Config{})
	b3 := e.broker(simnet.SiteNCSA, "c3", Config{})
	_ = b2.LinkTo(b1.StreamAddr())
	_ = b3.LinkTo(b2.StreamAddr())
	e.net.Clock().Sleep(100 * time.Millisecond)

	node, _ := e.node(simnet.SiteBloomington, "probe")
	pc, _ := node.ListenPacket(0)
	defer pc.Close()
	req := &core.DiscoveryRequest{ID: uuid.New(), Requester: "probe", ResponseAddr: pc.LocalAddr()}
	ev := event.New(event.TypeDiscoveryRequest, "", core.EncodeDiscoveryRequest(req))
	if err := pc.Send(b1.UDPAddr(), event.Encode(ev)); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	deadline := node.Clock().Now().Add(3 * time.Second)
	for len(seen) < 3 {
		remaining := deadline.Sub(node.Clock().Now())
		if remaining <= 0 {
			break
		}
		payload, _, err := pc.RecvTimeout(remaining)
		if err != nil {
			break
		}
		got, err := event.Decode(payload)
		if err != nil || got.Type != event.TypeDiscoveryResponse {
			continue
		}
		resp, err := core.DecodeDiscoveryResponse(got.Payload)
		if err == nil {
			seen[resp.Broker.LogicalAddress] = true
		}
	}
	if len(seen) != 3 {
		t.Fatalf("responses from %d brokers, want 3: %v", len(seen), seen)
	}
}

func TestPublishValidatesTopic(t *testing.T) {
	e := newEnv(t, 15)
	b := e.broker(simnet.SiteUMN, "b1", Config{})
	if err := b.Publish("bad//topic", nil); err == nil {
		t.Fatal("invalid topic accepted")
	}
}

func TestClientCountAndClose(t *testing.T) {
	e := newEnv(t, 16)
	b := e.broker(simnet.SiteUMN, "b1", Config{})
	node, _ := e.node(simnet.SiteUMN, "c")
	c, err := Connect(node, b.StreamAddr(), "c")
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Subscribe("a/b")
	e.net.Clock().Sleep(100 * time.Millisecond)
	if b.ClientCount() != 1 {
		t.Fatalf("ClientCount = %d", b.ClientCount())
	}
	c.Close()
	e.net.Clock().Sleep(200 * time.Millisecond)
	if b.ClientCount() != 0 {
		t.Fatalf("ClientCount after close = %d", b.ClientCount())
	}
	if _, err := c.Next(0); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Next after close: %v", err)
	}
}

func TestHeartbeatKeepsHealthyLinkAlive(t *testing.T) {
	// A generous interval: the 3-interval liveness window must stay wide in
	// wall time (3 x 2s model / scale 300 = 20ms) so scheduler contention
	// (e.g. a parallel benchmark run) cannot starve a healthy link.
	e := newEnv(t, 20)
	b1 := e.broker(simnet.SiteUMN, "hb1", Config{HeartbeatInterval: 2 * time.Second})
	b2 := e.broker(simnet.SiteNCSA, "hb2", Config{HeartbeatInterval: 2 * time.Second})
	if err := b2.LinkTo(b1.StreamAddr()); err != nil {
		t.Fatal(err)
	}
	e.net.Clock().Sleep(10 * time.Second) // several heartbeat intervals
	if b1.LinkCount() != 1 || b2.LinkCount() != 1 {
		t.Fatalf("healthy link dropped: %d/%d", b1.LinkCount(), b2.LinkCount())
	}
}

func TestHeartbeatDropsPartitionedLink(t *testing.T) {
	e := newEnv(t, 21)
	b1 := e.broker(simnet.SiteUMN, "hp1", Config{HeartbeatInterval: 500 * time.Millisecond})
	b2 := e.broker(simnet.SiteNCSA, "hp2", Config{HeartbeatInterval: 500 * time.Millisecond})
	if err := b2.LinkTo(b1.StreamAddr()); err != nil {
		t.Fatal(err)
	}
	e.net.Clock().Sleep(300 * time.Millisecond)
	e.net.Partition(simnet.SiteUMN, simnet.SiteNCSA)
	// Heartbeat sends now fail (no route); both ends must shed the link.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if b1.LinkCount() == 0 && b2.LinkCount() == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("partitioned link survived: %d/%d", b1.LinkCount(), b2.LinkCount())
}

func TestDiscoveryRequestHopsIncrement(t *testing.T) {
	// Hop counts increase along the dissemination chain (diagnostics).
	e := newEnv(t, 22)
	b1 := e.broker(simnet.SiteIndianapolis, "h1", Config{})
	b2 := e.broker(simnet.SiteUMN, "h2", Config{})
	_ = b2.LinkTo(b1.StreamAddr())
	e.net.Clock().Sleep(100 * time.Millisecond)

	node, _ := e.node(simnet.SiteBloomington, "hopprobe")
	pc, _ := node.ListenPacket(0)
	defer pc.Close()
	req := &core.DiscoveryRequest{ID: uuid.New(), Requester: "probe", ResponseAddr: pc.LocalAddr()}
	ev := event.New(event.TypeDiscoveryRequest, "", core.EncodeDiscoveryRequest(req))
	if err := pc.Send(b1.UDPAddr(), event.Encode(ev)); err != nil {
		t.Fatal(err)
	}
	// Both brokers respond; b2 received the request with Hops=1. The hop
	// count is diagnostic (not echoed in responses), so just assert both
	// responses arrive, proving the re-encoded forward decoded cleanly.
	for i := 0; i < 2; i++ {
		if _, _, err := pc.RecvTimeout(3 * time.Second); err != nil {
			t.Fatalf("response %d missing after hop-forwarding: %v", i, err)
		}
	}
}

func TestAdvertisementRelayViaClient(t *testing.T) {
	// A client can relay an advertisement event; the broker republishes it
	// on the public advertisement topic so subscribed BDNs learn it.
	e := newEnv(t, 23)
	b := e.broker(simnet.SiteUMN, "relay-broker", Config{})
	node, _ := e.node(simnet.SiteUMN, "watcher")
	watcher, _ := Connect(node, b.StreamAddr(), "watcher")
	defer watcher.Close()
	_ = watcher.Subscribe("Services/BrokerDiscoveryNodes/BrokerAdvertisement")
	e.net.Clock().Sleep(100 * time.Millisecond)

	adv := &core.Advertisement{Broker: core.BrokerInfo{LogicalAddress: "announced"}}
	relayNode, _ := e.node(simnet.SiteUMN, "relay")
	relayConn, err := relayNode.Dial(b.StreamAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer relayConn.Close()
	// Send a raw TypeAdvertisement event: the broker must republish it on
	// the public advertisement topic.
	ev := event.New(event.TypeAdvertisement, "", core.EncodeAdvertisement(adv))
	if err := relayConn.Send(event.Encode(ev)); err != nil {
		t.Fatal(err)
	}
	got, err := watcher.Next(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := core.DecodeAdvertisement(got.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Broker.LogicalAddress != "announced" {
		t.Fatalf("relayed advertisement for %q", decoded.Broker.LogicalAddress)
	}
}

func TestBrokerMulticastRequestPath(t *testing.T) {
	// A broker joined to the discovery group answers multicast requests.
	e := newEnv(t, 24)
	b := e.broker(simnet.SiteIndianapolis, "mc-broker", Config{MulticastGroup: "narada/discovery"})
	_ = b
	node, _ := e.node(simnet.SiteIndianapolis, "mc-client")
	pc, _ := node.ListenPacket(0)
	defer pc.Close()
	req := &core.DiscoveryRequest{ID: uuid.New(), Requester: "mc", ResponseAddr: pc.LocalAddr()}
	ev := event.New(event.TypeDiscoveryRequest, "", core.EncodeDiscoveryRequest(req))
	if err := pc.SendGroup("narada/discovery", event.Encode(ev)); err != nil {
		t.Fatal(err)
	}
	payload, _, err := pc.RecvTimeout(3 * time.Second)
	if err != nil {
		t.Fatal("no response to multicast request")
	}
	got, err := event.Decode(payload)
	if err != nil || got.Type != event.TypeDiscoveryResponse {
		t.Fatalf("reply type %v err %v", got, err)
	}
}

func TestPublishTTLBoundsFlood(t *testing.T) {
	// An event published with TTL smaller than the chain length must not
	// reach the far end (flood termination).
	e := newEnv(t, 25)
	b1 := e.broker(simnet.SiteIndianapolis, "ttl1", Config{})
	b2 := e.broker(simnet.SiteUMN, "ttl2", Config{})
	b3 := e.broker(simnet.SiteNCSA, "ttl3", Config{})
	_ = b2.LinkTo(b1.StreamAddr())
	_ = b3.LinkTo(b2.StreamAddr())
	e.net.Clock().Sleep(100 * time.Millisecond)

	node, _ := e.node(simnet.SiteNCSA, "farsub")
	c, _ := Connect(node, b3.StreamAddr(), "farsub")
	defer c.Close()
	_ = c.Subscribe("ttl/test")
	e.net.Clock().Sleep(100 * time.Millisecond)

	// Hand-craft a publish with TTL=1: b1 forwards to b2 (TTL 0), b2 must
	// not forward to b3.
	nodePub, _ := e.node(simnet.SiteIndianapolis, "pub")
	pubConn, err := nodePub.Dial(b1.StreamAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer pubConn.Close()
	ev := event.New(event.TypePublish, "ttl/test", []byte("short-lived"))
	ev.TTL = 1
	if err := pubConn.Send(event.Encode(ev)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(500 * time.Millisecond); err == nil {
		t.Fatal("TTL-1 event crossed two links")
	}
}

func TestReplayServiceDeliversMissedEvents(t *testing.T) {
	e := newEnv(t, 26)
	b := e.broker(simnet.SiteUMN, "replay-broker", Config{ReplayCapacity: 16})

	// Publish before any subscriber exists.
	for i := 0; i < 5; i++ {
		if err := b.Publish("history/log", []byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	node, _ := e.node(simnet.SiteUMN, "late")
	c, _ := Connect(node, b.StreamAddr(), "late")
	defer c.Close()
	_ = c.Subscribe("history/log")
	e.net.Clock().Sleep(100 * time.Millisecond)

	if err := c.RequestReplay("history/log", 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ev, err := c.Next(5 * time.Second)
		if err != nil {
			t.Fatalf("replayed event %d missing: %v", i, err)
		}
		want := fmt.Sprintf("e%d", 2+i) // most recent 3, oldest first
		if string(ev.Payload) != want {
			t.Fatalf("replayed %q, want %q", ev.Payload, want)
		}
	}
}

func TestReplayDisabledIsNoOp(t *testing.T) {
	e := newEnv(t, 27)
	b := e.broker(simnet.SiteUMN, "noreplay", Config{})
	_ = b.Publish("history/log", []byte("lost"))
	node, _ := e.node(simnet.SiteUMN, "late")
	c, _ := Connect(node, b.StreamAddr(), "late")
	defer c.Close()
	if err := c.RequestReplay("history/log", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(300 * time.Millisecond); err == nil {
		t.Fatal("replay served with the service disabled")
	}
}
