package broker

import (
	"sync"
	"time"

	"narada/internal/event"
)

// helloTimeout bounds link handshakes (model time; generous for WAN paths).
const helloTimeout = 10 * time.Second

// serveLink runs one broker link: when replyHello is set (we are the accept
// side) it first answers the peer's hello, then pumps incoming events into
// the routing fabric until the link drops.
func (b *Broker) serveLink(lk *link, replyHello bool) {
	if replyHello {
		hello := event.New(event.TypeLinkHello, "", nil)
		hello.Source = b.cfg.LogicalAddress
		hello.SetHeader(helloRoleHeader, roleLink)
		hello.Timestamp = b.now()
		if err := lk.conn.Send(event.Encode(hello)); err != nil {
			_ = lk.conn.Close()
			return
		}
	}

	lk.out = newEgress(lk.conn, b.tel.egressDropped)
	if !b.registerLink(lk) {
		_ = lk.conn.Close()
		return
	}
	b.startEgress(lk.out)
	b.connectionsChanged()
	b.cfg.Logger.Info("link up", "peer", lk.peer, "role", lk.role)
	lk.touch(b.node.Clock().Now())
	if lk.role == roleLink {
		b.announceInterestTo(lk)
	}
	if b.cfg.HeartbeatInterval > 0 && lk.role == roleLink {
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.heartbeatLink(lk)
		}()
	}
	defer func() {
		lk.out.close()
		_ = lk.conn.Close()
		b.mu.Lock()
		wasCurrent := b.links[lk.peer] == lk
		if wasCurrent {
			delete(b.links, lk.peer)
		}
		b.mu.Unlock()
		// Only the currently registered link owns the peer's interest; a
		// link replaced by a duplicate must not wipe its successor's state.
		if wasCurrent && lk.role == roleLink {
			b.dropLinkInterest(lk.peer)
		}
		if wasCurrent {
			b.cfg.Logger.Info("link down", "peer", lk.peer, "role", lk.role)
		}
		b.connectionsChanged()
	}()

	for {
		frame, err := lk.conn.Recv()
		if err != nil {
			return
		}
		lk.touch(b.node.Clock().Now())
		ev, err := event.Decode(frame)
		if err != nil {
			b.tel.framesMalformed.Inc()
			continue
		}
		b.handleLinkEvent(lk, ev)
	}
}

// heartbeatLink sends periodic keepalives on a link and tears it down after
// three silent intervals or a failed send (e.g. a partitioned path).
func (b *Broker) heartbeatLink(lk *link) {
	clock := b.node.Clock()
	interval := b.cfg.HeartbeatInterval
	for {
		select {
		case <-b.closed:
			return
		case <-clock.After(interval):
		}
		hb := event.New(event.TypeLinkHeartbeat, "", nil)
		hb.Source = b.cfg.LogicalAddress
		if !lk.out.sendControl(event.Encode(hb)) {
			_ = lk.conn.Close()
			return
		}
		if clock.Now().Sub(lk.lastSeen()) > 3*interval {
			_ = lk.conn.Close()
			return
		}
	}
}

func (b *Broker) handleLinkEvent(lk *link, ev *event.Event) {
	switch ev.Type {
	case event.TypePublish:
		b.tel.framesPublish.Inc()
		if b.evDedup.Seen(ev.ID) {
			return
		}
		b.routePublish(ev, lk.peer)
	case event.TypeDiscoveryRequest:
		b.tel.framesDiscovery.Inc()
		b.handleDiscoveryRequest(ev, lk.peer)
	case event.TypeControl:
		b.tel.framesControl.Inc()
		b.handleInterestControl(lk, ev)
	case event.TypeLinkHeartbeat:
		// Liveness only; nothing to route.
		b.tel.framesControl.Inc()
	default:
		// Links carry only substrate traffic; ignore anything else.
		b.tel.framesOther.Inc()
	}
}

// pubScratch holds the per-publish scratch buffers the fan-out path reuses
// across events, keeping the hot loop free of allocations.
type pubScratch struct {
	ids    []string  // matched subscriber ids (deduped, unsorted)
	peers  []string  // link peers with matching remote interest
	locals []*egress // matched local client queues
	links  []*egress // forwarding targets
}

var pubScratchPool = sync.Pool{New: func() any {
	return &pubScratch{
		ids:    make([]string, 0, 64),
		peers:  make([]string, 0, 8),
		locals: make([]*egress, 0, 64),
		links:  make([]*egress, 0, 8),
	}
}}

func containsString(ss []string, s string) bool {
	for _, have := range ss {
		if have == s {
			return true
		}
	}
	return false
}

// routePublish delivers a publish event to matching local subscribers and
// forwards it over links (except the one it arrived on), decrementing the
// TTL. In RouteFlood mode every link is used; in RouteSubscriptions mode
// only links whose peer registered a matching interest. Duplicate
// suppression has already happened at the ingress point.
//
// This is the substrate's hottest loop, so it is built around three rules:
// match without allocating (MatchAppend into pooled scratch), snapshot every
// delivery target under a single lock acquisition, and encode each distinct
// frame exactly once no matter how wide the fan-out. Actual writes happen on
// the per-connection egress queues, so a slow peer cannot stall routing.
func (b *Broker) routePublish(ev *event.Event, fromPeer string) {
	if b.history != nil {
		b.history.Add(ev)
	}
	sc := pubScratchPool.Get().(*pubScratch)
	sc.ids = b.subs.MatchAppend(ev.Topic, sc.ids[:0])
	sc.peers = sc.peers[:0]
	sc.locals = sc.locals[:0]
	sc.links = sc.links[:0]

	// One lock acquisition snapshots every delivery target: matched local
	// clients, and (TTL permitting) the forwarding links.
	b.mu.Lock()
	for _, id := range sc.ids {
		if peer, isLink := isLinkSubscriber(id); isLink {
			sc.peers = append(sc.peers, peer)
			continue
		}
		if c, ok := b.clients[id]; ok {
			sc.locals = append(sc.locals, c.out)
		}
	}
	if ev.TTL > 0 {
		for name, lk := range b.links {
			if name == fromPeer || lk.role == roleBDN {
				continue
			}
			if b.cfg.Routing == RouteSubscriptions && !containsString(sc.peers, name) {
				continue
			}
			sc.links = append(sc.links, lk.out)
		}
	}
	b.mu.Unlock()

	// Local delivery: one frame shared by every matched subscriber.
	if len(sc.locals) > 0 {
		frame := event.Encode(ev)
		for _, q := range sc.locals {
			q.sendData(frame)
		}
		b.tel.deliveredLocal.Add(uint64(len(sc.locals)))
	}
	// Network dissemination: one TTL-decremented frame shared by every link.
	// A shallow copy suffices — Encode only reads the event.
	if len(sc.links) > 0 {
		fwd := *ev
		fwd.TTL--
		frame := event.Encode(&fwd)
		for _, q := range sc.links {
			q.sendData(frame)
		}
		b.tel.deliveredLink.Add(uint64(len(sc.links)))
	}
	pubScratchPool.Put(sc)
}

// linksExcept snapshots the broker links excluding one peer and excluding
// BDN-role connections (BDNs inject; they are not flooding targets).
func (b *Broker) linksExcept(peer string) []*link {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*link, 0, len(b.links))
	for name, lk := range b.links {
		if name == peer || lk.role == roleBDN {
			continue
		}
		out = append(out, lk)
	}
	return out
}
