package broker

import (
	"time"

	"narada/internal/event"
)

// helloTimeout bounds link handshakes (model time; generous for WAN paths).
const helloTimeout = 10 * time.Second

// serveLink runs one broker link: when replyHello is set (we are the accept
// side) it first answers the peer's hello, then pumps incoming events into
// the routing fabric until the link drops.
func (b *Broker) serveLink(lk *link, replyHello bool) {
	if replyHello {
		hello := event.New(event.TypeLinkHello, "", nil)
		hello.Source = b.cfg.LogicalAddress
		hello.SetHeader(helloRoleHeader, roleLink)
		hello.Timestamp = b.now()
		if err := lk.conn.Send(event.Encode(hello)); err != nil {
			_ = lk.conn.Close()
			return
		}
	}

	if !b.registerLink(lk) {
		_ = lk.conn.Close()
		return
	}
	b.connectionsChanged()
	b.cfg.Logger.Info("link up", "peer", lk.peer, "role", lk.role)
	lk.touch(b.node.Clock().Now())
	if lk.role == roleLink {
		b.announceInterestTo(lk)
	}
	if b.cfg.HeartbeatInterval > 0 && lk.role == roleLink {
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.heartbeatLink(lk)
		}()
	}
	defer func() {
		_ = lk.conn.Close()
		b.mu.Lock()
		wasCurrent := b.links[lk.peer] == lk
		if wasCurrent {
			delete(b.links, lk.peer)
		}
		b.mu.Unlock()
		// Only the currently registered link owns the peer's interest; a
		// link replaced by a duplicate must not wipe its successor's state.
		if wasCurrent && lk.role == roleLink {
			b.dropLinkInterest(lk.peer)
		}
		if wasCurrent {
			b.cfg.Logger.Info("link down", "peer", lk.peer, "role", lk.role)
		}
		b.connectionsChanged()
	}()

	for {
		frame, err := lk.conn.Recv()
		if err != nil {
			return
		}
		lk.touch(b.node.Clock().Now())
		ev, err := event.Decode(frame)
		if err != nil {
			continue
		}
		b.handleLinkEvent(lk, ev)
	}
}

// heartbeatLink sends periodic keepalives on a link and tears it down after
// three silent intervals or a failed send (e.g. a partitioned path).
func (b *Broker) heartbeatLink(lk *link) {
	clock := b.node.Clock()
	interval := b.cfg.HeartbeatInterval
	for {
		select {
		case <-b.closed:
			return
		case <-clock.After(interval):
		}
		hb := event.New(event.TypeLinkHeartbeat, "", nil)
		hb.Source = b.cfg.LogicalAddress
		if err := lk.conn.Send(event.Encode(hb)); err != nil {
			_ = lk.conn.Close()
			return
		}
		if clock.Now().Sub(lk.lastSeen()) > 3*interval {
			_ = lk.conn.Close()
			return
		}
	}
}

func (b *Broker) handleLinkEvent(lk *link, ev *event.Event) {
	switch ev.Type {
	case event.TypePublish:
		if b.evDedup.Seen(ev.ID) {
			return
		}
		b.routePublish(ev, lk.peer)
	case event.TypeDiscoveryRequest:
		b.handleDiscoveryRequest(ev, lk.peer)
	case event.TypeControl:
		b.handleInterestControl(lk, ev)
	case event.TypeLinkHeartbeat:
		// Liveness only; nothing to route.
	default:
		// Links carry only substrate traffic; ignore anything else.
	}
}

// routePublish delivers a publish event to matching local subscribers and
// forwards it over links (except the one it arrived on), decrementing the
// TTL. In RouteFlood mode every link is used; in RouteSubscriptions mode
// only links whose peer registered a matching interest. Duplicate
// suppression has already happened at the ingress point.
func (b *Broker) routePublish(ev *event.Event, fromPeer string) {
	if b.history != nil {
		b.history.Add(ev)
	}
	var interestedPeers map[string]bool
	for _, id := range b.subs.Match(ev.Topic) {
		if peer, isLink := isLinkSubscriber(id); isLink {
			if interestedPeers == nil {
				interestedPeers = make(map[string]bool, 4)
			}
			interestedPeers[peer] = true
			continue
		}
		b.mu.Lock()
		c, ok := b.clients[id]
		b.mu.Unlock()
		if ok {
			_ = c.conn.Send(event.Encode(ev))
		}
	}
	// Network dissemination.
	if ev.TTL == 0 {
		return
	}
	fwd := ev.Clone()
	fwd.TTL--
	frame := event.Encode(fwd)
	for _, lk := range b.linksExcept(fromPeer) {
		if b.cfg.Routing == RouteSubscriptions && !interestedPeers[lk.peer] {
			continue
		}
		_ = lk.conn.Send(frame)
	}
}

// linksExcept snapshots the broker links excluding one peer and excluding
// BDN-role connections (BDNs inject; they are not flooding targets).
func (b *Broker) linksExcept(peer string) []*link {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*link, 0, len(b.links))
	for name, lk := range b.links {
		if name == peer || lk.role == roleBDN {
			continue
		}
		out = append(out, lk)
	}
	return out
}
