package broker

import (
	"sync"
	"time"

	"narada/internal/event"
	"narada/internal/topics"
)

// helloTimeout bounds link handshakes (model time; generous for WAN paths).
const helloTimeout = 10 * time.Second

// serveLink runs one broker link: when replyHello is set (we are the accept
// side) it first answers the peer's hello, then pumps incoming events into
// the routing fabric until the link drops.
func (b *Broker) serveLink(lk *link, replyHello bool) {
	if replyHello {
		hello := event.New(event.TypeLinkHello, "", nil)
		hello.Source = b.cfg.LogicalAddress
		hello.SetHeader(helloRoleHeader, roleLink)
		hello.Timestamp = b.now()
		if err := lk.conn.Send(event.Encode(hello)); err != nil {
			_ = lk.conn.Close()
			return
		}
	}

	lk.out = b.newEgress(lk.conn)
	if !b.registerLink(lk) {
		_ = lk.conn.Close()
		return
	}
	b.startEgress(lk.out)
	b.connectionsChanged()
	b.cfg.Logger.Info("link up", "peer", lk.peer, "role", lk.role)
	lk.touch(b.node.Clock().Now())
	if lk.role == roleLink {
		b.announceInterestTo(lk)
	}
	if b.cfg.HeartbeatInterval > 0 && lk.role == roleLink {
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.heartbeatLink(lk)
		}()
	}
	defer func() {
		lk.out.close()
		_ = lk.conn.Close()
		b.mu.Lock()
		wasCurrent := b.links[lk.peer] == lk
		if wasCurrent {
			delete(b.links, lk.peer)
			b.rebuildLinkSnap()
		}
		b.mu.Unlock()
		// Only the currently registered link owns the peer's interest; a
		// link replaced by a duplicate must not wipe its successor's state.
		if wasCurrent && lk.role == roleLink {
			b.dropLinkInterest(lk.peer)
		}
		if wasCurrent {
			b.cfg.Logger.Info("link down", "peer", lk.peer, "role", lk.role)
		}
		b.connectionsChanged()
	}()

	for {
		frame, err := lk.conn.Recv()
		if err != nil {
			return
		}
		lk.touch(b.node.Clock().Now())
		ev, err := event.Decode(frame)
		if err != nil {
			b.tel.framesMalformed.Inc()
			continue
		}
		b.handleLinkEvent(lk, ev)
	}
}

// heartbeatLink sends periodic keepalives on a link and tears it down after
// three silent intervals or a failed send (e.g. a partitioned path).
func (b *Broker) heartbeatLink(lk *link) {
	clock := b.node.Clock()
	interval := b.cfg.HeartbeatInterval
	for {
		select {
		case <-b.closed:
			return
		case <-clock.After(interval):
		}
		hb := event.New(event.TypeLinkHeartbeat, "", nil)
		hb.Source = b.cfg.LogicalAddress
		if !lk.out.sendControl(b.frames.encode(hb, 1)) {
			_ = lk.conn.Close()
			return
		}
		if clock.Now().Sub(lk.lastSeen()) > 3*interval {
			_ = lk.conn.Close()
			return
		}
	}
}

func (b *Broker) handleLinkEvent(lk *link, ev *event.Event) {
	switch ev.Type {
	case event.TypePublish:
		b.tel.framesPublish.Inc()
		if b.evDedup.Seen(ev.ID) {
			return
		}
		b.routePublish(ev, lk.peer)
	case event.TypeDiscoveryRequest:
		b.tel.framesDiscovery.Inc()
		b.handleDiscoveryRequest(ev, lk.peer)
	case event.TypeControl:
		b.tel.framesControl.Inc()
		b.handleInterestControl(lk, ev)
	case event.TypeLinkHeartbeat:
		// Liveness only; nothing to route.
		b.tel.framesControl.Inc()
	default:
		// Links carry only substrate traffic; ignore anything else.
		b.tel.framesOther.Inc()
	}
}

// pubScratch holds the per-publish scratch state the fan-out path reuses
// across events, keeping the hot loop free of allocations. The visit closure
// is built once at pool-New time (not per publish — a fresh closure would be
// the fan-out's only allocation) and appends each matched registration to
// the scratch it is bound to.
type pubScratch struct {
	match  topics.Scratch // epoch-stamped dedup state for MatchEachUnique
	peers  []string       // link peers with matching remote interest
	locals []*egress      // matched local client queues
	links  []*egress      // forwarding targets
	visit  func(id string, val any)
}

var pubScratchPool = sync.Pool{New: func() any {
	sc := &pubScratch{
		peers:  make([]string, 0, 8),
		locals: make([]*egress, 0, 64),
		links:  make([]*egress, 0, 8),
	}
	sc.visit = func(id string, val any) {
		// Local subscriptions carry their delivery queue as the registration
		// value; link-interest registrations carry none and are recognised by
		// their namespaced id.
		if q, ok := val.(*egress); ok {
			sc.locals = append(sc.locals, q)
			return
		}
		if peer, isLink := isLinkSubscriber(id); isLink {
			sc.peers = append(sc.peers, peer)
		}
	}
	return sc
}}

func containsString(ss []string, s string) bool {
	for _, have := range ss {
		if have == s {
			return true
		}
	}
	return false
}

// routePublish delivers a publish event to matching local subscribers and
// forwards it over links (except the one it arrived on), decrementing the
// TTL. In RouteFlood mode every link is used; in RouteSubscriptions mode
// only links whose peer registered a matching interest. Duplicate
// suppression has already happened at the ingress point.
//
// This is the substrate's hottest loop, and it is lock-free: matching walks
// the immutable COW trie snapshot (each registration hands back its egress
// queue directly, so there is no client-map lookup), forwarding links come
// from an atomically swapped snapshot, and each distinct frame is encoded
// exactly once into a pooled ref-counted buffer shared by every target
// queue. Actual writes happen on the per-connection egress writers, so a
// slow peer cannot stall routing.
func (b *Broker) routePublish(ev *event.Event, fromPeer string) {
	if b.history != nil {
		b.history.Add(ev)
	}
	sc := pubScratchPool.Get().(*pubScratch)
	sc.peers = sc.peers[:0]
	sc.locals = sc.locals[:0]
	sc.links = sc.links[:0]
	b.subs.MatchEachUnique(ev.Topic, &sc.match, sc.visit)

	if ev.TTL > 0 {
		for _, lk := range *b.linkSnap.Load() {
			if lk.peer == fromPeer {
				continue
			}
			if b.cfg.Routing == RouteSubscriptions && !containsString(sc.peers, lk.peer) {
				continue
			}
			sc.links = append(sc.links, lk.out)
		}
	}

	// Local delivery: one ref-counted frame shared by every matched
	// subscriber; the last egress writer to flush it returns it to the pool.
	if len(sc.locals) > 0 {
		f := b.frames.encode(ev, int32(len(sc.locals)))
		for _, q := range sc.locals {
			q.sendData(f)
		}
		b.tel.deliveredLocal.Add(uint64(len(sc.locals)))
	}
	// Network dissemination: one TTL-decremented frame shared by every link.
	// A shallow copy suffices — encoding only reads the event.
	if len(sc.links) > 0 {
		fwd := *ev
		fwd.TTL--
		f := b.frames.encode(&fwd, int32(len(sc.links)))
		for _, q := range sc.links {
			q.sendData(f)
		}
		b.tel.deliveredLink.Add(uint64(len(sc.links)))
	}
	pubScratchPool.Put(sc)
}

// linksExcept returns the broker links excluding one peer; BDN-role
// connections (BDNs inject; they are not flooding targets) are already
// absent from the link snapshot. Lock-free: reads the atomic snapshot.
func (b *Broker) linksExcept(peer string) []*link {
	snap := *b.linkSnap.Load()
	out := make([]*link, 0, len(snap))
	for _, lk := range snap {
		if lk.peer == peer {
			continue
		}
		out = append(out, lk)
	}
	return out
}
