package broker

import (
	"strconv"
	"sync"
	"time"

	"narada/internal/event"
	"narada/internal/obs"
	"narada/internal/topics"
)

// helloTimeout bounds link handshakes (model time; generous for WAN paths).
const helloTimeout = 10 * time.Second

// serveLink runs one broker link: when replyHello is set (we are the accept
// side) it first answers the peer's hello, then pumps incoming events into
// the routing fabric until the link drops.
func (b *Broker) serveLink(lk *link, replyHello bool) {
	if replyHello {
		hello := event.New(event.TypeLinkHello, "", nil)
		hello.Source = b.cfg.LogicalAddress
		hello.SetHeader(helloRoleHeader, roleLink)
		hello.Timestamp = b.now()
		if err := lk.conn.Send(event.Encode(hello)); err != nil {
			_ = lk.conn.Close()
			return
		}
	}

	lk.out = b.newEgress(lk.conn, "link")
	if !b.registerLink(lk) {
		_ = lk.conn.Close()
		return
	}
	b.startEgress(lk.out)
	b.connectionsChanged()
	b.cfg.Logger.Info("link up", "peer", lk.peer, "role", lk.role)
	b.cfg.Journal.Emit(obs.EventLinkUp, lk.peer, "role="+lk.role)
	lk.touch(b.node.Clock().Now())
	if lk.role == roleLink {
		b.announceInterestTo(lk)
	}
	if b.cfg.HeartbeatInterval > 0 && lk.role == roleLink {
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.heartbeatLink(lk)
		}()
	}
	defer func() {
		lk.out.close()
		_ = lk.conn.Close()
		b.mu.Lock()
		wasCurrent := b.links[lk.peer] == lk
		if wasCurrent {
			delete(b.links, lk.peer)
			b.rebuildLinkSnap()
		}
		b.mu.Unlock()
		// Only the currently registered link owns the peer's interest; a
		// link replaced by a duplicate must not wipe its successor's state.
		if wasCurrent && lk.role == roleLink {
			b.dropLinkInterest(lk.peer)
		}
		if wasCurrent {
			b.cfg.Logger.Info("link down", "peer", lk.peer, "role", lk.role)
			b.cfg.Journal.Emit(obs.EventLinkDown, lk.peer, "role="+lk.role)
		}
		b.connectionsChanged()
	}()

	for {
		frame, err := lk.conn.Recv()
		if err != nil {
			return
		}
		lk.touch(b.node.Clock().Now())
		ev, err := event.Decode(frame)
		if err != nil {
			b.tel.framesMalformed.Inc()
			continue
		}
		b.handleLinkEvent(lk, ev)
	}
}

// heartbeatLink sends periodic keepalives on a link and tears it down after
// three silent intervals or a failed send (e.g. a partitioned path).
func (b *Broker) heartbeatLink(lk *link) {
	clock := b.node.Clock()
	interval := b.cfg.HeartbeatInterval
	for {
		select {
		case <-b.closed:
			return
		case <-clock.After(interval):
		}
		hb := event.New(event.TypeLinkHeartbeat, "", nil)
		hb.Source = b.cfg.LogicalAddress
		if !lk.out.sendControl(b.frames.encode(hb, 1)) {
			_ = lk.conn.Close()
			return
		}
		if clock.Now().Sub(lk.lastSeen()) > 3*interval {
			_ = lk.conn.Close()
			return
		}
	}
}

func (b *Broker) handleLinkEvent(lk *link, ev *event.Event) {
	switch ev.Type {
	case event.TypePublish:
		b.tel.framesPublish.Inc()
		if b.evDedup.Seen(ev.ID) {
			return
		}
		// A sampled message crossing a link records the hop, so the
		// assembled trace shows which broker-to-broker edges it travelled.
		if origin, hop, ok := ev.MsgTrace(); ok {
			b.traceFor(ev.ID.String()).Event("msg-hop", b.now(),
				obs.A("broker", b.cfg.LogicalAddress),
				obs.A("from", lk.peer),
				obs.A("origin", origin),
				obs.A("hop", strconv.Itoa(int(hop))))
		}
		b.routePublish(ev, lk.peer)
	case event.TypeDiscoveryRequest:
		b.tel.framesDiscovery.Inc()
		b.handleDiscoveryRequest(ev, lk.peer)
	case event.TypeControl:
		b.tel.framesControl.Inc()
		b.handleInterestControl(lk, ev)
	case event.TypeLinkHeartbeat:
		// Liveness only; nothing to route.
		b.tel.framesControl.Inc()
	default:
		// Links carry only substrate traffic; ignore anything else.
		b.tel.framesOther.Inc()
	}
}

// pubScratch holds the per-publish scratch state the fan-out path reuses
// across events, keeping the hot loop free of allocations. The visit closure
// is built once at pool-New time (not per publish — a fresh closure would be
// the fan-out's only allocation) and appends each matched registration to
// the scratch it is bound to.
type pubScratch struct {
	match  topics.Scratch // epoch-stamped dedup state for MatchEachUnique
	peers  []string       // link peers with matching remote interest
	locals []*egress      // matched local client queues
	links  []*egress      // forwarding targets
	drops  dropBatch      // batched queue-full accounting for this fan-out
	visit  func(id string, val any)
}

var pubScratchPool = sync.Pool{New: func() any {
	sc := &pubScratch{
		peers:  make([]string, 0, 8),
		locals: make([]*egress, 0, 64),
		links:  make([]*egress, 0, 8),
	}
	sc.visit = func(id string, val any) {
		// Local subscriptions carry their delivery queue as the registration
		// value; link-interest registrations carry none and are recognised by
		// their namespaced id.
		if q, ok := val.(*egress); ok {
			sc.locals = append(sc.locals, q)
			return
		}
		if peer, isLink := isLinkSubscriber(id); isLink {
			sc.peers = append(sc.peers, peer)
		}
	}
	return sc
}}

func containsString(ss []string, s string) bool {
	for _, have := range ss {
		if have == s {
			return true
		}
	}
	return false
}

// routePublish delivers a publish event to matching local subscribers and
// forwards it over links (except the one it arrived on), decrementing the
// TTL. In RouteFlood mode every link is used; in RouteSubscriptions mode
// only links whose peer registered a matching interest. Duplicate
// suppression has already happened at the ingress point.
//
// This is the substrate's hottest loop, and it is lock-free: matching walks
// the immutable COW trie snapshot (each registration hands back its egress
// queue directly, so there is no client-map lookup), forwarding links come
// from an atomically swapped snapshot, and each distinct frame is encoded
// exactly once into a pooled ref-counted buffer shared by every target
// queue. Actual writes happen on the per-connection egress writers, so a
// slow peer cannot stall routing.
func (b *Broker) routePublish(ev *event.Event, fromPeer string) {
	if b.history != nil {
		b.history.Add(ev)
	}
	// The returned entry handle is stamped onto every frame of this fan-out,
	// so delivered/dropped tallies on the egress side are plain atomic adds.
	flow := b.flows.Published(ev.Topic, len(ev.Payload))

	// Decision-at-publish sampling: the ingress broker rolls the dice once;
	// events arriving over a link already carry the verdict in their headers
	// and are never re-decided. The unsampled path costs one nil-map header
	// check plus the sampler's atomic counter — no clock read, no allocation.
	sampled := ev.MsgSampled()
	if !sampled && fromPeer == "" && b.cfg.PublishSampler.Decide(ev.Topic) {
		sampled = true
		ev.SetMsgTrace(b.cfg.LogicalAddress, 0)
	}
	var matchStart time.Time
	if sampled {
		matchStart = time.Now()
	}

	sc := pubScratchPool.Get().(*pubScratch)
	sc.peers = sc.peers[:0]
	sc.locals = sc.locals[:0]
	sc.links = sc.links[:0]
	b.subs.MatchEachUnique(ev.Topic, &sc.match, sc.visit)

	if ev.TTL > 0 {
		for _, lk := range *b.linkSnap.Load() {
			if lk.peer == fromPeer {
				continue
			}
			if b.cfg.Routing == RouteSubscriptions && !containsString(sc.peers, lk.peer) {
				continue
			}
			sc.links = append(sc.links, lk.out)
		}
	}

	// born stamps every publish frame for the delivery-latency histogram
	// observed at egress flush; control/replay frames never carry it.
	var born int64
	if !ev.Timestamp.IsZero() {
		born = ev.Timestamp.UnixNano()
	}
	var traceID string
	var enqueuedNs int64
	if sampled {
		traceID = ev.ID.String()
		enqueuedNs = time.Now().UnixNano()
		_, hop, _ := ev.MsgTrace()
		tr := b.traceFor(traceID)
		// The ingress broker records the origin span — whether it rolled the
		// dice itself or the publisher pre-stamped the sampled headers (e.g.
		// loadgen -sample-every). Link-forwarded messages record msg-hop
		// events instead, at the link ingress.
		if fromPeer == "" {
			at := ev.Timestamp
			if at.IsZero() {
				at = b.now()
			}
			tr.Span("msg-publish", at, 0,
				obs.A("broker", b.cfg.LogicalAddress),
				obs.A("topic", ev.Topic),
				obs.A("source", ev.Source))
		}
		tr.Span("msg-match", b.now(), time.Since(matchStart),
			obs.A("broker", b.cfg.LogicalAddress),
			obs.A("hop", strconv.Itoa(int(hop))),
			obs.A("locals", strconv.Itoa(len(sc.locals))),
			obs.A("links", strconv.Itoa(len(sc.links))))
	}

	// Local delivery: one ref-counted frame shared by every matched
	// subscriber; the last egress writer to flush it returns it to the pool.
	if len(sc.locals) > 0 {
		f := b.frames.encode(ev, int32(len(sc.locals)))
		f.flow, f.born = flow, born
		if sampled {
			f.traceID, f.enqueuedNs = traceID, enqueuedNs
		}
		for _, q := range sc.locals {
			q.sendDataBatch(f, &sc.drops)
		}
		b.tel.deliveredLocal.Add(uint64(len(sc.locals)))
	}
	// Network dissemination: one TTL-decremented frame shared by every link.
	// A shallow copy suffices — encoding only reads the event — except when
	// sampled, where the forward gets its own header map so the hop counter
	// can advance without mutating the event local subscribers saw.
	if len(sc.links) > 0 {
		fwd := *ev
		fwd.TTL--
		if sampled {
			_, hop, _ := ev.MsgTrace()
			fwd.Headers = make(map[string]string, len(ev.Headers)+1)
			for k, v := range ev.Headers {
				fwd.Headers[k] = v
			}
			fwd.Headers[event.HeaderMsgHop] = strconv.Itoa(int(hop) + 1)
		}
		f := b.frames.encode(&fwd, int32(len(sc.links)))
		f.flow, f.born = flow, born
		if sampled {
			f.traceID, f.enqueuedNs = traceID, enqueuedNs
		}
		for _, q := range sc.links {
			q.sendDataBatch(f, &sc.drops)
		}
		b.tel.deliveredLink.Add(uint64(len(sc.links)))
	}
	// Flush batched eviction accounting and shed the pointers it holds before
	// the scratch goes back in the pool.
	sc.drops.settle()
	sc.drops = dropBatch{}
	pubScratchPool.Put(sc)
}

// traceFor returns the trace recorder for a sampled message. Both the nil
// tracer and the returned nil *Trace record nothing, so callers don't branch.
func (b *Broker) traceFor(traceID string) *obs.Trace {
	return b.tel.tracer.Trace(traceID)
}

// linksExcept returns the broker links excluding one peer; BDN-role
// connections (BDNs inject; they are not flooding targets) are already
// absent from the link snapshot. Lock-free: reads the atomic snapshot.
func (b *Broker) linksExcept(peer string) []*link {
	snap := *b.linkSnap.Load()
	out := make([]*link, 0, len(snap))
	for _, lk := range snap {
		if lk.peer == peer {
			continue
		}
		out = append(out, lk)
	}
	return out
}
