package broker

import (
	"fmt"
	"testing"
	"time"

	"narada/internal/event"
	"narada/internal/metrics"
	"narada/internal/ntptime"
	"narada/internal/obs"
	"narada/internal/simnet"
	"narada/internal/transport"
)

// nopConn is a transport.Conn that discards every frame, so the fan-out
// benchmark measures the broker's own publish pipeline (matching, locking,
// encoding, queueing) rather than a peer's consumption speed.
type nopConn struct{}

func (nopConn) Send([]byte) error                         { return nil }
func (nopConn) Recv() ([]byte, error)                     { select {} }
func (nopConn) RecvTimeout(time.Duration) ([]byte, error) { return nil, transport.ErrTimeout }
func (nopConn) LocalAddr() string                         { return "bench/nop:0" }
func (nopConn) RemoteAddr() string                        { return "bench/nop:0" }
func (nopConn) Close() error                              { return nil }

// newFanoutBroker builds an unstarted broker suitable for driving
// routePublish directly. mut, when non-nil, adjusts the config before New.
func newFanoutBroker(b testing.TB, mut func(*Config)) *Broker {
	b.Helper()
	net := simnet.NewPaperWAN(simnet.Config{Scale: 20000, Seed: 1})
	node := transport.NewSimNode(net, simnet.SiteIndianapolis, "fan", 0)
	ntp := ntptime.NewService(node.Clock(), 0, nil)
	ntp.InitImmediately()
	cfg := Config{
		LogicalAddress: "fan",
		Sampler:        metrics.NewStaticSampler(metrics.Usage{TotalMemBytes: 1 << 30}),
	}
	if mut != nil {
		mut(&cfg)
	}
	br, err := New(node, ntp, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return br
}

// addBenchClient registers a discard-everything client straight into the
// broker's client table, with a running egress writer like a real session.
func addBenchClient(br *Broker, id string) *clientConn {
	c := &clientConn{id: id, conn: nopConn{}}
	c.out = br.newEgress(c.conn, "local")
	br.startEgress(c.out)
	br.mu.Lock()
	br.clients[id] = c
	br.mu.Unlock()
	return c
}

// BenchmarkPublishFanout measures the core publish fan-out path: one event
// delivered to 64 local subscribers (a mix of exact and wildcard interest).
// This is the hot loop behind every advertisement, discovery request and
// application publish in the substrate.
func BenchmarkPublishFanout(b *testing.B) {
	br := newFanoutBroker(b, nil)
	subscribeFanout(b, br)

	payload := make([]byte, 256)
	ev := event.New(event.TypePublish, "bench/fan/topic", payload)
	ev.Source = "fan"

	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.routePublish(ev, "")
	}
}

// subscribeFanout registers the benchmark's 64-subscriber interest mix.
func subscribeFanout(b testing.TB, br *Broker) {
	b.Helper()
	const subscribers = 64
	for i := 0; i < subscribers; i++ {
		id := fmt.Sprintf("sub-%d", i)
		c := addBenchClient(br, id)
		pattern := "bench/fan/topic"
		switch i % 4 {
		case 1:
			pattern = "bench/fan/*"
		case 2:
			pattern = "bench/**"
		}
		// The registration carries the delivery queue, as a real subscribe
		// does.
		if _, err := br.subs.SubscribeValue(id, pattern, c.out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublishFanoutSampled measures the fan-out with message-path
// sampling active: a 1-in-1024 sampler and a live tracer, the production
// shape. Sampled iterations pay for header stamping, trace-id formatting and
// span recording; amortised over the sampling interval the path must stay at
// 0 allocs/op (the bench gate checks allocations only — wall time belongs to
// the unsampled benchmark above).
func BenchmarkPublishFanoutSampled(b *testing.B) {
	tracer := obs.NewTracer(obs.DefaultTraceCapacity, nil)
	br := newFanoutBroker(b, func(cfg *Config) {
		cfg.PublishSampler = obs.NewSampler(1024, 0)
		cfg.Tracer = tracer
	})
	subscribeFanout(b, br)

	payload := make([]byte, 256)
	ev := event.New(event.TypePublish, "bench/fan/topic", payload)
	ev.Source = "fan"
	ev.Timestamp = br.now()

	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh header map view per publish: a real stream decodes a new
		// event per frame, so a prior iteration's sampling verdict must not
		// leak into the next.
		ev.Headers = nil
		br.routePublish(ev, "")
	}
}
