package broker

import (
	"fmt"
	"testing"
	"time"

	"narada/internal/event"
	"narada/internal/metrics"
	"narada/internal/ntptime"
	"narada/internal/simnet"
	"narada/internal/transport"
)

// nopConn is a transport.Conn that discards every frame, so the fan-out
// benchmark measures the broker's own publish pipeline (matching, locking,
// encoding, queueing) rather than a peer's consumption speed.
type nopConn struct{}

func (nopConn) Send([]byte) error                         { return nil }
func (nopConn) Recv() ([]byte, error)                     { select {} }
func (nopConn) RecvTimeout(time.Duration) ([]byte, error) { return nil, transport.ErrTimeout }
func (nopConn) LocalAddr() string                         { return "bench/nop:0" }
func (nopConn) RemoteAddr() string                        { return "bench/nop:0" }
func (nopConn) Close() error                              { return nil }

// newFanoutBroker builds an unstarted broker suitable for driving
// routePublish directly.
func newFanoutBroker(b testing.TB) *Broker {
	b.Helper()
	net := simnet.NewPaperWAN(simnet.Config{Scale: 20000, Seed: 1})
	node := transport.NewSimNode(net, simnet.SiteIndianapolis, "fan", 0)
	ntp := ntptime.NewService(node.Clock(), 0, nil)
	ntp.InitImmediately()
	br, err := New(node, ntp, Config{
		LogicalAddress: "fan",
		Sampler:        metrics.NewStaticSampler(metrics.Usage{TotalMemBytes: 1 << 30}),
	})
	if err != nil {
		b.Fatal(err)
	}
	return br
}

// addBenchClient registers a discard-everything client straight into the
// broker's client table, with a running egress writer like a real session.
func addBenchClient(br *Broker, id string) *clientConn {
	c := &clientConn{id: id, conn: nopConn{}}
	c.out = br.newEgress(c.conn)
	br.startEgress(c.out)
	br.mu.Lock()
	br.clients[id] = c
	br.mu.Unlock()
	return c
}

// BenchmarkPublishFanout measures the core publish fan-out path: one event
// delivered to 64 local subscribers (a mix of exact and wildcard interest).
// This is the hot loop behind every advertisement, discovery request and
// application publish in the substrate.
func BenchmarkPublishFanout(b *testing.B) {
	br := newFanoutBroker(b)
	const subscribers = 64
	for i := 0; i < subscribers; i++ {
		id := fmt.Sprintf("sub-%d", i)
		c := addBenchClient(br, id)
		pattern := "bench/fan/topic"
		switch i % 4 {
		case 1:
			pattern = "bench/fan/*"
		case 2:
			pattern = "bench/**"
		}
		// The registration carries the delivery queue, as a real subscribe
		// does.
		if _, err := br.subs.SubscribeValue(id, pattern, c.out); err != nil {
			b.Fatal(err)
		}
	}

	payload := make([]byte, 256)
	ev := event.New(event.TypePublish, "bench/fan/topic", payload)
	ev.Source = "fan"

	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.routePublish(ev, "")
	}
}
