package broker

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"narada/internal/simnet"
	"narada/internal/transport"
)

// TestConcurrentPubSubStress hammers a three-broker chain with concurrent
// subscribe/unsubscribe churn and publishes from every broker at once. It is
// the -race proof for the fast path: allocation-free matching, the single
// snapshot lock in routePublish, per-connection egress writers and the
// sharded event dedup all run against each other here. The test passes when
// everything stays data-race free, nothing deadlocks, and a stable
// subscriber at the far end of the chain keeps receiving events.
func TestConcurrentPubSubStress(t *testing.T) {
	e := newEnv(t, 7)
	b1 := e.broker(simnet.SiteIndianapolis, "st1", Config{Routing: RouteSubscriptions})
	b2 := e.broker(simnet.SiteIndianapolis, "st2", Config{Routing: RouteSubscriptions})
	b3 := e.broker(simnet.SiteIndianapolis, "st3", Config{Routing: RouteSubscriptions})
	if err := b2.LinkTo(b1.StreamAddr()); err != nil {
		t.Fatal(err)
	}
	if err := b3.LinkTo(b2.StreamAddr()); err != nil {
		t.Fatal(err)
	}

	// A stable subscriber at the end of the chain: its deliveries prove the
	// fabric keeps routing while the churners below rewrite the tables.
	node, _ := e.node(simnet.SiteIndianapolis, "stable")
	stable, err := Connect(node, b3.StreamAddr(), "stable")
	if err != nil {
		t.Fatal(err)
	}
	defer stable.Close()
	if err := stable.Subscribe("stress/**"); err != nil {
		t.Fatal(err)
	}
	// Wait until the interest has actually propagated down the chain to b1
	// (a fixed sleep flakes when the race detector slows the control path).
	interestDeadline := time.Now().Add(10 * time.Second)
	for !b1.subs.HasMatch("stress/probe") {
		if time.Now().After(interestDeadline) {
			t.Fatal("stable subscriber's interest never reached b1")
		}
		time.Sleep(time.Millisecond)
	}

	var wg sync.WaitGroup

	// Churners: one client per broker flipping exact and wildcard patterns.
	for i, br := range []*Broker{b1, b2, b3} {
		node, _ := e.node(simnet.SiteIndianapolis, fmt.Sprintf("churn%d", i))
		c, err := Connect(node, br.StreamAddr(), fmt.Sprintf("churn%d", i))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			for n := 0; n < 200; n++ {
				pattern := fmt.Sprintf("stress/t%d/c%d", n%7, i)
				if n%3 == 0 {
					pattern = fmt.Sprintf("stress/*/c%d", i)
				}
				if err := c.Subscribe(pattern); err != nil {
					return
				}
				if err := c.Unsubscribe(pattern); err != nil {
					return
				}
			}
		}(i, c)
	}

	// Publishers: every broker injects events concurrently with the churn.
	payload := make([]byte, 128)
	for i, br := range []*Broker{b1, b2, b3} {
		wg.Add(1)
		go func(i int, br *Broker) {
			defer wg.Done()
			for n := 0; n < 300; n++ {
				topic := fmt.Sprintf("stress/t%d/c%d", n%7, i)
				if err := br.Publish(topic, payload); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
			}
		}(i, br)
	}

	// Drain the stable subscriber while the storm runs. Publishing is
	// fire-and-forget (publisher -> egress queue -> simnet -> client pump),
	// so the publishers finish well before their events finish arriving, and
	// Next's timeout runs on compressed model time — milliseconds of wall
	// time. A single post-publish timeout therefore proves nothing; the drain
	// only stops once deliveries have quiesced: publishers done, something
	// received, and several consecutive empty timeouts. A wall-clock deadline
	// backstops the no-delivery failure case.
	received := 0
	var pubsDone atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.Now().Add(20 * time.Second)
		idle := 0
		for time.Now().Before(deadline) {
			_, err := stable.Next(2 * time.Second)
			if err == nil {
				received++
				idle = 0
				continue
			}
			if !errors.Is(err, transport.ErrTimeout) {
				return
			}
			if pubsDone.Load() {
				if idle++; idle >= 5 && received > 0 {
					return
				}
			}
		}
	}()

	wg.Wait()
	pubsDone.Store(true)
	<-done
	if received == 0 {
		t.Fatal("stable subscriber received nothing during the stress run")
	}
	t.Logf("stable subscriber received %d events, egress drops: b1=%d b2=%d b3=%d",
		received, b1.EgressDropped(), b2.EgressDropped(), b3.EgressDropped())
}
