package broker

import (
	"sync"
	"sync/atomic"

	"narada/internal/event"
	"narada/internal/obs"
)

// maxPooledFrame caps the buffer capacity a recycled frame retains, so one
// jumbo payload does not pin megabytes inside the pool forever.
const maxPooledFrame = 1 << 16

// sharedFrame is one encoded wire frame shared by every egress queue of a
// fan-out: the routing loop encodes the event once, sets the reference count
// to the number of delivery targets and hands the same frame to all of them.
// Each queue releases its reference after the write (or on drop/teardown);
// the last release returns the buffer to the pool. Frames are immutable
// between encode and final release.
//
// The lifetime rules every holder must follow:
//
//  1. A frame handed to you carries exactly one reference for you.
//  2. Release exactly once — after the transport write returns, or
//     immediately when you drop the frame. The transports do not retain the
//     payload slice past Send (simnet copies; TCP writes synchronously), so
//     releasing after Send is safe.
//  3. Never touch f.buf after your release: the buffer may already be
//     carrying a different event.
type sharedFrame struct {
	buf  []byte
	refs atomic.Int32
	pool *framePool

	// Delivery accounting, stamped by routePublish on publish frames only
	// (control/replay frames leave them zero). None of these fields affect
	// the reference count: sampling observes a frame's life, never extends
	// or shortens it.
	flow       *obs.FlowEntry // topic's flow counters, for flush/drop tallies
	born       int64          // event-origin NTP UnixNano; 0 = latency not tracked
	traceID    string         // non-empty when the message is sampled for tracing
	enqueuedNs int64          // wall clock at egress enqueue (queue-wait); sampled only
}

// release drops one reference; the last reference returns the frame to the
// pool. Releasing more references than were taken corrupts the pool (a
// recycled buffer would be shared with a live fan-out), so over-release
// panics loudly instead.
func (f *sharedFrame) release() {
	switch n := f.refs.Add(-1); {
	case n == 0:
		f.pool.put(f)
	case n < 0:
		panic("broker: sharedFrame over-released")
	}
}

// bytes returns the encoded frame. Valid only while the caller holds a
// reference.
func (f *sharedFrame) bytes() []byte { return f.buf }

// framePool recycles sharedFrames (and their encode buffers) across
// publishes. The live gauge counts frames currently checked out, which the
// stress tests assert back to zero to prove no reference leaks.
type framePool struct {
	pool sync.Pool
	live atomic.Int64

	hits   *obs.Counter // encode served by a recycled frame
	misses *obs.Counter // encode that had to allocate a frame
}

func newFramePool(hits, misses *obs.Counter) *framePool {
	return &framePool{hits: hits, misses: misses}
}

// encode serialises the event into a pooled frame carrying refs references.
// refs must equal the number of release calls that will follow.
func (p *framePool) encode(e *event.Event, refs int32) *sharedFrame {
	f, _ := p.pool.Get().(*sharedFrame)
	if f == nil {
		f = &sharedFrame{pool: p}
		p.misses.Inc()
	} else {
		p.hits.Inc()
	}
	f.buf = event.Append(f.buf, e)
	f.refs.Store(refs)
	p.live.Add(1)
	return f
}

func (p *framePool) put(f *sharedFrame) {
	p.live.Add(-1)
	if cap(f.buf) > maxPooledFrame {
		f.buf = nil
	}
	// Clear the accounting stamps so a recycled frame never reports the
	// previous event's flow or trace.
	f.flow, f.traceID = nil, ""
	f.born, f.enqueuedNs = 0, 0
	p.pool.Put(f)
}

// Live returns the number of frames currently checked out (test/telemetry).
func (p *framePool) Live() int64 { return p.live.Load() }
