// Package broker implements a NaradaBrokering-style publish/subscribe broker:
// it accepts client connections, manages subscriptions, routes published
// events to local subscribers and across broker-to-broker links (flooding
// with duplicate suppression and TTL), answers UDP pings, and processes
// broker discovery requests according to its response policy — constructing
// UDP discovery responses carrying NTP timestamps, process information and
// usage metrics (paper §4–5).
package broker

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"narada/internal/core"
	"narada/internal/dedup"
	"narada/internal/event"
	"narada/internal/metrics"
	"narada/internal/ntptime"
	"narada/internal/obs"
	"narada/internal/replay"
	"narada/internal/supervise"
	"narada/internal/topics"
	"narada/internal/transport"
)

// errClosed reports an operation attempted on a closed broker.
var errClosed = errors.New("broker: closed")

// Role header values distinguishing peer kinds on stream connections.
const (
	helloRoleHeader = "role"
	roleLink        = "link" // another broker
	roleBDN         = "bdn"  // a broker discovery node
)

// Config parameterises a Broker.
type Config struct {
	// LogicalAddress is the broker's unique NB logical address.
	LogicalAddress string
	// Hostname is the broker machine's name (advertised).
	Hostname string
	// Realm is the broker's network realm (site).
	Realm string
	// Geo and Institution are optional advertisement fields.
	Geo         string
	Institution string
	// StreamPort / UDPPort bind the broker's endpoints (0 = auto).
	StreamPort int
	UDPPort    int
	// DedupCapacity sizes the discovery-request duplicate cache
	// (paper default 1000, "configured through the broker configuration
	// file").
	DedupCapacity int
	// Policy gates discovery responses.
	Policy core.ResponsePolicy
	// Sampler supplies usage metrics; nil uses a runtime sampler.
	Sampler metrics.Sampler
	// MulticastGroup, when set, is joined so BDN-less multicast discovery
	// requests reach this broker directly.
	MulticastGroup string
	// ProcessingDelay simulates per-request handling cost at the broker.
	ProcessingDelay time.Duration
	// HeartbeatInterval enables link keepalives: each link sends a
	// heartbeat every interval and is torn down after three silent
	// intervals, so the fluid broker network ("broker processes may join
	// and leave at arbitrary times") sheds dead links. 0 disables.
	// Applies to broker-to-broker links and to BDN registration links.
	HeartbeatInterval time.Duration
	// Supervise, when set, makes LinkTo and RegisterWithBDN self-healing:
	// a torn-down link or dead BDN registration is redialed under the
	// policy's backoff until Close, with interest resync and
	// re-advertisement on every successful relink. nil keeps the legacy
	// dial-once behaviour.
	Supervise *supervise.Policy
	// AdvertiseInterval re-sends this broker's advertisement over every BDN
	// registration link on the interval, refreshing the registration before
	// its TTL lapses. 0 disables periodic refresh.
	AdvertiseInterval time.Duration
	// AdvertiseTTL is the validity window stamped into advertisements;
	// BDNs prune registrations older than this. 0 defaults to
	// 3×AdvertiseInterval when refresh is enabled, otherwise no expiry.
	AdvertiseTTL time.Duration
	// Routing selects how publish events cross links; discovery requests
	// are always flooded (control traffic must reach every broker).
	Routing RoutingMode
	// ReplayCapacity enables the event-replay service: the broker retains
	// that many recent events per topic and serves them to clients that
	// request a replay after subscribing. 0 disables.
	ReplayCapacity int
	// Logger receives operational events (start, links, discovery); nil
	// discards them.
	Logger *slog.Logger
	// Metrics receives the broker's metric families, labelled with the
	// broker's logical address; nil records into a private registry (the
	// handles stay live, nothing is exposed).
	Metrics *obs.Registry
	// Tracer, when set, receives per-request discovery trace events keyed
	// by the request UUID.
	Tracer *obs.Tracer
	// PublishSampler decides, at publish ingress, which messages get full
	// message-path tracing (publish→match→flush→hop spans stamped into the
	// event headers and followed across links). nil never samples; the
	// unsampled path stays allocation-free either way.
	PublishSampler *obs.Sampler
	// FlowK overrides the per-topic flow sketch width (top-K heaviest
	// topics tracked; default obs.DefaultFlowK).
	FlowK int
	// Journal, when set, records control-plane transitions (node and link
	// lifecycle, advertisement refreshes, reconnect attempts) for the
	// fabric event timeline. Emission never touches the publish fast path.
	Journal *obs.Journal
}

// RoutingMode selects the broker network's dissemination strategy for
// application events.
type RoutingMode int

// Routing modes.
const (
	// RouteFlood forwards every publish over every link (TTL + dedup
	// bounded). Simple, correct on any topology, wasteful on traffic.
	RouteFlood RoutingMode = iota
	// RouteSubscriptions propagates subscription interest between brokers
	// and forwards a publish over a link only when the peer's side of the
	// network registered a matching interest — NaradaBrokering's "routing
	// the right content from the producer to the right consumers".
	RouteSubscriptions
)

// Broker is one node of the distributed messaging substrate.
type Broker struct {
	node transport.Node
	ntp  *ntptime.Service
	cfg  Config

	listener transport.Listener
	udp      transport.PacketConn

	reqDedup *dedup.Cache // discovery request UUIDs
	evDedup  *dedup.Cache // flooded event UUIDs
	subs     *topics.Table
	interest *interestState // link interest refcounts (RouteSubscriptions)
	history  *replay.Store  // nil unless ReplayCapacity > 0
	frames   *framePool     // ref-counted shared egress frames
	flows    *obs.FlowTable // per-topic flow accounting (top-k sketch)
	egTel    egressTel      // instruments shared by every egress queue

	// linkSnap is the publish path's view of the broker links (BDN-role
	// connections excluded): an immutable slice swapped atomically whenever
	// membership changes, so routing and discovery fan-out never take b.mu.
	linkSnap atomic.Pointer[[]*link]

	mu          sync.Mutex
	links       map[string]*link // peer logical address -> link
	clients     map[string]*clientConn
	supervisors map[string]*supervise.Runner // "link:addr"/"bdn:addr" -> runner
	lastAd      map[string]time.Time         // BDN addr -> last successful advertise
	started     bool

	// tel holds the broker's metric handles and trace recorder; the
	// egress-drop counter and delivery counters it carries sit on the
	// publish fast path.
	tel telemetry

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// startEgress launches the writer goroutine draining q, tracked by the
// broker's waitgroup so Close waits for flushes.
func (b *Broker) startEgress(q *egress) {
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		q.run()
	}()
}

// EgressDropped returns the number of frames dropped at egress queues since
// the broker started, across every drop reason.
func (b *Broker) EgressDropped() uint64 {
	return b.tel.egressDropQueueFull.Value() +
		b.tel.egressDropConnDown.Value() +
		b.tel.egressDropTooLarge.Value()
}

// Flows snapshots the broker's per-topic flow accounting: the top-K
// published topics with delivered and dropped-by-reason tallies (plus the
// <other> fold bucket). Wire it into obs.ExporterConfig.Flows so the
// collector's /flows can assemble the fabric-wide view.
func (b *Broker) Flows() []obs.FlowSnapshot { return b.flows.Snapshot() }

// linkSetter is satisfied by samplers that track the live connection count.
type linkSetter interface{ SetLinks(int) }

// New creates a broker; call Start to begin serving.
func New(node transport.Node, ntp *ntptime.Service, cfg Config) (*Broker, error) {
	if cfg.LogicalAddress == "" {
		return nil, errors.New("broker: LogicalAddress is required")
	}
	if cfg.DedupCapacity <= 0 {
		cfg.DedupCapacity = dedup.DefaultCapacity
	}
	if cfg.Sampler == nil {
		cfg.Sampler = metrics.NewRuntimeSampler()
	}
	var history *replay.Store
	if cfg.ReplayCapacity > 0 {
		history = replay.NewStore(cfg.ReplayCapacity)
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Nop()
	}
	cfg.Logger = cfg.Logger.With("broker", cfg.LogicalAddress)
	if cfg.AdvertiseTTL <= 0 && cfg.AdvertiseInterval > 0 {
		cfg.AdvertiseTTL = 3 * cfg.AdvertiseInterval
	}
	b := &Broker{
		history:     history,
		node:        node,
		ntp:         ntp,
		cfg:         cfg,
		reqDedup:    dedup.New(cfg.DedupCapacity),
		evDedup:     dedup.New(4 * cfg.DedupCapacity),
		subs:        topics.NewTable(),
		interest:    newInterestState(),
		links:       make(map[string]*link),
		clients:     make(map[string]*clientConn),
		supervisors: make(map[string]*supervise.Runner),
		lastAd:      make(map[string]time.Time),
		closed:      make(chan struct{}),
	}
	b.initTelemetry(cfg.Metrics, cfg.Tracer)
	b.frames = newFramePool(b.tel.framePoolHit, b.tel.framePoolMiss)
	b.flows = obs.NewFlowTable(cfg.FlowK)
	b.egTel = egressTel{
		dropQueueFull: b.tel.egressDropQueueFull,
		dropConnDown:  b.tel.egressDropConnDown,
		dropTooLarge:  b.tel.egressDropTooLarge,
		perFlush:      b.tel.framesPerFlush,
		latency:       b.tel.deliveryLatency,
		tracer:        cfg.Tracer,
		now:           b.now,
	}
	b.linkSnap.Store(&[]*link{})
	return b, nil
}

// newEgress builds an egress queue wired to this broker's telemetry. dest
// ("local" or "link") labels the queue's spans with where its frames go.
func (b *Broker) newEgress(conn transport.Conn, dest string) *egress {
	return newEgress(conn, &b.egTel, dest)
}

// rebuildLinkSnap republishes the link snapshot from the authoritative map.
// Caller holds b.mu; readers pick up the new slice on their next load.
func (b *Broker) rebuildLinkSnap() {
	snap := make([]*link, 0, len(b.links))
	for _, lk := range b.links {
		if lk.role == roleBDN {
			continue
		}
		snap = append(snap, lk)
	}
	b.linkSnap.Store(&snap)
}

// Start binds the broker's endpoints and launches its service loops.
func (b *Broker) Start() error {
	b.mu.Lock()
	if b.started {
		b.mu.Unlock()
		return errors.New("broker: already started")
	}
	b.started = true
	b.mu.Unlock()

	l, err := b.node.Listen(b.cfg.StreamPort)
	if err != nil {
		return fmt.Errorf("broker %s: listen: %w", b.cfg.LogicalAddress, err)
	}
	pc, err := b.node.ListenPacket(b.cfg.UDPPort)
	if err != nil {
		_ = l.Close()
		return fmt.Errorf("broker %s: udp: %w", b.cfg.LogicalAddress, err)
	}
	b.listener, b.udp = l, pc
	b.cfg.Logger.Info("broker started", "stream", l.Addr(), "udp", pc.LocalAddr())
	b.cfg.Journal.Emit(obs.EventNodeStart, l.Addr(), "udp="+pc.LocalAddr())

	if b.cfg.MulticastGroup != "" {
		if err := pc.JoinGroup(b.cfg.MulticastGroup); err != nil {
			_ = l.Close()
			_ = pc.Close()
			return fmt.Errorf("broker %s: multicast: %w", b.cfg.LogicalAddress, err)
		}
	}

	b.wg.Add(2)
	go b.acceptLoop()
	go b.udpLoop()
	if b.cfg.AdvertiseInterval > 0 {
		b.wg.Add(1)
		go b.advertiseLoop()
	}
	return nil
}

// closeFlushTimeout bounds (in model time) how long Close waits for egress
// queues to flush before tearing connections down.
const closeFlushTimeout = 2 * time.Second

// Close stops the broker and tears down every connection. Egress queues are
// asked to flush first so frames already accepted for delivery reach live
// peers, then the connections are closed to unblock any stalled writer.
func (b *Broker) Close() {
	b.closeOnce.Do(func() {
		b.cfg.Journal.Emit(obs.EventNodeStop, b.cfg.LogicalAddress, "")
		close(b.closed)
		// Stop the supervisors first so nothing redials while we tear down.
		b.mu.Lock()
		runners := make([]*supervise.Runner, 0, len(b.supervisors))
		for _, r := range b.supervisors {
			if r != nil {
				runners = append(runners, r)
			}
		}
		b.mu.Unlock()
		for _, r := range runners {
			r.Stop()
		}
		if b.listener != nil {
			_ = b.listener.Close()
		}
		if b.udp != nil {
			_ = b.udp.Close()
		}
		b.mu.Lock()
		links := make([]*link, 0, len(b.links))
		for _, lk := range b.links {
			links = append(links, lk)
		}
		clients := make([]*clientConn, 0, len(b.clients))
		for _, c := range b.clients {
			clients = append(clients, c)
		}
		b.mu.Unlock()
		queues := make([]*egress, 0, len(links)+len(clients))
		for _, lk := range links {
			if lk.out != nil {
				queues = append(queues, lk.out)
			}
		}
		for _, c := range clients {
			if c.out != nil {
				queues = append(queues, c.out)
			}
		}
		for _, q := range queues {
			q.close()
		}
		if len(queues) > 0 {
			expire := b.node.Clock().After(closeFlushTimeout)
			for _, q := range queues {
				select {
				case <-q.dead:
				case <-expire:
				}
			}
		}
		for _, lk := range links {
			_ = lk.conn.Close()
		}
		for _, c := range clients {
			_ = c.conn.Close()
		}
		b.wg.Wait()
	})
}

// LogicalAddress returns the broker's unique logical address.
func (b *Broker) LogicalAddress() string { return b.cfg.LogicalAddress }

// StreamAddr returns the broker's stream endpoint address.
func (b *Broker) StreamAddr() string { return b.listener.Addr() }

// UDPAddr returns the broker's datagram endpoint address.
func (b *Broker) UDPAddr() string { return b.udp.LocalAddr() }

// Info assembles the broker process information carried in advertisements
// and discovery responses.
func (b *Broker) Info() core.BrokerInfo {
	return core.BrokerInfo{
		LogicalAddress: b.cfg.LogicalAddress,
		Hostname:       b.cfg.Hostname,
		Realm:          b.cfg.Realm,
		Endpoints: []core.TransportEndpoint{
			{Protocol: "tcp", Address: b.StreamAddr()},
			{Protocol: "udp", Address: b.UDPAddr()},
		},
		Geo:         b.cfg.Geo,
		Institution: b.cfg.Institution,
	}
}

// Usage samples the broker's current usage metrics.
func (b *Broker) Usage() metrics.Usage { return b.cfg.Sampler.Sample() }

// LinkCount returns the number of active broker links.
func (b *Broker) LinkCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.links)
}

// Peers returns the logical addresses of the currently linked peers
// (broker links and BDN registrations), unsorted.
func (b *Broker) Peers() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.links))
	for peer := range b.links {
		out = append(out, peer)
	}
	return out
}

// ClientCount returns the number of connected clients (including BDN
// subscriber connections).
func (b *Broker) ClientCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.clients)
}

// registerLink adds a link to the routing fabric. It returns false when the
// broker is already closed — Close sweeps the link map, so a link landing
// after the sweep must tear itself down or Close's wg.Wait would hang on its
// goroutine. The closed-check and the map insert share the mutex, and Close
// closes the channel before taking the mutex, so no registration can slip
// past the sweep. A duplicate link to the same peer replaces the old one,
// whose connection is closed (returned) so its goroutine exits.
func (b *Broker) registerLink(lk *link) bool {
	b.mu.Lock()
	select {
	case <-b.closed:
		b.mu.Unlock()
		return false
	default:
	}
	old := b.links[lk.peer]
	b.links[lk.peer] = lk
	b.rebuildLinkSnap()
	b.mu.Unlock()
	if old != nil {
		_ = old.conn.Close()
	}
	return true
}

// registerClient mirrors registerLink for client sessions.
func (b *Broker) registerClient(c *clientConn) bool {
	b.mu.Lock()
	select {
	case <-b.closed:
		b.mu.Unlock()
		return false
	default:
	}
	old := b.clients[c.id]
	b.clients[c.id] = c
	b.mu.Unlock()
	if old != nil {
		_ = old.conn.Close()
	}
	return true
}

// connectionsChanged refreshes the sampler's link figure: "the total number
// of active concurrent connections to the broker".
func (b *Broker) connectionsChanged() {
	if s, ok := b.cfg.Sampler.(linkSetter); ok {
		b.mu.Lock()
		n := len(b.links) + len(b.clients)
		b.mu.Unlock()
		s.SetLinks(n)
	}
}

// now returns the broker's best-effort NTP UTC time.
func (b *Broker) now() time.Time {
	if t, err := b.ntp.UTC(); err == nil {
		return t
	}
	return b.node.Clock().Now()
}

// Publish injects an application event at this broker (local publish API):
// delivered to local subscribers and flooded over links.
func (b *Broker) Publish(topic string, payload []byte) error {
	if err := topics.Validate(topic); err != nil {
		return err
	}
	ev := event.New(event.TypePublish, topic, payload)
	ev.Source = b.cfg.LogicalAddress
	ev.Timestamp = b.now()
	b.evDedup.Seen(ev.ID)
	b.routePublish(ev, "")
	return nil
}
