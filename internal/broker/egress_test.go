package broker

import (
	"sync"
	"testing"
	"time"

	"narada/internal/obs"
	"narada/internal/transport"
)

// blockConn blocks every Send until released, simulating a stalled peer.
type blockConn struct {
	release chan struct{}
	closed  chan struct{}
	once    sync.Once
}

func newBlockConn() *blockConn {
	return &blockConn{release: make(chan struct{}), closed: make(chan struct{})}
}

func (c *blockConn) Send([]byte) error {
	select {
	case <-c.release:
		return nil
	case <-c.closed:
		return transport.ErrClosed
	}
}
func (c *blockConn) Recv() ([]byte, error)                     { select {} }
func (c *blockConn) RecvTimeout(time.Duration) ([]byte, error) { return nil, transport.ErrTimeout }
func (c *blockConn) LocalAddr() string                         { return "test/block:0" }
func (c *blockConn) RemoteAddr() string                        { return "test/block:0" }
func (c *blockConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// recConn records every frame it is asked to send.
type recConn struct {
	mu     sync.Mutex
	frames [][]byte
}

func (c *recConn) Send(f []byte) error {
	c.mu.Lock()
	c.frames = append(c.frames, f)
	c.mu.Unlock()
	return nil
}
func (c *recConn) Recv() ([]byte, error)                     { select {} }
func (c *recConn) RecvTimeout(time.Duration) ([]byte, error) { return nil, transport.ErrTimeout }
func (c *recConn) LocalAddr() string                         { return "test/rec:0" }
func (c *recConn) RemoteAddr() string                        { return "test/rec:0" }
func (c *recConn) Close() error                              { return nil }

func (c *recConn) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

// TestEgressOverflowDropsOldest proves the routing loop can never be stalled
// by a dead peer: sendData against a fully blocked connection keeps
// returning immediately, and the overflow is counted.
func TestEgressOverflowDropsOldest(t *testing.T) {
	var dropped obs.Counter
	conn := newBlockConn()
	q := newEgress(conn, &dropped)
	go q.run()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4*egressQueueSize; i++ {
			q.sendData([]byte{byte(i)})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sendData blocked on a stalled peer")
	}
	if dropped.Value() == 0 {
		t.Fatal("overflow on a stalled peer was not counted")
	}
	_ = conn.Close()
	<-q.dead
}

// TestEgressFlushesOnClose proves frames accepted before a close are still
// written out: the writer drains the whole queue before exiting.
func TestEgressFlushesOnClose(t *testing.T) {
	var dropped obs.Counter
	conn := &recConn{}
	q := newEgress(conn, &dropped)
	const frames = 100
	for i := 0; i < frames; i++ {
		q.sendData([]byte{byte(i)})
	}
	q.close()
	q.run() // synchronous: drains everything, then exits via flush
	if got := conn.count(); got != frames {
		t.Fatalf("flushed %d frames on close, want %d", got, frames)
	}
	if dropped.Value() != 0 {
		t.Fatalf("flush dropped %d frames", dropped.Value())
	}
}

// TestEgressControlFailsAfterDeath proves sendControl cannot hang forever on
// a dead connection: once the writer exits, it reports failure.
func TestEgressControlFailsAfterDeath(t *testing.T) {
	var dropped obs.Counter
	conn := newBlockConn()
	_ = conn.Close() // sends fail immediately
	q := newEgress(conn, &dropped)
	q.sendData([]byte{1}) // give the writer a frame so it hits the send error
	go q.run()
	<-q.dead
	// Past a dead writer, sendControl may still queue into the buffered
	// channel (a benign race with the dead signal) but can never block and
	// can never succeed more often than the queue holds.
	successes := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2*egressQueueSize; i++ {
			if q.sendControl([]byte{2}) {
				successes++
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sendControl blocked on a dead writer")
	}
	if successes > egressQueueSize {
		t.Fatalf("%d sendControl calls succeeded past a dead writer, queue holds %d",
			successes, egressQueueSize)
	}
}
