package broker

import (
	"sync"
	"testing"
	"time"

	"narada/internal/obs"
	"narada/internal/transport"
)

// blockConn blocks every Send until released, simulating a stalled peer.
type blockConn struct {
	release chan struct{}
	closed  chan struct{}
	once    sync.Once
}

func newBlockConn() *blockConn {
	return &blockConn{release: make(chan struct{}), closed: make(chan struct{})}
}

func (c *blockConn) Send([]byte) error {
	select {
	case <-c.release:
		return nil
	case <-c.closed:
		return transport.ErrClosed
	}
}
func (c *blockConn) Recv() ([]byte, error)                     { select {} }
func (c *blockConn) RecvTimeout(time.Duration) ([]byte, error) { return nil, transport.ErrTimeout }
func (c *blockConn) LocalAddr() string                         { return "test/block:0" }
func (c *blockConn) RemoteAddr() string                        { return "test/block:0" }
func (c *blockConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// recConn records every frame it is asked to send. Frames are copied: the
// shared buffer handed to Send is recycled once the egress releases it.
type recConn struct {
	mu     sync.Mutex
	frames [][]byte
}

func (c *recConn) Send(f []byte) error {
	c.mu.Lock()
	c.frames = append(c.frames, append([]byte(nil), f...))
	c.mu.Unlock()
	return nil
}
func (c *recConn) Recv() ([]byte, error)                     { select {} }
func (c *recConn) RecvTimeout(time.Duration) ([]byte, error) { return nil, transport.ErrTimeout }
func (c *recConn) LocalAddr() string                         { return "test/rec:0" }
func (c *recConn) RemoteAddr() string                        { return "test/rec:0" }
func (c *recConn) Close() error                              { return nil }

func (c *recConn) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

// newTestPool builds a frame pool with throwaway counters.
func newTestPool() *framePool {
	return newFramePool(&obs.Counter{}, &obs.Counter{})
}

// testTel is a bare egressTel with one distinct counter per drop reason, so
// tests can assert both the aggregate and the classification.
type testTel struct {
	queueFull, connDown, tooLarge obs.Counter
	tel                           egressTel
}

func newTestTel() *testTel {
	tt := &testTel{}
	tt.tel = egressTel{
		dropQueueFull: &tt.queueFull,
		dropConnDown:  &tt.connDown,
		dropTooLarge:  &tt.tooLarge,
	}
	return tt
}

func (tt *testTel) dropped() uint64 {
	return tt.queueFull.Value() + tt.connDown.Value() + tt.tooLarge.Value()
}

// frameOf checks a raw-payload frame out of the pool, mirroring encode.
func frameOf(p *framePool, payload []byte, refs int32) *sharedFrame {
	f, _ := p.pool.Get().(*sharedFrame)
	if f == nil {
		f = &sharedFrame{pool: p}
	}
	f.buf = append(f.buf[:0], payload...)
	f.refs.Store(refs)
	p.live.Add(1)
	return f
}

// TestEgressOverflowDropsOldest proves the routing loop can never be stalled
// by a dead peer: sendData against a fully blocked connection keeps
// returning immediately, and the overflow is counted. Every frame reference
// must come back to the pool regardless of how it was dropped.
func TestEgressOverflowDropsOldest(t *testing.T) {
	tt := newTestTel()
	pool := newTestPool()
	conn := newBlockConn()
	q := newEgress(conn, &tt.tel, "local")
	go q.run()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4*egressQueueSize; i++ {
			q.sendData(frameOf(pool, []byte{byte(i)}, 1))
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sendData blocked on a stalled peer")
	}
	if tt.queueFull.Value() == 0 {
		t.Fatal("overflow on a stalled peer was not counted as queue_full")
	}
	_ = conn.Close()
	<-q.dead
	if live := pool.Live(); live != 0 {
		t.Fatalf("%d frame references leaked through the overflow path", live)
	}
}

// TestEgressFlushesOnClose proves frames accepted before a close are still
// written out: the writer drains the whole queue before exiting.
func TestEgressFlushesOnClose(t *testing.T) {
	tt := newTestTel()
	pool := newTestPool()
	conn := &recConn{}
	q := newEgress(conn, &tt.tel, "local")
	const frames = 100
	for i := 0; i < frames; i++ {
		q.sendData(frameOf(pool, []byte{byte(i)}, 1))
	}
	q.close()
	q.run() // synchronous: drains everything, then exits via flush
	if got := conn.count(); got != frames {
		t.Fatalf("flushed %d frames on close, want %d", got, frames)
	}
	if tt.dropped() != 0 {
		t.Fatalf("flush dropped %d frames", tt.dropped())
	}
	if live := pool.Live(); live != 0 {
		t.Fatalf("%d frame references leaked through the flush path", live)
	}
}

// TestEgressControlFailsAfterDeath proves sendControl cannot hang forever on
// a dead connection: once the writer exits, every call reports failure and
// releases its frame.
func TestEgressControlFailsAfterDeath(t *testing.T) {
	tt := newTestTel()
	pool := newTestPool()
	conn := newBlockConn()
	_ = conn.Close() // sends fail immediately
	q := newEgress(conn, &tt.tel, "local")
	q.sendData(frameOf(pool, []byte{1}, 1)) // give the writer a frame so it hits the send error
	go q.run()
	<-q.dead
	successes := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2*egressQueueSize; i++ {
			if q.sendControl(frameOf(pool, []byte{2}, 1)) {
				successes++
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sendControl blocked on a dead writer")
	}
	if successes != 0 {
		t.Fatalf("%d sendControl calls reported success past a dead writer", successes)
	}
	if live := pool.Live(); live != 0 {
		t.Fatalf("%d frame references leaked past a dead writer", live)
	}
}

// TestEgressCoalescesBatches proves the writer drains a backlog through the
// vectored-write capability when the connection offers one: frames queued
// while the connection is stalled leave in batches, not one write per frame.
func TestEgressCoalescesBatches(t *testing.T) {
	tt := newTestTel()
	pool := newTestPool()
	conn := &batchRecConn{gate: make(chan struct{})}
	q := newEgress(conn, &tt.tel, "local")
	go q.run()

	const frames = 100
	for i := 0; i < frames; i++ {
		q.sendData(frameOf(pool, []byte{byte(i)}, 1))
	}
	close(conn.gate) // un-stall: the writer should now drain in bursts
	deadline := time.After(10 * time.Second)
	for conn.total() < frames {
		select {
		case <-deadline:
			t.Fatalf("writer delivered %d of %d frames", conn.total(), frames)
		case <-time.After(time.Millisecond):
		}
	}
	q.close()
	<-q.dead
	if conn.batches() >= frames {
		t.Fatalf("%d writes for %d frames: no coalescing happened", conn.batches(), frames)
	}
	if live := pool.Live(); live != 0 {
		t.Fatalf("%d frame references leaked through the batch path", live)
	}
}

// TestEgressDropReasons proves drops are classified by cause: an oversized
// frame is rejected as frame_too_large, frames stranded or offered after the
// writer died count as conn_down, and neither path leaks a frame reference.
func TestEgressDropReasons(t *testing.T) {
	tt := newTestTel()
	pool := newTestPool()
	conn := newBlockConn()
	q := newEgress(conn, &tt.tel, "local")

	q.sendData(frameOf(pool, make([]byte, maxEgressFrame+1), 1))
	if got := tt.tooLarge.Value(); got != 1 {
		t.Fatalf("oversized frame counted as frame_too_large %d times, want 1", got)
	}

	// Two queued frames, writer running against a closed connection: the
	// failed flush and the exit drain both classify as conn_down.
	q.sendData(frameOf(pool, []byte{1}, 1))
	q.sendData(frameOf(pool, []byte{2}, 1))
	_ = conn.Close()
	q.run() // synchronous: send error tears the queue down
	if got := tt.connDown.Value(); got != 2 {
		t.Fatalf("death stranded 2 frames but conn_down counted %d", got)
	}

	// A frame offered after death is conn_down too, never queue_full.
	q.sendData(frameOf(pool, []byte{3}, 1))
	if got := tt.connDown.Value(); got != 3 {
		t.Fatalf("post-death sendData counted conn_down %d times, want 3", got)
	}
	if got := tt.queueFull.Value(); got != 0 {
		t.Fatalf("no queue ever overflowed, yet queue_full counted %d", got)
	}
	if live := pool.Live(); live != 0 {
		t.Fatalf("%d frame references leaked through the drop paths", live)
	}
}

// batchRecConn implements transport.BatchSender and records batch sizes. The
// gate stalls the first write so a backlog can build behind it.
type batchRecConn struct {
	gate chan struct{}

	mu    sync.Mutex
	sizes []int
}

func (c *batchRecConn) record(n int) {
	<-c.gate
	c.mu.Lock()
	c.sizes = append(c.sizes, n)
	c.mu.Unlock()
}

func (c *batchRecConn) Send([]byte) error               { c.record(1); return nil }
func (c *batchRecConn) SendBatch(frames [][]byte) error { c.record(len(frames)); return nil }
func (c *batchRecConn) Recv() ([]byte, error)           { select {} }
func (c *batchRecConn) RecvTimeout(time.Duration) ([]byte, error) {
	return nil, transport.ErrTimeout
}
func (c *batchRecConn) LocalAddr() string  { return "test/batch:0" }
func (c *batchRecConn) RemoteAddr() string { return "test/batch:0" }
func (c *batchRecConn) Close() error       { return nil }

func (c *batchRecConn) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, s := range c.sizes {
		n += s
	}
	return n
}

func (c *batchRecConn) batches() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sizes)
}
