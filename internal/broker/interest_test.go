package broker

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"narada/internal/core"
	"narada/internal/event"
	"narada/internal/simnet"
	"narada/internal/transport"
	"narada/internal/uuid"
)

// routedChain builds a broker chain in RouteSubscriptions mode.
func routedChain(t *testing.T, e *env, n int) []*Broker {
	t.Helper()
	sites := []string{simnet.SiteIndianapolis, simnet.SiteUMN, simnet.SiteNCSA,
		simnet.SiteFSU, simnet.SiteCardiff}
	brokers := make([]*Broker, n)
	for i := range brokers {
		brokers[i] = e.broker(sites[i%len(sites)], fmt.Sprintf("r%d", i),
			Config{Routing: RouteSubscriptions})
	}
	for i := 1; i < n; i++ {
		if err := brokers[i].LinkTo(brokers[i-1].StreamAddr()); err != nil {
			t.Fatal(err)
		}
	}
	e.net.Clock().Sleep(200 * time.Millisecond)
	return brokers
}

func TestRoutedDeliveryAcrossChain(t *testing.T) {
	e := newEnv(t, 40)
	brokers := routedChain(t, e, 4)

	node, _ := e.node(simnet.SiteFSU, "sub")
	c, err := Connect(node, brokers[3].StreamAddr(), "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Subscribe("routed/data"); err != nil {
		t.Fatal(err)
	}
	// Interest must propagate hop by hop back to broker 0.
	e.net.Clock().Sleep(300 * time.Millisecond)

	if err := brokers[0].Publish("routed/data", []byte("via-interest")); err != nil {
		t.Fatal(err)
	}
	ev, err := c.Next(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(ev.Payload) != "via-interest" {
		t.Fatalf("payload = %q", ev.Payload)
	}
}

func TestRoutedModeSavesTraffic(t *testing.T) {
	// With no subscribers anywhere, a published event must not cross any
	// link in RouteSubscriptions mode — the whole point versus flooding.
	e := newEnv(t, 41)
	brokers := routedChain(t, e, 4)

	_, _, framesBefore := e.net.Counters()
	if err := brokers[0].Publish("nobody/listens", []byte("waste?")); err != nil {
		t.Fatal(err)
	}
	e.net.Clock().Sleep(300 * time.Millisecond)
	_, _, framesAfter := e.net.Counters()
	if framesAfter != framesBefore {
		t.Fatalf("%d frames sent for an event nobody wants", framesAfter-framesBefore)
	}
}

func TestRoutedPartialPath(t *testing.T) {
	// Subscriber at broker 1 of a 4-chain: a publish at broker 0 crosses
	// exactly one link; brokers 2 and 3 never see it.
	e := newEnv(t, 42)
	brokers := routedChain(t, e, 4)

	node, _ := e.node(simnet.SiteUMN, "sub")
	c, _ := Connect(node, brokers[1].StreamAddr(), "sub")
	defer c.Close()
	_ = c.Subscribe("partial/topic")
	e.net.Clock().Sleep(300 * time.Millisecond)

	_, _, framesBefore := e.net.Counters()
	if err := brokers[0].Publish("partial/topic", []byte("one-hop")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	e.net.Clock().Sleep(300 * time.Millisecond)
	_, _, framesAfter := e.net.Counters()
	// One link frame (b0 -> b1) plus one client frame (b1 -> sub).
	if got := framesAfter - framesBefore; got != 2 {
		t.Fatalf("frames = %d, want 2 (link + client delivery)", got)
	}
}

func TestRoutedUnsubscribeWithdrawsInterest(t *testing.T) {
	e := newEnv(t, 43)
	brokers := routedChain(t, e, 3)

	node, _ := e.node(simnet.SiteNCSA, "sub")
	c, _ := Connect(node, brokers[2].StreamAddr(), "sub")
	defer c.Close()
	_ = c.Subscribe("w/x")
	e.net.Clock().Sleep(300 * time.Millisecond)
	_ = c.Unsubscribe("w/x")
	e.net.Clock().Sleep(300 * time.Millisecond)

	_, _, framesBefore := e.net.Counters()
	_ = brokers[0].Publish("w/x", []byte("stale"))
	e.net.Clock().Sleep(300 * time.Millisecond)
	_, _, framesAfter := e.net.Counters()
	if framesAfter != framesBefore {
		t.Fatalf("%d frames sent after interest withdrawn", framesAfter-framesBefore)
	}
}

func TestRoutedClientDisconnectWithdrawsInterest(t *testing.T) {
	e := newEnv(t, 44)
	brokers := routedChain(t, e, 3)

	node, _ := e.node(simnet.SiteNCSA, "sub")
	c, _ := Connect(node, brokers[2].StreamAddr(), "sub")
	_ = c.Subscribe("gone/client")
	e.net.Clock().Sleep(300 * time.Millisecond)
	c.Close()
	e.net.Clock().Sleep(300 * time.Millisecond)

	_, _, framesBefore := e.net.Counters()
	_ = brokers[0].Publish("gone/client", []byte("stale"))
	e.net.Clock().Sleep(300 * time.Millisecond)
	_, _, framesAfter := e.net.Counters()
	if framesAfter != framesBefore {
		t.Fatalf("%d frames sent after subscriber disconnected", framesAfter-framesBefore)
	}
}

func TestRoutedWildcardInterest(t *testing.T) {
	e := newEnv(t, 45)
	brokers := routedChain(t, e, 3)

	node, _ := e.node(simnet.SiteNCSA, "sub")
	c, _ := Connect(node, brokers[2].StreamAddr(), "sub")
	defer c.Close()
	_ = c.Subscribe("wild/**")
	e.net.Clock().Sleep(300 * time.Millisecond)

	if err := brokers[0].Publish("wild/a/b/c", []byte("deep")); err != nil {
		t.Fatal(err)
	}
	ev, err := c.Next(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Topic != "wild/a/b/c" {
		t.Fatalf("topic = %q", ev.Topic)
	}
}

func TestRoutedTwoSubscribersSharedPattern(t *testing.T) {
	// Two clients at the far end share a pattern; one unsubscribing must
	// not withdraw the link interest while the other remains.
	e := newEnv(t, 46)
	brokers := routedChain(t, e, 2)

	node, _ := e.node(simnet.SiteUMN, "clients")
	c1, _ := Connect(node, brokers[1].StreamAddr(), "c1")
	defer c1.Close()
	c2, _ := Connect(node, brokers[1].StreamAddr(), "c2")
	defer c2.Close()
	_ = c1.Subscribe("shared/p")
	_ = c2.Subscribe("shared/p")
	e.net.Clock().Sleep(300 * time.Millisecond)
	_ = c1.Unsubscribe("shared/p")
	e.net.Clock().Sleep(300 * time.Millisecond)

	if err := brokers[0].Publish("shared/p", []byte("still-flowing")); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Next(5 * time.Second); err != nil {
		t.Fatalf("remaining subscriber starved: %v", err)
	}
}

func TestRoutedDiscoveryStillFloods(t *testing.T) {
	// Discovery requests must reach every broker regardless of routing
	// mode — they are control traffic, not content.
	e := newEnv(t, 47)
	brokers := routedChain(t, e, 3)

	node, _ := e.node(simnet.SiteBloomington, "probe")
	pc, err := node.ListenPacket(0)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	resp := sendDiscoveryRequestTo(t, e, brokers[0], pc)
	if resp < 3 {
		t.Fatalf("only %d brokers responded in routed mode, want 3", resp)
	}
}

// sendDiscoveryRequestTo injects a request at b and counts distinct
// responders within a window.
func sendDiscoveryRequestTo(t *testing.T, e *env, b *Broker, pc transport.PacketConn) int {
	t.Helper()
	req := newTestRequest(pc.LocalAddr())
	if err := pc.Send(b.UDPAddr(), req); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	deadline := e.net.Clock().Now().Add(3 * time.Second)
	for {
		remaining := deadline.Sub(e.net.Clock().Now())
		if remaining <= 0 {
			break
		}
		payload, _, err := pc.RecvTimeout(remaining)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				break
			}
			t.Fatal(err)
		}
		if from := responderOf(payload); from != "" {
			seen[from] = true
		}
	}
	return len(seen)
}

// newTestRequest builds an encoded discovery-request event frame.
func newTestRequest(responseAddr string) []byte {
	req := &core.DiscoveryRequest{ID: uuid.New(), Requester: "probe", ResponseAddr: responseAddr}
	ev := event.New(event.TypeDiscoveryRequest, "", core.EncodeDiscoveryRequest(req))
	return event.Encode(ev)
}

// responderOf extracts the responding broker's logical address from an
// encoded discovery-response frame ("" for anything else).
func responderOf(frame []byte) string {
	ev, err := event.Decode(frame)
	if err != nil || ev.Type != event.TypeDiscoveryResponse {
		return ""
	}
	resp, err := core.DecodeDiscoveryResponse(ev.Payload)
	if err != nil {
		return ""
	}
	return resp.Broker.LogicalAddress
}
