package broker

import (
	"fmt"
	"sync"
	"testing"

	"narada/internal/event"
	"narada/internal/obs"
)

// TestSharedFrameOverReleasePanics proves the refcount guard: releasing more
// references than a frame carries would hand a recycled buffer to a live
// fan-out, so the second release must panic instead of corrupting the pool.
func TestSharedFrameOverReleasePanics(t *testing.T) {
	pool := newTestPool()
	f := frameOf(pool, []byte{1, 2, 3}, 1)
	f.release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release of a shared frame did not panic")
		}
	}()
	f.release()
}

// TestFramePoolRecycles proves the encode/release cycle reuses buffers and
// that the hit/miss counters observe it: the first encode allocates, later
// encodes are served by the recycled frame, and live drops back to zero.
func TestFramePoolRecycles(t *testing.T) {
	var hits, misses obs.Counter
	pool := newFramePool(&hits, &misses)
	ev := event.New(event.TypePublish, "pool/topic", []byte("payload"))

	f := pool.encode(ev, 2)
	if pool.Live() != 1 {
		t.Fatalf("live after encode = %d, want 1", pool.Live())
	}
	first := f.bytes()
	if dec, err := event.Decode(first); err != nil || dec.Topic != "pool/topic" {
		t.Fatalf("encoded frame failed to decode: %v", err)
	}
	f.release()
	if pool.Live() != 1 {
		t.Fatalf("live after first of two releases = %d, want 1", pool.Live())
	}
	f.release()
	if pool.Live() != 0 {
		t.Fatalf("live after final release = %d, want 0", pool.Live())
	}

	// sync.Pool may drop items under GC pressure, so assert on the counters
	// only when the pool actually served a recycled frame.
	g := pool.encode(ev, 1)
	g.release()
	if hits.Value()+misses.Value() != 2 {
		t.Fatalf("hit+miss = %d+%d, want 2 encodes observed", hits.Value(), misses.Value())
	}
	if misses.Value() == 0 {
		t.Fatal("first encode cannot be a pool hit")
	}
}

// TestPublishFrameLifecycleUnderChurn is the -race stress for the lock-free
// fan-out: concurrent publishers share frames across dozens of egress
// queues while subscription churn swaps trie snapshots underneath them.
// After producers quiesce and every writer drains, the frame pool must
// account for every reference — no leak, no double release (which would
// have panicked).
func TestPublishFrameLifecycleUnderChurn(t *testing.T) {
	br := newFanoutBroker(t, nil)
	const clients = 24
	conns := make([]*clientConn, clients)
	for i := range conns {
		id := fmt.Sprintf("sub-%d", i)
		conns[i] = addBenchClient(br, id)
		pattern := "churn/fan/topic"
		switch i % 4 {
		case 1:
			pattern = "churn/fan/*"
		case 2:
			pattern = "churn/**"
		}
		if _, err := br.subs.SubscribeValue(id, pattern, conns[i].out); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ev := event.New(event.TypePublish, "churn/fan/topic", []byte("stress"))
			ev.Source = fmt.Sprintf("pub%d", p)
			for i := 0; i < 500; i++ {
				br.routePublish(ev, "")
			}
		}(p)
	}
	// Churner: resubscribes a rotating slice of the population while the
	// publishers run, forcing snapshot swaps and value refreshes mid-match.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			id := fmt.Sprintf("sub-%d", i%clients)
			br.subs.Unsubscribe(id, "churn/fan/topic")
			if _, err := br.subs.SubscribeValue(id, "churn/fan/topic", conns[i%clients].out); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	// Quiesce: stop every writer and wait for its exit drain, then every
	// frame reference must be back in the pool.
	for _, c := range conns {
		c.out.close()
		<-c.out.dead
	}
	if live := br.frames.Live(); live != 0 {
		t.Fatalf("%d frame references leaked through the fan-out", live)
	}
}

// TestSampledPublishFrameLifecycle re-runs the fan-out churn with message
// sampling fully live (sample every publish, real tracer): the trace-id and
// flow stamps ride the shared frames, and when the writers quiesce every
// reference must still come back to the pool — sampling must not perturb
// refcounting.
func TestSampledPublishFrameLifecycle(t *testing.T) {
	tracer := obs.NewTracer(obs.DefaultTraceCapacity, nil)
	br := newFanoutBroker(t, func(cfg *Config) {
		cfg.PublishSampler = obs.NewSampler(1, 0) // every publish sampled
		cfg.Tracer = tracer
	})
	const clients = 16
	conns := make([]*clientConn, clients)
	for i := range conns {
		id := fmt.Sprintf("sampled-sub-%d", i)
		conns[i] = addBenchClient(br, id)
		if _, err := br.subs.SubscribeValue(id, "sampled/fan/topic", conns[i].out); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				// Fresh event per publish: each gets its own UUID (trace
				// key) and a clean header map for the sampling stamp.
				ev := event.New(event.TypePublish, "sampled/fan/topic", []byte("stress"))
				ev.Source = fmt.Sprintf("pub%d", p)
				ev.Timestamp = br.now()
				br.routePublish(ev, "")
			}
		}(p)
	}
	wg.Wait()

	for _, c := range conns {
		c.out.close()
		<-c.out.dead
	}
	if live := br.frames.Live(); live != 0 {
		t.Fatalf("%d frame references leaked through the sampled fan-out", live)
	}
	if br.cfg.PublishSampler.Taken() == 0 {
		t.Fatal("sampler never fired despite every=1")
	}
}
