package wal

import (
	"testing"
	"time"
)

// benchPayload is sized like an encoded registration record: a broker
// advertisement with a couple of endpoints lands around 200 bytes.
var benchPayload = make([]byte, 200)

func benchAppend(b *testing.B, sync SyncPolicy) {
	l, _, _, err := Open(Options{Dir: b.TempDir(), Sync: sync, SyncEvery: 10 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.SetBytes(int64(len(benchPayload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(benchPayload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendSyncAlways(b *testing.B)   { benchAppend(b, SyncAlways) }
func BenchmarkAppendSyncInterval(b *testing.B) { benchAppend(b, SyncInterval) }
func BenchmarkAppendSyncNever(b *testing.B)    { benchAppend(b, SyncNever) }

// BenchmarkRecover measures reopening a log of 10k records — the
// crash-recovery cost a restarted BDN pays before serving discovery.
func BenchmarkRecover(b *testing.B) {
	dir := b.TempDir()
	l, _, _, err := Open(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	const records = 10_000
	for i := 0; i < records; i++ {
		if _, err := l.Append(benchPayload); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, recovered, _, err := Open(Options{Dir: dir, Sync: SyncNever})
		if err != nil {
			b.Fatal(err)
		}
		if recovered != records {
			b.Fatalf("recovered %d, want %d", recovered, records)
		}
		if err := l.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay measures streaming 10k records out of the log — the cost
// of bringing a fresh standby up to date from the primary's WAL.
func BenchmarkReplay(b *testing.B) {
	l, _, _, err := Open(Options{Dir: b.TempDir(), Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	const records = 10_000
	for i := 0; i < records; i++ {
		if _, err := l.Append(benchPayload); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := uint64(0)
		if err := l.Replay(1, func(index uint64, payload []byte) error {
			n++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("replayed %d, want %d", n, records)
		}
	}
}
