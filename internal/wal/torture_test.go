package wal

// Torture tests: simulate the crash shapes a WAL must survive — torn tail
// records, bit flips, truncated segments — and assert recovery keeps every
// fully-synced record and discards only the damaged suffix.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// fillLog writes n records (deterministic contents) with SyncAlways and
// closes the log, returning the expected payloads by index.
func fillLog(t *testing.T, dir string, n int, segBytes int64) map[uint64][]byte {
	t.Helper()
	l, _, _, err := Open(Options{Dir: dir, SegmentBytes: segBytes, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64][]byte{}
	for i := 1; i <= n; i++ {
		payload := []byte(fmt.Sprintf("payload-%04d-%s", i, bytes.Repeat([]byte{byte(i)}, i%37)))
		idx, err := l.Append(payload)
		if err != nil {
			t.Fatal(err)
		}
		want[idx] = payload
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

func segPaths(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, e := range entries {
		if _, ok := parseSegName(e.Name()); ok {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	return paths
}

// verifyPrefix reopens the log and asserts it contains exactly the records
// 1..len(got) and that each matches want.
func verifyPrefix(t *testing.T, dir string, want map[uint64][]byte, wantTruncated bool) uint64 {
	t.Helper()
	l, recovered, truncated, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer l.Close()
	if truncated != wantTruncated {
		t.Fatalf("truncated = %v, want %v", truncated, wantTruncated)
	}
	last := l.LastIndex()
	var n uint64
	err = l.Replay(1, func(i uint64, p []byte) error {
		n++
		if n != i {
			return fmt.Errorf("gap: replay hit index %d as record %d", i, n)
		}
		if !bytes.Equal(p, want[i]) {
			return fmt.Errorf("record %d corrupted after recovery", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != last {
		t.Fatalf("replayed %d records but LastIndex = %d", n, last)
	}
	if recovered != n {
		t.Fatalf("Open reported %d recovered, replay found %d", recovered, n)
	}
	// The log must accept appends after recovery.
	if _, err := l.Append([]byte("post-recovery")); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	return last
}

func TestTornTailRecordDiscarded(t *testing.T) {
	for _, cut := range []int64{1, 3, recHeaderLen - 1, recHeaderLen, recHeaderLen + 5} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			want := fillLog(t, dir, 50, 1<<20)
			paths := segPaths(t, dir)
			tail := paths[len(paths)-1]
			fi, err := os.Stat(tail)
			if err != nil {
				t.Fatal(err)
			}
			// Tear the tail: chop bytes off the end, simulating a crash
			// mid-write of record 50.
			if err := os.Truncate(tail, fi.Size()-cut); err != nil {
				t.Fatal(err)
			}
			last := verifyPrefix(t, dir, want, true)
			if last != 49 {
				t.Fatalf("after torn tail recovery LastIndex = %d, want 49", last)
			}
		})
	}
}

func TestBitFlipTruncatesFromCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(0xBD))
	for trial := 0; trial < 20; trial++ {
		dir := t.TempDir()
		want := fillLog(t, dir, 60, 1<<20)
		paths := segPaths(t, dir)
		tail := paths[len(paths)-1]
		raw, err := os.ReadFile(tail)
		if err != nil {
			t.Fatal(err)
		}
		off := rng.Intn(len(raw))
		raw[off] ^= 1 << uint(rng.Intn(8))
		if err := os.WriteFile(tail, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		l, _, truncated, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !truncated {
			l.Close()
			t.Fatalf("trial %d: bit flip at %d not detected", trial, off)
		}
		// Every surviving record must be intact and form a gap-free prefix.
		var n uint64
		err = l.Replay(1, func(i uint64, p []byte) error {
			n++
			if n != i || !bytes.Equal(p, want[i]) {
				return fmt.Errorf("trial %d: surviving record %d damaged", trial, i)
			}
			return nil
		})
		l.Close()
		if err != nil {
			t.Fatal(err)
		}
		if n >= 60 {
			t.Fatalf("trial %d: corruption at %d survived full recovery (%d records)", trial, off, n)
		}
	}
}

func TestMidSegmentCorruptionDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	want := fillLog(t, dir, 40, 256)
	paths := segPaths(t, dir)
	if len(paths) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(paths))
	}
	// Corrupt a record in the middle of the FIRST segment: everything from
	// that record on — including all later segments — must be discarded.
	raw, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(paths[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	last := verifyPrefix(t, dir, want, true)
	if last >= 40 {
		t.Fatalf("corruption ignored: LastIndex = %d", last)
	}
	// Later segment files must be gone.
	after := segPaths(t, dir)
	if len(after) > 1 {
		t.Fatalf("later segments survived mid-segment corruption: %v", after)
	}
}

func TestZeroedTailRecovers(t *testing.T) {
	// Some filesystems extend a file with zeroes on crash. A zero length +
	// zero CRC header would CRC-match an empty record (crc32("") == 0), so
	// the format forbids empty records and recovery must stop there.
	dir := t.TempDir()
	want := fillLog(t, dir, 10, 1<<20)
	paths := segPaths(t, dir)
	f, err := os.OpenFile(paths[len(paths)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	last := verifyPrefix(t, dir, want, true)
	if last != 10 {
		t.Fatalf("LastIndex = %d, want 10", last)
	}
}

func TestInsaneLengthRejected(t *testing.T) {
	dir := t.TempDir()
	want := fillLog(t, dir, 5, 1<<20)
	paths := segPaths(t, dir)
	f, err := os.OpenFile(paths[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A header claiming a 4 GiB record.
	if _, err := f.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	last := verifyPrefix(t, dir, want, true)
	if last != 5 {
		t.Fatalf("LastIndex = %d, want 5", last)
	}
}

// TestCrashPointProperty is the property test: for every possible truncation
// point of a log's on-disk bytes (as if the machine died after exactly k
// bytes reached the platter), recovery yields a gap-free prefix of intact
// records and nothing else.
func TestCrashPointProperty(t *testing.T) {
	const records = 12
	master := t.TempDir()
	want := fillLog(t, master, records, 1<<20)
	paths := segPaths(t, master)
	if len(paths) != 1 {
		t.Fatalf("want single segment, got %d", len(paths))
	}
	raw, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	step := 1
	if testing.Short() {
		step = 17
	}
	for k := 0; k <= len(raw); k += step {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), raw[:k], 0o644); err != nil {
			t.Fatal(err)
		}
		l, recovered, _, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		var n uint64
		err = l.Replay(1, func(i uint64, p []byte) error {
			n++
			if n != i || !bytes.Equal(p, want[i]) {
				return fmt.Errorf("k=%d: record %d damaged or out of order", k, i)
			}
			return nil
		})
		l.Close()
		if err != nil {
			t.Fatal(err)
		}
		if n != recovered {
			t.Fatalf("k=%d: recovered %d vs replayed %d", k, recovered, n)
		}
		if n > uint64(records) {
			t.Fatalf("k=%d: invented records (%d)", k, n)
		}
	}
}

// FuzzSegmentRecovery feeds arbitrary bytes as a segment file and asserts
// Open never errors, never panics, and every record it recovers passes its
// CRC (i.e. recovery never fabricates data).
func FuzzSegmentRecovery(f *testing.F) {
	seedDir := f.TempDir()
	l, _, _, err := Open(Options{Dir: seedDir})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Append([]byte(fmt.Sprintf("seed-%d", i)))
	}
	l.Close()
	raw, err := os.ReadFile(filepath.Join(seedDir, segName(1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:len(raw)-3])
	f.Add([]byte{})
	f.Add(make([]byte, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, recovered, _, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("Open on fuzzed segment: %v", err)
		}
		defer l.Close()
		var n uint64
		if err := l.Replay(1, func(uint64, []byte) error { n++; return nil }); err != nil {
			t.Fatalf("Replay after fuzzed recovery: %v", err)
		}
		if n != recovered {
			t.Fatalf("recovered %d but replayed %d", recovered, n)
		}
		if _, err := l.Append([]byte("alive")); err != nil {
			t.Fatalf("Append after fuzzed recovery: %v", err)
		}
	})
}
