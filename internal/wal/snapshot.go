package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshots are full-state captures used for snapshot-then-prune compaction
// and for bringing a far-behind replica up to date. A snapshot at index i
// covers every record <= i; after persisting one, TruncateFront(i+1) may
// drop the covered segments.
//
// File format: snap-<index, 20 digits>.snap holding
//
//	[magic 0xS5][version 1][crc32 uint32 LE][len uint32 LE][state]
//
// written to a unique temp file in the same directory and atomically
// renamed, with file and directory fsyncs, so a crash mid-write never
// clobbers the previous snapshot.

const (
	snapMagic   = 0x5A
	snapVersion = 1
	snapPrefix  = "snap-"
	snapSuffix  = ".snap"
)

// ErrNoSnapshot is returned by LoadSnapshot when the directory holds no
// intact snapshot.
var ErrNoSnapshot = errors.New("wal: no snapshot")

func snapName(index uint64) string {
	return fmt.Sprintf("%s%020d%s", snapPrefix, index, snapSuffix)
}

func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(snapPrefix):len(name)-len(snapSuffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// SaveSnapshot atomically persists state as the snapshot covering all
// records <= index, then prunes older snapshot files.
func SaveSnapshot(dir string, index uint64, state []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	f, err := os.CreateTemp(dir, snapPrefix+"*.tmp")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	tmp := f.Name()
	cleanup := func() {
		f.Close()
		os.Remove(tmp)
	}
	var hdr [10]byte
	hdr[0] = snapMagic
	hdr[1] = snapVersion
	binary.LittleEndian.PutUint32(hdr[2:6], crc32.ChecksumIEEE(state))
	binary.LittleEndian.PutUint32(hdr[6:10], uint32(len(state)))
	if _, err := f.Write(hdr[:]); err != nil {
		cleanup()
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(state); err != nil {
		cleanup()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	final := filepath.Join(dir, snapName(index))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	pruneSnapshots(dir, index)
	return nil
}

// LoadSnapshot returns the newest intact snapshot in dir. Corrupt newer
// snapshots are skipped in favour of older intact ones.
func LoadSnapshot(dir string) (index uint64, state []byte, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil, ErrNoSnapshot
		}
		return 0, nil, fmt.Errorf("wal: %w", err)
	}
	var idxs []uint64
	for _, e := range entries {
		if n, ok := parseSnapName(e.Name()); ok {
			idxs = append(idxs, n)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] > idxs[j] })
	for _, n := range idxs {
		state, err := readSnapshot(filepath.Join(dir, snapName(n)))
		if err == nil {
			return n, state, nil
		}
	}
	return 0, nil, ErrNoSnapshot
}

func readSnapshot(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < 10 || raw[0] != snapMagic || raw[1] != snapVersion {
		return nil, errors.New("wal: malformed snapshot")
	}
	crc := binary.LittleEndian.Uint32(raw[2:6])
	length := binary.LittleEndian.Uint32(raw[6:10])
	if int(length) != len(raw)-10 {
		return nil, errors.New("wal: malformed snapshot")
	}
	state := raw[10:]
	if crc32.ChecksumIEEE(state) != crc {
		return nil, errors.New("wal: snapshot crc mismatch")
	}
	return state, nil
}

// pruneSnapshots removes snapshot files older than keep, plus any stale
// temp files from crashed writers.
func pruneSnapshots(dir string, keep uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, ".tmp") {
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if n, ok := parseSnapName(name); ok && n < keep {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
}
