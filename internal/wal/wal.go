// Package wal implements a dependency-free segmented write-ahead log.
//
// Records are opaque byte payloads framed as
//
//	[length uint32 LE][crc32(IEEE) uint32 LE][payload]
//
// and assigned monotonically increasing indexes starting at 1. The log is a
// directory of segment files named seg-<first index, 20 digits>.wal; a new
// segment is cut when the active one exceeds Options.SegmentBytes. Recovery
// scans every segment and truncates at the first corrupt record: a torn tail
// (partial length/CRC/payload from a crash mid-write) is discarded, a
// mid-segment corruption drops everything from that point on, including any
// later segments, so the surviving prefix is always exactly the records that
// were fully written in order.
//
// Durability is controlled by Options.Sync: SyncAlways fsyncs after every
// append, SyncInterval batches fsyncs on a timer, SyncNever leaves flushing
// to the OS. Compaction is snapshot-then-prune: callers persist a snapshot
// (see snapshot.go) at some index and then TruncateFront drops whole
// segments that the snapshot covers.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy says when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs the active segment after every Append.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer (Options.SyncEvery).
	SyncInterval
	// SyncNever never fsyncs explicitly; the OS decides.
	SyncNever
)

// ParseSyncPolicy maps the -fsync flag spelling to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return SyncAlways, fmt.Errorf("wal: unknown fsync policy %q (want always|interval|never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return "unknown"
}

// Options configures a Log.
type Options struct {
	// Dir is the directory holding segment files. Created if absent.
	Dir string
	// SegmentBytes is the rotation threshold for the active segment.
	// Default 1 MiB.
	SegmentBytes int64
	// Sync is the fsync policy. Default SyncAlways.
	Sync SyncPolicy
	// SyncEvery is the flush period under SyncInterval. Default 50ms.
	SyncEvery time.Duration
}

const (
	recHeaderLen       = 8 // uint32 length + uint32 crc
	defaultSegmentSize = 1 << 20
	maxRecordLen       = 1 << 26 // 64 MiB sanity bound; larger lengths are corruption
	segPrefix          = "seg-"
	segSuffix          = ".wal"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

// ErrNotFound is returned by Replay when the requested start index has been
// compacted away.
var ErrNotFound = errors.New("wal: index compacted")

type segment struct {
	path  string
	first uint64 // index of the first record in this segment
	count uint64 // number of records
}

// Log is a segmented append-only record log. All methods are safe for
// concurrent use.
type Log struct {
	opts Options

	mu       sync.Mutex
	segs     []*segment // closed segments plus the active one (last)
	active   *os.File   // file handle for segs[len(segs)-1]
	size     int64      // byte size of the active segment
	first    uint64     // first retained index (0 when empty)
	last     uint64     // last appended index (0 when empty)
	dirty    bool       // appended since last fsync
	closed   bool
	notifyCh chan struct{} // closed and replaced on every append

	syncStop chan struct{}
	syncDone chan struct{}
}

// Open opens (or creates) the log in opts.Dir, recovering from any torn or
// corrupt tail left by a crash. The returned recovered count is the number
// of intact records found on disk; truncated reports whether any bytes were
// discarded during recovery.
func Open(opts Options) (l *Log, recovered uint64, truncated bool, err error) {
	if opts.Dir == "" {
		return nil, 0, false, errors.New("wal: Options.Dir required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentSize
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 50 * time.Millisecond
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, 0, false, fmt.Errorf("wal: %w", err)
	}
	l = &Log{opts: opts, notifyCh: make(chan struct{})}
	truncated, err = l.recover()
	if err != nil {
		return nil, 0, false, err
	}
	if l.last >= l.first && l.first > 0 {
		recovered = l.last - l.first + 1
	}
	if opts.Sync == SyncInterval {
		l.syncStop = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, recovered, truncated, nil
}

func segName(first uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, first, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// recover scans segments in index order, truncating at the first corrupt
// record and deleting any segments past it.
func (l *Log) recover() (truncated bool, err error) {
	entries, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return false, fmt.Errorf("wal: %w", err)
	}
	var segs []*segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		first, ok := parseSegName(e.Name())
		if !ok {
			continue
		}
		segs = append(segs, &segment{path: filepath.Join(l.opts.Dir, e.Name()), first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })

	for i, s := range segs {
		count, goodBytes, clean, scanErr := scanSegment(s.path)
		if scanErr != nil {
			return truncated, scanErr
		}
		s.count = count
		if clean && count > 0 && i < len(segs)-1 {
			continue
		}
		if !clean {
			truncated = true
			if err := truncateFile(s.path, goodBytes); err != nil {
				return truncated, err
			}
		}
		if !clean || count == 0 && i < len(segs)-1 {
			// Corruption (or an empty rotated segment, which can only come
			// from a crash mid-rotation): everything after this point is
			// unreachable — later indexes would be ambiguous. Drop it.
			for _, later := range segs[i+1:] {
				truncated = true
				_ = os.Remove(later.path)
			}
			segs = segs[:i+1]
			break
		}
	}
	// Drop a fully-empty tail segment list down to nothing.
	for len(segs) > 0 {
		tail := segs[len(segs)-1]
		if tail.count > 0 || len(segs) == 1 {
			break
		}
		_ = os.Remove(tail.path)
		segs = segs[:len(segs)-1]
	}

	if len(segs) == 0 {
		segs = []*segment{{path: filepath.Join(l.opts.Dir, segName(1)), first: 1}}
	}
	tail := segs[len(segs)-1]
	f, err := os.OpenFile(tail.path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return truncated, fmt.Errorf("wal: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return truncated, fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return truncated, fmt.Errorf("wal: %w", err)
	}
	l.segs = segs
	l.active = f
	l.size = fi.Size()
	l.first = segs[0].first
	l.last = tail.first + tail.count - 1
	if tail.count == 0 {
		l.last = tail.first - 1
	}
	if l.last < l.first {
		// Empty log.
		l.first = segs[0].first
	}
	return truncated, nil
}

// scanSegment walks records in one file. It returns how many intact records
// it found, the byte offset just past the last intact record, and whether
// the file ends cleanly (no trailing garbage).
func scanSegment(path string) (count uint64, goodBytes int64, clean bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var hdr [recHeaderLen]byte
	buf := make([]byte, 4096)
	for {
		n, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return count, goodBytes, true, nil
		}
		if err != nil {
			// Partial header: torn tail.
			_ = n
			return count, goodBytes, false, nil
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		// length 0 would CRC-match zero-filled tail blocks (crc32("") == 0),
		// so empty records are forbidden and a zero length is corruption.
		if length == 0 || length > maxRecordLen {
			return count, goodBytes, false, nil
		}
		if int(length) > len(buf) {
			buf = make([]byte, length)
		}
		if _, err := io.ReadFull(f, buf[:length]); err != nil {
			return count, goodBytes, false, nil
		}
		if crc32.ChecksumIEEE(buf[:length]) != crc {
			return count, goodBytes, false, nil
		}
		count++
		goodBytes += recHeaderLen + int64(length)
	}
}

func truncateFile(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return f.Sync()
}

// Append writes one record and returns its index. Depending on the sync
// policy the record may not be durable until the next Sync.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if len(payload) == 0 {
		return 0, errors.New("wal: empty record")
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := l.active.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	if _, err := l.active.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	l.size += recHeaderLen + int64(len(payload))
	tail := l.segs[len(l.segs)-1]
	tail.count++
	idx := tail.first + tail.count - 1
	l.last = idx
	if l.first == 0 || l.last < l.first {
		l.first = idx
	}
	l.dirty = true
	if l.opts.Sync == SyncAlways {
		if err := l.active.Sync(); err != nil {
			return 0, fmt.Errorf("wal: %w", err)
		}
		l.dirty = false
	}
	// Wake tail-followers.
	close(l.notifyCh)
	l.notifyCh = make(chan struct{})
	return idx, nil
}

// rotateLocked cuts a new active segment. Called with l.mu held.
func (l *Log) rotateLocked() error {
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	first := l.last + 1
	path := filepath.Join(l.opts.Dir, segName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.opts.Dir); err != nil {
		f.Close()
		return err
	}
	l.segs = append(l.segs, &segment{path: path, first: first})
	l.active = f
	l.size = 0
	l.dirty = false
	return nil
}

// Sync flushes appended records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if !l.dirty {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.dirty = false
	return nil
}

func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = l.Sync()
		case <-l.syncStop:
			return
		}
	}
}

// FirstIndex returns the first retained index (0 when the log is empty).
func (l *Log) FirstIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.last < l.first {
		return 0
	}
	return l.first
}

// LastIndex returns the last appended index (0 when the log is empty).
func (l *Log) LastIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.last < l.first {
		return 0
	}
	return l.last
}

// Segments returns how many segment files the log currently spans.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Notify returns a channel closed on the next Append, letting tail-followers
// block until new records exist. Grab a fresh channel after each wake-up.
func (l *Log) Notify() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.notifyCh
}

// Replay calls fn for every record with index >= from, in order. It returns
// ErrNotFound when from has been compacted away (callers should fall back to
// a snapshot). Replay of an empty range is a no-op. fn returning an error
// stops the walk.
func (l *Log) Replay(from uint64, fn func(index uint64, payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if from == 0 {
		from = 1
	}
	if l.last < l.first || from > l.last {
		l.mu.Unlock()
		return nil
	}
	if from < l.first {
		l.mu.Unlock()
		return ErrNotFound
	}
	// Snapshot the segment list and flush so reads see every record.
	if l.dirty {
		if err := l.active.Sync(); err != nil {
			l.mu.Unlock()
			return fmt.Errorf("wal: %w", err)
		}
		l.dirty = false
	}
	segs := make([]*segment, len(l.segs))
	copy(segs, l.segs)
	last := l.last
	l.mu.Unlock()

	for _, s := range segs {
		if s.count == 0 || s.first+s.count-1 < from {
			continue
		}
		if err := replaySegment(s, from, last, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(s *segment, from, last uint64, fn func(uint64, []byte) error) error {
	f, err := os.Open(s.path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var hdr [recHeaderLen]byte
	idx := s.first
	for idx <= last {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // concurrent tail not yet visible; caller bounded by last
			}
			return fmt.Errorf("wal: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxRecordLen {
			return fmt.Errorf("wal: corrupt record at index %d in %s", idx, s.path)
		}
		buf := make([]byte, length)
		if _, err := io.ReadFull(f, buf); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if crc32.ChecksumIEEE(buf) != crc {
			return fmt.Errorf("wal: corrupt record at index %d in %s", idx, s.path)
		}
		if idx >= from {
			if err := fn(idx, buf); err != nil {
				return err
			}
		}
		idx++
		if idx >= s.first+s.count {
			return nil
		}
	}
	return nil
}

// TruncateFront drops whole segments whose records all precede keepFrom.
// The active segment is never removed. Used after a snapshot at keepFrom-1
// has been persisted.
func (l *Log) TruncateFront(keepFrom uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	removed := false
	for len(l.segs) > 1 {
		s := l.segs[0]
		end := s.first + s.count - 1
		if end >= keepFrom {
			break
		}
		if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: %w", err)
		}
		l.segs = l.segs[1:]
		removed = true
	}
	if removed {
		l.first = l.segs[0].first
		if err := syncDir(l.opts.Dir); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	if l.dirty && l.opts.Sync != SyncNever {
		_ = l.active.Sync()
	}
	err := l.active.Close()
	stop := l.syncStop
	done := l.syncDone
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return err
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}
