package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	opts.Dir = dir
	l, _, _, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func collect(t *testing.T, l *Log, from uint64) map[uint64][]byte {
	t.Helper()
	got := map[uint64][]byte{}
	err := l.Replay(from, func(i uint64, p []byte) error {
		got[i] = append([]byte(nil), p...)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay(%d): %v", from, err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	want := map[uint64][]byte{}
	for i := 1; i <= 100; i++ {
		payload := []byte(fmt.Sprintf("record-%d", i))
		idx, err := l.Append(payload)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if idx != uint64(i) {
			t.Fatalf("Append index = %d, want %d", idx, i)
		}
		want[idx] = payload
	}
	if l.FirstIndex() != 1 || l.LastIndex() != 100 {
		t.Fatalf("range = [%d,%d], want [1,100]", l.FirstIndex(), l.LastIndex())
	}
	got := collect(t, l, 1)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, p := range want {
		if !bytes.Equal(got[i], p) {
			t.Fatalf("record %d = %q, want %q", i, got[i], p)
		}
	}
	// Partial replay.
	got = collect(t, l, 51)
	if len(got) != 50 {
		t.Fatalf("Replay(51) returned %d records, want 50", len(got))
	}
	if _, ok := got[50]; ok {
		t.Fatal("Replay(51) included index 50")
	}
}

func TestReopenPreservesRecords(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	for i := 0; i < 25; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2, recovered, truncated, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if truncated {
		t.Fatal("clean reopen reported truncation")
	}
	if recovered != 25 {
		t.Fatalf("recovered = %d, want 25", recovered)
	}
	if l2.LastIndex() != 25 {
		t.Fatalf("LastIndex = %d, want 25", l2.LastIndex())
	}
	// Appends continue from the recovered index.
	idx, err := l2.Append([]byte("next"))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 26 {
		t.Fatalf("post-recovery Append index = %d, want 26", idx)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentBytes: 256})
	payload := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 20; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 3 {
		t.Fatalf("Segments = %d, want >= 3 after 2000 bytes at 256/segment", l.Segments())
	}
	got := collect(t, l, 1)
	if len(got) != 20 {
		t.Fatalf("replayed %d records across segments, want 20", len(got))
	}
	// Rotation survives reopen.
	l.Close()
	l2, recovered, _, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if recovered != 20 {
		t.Fatalf("recovered = %d, want 20", recovered)
	}
}

func TestTruncateFrontPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 30; i++ {
		if _, err := l.Append(bytes.Repeat([]byte("y"), 60)); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Segments()
	if before < 4 {
		t.Fatalf("want >= 4 segments, got %d", before)
	}
	if err := l.TruncateFront(20); err != nil {
		t.Fatal(err)
	}
	if l.Segments() >= before {
		t.Fatalf("TruncateFront removed nothing (%d -> %d segments)", before, l.Segments())
	}
	if first := l.FirstIndex(); first == 1 || first > 20 {
		t.Fatalf("FirstIndex after TruncateFront(20) = %d", first)
	}
	// Records >= 20 still replayable; compacted range reports ErrNotFound.
	got := collect(t, l, 20)
	if len(got) != 11 {
		t.Fatalf("Replay(20) returned %d records, want 11", len(got))
	}
	if err := l.Replay(1, func(uint64, []byte) error { return nil }); err != ErrNotFound {
		t.Fatalf("Replay(1) after compaction = %v, want ErrNotFound", err)
	}
}

func TestSnapshotSaveLoadPrune(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := LoadSnapshot(dir); err != ErrNoSnapshot {
		t.Fatalf("LoadSnapshot(empty) = %v, want ErrNoSnapshot", err)
	}
	if err := SaveSnapshot(dir, 10, []byte("state-10")); err != nil {
		t.Fatal(err)
	}
	if err := SaveSnapshot(dir, 25, []byte("state-25")); err != nil {
		t.Fatal(err)
	}
	idx, state, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 25 || string(state) != "state-25" {
		t.Fatalf("LoadSnapshot = (%d, %q)", idx, state)
	}
	// Older snapshot pruned.
	if _, err := os.Stat(filepath.Join(dir, snapName(10))); !os.IsNotExist(err) {
		t.Fatalf("snapshot 10 not pruned: %v", err)
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	if err := SaveSnapshot(dir, 5, []byte("good")); err != nil {
		t.Fatal(err)
	}
	// A newer snapshot whose body is flipped post-write.
	if err := SaveSnapshot(dir, 9, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	// SaveSnapshot(9) pruned 5; recreate 5 then corrupt 9.
	if err := SaveSnapshot(dir, 5, []byte("good")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapName(9))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	idx, state, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 5 || string(state) != "good" {
		t.Fatalf("LoadSnapshot fell back to (%d, %q), want (5, good)", idx, state)
	}
}

func TestNotifyWakesFollower(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	ch := l.Notify()
	done := make(chan struct{})
	go func() {
		<-ch
		close(done)
	}()
	if _, err := l.Append([]byte("wake")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Notify channel not closed by Append")
	}
}

func TestSyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{Sync: SyncInterval, SyncEvery: 5 * time.Millisecond})
	if _, err := l.Append([]byte("interval")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		l.mu.Lock()
		dirty := l.dirty
		l.mu.Unlock()
		if !dirty {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("interval sync never flushed")
}

func TestParseSyncPolicy(t *testing.T) {
	cases := map[string]SyncPolicy{"always": SyncAlways, "": SyncAlways, "Interval": SyncInterval, "never": SyncNever}
	for in, want := range cases {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("ParseSyncPolicy(bogus) succeeded")
	}
}

func TestEmptyLogOpens(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	if l.FirstIndex() != 0 || l.LastIndex() != 0 {
		t.Fatalf("empty log range = [%d,%d], want [0,0]", l.FirstIndex(), l.LastIndex())
	}
	if err := l.Replay(1, func(uint64, []byte) error { t.Fatal("fn called"); return nil }); err != nil {
		t.Fatalf("Replay on empty log: %v", err)
	}
}
