package reliable

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEnvelopeCodecRoundTrip(t *testing.T) {
	f := func(source, topic string, seqRaw uint32, payload []byte) bool {
		seq := uint64(seqRaw) + 1
		e := &Envelope{Source: source, Topic: topic, Seq: seq, Payload: payload}
		got, err := DecodeEnvelope(EncodeEnvelope(e))
		if err != nil {
			return false
		}
		return got.Source == source && got.Topic == topic && got.Seq == seq &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnvelopeRejectsZeroSeq(t *testing.T) {
	e := &Envelope{Source: "s", Topic: "t", Seq: 0}
	if _, err := DecodeEnvelope(EncodeEnvelope(e)); err == nil {
		t.Fatal("zero sequence accepted")
	}
}

func TestAckCodecRoundTrip(t *testing.T) {
	a := &Ack{Source: "pub", Topic: "a/b", Seq: 42}
	got, err := DecodeAck(EncodeAck(a))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *a {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := DecodeAck([]byte{1}); err == nil {
		t.Fatal("garbage ack accepted")
	}
}

func TestSequencerAssignsPerTopic(t *testing.T) {
	s := NewSequencer("pub")
	now := time.Unix(0, 0)
	a1 := s.Wrap("a", []byte("1"), now)
	a2 := s.Wrap("a", []byte("2"), now)
	b1 := s.Wrap("b", []byte("3"), now)
	if a1.Seq != 1 || a2.Seq != 2 || b1.Seq != 1 {
		t.Fatalf("seqs = %d %d %d", a1.Seq, a2.Seq, b1.Seq)
	}
	if s.Pending() != 3 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestSequencerAcknowledge(t *testing.T) {
	s := NewSequencer("pub")
	now := time.Unix(0, 0)
	env := s.Wrap("a", nil, now)
	if !s.Acknowledge("a", env.Seq) {
		t.Fatal("ack of pending returned false")
	}
	if s.Acknowledge("a", env.Seq) {
		t.Fatal("double ack returned true")
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestSequencerDueRedelivery(t *testing.T) {
	s := NewSequencer("pub")
	t0 := time.Unix(0, 0)
	s.Wrap("a", []byte("x"), t0)
	// Not yet due.
	resend, dead := s.Due(t0.Add(time.Second), 2*time.Second, 5)
	if len(resend) != 0 || len(dead) != 0 {
		t.Fatalf("premature redelivery: %d/%d", len(resend), len(dead))
	}
	// Due now.
	resend, dead = s.Due(t0.Add(3*time.Second), 2*time.Second, 5)
	if len(resend) != 1 || len(dead) != 0 {
		t.Fatalf("resend/dead = %d/%d, want 1/0", len(resend), len(dead))
	}
	// Immediately after a resend it is not due again.
	resend, _ = s.Due(t0.Add(3*time.Second+time.Millisecond), 2*time.Second, 5)
	if len(resend) != 0 {
		t.Fatal("resent twice within the interval")
	}
}

func TestSequencerDeadLetters(t *testing.T) {
	s := NewSequencer("pub")
	t0 := time.Unix(0, 0)
	s.Wrap("a", []byte("x"), t0)
	deadTotal := 0
	now := t0
	for i := 0; i < 10 && deadTotal == 0; i++ {
		now = now.Add(time.Minute)
		_, dead := s.Due(now, time.Second, 3)
		deadTotal += len(dead)
	}
	if deadTotal != 1 {
		t.Fatalf("dead letters = %d, want 1", deadTotal)
	}
	if s.Pending() != 0 {
		t.Fatal("dead-lettered event still pending")
	}
}

func TestReordererInOrder(t *testing.T) {
	r := NewReorderer()
	for seq := uint64(1); seq <= 5; seq++ {
		out := r.Offer(&Envelope{Source: "p", Topic: "t", Seq: seq})
		if len(out) != 1 || out[0].Seq != seq {
			t.Fatalf("seq %d: out = %v", seq, out)
		}
	}
}

func TestReordererGapAndRelease(t *testing.T) {
	r := NewReorderer()
	if out := r.Offer(&Envelope{Source: "p", Topic: "t", Seq: 2}); out != nil {
		t.Fatalf("gap released early: %v", out)
	}
	if out := r.Offer(&Envelope{Source: "p", Topic: "t", Seq: 3}); out != nil {
		t.Fatalf("gap released early: %v", out)
	}
	if r.Buffered() != 2 {
		t.Fatalf("buffered = %d", r.Buffered())
	}
	out := r.Offer(&Envelope{Source: "p", Topic: "t", Seq: 1})
	if len(out) != 3 || out[0].Seq != 1 || out[2].Seq != 3 {
		t.Fatalf("release = %v", out)
	}
	if r.Buffered() != 0 {
		t.Fatalf("buffered = %d after release", r.Buffered())
	}
}

func TestReordererDuplicates(t *testing.T) {
	r := NewReorderer()
	r.Offer(&Envelope{Source: "p", Topic: "t", Seq: 1})
	if out := r.Offer(&Envelope{Source: "p", Topic: "t", Seq: 1}); out != nil {
		t.Fatal("released duplicate")
	}
	r.Offer(&Envelope{Source: "p", Topic: "t", Seq: 3})
	if out := r.Offer(&Envelope{Source: "p", Topic: "t", Seq: 3}); out != nil {
		t.Fatal("released buffered duplicate")
	}
}

func TestReordererIndependentStreams(t *testing.T) {
	r := NewReorderer()
	if out := r.Offer(&Envelope{Source: "a", Topic: "t", Seq: 1}); len(out) != 1 {
		t.Fatal("stream a blocked")
	}
	if out := r.Offer(&Envelope{Source: "b", Topic: "t", Seq: 1}); len(out) != 1 {
		t.Fatal("stream b blocked by stream a")
	}
	if out := r.Offer(&Envelope{Source: "a", Topic: "u", Seq: 1}); len(out) != 1 {
		t.Fatal("topic u blocked by topic t")
	}
}

// TestReordererRandomPermutation: any permutation of 1..n must come out as
// exactly 1..n in order.
func TestReordererRandomPermutation(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := rng.Intn(40) + 1
		perm := rng.Perm(n)
		r := NewReorderer()
		var released []uint64
		for _, idx := range perm {
			seq := uint64(idx) + 1
			for _, env := range r.Offer(&Envelope{Source: "p", Topic: "t", Seq: seq,
				Payload: []byte(fmt.Sprintf("%d", seq))}) {
				released = append(released, env.Seq)
			}
		}
		if len(released) != n {
			t.Fatalf("trial %d: released %d of %d", trial, len(released), n)
		}
		for i, seq := range released {
			if seq != uint64(i)+1 {
				t.Fatalf("trial %d: position %d has seq %d", trial, i, seq)
			}
		}
	}
}

func BenchmarkSequencerWrapAck(b *testing.B) {
	s := NewSequencer("pub")
	now := time.Unix(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := s.Wrap("topic", nil, now)
		s.Acknowledge("topic", env.Seq)
	}
}

func BenchmarkReordererInOrder(b *testing.B) {
	r := NewReorderer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Offer(&Envelope{Source: "p", Topic: "t", Seq: uint64(i) + 1})
	}
}
