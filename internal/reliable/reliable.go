// Package reliable implements the NaradaBrokering reliable-delivery service
// the paper cites among the substrate's capabilities (reference [5], "A
// Scheme for Reliable Delivery of Events in Distributed Middleware
// Systems"): publishers assign per-topic sequence numbers and retain events
// until subscribers acknowledge them over the substrate itself; subscribers
// de-duplicate, re-order and acknowledge — so events survive transient
// subscriber disconnects and message loss.
package reliable

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"narada/internal/wire"
)

// AckTopicPrefix is where acknowledgements travel: one topic per publisher
// source, so a publisher subscribes to exactly its own ack stream.
const AckTopicPrefix = "Services/Reliable/Ack"

// AckTopic returns the acknowledgement topic for a publisher source.
func AckTopic(source string) string { return AckTopicPrefix + "/" + source }

// Envelope wraps an application payload with reliable-delivery metadata.
type Envelope struct {
	Source  string // publisher identity
	Topic   string // application topic
	Seq     uint64 // 1-based per (source, topic) sequence number
	Payload []byte
}

// EncodeEnvelope serialises an envelope.
func EncodeEnvelope(e *Envelope) []byte {
	w := wire.NewWriter(32 + len(e.Payload))
	w.String(e.Source)
	w.String(e.Topic)
	w.Uvarint(e.Seq)
	w.BytesField(e.Payload)
	return w.Bytes()
}

// DecodeEnvelope parses an envelope.
func DecodeEnvelope(b []byte) (*Envelope, error) {
	r := wire.NewReader(b)
	e := &Envelope{
		Source:  r.String(),
		Topic:   r.String(),
		Seq:     r.Uvarint(),
		Payload: r.BytesField(),
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("reliable: envelope: %w", err)
	}
	if e.Seq == 0 {
		return nil, errors.New("reliable: envelope: zero sequence")
	}
	return e, nil
}

// Ack acknowledges one delivered envelope.
type Ack struct {
	Source string
	Topic  string
	Seq    uint64
}

// EncodeAck serialises an acknowledgement.
func EncodeAck(a *Ack) []byte {
	w := wire.NewWriter(32)
	w.String(a.Source)
	w.String(a.Topic)
	w.Uvarint(a.Seq)
	return w.Bytes()
}

// DecodeAck parses an acknowledgement.
func DecodeAck(b []byte) (*Ack, error) {
	r := wire.NewReader(b)
	a := &Ack{Source: r.String(), Topic: r.String(), Seq: r.Uvarint()}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("reliable: ack: %w", err)
	}
	return a, nil
}

// Sequencer assigns per-topic sequence numbers and tracks unacknowledged
// events for redelivery. It is transport-agnostic: the owner feeds acks in
// and asks which envelopes are due for retransmission.
type Sequencer struct {
	source string

	mu      sync.Mutex
	nextSeq map[string]uint64 // topic -> next sequence to assign
	pending map[pendingKey]*pendingEvent
}

type pendingKey struct {
	topic string
	seq   uint64
}

type pendingEvent struct {
	env      *Envelope
	lastSent time.Time
	attempts int
}

// NewSequencer creates a publisher-side sequencer.
func NewSequencer(source string) *Sequencer {
	return &Sequencer{
		source:  source,
		nextSeq: make(map[string]uint64),
		pending: make(map[pendingKey]*pendingEvent),
	}
}

// Wrap assigns the next sequence number for the topic and records the
// envelope as pending (sent at now).
func (s *Sequencer) Wrap(topic string, payload []byte, now time.Time) *Envelope {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSeq[topic]++
	env := &Envelope{
		Source:  s.source,
		Topic:   topic,
		Seq:     s.nextSeq[topic],
		Payload: append([]byte(nil), payload...),
	}
	s.pending[pendingKey{topic, env.Seq}] = &pendingEvent{
		env: env, lastSent: now, attempts: 1,
	}
	return env
}

// Acknowledge clears a pending envelope; it reports whether it was pending.
func (s *Sequencer) Acknowledge(topic string, seq uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := pendingKey{topic, seq}
	if _, ok := s.pending[k]; !ok {
		return false
	}
	delete(s.pending, k)
	return true
}

// Due returns envelopes unacknowledged for at least the redelivery interval,
// stamping them as resent at now. Envelopes exceeding maxAttempts are
// dropped and returned in the second slice (dead letters).
func (s *Sequencer) Due(now time.Time, redeliverAfter time.Duration, maxAttempts int) (resend, dead []*Envelope) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, p := range s.pending {
		if now.Sub(p.lastSent) < redeliverAfter {
			continue
		}
		if maxAttempts > 0 && p.attempts >= maxAttempts {
			dead = append(dead, p.env)
			delete(s.pending, k)
			continue
		}
		p.attempts++
		p.lastSent = now
		resend = append(resend, p.env)
	}
	return resend, dead
}

// Pending returns the number of unacknowledged envelopes.
func (s *Sequencer) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Reorderer is the subscriber side: it de-duplicates envelopes and releases
// them strictly in sequence order per (source, topic), buffering gaps.
type Reorderer struct {
	mu        sync.Mutex
	delivered map[streamKey]uint64               // highest contiguous seq released
	buffered  map[streamKey]map[uint64]*Envelope // out-of-order stash
}

type streamKey struct {
	source string
	topic  string
}

// NewReorderer creates a subscriber-side reorderer.
func NewReorderer() *Reorderer {
	return &Reorderer{
		delivered: make(map[streamKey]uint64),
		buffered:  make(map[streamKey]map[uint64]*Envelope),
	}
}

// Offer feeds one received envelope and returns every envelope now
// releasable in order (possibly none for duplicates or gaps).
func (r *Reorderer) Offer(env *Envelope) []*Envelope {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := streamKey{env.Source, env.Topic}
	high := r.delivered[k]
	if env.Seq <= high {
		return nil // duplicate of something already released
	}
	stash, ok := r.buffered[k]
	if !ok {
		stash = make(map[uint64]*Envelope)
		r.buffered[k] = stash
	}
	if _, dup := stash[env.Seq]; dup {
		return nil
	}
	stash[env.Seq] = env

	var out []*Envelope
	for {
		next, ok := stash[high+1]
		if !ok {
			break
		}
		delete(stash, high+1)
		high++
		out = append(out, next)
	}
	r.delivered[k] = high
	if len(stash) == 0 {
		delete(r.buffered, k)
	}
	return out
}

// Buffered returns the number of out-of-order envelopes held back.
func (r *Reorderer) Buffered() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, stash := range r.buffered {
		n += len(stash)
	}
	return n
}
