package reliable

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"narada/internal/broker"
	"narada/internal/metrics"
	"narada/internal/ntptime"
	"narada/internal/simnet"
	"narada/internal/transport"
)

// session spins up one broker on the simulated WAN plus publisher and
// subscriber clients.
type session struct {
	net *simnet.Network
	b   *broker.Broker
	pub *Publisher
	sub *Subscriber
}

func newSession(t *testing.T, seed int64) *session {
	t.Helper()
	net := simnet.NewPaperWAN(simnet.Config{Scale: 300, Seed: seed})
	rng := rand.New(rand.NewSource(seed))

	mkNode := func(host string) (*transport.SimNode, *ntptime.Service) {
		skew := net.RandomSkew(20 * time.Millisecond)
		node := transport.NewSimNode(net, simnet.SiteIndianapolis, host, skew)
		ntp := ntptime.NewService(node.Clock(), skew, rng)
		ntp.InitImmediately()
		return node, ntp
	}

	bNode, bNtp := mkNode("broker")
	b, err := broker.New(bNode, bNtp, broker.Config{
		LogicalAddress: "broker",
		Sampler:        metrics.NewStaticSampler(metrics.Usage{TotalMemBytes: 1 << 29}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)

	pubNode, _ := mkNode("pub")
	pubClient, err := broker.Connect(pubNode, b.StreamAddr(), "pub")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pubClient.Close)
	pub, err := NewPublisher(pubNode, pubClient, PublisherConfig{
		Source:         "pub",
		RedeliverAfter: 300 * time.Millisecond,
		MaxAttempts:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pub.Close)

	subNode, _ := mkNode("sub")
	subClient, err := broker.Connect(subNode, b.StreamAddr(), "sub")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(subClient.Close)
	sub := NewSubscriber(subClient)
	t.Cleanup(sub.Close)

	return &session{net: net, b: b, pub: pub, sub: sub}
}

func TestReliableEndToEnd(t *testing.T) {
	s := newSession(t, 1)
	if err := s.sub.Subscribe("data/**"); err != nil {
		t.Fatal(err)
	}
	s.net.Clock().Sleep(100 * time.Millisecond)

	const n = 10
	for i := 0; i < n; i++ {
		if err := s.pub.Publish("data/stream", []byte(fmt.Sprintf("msg-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		env, err := s.sub.Next(5 * time.Second)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if env.Seq != uint64(i)+1 {
			t.Fatalf("message %d has seq %d", i, env.Seq)
		}
		if string(env.Payload) != fmt.Sprintf("msg-%d", i) {
			t.Fatalf("message %d payload %q", i, env.Payload)
		}
	}
	// All events acknowledged eventually.
	deadline := time.Now().Add(5 * time.Second)
	for s.pub.Pending() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if p := s.pub.Pending(); p != 0 {
		t.Fatalf("pending = %d after delivery", p)
	}
}

func TestRedeliveryAfterLateSubscribe(t *testing.T) {
	// Publish before the subscriber exists: the first delivery is lost
	// (nobody matched), and redelivery must hand it to the late subscriber.
	s := newSession(t, 2)
	if err := s.pub.Publish("late/topic", []byte("persistent")); err != nil {
		t.Fatal(err)
	}
	s.net.Clock().Sleep(50 * time.Millisecond)

	if err := s.sub.Subscribe("late/topic"); err != nil {
		t.Fatal(err)
	}
	env, err := s.sub.Next(10 * time.Second)
	if err != nil {
		t.Fatalf("redelivery never arrived: %v", err)
	}
	if string(env.Payload) != "persistent" {
		t.Fatalf("payload = %q", env.Payload)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.pub.Pending() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s.pub.Pending() != 0 {
		t.Fatal("event still pending after redelivered ack")
	}
}

func TestSubscriberSeesNoDuplicatesUnderRedelivery(t *testing.T) {
	// Slow ack path: force at least one redelivery and verify exactly-once
	// release at the subscriber.
	s := newSession(t, 3)
	if err := s.sub.Subscribe("dup/check"); err != nil {
		t.Fatal(err)
	}
	s.net.Clock().Sleep(100 * time.Millisecond)

	const n = 5
	for i := 0; i < n; i++ {
		if err := s.pub.Publish("dup/check", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[uint64]int)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		env, err := s.sub.Next(300 * time.Millisecond)
		if err != nil {
			continue
		}
		seen[env.Seq]++
	}
	if len(seen) != n {
		t.Fatalf("saw %d distinct messages, want %d", len(seen), n)
	}
	for seq, count := range seen {
		if count != 1 {
			t.Fatalf("seq %d released %d times", seq, count)
		}
	}
}

func TestDeadLetterSurfacing(t *testing.T) {
	// No subscriber ever: the event exhausts its attempts and dead-letters.
	s := newSession(t, 4)
	if err := s.pub.Publish("void/topic", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	// MaxAttempts=10 at 300ms redelivery → dead within ~3.3s model time,
	// which at scale 300 is milliseconds of wall time.
	select {
	case env := <-s.pub.DeadLetters():
		if string(env.Payload) != "doomed" {
			t.Fatalf("dead letter payload %q", env.Payload)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("dead letter never surfaced")
	}
	if s.pub.Pending() != 0 {
		t.Fatal("dead-lettered event still pending")
	}
}
