package reliable

import (
	"sync"
	"time"

	"narada/internal/broker"
	"narada/internal/event"
	"narada/internal/ntptime"
	"narada/internal/transport"
)

// Publisher publishes reliably through a broker client: every event carries
// a sequence number, unacknowledged events are redelivered, and events that
// exhaust their attempts surface on the DeadLetters channel.
type Publisher struct {
	client *broker.Client
	clock  ntptime.Clock
	seq    *Sequencer

	redeliverAfter time.Duration
	maxAttempts    int

	deadLetters chan *Envelope
	closed      chan struct{}
	once        sync.Once
	wg          sync.WaitGroup
}

// PublisherConfig parameterises a reliable publisher.
type PublisherConfig struct {
	// Source is the publisher's identity (ack routing key).
	Source string
	// RedeliverAfter is the unacknowledged-event retransmission interval
	// (<= 0 means 2 s).
	RedeliverAfter time.Duration
	// MaxAttempts bounds deliveries per event before dead-lettering
	// (<= 0 means 5).
	MaxAttempts int
}

// NewPublisher wraps an existing broker client. The client must remain
// dedicated to this publisher (its event stream is consumed here).
func NewPublisher(node transport.Node, client *broker.Client, cfg PublisherConfig) (*Publisher, error) {
	if cfg.RedeliverAfter <= 0 {
		cfg.RedeliverAfter = 2 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	p := &Publisher{
		client:         client,
		clock:          node.Clock(),
		seq:            NewSequencer(cfg.Source),
		redeliverAfter: cfg.RedeliverAfter,
		maxAttempts:    cfg.MaxAttempts,
		deadLetters:    make(chan *Envelope, 64),
		closed:         make(chan struct{}),
	}
	if err := client.Subscribe(AckTopic(cfg.Source)); err != nil {
		return nil, err
	}
	p.wg.Add(2)
	go p.ackLoop()
	go p.redeliverLoop()
	return p, nil
}

// Publish sends one payload reliably on the topic.
func (p *Publisher) Publish(topic string, payload []byte) error {
	env := p.seq.Wrap(topic, payload, p.clock.Now())
	return p.client.Publish(topic, EncodeEnvelope(env))
}

// Pending returns the number of unacknowledged events.
func (p *Publisher) Pending() int { return p.seq.Pending() }

// DeadLetters delivers events that exhausted their redelivery attempts.
func (p *Publisher) DeadLetters() <-chan *Envelope { return p.deadLetters }

// Close stops redelivery; the underlying client is left open for the caller.
func (p *Publisher) Close() {
	p.once.Do(func() { close(p.closed) })
	p.wg.Wait()
}

func (p *Publisher) ackLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.closed:
			return
		default:
		}
		ev, err := p.client.Next(500 * time.Millisecond)
		if err != nil {
			if err == broker.ErrClientClosed {
				return
			}
			continue
		}
		if ev.Type != event.TypePublish {
			continue
		}
		ack, err := DecodeAck(ev.Payload)
		if err != nil {
			continue
		}
		p.seq.Acknowledge(ack.Topic, ack.Seq)
	}
}

func (p *Publisher) redeliverLoop() {
	defer p.wg.Done()
	tick := p.redeliverAfter / 2
	if tick <= 0 {
		tick = time.Second
	}
	for {
		select {
		case <-p.closed:
			return
		case <-p.clock.After(tick):
		}
		resend, dead := p.seq.Due(p.clock.Now(), p.redeliverAfter, p.maxAttempts)
		for _, env := range resend {
			_ = p.client.Publish(env.Topic, EncodeEnvelope(env))
		}
		for _, env := range dead {
			select {
			case p.deadLetters <- env:
			default:
			}
		}
	}
}

// Subscriber consumes reliable streams through a broker client: it
// acknowledges every envelope, suppresses duplicates and releases payloads
// in per-stream sequence order.
type Subscriber struct {
	client  *broker.Client
	reorder *Reorderer

	out    chan *Envelope
	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

// NewSubscriber wraps a broker client already subscribed (or about to be
// subscribed) to the application topics.
func NewSubscriber(client *broker.Client) *Subscriber {
	s := &Subscriber{
		client:  client,
		reorder: NewReorderer(),
		out:     make(chan *Envelope, 256),
		closed:  make(chan struct{}),
	}
	s.wg.Add(1)
	go s.recvLoop()
	return s
}

// Subscribe registers an application topic pattern.
func (s *Subscriber) Subscribe(pattern string) error { return s.client.Subscribe(pattern) }

// Next returns the next in-order envelope, or an error after the timeout.
func (s *Subscriber) Next(timeout time.Duration) (*Envelope, error) {
	select {
	case env, ok := <-s.out:
		if !ok {
			return nil, broker.ErrClientClosed
		}
		return env, nil
	case <-time.After(timeout):
		return nil, transport.ErrTimeout
	}
}

// Close stops the subscriber; the underlying client is left open.
func (s *Subscriber) Close() {
	s.once.Do(func() { close(s.closed) })
	s.wg.Wait()
}

func (s *Subscriber) recvLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.closed:
			return
		default:
		}
		ev, err := s.client.Next(500 * time.Millisecond)
		if err != nil {
			if err == broker.ErrClientClosed {
				close(s.out)
				return
			}
			continue
		}
		if ev.Type != event.TypePublish {
			continue
		}
		env, err := DecodeEnvelope(ev.Payload)
		if err != nil {
			continue
		}
		// Acknowledge every copy received (redeliveries re-ack so the
		// publisher converges even when the first ack was lost).
		ack := &Ack{Source: env.Source, Topic: env.Topic, Seq: env.Seq}
		_ = s.client.Publish(AckTopic(env.Source), EncodeAck(ack))
		for _, release := range s.reorder.Offer(env) {
			select {
			case s.out <- release:
			case <-s.closed:
				return
			}
		}
	}
}
