package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestHDRExactSmallValues: values below the sub-bucket count resolve exactly,
// so quantiles over them are exact order statistics (upper-bound convention).
func TestHDRExactSmallValues(t *testing.T) {
	h := NewHDR()
	for v := int64(1); v <= 20; v++ {
		h.Record(v)
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0, 1}, {0.05, 1}, {0.5, 10}, {0.95, 19}, {1, 20},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if h.Count() != 20 || h.Min() != 1 || h.Max() != 20 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	if got := h.Mean(); got != 10.5 {
		t.Fatalf("Mean() = %v, want 10.5", got)
	}
}

// TestHDRRelativeError: for a wide random distribution every reported
// quantile must land within one sub-bucket (1/32) of the true order
// statistic. This is the histogram's advertised accuracy contract.
func TestHDRRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHDR()
	xs := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over [1µs, 10s] in nanoseconds — a latency-like spread.
		v := int64(math.Exp(rng.Float64()*math.Log(1e10/1e3)) * 1e3)
		xs = append(xs, v)
		h.Record(v)
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
		rank := int(q * float64(len(xs)))
		if rank < 1 {
			rank = 1
		}
		exact := xs[rank-1]
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("Quantile(%v) = %d below exact %d (upper-bound convention broken)", q, got, exact)
		}
		if float64(got-exact) > float64(exact)/32+1 {
			t.Errorf("Quantile(%v) = %d, exact %d: error beyond one sub-bucket", q, got, exact)
		}
	}
}

// TestHDRMerge: merged recorders must agree with a single recorder fed the
// union of the samples.
func TestHDRMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	whole, a, b := NewHDR(), NewHDR(), NewHDR()
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1 << 40)
		whole.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(b)
	a.Merge(nil)      // must be a no-op
	a.Merge(NewHDR()) // empty merge must be a no-op
	if a.Count() != whole.Count() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged count/min/max diverge: %d/%d/%d vs %d/%d/%d",
			a.Count(), a.Min(), a.Max(), whole.Count(), whole.Min(), whole.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.99, 0.999} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("Quantile(%v): merged %d, whole %d", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

// TestHDREdges covers the empty histogram, negative clamping, extreme values
// and Reset.
func TestHDREdges(t *testing.T) {
	h := NewHDR()
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Min() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-5) // clamps to 0
	if h.Min() != 0 || h.Quantile(1) != 0 {
		t.Fatalf("negative record: min=%d q1=%d, want 0,0", h.Min(), h.Quantile(1))
	}
	huge := int64(1) << 62
	h.Record(huge)
	if h.Max() != huge {
		t.Fatalf("max = %d, want %d", h.Max(), huge)
	}
	if got := h.Quantile(1); got != huge {
		t.Fatalf("Quantile(1) = %d, want clamped max %d", got, huge)
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("Reset did not empty the histogram")
	}
}

// TestHDRBucketRoundTrip: every bucket's upper bound must map back to the
// same bucket, and bucket upper bounds must be strictly increasing.
func TestHDRBucketRoundTrip(t *testing.T) {
	last := int64(-1)
	for i := 0; i < hdrBuckets; i++ {
		u := hdrUpper(i)
		if u <= last && i > 0 {
			t.Fatalf("bucket %d upper %d not increasing past %d", i, u, last)
		}
		last = u
		if u >= 0 && hdrIndex(u) != i {
			t.Fatalf("upper(%d)=%d maps back to bucket %d", i, u, hdrIndex(u))
		}
	}
}
