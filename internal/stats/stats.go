// Package stats provides the summary statistics used throughout the paper's
// evaluation: mean, standard deviation, maximum, minimum and standard error,
// plus the outlier-trimming procedure ("the discovery process was carried out
// 120 times and the first 100 results were selected after removing outliers").
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Summary holds the five metrics reported in the paper's figures
// (Figures 3–7, 12, 13 and 14 all print this exact set of rows).
type Summary struct {
	N       int     // number of samples summarised
	Mean    float64 // arithmetic mean
	StdDev  float64 // sample standard deviation (n-1 denominator)
	Max     float64 // maximum
	Min     float64 // minimum
	Err     float64 // standard error of the mean: StdDev / sqrt(N)
	Median  float64 // 50th percentile (not in the paper tables; useful extra)
	Sum     float64 // total
	Samples []float64
}

// ErrNoSamples is returned when a summary is requested for an empty data set.
var ErrNoSamples = errors.New("stats: no samples")

// Summarize computes a Summary over xs. It does not modify xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrNoSamples
	}
	s := Summary{N: len(xs), Max: math.Inf(-1), Min: math.Inf(1)}
	for _, x := range xs {
		s.Sum += x
		if x > s.Max {
			s.Max = x
		}
		if x < s.Min {
			s.Min = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
		s.Err = s.StdDev / math.Sqrt(float64(s.N))
	}
	s.Median = Percentile(xs, 50)
	s.Samples = append([]float64(nil), xs...)
	return s, nil
}

// MustSummarize is Summarize for data known to be non-empty (test harnesses).
func MustSummarize(xs []float64) Summary {
	s, err := Summarize(xs)
	if err != nil {
		panic(err)
	}
	return s
}

// Percentile returns the p-th percentile (0–100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// TrimOutliers reproduces the paper's sample-selection procedure: from a run
// of len(xs) measurements, remove outliers and keep the first `keep` results
// in their original order. A sample is an outlier when it lies more than k
// standard deviations from the mean (the conventional choice k=2 matches the
// paper's visibly clipped maxima). If fewer than keep samples survive, all
// survivors are returned.
func TrimOutliers(xs []float64, keep int, k float64) []float64 {
	if len(xs) == 0 || keep <= 0 {
		return nil
	}
	s, _ := Summarize(xs)
	lo, hi := s.Mean-k*s.StdDev, s.Mean+k*s.StdDev
	out := make([]float64, 0, keep)
	for _, x := range xs {
		if x < lo || x > hi {
			continue
		}
		out = append(out, x)
		if len(out) == keep {
			break
		}
	}
	return out
}

// PaperSample applies the paper's exact recipe: run 120 times, remove
// outliers (k=2), keep the first 100.
func PaperSample(xs []float64) []float64 { return TrimOutliers(xs, 100, 2) }

// String renders the Summary as the metric table printed under each of the
// paper's timing figures.
func (s Summary) String() string {
	return fmt.Sprintf(
		"Mean %.2f  StdDev %.2f  Max %.2f  Min %.2f  Err %.2f  (n=%d)",
		s.Mean, s.StdDev, s.Max, s.Min, s.Err, s.N)
}

// Histogram builds a fixed-width histogram with the given number of buckets
// spanning [min, max]. It returns bucket upper bounds and counts.
func Histogram(xs []float64, buckets int) (bounds []float64, counts []int) {
	if len(xs) == 0 || buckets <= 0 {
		return nil, nil
	}
	s, _ := Summarize(xs)
	width := (s.Max - s.Min) / float64(buckets)
	if width == 0 {
		return []float64{s.Max}, []int{len(xs)}
	}
	bounds = make([]float64, buckets)
	counts = make([]int, buckets)
	for i := range bounds {
		bounds[i] = s.Min + width*float64(i+1)
	}
	for _, x := range xs {
		idx := int((x - s.Min) / width)
		if idx >= buckets {
			idx = buckets - 1
		}
		counts[idx]++
	}
	return bounds, counts
}
