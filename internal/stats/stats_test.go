package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeKnownValues(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
	if !almost(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", s.Mean)
	}
	// Sample std-dev of this classic data set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if !almost(s.StdDev, want, 1e-12) {
		t.Errorf("StdDev = %g, want %g", s.StdDev, want)
	}
	if s.Max != 9 || s.Min != 2 {
		t.Errorf("Max/Min = %g/%g, want 9/2", s.Max, s.Min)
	}
	if !almost(s.Err, want/math.Sqrt(8), 1e-12) {
		t.Errorf("Err = %g, want %g", s.Err, want/math.Sqrt(8))
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrNoSamples {
		t.Fatalf("err = %v, want ErrNoSamples", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 42 || s.StdDev != 0 || s.Err != 0 || s.Max != 42 || s.Min != 42 {
		t.Fatalf("unexpected summary for single sample: %+v", s)
	}
}

func TestSummaryInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 &&
			s.StdDev >= 0 && s.Err >= 0 && s.Err <= s.StdDev+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %g, want %g", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	_ = Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestTrimOutliersRemovesSpikes(t *testing.T) {
	xs := make([]float64, 0, 120)
	for i := 0; i < 118; i++ {
		xs = append(xs, 100+float64(i%5))
	}
	xs = append(xs, 100000, 100000) // two gross outliers
	trimmed := TrimOutliers(xs, 100, 2)
	if len(trimmed) != 100 {
		t.Fatalf("kept %d, want 100", len(trimmed))
	}
	for _, x := range trimmed {
		if x > 1000 {
			t.Fatalf("outlier %g survived trimming", x)
		}
	}
}

func TestTrimOutliersPreservesOrder(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := TrimOutliers(xs, 3, 10)
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestTrimOutliersEdgeCases(t *testing.T) {
	if got := TrimOutliers(nil, 100, 2); got != nil {
		t.Errorf("TrimOutliers(nil) = %v, want nil", got)
	}
	if got := TrimOutliers([]float64{1}, 0, 2); got != nil {
		t.Errorf("keep=0 should yield nil, got %v", got)
	}
	// Fewer survivors than keep: return all survivors.
	got := TrimOutliers([]float64{1, 2}, 100, 2)
	if len(got) != 2 {
		t.Errorf("len = %d, want 2", len(got))
	}
}

func TestPaperSample(t *testing.T) {
	xs := make([]float64, 120)
	for i := range xs {
		xs[i] = 5000 + float64(i%7)
	}
	got := PaperSample(xs)
	if len(got) != 100 {
		t.Fatalf("PaperSample kept %d, want 100", len(got))
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	bounds, counts := Histogram(xs, 5)
	if len(bounds) != 5 || len(counts) != 5 {
		t.Fatalf("got %d bounds / %d counts, want 5/5", len(bounds), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram counts sum to %d, want %d", total, len(xs))
	}
}

func TestHistogramDegenerate(t *testing.T) {
	bounds, counts := Histogram([]float64{3, 3, 3}, 4)
	if len(bounds) != 1 || counts[0] != 3 {
		t.Fatalf("degenerate histogram wrong: %v %v", bounds, counts)
	}
	if b, c := Histogram(nil, 3); b != nil || c != nil {
		t.Fatal("empty histogram should be nil, nil")
	}
}

func TestSummaryString(t *testing.T) {
	s := MustSummarize([]float64{1, 2, 3})
	if str := s.String(); str == "" {
		t.Fatal("empty String()")
	}
}

func BenchmarkSummarize(b *testing.B) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = Summarize(xs)
	}
}
