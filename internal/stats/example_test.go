package stats_test

import (
	"fmt"

	"narada/internal/stats"
)

func ExampleSummarize() {
	s, _ := stats.Summarize([]float64{480, 495, 502, 488, 515})
	fmt.Printf("mean %.1f min %.0f max %.0f\n", s.Mean, s.Min, s.Max)
	// Output: mean 496.0 min 480 max 515
}

func ExamplePaperSample() {
	// The paper's recipe: run 120 times, drop outliers, keep the first 100.
	runs := make([]float64, 120)
	for i := range runs {
		runs[i] = 500 + float64(i%9)
	}
	runs[7] = 99999 // a network hiccup
	kept := stats.PaperSample(runs)
	s, _ := stats.Summarize(kept)
	fmt.Printf("n=%d max=%.0f\n", s.N, s.Max)
	// Output: n=100 max=508
}
