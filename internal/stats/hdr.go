package stats

import "math/bits"

// HDR is a log-linear high-dynamic-range histogram in the style latency
// recorders use: each power of two is split into 32 linear sub-buckets, so
// any recorded value is resolved to within 1/32 (~3.1%) of its magnitude
// while the whole int64 range fits in a couple of kilobytes of counters.
// Values are unitless int64s; latency recorders feed it nanoseconds.
//
// HDR is not safe for concurrent use. The intended pattern is one recorder
// per producing goroutine, merged with Merge when the run quiesces.
type HDR struct {
	counts [hdrBuckets]uint64
	total  uint64
	min    int64
	max    int64
	sum    int64
}

const (
	hdrSubBits  = 5 // 32 sub-buckets per power of two
	hdrSubCount = 1 << hdrSubBits
	// Indices: values below hdrSubCount map 1:1; above, shift compresses the
	// value into [32, 64) within its power-of-two band. 58 bands cover the
	// non-negative int64 range.
	hdrBuckets = hdrSubCount * 59
)

// NewHDR returns an empty histogram.
func NewHDR() *HDR { return &HDR{min: int64(^uint64(0) >> 1)} }

// hdrIndex maps a non-negative value to its bucket.
func hdrIndex(v int64) int {
	if v < hdrSubCount {
		return int(v)
	}
	shift := bits.Len64(uint64(v)) - hdrSubBits - 1
	idx := shift*hdrSubCount + int(v>>uint(shift))
	if idx >= hdrBuckets {
		return hdrBuckets - 1
	}
	return idx
}

// hdrUpper returns the largest value a bucket can hold.
func hdrUpper(idx int) int64 {
	if idx < hdrSubCount {
		return int64(idx)
	}
	shift := idx/hdrSubCount - 1
	sub := int64(idx - shift*hdrSubCount)
	return (sub+1)<<uint(shift) - 1
}

// Record adds one observation. Negative values clamp to zero (a latency
// recorder fed by skewed clocks must not corrupt the scale).
func (h *HDR) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[hdrIndex(v)]++
	h.total++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *HDR) Count() uint64 { return h.total }

// Min returns the smallest recorded value (0 when empty).
func (h *HDR) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value (0 when empty).
func (h *HDR) Max() int64 { return h.max }

// Mean returns the arithmetic mean of the recorded values (0 when empty).
func (h *HDR) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) that is
// exact for values under 32 and within one sub-bucket (~3.1%) above. Out-of-
// range q clamps; an empty histogram reports 0.
func (h *HDR) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := hdrUpper(i)
			// The exact extremes are tracked; never report beyond them.
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Merge folds other's observations into h.
func (h *HDR) Merge(other *HDR) {
	if other == nil || other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset returns the histogram to its empty state.
func (h *HDR) Reset() {
	*h = HDR{min: int64(^uint64(0) >> 1)}
}
