// Package topology wires brokers into the broker-network shapes the paper
// evaluates — unconnected (Figure 1), star (Figure 8) and linear (Figure 10)
// — plus ring, tree, full-mesh and random graphs for wider experiments.
// Builders return the edge list they created so tests and reports can assert
// and display the wiring.
package topology

import (
	"fmt"
	"math/rand"

	"narada/internal/broker"
)

// Edge records one established broker link (From dialed To).
type Edge struct {
	From string // logical address of the dialing broker
	To   string // logical address of the accepting broker
}

// Builder creates the links of a topology over an ordered broker list.
type Builder func(brokers []*broker.Broker) ([]Edge, error)

// Name constants for the paper's topologies.
const (
	Unconnected = "unconnected"
	Star        = "star"
	Linear      = "linear"
	Ring        = "ring"
	Mesh        = "mesh"
	Tree        = "tree"
)

// ByName returns the Builder for a named topology (tree has arity 2;
// random graphs need parameters, use BuildRandom directly).
func ByName(name string) (Builder, error) {
	switch name {
	case Unconnected:
		return BuildUnconnected, nil
	case Star:
		return BuildStar, nil
	case Linear:
		return BuildLinear, nil
	case Ring:
		return BuildRing, nil
	case Mesh:
		return BuildMesh, nil
	case Tree:
		return func(bs []*broker.Broker) ([]Edge, error) { return BuildTree(bs, 2) }, nil
	default:
		return nil, fmt.Errorf("topology: unknown topology %q", name)
	}
}

func link(from, to *broker.Broker) (Edge, error) {
	if err := from.LinkTo(to.StreamAddr()); err != nil {
		return Edge{}, fmt.Errorf("topology: linking %s -> %s: %w",
			from.LogicalAddress(), to.LogicalAddress(), err)
	}
	return Edge{From: from.LogicalAddress(), To: to.LogicalAddress()}, nil
}

// BuildUnconnected establishes no links (paper Figure 1): brokers are
// reachable only through whatever registered them (the BDN's O(N) fan-out).
func BuildUnconnected([]*broker.Broker) ([]Edge, error) { return nil, nil }

// BuildStar links every broker to brokers[0], the hub (paper Figure 8).
func BuildStar(brokers []*broker.Broker) ([]Edge, error) {
	if len(brokers) < 2 {
		return nil, nil
	}
	edges := make([]Edge, 0, len(brokers)-1)
	for _, b := range brokers[1:] {
		e, err := link(b, brokers[0])
		if err != nil {
			return edges, err
		}
		edges = append(edges, e)
	}
	return edges, nil
}

// BuildLinear chains the brokers in order (paper Figure 10): "All other
// brokers are connected to each other in a linear fashion."
func BuildLinear(brokers []*broker.Broker) ([]Edge, error) {
	edges := make([]Edge, 0, len(brokers))
	for i := 1; i < len(brokers); i++ {
		e, err := link(brokers[i], brokers[i-1])
		if err != nil {
			return edges, err
		}
		edges = append(edges, e)
	}
	return edges, nil
}

// BuildRing is a linear chain closed back to the first broker.
func BuildRing(brokers []*broker.Broker) ([]Edge, error) {
	edges, err := BuildLinear(brokers)
	if err != nil {
		return edges, err
	}
	if len(brokers) > 2 {
		e, err := link(brokers[0], brokers[len(brokers)-1])
		if err != nil {
			return edges, err
		}
		edges = append(edges, e)
	}
	return edges, nil
}

// BuildMesh fully connects every broker pair.
func BuildMesh(brokers []*broker.Broker) ([]Edge, error) {
	var edges []Edge
	for i := range brokers {
		for j := i + 1; j < len(brokers); j++ {
			e, err := link(brokers[j], brokers[i])
			if err != nil {
				return edges, err
			}
			edges = append(edges, e)
		}
	}
	return edges, nil
}

// BuildTree links brokers into a complete k-ary tree rooted at brokers[0].
func BuildTree(brokers []*broker.Broker, arity int) ([]Edge, error) {
	if arity < 1 {
		return nil, fmt.Errorf("topology: tree arity %d < 1", arity)
	}
	var edges []Edge
	for i := 1; i < len(brokers); i++ {
		parent := (i - 1) / arity
		e, err := link(brokers[i], brokers[parent])
		if err != nil {
			return edges, err
		}
		edges = append(edges, e)
	}
	return edges, nil
}

// BuildRandom links each broker pair independently with probability p,
// then guarantees connectivity by chaining any isolated components onto the
// first broker. Deterministic for a given seed.
func BuildRandom(brokers []*broker.Broker, p float64, seed int64) ([]Edge, error) {
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	adj := make(map[int][]int)
	for i := range brokers {
		for j := i + 1; j < len(brokers); j++ {
			if rng.Float64() >= p {
				continue
			}
			e, err := link(brokers[j], brokers[i])
			if err != nil {
				return edges, err
			}
			edges = append(edges, e)
			adj[i] = append(adj[i], j)
			adj[j] = append(adj[j], i)
		}
	}
	// Connect stragglers: BFS from 0, attach unreachable nodes to node 0.
	if len(brokers) > 1 {
		seen := map[int]bool{0: true}
		queue := []int{0}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, m := range adj[n] {
				if !seen[m] {
					seen[m] = true
					queue = append(queue, m)
				}
			}
		}
		for i := 1; i < len(brokers); i++ {
			if seen[i] {
				continue
			}
			e, err := link(brokers[i], brokers[0])
			if err != nil {
				return edges, err
			}
			edges = append(edges, e)
			seen[i] = true
		}
	}
	return edges, nil
}

// Diameter returns the hop-count diameter of the edge list over n nodes
// indexed by logical address; unreachable pairs yield -1.
func Diameter(n int, edges []Edge, indexOf func(logical string) int) int {
	adj := make([][]int, n)
	for _, e := range edges {
		a, b := indexOf(e.From), indexOf(e.To)
		if a < 0 || b < 0 {
			continue
		}
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	diameter := 0
	for s := 0; s < n; s++ {
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > diameter {
				diameter = d
			}
		}
	}
	return diameter
}
