package topology

import (
	"math/rand"
	"testing"
	"time"

	"narada/internal/broker"
	"narada/internal/metrics"
	"narada/internal/ntptime"
	"narada/internal/simnet"
	"narada/internal/transport"
)

func makeBrokers(t *testing.T, n int, seed int64) []*broker.Broker {
	t.Helper()
	net := simnet.NewPaperWAN(simnet.Config{Scale: 300, Seed: seed})
	sites := simnet.PaperSiteNames()
	rng := rand.New(rand.NewSource(seed))
	out := make([]*broker.Broker, n)
	for i := 0; i < n; i++ {
		site := sites[1+(i%(len(sites)-1))]
		skew := net.RandomSkew(20 * time.Millisecond)
		node := transport.NewSimNode(net, site, nodeName(i), skew)
		ntp := ntptime.NewService(node.Clock(), skew, rng)
		ntp.InitImmediately()
		b, err := broker.New(node, ntp, broker.Config{
			LogicalAddress: nodeName(i),
			Realm:          site,
			Sampler:        metrics.NewStaticSampler(metrics.Usage{TotalMemBytes: 1 << 29}),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(b.Close)
		out[i] = b
	}
	return out
}

func nodeName(i int) string {
	return string(rune('A'+i)) + "-broker"
}

func settle(bs []*broker.Broker) {
	// Links register asynchronously on the accept side.
	time.Sleep(50 * time.Millisecond)
	_ = bs
}

func indexOf(bs []*broker.Broker) func(string) int {
	return func(logical string) int {
		for i, b := range bs {
			if b.LogicalAddress() == logical {
				return i
			}
		}
		return -1
	}
}

func TestUnconnectedNoEdges(t *testing.T) {
	bs := makeBrokers(t, 4, 1)
	edges, err := BuildUnconnected(bs)
	if err != nil || edges != nil {
		t.Fatalf("edges=%v err=%v", edges, err)
	}
	for _, b := range bs {
		if b.LinkCount() != 0 {
			t.Fatalf("%s has %d links", b.LogicalAddress(), b.LinkCount())
		}
	}
}

func TestStarShape(t *testing.T) {
	bs := makeBrokers(t, 5, 2)
	edges, err := BuildStar(bs)
	if err != nil {
		t.Fatal(err)
	}
	settle(bs)
	if len(edges) != 4 {
		t.Fatalf("edges = %d", len(edges))
	}
	if bs[0].LinkCount() != 4 {
		t.Fatalf("hub links = %d, want 4", bs[0].LinkCount())
	}
	for _, b := range bs[1:] {
		if b.LinkCount() != 1 {
			t.Fatalf("spoke %s links = %d, want 1", b.LogicalAddress(), b.LinkCount())
		}
	}
	if d := Diameter(len(bs), edges, indexOf(bs)); d != 2 {
		t.Fatalf("star diameter = %d, want 2", d)
	}
}

func TestLinearShape(t *testing.T) {
	bs := makeBrokers(t, 5, 3)
	edges, err := BuildLinear(bs)
	if err != nil {
		t.Fatal(err)
	}
	settle(bs)
	if len(edges) != 4 {
		t.Fatalf("edges = %d", len(edges))
	}
	if bs[0].LinkCount() != 1 || bs[4].LinkCount() != 1 {
		t.Fatal("chain ends should have 1 link")
	}
	for _, b := range bs[1:4] {
		if b.LinkCount() != 2 {
			t.Fatalf("middle %s links = %d, want 2", b.LogicalAddress(), b.LinkCount())
		}
	}
	if d := Diameter(len(bs), edges, indexOf(bs)); d != 4 {
		t.Fatalf("chain diameter = %d, want 4", d)
	}
}

func TestRingShape(t *testing.T) {
	bs := makeBrokers(t, 5, 4)
	edges, err := BuildRing(bs)
	if err != nil {
		t.Fatal(err)
	}
	settle(bs)
	if len(edges) != 5 {
		t.Fatalf("edges = %d", len(edges))
	}
	for _, b := range bs {
		if b.LinkCount() != 2 {
			t.Fatalf("%s links = %d, want 2", b.LogicalAddress(), b.LinkCount())
		}
	}
	if d := Diameter(len(bs), edges, indexOf(bs)); d != 2 {
		t.Fatalf("5-ring diameter = %d, want 2", d)
	}
}

func TestMeshShape(t *testing.T) {
	bs := makeBrokers(t, 4, 5)
	edges, err := BuildMesh(bs)
	if err != nil {
		t.Fatal(err)
	}
	settle(bs)
	if len(edges) != 6 {
		t.Fatalf("edges = %d, want 6", len(edges))
	}
	if d := Diameter(len(bs), edges, indexOf(bs)); d != 1 {
		t.Fatalf("mesh diameter = %d, want 1", d)
	}
}

func TestTreeShape(t *testing.T) {
	bs := makeBrokers(t, 6, 6)
	edges, err := BuildTree(bs, 2)
	if err != nil {
		t.Fatal(err)
	}
	settle(bs)
	if len(edges) != 5 {
		t.Fatalf("edges = %d, want 5", len(edges))
	}
	if _, err := BuildTree(bs, 0); err == nil {
		t.Fatal("arity 0 accepted")
	}
}

func TestRandomConnected(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		bs := makeBrokers(t, 6, 100+seed)
		edges, err := BuildRandom(bs, 0.3, seed)
		if err != nil {
			t.Fatal(err)
		}
		if d := Diameter(len(bs), edges, indexOf(bs)); d < 0 {
			t.Fatalf("seed %d: random graph disconnected", seed)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{Unconnected, Star, Linear, Ring, Mesh, Tree} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("torus"); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestDiameterDisconnected(t *testing.T) {
	if d := Diameter(3, nil, func(string) int { return -1 }); d != -1 {
		t.Fatalf("Diameter of edgeless graph = %d, want -1", d)
	}
}
