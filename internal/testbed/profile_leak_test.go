package testbed

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"narada/internal/metrics"
	"narada/internal/obs"
	"narada/internal/obs/collect"
	"narada/internal/obs/collect/health"
	"narada/internal/obs/profile"
	"narada/internal/simnet"
	"narada/internal/topology"
)

// leakCollector is healthCollector plus the profile plane: a short
// goroutine-leak window matched to the fast retention tiers, an aggressive
// pull cadence and a 1s flight CPU capture so the whole story fits in a test.
func leakCollector(t *testing.T) *collect.Collector {
	t.Helper()
	col, err := collect.New(collect.Config{
		Listen: "127.0.0.1:0",
		Resolutions: []collect.Resolution{
			{Step: 100 * time.Millisecond, Slots: 100},
			{Step: 300 * time.Millisecond, Slots: 50},
		},
		Health: &health.Config{
			ExportInterval:      100 * time.Millisecond,
			DeadmanIntervals:    5,
			GoroutineLeakWindow: 3 * time.Second,
		},
		HealthInterval:      20 * time.Millisecond,
		ProfilePullInterval: 250 * time.Millisecond,
		FlightCPUSeconds:    1,
	})
	if err != nil {
		t.Fatalf("collector: %v", err)
	}
	t.Cleanup(func() { _ = col.Close() })
	return col
}

// TestGoroutineLeakFlightRecorder injects a goroutine leak into a testbed
// broker and follows it end to end: the leaking gauge ships over the real
// export wire, the collector's goroutine_leak rule fires, the flight recorder
// pulls pprof captures from the node's announced (real, loopback) telemetry
// endpoint, and the /alerts view links the captured profiles. The node's
// periodic captures must also have been drained into the collector store by
// the pull loop along the way.
func TestGoroutineLeakFlightRecorder(t *testing.T) {
	col := leakCollector(t)
	tb, err := New(Options{
		Scale:    50,
		Seed:     42,
		NoBDN:    true,
		Topology: topology.Linear,
		Brokers: []BrokerSpec{
			{Site: simnet.SiteIndianapolis, Name: "broker-leaky",
				Usage: metrics.Usage{TotalMemBytes: 512 * mib, UsedMemBytes: 64 * mib}},
			{Site: simnet.SiteUMN, Name: "broker-quiet",
				Usage: metrics.Usage{TotalMemBytes: 512 * mib, UsedMemBytes: 64 * mib}},
		},
		ExportAddr:     col.Addr(),
		ExportInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("testbed: %v", err)
	}
	t.Cleanup(tb.Close)
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	// The leaky broker gets a REAL telemetry endpoint on loopback: its
	// private testbed registry plus a periodically-capturing profiler,
	// announced to the collector over the node's own export stream — the
	// same wiring cmd/broker uses, just with the HTTP side outside simnet.
	reg, ok := tb.BrokerRegistry("broker-leaky")
	if !ok {
		t.Fatal("no registry for broker-leaky")
	}
	prof := profile.New(profile.Config{Interval: 500 * time.Millisecond})
	prof.Start()
	defer prof.Close()
	tsrv, err := obs.ServeWith("127.0.0.1:0", reg, nil, prof.Mount())
	if err != nil {
		t.Fatalf("telemetry: %v", err)
	}
	defer func() { _ = tsrv.Close() }()
	exp, ok := tb.Exporter("broker-leaky")
	if !ok {
		t.Fatal("no exporter for broker-leaky")
	}
	exp.AnnounceTelemetry(tsrv.Addr(), true)

	// Inject the leak: the testbed shares one OS process, so the per-node
	// goroutine count is a synthetic gauge — steady baseline long enough to
	// land in several retention slots, then unbounded growth.
	goroutines := reg.Gauge("narada_process_goroutines", "Live goroutines.",
		obs.L("node", "broker-leaky"))
	goroutines.Set(120)
	time.Sleep(700 * time.Millisecond)
	stopLeak := make(chan struct{})
	defer close(stopLeak)
	go func() {
		v := 1000.0
		ticker := time.NewTicker(100 * time.Millisecond)
		defer ticker.Stop()
		for {
			goroutines.Set(v)
			v += 60
			select {
			case <-ticker.C:
			case <-stopLeak:
				return
			}
		}
	}()

	a := awaitAlertState(t, srv.URL, health.RuleGoroutineLeak, "broker-leaky",
		health.StateFiring, 10*time.Second)
	if a.Value <= 500 {
		t.Fatalf("goroutine_leak growth = %v, want > 500", a.Value)
	}
	// The quiet broker exports no goroutine gauge and must stay clean.
	for _, al := range fetchAlerts(t, srv.URL).Alerts {
		if al.Rule == health.RuleGoroutineLeak && al.Node != "broker-leaky" {
			t.Fatalf("unexpected goroutine_leak on %s: %+v", al.Node, al)
		}
	}

	// The flight recorder captures asynchronously (its CPU pull samples for
	// a full second); poll until the alert links a flight capture.
	var flight collect.ProfileRef
	deadline := time.Now().Add(15 * time.Second)
	for flight.ID == "" {
		for _, al := range fetchAlerts(t, srv.URL).Alerts {
			if al.Rule != health.RuleGoroutineLeak || al.Node != "broker-leaky" {
				continue
			}
			for _, ref := range al.Profiles {
				if ref.Trigger == "flight:"+health.RuleGoroutineLeak && ref.Kind == "goroutine" {
					flight = ref
				}
			}
		}
		if flight.ID != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("alert never linked a flight-recorded profile")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The linked capture is a real goroutine dump of the telemetry process,
	// downloadable from the collector by the URL the alert carries.
	resp, err := http.Get(srv.URL + flight.URL)
	if err != nil {
		t.Fatalf("GET %s: %v", flight.URL, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", flight.URL, resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine profile:") {
		t.Fatalf("flight capture is not a goroutine dump: %.120q", string(body))
	}

	// And the pull loop must have drained the node's periodic captures into
	// the collector store independently of any alert.
	pullDeadline := time.Now().Add(10 * time.Second)
	for {
		if pulled := col.Profiles(collect.ProfileFilter{Node: "broker-leaky", Trigger: "periodic"}); len(pulled) > 0 {
			break
		}
		if time.Now().After(pullDeadline) {
			t.Fatal("periodic captures never pulled into the collector")
		}
		time.Sleep(50 * time.Millisecond)
	}
}
