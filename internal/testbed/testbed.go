// Package testbed assembles complete discovery deployments on the simulated
// paper WAN: a network, a BDN, a set of brokers wired into a chosen topology,
// and discovery clients — everything the experiments and integration tests
// need to rerun the paper's evaluation.
package testbed

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync/atomic"
	"time"

	"narada/internal/bdn"
	"narada/internal/bdn/replica"
	"narada/internal/broker"
	"narada/internal/core"
	"narada/internal/metrics"
	"narada/internal/ntptime"
	"narada/internal/obs"
	"narada/internal/simnet"
	"narada/internal/supervise"
	"narada/internal/topology"
	"narada/internal/transport"
	"narada/internal/wal"
)

// MulticastGroup is the discovery multicast group used across the testbed.
const MulticastGroup = "narada/discovery"

const mib = 1024 * 1024

// BrokerSpec describes one broker to deploy.
type BrokerSpec struct {
	Site       string        // simulator site
	Name       string        // logical address
	Usage      metrics.Usage // initial load profile (zero = sensible default)
	Register   bool          // register with the BDN at start-up
	Processing time.Duration // per-request handling cost
	// ClockSkew fixes this broker's hardware-clock skew instead of drawing
	// randomly within MaxSkew (0 = random) — clock-drift fault injection.
	ClockSkew time.Duration
}

// Options configures a testbed deployment.
type Options struct {
	// Scale is the model-time speed-up (default 200).
	Scale float64
	// Seed drives all randomness (default 1).
	Seed int64
	// Loss is the default inter-site datagram loss probability.
	Loss float64
	// DuplicateProb is the probability an inter-site datagram is delivered
	// twice (dedup robustness scenarios).
	DuplicateProb float64
	// Topology names the broker wiring (topology package constants).
	Topology string
	// Brokers lists the brokers to deploy; nil deploys the paper's five
	// (one per Table 1 machine), all registered.
	Brokers []BrokerSpec
	// BDNSite places the first BDN (default Bloomington, as in the paper).
	BDNSite string
	// BDNCount deploys that many BDNs (default 1): the first at BDNSite,
	// the rest spread over the other sites — the paper's
	// gridservicelocator.org/.com/.net/.info replication. Brokers register
	// with every BDN; discovery clients receive all addresses in order.
	BDNCount int
	// NoBDN deploys no BDN at all (multicast-only and cached-set scenarios).
	NoBDN bool
	// InjectPolicy selects the BDN's injection strategy. The zero value is
	// InjectAll (the unconnected-topology behaviour); connected topologies
	// usually want bdn.InjectClosestFarthest.
	InjectPolicy bdn.InjectionPolicy
	// InjectOverhead is the BDN's per-injection cost (default 40 ms).
	InjectOverhead time.Duration
	// Multicast joins every broker to the discovery multicast group.
	Multicast bool
	// BrokerProcessing is the default per-request handling cost for brokers
	// whose spec leaves Processing zero.
	BrokerProcessing time.Duration
	// Policy, when set, is the response policy installed on every broker
	// (nil leaves the open default).
	Policy *core.ResponsePolicy
	// Routing selects the broker network's dissemination mode for
	// application events (flooding by default).
	Routing broker.RoutingMode
	// Supervise, when set, makes every broker's links and BDN registrations
	// self-healing under the policy (see broker.Config.Supervise).
	Supervise *supervise.Policy
	// Heartbeat is the brokers' link keepalive interval (0 disables).
	Heartbeat time.Duration
	// AdvertiseInterval is the brokers' registration refresh period
	// (0 disables periodic re-advertisement).
	AdvertiseInterval time.Duration
	// AdvertiseTTL is the validity window brokers stamp on advertisements
	// (0 defaults to 3×AdvertiseInterval when refresh is enabled).
	AdvertiseTTL time.Duration
	// AdTTL is the BDN-side registration validity for advertisements that
	// carry no TTL of their own (0 = registrations never expire).
	AdTTL time.Duration
	// SweepInterval is the BDNs' expired-registration sweep period.
	SweepInterval time.Duration
	// BDNDataDir, when set, makes every deployed BDN durable: each gets a
	// WAL + snapshot directory under this base (per-BDN subdirectory), so
	// a RestartBDN recovers the registration table instead of starting
	// empty. Fsync is disabled — a real fsync's wall-clock cost becomes
	// whole seconds of accelerated model time.
	BDNDataDir string
	// Replicate wires the deployed BDNs into a primary/standby cluster:
	// each runs a replication agent streaming the primary's WAL, with
	// lease-based failover. Requires BDNDataDir and BDNCount > 1.
	Replicate bool
	// Lease is the replication leader lease (default 4s of model time —
	// generous, because the simulation clock leaps while goroutines do
	// real work).
	Lease time.Duration
	// MaxSkew bounds each node's hardware clock error (default 20 ms).
	MaxSkew time.Duration
	// Metrics, when set, is shared by every deployed broker, BDN and
	// discoverer — instance identity rides in metric labels.
	Metrics *obs.Registry
	// Tracer, when set, records per-request discovery traces across the
	// whole deployment (BDN injection, broker fan-out, requester phases).
	Tracer *obs.Tracer
	// ExportAddr, when set, is an obscollect UDP address: every deployed
	// component then gets its OWN registry, tracer and exporter (overriding
	// Metrics/Tracer), so the deployment behaves like separate processes
	// whose telemetry meets only at the collector.
	ExportAddr string
	// ExportInterval is the per-component metric snapshot period when
	// ExportAddr is set (default 1s; tests use a few ms).
	ExportInterval time.Duration
	// SampleEvery, when > 0, gives every broker a publish sampler tracing
	// roughly 1 in N messages originating at it (decision-at-publish; events
	// arriving over links keep the origin's verdict).
	SampleEvery uint64
}

func (o *Options) fillDefaults() {
	if o.Scale <= 0 {
		o.Scale = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Topology == "" {
		o.Topology = topology.Unconnected
	}
	if o.BDNSite == "" {
		o.BDNSite = simnet.SiteBloomington
	}
	if o.InjectOverhead == 0 {
		o.InjectOverhead = bdn.DefaultInjectOverhead
	}
	if o.BrokerProcessing == 0 {
		o.BrokerProcessing = 2 * time.Millisecond
	}
	if o.MaxSkew == 0 {
		o.MaxSkew = 20 * time.Millisecond
	}
	if o.Brokers == nil {
		o.Brokers = PaperBrokers()
	}
}

// PaperBrokers returns the five Table 1 brokers, registered, with modestly
// varied load profiles.
func PaperBrokers() []BrokerSpec {
	sites := []string{
		simnet.SiteIndianapolis, simnet.SiteUMN, simnet.SiteNCSA,
		simnet.SiteFSU, simnet.SiteCardiff,
	}
	specs := make([]BrokerSpec, len(sites))
	for i, site := range sites {
		specs[i] = BrokerSpec{
			Site: site,
			Name: fmt.Sprintf("broker-%s", site),
			Usage: metrics.Usage{
				TotalMemBytes: 512 * mib,
				UsedMemBytes:  uint64(64+32*i) * mib,
				CPULoad:       0.05 * float64(i),
			},
			Register: true,
		}
	}
	return specs
}

// Testbed is a deployed discovery environment.
type Testbed struct {
	Net     *simnet.Network
	BDN     *bdn.BDN   // the first deployed BDN (nil with NoBDN)
	BDNs    []*bdn.BDN // all deployed BDNs, first-deployed first
	Brokers []*broker.Broker
	Edges   []topology.Edge

	// replicas maps BDN name to its replication agent (Options.Replicate).
	replicas map[string]*replica.Replica

	opts      Options
	rng       *rand.Rand
	ntps      []*ntptime.Service // broker (and BDN) time services, for inspection
	ntpByName map[string]*ntptime.Service
	exporters map[string]*obs.Exporter // per-node exporters when ExportAddr is set

	// journal records testbed-level control-plane events (chaos fault
	// injection) under the node identity "testbed" when ExportAddr is set,
	// so a collector's timeline shows the faults beside their consequences.
	journal *obs.Journal

	// Deployment records let chaos schedules restart a killed component on
	// the same node with the same ports, so supervised peers find it again.
	brokerDeps map[string]*brokerDeployment
	bdnDeps    map[string]*bdnDeployment

	probeSeq int // chaos probe topic/client uniquifier
}

// brokerDeployment remembers how a broker was deployed.
type brokerDeployment struct {
	spec                BrokerSpec
	node                *transport.SimNode
	ntp                 *ntptime.Service
	cfg                 broker.Config // Metrics/Tracer re-resolved per (re)start
	streamPort, udpPort int
}

// bdnDeployment remembers how a BDN was deployed.
type bdnDeployment struct {
	node                *transport.SimNode
	ntp                 *ntptime.Service
	cfg                 bdn.Config
	streamPort, udpPort int
	// Replication wiring, recorded at first Start so a restarted member
	// rebinds the same replication port and redials the same peers.
	replicaPort  int
	replicaPeers []string
}

// New builds and starts a testbed.
func New(opts Options) (*Testbed, error) {
	opts.fillDefaults()
	net := simnet.NewPaperWAN(simnet.Config{
		Scale:         opts.Scale,
		Seed:          opts.Seed,
		DefaultLoss:   opts.Loss,
		DuplicateProb: opts.DuplicateProb,
	})
	tb := &Testbed{
		Net:        net,
		opts:       opts,
		rng:        rand.New(rand.NewSource(opts.Seed + 7)),
		ntpByName:  make(map[string]*ntptime.Service),
		exporters:  make(map[string]*obs.Exporter),
		brokerDeps: make(map[string]*brokerDeployment),
		bdnDeps:    make(map[string]*bdnDeployment),
		replicas:   make(map[string]*replica.Replica),
	}
	if opts.Replicate && opts.BDNDataDir == "" {
		return nil, fmt.Errorf("testbed: Replicate requires BDNDataDir")
	}

	if opts.ExportAddr != "" {
		// The schedule driver exports its own journal: fault injections are
		// control-plane events too. The model clock is the true timeline, so
		// no offset correction applies.
		tb.journal = obs.NewJournal(0, net.Clock().Now)
		exp, err := obs.NewExporter(obs.ExporterConfig{
			Addr:            opts.ExportAddr,
			Node:            "testbed",
			Journal:         tb.journal,
			MetricsInterval: opts.ExportInterval,
		})
		if err != nil {
			return nil, fmt.Errorf("testbed: exporter: %w", err)
		}
		tb.exporters["testbed"] = exp
	}

	// BDNs: gridservicelocator.org at the primary site, further replicas
	// (.com, .net, .info) spread across the WAN.
	if !opts.NoBDN {
		if opts.BDNCount <= 0 {
			opts.BDNCount = 1
		}
		tlds := []string{"org", "com", "net", "info"}
		sites := simnet.PaperSiteNames()
		for i := 0; i < opts.BDNCount; i++ {
			site := opts.BDNSite
			if i > 0 {
				site = sites[i%len(sites)]
			}
			node, ntp := tb.newNode(site, fmt.Sprintf("bdn%d", i))
			name := "gridservicelocator." + tlds[i%len(tlds)]
			reg, tracer, journal, err := tb.obsFor(name, ntp, nil)
			if err != nil {
				tb.Close()
				return nil, err
			}
			dcfg := bdn.Config{
				Name:           name,
				Policy:         opts.InjectPolicy,
				InjectOverhead: opts.InjectOverhead,
				AdTTL:          opts.AdTTL,
				SweepInterval:  opts.SweepInterval,
				Metrics:        reg,
				Tracer:         tracer,
				Journal:        journal,
			}
			if opts.BDNDataDir != "" {
				dcfg.DataDir = filepath.Join(opts.BDNDataDir, name)
				dcfg.Fsync = wal.SyncNever
			}
			d, err := bdn.New(node, ntp, dcfg)
			if err != nil {
				tb.Close()
				return nil, err
			}
			if err := d.Start(); err != nil {
				tb.Close()
				return nil, err
			}
			tb.BDNs = append(tb.BDNs, d)
			tb.recordBDN(name, node, ntp, dcfg, d)
		}
		tb.BDN = tb.BDNs[0]

		// Replication: bind every member's replication listener first, then
		// start them with the full peer mesh.
		if opts.Replicate {
			if err := tb.startReplicas(); err != nil {
				tb.Close()
				return nil, err
			}
		}
	}

	// Brokers.
	for i, spec := range opts.Brokers {
		proc := spec.Processing
		if proc == 0 {
			proc = opts.BrokerProcessing
		}
		usage := spec.Usage
		if usage.TotalMemBytes == 0 {
			usage.TotalMemBytes = 512 * mib
			usage.UsedMemBytes = 64 * mib
		}
		skew := spec.ClockSkew
		if skew == 0 {
			skew = tb.Net.RandomSkew(tb.opts.MaxSkew)
		}
		node, ntp := tb.newNodeWithSkew(spec.Site, spec.Name, skew)
		// The exporter is wired before the broker exists; its flow snapshots
		// read through an atomic pointer filled in after broker.New.
		var bref atomic.Pointer[broker.Broker]
		reg, tracer, journal, err := tb.obsFor(spec.Name, ntp, func() []obs.FlowSnapshot {
			if br := bref.Load(); br != nil {
				return br.Flows()
			}
			return nil
		})
		if err != nil {
			tb.Close()
			return nil, err
		}
		cfg := broker.Config{
			LogicalAddress:  spec.Name,
			Hostname:        spec.Name + "." + spec.Site,
			Realm:           spec.Site,
			Sampler:         metrics.NewStaticSampler(usage),
			ProcessingDelay: proc,
			Metrics:         reg,
			Tracer:          tracer,
			Journal:         journal,
		}
		if opts.SampleEvery > 0 {
			cfg.PublishSampler = obs.NewSampler(opts.SampleEvery, 0)
		}
		if opts.Multicast {
			cfg.MulticastGroup = MulticastGroup
		}
		if opts.Policy != nil {
			cfg.Policy = *opts.Policy
		}
		cfg.Routing = opts.Routing
		cfg.Supervise = opts.Supervise
		cfg.HeartbeatInterval = opts.Heartbeat
		cfg.AdvertiseInterval = opts.AdvertiseInterval
		cfg.AdvertiseTTL = opts.AdvertiseTTL
		b, err := broker.New(node, ntp, cfg)
		if err != nil {
			tb.Close()
			return nil, err
		}
		bref.Store(b)
		if err := b.Start(); err != nil {
			tb.Close()
			return nil, err
		}
		tb.Brokers = append(tb.Brokers, b)
		tb.recordBroker(spec, node, ntp, cfg, b)
		if spec.Register {
			for _, d := range tb.BDNs {
				if err := b.RegisterWithBDN(d.Addr()); err != nil {
					tb.Close()
					return nil, fmt.Errorf("testbed: registering %s: %w", spec.Name, err)
				}
			}
		}
		_ = i
	}

	// Topology.
	build, err := topology.ByName(opts.Topology)
	if err != nil {
		tb.Close()
		return nil, err
	}
	edges, err := build(tb.Brokers)
	if err != nil {
		tb.Close()
		return nil, err
	}
	tb.Edges = edges

	// Let registrations and link handshakes settle, then measure distances
	// for the closest/farthest injection policy.
	net.Clock().Sleep(200 * time.Millisecond)
	for _, d := range tb.BDNs {
		d.MeasureDistances()
	}
	return tb, nil
}

// obsFor returns the registry, tracer and journal a component named name
// should use. Without ExportAddr registry and tracer come from Options
// (possibly shared, possibly nil) and the journal is nil — there is no
// collector to drain it. With ExportAddr each component gets a private
// registry, tracer, journal and exporter keyed by its NTP service — the same
// shape as one process per node. flows, when non-nil, is shipped with each
// metric snapshot (brokers pass their per-topic flow table; everything else
// passes nil). Journal events are stamped on the node's local (skewed)
// clock, like spans, so the collector's offset alignment applies to both.
func (tb *Testbed) obsFor(name string, ntp *ntptime.Service, flows func() []obs.FlowSnapshot) (*obs.Registry, *obs.Tracer, *obs.Journal, error) {
	if tb.opts.ExportAddr == "" {
		return tb.opts.Metrics, tb.opts.Tracer, nil, nil
	}
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(0, nil)
	journal := obs.NewJournal(0, ntp.Local().Now)
	exp, err := obs.NewExporter(obs.ExporterConfig{
		Addr:            tb.opts.ExportAddr,
		Node:            name,
		Offset:          ntp.Offset,
		Registry:        reg,
		Flows:           flows,
		Journal:         journal,
		MetricsInterval: tb.opts.ExportInterval,
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("testbed: exporter for %s: %w", name, err)
	}
	tracer.SetExporter(exp)
	tb.exporters[name] = exp
	return reg, tracer, journal, nil
}

// newNode creates a transport node with a random hardware-clock skew and a
// synchronized NTP service for it.
func (tb *Testbed) newNode(site, host string) (*transport.SimNode, *ntptime.Service) {
	return tb.newNodeWithSkew(site, host, tb.Net.RandomSkew(tb.opts.MaxSkew))
}

// newNodeWithSkew is newNode with the hardware-clock skew pinned (fault
// injection for clock-drift scenarios).
func (tb *Testbed) newNodeWithSkew(site, host string, skew time.Duration) (*transport.SimNode, *ntptime.Service) {
	node := transport.NewSimNode(tb.Net, site, host, skew)
	ntp := ntptime.NewService(node.Clock(), skew, tb.rng)
	ntp.InitImmediately()
	tb.ntps = append(tb.ntps, ntp)
	tb.ntpByName[host] = ntp
	return node, ntp
}

// NTPOffset returns the named node's current NTP offset estimate (what its
// exporter stamps on packets) — tests assert fault-injection preconditions
// through this.
func (tb *Testbed) NTPOffset(name string) (time.Duration, bool) {
	ntp, ok := tb.ntpByName[name]
	if !ok {
		return 0, false
	}
	return ntp.Offset(), true
}

// NewDiscoverer creates a discovery client at the given site. The supplied
// config's zero fields are filled with defaults wired to this testbed (BDN
// address, multicast group, realm).
func (tb *Testbed) NewDiscoverer(site, name string, cfg core.Config) *core.Discoverer {
	node, ntp := tb.newNode(site, name)
	if cfg.NodeName == "" {
		cfg.NodeName = name
	}
	if cfg.Realm == "" {
		cfg.Realm = site
	}
	if cfg.BDNAddrs == nil {
		for _, d := range tb.BDNs {
			cfg.BDNAddrs = append(cfg.BDNAddrs, d.Addr())
		}
	}
	if cfg.MulticastGroup == "" && tb.opts.Multicast {
		cfg.MulticastGroup = MulticastGroup
	}
	if cfg.Metrics == nil && cfg.Tracer == nil {
		reg, tracer, _, err := tb.obsFor(cfg.NodeName, ntp, nil)
		if err != nil {
			panic(err) // ExportAddr was accepted at New; a dial failure here is a test bug
		}
		cfg.Metrics, cfg.Tracer = reg, tracer
	}
	return core.NewDiscoverer(node, ntp, cfg)
}

// ClientNode creates a plain transport node at a site (for broker.Connect).
func (tb *Testbed) ClientNode(site, name string) *transport.SimNode {
	node, _ := tb.newNode(site, name)
	return node
}

// BrokerByName returns the deployed broker with the given logical address.
func (tb *Testbed) BrokerByName(name string) *broker.Broker {
	for _, b := range tb.Brokers {
		if b.LogicalAddress() == name {
			return b
		}
	}
	return nil
}

// Exporter returns the named node's telemetry exporter, created when the
// testbed was deployed with ExportAddr. Tests use it to announce a real
// loopback telemetry endpoint for a simulated node (the collector's profile
// pull and flight-recorder planes dial whatever address is announced, so a
// node simulated on simnet can still serve real pprof over localhost).
func (tb *Testbed) Exporter(name string) (*obs.Exporter, bool) {
	e, ok := tb.exporters[name]
	return e, ok
}

// BrokerRegistry returns the private metric registry of a deployed broker
// (only distinct per node when ExportAddr is set). Fault-injection tests
// write synthetic runtime gauges into it — the testbed shares one OS process,
// so per-node "process" metrics must be injected rather than sampled.
func (tb *Testbed) BrokerRegistry(name string) (*obs.Registry, bool) {
	dep, ok := tb.brokerDeps[name]
	if !ok || dep.cfg.Metrics == nil {
		return nil, false
	}
	return dep.cfg.Metrics, true
}

// KillBroker abruptly removes the named broker from the fabric: the broker
// stops AND its telemetry exporter dies with it, exactly like a crashed
// process — the collector hears nothing further from the node (deadman
// fault injection). Returns false if no such broker is deployed.
func (tb *Testbed) KillBroker(name string) bool {
	for i, b := range tb.Brokers {
		if b.LogicalAddress() != name {
			continue
		}
		b.Close()
		tb.Brokers = append(tb.Brokers[:i], tb.Brokers[i+1:]...)
		if e, ok := tb.exporters[name]; ok {
			// Close ships a final snapshot; acceptable — a real crash's
			// last export also races its death.
			_ = e.Close()
			delete(tb.exporters, name)
		}
		return true
	}
	return false
}

// recordBroker remembers how a broker was deployed — node, NTP service, config
// and the ports it actually bound — so a chaos schedule can restart it at the
// same address after a kill.
func (tb *Testbed) recordBroker(spec BrokerSpec, node *transport.SimNode, ntp *ntptime.Service, cfg broker.Config, b *broker.Broker) {
	dep := &brokerDeployment{spec: spec, node: node, ntp: ntp, cfg: cfg}
	if a, err := transport.ParseSimAddr(b.StreamAddr()); err == nil {
		dep.streamPort = a.Port
	}
	if a, err := transport.ParseSimAddr(b.UDPAddr()); err == nil {
		dep.udpPort = a.Port
	}
	tb.brokerDeps[spec.Name] = dep
}

// recordBDN is recordBroker for discovery nodes.
func (tb *Testbed) recordBDN(name string, node *transport.SimNode, ntp *ntptime.Service, cfg bdn.Config, d *bdn.BDN) {
	dep := &bdnDeployment{node: node, ntp: ntp, cfg: cfg}
	if a, err := transport.ParseSimAddr(d.Addr()); err == nil {
		dep.streamPort = a.Port
	}
	if a, err := transport.ParseSimAddr(d.UDPAddr()); err == nil {
		dep.udpPort = a.Port
	}
	tb.bdnDeps[name] = dep
}

// RestartBroker brings a previously killed broker back on the SAME node with
// the SAME ports, so surviving supervised peers reconnect to it without any
// configuration change — exactly like a crashed process being restarted by an
// init system. The broker re-registers with every live BDN (when its spec
// asked for registration) and re-dials its own outgoing topology edges;
// inbound edges heal from the other side via supervision.
func (tb *Testbed) RestartBroker(name string) error {
	dep, ok := tb.brokerDeps[name]
	if !ok {
		return fmt.Errorf("testbed: no deployment record for broker %s", name)
	}
	if tb.BrokerByName(name) != nil {
		return fmt.Errorf("testbed: broker %s is still running", name)
	}
	var bref atomic.Pointer[broker.Broker]
	reg, tracer, journal, err := tb.obsFor(name, dep.ntp, func() []obs.FlowSnapshot {
		if br := bref.Load(); br != nil {
			return br.Flows()
		}
		return nil
	})
	if err != nil {
		return err
	}
	cfg := dep.cfg
	cfg.Metrics, cfg.Tracer, cfg.Journal = reg, tracer, journal
	cfg.StreamPort, cfg.UDPPort = dep.streamPort, dep.udpPort
	b, err := broker.New(dep.node, dep.ntp, cfg)
	if err != nil {
		return fmt.Errorf("testbed: restarting %s: %w", name, err)
	}
	bref.Store(b)
	if err := b.Start(); err != nil {
		return fmt.Errorf("testbed: restarting %s: %w", name, err)
	}
	tb.Brokers = append(tb.Brokers, b)
	if dep.spec.Register {
		for _, d := range tb.BDNs {
			if err := b.RegisterWithBDN(d.Addr()); err != nil {
				return fmt.Errorf("testbed: re-registering %s: %w", name, err)
			}
		}
	}
	for _, e := range tb.Edges {
		if e.From != name {
			continue
		}
		peer := tb.BrokerByName(e.To)
		if peer == nil {
			continue
		}
		if err := b.LinkTo(peer.StreamAddr()); err != nil {
			return fmt.Errorf("testbed: relinking %s->%s: %w", name, e.To, err)
		}
	}
	return nil
}

// startReplicas wires the deployed BDNs into a replicated cluster: every
// member gets a replication agent; listeners all bind before any member
// starts dialing, so the mesh forms regardless of deployment order.
func (tb *Testbed) startReplicas() error {
	lease := tb.opts.Lease
	if lease <= 0 {
		// Generous default: the model clock leaps while goroutines do real
		// work (WAL writes), and a tight lease would churn elections.
		lease = 4 * time.Second
	}
	reps := make([]*replica.Replica, 0, len(tb.BDNs))
	for _, d := range tb.BDNs {
		dep := tb.bdnDeps[d.Name()]
		r, err := replica.New(replica.Config{
			Name:    d.Name(),
			Node:    dep.node,
			Store:   d,
			Lease:   lease,
			Metrics: dep.cfg.Metrics,
			Journal: dep.cfg.Journal,
		})
		if err != nil {
			return fmt.Errorf("testbed: replica %s: %w", d.Name(), err)
		}
		tb.replicas[d.Name()] = r
		reps = append(reps, r)
	}
	for i, r := range reps {
		name := tb.BDNs[i].Name()
		dep := tb.bdnDeps[name]
		peers := make([]string, 0, len(reps)-1)
		for j, p := range reps {
			if j != i {
				peers = append(peers, p.Addr())
			}
		}
		dep.replicaPeers = peers
		if a, err := transport.ParseSimAddr(r.Addr()); err == nil {
			dep.replicaPort = a.Port
		}
		if err := r.Start(peers); err != nil {
			return fmt.Errorf("testbed: replica %s: %w", name, err)
		}
	}
	return nil
}

// Replica returns the named BDN's replication agent (nil unless the testbed
// was deployed with Options.Replicate).
func (tb *Testbed) Replica(name string) *replica.Replica {
	return tb.replicas[name]
}

// PrimaryBDN returns the BDN whose replication agent currently holds the
// leader lease, or nil when no member is primary (mid-election, or the
// testbed is not replicated).
func (tb *Testbed) PrimaryBDN() *bdn.BDN {
	for name, r := range tb.replicas {
		if r.IsPrimary() {
			return tb.BDNByName(name)
		}
	}
	return nil
}

// WaitPrimaryBDN polls until exactly one live replicated member is primary,
// returning it, or nil when the budget runs out.
func (tb *Testbed) WaitPrimaryBDN(within time.Duration) *bdn.BDN {
	clock := tb.Net.Clock()
	deadline := clock.Now().Add(within)
	for clock.Now().Before(deadline) {
		var got *bdn.BDN
		dual := false
		for name, r := range tb.replicas {
			if r.IsPrimary() && tb.BDNByName(name) != nil {
				if got != nil {
					dual = true
				}
				got = tb.BDNByName(name)
			}
		}
		if got != nil && !dual {
			return got
		}
		clock.Sleep(100 * time.Millisecond)
	}
	return nil
}

// BDNByName returns the deployed BDN with the given name, or nil.
func (tb *Testbed) BDNByName(name string) *bdn.BDN {
	for _, d := range tb.BDNs {
		if d.Name() == name {
			return d
		}
	}
	return nil
}

// KillBDN abruptly removes the named BDN — its stored registrations die with
// it, exactly like a crashed discovery-node process. Returns false if no such
// BDN is deployed.
func (tb *Testbed) KillBDN(name string) bool {
	for i, d := range tb.BDNs {
		if d.Name() != name {
			continue
		}
		if r, ok := tb.replicas[name]; ok {
			r.Close()
			delete(tb.replicas, name)
		}
		d.Close()
		tb.BDNs = append(tb.BDNs[:i], tb.BDNs[i+1:]...)
		if e, ok := tb.exporters[name]; ok {
			_ = e.Close()
			delete(tb.exporters, name)
		}
		if len(tb.BDNs) > 0 {
			tb.BDN = tb.BDNs[0]
		} else {
			tb.BDN = nil
		}
		return true
	}
	return false
}

// RestartBDN brings a previously killed BDN back on the SAME node with the
// SAME ports. Without a data dir it comes back empty and registrations
// repopulate from the brokers' own supervision (re-registration on
// reconnect) and periodic advertisement refresh; with BDNDataDir it
// recovers the full table from its snapshot + WAL first. A replicated
// member also restarts its replication agent on the old replication port,
// rejoining the cluster as a standby of whoever got promoted meanwhile.
func (tb *Testbed) RestartBDN(name string) error {
	dep, ok := tb.bdnDeps[name]
	if !ok {
		return fmt.Errorf("testbed: no deployment record for bdn %s", name)
	}
	if tb.BDNByName(name) != nil {
		return fmt.Errorf("testbed: bdn %s is still running", name)
	}
	reg, tracer, journal, err := tb.obsFor(name, dep.ntp, nil)
	if err != nil {
		return err
	}
	cfg := dep.cfg
	cfg.Metrics, cfg.Tracer, cfg.Journal = reg, tracer, journal
	cfg.StreamPort, cfg.UDPPort = dep.streamPort, dep.udpPort
	d, err := bdn.New(dep.node, dep.ntp, cfg)
	if err != nil {
		return fmt.Errorf("testbed: restarting bdn %s: %w", name, err)
	}
	if err := d.Start(); err != nil {
		return fmt.Errorf("testbed: restarting bdn %s: %w", name, err)
	}
	tb.BDNs = append(tb.BDNs, d)
	tb.BDN = tb.BDNs[0]
	if tb.opts.Replicate {
		lease := tb.opts.Lease
		if lease <= 0 {
			lease = 4 * time.Second
		}
		r, err := replica.New(replica.Config{
			Name:       name,
			Node:       dep.node,
			Store:      d,
			ListenPort: dep.replicaPort,
			Peers:      dep.replicaPeers,
			Lease:      lease,
			Metrics:    cfg.Metrics,
			Journal:    cfg.Journal,
		})
		if err != nil {
			return fmt.Errorf("testbed: restarting replica %s: %w", name, err)
		}
		if err := r.Start(nil); err != nil {
			return fmt.Errorf("testbed: restarting replica %s: %w", name, err)
		}
		tb.replicas[name] = r
	}
	return nil
}

// Close tears the deployment down. Per-node exporters are closed last so
// every component's final spans and metric snapshot still flush out.
func (tb *Testbed) Close() {
	for _, b := range tb.Brokers {
		b.Close()
	}
	for _, r := range tb.replicas {
		r.Close()
	}
	for _, d := range tb.BDNs {
		d.Close()
	}
	for _, e := range tb.exporters {
		_ = e.Close()
	}
}
