package testbed

import (
	"testing"
	"time"

	"narada/internal/broker"
	"narada/internal/simnet"
	"narada/internal/supervise"
	"narada/internal/topology"
)

// chaosOptions is a fully self-healing deployment: supervised links and
// registrations, heartbeat liveness, periodic advertisement refresh with TTL
// expiry. Intervals are model time — at the default scale 200 a 30s model
// convergence budget costs ~150ms of wall clock.
func chaosOptions() Options {
	return Options{
		Topology: topology.Linear,
		Supervise: &supervise.Policy{
			BaseBackoff: 50 * time.Millisecond,
			MaxBackoff:  2 * time.Second,
			Multiplier:  2,
		},
		Heartbeat:         200 * time.Millisecond,
		AdvertiseInterval: 500 * time.Millisecond, // TTL defaults to 1.5s
		SweepInterval:     250 * time.Millisecond,
	}
}

// at pins a fault helper to a schedule offset.
func at(offset time.Duration, f Fault) Fault {
	f.At = offset
	return f
}

// TestChaosSchedules drives the self-healing fabric through scripted outages
// and requires full convergence afterwards: links re-established, every live
// broker registered, no dead broker advertised, and a probe publish flowing
// end to end.
func TestChaosSchedules(t *testing.T) {
	scenarios := []struct {
		name     string
		routing  broker.RoutingMode
		schedule []Fault
	}{
		{
			name: "partition heals",
			schedule: []Fault{
				at(0, PartitionFault(simnet.SiteIndianapolis, simnet.SiteUMN)),
				at(2*time.Second, HealFault(simnet.SiteIndianapolis, simnet.SiteUMN)),
			},
		},
		{
			name: "lossy path recovers",
			schedule: []Fault{
				at(0, SetLossFault(simnet.SiteNCSA, simnet.SiteFSU, 0.4)),
				at(2*time.Second, SetLossFault(simnet.SiteNCSA, simnet.SiteFSU, 0)),
			},
		},
		{
			name: "broker crash and restart",
			schedule: []Fault{
				at(0, KillBrokerFault("broker-cardiff")),
				// Before the restart, the fabric must converge WITHOUT the
				// dead broker: its registration ages out everywhere and the
				// surviving chain keeps flowing.
				{At: 100 * time.Millisecond, Name: "dead broker ages out", Do: func(tb *Testbed) error {
					return tb.WaitConverged(ConvergeOptions{Timeout: 15 * time.Second, Publish: true})
				}},
				at(3*time.Second, RestartBrokerFault("broker-cardiff")),
			},
		},
		{
			name: "bdn crash and restart",
			schedule: []Fault{
				at(0, KillBDNFault("gridservicelocator.org")),
				at(1*time.Second, RestartBDNFault("gridservicelocator.org")),
			},
		},
		{
			name:    "combined outage under routed subscriptions",
			routing: broker.RouteSubscriptions,
			schedule: []Fault{
				at(0, PartitionFault(simnet.SiteNCSA, simnet.SiteFSU)),
				at(200*time.Millisecond, KillBrokerFault("broker-umn")),
				at(2*time.Second, HealFault(simnet.SiteNCSA, simnet.SiteFSU)),
				at(3*time.Second, RestartBrokerFault("broker-umn")),
			},
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			opts := chaosOptions()
			opts.Routing = sc.routing
			tb, err := New(opts)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer tb.Close()
			if err := tb.WaitConverged(ConvergeOptions{Timeout: 10 * time.Second}); err != nil {
				t.Fatalf("initial state: %v", err)
			}
			if err := tb.RunSchedule(sc.schedule); err != nil {
				t.Fatalf("schedule: %v", err)
			}
			if err := tb.WaitConverged(ConvergeOptions{Timeout: 30 * time.Second, Publish: true}); err != nil {
				t.Fatalf("after schedule: %v", err)
			}
		})
	}
}

// TestChaosRepeatedBDNRestarts hammers the registration path: the BDN dies
// and comes back three times; every time, the brokers' supervised
// registration links must repopulate the directory.
func TestChaosRepeatedBDNRestarts(t *testing.T) {
	tb, err := New(chaosOptions())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer tb.Close()
	for round := 0; round < 3; round++ {
		schedule := []Fault{
			at(0, KillBDNFault("gridservicelocator.org")),
			at(500*time.Millisecond, RestartBDNFault("gridservicelocator.org")),
		}
		if err := tb.RunSchedule(schedule); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := tb.WaitConverged(ConvergeOptions{Timeout: 20 * time.Second}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestChaosSupervisionMetrics asserts the healing left an audit trail: after
// a broker outage the surviving dialer's supervisor recorded reconnect
// attempts and at least one successful reconnect.
func TestChaosSupervisionMetrics(t *testing.T) {
	tb, err := New(chaosOptions())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer tb.Close()
	if err := tb.WaitConverged(ConvergeOptions{Timeout: 10 * time.Second}); err != nil {
		t.Fatalf("initial state: %v", err)
	}

	// The linear chain dials broker-umn from broker-indianapolis; find that
	// edge and its supervising runner.
	var dialer, target string
	for _, e := range tb.Edges {
		if e.To == "broker-umn" {
			dialer, target = e.From, e.To
			break
		}
	}
	if dialer == "" {
		t.Fatalf("no edge into broker-umn in %v", tb.Edges)
	}
	targetAddr := tb.BrokerByName(target).StreamAddr()
	r := tb.BrokerByName(dialer).Supervisor(broker.SuperviseLink, targetAddr)
	if r == nil {
		t.Fatalf("broker %s has no supervisor for %s", dialer, targetAddr)
	}

	schedule := []Fault{
		at(0, KillBrokerFault(target)),
		at(2*time.Second, RestartBrokerFault(target)),
	}
	if err := tb.RunSchedule(schedule); err != nil {
		t.Fatalf("schedule: %v", err)
	}
	if err := tb.WaitConverged(ConvergeOptions{Timeout: 30 * time.Second, Publish: true}); err != nil {
		t.Fatalf("after schedule: %v", err)
	}
	if r.Attempts() == 0 {
		t.Error("supervisor recorded no reconnect attempts across the outage")
	}
	if r.Successes() == 0 {
		t.Error("supervisor recorded no successful reconnects")
	}
	if got := r.State(); got != supervise.Connected {
		t.Errorf("supervisor state after healing = %v, want Connected", got)
	}
}
