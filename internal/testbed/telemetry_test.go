package testbed

import (
	"strings"
	"testing"

	"narada/internal/core"
	"narada/internal/obs"
	"narada/internal/topology"
)

// TestDiscoveryTelemetry runs one discovery through a fully instrumented
// deployment (shared registry + tracer across BDN, brokers and requester) and
// checks the two observability contracts end to end: the request's trace
// carries every core.Phase span plus the BDN/broker hops, keyed by the
// request UUID, and the exposition shows the expected metric families.
func TestDiscoveryTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.DefaultTraceCapacity, nil)
	tb, err := New(Options{
		Topology: topology.Ring, Seed: 11, Scale: 25,
		Metrics: reg, Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	d := tb.NewDiscoverer("bloomington", "client", discoveryConfig())
	res, err := d.Discover()
	if err != nil {
		t.Fatal(err)
	}

	// Exactly one request flowed through the deployment; its UUID keys the
	// trace assembled from every process it touched.
	traces := tracer.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("tracer holds %d traces, want 1", len(traces))
	}
	tv := traces[0]

	spans := make(map[string]int)
	for _, s := range tv.Spans {
		spans[s.Name]++
	}
	for _, p := range core.Phases() {
		if spans[p.String()] == 0 {
			t.Errorf("trace %s missing phase span %q (have %v)", tv.ID, p, spans)
		}
	}
	// The request passed the BDN and at least one broker.
	if spans["bdn-ack"] == 0 || spans["bdn-inject"] == 0 {
		t.Errorf("trace missing BDN events: %v", spans)
	}
	if spans["broker-respond"] == 0 {
		t.Errorf("trace missing broker-respond events: %v", spans)
	}
	// Ring topology: the two injected brokers re-disseminate to their peers.
	if spans["broker-fanout"] == 0 {
		t.Errorf("trace missing broker-fanout events: %v", spans)
	}
	// The requester's phase spans share one clock, so among themselves they
	// must appear in execution order. (Global order across nodes is only
	// approximate: every testbed node carries its own hardware-clock skew.)
	var phaseOrder []string
	for _, s := range tv.Spans {
		for _, p := range core.Phases() {
			if s.Name == p.String() {
				phaseOrder = append(phaseOrder, s.Name)
			}
		}
	}
	for i, p := range core.Phases() {
		if i < len(phaseOrder) && phaseOrder[i] != p.String() {
			t.Errorf("phase span order = %v, want the core.Phases() order", phaseOrder)
			break
		}
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	exposition := sb.String()
	families := []string{
		"narada_broker_frames_total",
		"narada_broker_publish_delivered_total",
		"narada_broker_discovery_requests_total",
		"narada_broker_discovery_responses_total",
		"narada_broker_pings_total",
		"narada_broker_egress_dropped_total",
		"narada_broker_links",
		"narada_broker_clients",
		"narada_broker_egress_queue_depth",
		"narada_bdn_advertisements_total",
		"narada_bdn_requests_total",
		"narada_bdn_injections_total",
		"narada_bdn_brokers",
		"narada_dedup_hits_total",
		"narada_dedup_adds_total",
		"narada_ntptime_offset_seconds",
		"narada_ntptime_synchronized",
		"narada_discovery_phase_seconds",
		"narada_discovery_total_seconds",
		"narada_discovery_responses",
		"narada_discovery_ping_rtt_seconds",
		"narada_discovery_requests_total",
		"narada_discovery_retransmits_total",
	}
	for _, f := range families {
		if !strings.Contains(exposition, "# TYPE "+f+" ") {
			t.Errorf("exposition missing family %s", f)
		}
	}
	// Per-phase histogram series exist for every phase label.
	for _, p := range core.Phases() {
		want := `narada_discovery_phase_seconds_count{node="client",phase="` + p.String() + `"} 1`
		if !strings.Contains(exposition, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	// The discovery flowed through the counters: the requester got responses
	// and every broker answered exactly once (discovery dedup).
	if !strings.Contains(exposition, `narada_discovery_requests_total{node="client",outcome="ok"} 1`) {
		t.Error("exposition missing the ok-outcome discovery count")
	}
	if res.Selected.LogicalAddress == "" {
		t.Fatal("no broker selected")
	}
}
