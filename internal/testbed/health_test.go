package testbed

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"narada/internal/metrics"
	"narada/internal/obs"
	"narada/internal/obs/collect"
	"narada/internal/obs/collect/health"
	"narada/internal/simnet"
	"narada/internal/topology"
)

// healthCollector builds a collector with fast retention tiers and a fast
// health ticker, suitable for the wall-clock testbed exporters.
func healthCollector(t *testing.T) *collect.Collector {
	t.Helper()
	col, err := collect.New(collect.Config{
		Listen: "127.0.0.1:0",
		Resolutions: []collect.Resolution{
			{Step: 100 * time.Millisecond, Slots: 100},
			{Step: 300 * time.Millisecond, Slots: 50},
			{Step: 900 * time.Millisecond, Slots: 20},
		},
		Health: &health.Config{
			// The fabric exports every 20ms; a 100ms × 3 deadman horizon
			// keeps scheduler hiccups from false-firing a live node.
			ExportInterval:   100 * time.Millisecond,
			DeadmanIntervals: 3,
		},
		HealthInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("collector: %v", err)
	}
	t.Cleanup(func() { _ = col.Close() })
	return col
}

// healthDeployment deploys a 3-broker fabric exporting into col, with the
// first broker's hardware clock pinned 25ms off UTC.
func healthDeployment(t *testing.T, col *collect.Collector) *Testbed {
	t.Helper()
	specs := []BrokerSpec{
		{Site: simnet.SiteIndianapolis, Name: "broker-skewed", Register: true,
			ClockSkew: 25 * time.Millisecond},
		{Site: simnet.SiteUMN, Name: "broker-b", Register: true},
		{Site: simnet.SiteNCSA, Name: "broker-c", Register: true},
	}
	for i := range specs {
		specs[i].Usage = metrics.Usage{TotalMemBytes: 512 * mib, UsedMemBytes: 64 * mib}
	}
	tb, err := New(Options{
		Scale:          50,
		Seed:           42,
		Topology:       topology.Ring,
		Brokers:        specs,
		MaxSkew:        5 * time.Millisecond, // honest-ish peers; only the injected skew should drift
		ExportAddr:     col.Addr(),
		ExportInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("testbed: %v", err)
	}
	t.Cleanup(tb.Close)
	return tb
}

func fetchAlerts(t *testing.T, url string) collect.AlertsView {
	t.Helper()
	resp, err := http.Get(url + "/alerts")
	if err != nil {
		t.Fatalf("GET /alerts: %v", err)
	}
	defer resp.Body.Close()
	var v collect.AlertsView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode /alerts: %v", err)
	}
	return v
}

// alertState polls /alerts until the (rule, node) alert reaches state.
func awaitAlertState(t *testing.T, url, rule, node, state string, deadline time.Duration) collect.AlertView {
	t.Helper()
	until := time.Now().Add(deadline)
	var last collect.AlertsView
	for {
		last = fetchAlerts(t, url)
		for _, a := range last.Alerts {
			if a.Rule == rule && a.Node == node && a.State == state {
				return a
			}
		}
		if time.Now().After(until) {
			t.Fatalf("alert %s/%s never reached %s; /alerts = %+v", rule, node, state, last)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFabricHealthAlerts runs the full failure-detection story against a live
// 3-broker fabric: the injected 25ms clock skew raises clock_drift, killing a
// broker raises deadman within the detection horizon, and a restarted
// exporter under the same identity resolves it.
func TestFabricHealthAlerts(t *testing.T) {
	col := healthCollector(t)
	tb := healthDeployment(t, col)
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	// Fault-injection precondition: the skewed broker's NTP estimate (true
	// skew ± the 1-20ms residual) must actually exceed the ±20ms envelope.
	// Seed 42 gives a positive residual; if this fails after reseeding the
	// testbed's rng draws, pick another Options.Seed rather than debugging
	// the health engine.
	if off, ok := tb.NTPOffset("broker-skewed"); !ok || off <= 20*time.Millisecond {
		t.Fatalf("precondition: broker-skewed NTP offset = %v (ok=%v), want > 20ms — adjust the seed", off, ok)
	}

	// Clock drift on the skewed broker.
	drift := awaitAlertState(t, srv.URL, health.RuleClockDrift, "broker-skewed", health.StateFiring, 5*time.Second)
	if drift.Value <= 0.020 {
		t.Fatalf("clock_drift value = %v, want > envelope 0.020", drift.Value)
	}
	// The honest brokers stay clean.
	for _, a := range fetchAlerts(t, srv.URL).Alerts {
		if a.Rule == health.RuleClockDrift && a.Node != "broker-skewed" && a.State == health.StateFiring {
			t.Fatalf("honest node %s raised clock drift: %+v", a.Node, a)
		}
	}

	// Kill a broker: its exporter dies with it, and deadman must fire after
	// the 3-interval horizon.
	killedAt := time.Now()
	if !tb.KillBroker("broker-b") {
		t.Fatal("KillBroker(broker-b) found no broker")
	}
	dead := awaitAlertState(t, srv.URL, health.RuleDeadman, "broker-b", health.StateFiring, 5*time.Second)
	if dead.FiredAt == nil {
		t.Fatalf("firing deadman has no FiredAt: %+v", dead)
	}
	// Detection latency: the horizon is 300ms; allow generous CI scheduling
	// slack on top, but a multi-second detection would mean the evaluator
	// is not running at its configured cadence.
	if latency := dead.FiredAt.Sub(killedAt); latency > 3*time.Second {
		t.Fatalf("deadman detection took %v, want within the horizon + slack", latency)
	}
	if v := fetchAlerts(t, srv.URL); v.Firing < 1 {
		t.Fatalf("/alerts firing count = %d with a dead broker", v.Firing)
	}
	// The firing alert is also a gauge on the collector's own exposition.
	if g, found := firingGaugeValue(col, health.RuleDeadman, "broker-b"); !found || g != 1 {
		t.Fatalf("narada_alerts_firing{deadman,broker-b} = %v (found=%v), want 1", g, found)
	}

	// The node restarts: a fresh exporter under the same identity resumes
	// snapshots, and the deadman alert must resolve.
	reg := obs.NewRegistry()
	reg.Gauge("narada_broker_links", "Links.", obs.L("node", "broker-b")).Set(0)
	exp, err := obs.NewExporter(obs.ExporterConfig{
		Addr: col.Addr(), Node: "broker-b", Registry: reg,
		MetricsInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("restart exporter: %v", err)
	}
	defer exp.Close()
	resolved := awaitAlertState(t, srv.URL, health.RuleDeadman, "broker-b", health.StateResolved, 5*time.Second)
	if resolved.ResolvedAt == nil {
		t.Fatalf("resolved deadman has no ResolvedAt: %+v", resolved)
	}
	if g, _ := firingGaugeValue(col, health.RuleDeadman, "broker-b"); g != 0 {
		t.Fatalf("narada_alerts_firing{deadman,broker-b} = %v after resolve, want 0", g)
	}
}

func firingGaugeValue(col *collect.Collector, rule, node string) (float64, bool) {
	for _, f := range col.Registry().ExportSnapshot() {
		if f.Name != "narada_alerts_firing" {
			continue
		}
		for _, s := range f.Series {
			var r, n string
			for _, l := range s.Labels {
				switch l.Key {
				case "rule":
					r = l.Value
				case "node":
					n = l.Value
				}
			}
			if r == rule && n == node {
				return s.Gauge, true
			}
		}
	}
	return 0, false
}

// TestQueryServesProbeSeries ships probe SLIs (success counters and a latency
// histogram) through the real export → ingest → store path and asserts
// /query serves the downsampled series at every configured resolution.
func TestQueryServesProbeSeries(t *testing.T) {
	col := healthCollector(t)
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	// A synthetic prober process: private registry, real UDP exporter. The
	// simnet testbed cannot host the real Prober (it probes over OS sockets),
	// but the wire path from its SLIs to /query is identical.
	reg := obs.NewRegistry()
	who := obs.L("node", "obsprobe")
	okRuns := reg.Counter("narada_probe_runs_total", "Probes.", who, obs.L("outcome", "ok"))
	errRuns := reg.Counter("narada_probe_runs_total", "Probes.", who, obs.L("outcome", "error"))
	latency := reg.Histogram("narada_probe_latency_seconds", "Probe latency.", nil, who)
	exp, err := obs.NewExporter(obs.ExporterConfig{
		Addr: col.Addr(), Node: "obsprobe", Registry: reg,
		MetricsInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("exporter: %v", err)
	}
	defer exp.Close()

	stop := make(chan struct{})
	go func() { // a probe "runs" every 10ms
		ticker := time.NewTicker(10 * time.Millisecond)
		defer ticker.Stop()
		for i := 0; ; i++ {
			select {
			case <-ticker.C:
				if i%5 == 4 {
					errRuns.Inc()
				} else {
					okRuns.Inc()
				}
				latency.ObserveDuration(time.Duration(5+i%10) * time.Millisecond)
			case <-stop:
				return
			}
		}
	}()
	defer close(stop)

	query := func(metric, res string) []collect.QuerySeries {
		t.Helper()
		resp, err := http.Get(srv.URL + "/query?metric=" + metric + "&node=obsprobe&res=" + res + "&since=30s")
		if err != nil {
			t.Fatalf("GET /query: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/query %s res=%s: status %d", metric, res, resp.StatusCode)
		}
		var v collect.QueryView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode /query: %v", err)
		}
		return v.Series
	}

	// Let a couple of coarse windows fill.
	deadline := time.Now().Add(10 * time.Second)
	for {
		series := query("narada_probe_runs_total", "100ms")
		total := 0.0
		for _, s := range series {
			for _, p := range s.Points {
				total += p.Value
			}
		}
		if total >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("probe counters never accumulated; last series %+v", series)
		}
		time.Sleep(50 * time.Millisecond)
	}

	for _, res := range []string{"100ms", "300ms", "900ms"} {
		runs := query("narada_probe_runs_total", res)
		if len(runs) != 2 { // outcome=ok and outcome=error
			t.Fatalf("res=%s: %d run series, want 2 (ok+error): %+v", res, len(runs), runs)
		}
		for _, s := range runs {
			if s.Kind != "counter" || len(s.Points) == 0 {
				t.Fatalf("res=%s: bad run series %+v", res, s)
			}
		}

		lat := query("narada_probe_latency_seconds", res)
		if len(lat) != 1 || lat[0].Kind != "histogram" {
			t.Fatalf("res=%s: latency series = %+v", res, lat)
		}
		var seen bool
		for _, p := range lat[0].Points {
			if p.Count > 0 {
				seen = true
				if p.P50 <= 0 || p.P99 < p.P50 {
					t.Fatalf("res=%s: implausible percentiles %+v", res, p)
				}
			}
		}
		if !seen {
			t.Fatalf("res=%s: latency windows all empty: %+v", res, lat[0].Points)
		}
	}
}
