package testbed

import (
	"errors"
	"testing"
	"time"

	"narada/internal/bdn"
	"narada/internal/broker"
	"narada/internal/core"
	"narada/internal/metrics"
	"narada/internal/ntptime"
	"narada/internal/simnet"
	"narada/internal/topology"
)

// discoveryConfig returns client settings sized for the 5-broker testbed.
func discoveryConfig() core.Config {
	return core.Config{
		CollectWindow: 1500 * time.Millisecond,
		MaxResponses:  5,
	}
}

func TestUnconnectedDiscovery(t *testing.T) {
	// Modest time scale: ping RTTs are measured through the scaled clock, so
	// high scales amplify scheduler jitter (especially under -race) into
	// model-time noise that can blur nearby sites.
	tb, err := New(Options{Topology: topology.Unconnected, Seed: 11, Scale: 25})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if tb.BDN.BrokerCount() != 5 {
		t.Fatalf("BDN knows %d brokers, want 5", tb.BDN.BrokerCount())
	}

	d := tb.NewDiscoverer(simnet.SiteBloomington, "client", discoveryConfig())
	res, err := d.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Via != core.ViaBDN {
		t.Fatalf("Via = %s, want bdn", res.Via)
	}
	if res.BDN != "gridservicelocator.org" {
		t.Fatalf("BDN = %q", res.BDN)
	}
	if len(res.Responses) != 5 {
		t.Fatalf("responses = %d, want 5 (unconnected O(N) fan-out must reach all registered)", len(res.Responses))
	}
	if !res.PingDecided {
		t.Fatal("selection did not use ping measurements")
	}
	// Nearest broker to Bloomington is Indianapolis (3 ms RTT); NCSA (10 ms)
	// is tolerated for scheduler noise under instrumented builds. The far
	// sites (UMN 22 ms, FSU 35 ms, Cardiff 120 ms) must never win.
	sel := res.Selected.LogicalAddress
	if sel != "broker-indianapolis" && sel != "broker-ncsa" {
		t.Fatalf("selected %s, want a nearby broker", sel)
	}
	if res.Timing.Total() <= 0 {
		t.Fatal("no timing recorded")
	}
}

func TestStarDiscoveryReachesAllViaNetwork(t *testing.T) {
	tb, err := New(Options{
		Topology:     topology.Star,
		Seed:         12,
		InjectPolicy: bdn.InjectClosestFarthest,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if len(tb.Edges) != 4 {
		t.Fatalf("star edges = %d, want 4", len(tb.Edges))
	}

	d := tb.NewDiscoverer(simnet.SiteBloomington, "client", discoveryConfig())
	res, err := d.Discover()
	if err != nil {
		t.Fatal(err)
	}
	// Injection hits only 2 brokers, but the hub floods to everyone.
	if len(res.Responses) != 5 {
		t.Fatalf("responses = %d, want 5 via network dissemination", len(res.Responses))
	}
}

func TestLinearDiscoveryViaChain(t *testing.T) {
	// Only the first broker registers; the rest are reachable solely through
	// the chain (paper Figure 10).
	specs := PaperBrokers()
	for i := range specs {
		specs[i].Register = i == 0
	}
	tb, err := New(Options{Topology: topology.Linear, Seed: 13, Brokers: specs})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if tb.BDN.BrokerCount() != 1 {
		t.Fatalf("BDN knows %d brokers, want 1", tb.BDN.BrokerCount())
	}

	d := tb.NewDiscoverer(simnet.SiteBloomington, "client", discoveryConfig())
	res, err := d.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responses) != 5 {
		t.Fatalf("responses = %d, want all 5 via the chain", len(res.Responses))
	}
}

func TestMulticastOnlyDiscovery(t *testing.T) {
	// No BDN at all: the request must reach brokers via multicast. Realm
	// scoping means only the Indiana broker hears a Bloomington client
	// (paper Figure 12: "multicast was disabled outside the lab").
	tb, err := New(Options{
		Topology:  topology.Unconnected,
		Seed:      14,
		NoBDN:     true,
		Multicast: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	cfg := discoveryConfig()
	cfg.MaxResponses = 1
	d := tb.NewDiscoverer(simnet.SiteBloomington, "client", cfg)
	res, err := d.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Via != core.ViaMulticast {
		t.Fatalf("Via = %s, want multicast", res.Via)
	}
	if len(res.Responses) != 1 || res.Responses[0].Response.Broker.LogicalAddress != "broker-indianapolis" {
		t.Fatalf("multicast crossed realms: %d responses", len(res.Responses))
	}
}

func TestCachedTargetSetFallback(t *testing.T) {
	// "If the requesting node is arriving after a prolonged disconnect, and
	// if none of the BDNs are available, the requesting node can issue a
	// broker request to one or more of the nodes in the target set."
	tb, err := New(Options{Topology: topology.Star, Seed: 15, InjectPolicy: bdn.InjectClosestFarthest})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	d := tb.NewDiscoverer(simnet.SiteBloomington, "client", discoveryConfig())
	if _, err := d.Discover(); err != nil {
		t.Fatal(err)
	}
	if len(d.LastTargetSet()) == 0 {
		t.Fatal("no cached target set after first discovery")
	}

	// Kill the BDN; rediscovery must fall back to the cached set.
	tb.BDN.Close()
	res, err := d.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Via != core.ViaCached {
		t.Fatalf("Via = %s, want cached", res.Via)
	}
	if len(res.Responses) == 0 {
		t.Fatal("cached-set rediscovery yielded no responses")
	}
}

func TestDiscoveryNoPath(t *testing.T) {
	tb, err := New(Options{Topology: topology.Unconnected, Seed: 16, NoBDN: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	d := tb.NewDiscoverer(simnet.SiteBloomington, "client", discoveryConfig())
	if _, err := d.Discover(); !errors.Is(err, core.ErrNoPath) {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}

func TestDiscoveryUnderPacketLoss(t *testing.T) {
	// Responses and pings are UDP; with 20% loss discovery must still
	// complete (paper §7: "sustains loss of both the discovery requests ...
	// and discovery responses").
	tb, err := New(Options{Topology: topology.Star, Seed: 17,
		InjectPolicy: bdn.InjectClosestFarthest, Loss: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	cfg := discoveryConfig()
	cfg.CollectWindow = 1 * time.Second
	d := tb.NewDiscoverer(simnet.SiteBloomington, "client", cfg)
	res, err := d.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responses) == 0 {
		t.Fatal("no responses under loss")
	}
}

func TestLoadAwareSelectionPrefersIdleLocalAlternative(t *testing.T) {
	// Two brokers at the same site: one heavily loaded, one fresh. The fresh
	// one must win (paper §8 advantage 3).
	specs := []BrokerSpec{
		{Site: simnet.SiteIndianapolis, Name: "busy", Register: true,
			Usage: busyUsage()},
		{Site: simnet.SiteIndianapolis, Name: "fresh", Register: true,
			Usage: freshUsage()},
	}
	tb, err := New(Options{Topology: topology.Unconnected, Seed: 18, Brokers: specs})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	cfg := discoveryConfig()
	cfg.MaxResponses = 2
	cfg.Selection.TargetSetSize = 1 // force weighting to decide alone
	d := tb.NewDiscoverer(simnet.SiteBloomington, "client", cfg)
	res, err := d.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected.LogicalAddress != "fresh" {
		t.Fatalf("selected %s, want fresh", res.Selected.LogicalAddress)
	}
}

func TestRetransmissionSurvivesAckLoss(t *testing.T) {
	// Stream traffic is reliable in the simulator, so exercise the
	// retransmission path by pointing the client at a BDN that exists but
	// also at one that doesn't: the dial failure must fall through to the
	// live BDN.
	tb, err := New(Options{Topology: topology.Unconnected, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	cfg := discoveryConfig()
	cfg.BDNAddrs = []string{"bloomington/ghost:1", tb.BDN.Addr()}
	d := tb.NewDiscoverer(simnet.SiteBloomington, "client", cfg)
	res, err := d.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Via != core.ViaBDN {
		t.Fatalf("Via = %s", res.Via)
	}
}

func busyUsage() (u metrics.Usage) {
	u.TotalMemBytes = 512 * mib
	u.UsedMemBytes = 480 * mib
	u.Links = 40
	u.CPULoad = 0.9
	return
}

func freshUsage() (u metrics.Usage) {
	u.TotalMemBytes = 512 * mib
	u.UsedMemBytes = 32 * mib
	u.CPULoad = 0.01
	return
}

func TestMultiBDNDeployment(t *testing.T) {
	tb, err := New(Options{Topology: topology.Star, Seed: 30, BDNCount: 3,
		InjectPolicy: bdn.InjectClosestFarthest})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if len(tb.BDNs) != 3 {
		t.Fatalf("BDNs = %d, want 3", len(tb.BDNs))
	}
	for i, d := range tb.BDNs {
		if d.BrokerCount() != 5 {
			t.Fatalf("BDN %d knows %d brokers, want 5", i, d.BrokerCount())
		}
	}
	d := tb.NewDiscoverer(simnet.SiteBloomington, "client", discoveryConfig())
	if len(d.Config().BDNAddrs) != 3 {
		t.Fatalf("client has %d BDN addrs", len(d.Config().BDNAddrs))
	}
	res, err := d.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if res.BDN != "gridservicelocator.org" {
		t.Fatalf("served by %q, want the primary", res.BDN)
	}
}

func TestBDNFailoverToSecondary(t *testing.T) {
	tb, err := New(Options{Topology: topology.Star, Seed: 31, BDNCount: 2,
		InjectPolicy: bdn.InjectClosestFarthest})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	tb.BDNs[0].Close() // primary gone

	cfg := discoveryConfig()
	cfg.AckTimeout = 300 * time.Millisecond
	cfg.MaxRetransmits = 1
	d := tb.NewDiscoverer(simnet.SiteBloomington, "client", cfg)
	res, err := d.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Via != core.ViaBDN || res.BDN != "gridservicelocator.com" {
		t.Fatalf("via=%s bdn=%q, want the secondary BDN", res.Via, res.BDN)
	}
	if len(res.Responses) != 5 {
		t.Fatalf("responses = %d", len(res.Responses))
	}
}

func TestBrokerJoinsNetworkViaDiscovery(t *testing.T) {
	// The second kind of requesting entity from the paper's problem
	// statement: a new broker discovers the nearest broker, links to it,
	// registers with the BDN, and is immediately part of the network.
	tb, err := New(Options{Topology: topology.Star, Seed: 32, Scale: 25,
		InjectPolicy: bdn.InjectClosestFarthest})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	node := tb.ClientNode(simnet.SiteBloomington, "joiner-node")
	ntp := ntptime.NewService(node.Clock(), 0, nil)
	ntp.InitImmediately()
	joiner, err := broker.New(node, ntp, broker.Config{
		LogicalAddress: "joiner",
		Realm:          simnet.SiteBloomington,
		Sampler:        metrics.NewStaticSampler(metrics.Usage{TotalMemBytes: 1 << 29}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := joiner.Start(); err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()

	d := tb.NewDiscoverer(simnet.SiteBloomington, "joiner", discoveryConfig())
	linked, err := joiner.JoinNetwork(d)
	if err != nil {
		t.Fatal(err)
	}
	// Indianapolis (3 ms) is the nearest; NCSA (10 ms) tolerated for
	// scheduler noise under instrumented builds.
	if linked.LogicalAddress != "broker-indianapolis" && linked.LogicalAddress != "broker-ncsa" {
		t.Fatalf("joined via %s, want a nearby broker", linked.LogicalAddress)
	}
	tb.Net.Clock().Sleep(100 * time.Millisecond) // link registers asynchronously
	if joiner.LinkCount() != 1 {
		t.Fatalf("joiner links = %d", joiner.LinkCount())
	}
	if err := joiner.RegisterWithBDN(tb.BDN.Addr()); err != nil {
		t.Fatal(err)
	}
	tb.Net.Clock().Sleep(300 * time.Millisecond)

	// Events published at the joiner reach subscribers across the network.
	sub := tb.ClientNode(simnet.SiteCardiff, "sub")
	c, err := broker.Connect(sub, tb.BrokerByName("broker-cardiff").StreamAddr(), "sub")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Subscribe("joined/up"); err != nil {
		t.Fatal(err)
	}
	tb.Net.Clock().Sleep(300 * time.Millisecond)
	if err := joiner.Publish("joined/up", []byte("hello network")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(10 * time.Second); err != nil {
		t.Fatalf("event from joined broker never arrived: %v", err)
	}
}

func TestRoutedModeTestbed(t *testing.T) {
	tb, err := New(Options{Topology: topology.Star, Seed: 33,
		InjectPolicy: bdn.InjectClosestFarthest,
		Routing:      broker.RouteSubscriptions})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	d := tb.NewDiscoverer(simnet.SiteBloomington, "client", discoveryConfig())
	res, err := d.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responses) != 5 {
		t.Fatalf("discovery degraded in routed mode: %d responses", len(res.Responses))
	}
}

func TestDiscoverySurvivesDuplicatedDatagrams(t *testing.T) {
	// With every inter-site datagram duplicated, the Discoverer's response
	// and pong dedup must keep results correct.
	tb, err := New(Options{Topology: topology.Star, Seed: 35,
		InjectPolicy: bdn.InjectClosestFarthest, DuplicateProb: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	d := tb.NewDiscoverer(simnet.SiteBloomington, "client", discoveryConfig())
	res, err := d.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responses) != 5 {
		t.Fatalf("responses = %d under duplication, want 5 distinct", len(res.Responses))
	}
	if !res.PingDecided {
		t.Fatal("ping decision degraded under duplication")
	}
}

func TestDiscoveryDuringBrokerChurn(t *testing.T) {
	// Brokers crash mid-collection: discovery still completes with the
	// survivors (paper §7's fluid network).
	tb, err := New(Options{Topology: topology.Star, Seed: 36,
		InjectPolicy: bdn.InjectClosestFarthest})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	// Kill two brokers.
	tb.BrokerByName("broker-cardiff").Close()
	tb.BrokerByName("broker-fsu").Close()
	tb.Net.Clock().Sleep(100 * time.Millisecond)

	cfg := discoveryConfig()
	cfg.CollectWindow = 800 * time.Millisecond
	cfg.MaxResponses = 0 // window-bounded: dead brokers cannot be waited out
	d := tb.NewDiscoverer(simnet.SiteBloomington, "client", cfg)
	res, err := d.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responses) != 3 {
		t.Fatalf("responses = %d, want the 3 survivors", len(res.Responses))
	}
	if res.Selected.LogicalAddress == "broker-cardiff" ||
		res.Selected.LogicalAddress == "broker-fsu" {
		t.Fatalf("selected a dead broker: %s", res.Selected.LogicalAddress)
	}
}
