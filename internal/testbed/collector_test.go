package testbed

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"narada/internal/bdn"
	"narada/internal/core"
	"narada/internal/obs/collect"
	"narada/internal/simnet"
	"narada/internal/topology"
)

// collectorDeployment is the shared shape of the end-to-end observability
// tests: large clock skews so raw timestamps are visibly misordered, and
// processing/injection costs that dwarf the worst-case NTP residual (40 ms
// across a node pair) so aligned ordering is deterministic.
func collectorDeployment(t *testing.T, col *collect.Collector) *Testbed {
	t.Helper()
	tb, err := New(Options{
		Scale:            50,
		Seed:             42,
		Topology:         topology.Ring,
		InjectPolicy:     bdn.InjectClosestFarthest,
		InjectOverhead:   80 * time.Millisecond,
		BrokerProcessing: 100 * time.Millisecond,
		MaxSkew:          500 * time.Millisecond,
		ExportAddr:       col.Addr(),
		ExportInterval:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("testbed: %v", err)
	}
	t.Cleanup(tb.Close)
	return tb
}

// TestCollectorAssemblesCrossNodeTrace runs one discovery over a multi-broker
// ring with a live UDP collector attached and asserts the assembled trace
// spans requester, BDN and at least two brokers in causally consistent
// (offset-corrected) order, despite per-node clock skews up to 500 ms.
func TestCollectorAssemblesCrossNodeTrace(t *testing.T) {
	col, err := collect.New(collect.Config{Listen: "127.0.0.1:0", TraceCapacity: 64})
	if err != nil {
		t.Fatalf("collector: %v", err)
	}
	defer col.Close()

	tb := collectorDeployment(t, col)
	d := tb.NewDiscoverer(simnet.SiteCardiff, "requester", core.Config{})
	res, err := d.Discover()
	if err != nil {
		t.Fatalf("discover: %v", err)
	}
	id := res.RequestID.String()

	// Span batches flush on a short wall-clock interval; poll until the
	// trace covers requester + BDN + >= 2 brokers.
	tr := waitForTrace(t, col, id, func(tr collect.TraceInfo) bool {
		return len(spanNodes(tr)) >= 4
	})
	nodes := spanNodes(tr)
	if !nodes["requester"] {
		t.Fatalf("trace %s has no requester spans (nodes %v)", id, tr.Nodes)
	}
	if !nodes["gridservicelocator.org"] {
		t.Fatalf("trace %s has no BDN spans (nodes %v)", id, tr.Nodes)
	}
	brokers := 0
	for n := range nodes {
		if strings.HasPrefix(n, "broker-") {
			brokers++
		}
	}
	if brokers < 2 {
		t.Fatalf("trace %s has spans from %d brokers, want >= 2 (nodes %v)", id, brokers, tr.Nodes)
	}

	// Causal consistency on the aligned timeline. request-issue starts before
	// the BDN injects (one-way WAN latency + 80 ms injection overhead), and
	// every broker span follows the first injection (transfer + 100 ms
	// processing) — margins far above the 40 ms worst-case residual pair.
	issueAt, ok := spanAligned(tr, "request-issue")
	if !ok {
		t.Fatalf("trace %s has no request-issue span", id)
	}
	var firstInject time.Time
	injects := 0
	for _, s := range tr.Spans {
		if s.Name != "bdn-inject" {
			continue
		}
		injects++
		if firstInject.IsZero() || s.AtAligned.Before(firstInject) {
			firstInject = s.AtAligned
		}
		if !s.AtAligned.After(issueAt) {
			t.Errorf("bdn-inject aligned %v not after request-issue %v", s.AtAligned, issueAt)
		}
	}
	if injects == 0 {
		t.Fatalf("trace %s has no bdn-inject spans", id)
	}
	// broker-fanout fires on receipt (only network latency after an inject —
	// below the residual), so it is ordered against request-issue; the
	// response follows the broker's 100 ms processing, so it is ordered
	// against the first injection.
	brokerSpans := 0
	for _, s := range tr.Spans {
		switch s.Name {
		case "broker-fanout":
			brokerSpans++
			if !s.AtAligned.After(issueAt) {
				t.Errorf("broker-fanout on %s aligned %v not after request-issue %v",
					s.Node, s.AtAligned, issueAt)
			}
		case "broker-respond":
			brokerSpans++
			if !s.AtAligned.After(firstInject) {
				t.Errorf("broker-respond on %s aligned %v not after first bdn-inject %v",
					s.Node, s.AtAligned, firstInject)
			}
		}
	}
	if brokerSpans == 0 {
		t.Fatalf("trace %s has no broker spans", id)
	}
	for i := 1; i < len(tr.Spans); i++ {
		if tr.Spans[i].AtAligned.Before(tr.Spans[i-1].AtAligned) {
			t.Fatalf("trace spans not sorted by aligned time at index %d", i)
		}
	}

	// The skews are real: at least one span's raw node-local timestamp must
	// disagree with the aligned timeline by more than the NTP residual,
	// proving alignment did meaningful work.
	misaligned := false
	for _, s := range tr.Spans {
		if d := s.At.Sub(s.AtAligned); d > 50*time.Millisecond || d < -50*time.Millisecond {
			misaligned = true
			break
		}
	}
	if !misaligned {
		t.Error("no span shows a raw-vs-aligned gap beyond 50ms; skew plumbing suspect")
	}
}

// TestCollectorFabricAndFederatedMetrics asserts /fabric lists every fabric
// node and the federated /metrics exposition carries per-broker series.
func TestCollectorFabricAndFederatedMetrics(t *testing.T) {
	col, err := collect.New(collect.Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("collector: %v", err)
	}
	defer col.Close()

	tb := collectorDeployment(t, col)
	d := tb.NewDiscoverer(simnet.SiteCardiff, "requester", core.Config{})
	if _, err := d.Discover(); err != nil {
		t.Fatalf("discover: %v", err)
	}

	want := map[string]bool{"requester": true, "gridservicelocator.org": true}
	for _, b := range tb.Brokers {
		want[b.LogicalAddress()] = true
	}

	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	deadline := time.Now().Add(10 * time.Second)
	var view collect.FabricView
	for {
		resp, err := http.Get(srv.URL + "/fabric")
		if err != nil {
			t.Fatalf("GET /fabric: %v", err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatalf("decode /fabric: %v", err)
		}
		resp.Body.Close()
		have := make(map[string]bool, len(view.Nodes))
		for _, n := range view.Nodes {
			have[n.Name] = true
		}
		missing := 0
		for n := range want {
			if !have[n] {
				missing++
			}
		}
		if missing == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fabric never reported all %d nodes; last view %+v", len(want), view.Nodes)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if view.Traces == 0 {
		t.Error("fabric reports zero traces after a discovery")
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	body := string(raw)
	for _, b := range tb.Brokers {
		if !strings.Contains(body, `node="`+b.LogicalAddress()+`"`) {
			t.Errorf("federated /metrics missing series for %s", b.LogicalAddress())
		}
	}
	for _, family := range []string{
		"narada_broker_links", "narada_discovery_total_seconds", "narada_collect_packets_total",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("federated /metrics missing family %s", family)
		}
	}
}

func waitForTrace(t *testing.T, col *collect.Collector, id string, ready func(collect.TraceInfo) bool) collect.TraceInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		tr, ok := col.Trace(id)
		if ok && ready(tr) {
			return tr
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never assembled (have %v)", id, tr.Nodes)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func spanNodes(tr collect.TraceInfo) map[string]bool {
	out := make(map[string]bool, len(tr.Nodes))
	for _, n := range tr.Nodes {
		out[n] = true
	}
	return out
}

func spanAligned(tr collect.TraceInfo, name string) (time.Time, bool) {
	for _, s := range tr.Spans {
		if s.Name == name {
			return s.AtAligned, true
		}
	}
	return time.Time{}, false
}
