package testbed

import (
	"fmt"
	"testing"
	"time"

	"narada/internal/broker"
	"narada/internal/event"
	"narada/internal/obs/collect"
	"narada/internal/obs/collect/health"
	"narada/internal/simnet"
	"narada/internal/topology"
)

// TestSampledPublishAssemblesMessageTrace publishes one sampled message
// through a two-broker fabric with a live collector attached and asserts the
// end-to-end story: the sampled flag crosses the link in the event headers,
// and the collector assembles a message-kind trace whose spans cover both
// brokers (publish, match, link hop) with a per-hop queue-wait breakdown.
func TestSampledPublishAssemblesMessageTrace(t *testing.T) {
	col, err := collect.New(collect.Config{Listen: "127.0.0.1:0", TraceCapacity: 256})
	if err != nil {
		t.Fatalf("collector: %v", err)
	}
	defer col.Close()

	tb, err := New(Options{
		Scale: 50,
		Seed:  42,
		Brokers: []BrokerSpec{
			{Site: simnet.SiteIndianapolis, Name: "broker-a", Register: true},
			{Site: simnet.SiteUMN, Name: "broker-b", Register: true},
		},
		Topology:       topology.Linear,
		ExportAddr:     col.Addr(),
		ExportInterval: 20 * time.Millisecond,
		SampleEvery:    1, // every publish traced: one message is enough
	})
	if err != nil {
		t.Fatalf("testbed: %v", err)
	}
	defer tb.Close()

	const topic = "obs/msg/path"
	rc, err := broker.Connect(tb.ClientNode(simnet.SiteUMN, "trace-sub"),
		tb.BrokerByName("broker-b").StreamAddr(), "trace-sub")
	if err != nil {
		t.Fatalf("subscriber: %v", err)
	}
	defer rc.Close()
	if err := rc.Subscribe(topic); err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	tb.Net.Clock().Sleep(300 * time.Millisecond)

	pc, err := broker.Connect(tb.ClientNode(simnet.SiteIndianapolis, "trace-pub"),
		tb.BrokerByName("broker-a").StreamAddr(), "trace-pub")
	if err != nil {
		t.Fatalf("publisher: %v", err)
	}
	defer pc.Close()
	if err := pc.Publish(topic, []byte("traced message")); err != nil {
		t.Fatalf("publish: %v", err)
	}

	ev, err := rc.Next(5 * time.Second)
	if err != nil {
		t.Fatalf("delivery: %v", err)
	}
	// Satellite check: the sampled verdict crossed the link in the headers —
	// origin is the deciding broker, and the hop counter advanced once.
	origin, hop, sampled := ev.MsgTrace()
	if !sampled {
		t.Fatalf("delivered event lost the sampled flag; headers %v", ev.Headers)
	}
	if origin != "broker-a" || hop != 1 {
		t.Fatalf("msg trace headers origin=%q hop=%d, want broker-a/1", origin, hop)
	}

	// The trace is keyed by the event UUID. Wait until spans from both
	// brokers landed and the hop breakdown is populated.
	id := ev.ID.String()
	tr := waitForTrace(t, col, id, func(tr collect.TraceInfo) bool {
		return tr.Kind == collect.TraceKindMessage && len(spanNodes(tr)) >= 2 && len(tr.Hops) >= 2
	})

	spans := make(map[string]map[string]bool) // name -> nodes
	for _, s := range tr.Spans {
		if spans[s.Name] == nil {
			spans[s.Name] = make(map[string]bool)
		}
		spans[s.Name][s.Node] = true
	}
	if !spans["msg-publish"]["broker-a"] {
		t.Errorf("no msg-publish span on broker-a: %v", spans)
	}
	if !spans["msg-match"]["broker-a"] || !spans["msg-match"]["broker-b"] {
		t.Errorf("msg-match spans missing a broker: %v", spans)
	}
	if !spans["msg-hop"]["broker-b"] {
		t.Errorf("no msg-hop span on broker-b (the link ingress): %v", spans)
	}
	if !spans["msg-flush"]["broker-a"] || !spans["msg-flush"]["broker-b"] {
		t.Errorf("msg-flush spans missing a broker: %v", spans)
	}

	// Queue-wait breakdown: broker-a flushed the frame to the link, broker-b
	// to the local client; every wait is a real measured wall-clock duration.
	dests := make(map[string]bool)
	var maxWait time.Duration
	for _, h := range tr.Hops {
		dests[h.Node+"/"+h.Dest] = true
		if h.QueueWaitNs < 0 {
			t.Errorf("negative queue wait %v at %s", h.QueueWaitNs, h.Node)
		}
		if h.QueueWaitNs > maxWait {
			maxWait = h.QueueWaitNs
		}
	}
	if !dests["broker-a/link"] || !dests["broker-b/local"] {
		t.Errorf("hop breakdown missing an edge: %v", dests)
	}
	if maxWait == 0 {
		t.Error("all queue waits are zero; egress enqueue timestamps not flowing")
	}
}

// TestDropStormFiresDropRatioAlert wedges a broker's egress with a subscriber
// that never reads, floods the topic until drop-oldest eviction dominates,
// and asserts the collector's drop_ratio rule fires from the exported flow of
// delivered/dropped counters — then resolves once healthy traffic replaces
// the storm in the evaluation window.
func TestDropStormFiresDropRatioAlert(t *testing.T) {
	col, err := collect.New(collect.Config{
		Listen: "127.0.0.1:0",
		Resolutions: []collect.Resolution{
			{Step: 100 * time.Millisecond, Slots: 100},
			{Step: 300 * time.Millisecond, Slots: 50},
			{Step: 900 * time.Millisecond, Slots: 20},
		},
		Health: &health.Config{
			ExportInterval: 100 * time.Millisecond,
			EgressWindow:   1500 * time.Millisecond,
			DropRatioMax:   0.05,
			DropMinVolume:  50,
			ResolveAfter:   100 * time.Millisecond,
		},
		HealthInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("collector: %v", err)
	}
	defer col.Close()

	tb, err := New(Options{
		Scale: 50,
		Seed:  42,
		Brokers: []BrokerSpec{
			{Site: simnet.SiteIndianapolis, Name: "broker-storm", Register: true},
		},
		Topology:       topology.Unconnected,
		ExportAddr:     col.Addr(),
		ExportInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("testbed: %v", err)
	}
	defer tb.Close()
	b := tb.BrokerByName("broker-storm")

	// A subscriber that never reads: raw connection, subscribe, silence. The
	// broker's egress queue fills behind it and drop-oldest takes over.
	blocked, err := tb.ClientNode(simnet.SiteIndianapolis, "blocked-sub").Dial(b.StreamAddr())
	if err != nil {
		t.Fatalf("blocked subscriber dial: %v", err)
	}
	defer blocked.Close()
	sub := event.New(event.TypeSubscribe, "storm/topic", nil)
	sub.Source = "blocked-sub"
	if err := blocked.Send(event.Encode(sub)); err != nil {
		t.Fatalf("blocked subscribe: %v", err)
	}
	tb.Net.Clock().Sleep(100 * time.Millisecond)

	pc, err := broker.Connect(tb.ClientNode(simnet.SiteIndianapolis, "storm-pub"),
		b.StreamAddr(), "storm-pub")
	if err != nil {
		t.Fatalf("publisher: %v", err)
	}
	defer pc.Close()

	// The storm runs continuously in wall time: the collector's rate store
	// baselines each counter at its first snapshot, so a burst that finishes
	// before the first export tick would read as a zero rate. A paced flood
	// keeps the egress queue (512) wedged and drop-oldest evicting across
	// many export intervals. delivered counts at enqueue, so ratio =
	// drops/delivered.
	payload := make([]byte, 64)
	stormStop := make(chan struct{})
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				for i := 0; i < 50; i++ {
					if err := pc.Publish("storm/topic", payload); err != nil {
						return
					}
				}
			case <-stormStop:
				return
			}
		}
	}()
	if waitBrokerDrops(b, 200, 10*time.Second) == 0 {
		close(stormStop)
		<-stormDone
		t.Fatal("storm produced no egress drops; queue never wedged")
	}

	fired := awaitEngineAlert(t, col, health.RuleDropRatio, "broker-storm", health.StateFiring, 15*time.Second)
	if fired.Value <= 0.05 {
		t.Fatalf("drop_ratio fired with value %v, want > threshold 0.05", fired.Value)
	}

	// Recovery: the storm ends, the wedged consumer disconnects and healthy
	// traffic takes over. Client pumps drain automatically, so the new
	// subscriber's queue never backs up; once the storm ages out of the 1.5s
	// window the ratio returns to zero on real volume and the alert must
	// resolve.
	close(stormStop)
	<-stormDone
	_ = blocked.Close()
	rc, err := broker.Connect(tb.ClientNode(simnet.SiteIndianapolis, "healthy-sub"),
		b.StreamAddr(), "healthy-sub")
	if err != nil {
		t.Fatalf("healthy subscriber: %v", err)
	}
	defer rc.Close()
	if err := rc.Subscribe("storm/healthy"); err != nil {
		t.Fatalf("healthy subscribe: %v", err)
	}
	tb.Net.Clock().Sleep(100 * time.Millisecond)

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		ticker := time.NewTicker(10 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				_ = pc.Publish("storm/healthy", payload)
			case <-stop:
				return
			}
		}
	}()

	resolved := awaitEngineAlert(t, col, health.RuleDropRatio, "broker-storm", health.StateResolved, 20*time.Second)
	if resolved.ResolvedAt == nil {
		t.Fatalf("resolved drop_ratio has no ResolvedAt: %+v", resolved)
	}
}

// waitBrokerDrops polls the broker's own egress drop counters until they
// reach at least want (returning the observed count), or the deadline passes.
func waitBrokerDrops(b *broker.Broker, want uint64, timeout time.Duration) uint64 {
	deadline := time.Now().Add(timeout)
	for {
		if n := b.EgressDropped(); n >= want || time.Now().After(deadline) {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// awaitEngineAlert polls the health engine until the (rule, node) alert
// reaches the wanted state.
func awaitEngineAlert(t *testing.T, col *collect.Collector, rule, node, state string, timeout time.Duration) health.Alert {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last []health.Alert
	for {
		last = col.Health().Alerts()
		for _, a := range last {
			if a.Rule == rule && a.Node == node && a.State == state {
				return a
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("alert %s/%s never reached %s; alerts = %s", rule, node, state, fmt.Sprint(last))
		}
		time.Sleep(20 * time.Millisecond)
	}
}
