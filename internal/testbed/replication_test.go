package testbed

import (
	"testing"
	"time"

	"narada/internal/broker"
	"narada/internal/core"
	"narada/internal/simnet"
	"narada/internal/supervise"
	"narada/internal/topology"
)

// TestReplicatedBDNFailover is the headline durability scenario: a 3-node
// replicated BDN cluster loses its primary to a hard kill, a standby
// promotes, discovery keeps answering — and not one broker re-registers,
// because the survivors already hold the full replicated table. The brokers
// run WITH supervision, so re-registration would happen if it were needed;
// Successes() == 0 proves it never was.
func TestReplicatedBDNFailover(t *testing.T) {
	tb, err := New(Options{
		Seed:       42,
		Topology:   topology.Unconnected,
		BDNCount:   3,
		BDNDataDir: t.TempDir(),
		Replicate:  true,
		Supervise:  &supervise.Policy{BaseBackoff: 200 * time.Millisecond, MaxBackoff: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	p := tb.WaitPrimaryBDN(60 * time.Second)
	if p == nil {
		t.Fatal("no primary elected")
	}
	if err := tb.WaitConverged(ConvergeOptions{Timeout: 30 * time.Second}); err != nil {
		t.Fatalf("pre-kill convergence: %v", err)
	}

	// Remember every surviving BDN's registration address before the kill.
	survivors := make(map[string]string) // name -> addr
	for _, d := range tb.BDNs {
		if d.Name() != p.Name() {
			survivors[d.Name()] = d.Addr()
		}
	}

	if !tb.KillBDN(p.Name()) {
		t.Fatalf("KillBDN(%s) found nothing to kill", p.Name())
	}

	np := tb.WaitPrimaryBDN(120 * time.Second)
	if np == nil {
		t.Fatal("no standby promoted after primary kill")
	}
	if np.Name() == p.Name() {
		t.Fatalf("dead primary %s still primary", p.Name())
	}
	if got, want := np.BrokerCount(), len(tb.Brokers); got != want {
		t.Fatalf("promoted primary holds %d registrations, want %d", got, want)
	}
	if err := tb.WaitConverged(ConvergeOptions{Timeout: 30 * time.Second}); err != nil {
		t.Fatalf("post-failover convergence: %v", err)
	}

	// Discovery still answers via the surviving cluster.
	d := tb.NewDiscoverer(simnet.SiteBloomington, "client-after-failover", discoveryConfig())
	res, err := d.Discover()
	if err != nil {
		t.Fatalf("discovery after failover: %v", err)
	}
	if res.Via != core.ViaBDN {
		t.Fatalf("Via = %s, want bdn", res.Via)
	}
	if len(res.Responses) == 0 {
		t.Fatal("no broker responses after failover")
	}

	// The whole point of replication: ZERO broker re-registrations. Each
	// broker keeps a supervised registration link per BDN; a Successes()
	// increment means the supervisor had to re-dial (and re-advertise)
	// after losing the session. The surviving BDNs never dropped theirs.
	for _, b := range tb.Brokers {
		for name, addr := range survivors {
			r := b.Supervisor(broker.SuperviseBDN, addr)
			if r == nil {
				t.Fatalf("%s has no registration supervisor for %s", b.LogicalAddress(), name)
			}
			if n := r.Successes(); n != 0 {
				t.Errorf("%s re-registered with %s %d times, want 0", b.LogicalAddress(), name, n)
			}
		}
	}
}

// TestBDNRestartRecoversFromWAL kills a single durable BDN and restarts it:
// the registration table must come back from WAL + snapshot alone — the
// brokers have no supervision and no advertisement refresh, so nothing can
// repopulate it over the network — and the recovered registrations must keep
// their original TTL deadlines (still valid right after restart, still
// swept once the original validity window lapses).
func TestBDNRestartRecoversFromWAL(t *testing.T) {
	tb, err := New(Options{
		Seed:       7,
		Topology:   topology.Unconnected,
		BDNDataDir: t.TempDir(),
		AdTTL:      5 * time.Minute,
		Brokers: []BrokerSpec{
			{Site: simnet.SiteFSU, Name: "broker-fsu", Register: true},
			{Site: simnet.SiteCardiff, Name: "broker-cardiff", Register: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	if err := tb.WaitConverged(ConvergeOptions{Timeout: 10 * time.Second}); err != nil {
		t.Fatal(err)
	}
	name := tb.BDN.Name()
	if got := tb.BDN.BrokerCount(); got != 2 {
		t.Fatalf("pre-kill BrokerCount = %d, want 2", got)
	}

	if !tb.KillBDN(name) {
		t.Fatalf("KillBDN(%s) found nothing to kill", name)
	}
	if err := tb.RestartBDN(name); err != nil {
		t.Fatalf("RestartBDN: %v", err)
	}
	d := tb.BDNByName(name)
	if d == nil {
		t.Fatal("restarted BDN not deployed")
	}

	// Immediately after restart the full table is back — recovered from the
	// WAL, not re-learned: these brokers cannot re-register.
	if got := d.BrokerCount(); got != 2 {
		t.Fatalf("post-restart BrokerCount = %d, want 2 (WAL recovery)", got)
	}

	// And discovery answers from the recovered table.
	disc := tb.NewDiscoverer(simnet.SiteBloomington, "client-after-restart", discoveryConfig())
	res, err := disc.Discover()
	if err != nil {
		t.Fatalf("discovery after restart: %v", err)
	}
	if res.BDN != name {
		t.Fatalf("answered by %q, want %q", res.BDN, name)
	}
	if len(res.Responses) != 2 {
		t.Fatalf("responses = %d, want 2", len(res.Responses))
	}

	// TTLs survived intact: the deadlines are the ORIGINAL ones, so once the
	// 5-minute validity window lapses the sweeper drops both registrations.
	tb.Net.Clock().Sleep(6 * time.Minute)
	deadline := tb.Net.Clock().Now().Add(30 * time.Second)
	for d.BrokerCount() != 0 {
		if tb.Net.Clock().Now().After(deadline) {
			t.Fatalf("recovered registrations never expired: BrokerCount = %d", d.BrokerCount())
		}
		tb.Net.Clock().Sleep(250 * time.Millisecond)
	}
}
