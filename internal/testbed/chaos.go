package testbed

import (
	"errors"
	"fmt"
	"slices"
	"time"

	"narada/internal/broker"
	"narada/internal/obs"
)

// Fault is one scripted event in a chaos schedule: at model-time offset At
// from the schedule's start, Do is applied to the testbed. Schedules express
// the paper's failure scenarios — partitions, lossy paths, broker and BDN
// crashes — as data, so tests read like timelines.
type Fault struct {
	At   time.Duration
	Name string
	Do   func(*Testbed) error
}

// PartitionFault severs all traffic between two sites.
func PartitionFault(a, b string) Fault {
	return Fault{Name: fmt.Sprintf("partition %s|%s", a, b),
		Do: func(tb *Testbed) error { tb.Net.Partition(a, b); return nil }}
}

// HealFault restores traffic between two partitioned sites.
func HealFault(a, b string) Fault {
	return Fault{Name: fmt.Sprintf("heal %s|%s", a, b),
		Do: func(tb *Testbed) error { tb.Net.Heal(a, b); return nil }}
}

// SetLossFault sets the datagram loss probability between two sites.
func SetLossFault(a, b string, p float64) Fault {
	return Fault{Name: fmt.Sprintf("loss %s|%s=%.2f", a, b, p),
		Do: func(tb *Testbed) error { tb.Net.SetLoss(a, b, p); return nil }}
}

// KillBrokerFault crashes the named broker.
func KillBrokerFault(name string) Fault {
	return Fault{Name: "kill " + name, Do: func(tb *Testbed) error {
		if !tb.KillBroker(name) {
			return fmt.Errorf("broker %s not deployed", name)
		}
		return nil
	}}
}

// RestartBrokerFault restarts a previously killed broker on its old address.
func RestartBrokerFault(name string) Fault {
	return Fault{Name: "restart " + name,
		Do: func(tb *Testbed) error { return tb.RestartBroker(name) }}
}

// KillBDNFault crashes the named BDN, losing its stored registrations.
func KillBDNFault(name string) Fault {
	return Fault{Name: "kill " + name, Do: func(tb *Testbed) error {
		if !tb.KillBDN(name) {
			return fmt.Errorf("bdn %s not deployed", name)
		}
		return nil
	}}
}

// RestartBDNFault restarts a previously killed BDN, empty, on its old address.
func RestartBDNFault(name string) Fault {
	return Fault{Name: "restart " + name,
		Do: func(tb *Testbed) error { return tb.RestartBDN(name) }}
}

// RunSchedule applies the faults in order, sleeping on the model clock
// between entries. At offsets must be non-decreasing; the first fault whose
// Do fails aborts the schedule.
func (tb *Testbed) RunSchedule(schedule []Fault) error {
	clock := tb.Net.Clock()
	elapsed := time.Duration(0)
	for _, f := range schedule {
		if f.At > elapsed {
			clock.Sleep(f.At - elapsed)
			elapsed = f.At
		}
		tb.journal.Emit(obs.EventFaultInjected, f.Name, fmt.Sprintf("at=%v", f.At))
		if err := f.Do(tb); err != nil {
			return fmt.Errorf("testbed: fault %q at %v: %w", f.Name, f.At, err)
		}
	}
	return nil
}

// ConvergeOptions bounds a WaitConverged call. All durations are model time.
type ConvergeOptions struct {
	// Timeout is the total convergence budget (default 30s).
	Timeout time.Duration
	// Poll is the re-check interval while unconverged (default 250ms).
	Poll time.Duration
	// Publish additionally requires an end-to-end probe publish to flow from
	// the last live broker to a subscriber on the first.
	Publish bool
	// PublishTimeout bounds one probe delivery attempt (default 5s).
	PublishTimeout time.Duration
}

// WaitConverged polls the fabric until the self-healing invariants hold or
// the budget runs out:
//
//   - every topology edge between two live brokers is established in both
//     directions (supervision re-dialled severed links);
//   - every live broker that registers is listed by every live BDN
//     (re-registration and periodic refresh repopulated the directories);
//   - when TTLs are in force, no dead broker is still advertised anywhere
//     (stale registrations aged out);
//   - optionally, a probe publish flows end to end across the healed fabric.
//
// The returned error wraps the last unmet invariant, so a timing-out chaos
// test names exactly what never healed.
func (tb *Testbed) WaitConverged(o ConvergeOptions) error {
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.Poll <= 0 {
		o.Poll = 250 * time.Millisecond
	}
	if o.PublishTimeout <= 0 {
		o.PublishTimeout = 5 * time.Second
	}
	clock := tb.Net.Clock()
	deadline := clock.Now().Add(o.Timeout)
	for {
		err := tb.convergenceError()
		if err == nil && o.Publish {
			err = tb.publishFlows(o.PublishTimeout)
		}
		if err == nil {
			return nil
		}
		if clock.Now().After(deadline) {
			return fmt.Errorf("testbed: not converged after %v: %w", o.Timeout, err)
		}
		clock.Sleep(o.Poll)
	}
}

// convergenceError returns nil when the structural invariants hold, else the
// first violation found.
func (tb *Testbed) convergenceError() error {
	for _, e := range tb.Edges {
		from, to := tb.BrokerByName(e.From), tb.BrokerByName(e.To)
		if from == nil || to == nil {
			continue // edges to dead brokers are expected to be down
		}
		if !slices.Contains(from.Peers(), e.To) {
			return fmt.Errorf("link %s->%s not established", e.From, e.To)
		}
		if !slices.Contains(to.Peers(), e.From) {
			return fmt.Errorf("link %s->%s not established (reverse)", e.To, e.From)
		}
	}
	// Dead-broker expiry only holds once registrations actually carry TTLs.
	ttls := tb.opts.AdTTL > 0 || tb.opts.AdvertiseTTL > 0 || tb.opts.AdvertiseInterval > 0
	for _, d := range tb.BDNs {
		listed := make(map[string]bool)
		for _, info := range d.Brokers() {
			listed[info.LogicalAddress] = true
		}
		for name, dep := range tb.brokerDeps {
			live := tb.BrokerByName(name) != nil
			switch {
			case live && dep.spec.Register && !listed[name]:
				return fmt.Errorf("broker %s not registered with %s", name, d.Name())
			case !live && ttls && listed[name]:
				return fmt.Errorf("dead broker %s still advertised by %s", name, d.Name())
			}
		}
	}
	return nil
}

// publishFlows attaches a subscriber to the first live broker and a publisher
// to the last, then requires a probe event on a fresh topic to cross the
// fabric — the user-visible definition of "healed".
func (tb *Testbed) publishFlows(timeout time.Duration) error {
	if len(tb.Brokers) == 0 {
		return errors.New("no live brokers")
	}
	sub, pub := tb.Brokers[0], tb.Brokers[len(tb.Brokers)-1]
	tb.probeSeq++
	topic := fmt.Sprintf("chaos/probe/%d", tb.probeSeq)
	clock := tb.Net.Clock()

	subSite := tb.brokerDeps[sub.LogicalAddress()].spec.Site
	pubSite := tb.brokerDeps[pub.LogicalAddress()].spec.Site
	rc, err := broker.Connect(tb.ClientNode(subSite, fmt.Sprintf("chaos-sub%d", tb.probeSeq)),
		sub.StreamAddr(), "chaos-sub")
	if err != nil {
		return fmt.Errorf("probe subscriber: %w", err)
	}
	defer rc.Close()
	if err := rc.Subscribe(topic); err != nil {
		return fmt.Errorf("probe subscribe: %w", err)
	}
	// Give the subscription time to propagate through the routed fabric.
	clock.Sleep(300 * time.Millisecond)

	pc, err := broker.Connect(tb.ClientNode(pubSite, fmt.Sprintf("chaos-pub%d", tb.probeSeq)),
		pub.StreamAddr(), "chaos-pub")
	if err != nil {
		return fmt.Errorf("probe publisher: %w", err)
	}
	defer pc.Close()
	if err := pc.Publish(topic, []byte("chaos-probe")); err != nil {
		return fmt.Errorf("probe publish: %w", err)
	}

	deadline := clock.Now().Add(timeout)
	for {
		remaining := deadline.Sub(clock.Now())
		if remaining <= 0 {
			return fmt.Errorf("probe on %s: no delivery within %v", topic, timeout)
		}
		ev, err := rc.Next(remaining)
		if err != nil {
			return fmt.Errorf("probe on %s: %w", topic, err)
		}
		if ev.Topic == topic {
			return nil
		}
	}
}
