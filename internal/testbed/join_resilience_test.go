package testbed

import (
	"testing"
	"time"

	"narada/internal/core"
	"narada/internal/simnet"
	"narada/internal/topology"
)

// TestJoinNetworkSurvivesSelectedBrokerDeath is the discovery-side resilience
// contract: a joiner discovers and links to the nearest broker; that broker
// then crashes. Once the dead broker's registration has aged out of the BDN,
// a re-run of the join MUST select a live broker — the dead one can never be
// handed out again.
func TestJoinNetworkSurvivesSelectedBrokerDeath(t *testing.T) {
	opts := chaosOptions()
	opts.Topology = topology.Unconnected
	opts.Brokers = append(PaperBrokers(),
		BrokerSpec{Site: simnet.SiteCardiff, Name: "joiner", Register: false})
	tb, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer tb.Close()

	joiner := tb.BrokerByName("joiner")
	if joiner == nil {
		t.Fatal("joiner broker not deployed")
	}

	d1 := tb.NewDiscoverer(simnet.SiteCardiff, "joiner-disc1", core.Config{})
	first, err := joiner.JoinNetwork(d1)
	if err != nil {
		t.Fatalf("first join: %v", err)
	}
	if tb.BrokerByName(first.LogicalAddress) == nil {
		t.Fatalf("first join selected unknown broker %s", first.LogicalAddress)
	}

	// The selected broker crashes. Its registration carries a TTL, so after
	// the refresh window lapses the BDN must stop advertising it.
	if !tb.KillBroker(first.LogicalAddress) {
		t.Fatalf("could not kill %s", first.LogicalAddress)
	}
	clock := tb.Net.Clock()
	deadline := clock.Now().Add(15 * time.Second)
	for {
		listed := false
		for _, info := range tb.BDN.Brokers() {
			if info.LogicalAddress == first.LogicalAddress {
				listed = true
			}
		}
		if !listed {
			break
		}
		if clock.Now().After(deadline) {
			t.Fatalf("dead broker %s still advertised after TTL window", first.LogicalAddress)
		}
		clock.Sleep(100 * time.Millisecond)
	}

	// Rediscovery after expiry: the join must succeed and must pick a broker
	// that is actually alive.
	d2 := tb.NewDiscoverer(simnet.SiteCardiff, "joiner-disc2", core.Config{})
	second, err := joiner.JoinNetwork(d2)
	if err != nil {
		t.Fatalf("rediscovery join: %v", err)
	}
	if second.LogicalAddress == first.LogicalAddress {
		t.Fatalf("rediscovery re-selected dead broker %s", first.LogicalAddress)
	}
	if tb.BrokerByName(second.LogicalAddress) == nil {
		t.Fatalf("rediscovery selected non-live broker %s", second.LogicalAddress)
	}

	// The shortlist the discoverer worked from must not contain the dead
	// broker either — the target set, not just the final pick, is clean.
	for _, info := range d2.LastTargetSet() {
		if info.LogicalAddress == first.LogicalAddress {
			t.Errorf("dead broker %s still in rediscovery target set", first.LogicalAddress)
		}
	}
}
