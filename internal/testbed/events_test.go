package testbed

import (
	"testing"
	"time"

	"narada/internal/obs"
	"narada/internal/obs/collect"
)

// TestChaosEventTimeline runs a supervised fabric against a live collector,
// kills a broker, and checks the control-plane record end to end: the
// survivors' link_down and reconnect_attempt events land on the collector's
// timeline beside the testbed's fault_injected marker, and /topology
// time-travel shows the link present just before the kill and absent after.
func TestChaosEventTimeline(t *testing.T) {
	col, err := collect.New(collect.Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("collector: %v", err)
	}
	defer col.Close()

	opts := chaosOptions()
	opts.ExportAddr = col.Addr()
	opts.ExportInterval = 20 * time.Millisecond
	tb, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer tb.Close()
	// Export shipping plus the race detector slow the fabric well below its
	// usual pace; give convergence the same budget as the post-fault waits.
	if err := tb.WaitConverged(ConvergeOptions{Timeout: 30 * time.Second}); err != nil {
		t.Fatalf("initial state: %v", err)
	}

	// The linear chain dials into broker-umn; that edge is the one whose
	// teardown the survivor will journal. Established links are journalled
	// under the peer's logical name; the supervisor redials its stream addr.
	var dialer, target string
	for _, e := range tb.Edges {
		if e.To == "broker-umn" {
			dialer, target = e.From, e.To
			break
		}
	}
	if dialer == "" {
		t.Fatalf("no edge into broker-umn in %v", tb.Edges)
	}
	targetAddr := tb.BrokerByName(target).StreamAddr()

	hasLink := func(v collect.TopologyView) bool {
		for _, l := range v.Links {
			if l.From == dialer && l.To == target {
				return true
			}
		}
		return false
	}

	// Wait for the link_up journal batch to reach the collector before the
	// kill, so the timeline holds the link's establishment.
	deadline := time.Now().Add(10 * time.Second)
	for !hasLink(col.TopologyAt(tb.Net.Clock().Now(), true)) {
		if time.Now().After(deadline) {
			t.Fatalf("collector never saw link %s -> %s; %d events retained",
				dialer, target, col.EventCount())
		}
		time.Sleep(20 * time.Millisecond)
	}

	if err := tb.RunSchedule([]Fault{at(0, KillBrokerFault(target))}); err != nil {
		t.Fatalf("schedule: %v", err)
	}

	// The kill's evidence arrives from three independent journals: the
	// testbed's fault_injected, the survivor's link_down naming the dead
	// peer, and its supervisor's reconnect_attempt failures.
	wantEvent := func(f collect.EventFilter, subject, desc string) collect.NodeEvent {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			for _, ev := range col.Events(f).Events {
				if subject == "" || ev.Subject == subject {
					return ev
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("no %s event arrived; %d events retained", desc, col.EventCount())
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	fault := wantEvent(collect.EventFilter{Node: "testbed", Type: obs.EventFaultInjected}, "", "fault_injected")
	if fault.Subject == "" {
		t.Errorf("fault_injected carries no fault name: %+v", fault)
	}
	wantEvent(collect.EventFilter{Node: dialer, Type: obs.EventLinkDown}, target,
		"link_down naming the dead peer")
	wantEvent(collect.EventFilter{Type: obs.EventReconnectAttempt}, targetAddr,
		"reconnect_attempt against the dead peer")

	// Time travel: the same store answers differently for instants either
	// side of the teardown. The peer is dead, so the journal's final word on
	// this edge is a link_down; probe just before it (after the last
	// preceding link_up) and at it — instants taken from the journal's own
	// aligned stamps, immune to skew residual and model-clock races.
	var lastDown, lastUp, curUp time.Time
	for _, ev := range col.Events(collect.EventFilter{Node: dialer}).Events {
		if ev.Subject != target {
			continue
		}
		switch ev.Type {
		case obs.EventLinkUp:
			curUp = ev.AtAligned
		case obs.EventLinkDown:
			lastUp, lastDown = curUp, ev.AtAligned
		}
	}
	if lastDown.IsZero() || lastUp.IsZero() || !lastUp.Before(lastDown) {
		t.Fatalf("no link_up < link_down pair for %s -> %s (up=%v down=%v)",
			dialer, target, lastUp, lastDown)
	}
	preKill := lastUp.Add(lastDown.Sub(lastUp) / 2)
	if v := col.TopologyAt(preKill, false); !hasLink(v) {
		t.Errorf("topology at pre-kill %v lost the link: %+v", preKill, v.Links)
	}
	if v := col.TopologyAt(lastDown, false); hasLink(v) {
		t.Errorf("topology at teardown %v still shows the link: %+v", lastDown, v.Links)
	}
}
