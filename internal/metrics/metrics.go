// Package metrics implements the usage-metric side of broker selection. A
// BrokerDiscoveryResponse "contains the total memory available to the broker,
// the total amount of used memory, the number of links the broker is
// connected to and possibly the CPU load at the broker"; the requesting node
// weighs these with configurable factors to shortlist its target set, which
// is what makes newly added (idle) brokers preferentially utilised.
package metrics

import (
	"runtime"
	"sync"

	"narada/internal/wire"
)

// Usage is a snapshot of a broker's load, carried in every discovery
// response.
type Usage struct {
	TotalMemBytes uint64  // total memory available to the broker process
	UsedMemBytes  uint64  // memory currently in use
	Links         int     // active concurrent connections (links + clients)
	CPULoad       float64 // [0, 1] utilisation
}

// FreeMemBytes returns the memory headroom.
func (u Usage) FreeMemBytes() uint64 {
	if u.UsedMemBytes > u.TotalMemBytes {
		return 0
	}
	return u.TotalMemBytes - u.UsedMemBytes
}

// Encode appends the usage fields with the wire codec.
func (u Usage) Encode(w *wire.Writer) {
	w.Uvarint(u.TotalMemBytes)
	w.Uvarint(u.UsedMemBytes)
	w.Varint(int64(u.Links))
	w.Float64(u.CPULoad)
}

// DecodeUsage reads usage fields written by Encode.
func DecodeUsage(r *wire.Reader) Usage {
	return Usage{
		TotalMemBytes: r.Uvarint(),
		UsedMemBytes:  r.Uvarint(),
		Links:         int(r.Varint()),
		CPULoad:       r.Float64(),
	}
}

// Weights holds the configurable weighting factors from the paper's §9
// pseudocode. Higher weight is better for the broker.
//
//	weight += (freeMem / totalMem) * FreeToTotalMemory   // higher the better
//	weight += (totalMem / 1 MiB)   * TotalMemory         // higher the better
//	weight -= numLinks             * NumLinks            // lower the better
//	weight -= cpuLoad              * CPULoad             // lower the better
type Weights struct {
	FreeToTotalMemory float64
	TotalMemory       float64
	NumLinks          float64
	CPULoad           float64
}

// DefaultWeights mirrors the paper's emphasis: prefer idle, well-provisioned
// brokers, penalise heavily linked or loaded ones.
func DefaultWeights() Weights {
	return Weights{
		FreeToTotalMemory: 10,
		TotalMemory:       0.001, // per MiB: 1 GiB contributes ~1.0
		NumLinks:          0.5,
		CPULoad:           5,
	}
}

// Score computes the selection weight of a broker with the given usage.
func (w Weights) Score(u Usage) float64 {
	weight := 0.0
	if u.TotalMemBytes > 0 {
		weight += float64(u.FreeMemBytes()) / float64(u.TotalMemBytes) * w.FreeToTotalMemory
		weight += float64(u.TotalMemBytes) / (1024 * 1024) * w.TotalMemory
	}
	weight -= float64(u.Links) * w.NumLinks
	weight -= u.CPULoad * w.CPULoad
	return weight
}

// Sampler produces Usage snapshots for a broker.
type Sampler interface {
	Sample() Usage
}

// RuntimeSampler reports real Go-runtime memory statistics; Links and CPULoad
// are supplied by the broker via the setters. Used by live deployments.
type RuntimeSampler struct {
	mu      sync.Mutex
	links   int
	cpuLoad float64
}

// NewRuntimeSampler returns a Sampler backed by runtime.MemStats.
func NewRuntimeSampler() *RuntimeSampler { return &RuntimeSampler{} }

// SetLinks records the broker's current connection count.
func (s *RuntimeSampler) SetLinks(n int) {
	s.mu.Lock()
	s.links = n
	s.mu.Unlock()
}

// SetCPULoad records the broker's current CPU utilisation in [0, 1].
func (s *RuntimeSampler) SetCPULoad(l float64) {
	s.mu.Lock()
	s.cpuLoad = l
	s.mu.Unlock()
}

// Sample implements Sampler.
func (s *RuntimeSampler) Sample() Usage {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.mu.Lock()
	defer s.mu.Unlock()
	return Usage{
		TotalMemBytes: m.Sys,
		UsedMemBytes:  m.HeapInuse + m.StackInuse,
		Links:         s.links,
		CPULoad:       s.cpuLoad,
	}
}

// StaticSampler reports a fixed memory/CPU profile with a live link count;
// the simulator gives each broker one so experiments control load precisely.
type StaticSampler struct {
	mu    sync.Mutex
	usage Usage
}

// NewStaticSampler returns a Sampler with a fixed profile.
func NewStaticSampler(u Usage) *StaticSampler { return &StaticSampler{usage: u} }

// SetLinks updates the link count reported by subsequent samples.
func (s *StaticSampler) SetLinks(n int) {
	s.mu.Lock()
	s.usage.Links = n
	s.mu.Unlock()
}

// SetCPULoad updates the CPU load reported by subsequent samples.
func (s *StaticSampler) SetCPULoad(l float64) {
	s.mu.Lock()
	s.usage.CPULoad = l
	s.mu.Unlock()
}

// SetUsedMem updates the used-memory figure reported by subsequent samples.
func (s *StaticSampler) SetUsedMem(b uint64) {
	s.mu.Lock()
	s.usage.UsedMemBytes = b
	s.mu.Unlock()
}

// Sample implements Sampler.
func (s *StaticSampler) Sample() Usage {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.usage
}
