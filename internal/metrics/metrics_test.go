package metrics

import (
	"testing"
	"testing/quick"

	"narada/internal/wire"
)

const mib = 1024 * 1024

func TestFreeMem(t *testing.T) {
	u := Usage{TotalMemBytes: 100, UsedMemBytes: 30}
	if u.FreeMemBytes() != 70 {
		t.Fatalf("FreeMemBytes = %d", u.FreeMemBytes())
	}
	over := Usage{TotalMemBytes: 10, UsedMemBytes: 20}
	if over.FreeMemBytes() != 0 {
		t.Fatalf("over-used FreeMemBytes = %d, want 0", over.FreeMemBytes())
	}
}

func TestUsageCodecRoundTrip(t *testing.T) {
	f := func(total, used uint64, links int32, load float64) bool {
		u := Usage{TotalMemBytes: total, UsedMemBytes: used, Links: int(links), CPULoad: load}
		w := wire.NewWriter(0)
		u.Encode(w)
		r := wire.NewReader(w.Bytes())
		got := DecodeUsage(r)
		if r.Finish() != nil {
			return false
		}
		return got == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScoreIdleBeatsLoaded(t *testing.T) {
	w := DefaultWeights()
	idle := Usage{TotalMemBytes: 512 * mib, UsedMemBytes: 32 * mib, Links: 0, CPULoad: 0.02}
	loaded := Usage{TotalMemBytes: 512 * mib, UsedMemBytes: 480 * mib, Links: 40, CPULoad: 0.9}
	if w.Score(idle) <= w.Score(loaded) {
		t.Fatalf("idle (%.2f) did not beat loaded (%.2f)", w.Score(idle), w.Score(loaded))
	}
}

func TestScoreMonotonicInLinks(t *testing.T) {
	// Adding links must never improve the score (the paper: lower the better).
	w := DefaultWeights()
	f := func(total uint64, links uint8) bool {
		base := Usage{TotalMemBytes: total, Links: int(links)}
		more := base
		more.Links++
		return w.Score(more) <= w.Score(base)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScoreMonotonicInFreeMemory(t *testing.T) {
	w := DefaultWeights()
	f := func(used uint16) bool {
		total := uint64(64 * mib)
		u := uint64(used) % total
		less := Usage{TotalMemBytes: total, UsedMemBytes: u}
		more := Usage{TotalMemBytes: total, UsedMemBytes: u / 2}
		return w.Score(more) >= w.Score(less)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScoreBiggerMemoryPreferred(t *testing.T) {
	w := DefaultWeights()
	small := Usage{TotalMemBytes: 256 * mib}
	big := Usage{TotalMemBytes: 2048 * mib}
	if w.Score(big) <= w.Score(small) {
		t.Fatal("bigger total memory not preferred")
	}
}

func TestScoreZeroMemorySafe(t *testing.T) {
	w := DefaultWeights()
	got := w.Score(Usage{Links: 3, CPULoad: 0.5})
	want := -3*w.NumLinks - 0.5*w.CPULoad
	if got != want {
		t.Fatalf("Score = %v, want %v (no NaN/Inf from zero memory)", got, want)
	}
}

func TestRuntimeSampler(t *testing.T) {
	s := NewRuntimeSampler()
	s.SetLinks(7)
	s.SetCPULoad(0.25)
	u := s.Sample()
	if u.Links != 7 || u.CPULoad != 0.25 {
		t.Fatalf("sampler did not carry setters: %+v", u)
	}
	if u.TotalMemBytes == 0 {
		t.Fatal("runtime sampler reported zero total memory")
	}
	if u.UsedMemBytes > u.TotalMemBytes {
		t.Fatalf("used %d > total %d", u.UsedMemBytes, u.TotalMemBytes)
	}
}

func TestStaticSampler(t *testing.T) {
	s := NewStaticSampler(Usage{TotalMemBytes: 512 * mib, UsedMemBytes: 100 * mib})
	s.SetLinks(3)
	s.SetCPULoad(0.1)
	s.SetUsedMem(200 * mib)
	u := s.Sample()
	if u.Links != 3 || u.CPULoad != 0.1 || u.UsedMemBytes != 200*mib {
		t.Fatalf("static sampler state wrong: %+v", u)
	}
	// Samples are snapshots, not references.
	s.SetLinks(9)
	if u.Links != 3 {
		t.Fatal("previous sample mutated by setter")
	}
}

func BenchmarkScore(b *testing.B) {
	w := DefaultWeights()
	u := Usage{TotalMemBytes: 512 * mib, UsedMemBytes: 128 * mib, Links: 12, CPULoad: 0.3}
	for i := 0; i < b.N; i++ {
		_ = w.Score(u)
	}
}
