package security

import (
	"errors"
	"testing"

	"narada/internal/core"
	"narada/internal/uuid"
)

// testPKI builds a CA with two identities once; RSA keygen is slow.
type testPKI struct {
	ca     *CA
	client *Identity
	broker *Identity
}

var pki *testPKI

func getPKI(t testing.TB) *testPKI {
	t.Helper()
	if pki != nil {
		return pki
	}
	ca, err := NewCA("narada-test-ca", 0)
	if err != nil {
		t.Fatal(err)
	}
	client, err := ca.Issue("client-bloomington", 0)
	if err != nil {
		t.Fatal(err)
	}
	broker, err := ca.Issue("broker-fsu", 0)
	if err != nil {
		t.Fatal(err)
	}
	pki = &testPKI{ca: ca, client: client, broker: broker}
	return pki
}

func TestValidateCert(t *testing.T) {
	p := getPKI(t)
	cert, err := ValidateCert(p.client.Cert.Raw, p.ca.Pool())
	if err != nil {
		t.Fatal(err)
	}
	if cert.Subject.CommonName != "client-bloomington" {
		t.Fatalf("CN = %q", cert.Subject.CommonName)
	}
}

func TestValidateCertRejectsUnknownCA(t *testing.T) {
	p := getPKI(t)
	otherCA, err := NewCA("rogue-ca", 0)
	if err != nil {
		t.Fatal(err)
	}
	rogue, err := otherCA.Issue("impostor", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateCert(rogue.Cert.Raw, p.ca.Pool()); err == nil {
		t.Fatal("certificate from unknown CA accepted")
	}
}

func TestValidateCertRejectsGarbage(t *testing.T) {
	p := getPKI(t)
	if _, err := ValidateCert([]byte{0x30, 0x01, 0x00}, p.ca.Pool()); err == nil {
		t.Fatal("garbage DER accepted")
	}
}

func TestValidateCertRejectsCAAsClient(t *testing.T) {
	p := getPKI(t)
	// The CA cert lacks client-auth EKU; direct client validation of it
	// must fail even though it chains to itself.
	if _, err := ValidateCert(p.ca.Cert.Raw, p.ca.Pool()); err == nil {
		t.Fatal("CA certificate accepted as a client certificate")
	}
}

func TestSignVerify(t *testing.T) {
	p := getPKI(t)
	msg := []byte("BrokerDiscoveryRequest payload")
	sig, err := Sign(p.client, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p.client.Cert, msg, sig); err != nil {
		t.Fatal(err)
	}
	if err := Verify(p.client.Cert, append(msg, 'x'), sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered message verified: %v", err)
	}
	if err := Verify(p.broker.Cert, msg, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong key verified: %v", err)
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	p := getPKI(t)
	req := &core.DiscoveryRequest{
		ID:           uuid.New(),
		Requester:    "client-bloomington",
		ResponseAddr: "bloomington/client:9000",
	}
	body := core.EncodeDiscoveryRequest(req)
	sealed, err := Seal(p.client, p.broker.Cert, body)
	if err != nil {
		t.Fatal(err)
	}
	got, senderCert, err := Open(p.broker, p.ca.Pool(), sealed)
	if err != nil {
		t.Fatal(err)
	}
	if senderCert.Subject.CommonName != "client-bloomington" {
		t.Fatalf("sender CN = %q", senderCert.Subject.CommonName)
	}
	decoded, err := core.DecodeDiscoveryRequest(got)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.ID != req.ID {
		t.Fatal("request identity lost through seal/open")
	}
}

func TestOpenRejectsWrongRecipient(t *testing.T) {
	p := getPKI(t)
	sealed, err := Seal(p.client, p.broker.Cert, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	// The client cannot open traffic encrypted to the broker.
	if _, _, err := Open(p.client, p.ca.Pool(), sealed); err == nil {
		t.Fatal("wrong recipient decrypted the envelope")
	}
}

func TestOpenRejectsTamperedCiphertext(t *testing.T) {
	p := getPKI(t)
	sealed, err := Seal(p.client, p.broker.Cert, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	sealed.Ciphertext[0] ^= 0xFF
	if _, _, err := Open(p.broker, p.ca.Pool(), sealed); err == nil {
		t.Fatal("tampered ciphertext accepted")
	}
}

func TestOpenRejectsUntrustedSender(t *testing.T) {
	p := getPKI(t)
	rogueCA, _ := NewCA("rogue", 0)
	rogue, _ := rogueCA.Issue("impostor", 0)
	sealed, err := Seal(rogue, p.broker.Cert, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(p.broker, p.ca.Pool(), sealed); err == nil {
		t.Fatal("envelope from untrusted sender accepted")
	}
}

func TestSealedCodecRoundTrip(t *testing.T) {
	p := getPKI(t)
	sealed, err := Seal(p.client, p.broker.Cert, []byte("body"))
	if err != nil {
		t.Fatal(err)
	}
	blob := EncodeSealed(sealed)
	got, err := DecodeSealed(blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(p.broker, p.ca.Pool(), got); err != nil {
		t.Fatalf("decoded envelope failed to open: %v", err)
	}
	if _, err := DecodeSealed(blob[:len(blob)-2]); err == nil {
		t.Fatal("truncated envelope accepted")
	}
}

func TestPolicyVerifierIntegration(t *testing.T) {
	// A broker response policy backed by certificate validation: the
	// credential bytes are the requester's DER certificate.
	p := getPKI(t)
	pool := p.ca.Pool()
	policy := core.ResponsePolicy{Verifier: func(cred []byte) bool {
		_, err := ValidateCert(cred, pool)
		return err == nil
	}}
	good := &core.DiscoveryRequest{ID: uuid.New(), Credentials: p.client.Cert.Raw}
	if !policy.Permits(good) {
		t.Fatal("certified requester denied")
	}
	bad := &core.DiscoveryRequest{ID: uuid.New(), Credentials: []byte("nope")}
	if policy.Permits(bad) {
		t.Fatal("bogus credential permitted")
	}
}

func BenchmarkValidateCert(b *testing.B) {
	p := getPKI(b)
	pool := p.ca.Pool()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ValidateCert(p.client.Cert.Raw, pool); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSealOpen(b *testing.B) {
	p := getPKI(b)
	body := core.EncodeDiscoveryRequest(&core.DiscoveryRequest{
		ID: uuid.New(), Requester: "bench", ResponseAddr: "x/y:1",
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sealed, err := Seal(p.client, p.broker.Cert, body)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := Open(p.broker, p.ca.Pool(), sealed); err != nil {
			b.Fatal(err)
		}
	}
}
