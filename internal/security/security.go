// Package security implements the paper's §9.1 protection of the discovery
// process: "a discovery request and response may be secured by sending
// credentials verifying the authenticity of the clients and also encrypting
// the discovery request and response... the broker and client may be
// augmented with digital certificates and PKI authentication schemes."
//
// Concretely it provides:
//
//   - a miniature certificate authority issuing X.509 certificates
//     (Figure 13 times the validation of such a certificate);
//   - digital signatures (RSA-PKCS#1v1.5 over SHA-256) binding a discovery
//     request to the holder of a certificate;
//   - hybrid encryption (RSA-OAEP key transport + AES-256-GCM) of the
//     request body (Figure 14 times sign+encrypt and decrypt+verify).
package security

import (
	"crypto"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"math/big"
	"time"

	"narada/internal/wire"
)

// DefaultKeyBits matches 2005-era deployments (and keeps test time sane).
const DefaultKeyBits = 1024

// Errors returned by validation and decryption.
var (
	ErrBadSignature = errors.New("security: signature verification failed")
	ErrBadEnvelope  = errors.New("security: malformed encrypted envelope")
)

// Identity is a certified principal: a private key plus its certificate.
type Identity struct {
	Name string
	Key  *rsa.PrivateKey
	Cert *x509.Certificate
}

// CA is a miniature certificate authority.
type CA struct {
	Identity
	nextSerial int64
}

// NewCA creates a self-signed certificate authority.
func NewCA(name string, bits int) (*CA, error) {
	if bits <= 0 {
		bits = DefaultKeyBits
	}
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("security: generating CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: name, Organization: []string{"NaradaBrokering"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("security: self-signing CA: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &CA{Identity: Identity{Name: name, Key: key, Cert: cert}, nextSerial: 2}, nil
}

// Issue creates a leaf certificate for a principal.
func (ca *CA) Issue(name string, bits int) (*Identity, error) {
	if bits <= 0 {
		bits = DefaultKeyBits
	}
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("security: generating key for %s: %w", name, err)
	}
	ca.nextSerial++
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(ca.nextSerial),
		Subject:      pkix.Name{CommonName: name},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(365 * 24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.Cert, &key.PublicKey, ca.Key)
	if err != nil {
		return nil, fmt.Errorf("security: issuing cert for %s: %w", name, err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Identity{Name: name, Key: key, Cert: cert}, nil
}

// Pool returns an x509.CertPool trusting this CA.
func (ca *CA) Pool() *x509.CertPool {
	pool := x509.NewCertPool()
	pool.AddCert(ca.Cert)
	return pool
}

// ValidateCert verifies a client's identity: the DER certificate must chain
// to the trusted roots and carry the client-auth usage. This is the operation
// Figure 13 times.
func ValidateCert(der []byte, roots *x509.CertPool) (*x509.Certificate, error) {
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("security: parsing certificate: %w", err)
	}
	if cert.IsCA {
		return nil, errors.New("security: CA certificate presented as a client identity")
	}
	_, err = cert.Verify(x509.VerifyOptions{
		Roots:     roots,
		KeyUsages: []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth},
	})
	if err != nil {
		return nil, fmt.Errorf("security: certificate verification: %w", err)
	}
	return cert, nil
}

// Sign produces an RSA-SHA256 signature over msg.
func Sign(id *Identity, msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	return rsa.SignPKCS1v15(rand.Reader, id.Key, crypto.SHA256, digest[:])
}

// Verify checks an RSA-SHA256 signature with the certificate's public key.
func Verify(cert *x509.Certificate, msg, sig []byte) error {
	pub, ok := cert.PublicKey.(*rsa.PublicKey)
	if !ok {
		return errors.New("security: certificate holds a non-RSA key")
	}
	digest := sha256.Sum256(msg)
	if err := rsa.VerifyPKCS1v15(pub, crypto.SHA256, digest[:], sig); err != nil {
		return ErrBadSignature
	}
	return nil
}

// SealedRequest is a signed and encrypted discovery request in transit:
// the sender's certificate (for authentication), an RSA-OAEP-wrapped AES key
// and the AES-GCM ciphertext of body||signature.
type SealedRequest struct {
	SenderCert []byte // DER
	WrappedKey []byte // RSA-OAEP(AES key)
	Nonce      []byte
	Ciphertext []byte // AES-GCM(body || sig), sig length prefixed
}

// Seal signs body with the sender's key and encrypts body+signature to the
// recipient certificate — the "digitally sign and encrypt" operation of
// Figure 14.
func Seal(sender *Identity, recipient *x509.Certificate, body []byte) (*SealedRequest, error) {
	sig, err := Sign(sender, body)
	if err != nil {
		return nil, err
	}
	plain := wire.NewWriter(len(body) + len(sig) + 16)
	plain.BytesField(body)
	plain.BytesField(sig)

	aesKey := make([]byte, 32)
	if _, err := rand.Read(aesKey); err != nil {
		return nil, err
	}
	block, err := aes.NewCipher(aesKey)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	ciphertext := gcm.Seal(nil, nonce, plain.Bytes(), nil)

	recipPub, ok := recipient.PublicKey.(*rsa.PublicKey)
	if !ok {
		return nil, errors.New("security: recipient certificate holds a non-RSA key")
	}
	wrapped, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, recipPub, aesKey, nil)
	if err != nil {
		return nil, err
	}
	return &SealedRequest{
		SenderCert: sender.Cert.Raw,
		WrappedKey: wrapped,
		Nonce:      nonce,
		Ciphertext: ciphertext,
	}, nil
}

// Open decrypts a sealed request with the recipient's key, validates the
// sender certificate against the trusted roots and verifies the signature —
// the "later extract" operation of Figure 14. It returns the plaintext body
// and the authenticated sender certificate.
func Open(recipient *Identity, roots *x509.CertPool, sealed *SealedRequest) ([]byte, *x509.Certificate, error) {
	senderCert, err := ValidateCert(sealed.SenderCert, roots)
	if err != nil {
		return nil, nil, err
	}
	aesKey, err := rsa.DecryptOAEP(sha256.New(), rand.Reader, recipient.Key, sealed.WrappedKey, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("security: unwrapping key: %w", err)
	}
	block, err := aes.NewCipher(aesKey)
	if err != nil {
		return nil, nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, nil, err
	}
	plain, err := gcm.Open(nil, sealed.Nonce, sealed.Ciphertext, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("security: decrypting: %w", err)
	}
	r := wire.NewReader(plain)
	body := r.BytesField()
	sig := r.BytesField()
	if err := r.Finish(); err != nil {
		return nil, nil, ErrBadEnvelope
	}
	if err := Verify(senderCert, body, sig); err != nil {
		return nil, nil, err
	}
	return body, senderCert, nil
}

// EncodeSealed serialises a sealed request with the wire codec.
func EncodeSealed(s *SealedRequest) []byte {
	w := wire.NewWriter(len(s.SenderCert) + len(s.Ciphertext) + 64)
	w.BytesField(s.SenderCert)
	w.BytesField(s.WrappedKey)
	w.BytesField(s.Nonce)
	w.BytesField(s.Ciphertext)
	return w.Bytes()
}

// DecodeSealed parses a sealed request.
func DecodeSealed(b []byte) (*SealedRequest, error) {
	r := wire.NewReader(b)
	s := &SealedRequest{
		SenderCert: r.BytesField(),
		WrappedKey: r.BytesField(),
		Nonce:      r.BytesField(),
		Ciphertext: r.BytesField(),
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("security: %w", err)
	}
	return s, nil
}
