package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"narada/internal/ntptime"
)

// MaxFrame bounds a single TCP frame (matches wire.MaxBytesLen plus headroom
// for the envelope).
const MaxFrame = 1<<24 + 1024

// DefaultMulticastGroups maps symbolic group names used by the protocol to
// concrete IP multicast addresses for real deployments.
var DefaultMulticastGroups = map[string]string{
	"narada/discovery": "239.192.77.77:45454",
}

// RealNode is the Node implementation over the operating system's sockets.
type RealNode struct {
	bindIP string
	clock  ntptime.SystemClock
	groups map[string]string
}

// NewRealNode creates a socket-backed node binding to bindIP ("" means all
// interfaces, "127.0.0.1" keeps everything loopback-local). groups may be nil
// to use DefaultMulticastGroups.
func NewRealNode(bindIP string, groups map[string]string) *RealNode {
	if groups == nil {
		groups = DefaultMulticastGroups
	}
	return &RealNode{bindIP: bindIP, groups: groups}
}

// Clock implements Node.
func (n *RealNode) Clock() ntptime.Clock { return n.clock }

// ListenPacket implements Node.
func (n *RealNode) ListenPacket(port int) (PacketConn, error) {
	addr := &net.UDPAddr{IP: net.ParseIP(n.bindIP), Port: port}
	uc, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, err
	}
	return &realPacketConn{node: n, uc: uc}, nil
}

// Listen implements Node.
func (n *RealNode) Listen(port int) (Listener, error) {
	l, err := net.Listen("tcp", fmt.Sprintf("%s:%d", n.bindIP, port))
	if err != nil {
		return nil, err
	}
	return &realListener{l: l}, nil
}

// Dial implements Node.
func (n *RealNode) Dial(addr string) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	return newRealConn(c), nil
}

type realPacketConn struct {
	node *RealNode
	uc   *net.UDPConn

	mu     sync.Mutex
	joined map[string]*net.UDPConn // group name -> multicast reader
	inbox  chan packet
	once   sync.Once
}

type packet struct {
	payload []byte
	from    string
}

func (p *realPacketConn) Send(to string, payload []byte) error {
	addr, err := net.ResolveUDPAddr("udp", to)
	if err != nil {
		return err
	}
	_, err = p.uc.WriteToUDP(payload, addr)
	return translateNetErr(err)
}

func (p *realPacketConn) Recv() ([]byte, string, error) {
	return p.recv(0)
}

func (p *realPacketConn) RecvTimeout(d time.Duration) ([]byte, string, error) {
	return p.recv(d)
}

// recv reads from the unicast socket or, when groups are joined, from the
// merged inbox fed by reader goroutines.
func (p *realPacketConn) recv(d time.Duration) ([]byte, string, error) {
	p.mu.Lock()
	inbox := p.inbox
	p.mu.Unlock()
	if inbox != nil {
		var timer <-chan time.Time
		if d > 0 {
			timer = time.After(d)
		}
		select {
		case pkt, ok := <-inbox:
			if !ok {
				return nil, "", ErrClosed
			}
			return pkt.payload, pkt.from, nil
		case <-timer:
			return nil, "", ErrTimeout
		}
	}
	if d > 0 {
		if err := p.uc.SetReadDeadline(time.Now().Add(d)); err != nil {
			return nil, "", err
		}
		defer p.uc.SetReadDeadline(time.Time{}) //nolint:errcheck
	}
	buf := make([]byte, 65536)
	n, from, err := p.uc.ReadFromUDP(buf)
	if err != nil {
		return nil, "", translateNetErr(err)
	}
	return buf[:n], from.String(), nil
}

func (p *realPacketConn) LocalAddr() string { return p.uc.LocalAddr().String() }

func (p *realPacketConn) groupAddr(group string) (string, error) {
	if a, ok := p.node.groups[group]; ok {
		return a, nil
	}
	// Allow literal "ip:port" groups.
	if _, err := net.ResolveUDPAddr("udp", group); err == nil {
		return group, nil
	}
	return "", fmt.Errorf("transport: unknown multicast group %q", group)
}

func (p *realPacketConn) JoinGroup(group string) error {
	addrStr, err := p.groupAddr(group)
	if err != nil {
		return err
	}
	gaddr, err := net.ResolveUDPAddr("udp", addrStr)
	if err != nil {
		return err
	}
	mc, err := net.ListenMulticastUDP("udp", nil, gaddr)
	if err != nil {
		return err
	}
	p.mu.Lock()
	if p.joined == nil {
		p.joined = make(map[string]*net.UDPConn)
	}
	if _, dup := p.joined[group]; dup {
		p.mu.Unlock()
		_ = mc.Close()
		return nil
	}
	p.joined[group] = mc
	if p.inbox == nil {
		p.inbox = make(chan packet, 256)
		go p.pumpUnicast()
	}
	inbox := p.inbox
	p.mu.Unlock()
	go pumpReader(mc, inbox)
	return nil
}

// pumpUnicast forwards unicast datagrams into the merged inbox once
// multicast readers exist.
func (p *realPacketConn) pumpUnicast() {
	pumpReader(p.uc, p.inbox)
}

func pumpReader(uc *net.UDPConn, inbox chan packet) {
	buf := make([]byte, 65536)
	for {
		n, from, err := uc.ReadFromUDP(buf)
		if err != nil {
			return
		}
		payload := append([]byte(nil), buf[:n]...)
		select {
		case inbox <- packet{payload: payload, from: from.String()}:
		default: // inbox overflow: drop like a kernel buffer
		}
	}
}

func (p *realPacketConn) LeaveGroup(group string) error {
	p.mu.Lock()
	mc, ok := p.joined[group]
	delete(p.joined, group)
	p.mu.Unlock()
	if ok {
		return mc.Close()
	}
	return nil
}

func (p *realPacketConn) SendGroup(group string, payload []byte) error {
	addrStr, err := p.groupAddr(group)
	if err != nil {
		return err
	}
	return p.Send(addrStr, payload)
}

func (p *realPacketConn) Close() error {
	var err error
	p.once.Do(func() {
		p.mu.Lock()
		for _, mc := range p.joined {
			_ = mc.Close()
		}
		p.joined = nil
		p.mu.Unlock()
		err = p.uc.Close()
	})
	return err
}

// realConn frames messages over TCP with a 4-byte big-endian length prefix.
type realConn struct {
	c       net.Conn
	readMu  sync.Mutex
	writeMu sync.Mutex

	// Batch-write scratch, guarded by writeMu: headers for every frame of a
	// batch and the vectored-write view over headers and payloads.
	batchHdrs []byte
	batchBufs net.Buffers
}

func newRealConn(c net.Conn) *realConn { return &realConn{c: c} }

func (c *realConn) Send(payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if _, err := c.c.Write(hdr[:]); err != nil {
		return translateNetErr(err)
	}
	_, err := c.c.Write(payload)
	return translateNetErr(err)
}

// SendBatch implements BatchSender: all frames (each with its length prefix)
// leave in one vectored write, so a coalescing egress writer pays one
// syscall per flush instead of two per frame. The header scratch may regrow
// mid-loop; slices into the old backing array keep their bytes, so the
// already-collected views stay valid.
func (c *realConn) SendBatch(frames [][]byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	hdrs := c.batchHdrs[:0]
	bufs := c.batchBufs[:0]
	for _, p := range frames {
		if len(p) > MaxFrame {
			return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(p))
		}
		off := len(hdrs)
		hdrs = binary.BigEndian.AppendUint32(hdrs, uint32(len(p)))
		bufs = append(bufs, hdrs[off:off+4], p)
	}
	c.batchHdrs = hdrs[:0]
	c.batchBufs = bufs[:0]
	_, err := bufs.WriteTo(c.c)
	return translateNetErr(err)
}

func (c *realConn) Recv() ([]byte, error) { return c.recv(0) }

func (c *realConn) RecvTimeout(d time.Duration) ([]byte, error) { return c.recv(d) }

func (c *realConn) recv(d time.Duration) ([]byte, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	if d > 0 {
		if err := c.c.SetReadDeadline(time.Now().Add(d)); err != nil {
			return nil, err
		}
		defer c.c.SetReadDeadline(time.Time{}) //nolint:errcheck
	}
	var hdr [4]byte
	if _, err := io.ReadFull(c.c, hdr[:]); err != nil {
		return nil, translateNetErr(err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: incoming frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.c, payload); err != nil {
		return nil, translateNetErr(err)
	}
	return payload, nil
}

func (c *realConn) LocalAddr() string  { return c.c.LocalAddr().String() }
func (c *realConn) RemoteAddr() string { return c.c.RemoteAddr().String() }
func (c *realConn) Close() error       { return c.c.Close() }

type realListener struct{ l net.Listener }

func (l *realListener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, translateNetErr(err)
	}
	return newRealConn(c), nil
}

func (l *realListener) Addr() string { return l.l.Addr().String() }
func (l *realListener) Close() error { return l.l.Close() }

// translateNetErr maps net errors onto the transport vocabulary.
func translateNetErr(err error) error {
	if err == nil {
		return nil
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return ErrTimeout
	}
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) {
		return ErrClosed
	}
	return err
}
