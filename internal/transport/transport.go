// Package transport abstracts the communication substrate so that brokers,
// BDNs and discovery clients run unchanged over the in-process WAN simulator
// (internal/simnet) or over real TCP/UDP sockets.
//
// Addresses are opaque strings: "site/host:port" in the simulator,
// "ip:port" for real sockets. Two delivery services mirror the paper's
// transport usage:
//
//   - PacketConn: unreliable datagrams (UDP) — discovery responses, pings
//     and multicast fallback;
//   - Conn/Listener: reliable ordered message frames (TCP) — client/broker
//     connections, broker links, BDN registrations.
package transport

import (
	"errors"
	"time"

	"narada/internal/ntptime"
)

// Errors shared by all transports. Implementations wrap or translate their
// native errors into these.
var (
	ErrClosed  = errors.New("transport: endpoint closed")
	ErrTimeout = errors.New("transport: timeout")
)

// PacketConn is an unreliable datagram endpoint.
type PacketConn interface {
	// Send transmits one datagram; success means handed to the network.
	Send(to string, payload []byte) error
	// Recv blocks for the next datagram.
	Recv() (payload []byte, from string, err error)
	// RecvTimeout blocks for at most d (in the node clock's timescale);
	// expiry returns ErrTimeout.
	RecvTimeout(d time.Duration) (payload []byte, from string, err error)
	// LocalAddr returns the address peers should reply to.
	LocalAddr() string
	// JoinGroup subscribes to a multicast group; SendGroup multicasts to it.
	// Multicast scope is administratively limited (a realm in the simulator,
	// TTL-limited IP multicast for real sockets).
	JoinGroup(group string) error
	LeaveGroup(group string) error
	SendGroup(group string, payload []byte) error
	Close() error
}

// Conn is a reliable, ordered, message-framed connection.
type Conn interface {
	Send(payload []byte) error
	Recv() ([]byte, error)
	RecvTimeout(d time.Duration) ([]byte, error)
	LocalAddr() string
	RemoteAddr() string
	Close() error
}

// BatchSender is an optional Conn capability: transmit several frames in one
// operation (a single vectored write on real sockets). Egress writers that
// coalesce queued frames type-assert for it and fall back to per-frame Send.
// The frames slice and its buffers are only borrowed for the duration of the
// call.
type BatchSender interface {
	SendBatch(frames [][]byte) error
}

// Listener accepts incoming Conns.
type Listener interface {
	Accept() (Conn, error)
	Addr() string
	Close() error
}

// Node is one process's transport stack: its clock plus factories for
// endpoints bound to the process's network identity.
type Node interface {
	// ListenPacket opens a datagram endpoint; port 0 auto-allocates.
	ListenPacket(port int) (PacketConn, error)
	// Listen opens a stream listener; port 0 auto-allocates.
	Listen(port int) (Listener, error)
	// Dial connects to a listener address.
	Dial(addr string) (Conn, error)
	// Clock is the node's local clock (possibly skewed and/or scaled).
	Clock() ntptime.Clock
}
