package transport

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"narada/internal/simnet"
)

func newSimPair(t *testing.T) (*SimNode, *SimNode) {
	t.Helper()
	n := simnet.NewPaperWAN(simnet.Config{Scale: 500, Seed: 42})
	a := NewSimNode(n, simnet.SiteBloomington, "a", 0)
	b := NewSimNode(n, simnet.SiteFSU, "b", 5*time.Millisecond)
	return a, b
}

func TestParseSimAddr(t *testing.T) {
	a, err := ParseSimAddr("fsu/broker1:42")
	if err != nil {
		t.Fatal(err)
	}
	want := simnet.Addr{Site: "fsu", Host: "broker1", Port: 42}
	if a != want {
		t.Fatalf("got %+v", a)
	}
	if FormatSimAddr(want) != "fsu/broker1:42" {
		t.Fatalf("FormatSimAddr = %q", FormatSimAddr(want))
	}
	for _, bad := range []string{"", "nohost", "fsu/x", "x:1", "fsu/x:notaport"} {
		if _, err := ParseSimAddr(bad); err == nil {
			t.Errorf("ParseSimAddr(%q) accepted", bad)
		}
	}
}

func TestSimPacketRoundTrip(t *testing.T) {
	a, b := newSimPair(t)
	pa, err := a.ListenPacket(0)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.ListenPacket(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pa.Send(pb.LocalAddr(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	payload, from, err := pb.RecvTimeout(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "hello" || from != pa.LocalAddr() {
		t.Fatalf("got %q from %q", payload, from)
	}
}

func TestSimPacketTimeout(t *testing.T) {
	a, _ := newSimPair(t)
	pa, _ := a.ListenPacket(0)
	if _, _, err := pa.RecvTimeout(50 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestSimStreamRoundTrip(t *testing.T) {
	a, b := newSimPair(t)
	l, err := b.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		srv, err := l.Accept()
		if err != nil {
			return
		}
		for {
			msg, err := srv.Recv()
			if err != nil {
				return
			}
			if err := srv.Send(append([]byte("echo:"), msg...)); err != nil {
				return
			}
		}
	}()
	c, err := a.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got, err := c.RecvTimeout(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "echo:ping" {
		t.Fatalf("got %q", got)
	}
	_ = c.Close()
}

func TestSimMulticastViaInterface(t *testing.T) {
	n := simnet.NewPaperWAN(simnet.Config{Scale: 500, Seed: 7})
	client := NewSimNode(n, simnet.SiteBloomington, "cli", 0)
	labBroker := NewSimNode(n, simnet.SiteIndianapolis, "b1", 0)
	farBroker := NewSimNode(n, simnet.SiteCardiff, "b2", 0)

	pc, _ := client.ListenPacket(0)
	pl, _ := labBroker.ListenPacket(0)
	pf, _ := farBroker.ListenPacket(0)
	const group = "narada/discovery"
	_ = pl.JoinGroup(group)
	_ = pf.JoinGroup(group)

	if err := pc.SendGroup(group, []byte("anyone")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := pl.RecvTimeout(2 * time.Second); err != nil {
		t.Fatalf("lab broker missed multicast: %v", err)
	}
	if _, _, err := pf.RecvTimeout(200 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("realm scoping failed: %v", err)
	}
}

func TestRealPacketRoundTrip(t *testing.T) {
	node := NewRealNode("127.0.0.1", nil)
	pa, err := node.ListenPacket(0)
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Close()
	pb, err := node.ListenPacket(0)
	if err != nil {
		t.Fatal(err)
	}
	defer pb.Close()
	if err := pa.Send(pb.LocalAddr(), []byte("real-udp")); err != nil {
		t.Fatal(err)
	}
	payload, from, err := pb.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "real-udp" || from == "" {
		t.Fatalf("got %q from %q", payload, from)
	}
}

func TestRealPacketTimeout(t *testing.T) {
	node := NewRealNode("127.0.0.1", nil)
	pc, err := node.ListenPacket(0)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if _, _, err := pc.RecvTimeout(50 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestRealStreamRoundTripAndFraming(t *testing.T) {
	node := NewRealNode("127.0.0.1", nil)
	l, err := node.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		srv, err := l.Accept()
		if err != nil {
			return
		}
		defer srv.Close()
		for i := 0; i < 3; i++ {
			msg, err := srv.Recv()
			if err != nil {
				return
			}
			if err := srv.Send(msg); err != nil {
				return
			}
		}
	}()
	c, err := node.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Mixed sizes, including empty, must frame cleanly.
	for _, msg := range [][]byte{[]byte("x"), {}, make([]byte, 100000)} {
		if err := c.Send(msg); err != nil {
			t.Fatal(err)
		}
		got, err := c.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(msg) {
			t.Fatalf("echo size = %d, want %d", len(got), len(msg))
		}
	}
}

func TestRealStreamClosedPeer(t *testing.T) {
	node := NewRealNode("127.0.0.1", nil)
	l, err := node.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		srv, err := l.Accept()
		if err == nil {
			_ = srv.Close()
		}
	}()
	c, err := node.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.RecvTimeout(2 * time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestRealOversizedFrameRejected(t *testing.T) {
	node := NewRealNode("127.0.0.1", nil)
	l, _ := node.Listen(0)
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			defer c.Close()
			_, _ = c.Recv()
		}
	}()
	c, err := node.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestRealMulticastLoopback(t *testing.T) {
	// IP multicast may be unavailable in constrained environments; skip then.
	node := NewRealNode("", nil)
	recvPC, err := node.ListenPacket(0)
	if err != nil {
		t.Fatal(err)
	}
	defer recvPC.Close()
	const group = "narada/discovery"
	if err := recvPC.JoinGroup(group); err != nil {
		t.Skipf("multicast unavailable: %v", err)
	}
	sendPC, err := node.ListenPacket(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sendPC.Close()
	if err := sendPC.SendGroup(group, []byte("mc")); err != nil {
		t.Skipf("multicast send unavailable: %v", err)
	}
	payload, _, err := recvPC.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Skipf("multicast delivery unavailable: %v", err)
	}
	if string(payload) != "mc" {
		t.Fatalf("got %q", payload)
	}
}

func TestRealUnknownGroup(t *testing.T) {
	node := NewRealNode("127.0.0.1", map[string]string{})
	pc, _ := node.ListenPacket(0)
	defer pc.Close()
	if err := pc.JoinGroup("not-a-group-or-addr"); err == nil {
		t.Fatal("unknown group accepted")
	}
}

func TestNodeInterfaceCompliance(t *testing.T) {
	var _ Node = (*SimNode)(nil)
	var _ Node = (*RealNode)(nil)
}

func BenchmarkSimStreamThroughput(b *testing.B) {
	n := simnet.NewPaperWAN(simnet.Config{Scale: 1000, Seed: 1})
	a := NewSimNode(n, simnet.SiteBloomington, "a", 0)
	c := NewSimNode(n, simnet.SiteIndianapolis, "c", 0)
	l, _ := c.Listen(0)
	go func() {
		srv, err := l.Accept()
		if err != nil {
			return
		}
		for {
			if _, err := srv.Recv(); err != nil {
				return
			}
		}
	}()
	conn, err := a.Dial(l.Addr())
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.Send(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleParseSimAddr() {
	addr, _ := ParseSimAddr("cardiff/broker2:10042")
	fmt.Println(addr.Site, addr.Host, addr.Port)
	// Output: cardiff broker2 10042
}
