package transport

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"narada/internal/ntptime"
	"narada/internal/simnet"
)

// SimNode adapts a simnet host to the Node interface. Each SimNode carries
// its own (possibly skewed) clock, independent of the network's true clock.
type SimNode struct {
	net   *simnet.Network
	site  string
	host  string
	clock ntptime.Clock
}

// NewSimNode creates a node named host at the given simulator site. skew is
// the node's hardware-clock error against the network's true clock.
func NewSimNode(n *simnet.Network, site, host string, skew time.Duration) *SimNode {
	return &SimNode{net: n, site: site, host: host, clock: n.NodeClock(skew)}
}

// Site returns the node's simulator site.
func (s *SimNode) Site() string { return s.site }

// Host returns the node's name within its site.
func (s *SimNode) Host() string { return s.host }

// Clock implements Node.
func (s *SimNode) Clock() ntptime.Clock { return s.clock }

// FormatSimAddr renders a simnet address as transport address string.
func FormatSimAddr(a simnet.Addr) string { return a.String() }

// ParseSimAddr parses "site/host:port".
func ParseSimAddr(s string) (simnet.Addr, error) {
	slash := strings.IndexByte(s, '/')
	colon := strings.LastIndexByte(s, ':')
	if slash < 0 || colon < slash {
		return simnet.Addr{}, fmt.Errorf("transport: bad sim address %q", s)
	}
	port, err := strconv.Atoi(s[colon+1:])
	if err != nil {
		return simnet.Addr{}, fmt.Errorf("transport: bad port in %q", s)
	}
	return simnet.Addr{Site: s[:slash], Host: s[slash+1 : colon], Port: port}, nil
}

// translateSimErr maps simnet errors onto the transport error vocabulary.
func translateSimErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, simnet.ErrClosed):
		return ErrClosed
	case errors.Is(err, simnet.ErrTimeout):
		return ErrTimeout
	default:
		return err
	}
}

// ListenPacket implements Node.
func (s *SimNode) ListenPacket(port int) (PacketConn, error) {
	pc, err := s.net.ListenPacket(simnet.Addr{Site: s.site, Host: s.host, Port: port})
	if err != nil {
		return nil, err
	}
	return &simPacketConn{pc: pc}, nil
}

// Listen implements Node.
func (s *SimNode) Listen(port int) (Listener, error) {
	l, err := s.net.Listen(simnet.Addr{Site: s.site, Host: s.host, Port: port})
	if err != nil {
		return nil, err
	}
	return &simListener{l: l}, nil
}

// Dial implements Node.
func (s *SimNode) Dial(addr string) (Conn, error) {
	to, err := ParseSimAddr(addr)
	if err != nil {
		return nil, err
	}
	c, err := s.net.Dial(simnet.Addr{Site: s.site, Host: s.host}, to)
	if err != nil {
		return nil, translateSimErr(err)
	}
	return &simConn{c: c}, nil
}

type simPacketConn struct{ pc *simnet.PacketConn }

func (p *simPacketConn) Send(to string, payload []byte) error {
	addr, err := ParseSimAddr(to)
	if err != nil {
		return err
	}
	return translateSimErr(p.pc.Send(addr, payload))
}

func (p *simPacketConn) Recv() ([]byte, string, error) {
	pkt, err := p.pc.Recv()
	if err != nil {
		return nil, "", translateSimErr(err)
	}
	return pkt.Payload, FormatSimAddr(pkt.From), nil
}

func (p *simPacketConn) RecvTimeout(d time.Duration) ([]byte, string, error) {
	pkt, err := p.pc.RecvTimeout(d)
	if err != nil {
		return nil, "", translateSimErr(err)
	}
	return pkt.Payload, FormatSimAddr(pkt.From), nil
}

func (p *simPacketConn) LocalAddr() string { return FormatSimAddr(p.pc.Addr()) }

func (p *simPacketConn) JoinGroup(group string) error {
	p.pc.JoinGroup(group)
	return nil
}

func (p *simPacketConn) LeaveGroup(group string) error {
	p.pc.LeaveGroup(group)
	return nil
}

func (p *simPacketConn) SendGroup(group string, payload []byte) error {
	return translateSimErr(p.pc.SendGroup(group, payload))
}

func (p *simPacketConn) Close() error { return translateSimErr(p.pc.Close()) }

type simConn struct{ c *simnet.Conn }

func (c *simConn) Send(payload []byte) error { return translateSimErr(c.c.Send(payload)) }

func (c *simConn) Recv() ([]byte, error) {
	b, err := c.c.Recv()
	return b, translateSimErr(err)
}

func (c *simConn) RecvTimeout(d time.Duration) ([]byte, error) {
	b, err := c.c.RecvTimeout(d)
	return b, translateSimErr(err)
}

func (c *simConn) LocalAddr() string  { return FormatSimAddr(c.c.LocalAddr()) }
func (c *simConn) RemoteAddr() string { return FormatSimAddr(c.c.RemoteAddr()) }
func (c *simConn) Close() error       { return translateSimErr(c.c.Close()) }

type simListener struct{ l *simnet.Listener }

func (l *simListener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, translateSimErr(err)
	}
	return &simConn{c: c}, nil
}

func (l *simListener) Addr() string { return FormatSimAddr(l.l.Addr()) }
func (l *simListener) Close() error { return translateSimErr(l.l.Close()) }
