//go:build race

package experiments

// raceEnabled is true when the race detector is compiled in. Race
// instrumentation inflates real scheduling latency, so the timing-shape
// tests dilate model time to keep site-to-site delay deltas above the
// scheduler's noise floor.
const raceEnabled = true
