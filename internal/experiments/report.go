// Package experiments regenerates every table and figure of the paper's
// evaluation (section 9), plus ablations over the design choices the paper
// calls out. Each experiment is addressable by id ("fig2", "fig7",
// "abl-timeout", ...) through the Registry, runnable from cmd/nbexp and from
// the repository's benchmark suite.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"narada/internal/stats"
)

// Options parameterise an experiment run.
type Options struct {
	// Runs is the number of discovery repetitions (paper: 120).
	Runs int
	// Keep is the number of samples retained after outlier removal
	// (paper: "the first 100 results were selected after removing
	// outliers").
	Keep int
	// Scale is the simulator's model-time speed-up.
	Scale float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultOptions mirrors the paper's sampling recipe.
func DefaultOptions() Options {
	return Options{Runs: 120, Keep: 100, Scale: 200, Seed: 1}
}

func (o *Options) fillDefaults() {
	if o.Runs <= 0 {
		o.Runs = 120
	}
	if o.Keep <= 0 {
		o.Keep = 100
	}
	if o.Keep > o.Runs {
		o.Keep = o.Runs
	}
	if o.Scale <= 0 {
		o.Scale = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// paperSummary applies the paper's sampling (trim outliers at 2 sigma, keep
// the first Keep) and summarises.
func paperSummary(samples []float64, opts Options) (stats.Summary, error) {
	kept := stats.TrimOutliers(samples, opts.Keep, 2)
	return stats.Summarize(kept)
}

// Report is a rendered experiment result.
type Report struct {
	ID       string
	Title    string
	PaperRef string // the qualitative claim from the paper to compare against
	Body     string // pre-rendered table(s)
}

// WriteTo renders the report to w.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	rule := strings.Repeat("=", 72)
	fmt.Fprintf(&sb, "%s\n%s — %s\n", rule, r.ID, r.Title)
	if r.PaperRef != "" {
		fmt.Fprintf(&sb, "paper: %s\n", r.PaperRef)
	}
	fmt.Fprintf(&sb, "%s\n%s\n", rule, r.Body)
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// metricTable renders a Summary as the metric table printed under each of
// the paper's timing figures.
func metricTable(unit string, s stats.Summary) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %12s\n", "Metric", "Time ("+unit+")")
	fmt.Fprintf(&sb, "%-24s %12.2f\n", "Mean", s.Mean)
	fmt.Fprintf(&sb, "%-24s %12.2f\n", "Standard deviation", s.StdDev)
	fmt.Fprintf(&sb, "%-24s %12.2f\n", "Maximum", s.Max)
	fmt.Fprintf(&sb, "%-24s %12.2f\n", "Minimum", s.Min)
	fmt.Fprintf(&sb, "%-24s %12.2f\n", "Error", s.Err)
	fmt.Fprintf(&sb, "%-24s %12d\n", "Samples", s.N)
	return sb.String()
}

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	underline := make([]string, len(header))
	for i := range header {
		underline[i] = strings.Repeat("-", widths[i])
	}
	writeRow(underline)
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
