package experiments

import (
	"fmt"
	"time"

	"narada/internal/core"
	"narada/internal/security"
	"narada/internal/stats"
	"narada/internal/uuid"
)

// SecurityResult holds crypto-cost statistics (Figures 13 and 14). These run
// real cryptography on the host CPU (the paper used a Pentium M 2.0 GHz), so
// absolute numbers differ; the conclusion under test is the paper's: "these
// costs are acceptable in most systems which would require such a feature".
type SecurityResult struct {
	Operation string
	Summary   stats.Summary
}

// RunCertValidation times X.509 certificate validation (Figure 13): parse
// the DER certificate and verify its chain to the trusted CA.
func RunCertValidation(opts Options) (*SecurityResult, error) {
	opts.fillDefaults()
	ca, err := security.NewCA("narada-ca", 0)
	if err != nil {
		return nil, err
	}
	client, err := ca.Issue("discovery-client", 0)
	if err != nil {
		return nil, err
	}
	pool := ca.Pool()

	// Warm up (first validation pays one-time table setup).
	if _, err := security.ValidateCert(client.Cert.Raw, pool); err != nil {
		return nil, err
	}
	samples := make([]float64, 0, opts.Runs)
	for i := 0; i < opts.Runs; i++ {
		start := time.Now()
		if _, err := security.ValidateCert(client.Cert.Raw, pool); err != nil {
			return nil, err
		}
		samples = append(samples, ms(time.Since(start)))
	}
	summary, err := paperSummary(samples, opts)
	if err != nil {
		return nil, err
	}
	return &SecurityResult{Operation: "X.509 validation", Summary: summary}, nil
}

// RunSignEncrypt times the full Figure 14 round trip: digitally sign and
// encrypt a BrokerDiscoveryRequest, then decrypt it and verify the signature.
func RunSignEncrypt(opts Options) (*SecurityResult, error) {
	opts.fillDefaults()
	ca, err := security.NewCA("narada-ca", 0)
	if err != nil {
		return nil, err
	}
	client, err := ca.Issue("discovery-client", 0)
	if err != nil {
		return nil, err
	}
	broker, err := ca.Issue("responding-broker", 0)
	if err != nil {
		return nil, err
	}
	pool := ca.Pool()
	body := core.EncodeDiscoveryRequest(&core.DiscoveryRequest{
		ID:           uuid.New(),
		Requester:    "client-bloomington",
		ResponseAddr: "bloomington/client:9000",
		Protocols:    []string{"tcp", "udp"},
	})

	samples := make([]float64, 0, opts.Runs)
	for i := 0; i < opts.Runs; i++ {
		start := time.Now()
		sealed, err := security.Seal(client, broker.Cert, body)
		if err != nil {
			return nil, err
		}
		blob := security.EncodeSealed(sealed)
		decoded, err := security.DecodeSealed(blob)
		if err != nil {
			return nil, err
		}
		if _, _, err := security.Open(broker, pool, decoded); err != nil {
			return nil, err
		}
		samples = append(samples, ms(time.Since(start)))
	}
	summary, err := paperSummary(samples, opts)
	if err != nil {
		return nil, err
	}
	return &SecurityResult{Operation: "sign+encrypt / decrypt+verify", Summary: summary}, nil
}

func (r *SecurityResult) report(id, title, paperRef string) *Report {
	body := metricTable("ms", r.Summary)
	body += fmt.Sprintf("\noperation: %s (host CPU; paper used a Pentium M 2.0 GHz)\n", r.Operation)
	return &Report{ID: id, Title: title, PaperRef: paperRef, Body: body}
}
