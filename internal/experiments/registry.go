package experiments

import (
	"fmt"
	"io"
	"sort"

	"narada/internal/simnet"
	"narada/internal/topology"
)

// Runner executes one experiment and returns its report.
type Runner func(opts Options) (*Report, error)

// Registry maps experiment ids (table/figure numbers and ablations) to
// runners. The ids match DESIGN.md's experiment index.
var Registry = map[string]Runner{
	"table1": func(opts Options) (*Report, error) { return Table1Report(opts), nil },
	"fig2": func(opts Options) (*Report, error) {
		r, err := RunBreakdown(topology.Unconnected, opts)
		if err != nil {
			return nil, err
		}
		return r.report("fig2", "about 83% of the time is spent waiting for the "+
			"initial responses; BDN O(N) distribution is inefficient"), nil
	},
	"fig3": siteRunner("fig3", simnet.SiteFSU),
	"fig4": siteRunner("fig4", simnet.SiteCardiff),
	"fig5": siteRunner("fig5", simnet.SiteUMN),
	"fig6": siteRunner("fig6", simnet.SiteNCSA),
	"fig7": siteRunner("fig7", simnet.SiteBloomington),
	"fig9": func(opts Options) (*Report, error) {
		r, err := RunBreakdown(topology.Star, opts)
		if err != nil {
			return nil, err
		}
		return r.report("fig9", "time waiting for the initial set of responses "+
			"decreases significantly versus the unconnected topology"), nil
	},
	"fig11": func(opts Options) (*Report, error) {
		r, err := RunBreakdown(topology.Linear, opts)
		if err != nil {
			return nil, err
		}
		return r.report("fig11", "wait share better than unconnected but still "+
			"poor compared to the star: the request needs finite time to reach "+
			"the last broker in the chain"), nil
	},
	"fig12": func(opts Options) (*Report, error) {
		r, err := RunMulticast(opts)
		if err != nil {
			return nil, err
		}
		return r.report(), nil
	},
	"fig13": func(opts Options) (*Report, error) {
		r, err := RunCertValidation(opts)
		if err != nil {
			return nil, err
		}
		return r.report("fig13", "Time required in validating a X.509 Certificate",
			"costs are acceptable in most systems requiring the feature"), nil
	},
	"fig14": func(opts Options) (*Report, error) {
		r, err := RunSignEncrypt(opts)
		if err != nil {
			return nil, err
		}
		return r.report("fig14", "Time to digitally sign and encrypt and later "+
			"extract the BrokerDiscoveryRequest",
			"costs are acceptable in most systems requiring the feature"), nil
	},
	"abl-timeout":  RunTimeoutSweep,
	"abl-maxresp":  RunMaxResponsesSweep,
	"abl-target":   RunTargetSetSweep,
	"abl-weights":  RunLoadWeights,
	"abl-loss":     RunLossSweep,
	"abl-inject":   RunInjectionComparison,
	"abl-scale":    RunBrokerScale,
	"abl-pings":    RunPingCountSweep,
	"abl-failover": RunBDNFailover,
	"abl-routing":  RunRoutingComparison,
}

func siteRunner(id, site string) Runner {
	return func(opts Options) (*Report, error) {
		r, err := RunSiteTiming(site, opts)
		if err != nil {
			return nil, err
		}
		return r.report(id), nil
	}
}

// IDs returns the registered experiment ids: figures first (paper order),
// then ablations, both lexically sorted within their group.
func IDs() []string {
	var figs, abls []string
	for id := range Registry {
		if len(id) > 3 && id[:4] == "abl-" {
			abls = append(abls, id)
		} else {
			figs = append(figs, id)
		}
	}
	sort.Strings(figs)
	sort.Strings(abls)
	return append(figs, abls...)
}

// Run executes one experiment by id and writes its report to w.
func Run(id string, opts Options, w io.Writer) error {
	runner, ok := Registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	report, err := runner(opts)
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", id, err)
	}
	_, err = report.WriteTo(w)
	return err
}
