package experiments

import (
	"fmt"
	"time"

	"narada/internal/bdn"
	"narada/internal/broker"
	"narada/internal/core"
	"narada/internal/metrics"
	"narada/internal/simnet"
	"narada/internal/stats"
	"narada/internal/testbed"
	"narada/internal/topology"
)

const mib = 1024 * 1024

// ablationRuns is the per-point repetition count for parameter sweeps (the
// paper's 120 would make multi-point sweeps needlessly slow; means stabilise
// well before that). It is a variable so the test suite can shrink it.
var ablationRuns = 30

// sweepPoint is one row of a parameter sweep.
type sweepPoint struct {
	label     string
	totalMs   stats.Summary
	waitMs    stats.Summary
	responses stats.Summary
	failures  int
	extra     string
}

func sweepTable(points []sweepPoint, paramName string) string {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			p.label,
			fmt.Sprintf("%.1f", p.totalMs.Mean),
			fmt.Sprintf("%.1f", p.waitMs.Mean),
			fmt.Sprintf("%.2f", p.responses.Mean),
			fmt.Sprintf("%d", p.failures),
			p.extra,
		})
	}
	return table([]string{paramName, "total ms", "wait ms", "responses", "failures", "notes"}, rows)
}

// runPoint executes n discoveries and summarises totals/waits/responses.
func runPoint(d *core.Discoverer, n int) (sweepPoint, []*core.Result) {
	var totals, waits, resps []float64
	var results []*core.Result
	failures := 0
	for i := 0; i < n; i++ {
		res, err := d.Discover()
		if err != nil {
			failures++
			continue
		}
		totals = append(totals, ms(res.Timing.Total()))
		waits = append(waits, ms(res.Timing.Get(core.PhaseWaitResponses)))
		resps = append(resps, float64(len(res.Responses)))
		results = append(results, res)
	}
	p := sweepPoint{failures: failures}
	if len(totals) > 0 {
		p.totalMs = stats.MustSummarize(totals)
		p.waitMs = stats.MustSummarize(waits)
		p.responses = stats.MustSummarize(resps)
	}
	return p, results
}

// RunTimeoutSweep explores the response-collection timeout trade-off the
// paper discusses after Figure 11: "A small timeout period would decrease
// the total time ... however we risk collecting only few broker responses.
// A large timeout value implies more time is spent waiting."
// Loss makes responses genuinely missable, and no MaxResponses cutoff is set
// so the window alone ends collection.
func RunTimeoutSweep(opts Options) (*Report, error) {
	opts.fillDefaults()
	windows := []time.Duration{
		100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
		1 * time.Second, 2 * time.Second, 4 * time.Second,
	}
	points := make([]sweepPoint, 0, len(windows))
	for _, w := range windows {
		tb, err := testbed.New(testbed.Options{
			Scale: opts.Scale, Seed: opts.Seed, Topology: topology.Star,
			InjectPolicy:   bdn.InjectClosestFarthest,
			InjectOverhead: figInjectOverhead, BrokerProcessing: figBrokerProcessing,
			Loss: 0.15,
		})
		if err != nil {
			return nil, err
		}
		cfg := core.Config{CollectWindow: w, PingWindow: 500 * time.Millisecond}
		d := tb.NewDiscoverer(simnet.SiteBloomington, "client", cfg)
		p, _ := runPoint(d, ablationRuns)
		p.label = w.String()
		points = append(points, p)
		tb.Close()
	}
	return &Report{
		ID:    "abl-timeout",
		Title: "Response-collection timeout sweep (star topology, 15% loss)",
		PaperRef: "small timeout -> few responses collected; large timeout -> " +
			"wasted waiting once all responders have answered",
		Body: sweepTable(points, "window"),
	}, nil
}

// RunMaxResponsesSweep explores the paper's first-N-responses cutoff: "a
// client might be willing to risk more timeout period but specify that only
// the first N responses must be considered."
func RunMaxResponsesSweep(opts Options) (*Report, error) {
	opts.fillDefaults()
	points := make([]sweepPoint, 0, 6)
	for _, n := range []int{1, 2, 3, 4, 5} {
		tb, err := figTestbed(topology.Unconnected, opts)
		if err != nil {
			return nil, err
		}
		cfg := figDiscoveryConfig()
		cfg.MaxResponses = n
		d := tb.NewDiscoverer(simnet.SiteBloomington, "client", cfg)
		p, results := runPoint(d, ablationRuns)
		p.label = fmt.Sprintf("%d", n)
		p.extra = "selected " + dominantSelection(results)
		points = append(points, p)
		tb.Close()
	}
	return &Report{
		ID:    "abl-maxresp",
		Title: "First-N-responses cutoff sweep (unconnected topology)",
		PaperRef: "considering fewer responses ends the wait sooner but risks " +
			"missing the best broker",
		Body: sweepTable(points, "max responses"),
	}, nil
}

func dominantSelection(results []*core.Result) string {
	counts := make(map[string]int)
	for _, r := range results {
		counts[r.Selected.LogicalAddress]++
	}
	best, n := "", 0
	for name, c := range counts {
		if c > n {
			best, n = name, c
		}
	}
	if best == "" {
		return "-"
	}
	return fmt.Sprintf("%s %d/%d", best, n, len(results))
}

// RunTargetSetSweep explores the target-set size T ("usually ... between 5
// and 20"): larger sets ping more brokers (longer ping phase) but are more
// robust to a mis-ranked shortlist.
func RunTargetSetSweep(opts Options) (*Report, error) {
	opts.fillDefaults()
	points := make([]sweepPoint, 0, 4)
	for _, size := range []int{1, 2, 3, 5} {
		tb, err := figTestbed(topology.Star, opts)
		if err != nil {
			return nil, err
		}
		cfg := figDiscoveryConfig()
		cfg.Selection.TargetSetSize = size
		d := tb.NewDiscoverer(simnet.SiteBloomington, "client", cfg)
		p, results := runPoint(d, ablationRuns)
		p.label = fmt.Sprintf("%d", size)
		var pingMs []float64
		for _, r := range results {
			pingMs = append(pingMs, ms(r.Timing.Get(core.PhasePing)))
		}
		if len(pingMs) > 0 {
			p.extra = fmt.Sprintf("ping %.1fms, selected %s",
				stats.MustSummarize(pingMs).Mean, dominantSelection(results))
		}
		points = append(points, p)
		tb.Close()
	}
	return &Report{
		ID:       "abl-target",
		Title:    "Target-set size sweep (star topology)",
		PaperRef: "target set is limited to a very small number, between 5 and 20",
		Body:     sweepTable(points, "|T|"),
	}, nil
}

// RunLoadWeights demonstrates the paper's §8 advantage 3: with usage-metric
// weighting, a newly added idle broker is preferentially selected over a
// loaded broker at the same site; without weighting the loaded veteran keeps
// absorbing clients.
func RunLoadWeights(opts Options) (*Report, error) {
	opts.fillDefaults()
	// The veteran sorts (and so is injected and responds) first: a
	// load-blind client keeps connecting to the well-known existing broker,
	// which is precisely the static behaviour the paper's weighting fixes.
	specs := []testbed.BrokerSpec{
		{Site: simnet.SiteIndianapolis, Name: "a-veteran", Register: true,
			Usage: metrics.Usage{TotalMemBytes: 512 * mib, UsedMemBytes: 460 * mib, CPULoad: 0.85}},
		{Site: simnet.SiteIndianapolis, Name: "z-newcomer", Register: true,
			Usage: metrics.Usage{TotalMemBytes: 512 * mib, UsedMemBytes: 32 * mib, CPULoad: 0.02}},
		{Site: simnet.SiteFSU, Name: "m-remote", Register: true,
			Usage: metrics.Usage{TotalMemBytes: 512 * mib, UsedMemBytes: 64 * mib, CPULoad: 0.1}},
	}
	rows := make([][]string, 0, 2)
	for _, weighted := range []bool{true, false} {
		tb, err := testbed.New(testbed.Options{
			Scale: opts.Scale, Seed: opts.Seed, Topology: topology.Unconnected,
			Brokers: specs, InjectOverhead: time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		cfg := core.Config{
			CollectWindow: 2 * time.Second,
			MaxResponses:  3,
		}
		cfg.Selection.TargetSetSize = 1 // the weighting decides alone
		if weighted {
			cfg.Selection.Weights = metrics.DefaultWeights()
		} else {
			// Explicit non-zero weighting on a factor that ties across all
			// three brokers (each holds exactly its BDN link): every score
			// is equal, so the stable sort degrades to response arrival
			// order — the load-blind baseline.
			cfg.Selection.Weights = metrics.Weights{NumLinks: 1e-12}
		}
		d := tb.NewDiscoverer(simnet.SiteBloomington, "client", cfg)
		counts := make(map[string]int)
		for i := 0; i < ablationRuns; i++ {
			res, err := d.Discover()
			if err != nil {
				continue
			}
			counts[res.Selected.LogicalAddress]++
		}
		mode := "usage-weighted"
		if !weighted {
			mode = "load-blind"
		}
		rows = append(rows, []string{
			mode,
			fmt.Sprintf("%d", counts["z-newcomer"]),
			fmt.Sprintf("%d", counts["a-veteran"]),
			fmt.Sprintf("%d", counts["m-remote"]),
		})
		tb.Close()
	}
	return &Report{
		ID:    "abl-weights",
		Title: "Usage-metric weighting on/off: newly added broker utilisation",
		PaperRef: "since responses include the usage metric, a newly added " +
			"broker within a cluster is preferentially utilized",
		Body: table([]string{"selection mode", "newcomer", "veteran", "remote"}, rows),
	}, nil
}

// RunLossSweep verifies the paper's §7 fault-tolerance claim under growing
// UDP loss: discovery keeps completing, degrading gracefully in the number
// of responses collected.
func RunLossSweep(opts Options) (*Report, error) {
	opts.fillDefaults()
	points := make([]sweepPoint, 0, 5)
	for _, loss := range []float64{0, 0.1, 0.25, 0.4, 0.6} {
		tb, err := testbed.New(testbed.Options{
			Scale: opts.Scale, Seed: opts.Seed, Topology: topology.Star,
			InjectPolicy:   bdn.InjectClosestFarthest,
			InjectOverhead: figInjectOverhead, BrokerProcessing: figBrokerProcessing,
			Loss: loss,
		})
		if err != nil {
			return nil, err
		}
		cfg := core.Config{CollectWindow: 800 * time.Millisecond, PingWindow: 400 * time.Millisecond}
		d := tb.NewDiscoverer(simnet.SiteBloomington, "client", cfg)
		p, _ := runPoint(d, ablationRuns)
		p.label = fmt.Sprintf("%.0f%%", loss*100)
		points = append(points, p)
		tb.Close()
	}
	return &Report{
		ID:    "abl-loss",
		Title: "Datagram loss sweep (star topology)",
		PaperRef: "the scheme sustains loss of discovery requests and " +
			"responses; lossy UDP naturally filters remote brokers",
		Body: sweepTable(points, "loss"),
	}, nil
}

// RunInjectionComparison contrasts the BDN's O(N) fan-out with the paper's
// closest+farthest injection on a connected network: the smart policy pays
// fewer serial injection overheads while network dissemination still reaches
// every broker.
func RunInjectionComparison(opts Options) (*Report, error) {
	opts.fillDefaults()
	// Ten brokers make the O(N) serial-injection cost unmistakable.
	sites := simnet.PaperSiteNames()[1:]
	specs := make([]testbed.BrokerSpec, 10)
	for i := range specs {
		specs[i] = testbed.BrokerSpec{
			Site:     sites[i%len(sites)],
			Name:     fmt.Sprintf("b%02d-%s", i, sites[i%len(sites)]),
			Register: true,
			Usage:    metrics.Usage{TotalMemBytes: 512 * mib, UsedMemBytes: 64 * mib},
		}
	}
	points := make([]sweepPoint, 0, 2)
	for _, policy := range []bdn.InjectionPolicy{bdn.InjectAll, bdn.InjectClosestFarthest} {
		tb, err := testbed.New(testbed.Options{
			Scale: opts.Scale, Seed: opts.Seed, Topology: topology.Star,
			Brokers:        specs,
			InjectPolicy:   policy,
			InjectOverhead: figInjectOverhead, BrokerProcessing: figBrokerProcessing,
		})
		if err != nil {
			return nil, err
		}
		cfg := figDiscoveryConfig()
		cfg.MaxResponses = len(specs)
		d := tb.NewDiscoverer(simnet.SiteBloomington, "client", cfg)
		framesBefore, _, _ := countFrames(tb)
		p, _ := runPoint(d, ablationRuns)
		framesAfter, _, _ := countFrames(tb)
		if policy == bdn.InjectAll {
			p.label = "inject-all (O(N))"
		} else {
			p.label = "closest+farthest"
		}
		p.extra = fmt.Sprintf("%.0f stream frames/run",
			float64(framesAfter-framesBefore)/float64(ablationRuns))
		points = append(points, p)
		tb.Close()
	}
	return &Report{
		ID:    "abl-inject",
		Title: "BDN injection policy: O(N) fan-out vs closest+farthest (star)",
		PaperRef: "the request is issued simultaneously to the brokers that are " +
			"closest and farthest from the BDN; on a connected network the " +
			"flood hides the latency cost of O(N) injection, but not its " +
			"redundant traffic (on an unconnected network the latency cost is " +
			"the abl-scale result)",
		Body: sweepTable(points, "policy"),
	}, nil
}

// countFrames reads the simulator's traffic counters.
func countFrames(tb *testbed.Testbed) (frames, datagramsSent, datagramsDropped uint64) {
	sent, dropped, f := tb.Net.Counters()
	return f, sent, dropped
}

// RunBrokerScale grows the broker population and contrasts the unconnected
// O(N) BDN fan-out against star-network dissemination: the O(N) wait grows
// linearly with broker count while the star stays nearly flat — the paper's
// scalability argument.
func RunBrokerScale(opts Options) (*Report, error) {
	opts.fillDefaults()
	sites := simnet.PaperSiteNames()[1:]
	points := make([]sweepPoint, 0, 8)
	for _, n := range []int{5, 10, 20} {
		for _, topo := range []string{topology.Unconnected, topology.Star} {
			specs := make([]testbed.BrokerSpec, n)
			for i := range specs {
				specs[i] = testbed.BrokerSpec{
					Site:     sites[i%len(sites)],
					Name:     fmt.Sprintf("b%02d-%s", i, sites[i%len(sites)]),
					Register: true,
					Usage:    metrics.Usage{TotalMemBytes: 512 * mib, UsedMemBytes: 64 * mib},
				}
			}
			policy := bdn.InjectAll
			if topo == topology.Star {
				policy = bdn.InjectClosestFarthest
			}
			tb, err := testbed.New(testbed.Options{
				Scale: opts.Scale, Seed: opts.Seed, Topology: topo,
				Brokers:        specs,
				InjectPolicy:   policy,
				InjectOverhead: figInjectOverhead, BrokerProcessing: figBrokerProcessing,
			})
			if err != nil {
				return nil, err
			}
			cfg := figDiscoveryConfig()
			cfg.MaxResponses = n
			d := tb.NewDiscoverer(simnet.SiteBloomington, "client", cfg)
			p, _ := runPoint(d, 10)
			p.label = fmt.Sprintf("%d brokers / %s", n, topo)
			points = append(points, p)
			tb.Close()
		}
	}
	return &Report{
		ID:    "abl-scale",
		Title: "Broker-count scaling: O(N) BDN fan-out vs network dissemination",
		PaperRef: "as the number of brokers increases ... waiting for more " +
			"brokers would badly affect the total time (addressed by network " +
			"dissemination, timeout and max-responses)",
		Body: sweepTable(points, "population"),
	}, nil
}

// RunPingCountSweep varies the pings-per-target used for RTT averaging ("this
// PING operation may be repeated multiple times to compute the average
// network Round Trip Time"): more pings stabilise selection at the cost of a
// longer measurement phase.
func RunPingCountSweep(opts Options) (*Report, error) {
	opts.fillDefaults()
	points := make([]sweepPoint, 0, 4)
	for _, k := range []int{1, 3, 5, 10} {
		tb, err := figTestbed(topology.Unconnected, opts)
		if err != nil {
			return nil, err
		}
		cfg := figDiscoveryConfig()
		cfg.PingCount = k
		d := tb.NewDiscoverer(simnet.SiteBloomington, "client", cfg)
		p, results := runPoint(d, ablationRuns)
		p.label = fmt.Sprintf("%d", k)
		nearest := 0
		var pingMs []float64
		for _, r := range results {
			if r.Selected.LogicalAddress == "broker-indianapolis" {
				nearest++
			}
			pingMs = append(pingMs, ms(r.Timing.Get(core.PhasePing)))
		}
		if len(results) > 0 {
			p.extra = fmt.Sprintf("nearest %d/%d, ping-phase %.1fms",
				nearest, len(results), stats.MustSummarize(pingMs).Mean)
		}
		points = append(points, p)
		tb.Close()
	}
	return &Report{
		ID:    "abl-pings",
		Title: "Pings-per-target sweep (unconnected topology)",
		PaperRef: "ping may be repeated multiple times to compute the average " +
			"RTT between the peer and the broker",
		Body: sweepTable(points, "pings/target"),
	}, nil
}

// RunBDNFailover measures the paper's §7 no-single-point-of-failure claim:
// with the primary BDN down, discovery falls through to the next BDN in the
// node's configuration file and still completes — paying only the failed
// dial/ack attempt.
func RunBDNFailover(opts Options) (*Report, error) {
	opts.fillDefaults()
	points := make([]sweepPoint, 0, 2)
	for _, killPrimary := range []bool{false, true} {
		tb, err := testbed.New(testbed.Options{
			Scale: opts.Scale, Seed: opts.Seed, Topology: topology.Star,
			BDNCount:       2,
			InjectPolicy:   bdn.InjectClosestFarthest,
			InjectOverhead: figInjectOverhead, BrokerProcessing: figBrokerProcessing,
		})
		if err != nil {
			return nil, err
		}
		if killPrimary {
			tb.BDNs[0].Close()
		}
		cfg := figDiscoveryConfig()
		cfg.AckTimeout = 300 * time.Millisecond
		cfg.MaxRetransmits = 1
		d := tb.NewDiscoverer(simnet.SiteBloomington, "client", cfg)
		p, results := runPoint(d, ablationRuns)
		if killPrimary {
			p.label = "primary BDN down"
		} else {
			p.label = "both BDNs up"
		}
		via := make(map[string]int)
		for _, r := range results {
			via[r.BDN]++
		}
		p.extra = fmt.Sprintf("served by %v", via)
		points = append(points, p)
		tb.Close()
	}
	return &Report{
		ID:    "abl-failover",
		Title: "BDN failover: discovery with the primary BDN down",
		PaperRef: "the approach needs only 1 functioning BDN to work; " +
			"no single point of failure",
		Body: sweepTable(points, "scenario"),
	}, nil
}

// RunRoutingComparison contrasts the two dissemination modes of the broker
// network: flooding (every publish crosses every link) versus
// subscription-interest routing ("routing the right content from the
// producer to the right consumers"). One subscriber sits one hop from the
// publisher on a five-broker chain; the routed mode should touch exactly
// that one link per publish, the flooding mode the whole chain.
func RunRoutingComparison(opts Options) (*Report, error) {
	opts.fillDefaults()
	const publishes = 50
	rows := make([][]string, 0, 2)
	for _, mode := range []broker.RoutingMode{broker.RouteFlood, broker.RouteSubscriptions} {
		tb, err := testbed.New(testbed.Options{
			Scale: opts.Scale, Seed: opts.Seed, Topology: topology.Linear,
			Routing:        mode,
			InjectOverhead: time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		// Subscriber at the second broker in the chain.
		node := tb.ClientNode(tb.Brokers[1].Info().Realm, "sub")
		c, err := broker.Connect(node, tb.Brokers[1].StreamAddr(), "sub")
		if err != nil {
			tb.Close()
			return nil, err
		}
		if err := c.Subscribe("routed/bench"); err != nil {
			tb.Close()
			return nil, err
		}
		tb.Net.Clock().Sleep(300 * time.Millisecond)

		_, _, framesBefore := tb.Net.Counters()
		received := 0
		for i := 0; i < publishes; i++ {
			if err := tb.Brokers[0].Publish("routed/bench", []byte("payload")); err != nil {
				tb.Close()
				return nil, err
			}
			if _, err := c.Next(10 * time.Second); err == nil {
				received++
			}
		}
		tb.Net.Clock().Sleep(300 * time.Millisecond)
		_, _, framesAfter := tb.Net.Counters()
		c.Close()

		label := "flooding"
		if mode == broker.RouteSubscriptions {
			label = "interest-routed"
		}
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%.1f", float64(framesAfter-framesBefore)/float64(publishes)),
			fmt.Sprintf("%d/%d", received, publishes),
		})
		tb.Close()
	}
	return &Report{
		ID:    "abl-routing",
		Title: "Dissemination mode: flooding vs subscription-interest routing",
		PaperRef: "the MoM routes the right content from the producer to the " +
			"right consumers (NaradaBrokering's efficient routing vs naive " +
			"flooding)",
		Body: table([]string{"mode", "frames/publish", "delivered"}, rows),
	}, nil
}
