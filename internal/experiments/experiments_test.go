package experiments

import (
	"bytes"
	"strings"
	"testing"

	"narada/internal/core"
	"narada/internal/simnet"
	"narada/internal/topology"
)

// quickOpts keeps test runtime modest while leaving enough samples for the
// shape assertions to be stable. Under the race detector model time runs
// slower, trading runtime for timing deltas the instrumented scheduler
// cannot blur.
func quickOpts(seed int64) Options {
	scale := float64(200)
	if raceEnabled {
		scale = 25
	}
	return Options{Runs: 12, Keep: 10, Scale: scale, Seed: seed}
}

func TestRegistryComplete(t *testing.T) {
	// Every experiment from DESIGN.md's index must be registered.
	want := []string{
		"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig9",
		"fig11", "fig12", "fig13", "fig14",
		"abl-timeout", "abl-maxresp", "abl-target", "abl-weights",
		"abl-loss", "abl-inject", "abl-scale", "abl-pings", "abl-failover",
		"abl-routing",
	}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(Registry) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(Registry), len(want))
	}
}

func TestIDsOrdering(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Fatalf("IDs() returned %d, registry has %d", len(ids), len(Registry))
	}
	sawAblation := false
	for _, id := range ids {
		if strings.HasPrefix(id, "abl-") {
			sawAblation = true
		} else if sawAblation {
			t.Fatalf("figure %q listed after ablations", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig99", quickOpts(1), &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable1Report(t *testing.T) {
	r := Table1Report(quickOpts(1))
	if !strings.Contains(r.Body, "complexity.ucs.indiana.edu") ||
		!strings.Contains(r.Body, "bouscat.cs.cf.ac.uk") {
		t.Fatalf("Table 1 machines missing:\n%s", r.Body)
	}
	if !strings.Contains(r.Body, "RTT matrix") {
		t.Fatal("RTT matrix missing")
	}
}

// TestBreakdownShape is the core reproduction assertion for Figures 2/9/11:
// the wait-for-initial-responses phase dominates everywhere, the unconnected
// topology spends the most absolute time waiting, the star the least, the
// linear chain in between.
func TestBreakdownShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-topology sweep")
	}
	results := map[string]*BreakdownResult{}
	for _, topo := range []string{topology.Unconnected, topology.Star, topology.Linear} {
		r, err := RunBreakdown(topo, quickOpts(3))
		if err != nil {
			t.Fatal(err)
		}
		results[topo] = r
		if pct := r.Mean.Percent(core.PhaseWaitResponses); pct < 40 {
			t.Errorf("%s: wait share %.1f%%, expected the dominant phase", topo, pct)
		}
	}
	waitOf := func(topo string) float64 {
		r := results[topo]
		return float64(r.Mean.Get(core.PhaseWaitResponses)) / float64(r.Runs)
	}
	un, star, lin := waitOf(topology.Unconnected), waitOf(topology.Star), waitOf(topology.Linear)
	// The robust paper claim: the unconnected O(N) fan-out waits far longer
	// than the star's network dissemination.
	if un <= star {
		t.Errorf("unconnected (%.0f) did not wait longer than star (%.0f)", un, star)
	}
	// The linear chain sits between the two. Its gaps to both neighbours are
	// tens of model-ms, which scheduler contention (e.g. running alongside
	// the benchmark suite on one CPU) can blur — so allow 15%% slack rather
	// than a strict ordering.
	if float64(lin) > float64(un)*1.15 || float64(lin) < float64(star)*0.85 {
		t.Errorf("linear (%.0f) outside [star %.0f, unconnected %.0f] envelope",
			lin, star, un)
	} else if !(un > lin && lin > star) {
		t.Logf("note: strict ordering blurred under load: unconnected=%.0f linear=%.0f star=%.0f",
			un, lin, star)
	}
}

// TestSiteTimingShape asserts Figures 3-7's qualitative content: every site
// completes discovery, selects its nearest broker, and the transatlantic
// client (Cardiff) is slower than the client co-located with the BDN.
func TestSiteTimingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-site sweep")
	}
	nearest := map[string]string{
		simnet.SiteBloomington: "broker-indianapolis",
		simnet.SiteFSU:         "broker-fsu",
		simnet.SiteCardiff:     "broker-cardiff",
	}
	means := map[string]float64{}
	for site, want := range nearest {
		r, err := RunSiteTiming(site, quickOpts(4))
		if err != nil {
			t.Fatal(err)
		}
		means[site] = r.Summary.Mean
		top, n := "", 0
		for name, c := range r.Selected {
			if c > n {
				top, n = name, c
			}
		}
		if top != want {
			t.Errorf("%s: selected %s most often, want %s (%v)", site, top, want, r.Selected)
		}
		if r.Summary.Mean <= 0 {
			t.Errorf("%s: non-positive mean", site)
		}
	}
	if means[simnet.SiteCardiff] <= means[simnet.SiteBloomington] {
		t.Errorf("Cardiff (%.0f ms) should be slower than Bloomington (%.0f ms)",
			means[simnet.SiteCardiff], means[simnet.SiteBloomington])
	}
}

// TestMulticastShape asserts Figure 12: discovery works with no BDN, finds
// only realm-local brokers, and is much faster than the BDN path.
func TestMulticastShape(t *testing.T) {
	mc, err := RunMulticast(quickOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	if mc.ReachedLocal != mc.Runs {
		t.Errorf("%d/%d runs leaked outside the realm", mc.Runs-mc.ReachedLocal, mc.Runs)
	}
	bdnPath, err := RunSiteTiming(simnet.SiteBloomington, quickOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	if mc.Summary.Mean >= bdnPath.Summary.Mean {
		t.Errorf("multicast (%.0f ms) not faster than BDN path (%.0f ms)",
			mc.Summary.Mean, bdnPath.Summary.Mean)
	}
}

func TestSecurityExperiments(t *testing.T) {
	opts := quickOpts(6)
	opts.Runs, opts.Keep = 20, 15
	cert, err := RunCertValidation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Summary.Mean <= 0 || cert.Summary.Mean > 1000 {
		t.Errorf("cert validation mean %.3f ms implausible", cert.Summary.Mean)
	}
	se, err := RunSignEncrypt(opts)
	if err != nil {
		t.Fatal(err)
	}
	if se.Summary.Mean <= cert.Summary.Mean {
		t.Errorf("sign+encrypt (%.3f ms) should cost more than validation (%.3f ms)",
			se.Summary.Mean, cert.Summary.Mean)
	}
}

func TestRunWritesReport(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table1", quickOpts(7), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "table1") || !strings.Contains(out, "paper:") {
		t.Fatalf("report malformed:\n%s", out)
	}
}

func TestBreakdownReportRendering(t *testing.T) {
	r, err := RunBreakdown(topology.Star, quickOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	rep := r.report("fig9", "ref")
	if !strings.Contains(rep.Body, "wait-initial-responses") {
		t.Fatalf("report body missing phases:\n%s", rep.Body)
	}
}

func TestTableRendering(t *testing.T) {
	out := table([]string{"a", "bb"}, [][]string{{"xxx", "y"}, {"1", "22222"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if len(lines[0]) == 0 || lines[1][0] != '-' {
		t.Fatalf("table header malformed:\n%s", out)
	}
}

func TestOptionsFillDefaults(t *testing.T) {
	var o Options
	o.fillDefaults()
	if o.Runs != 120 || o.Keep != 100 || o.Scale != 200 || o.Seed != 1 {
		t.Fatalf("defaults = %+v", o)
	}
	o = Options{Runs: 10, Keep: 50}
	o.fillDefaults()
	if o.Keep != 10 {
		t.Fatalf("Keep not clamped to Runs: %d", o.Keep)
	}
}

// TestAllAblationsRun executes every ablation end-to-end with a shrunken
// repetition count, verifying that each builds its deployments, completes
// its sweep and renders a table.
func TestAllAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every ablation deployment")
	}
	saved := ablationRuns
	ablationRuns = 3
	defer func() { ablationRuns = saved }()

	for _, id := range IDs() {
		if !strings.HasPrefix(id, "abl-") {
			continue
		}
		var buf bytes.Buffer
		if err := Run(id, quickOpts(9), &buf); err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if !strings.Contains(buf.String(), id) {
			t.Errorf("%s: report missing id:\n%s", id, buf.String())
		}
	}
}
