package experiments

import (
	"fmt"
	"strings"
	"time"

	"narada/internal/bdn"
	"narada/internal/core"
	"narada/internal/simnet"
	"narada/internal/stats"
	"narada/internal/testbed"
	"narada/internal/topology"
)

// Tuning for the paper-shaped deployments: the BDN's per-injection overhead
// and each broker's per-request processing cost (2005-era Java serialisation
// and scheduling), which together produce the paper's topology ordering —
// the unconnected O(N) fan-out is slowest, the star's network dissemination
// fastest, the linear chain in between.
const (
	figInjectOverhead   = 60 * time.Millisecond
	figBrokerProcessing = 10 * time.Millisecond
)

// figDiscoveryConfig is the client configuration for the figure experiments:
// the paper's 4-second window, first-5-responses cutoff.
func figDiscoveryConfig() core.Config {
	return core.Config{
		CollectWindow: 4 * time.Second,
		MaxResponses:  5,
		PingWindow:    1 * time.Second,
	}
}

// figTestbed deploys the paper's 5 brokers in the named topology. For the
// linear topology only the first broker registers with the BDN (Figure 10);
// otherwise all register. The injection policy is O(N) for unconnected and
// closest+farthest for connected topologies (paper §4).
func figTestbed(topo string, opts Options) (*testbed.Testbed, error) {
	specs := testbed.PaperBrokers()
	policy := bdn.InjectAll
	switch topo {
	case topology.Linear:
		for i := range specs {
			specs[i].Register = i == 0
		}
		policy = bdn.InjectClosestFarthest
	case topology.Star:
		policy = bdn.InjectClosestFarthest
	}
	return testbed.New(testbed.Options{
		Scale:            opts.Scale,
		Seed:             opts.Seed,
		Topology:         topo,
		Brokers:          specs,
		InjectPolicy:     policy,
		InjectOverhead:   figInjectOverhead,
		BrokerProcessing: figBrokerProcessing,
	})
}

// BreakdownResult holds the per-phase shares for one topology (Figures 2, 9
// and 11).
type BreakdownResult struct {
	Topology string
	Mean     core.Breakdown // summed over runs; Percent() gives the figure
	Runs     int
	Failed   int
}

// RunBreakdown measures the percentage of time spent in each discovery
// sub-activity for a topology, averaged over opts.Runs discoveries issued
// from Bloomington (where the paper ran its client).
func RunBreakdown(topo string, opts Options) (*BreakdownResult, error) {
	opts.fillDefaults()
	tb, err := figTestbed(topo, opts)
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	d := tb.NewDiscoverer(simnet.SiteBloomington, "client", figDiscoveryConfig())

	out := &BreakdownResult{Topology: topo}
	for i := 0; i < opts.Runs; i++ {
		res, err := d.Discover()
		if err != nil {
			out.Failed++
			continue
		}
		out.Mean.Add(&res.Timing)
		out.Runs++
	}
	if out.Runs == 0 {
		return nil, fmt.Errorf("experiments: every discovery failed on %s", topo)
	}
	return out, nil
}

func (r *BreakdownResult) report(id, paperRef string) *Report {
	rows := make([][]string, 0, 8)
	for _, p := range core.Phases() {
		rows = append(rows, []string{
			p.String(),
			fmt.Sprintf("%.2f", r.Mean.Percent(p)),
			fmt.Sprintf("%.1f", ms(r.Mean.Get(p))/float64(r.Runs)),
		})
	}
	body := table([]string{"Sub-activity", "% of total", "mean ms/run"}, rows)
	body += fmt.Sprintf("\nruns=%d failed=%d topology=%s\n", r.Runs, r.Failed, r.Topology)
	return &Report{ID: id, Title: "Discovery sub-activity breakdown (" + r.Topology + ")",
		PaperRef: paperRef, Body: body}
}

// SiteTimingResult holds the total-discovery-time statistics for one client
// site (Figures 3-7).
type SiteTimingResult struct {
	Site     string
	Summary  stats.Summary
	Selected map[string]int // selected broker -> count
	Failed   int
}

// RunSiteTiming measures total discovery time from one client site on the
// unconnected topology, applying the paper's 120-run/keep-100 sampling.
func RunSiteTiming(site string, opts Options) (*SiteTimingResult, error) {
	opts.fillDefaults()
	tb, err := figTestbed(topology.Unconnected, opts)
	if err != nil {
		return nil, err
	}
	defer tb.Close()
	d := tb.NewDiscoverer(site, "client-"+site, figDiscoveryConfig())

	totals := make([]float64, 0, opts.Runs)
	selected := make(map[string]int)
	failed := 0
	for i := 0; i < opts.Runs; i++ {
		res, err := d.Discover()
		if err != nil {
			failed++
			continue
		}
		totals = append(totals, ms(res.Timing.Total()))
		selected[res.Selected.LogicalAddress]++
	}
	summary, err := paperSummary(totals, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: site %s: %w", site, err)
	}
	return &SiteTimingResult{Site: site, Summary: summary, Selected: selected, Failed: failed}, nil
}

func (r *SiteTimingResult) report(id string) *Report {
	body := metricTable("ms", r.Summary)
	var sel []string
	for name, n := range r.Selected {
		sel = append(sel, fmt.Sprintf("%s×%d", name, n))
	}
	body += fmt.Sprintf("\nselected brokers: %s  (failed runs: %d)\n",
		strings.Join(sel, " "), r.Failed)
	return &Report{
		ID:    id,
		Title: "Total discovery time, client at " + r.Site + " (unconnected topology)",
		PaperRef: "mean dominated by the wait for initial responses; " +
			"per-site variation tracks WAN RTTs",
		Body: body,
	}
}

// MulticastResult holds the multicast-only discovery statistics (Figure 12).
type MulticastResult struct {
	Summary      stats.Summary
	ReachedLocal int // runs that found only realm-local brokers (expected all)
	Runs         int
	Failed       int
}

// RunMulticast measures discovery with no BDN at all: the request is
// multicast and — since multicast does not cross realms, reproducing
// "multicast was disabled for network traffic outside the lab" — only the
// Indiana broker is discoverable from the Bloomington client.
func RunMulticast(opts Options) (*MulticastResult, error) {
	opts.fillDefaults()
	tb, err := testbed.New(testbed.Options{
		Scale:            opts.Scale,
		Seed:             opts.Seed,
		Topology:         topology.Unconnected,
		NoBDN:            true,
		Multicast:        true,
		BrokerProcessing: figBrokerProcessing,
	})
	if err != nil {
		return nil, err
	}
	defer tb.Close()

	cfg := figDiscoveryConfig()
	cfg.MaxResponses = 1 // only the lab broker can answer
	cfg.CollectWindow = 1 * time.Second
	d := tb.NewDiscoverer(simnet.SiteBloomington, "client", cfg)

	totals := make([]float64, 0, opts.Runs)
	out := &MulticastResult{}
	for i := 0; i < opts.Runs; i++ {
		res, err := d.Discover()
		if err != nil {
			out.Failed++
			continue
		}
		totals = append(totals, ms(res.Timing.Total()))
		out.Runs++
		local := true
		for _, c := range res.Responses {
			if c.Response.Broker.Realm != simnet.SiteIndianapolis &&
				c.Response.Broker.Realm != simnet.SiteBloomington {
				local = false
			}
		}
		if local {
			out.ReachedLocal++
		}
	}
	summary, err := paperSummary(totals, opts)
	if err != nil {
		return nil, err
	}
	out.Summary = summary
	return out, nil
}

func (r *MulticastResult) report() *Report {
	body := metricTable("ms", r.Summary)
	body += fmt.Sprintf("\nruns=%d realm-local-only=%d failed=%d\n",
		r.Runs, r.ReachedLocal, r.Failed)
	return &Report{
		ID:    "fig12",
		Title: "Broker discovery times using ONLY multicast (no BDN)",
		PaperRef: "multicast requests could only reach brokers inside the lab " +
			"realm; discovery is much faster but finds only local brokers",
		Body: body,
	}
}

// Table1Report renders the testbed machine summary (Table 1) together with
// the simulator's RTT matrix standing in for the physical WAN.
func Table1Report(opts Options) *Report {
	opts.fillDefaults()
	rows := make([][]string, 0, 8)
	for _, m := range simnet.Table1Machines() {
		rows = append(rows, []string{m.Hostname, m.Location, m.Spec, m.JVM})
	}
	body := table([]string{"Machine", "Location", "Specification", "JVM"}, rows)

	net := simnet.NewPaperWAN(simnet.Config{Scale: opts.Scale, Seed: opts.Seed})
	sites := simnet.PaperSiteNames()
	rttRows := make([][]string, 0, len(sites))
	for _, a := range sites {
		row := []string{a}
		for _, b := range sites {
			if a == b {
				row = append(row, "-")
				continue
			}
			rtt, _ := net.RTT(a, b)
			row = append(row, fmt.Sprintf("%.0f", ms(rtt)))
		}
		rttRows = append(rttRows, row)
	}
	body += "\nSimulated RTT matrix (ms):\n"
	body += table(append([]string{"site"}, sites...), rttRows)
	return &Report{
		ID:       "table1",
		Title:    "Summary of machines used in the testing process",
		PaperRef: "five WAN-separated machines (Indiana, UMN, NCSA, FSU, Cardiff)",
		Body:     body,
	}
}
