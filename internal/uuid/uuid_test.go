package uuid

import (
	"testing"
	"testing/quick"
)

func TestNewIsV4(t *testing.T) {
	u := New()
	if u.Version() != 4 {
		t.Fatalf("version = %d, want 4", u.Version())
	}
	if u[8]&0xc0 != 0x80 {
		t.Fatalf("variant bits = %x, want 10xxxxxx", u[8])
	}
}

func TestNewNotNil(t *testing.T) {
	if New().IsNil() {
		t.Fatal("New returned the nil UUID")
	}
	if !Nil.IsNil() {
		t.Fatal("Nil.IsNil() = false")
	}
}

func TestUniqueness(t *testing.T) {
	const n = 10000
	seen := make(map[UUID]bool, n)
	for i := 0; i < n; i++ {
		u := New()
		if seen[u] {
			t.Fatalf("duplicate UUID after %d draws: %s", i, u)
		}
		seen[u] = true
	}
}

func TestStringFormat(t *testing.T) {
	u := New()
	s := u.String()
	if len(s) != 36 {
		t.Fatalf("len(String()) = %d, want 36", len(s))
	}
	for _, i := range []int{8, 13, 18, 23} {
		if s[i] != '-' {
			t.Fatalf("String() = %q, missing dash at %d", s, i)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := func(b [16]byte) bool {
		u := UUID(b)
		v, err := Parse(u.String())
		return err == nil && v == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"not-a-uuid",
		"00000000-0000-0000-0000-00000000000",   // too short
		"00000000-0000-0000-0000-0000000000000", // too long
		"00000000x0000-0000-0000-000000000000",  // wrong separator
		"g0000000-0000-0000-0000-000000000000",  // non-hex
		"00000000-0000-0000-0000-00000000000g",  // non-hex at end
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestTextMarshalRoundTrip(t *testing.T) {
	u := New()
	b, err := u.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var v UUID
	if err := v.UnmarshalText(b); err != nil {
		t.Fatal(err)
	}
	if v != u {
		t.Fatalf("round trip mismatch: %s != %s", v, u)
	}
}

func TestUnmarshalTextError(t *testing.T) {
	var v UUID
	if err := v.UnmarshalText([]byte("bogus")); err == nil {
		t.Fatal("UnmarshalText accepted bogus input")
	}
}

func BenchmarkNew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = New()
	}
}

func BenchmarkString(b *testing.B) {
	u := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = u.String()
	}
}
