// Package uuid implements RFC-4122 version-4 (random) UUIDs.
//
// Every BrokerDiscoveryRequest carries a UUID that uniquely identifies it;
// brokers and BDNs use the UUID both for idempotent request handling and to
// correlate discovery responses with the request that solicited them.
package uuid

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
)

// UUID is a 128-bit RFC-4122 universally unique identifier.
type UUID [16]byte

// Nil is the zero UUID, used to mean "no request".
var Nil UUID

// New returns a fresh version-4 UUID drawn from crypto/rand.
// It panics only if the platform entropy source is broken, in which case no
// part of the system can make progress anyway.
func New() UUID {
	var u UUID
	if _, err := rand.Read(u[:]); err != nil {
		panic("uuid: entropy source failed: " + err.Error())
	}
	u[6] = (u[6] & 0x0f) | 0x40 // version 4
	u[8] = (u[8] & 0x3f) | 0x80 // RFC-4122 variant
	return u
}

// String renders the UUID in the canonical 8-4-4-4-12 form.
func (u UUID) String() string {
	var buf [36]byte
	hex.Encode(buf[0:8], u[0:4])
	buf[8] = '-'
	hex.Encode(buf[9:13], u[4:6])
	buf[13] = '-'
	hex.Encode(buf[14:18], u[6:8])
	buf[18] = '-'
	hex.Encode(buf[19:23], u[8:10])
	buf[23] = '-'
	hex.Encode(buf[24:36], u[10:16])
	return string(buf[:])
}

// IsNil reports whether u is the zero UUID.
func (u UUID) IsNil() bool { return u == Nil }

// Version returns the UUID version field (4 for UUIDs from New).
func (u UUID) Version() int { return int(u[6] >> 4) }

// ErrInvalidUUID is returned by Parse for malformed input.
var ErrInvalidUUID = errors.New("uuid: invalid format")

// Parse decodes a canonical 8-4-4-4-12 textual UUID.
func Parse(s string) (UUID, error) {
	var u UUID
	if len(s) != 36 || s[8] != '-' || s[13] != '-' || s[18] != '-' || s[23] != '-' {
		return Nil, fmt.Errorf("%w: %q", ErrInvalidUUID, s)
	}
	hexParts := []struct {
		dst  []byte
		text string
	}{
		{u[0:4], s[0:8]},
		{u[4:6], s[9:13]},
		{u[6:8], s[14:18]},
		{u[8:10], s[19:23]},
		{u[10:16], s[24:36]},
	}
	for _, p := range hexParts {
		if _, err := hex.Decode(p.dst, []byte(p.text)); err != nil {
			return Nil, fmt.Errorf("%w: %q", ErrInvalidUUID, s)
		}
	}
	return u, nil
}

// MarshalText implements encoding.TextMarshaler.
func (u UUID) MarshalText() ([]byte, error) { return []byte(u.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (u *UUID) UnmarshalText(b []byte) error {
	v, err := Parse(string(b))
	if err != nil {
		return err
	}
	*u = v
	return nil
}
