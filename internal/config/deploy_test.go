package config

import (
	"path/filepath"
	"testing"
)

// TestShippedDeployConfigsValid keeps the sample configuration files under
// deploy/ loadable: documentation that cannot rot.
func TestShippedDeployConfigsValid(t *testing.T) {
	root := filepath.Join("..", "..", "deploy")

	var b BDN
	if err := Load(filepath.Join(root, "bdn.json"), &b); err != nil {
		t.Errorf("bdn.json: %v", err)
	} else if b.Name != "gridservicelocator.org" {
		t.Errorf("bdn.json name = %q", b.Name)
	}

	var br Broker
	if err := Load(filepath.Join(root, "broker.json"), &br); err != nil {
		t.Errorf("broker.json: %v", err)
	} else if len(br.BDNs) == 0 {
		t.Error("broker.json lists no BDNs")
	}

	var n Node
	if err := Load(filepath.Join(root, "node.json"), &n); err != nil {
		t.Errorf("node.json: %v", err)
	} else {
		cfg := n.DiscoveryConfig()
		if cfg.NodeName == "" || len(cfg.BDNAddrs) == 0 {
			t.Errorf("node.json produced incomplete discovery config: %+v", cfg)
		}
	}
}
