package config

import (
	"path/filepath"
	"testing"
	"time"

	"narada/internal/dedup"
)

func TestBrokerValidate(t *testing.T) {
	b := &Broker{LogicalAddress: "b1"}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.DedupCapacity != dedup.DefaultCapacity {
		t.Fatalf("DedupCapacity = %d", b.DedupCapacity)
	}
	if err := (&Broker{}).Validate(); err == nil {
		t.Fatal("missing logicalAddress accepted")
	}
	if err := (&Broker{LogicalAddress: "x", DedupCapacity: -1}).Validate(); err == nil {
		t.Fatal("negative dedupCapacity accepted")
	}
}

func TestBrokerPolicy(t *testing.T) {
	b := &Broker{LogicalAddress: "b1", RequiredCredential: "s", AllowedRealms: []string{"r"}}
	p := b.Policy()
	if string(p.RequiredCredential) != "s" || len(p.AllowedRealms) != 1 {
		t.Fatalf("policy = %+v", p)
	}
	open := (&Broker{LogicalAddress: "b"}).Policy()
	if open.RequiredCredential != nil {
		t.Fatal("open policy has credential")
	}
}

func TestBDNValidate(t *testing.T) {
	good := []BDN{
		{Name: "gsl.org"},
		{Name: "gsl.org", Policy: "all"},
		{Name: "gsl.org", Policy: "closest-farthest"},
		{Name: "corp", Private: true, RequiredCredential: "badge"},
	}
	for i := range good {
		if err := good[i].Validate(); err != nil {
			t.Errorf("good[%d]: %v", i, err)
		}
	}
	bad := []BDN{
		{},
		{Name: "x", Policy: "bogus"},
		{Name: "x", Private: true},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("bad[%d] accepted", i)
		}
	}
}

func TestBDNInjectOverhead(t *testing.T) {
	d := BDN{Name: "x", InjectOverheadMs: 40}
	if d.InjectOverhead() != 40*time.Millisecond {
		t.Fatalf("InjectOverhead = %v", d.InjectOverhead())
	}
}

func TestNodeValidate(t *testing.T) {
	if err := (&Node{Name: "n", BDNs: []string{"a:1"}}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Node{Name: "n", MulticastGroup: "g"}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Node{BDNs: []string{"a:1"}}).Validate(); err == nil {
		t.Fatal("missing name accepted")
	}
	if err := (&Node{Name: "n"}).Validate(); err == nil {
		t.Fatal("node with no discovery path accepted")
	}
}

func TestNodeDiscoveryConfig(t *testing.T) {
	n := &Node{
		Name:            "client",
		Realm:           "bloomington",
		BDNs:            []string{"gsl.org:7000", "gsl.com:7000"},
		CollectWindowMs: 4000,
		MaxResponses:    5,
		TargetSetSize:   10,
		PingCount:       3,
		Credential:      "badge",
		WeightNumLinks:  0.7,
	}
	cfg := n.DiscoveryConfig()
	if cfg.NodeName != "client" || len(cfg.BDNAddrs) != 2 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.CollectWindow != 4*time.Second || cfg.MaxResponses != 5 {
		t.Fatalf("window/max = %v/%d", cfg.CollectWindow, cfg.MaxResponses)
	}
	if cfg.Selection.Weights.NumLinks != 0.7 {
		t.Fatalf("weights = %+v", cfg.Selection.Weights)
	}
	if string(cfg.Credentials) != "badge" {
		t.Fatalf("credentials = %q", cfg.Credentials)
	}
	// Zero weights stay zero here (defaults are filled by the Discoverer).
	cfg2 := (&Node{Name: "n", BDNs: []string{"a"}}).DiscoveryConfig()
	if cfg2.Selection.Weights.NumLinks != 0 {
		t.Fatal("unexpected default weights at config layer")
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "broker.json")
	orig := &Broker{
		LogicalAddress: "broker-fsu",
		Realm:          "fsu",
		BDNs:           []string{"bloomington/bdn:7000"},
		Links:          []string{"umn/broker-umn:10001"},
	}
	if err := Save(path, orig); err != nil {
		t.Fatal(err)
	}
	var got Broker
	if err := Load(path, &got); err != nil {
		t.Fatal(err)
	}
	if got.LogicalAddress != "broker-fsu" || len(got.BDNs) != 1 || len(got.Links) != 1 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.DedupCapacity != dedup.DefaultCapacity {
		t.Fatal("defaults not filled on load")
	}
}

func TestLoadErrors(t *testing.T) {
	var b Broker
	if err := Load(filepath.Join(t.TempDir(), "missing.json"), &b); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := Save(bad, "not an object"); err != nil {
		t.Fatal(err)
	}
	if err := Load(bad, &b); err == nil {
		t.Fatal("malformed config accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := Save(empty, map[string]string{}); err != nil {
		t.Fatal(err)
	}
	if err := Load(empty, &b); err == nil {
		t.Fatal("invalid (empty) broker config accepted")
	}
}
