// Package config defines the JSON configuration files for brokers, BDNs and
// requesting nodes. The paper: "A node configuration file contains
// information regarding a set of BDNs that can manage its broker discovery
// request... A client can add information regarding any other privately run
// BDN within its configuration file too"; brokers advertise "to the BDNs
// that are listed in the broker's configuration file", and the discovery
// dedup window "can be configured through the broker configuration file".
package config

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"narada/internal/core"
	"narada/internal/dedup"
	"narada/internal/metrics"
	"narada/internal/obs"
	"narada/internal/supervise"
	"narada/internal/wal"
)

// Broker is a broker process configuration file.
type Broker struct {
	LogicalAddress string   `json:"logicalAddress"`
	Hostname       string   `json:"hostname,omitempty"`
	Realm          string   `json:"realm,omitempty"`
	Geo            string   `json:"geo,omitempty"`
	Institution    string   `json:"institution,omitempty"`
	StreamPort     int      `json:"streamPort,omitempty"`
	UDPPort        int      `json:"udpPort,omitempty"`
	DedupCapacity  int      `json:"dedupCapacity,omitempty"`
	BDNs           []string `json:"bdns,omitempty"`  // advertise to these
	Links          []string `json:"links,omitempty"` // peer broker stream addrs
	MulticastGroup string   `json:"multicastGroup,omitempty"`
	// Response policy.
	RequiredCredential string   `json:"requiredCredential,omitempty"`
	AllowedRealms      []string `json:"allowedRealms,omitempty"`
	// Self-healing: supervised links/registrations, keepalives and
	// registration refresh. Zero backoff fields take supervise defaults.
	Supervise              bool `json:"supervise,omitempty"`              // redial dead links and registrations
	SuperviseBaseBackoffMs int  `json:"superviseBaseBackoffMs,omitempty"` // first redial delay
	SuperviseMaxBackoffMs  int  `json:"superviseMaxBackoffMs,omitempty"`  // backoff ceiling
	SuperviseMaxAttempts   int  `json:"superviseMaxAttempts,omitempty"`   // give-up threshold (0 = never)
	SuperviseBreakerEvery  int  `json:"superviseBreakerEvery,omitempty"`  // failures per breaker trip (0 = off)
	HeartbeatMs            int  `json:"heartbeatMs,omitempty"`            // link keepalive interval (0 = off)
	AdvertiseIntervalMs    int  `json:"advertiseIntervalMs,omitempty"`    // registration refresh period (0 = off)
	AdvertiseTTLMs         int  `json:"advertiseTtlMs,omitempty"`         // advertised validity (0 = 3x refresh)
	// Telemetry.
	TelemetryAddr string `json:"telemetryAddr,omitempty"` // /metrics + pprof listen addr
	ObsExportAddr string `json:"obsExportAddr,omitempty"` // obscollect UDP addr for span/metric export
	LogLevel      string `json:"logLevel,omitempty"`      // debug, info, warn, error
	// Message-path sampling: trace roughly 1 in SampleEvery publishes
	// originating at this broker (0 = off), capped per topic hash at
	// SampleTopicPerSec traced messages per second (0 = uncapped).
	SampleEvery       int `json:"sampleEvery,omitempty"`
	SampleTopicPerSec int `json:"sampleTopicPerSec,omitempty"`
}

// Validate checks required fields and fills defaults.
func (b *Broker) Validate() error {
	if b.LogicalAddress == "" {
		return fmt.Errorf("config: broker: logicalAddress is required")
	}
	if b.DedupCapacity < 0 {
		return fmt.Errorf("config: broker: dedupCapacity must be >= 0")
	}
	if b.DedupCapacity == 0 {
		b.DedupCapacity = dedup.DefaultCapacity
	}
	if b.SampleEvery < 0 || b.SampleTopicPerSec < 0 {
		return fmt.Errorf("config: broker: sampleEvery and sampleTopicPerSec must be >= 0")
	}
	if _, err := obs.ParseLevel(b.LogLevel); err != nil {
		return fmt.Errorf("config: broker: %w", err)
	}
	return nil
}

// SupervisePolicy assembles the self-healing policy, or nil when supervision
// is disabled. Unset backoff fields stay zero and take the supervise
// package's defaults.
func (b *Broker) SupervisePolicy() *supervise.Policy {
	if !b.Supervise {
		return nil
	}
	return &supervise.Policy{
		BaseBackoff:      time.Duration(b.SuperviseBaseBackoffMs) * time.Millisecond,
		MaxBackoff:       time.Duration(b.SuperviseMaxBackoffMs) * time.Millisecond,
		MaxAttempts:      b.SuperviseMaxAttempts,
		BreakerThreshold: b.SuperviseBreakerEvery,
	}
}

// HeartbeatInterval returns the configured link keepalive interval.
func (b *Broker) HeartbeatInterval() time.Duration {
	return time.Duration(b.HeartbeatMs) * time.Millisecond
}

// AdvertiseInterval returns the configured registration refresh period.
func (b *Broker) AdvertiseInterval() time.Duration {
	return time.Duration(b.AdvertiseIntervalMs) * time.Millisecond
}

// AdvertiseTTL returns the configured advertisement validity window.
func (b *Broker) AdvertiseTTL() time.Duration {
	return time.Duration(b.AdvertiseTTLMs) * time.Millisecond
}

// Policy assembles the broker's response policy.
func (b *Broker) Policy() core.ResponsePolicy {
	p := core.ResponsePolicy{AllowedRealms: b.AllowedRealms}
	if b.RequiredCredential != "" {
		p.RequiredCredential = []byte(b.RequiredCredential)
	}
	return p
}

// BDN is a broker-discovery-node configuration file.
type BDN struct {
	Name               string `json:"name"`
	StreamPort         int    `json:"streamPort,omitempty"`
	UDPPort            int    `json:"udpPort,omitempty"`
	Policy             string `json:"policy,omitempty"` // "all" or "closest-farthest"
	InjectOverheadMs   int    `json:"injectOverheadMs,omitempty"`
	Private            bool   `json:"private,omitempty"`
	RequiredCredential string `json:"requiredCredential,omitempty"`
	// Registration expiry: advertisements that carry no TTL of their own
	// stay valid this long (0 = forever); the sweeper prunes at this cadence.
	AdTTLMs         int `json:"adTtlMs,omitempty"`
	SweepIntervalMs int `json:"sweepIntervalMs,omitempty"`
	// Durability: DataDir enables the write-ahead-logged registry; every
	// registration survives a crash and recovers with its remaining TTL.
	DataDir string `json:"dataDir,omitempty"`
	// Fsync is the WAL durability policy: always (default), interval, never.
	Fsync string `json:"fsync,omitempty"`
	// SnapshotEvery is the WAL-records-between-snapshots compaction knob.
	SnapshotEvery int `json:"snapshotEvery,omitempty"`
	// Replication: Peers lists the other cluster members' replication
	// addresses; ReplicaPort binds this member's replication endpoint and
	// LeaseMs tunes the leader lease (0 = 2s). Requires DataDir.
	ReplicaPort int      `json:"replicaPort,omitempty"`
	Peers       []string `json:"peers,omitempty"`
	LeaseMs     int      `json:"leaseMs,omitempty"`
	// Telemetry.
	TelemetryAddr string `json:"telemetryAddr,omitempty"` // /metrics + pprof listen addr
	ObsExportAddr string `json:"obsExportAddr,omitempty"` // obscollect UDP addr for span/metric export
	LogLevel      string `json:"logLevel,omitempty"`      // debug, info, warn, error
}

// Validate checks required fields.
func (d *BDN) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("config: bdn: name is required")
	}
	switch d.Policy {
	case "", "all", "closest-farthest":
	default:
		return fmt.Errorf("config: bdn: unknown policy %q", d.Policy)
	}
	if d.Private && d.RequiredCredential == "" {
		return fmt.Errorf("config: bdn: private BDN requires a credential")
	}
	if _, err := wal.ParseSyncPolicy(d.Fsync); err != nil {
		return fmt.Errorf("config: bdn: %w", err)
	}
	if len(d.Peers) > 0 && d.DataDir == "" {
		return fmt.Errorf("config: bdn: replication (peers) requires dataDir")
	}
	if _, err := obs.ParseLevel(d.LogLevel); err != nil {
		return fmt.Errorf("config: bdn: %w", err)
	}
	return nil
}

// SyncPolicy returns the parsed WAL durability policy.
func (d *BDN) SyncPolicy() wal.SyncPolicy {
	p, _ := wal.ParseSyncPolicy(d.Fsync)
	return p
}

// Lease returns the replication leader-lease duration (0 = package default).
func (d *BDN) Lease() time.Duration {
	return time.Duration(d.LeaseMs) * time.Millisecond
}

// InjectOverhead returns the configured per-injection cost.
func (d *BDN) InjectOverhead() time.Duration {
	return time.Duration(d.InjectOverheadMs) * time.Millisecond
}

// AdTTL returns the default registration validity window.
func (d *BDN) AdTTL() time.Duration {
	return time.Duration(d.AdTTLMs) * time.Millisecond
}

// SweepInterval returns the expired-registration sweep period.
func (d *BDN) SweepInterval() time.Duration {
	return time.Duration(d.SweepIntervalMs) * time.Millisecond
}

// Node is a requesting node's configuration file.
type Node struct {
	Name            string   `json:"name"`
	Realm           string   `json:"realm,omitempty"`
	BDNs            []string `json:"bdns"` // gridservicelocator.org (.com, .net, .info) + private BDNs
	MulticastGroup  string   `json:"multicastGroup,omitempty"`
	CollectWindowMs int      `json:"collectWindowMs,omitempty"`
	MaxResponses    int      `json:"maxResponses,omitempty"`
	TargetSetSize   int      `json:"targetSetSize,omitempty"`
	PingCount       int      `json:"pingCount,omitempty"`
	Credential      string   `json:"credential,omitempty"`
	// Weighting factors (paper §9 pseudocode); zero means defaults.
	WeightFreeToTotalMemory float64 `json:"weightFreeToTotalMemory,omitempty"`
	WeightTotalMemory       float64 `json:"weightTotalMemory,omitempty"`
	WeightNumLinks          float64 `json:"weightNumLinks,omitempty"`
	WeightCPULoad           float64 `json:"weightCPULoad,omitempty"`
}

// Validate checks required fields.
func (n *Node) Validate() error {
	if n.Name == "" {
		return fmt.Errorf("config: node: name is required")
	}
	if len(n.BDNs) == 0 && n.MulticastGroup == "" {
		return fmt.Errorf("config: node: need at least one BDN or a multicast group")
	}
	return nil
}

// DiscoveryConfig assembles a core.Config from the file.
func (n *Node) DiscoveryConfig() core.Config {
	cfg := core.Config{
		NodeName:       n.Name,
		Realm:          n.Realm,
		BDNAddrs:       n.BDNs,
		MulticastGroup: n.MulticastGroup,
		CollectWindow:  time.Duration(n.CollectWindowMs) * time.Millisecond,
		MaxResponses:   n.MaxResponses,
		PingCount:      n.PingCount,
	}
	cfg.Selection.TargetSetSize = n.TargetSetSize
	w := metrics.Weights{
		FreeToTotalMemory: n.WeightFreeToTotalMemory,
		TotalMemory:       n.WeightTotalMemory,
		NumLinks:          n.WeightNumLinks,
		CPULoad:           n.WeightCPULoad,
	}
	if w != (metrics.Weights{}) {
		cfg.Selection.Weights = w
	}
	if n.Credential != "" {
		cfg.Credentials = []byte(n.Credential)
	}
	return cfg
}

// Load reads and validates a JSON configuration file into cfg, which must be
// one of *Broker, *BDN or *Node.
func Load(path string, cfg interface{ Validate() error }) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if err := json.Unmarshal(data, cfg); err != nil {
		return fmt.Errorf("config: parsing %s: %w", path, err)
	}
	return cfg.Validate()
}

// Save writes a configuration as indented JSON.
func Save(path string, cfg any) error {
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
