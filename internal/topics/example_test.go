package topics_test

import (
	"fmt"

	"narada/internal/topics"
)

func ExampleMatch() {
	fmt.Println(topics.Match("Services/*/BrokerAdvertisement", topics.AdvertisementTopic))
	fmt.Println(topics.Match("sports/**", "sports/cricket/scores"))
	fmt.Println(topics.Match("sports/cricket", "sports/football"))
	// Output:
	// true
	// true
	// false
}

func ExampleTable() {
	t := topics.NewTable()
	_ = t.Subscribe("alice", "market/nasdaq/*")
	_ = t.Subscribe("bob", "market/**")
	fmt.Println(t.Match("market/nasdaq/GOOG"))
	fmt.Println(t.Match("market/nyse/IBM"))
	// Output:
	// [alice bob]
	// [bob]
}
