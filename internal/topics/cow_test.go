package topics

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// patternAlphabet is the pool the randomized tests draw from: exact topics,
// single-segment wildcards in every position, and terminal ** at several
// depths — including the shapes whose one-or-more semantics ("a/**" matches
// "a/b" but not "a") historically attract bugs.
var patternAlphabet = []string{
	"a", "a/b", "a/b/c", "a/b/d", "a/c/c",
	"*", "*/*", "*/b", "a/*", "a/*/c", "*/*/c",
	"**", "a/**", "a/b/**", "b/**",
	"Services/*/Advertisement", "Services/**",
}

var topicAlphabet = []string{
	"a", "b", "a/b", "a/c", "a/b/c", "a/b/d", "a/c/c", "a/b/c/d",
	"Services/BrokerDiscoveryNodes/BrokerAdvertisement",
	"Services/BrokerDiscoveryNodes/DiscoveryRequest",
}

// checkAgainstLocked asserts the COW table and the locked reference agree on
// every topic in the alphabet, across every match method.
func checkAgainstLocked(t *testing.T, cow *Table, ref *lockedTable) {
	t.Helper()
	var sc Scratch
	for _, topic := range topicAlphabet {
		want := ref.match(topic)
		sort.Strings(want)

		got := cow.Match(topic)
		if !equalStrings(got, want) {
			t.Fatalf("Match(%q) = %v, locked reference = %v", topic, got, want)
		}
		if cow.HasMatch(topic) != ref.hasMatch(topic) {
			t.Fatalf("HasMatch(%q) = %v, locked reference = %v",
				topic, cow.HasMatch(topic), ref.hasMatch(topic))
		}
		unique := map[string]int{}
		cow.MatchEachUnique(topic, &sc, func(id string, _ any) { unique[id]++ })
		if len(unique) != len(want) {
			t.Fatalf("MatchEachUnique(%q) visited %v, want %v", topic, unique, want)
		}
		for _, id := range want {
			if unique[id] != 1 {
				t.Fatalf("MatchEachUnique(%q) visited %s %d times", topic, id, unique[id])
			}
		}
	}
}

// FuzzTableCOWvsLocked drives the same mutation script against the COW table
// and the locked reference and requires identical match results after every
// step. The script byte-string decodes to subscribe/unsubscribe operations
// over a small id/pattern space, so the fuzzer explores resubscription,
// partial unsubscription, index recycling and trie pruning interleavings.
func FuzzTableCOWvsLocked(f *testing.F) {
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{0, 0x80, 0})                // subscribe, unsubscribe, resubscribe
	f.Add([]byte{13, 14, 0x8d, 13})          // terminal ** churn: "a/**", "a/b/**"
	f.Add([]byte{5, 6, 7, 0x85, 0x86, 0x87}) // wildcard-one churn
	f.Add([]byte{11, 0x8b, 11, 0x8b, 11})    // "**" flapping
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 64 {
			return
		}
		cow := NewTable()
		ref := newLockedTable()
		for _, op := range script {
			id := fmt.Sprintf("id%d", (op>>5)&0x3)
			pattern := patternAlphabet[int(op&0x1f)%len(patternAlphabet)]
			if op&0x80 != 0 {
				cow.Unsubscribe(id, pattern)
				ref.Unsubscribe(id, pattern)
			} else {
				if err := cow.Subscribe(id, pattern); err != nil {
					t.Fatalf("subscribe %q: %v", pattern, err)
				}
				if err := ref.Subscribe(id, pattern); err != nil {
					t.Fatalf("reference subscribe %q: %v", pattern, err)
				}
			}
			checkAgainstLocked(t, cow, ref)
		}
	})
}

// TestTableCOWvsLockedRandom is the long-running property-test cousin of the
// fuzz target: thousands of random mutations with full cross-checks after
// each, under several seeds, including bulk UnsubscribeAll.
func TestTableCOWvsLockedRandom(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cow := NewTable()
		ref := newLockedTable()
		for step := 0; step < 1500; step++ {
			id := fmt.Sprintf("id%d", rng.Intn(6))
			pattern := patternAlphabet[rng.Intn(len(patternAlphabet))]
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4, 5:
				if err := cow.Subscribe(id, pattern); err != nil {
					t.Fatal(err)
				}
				_ = ref.Subscribe(id, pattern)
			case 6, 7, 8:
				if cow.Unsubscribe(id, pattern) != ref.Unsubscribe(id, pattern) {
					t.Fatalf("seed %d step %d: Unsubscribe(%s, %q) disagreed",
						seed, step, id, pattern)
				}
			case 9:
				if cow.UnsubscribeAll(id) != ref.UnsubscribeAll(id) {
					t.Fatalf("seed %d step %d: UnsubscribeAll(%s) disagreed",
						seed, step, id)
				}
			}
			if step%25 == 0 {
				checkAgainstLocked(t, cow, ref)
			}
		}
		checkAgainstLocked(t, cow, ref)
	}
}

// TestMatchEachUniqueValues proves the registration value rides the match
// path: the latest non-nil value per (id, pattern) is handed back, a
// subscriber matching through several patterns is visited once, and values
// survive snapshot churn on other keys.
func TestMatchEachUniqueValues(t *testing.T) {
	tbl := NewTable()
	type queue struct{ name string }
	q1 := &queue{"q1"}
	if _, err := tbl.SubscribeValue("c1", "a/*", q1); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.SubscribeValue("c1", "a/**", q1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Subscribe("c2", "a/b"); err != nil {
		t.Fatal(err)
	}

	var sc Scratch
	got := map[string]any{}
	tbl.MatchEachUnique("a/b", &sc, func(id string, val any) {
		if _, dup := got[id]; dup {
			t.Fatalf("subscriber %s visited twice", id)
		}
		got[id] = val
	})
	if len(got) != 2 {
		t.Fatalf("visited %v, want c1 and c2", got)
	}
	if got["c1"] != q1 {
		t.Fatalf("c1 value = %v, want %v", got["c1"], q1)
	}
	if got["c2"] != nil {
		t.Fatalf("c2 value = %v, want nil", got["c2"])
	}

	// A duplicate registration with a fresh value must refresh the
	// attachment (a reconnecting client hands in its new delivery queue).
	q2 := &queue{"q2"}
	added, err := tbl.SubscribeValue("c1", "a/*", q2)
	if err != nil || added {
		t.Fatalf("refresh registration: added=%v err=%v", added, err)
	}
	tbl.Unsubscribe("c1", "a/**")
	got = map[string]any{}
	tbl.MatchEachUnique("a/b", &sc, func(id string, val any) { got[id] = val })
	if got["c1"] != q2 {
		t.Fatalf("after refresh c1 value = %v, want %v", got["c1"], q2)
	}
}

// TestCOWSnapshotIsolation proves a matcher iterating an old snapshot is
// untouched by concurrent mutation: the subscription set it observes is the
// one that existed when it loaded the root.
func TestCOWSnapshotIsolation(t *testing.T) {
	tbl := NewTable()
	for i := 0; i < 8; i++ {
		if err := tbl.Subscribe(fmt.Sprintf("id%d", i), "a/b"); err != nil {
			t.Fatal(err)
		}
	}
	var sc Scratch
	seen := 0
	tbl.MatchEachUnique("a/b", &sc, func(id string, _ any) {
		seen++
		if seen == 1 {
			// Mutate mid-iteration: the walk must still deliver the
			// generation it started on.
			for i := 0; i < 8; i++ {
				tbl.Unsubscribe(fmt.Sprintf("id%d", i), "a/b")
			}
			if err := tbl.Subscribe("late", "a/b"); err != nil {
				t.Fatal(err)
			}
		}
	})
	if seen != 8 {
		t.Fatalf("iteration over the old snapshot saw %d ids, want 8", seen)
	}
	if got := tbl.Match("a/b"); len(got) != 1 || got[0] != "late" {
		t.Fatalf("new snapshot = %v, want [late]", got)
	}
}

// TestConcurrentSubscribeMatchRace hammers the atomic snapshot swap: writers
// churn subscriptions while readers match with private scratches. Run with
// -race this proves the publish path shares nothing mutable with writers;
// the final consistency check proves no update was lost.
func TestConcurrentSubscribeMatchRace(t *testing.T) {
	tbl := NewTable()
	const writers, readers, iters = 4, 4, 400

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			id := fmt.Sprintf("writer%d", w)
			for i := 0; i < iters; i++ {
				pattern := patternAlphabet[rng.Intn(len(patternAlphabet))]
				if rng.Intn(3) == 0 {
					tbl.Unsubscribe(id, pattern)
				} else if err := tbl.Subscribe(id, pattern); err != nil {
					t.Error(err)
					return
				}
			}
			tbl.UnsubscribeAll(id)
		}(w)
	}
	const stable = "stable"
	if err := tbl.Subscribe(stable, "a/**"); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var sc Scratch
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < iters; i++ {
				topic := topicAlphabet[rng.Intn(len(topicAlphabet))]
				found := false
				tbl.MatchEachUnique(topic, &sc, func(id string, _ any) {
					if id == stable {
						found = true
					}
				})
				if Match("a/**", topic) && !found {
					t.Errorf("stable subscriber missing from Match(%q)", topic)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	// After the churn the table must hold exactly the stable registration.
	if got := tbl.Match("a/b"); len(got) != 1 || got[0] != stable {
		t.Fatalf("after churn Match(a/b) = %v, want [%s]", got, stable)
	}
	if n := tbl.Subscribers(); n != 1 {
		t.Fatalf("after churn Subscribers() = %d, want 1", n)
	}
}

// TestScratchEpochWrap forces the dedup epoch counter through its wrap and
// proves stale stamps cannot suppress legitimate visits afterwards.
func TestScratchEpochWrap(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Subscribe("x", "a"); err != nil {
		t.Fatal(err)
	}
	sc := &Scratch{}
	tbl.MatchEachUnique("a", sc, func(string, any) {}) // size the scratch
	sc.seq = ^uint32(0)                                // next call wraps to 0
	for i := range sc.seen {
		sc.seen[i] = ^uint32(0) // poison: stale stamps equal to pre-wrap seq
	}
	visited := 0
	tbl.MatchEachUnique("a", sc, func(string, any) { visited++ })
	if visited != 1 {
		t.Fatalf("post-wrap visit count = %d, want 1", visited)
	}
}
