package topics

import "sync"

// lockedTable is the test-only reference implementation the COW Table is
// differentially checked against: a mutex around the registration set and
// linear pattern matching through the Match predicate. It is deliberately
// the dumbest correct implementation — the shapes the trie optimises
// (shared prefixes, wildcard branches, dedup across patterns) are exactly
// where it must not be able to disagree with this.
type lockedTable struct {
	mu   sync.RWMutex
	subs map[string]map[string]struct{} // id -> patterns
}

func newLockedTable() *lockedTable {
	return &lockedTable{subs: make(map[string]map[string]struct{})}
}

func (t *lockedTable) Subscribe(id, pattern string) error {
	if err := ValidatePattern(pattern); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pats := t.subs[id]
	if pats == nil {
		pats = make(map[string]struct{})
		t.subs[id] = pats
	}
	pats[pattern] = struct{}{}
	return nil
}

func (t *lockedTable) Unsubscribe(id, pattern string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	pats := t.subs[id]
	if _, ok := pats[pattern]; !ok {
		return false
	}
	delete(pats, pattern)
	if len(pats) == 0 {
		delete(t.subs, id)
	}
	return true
}

func (t *lockedTable) UnsubscribeAll(id string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.subs[id])
	delete(t.subs, id)
	return n
}

// match returns the de-duplicated, unsorted ids whose patterns match topic.
func (t *lockedTable) match(topic string) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []string
	for id, pats := range t.subs {
		for pattern := range pats {
			if Match(pattern, topic) {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

func (t *lockedTable) hasMatch(topic string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, pats := range t.subs {
		for pattern := range pats {
			if Match(pattern, topic) {
				return true
			}
		}
	}
	return false
}
