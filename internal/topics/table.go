package topics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Table is a concurrent subscription registry mapping patterns to subscriber
// identities. It is built for a read-dominated workload: the registry is an
// immutable segment-trie snapshot behind an atomic pointer, so the match
// methods — the publish fast path of the whole substrate — never acquire a
// lock and never contend with subscription churn. Subscribe and Unsubscribe
// serialise on a writer mutex, path-copy the trie (every untouched node is
// shared with the previous snapshot) and publish the new root with a single
// atomic swap. A matcher that loaded the old root keeps reading a consistent
// generation; nodes reachable from a published snapshot are never mutated.
//
// Each registration may carry an opaque attachment (SubscribeValue), which
// the match path hands back without any side lookup — brokers attach the
// subscriber's delivery queue so a publish touches no other shared state.
type Table struct {
	snap atomic.Pointer[snapshot]

	mu    sync.Mutex                     // serialises writers
	byID  map[string]map[string]struct{} // subscriber -> patterns (bulk removal)
	index map[string]int32               // subscriber -> dense dedup index
	free  []int32                        // recycled dedup indexes
	width int32                          // high-water dedup index bound
	subs  int                            // total (id, pattern) registrations
}

// snapshot is one immutable generation of the subscription trie.
type snapshot struct {
	root  *trieNode
	width int32 // scratch size needed to dedup this generation
}

// entry is one registration as seen by the match path.
type entry struct {
	id  string
	idx int32 // dense per-subscriber index for O(1) match dedup
	val any   // opaque attachment (e.g. a delivery queue); may be nil
}

// trieNode is a node of an immutable snapshot. Writers clone every node on
// the path they change and replace (never mutate) the entry slices, so
// concurrent matchers can walk any published generation without locks.
type trieNode struct {
	children map[string]*trieNode
	ids      []entry // registrations whose pattern ends exactly here
	anyIDs   []entry // registrations with a terminal ** here
}

// NewTable returns an empty subscription table.
func NewTable() *Table {
	t := &Table{
		byID:  make(map[string]map[string]struct{}),
		index: make(map[string]int32),
	}
	t.snap.Store(&snapshot{root: &trieNode{}})
	return t
}

// Subscribe registers the subscriber id for the pattern.
// Duplicate registrations are idempotent.
func (t *Table) Subscribe(id, pattern string) error {
	_, err := t.SubscribeValue(id, pattern, nil)
	return err
}

// SubscribeAdded registers the subscriber id for the pattern and reports
// whether a new registration was created (false for idempotent duplicates) —
// the signal interest propagation needs.
func (t *Table) SubscribeAdded(id, pattern string) (bool, error) {
	return t.SubscribeValue(id, pattern, nil)
}

// SubscribeValue registers the subscriber id for the pattern with an opaque
// attachment that the match path returns alongside the id (MatchEachUnique).
// Duplicate (id, pattern) registrations are idempotent but refresh a non-nil
// attachment, so a re-registering subscriber can hand in its new delivery
// queue. It reports whether a new registration was created.
func (t *Table) SubscribeValue(id, pattern string, val any) (bool, error) {
	if err := ValidatePattern(pattern); err != nil {
		return false, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	pats := t.byID[id]
	if _, dup := pats[pattern]; dup {
		if val != nil {
			t.publishLocked(insertPath(t.snap.Load().root, pattern,
				entry{id: id, idx: t.index[id], val: val}))
		}
		return false, nil
	}
	if pats == nil {
		pats = make(map[string]struct{})
		t.byID[id] = pats
	}
	pats[pattern] = struct{}{}
	t.subs++

	e := entry{id: id, idx: t.indexLocked(id), val: val}
	t.publishLocked(insertPath(t.snap.Load().root, pattern, e))
	return true, nil
}

// Unsubscribe removes one (id, pattern) registration; it reports whether the
// registration existed.
func (t *Table) Unsubscribe(id, pattern string) bool {
	if ValidatePattern(pattern) != nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.removeLocked(id, pattern)
}

// UnsubscribeAll removes every registration of the subscriber, returning the
// number removed.
func (t *Table) UnsubscribeAll(id string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	pats := t.byID[id]
	patterns := make([]string, 0, len(pats))
	for pattern := range pats {
		patterns = append(patterns, pattern)
	}
	n := 0
	for _, pattern := range patterns {
		if t.removeLocked(id, pattern) {
			n++
		}
	}
	return n
}

// indexLocked returns the subscriber's dense dedup index, assigning one on
// first use (recycled indexes first, so the scratch bound stays tight).
func (t *Table) indexLocked(id string) int32 {
	if idx, ok := t.index[id]; ok {
		return idx
	}
	var idx int32
	if n := len(t.free); n > 0 {
		idx = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		idx = t.width
		t.width++
	}
	t.index[id] = idx
	return idx
}

// publishLocked swaps in a new trie generation. Caller holds mu.
func (t *Table) publishLocked(root *trieNode) {
	t.snap.Store(&snapshot{root: root, width: t.width})
}

// removeLocked deletes one registration, recycles the subscriber's dedup
// index when its last pattern goes, and publishes the pruned snapshot.
func (t *Table) removeLocked(id, pattern string) bool {
	pats, ok := t.byID[id]
	if !ok {
		return false
	}
	if _, ok := pats[pattern]; !ok {
		return false
	}
	delete(pats, pattern)
	if len(pats) == 0 {
		delete(t.byID, id)
		if idx, ok := t.index[id]; ok {
			delete(t.index, id)
			t.free = append(t.free, idx)
		}
	}
	t.subs--
	t.publishLocked(removePath(t.snap.Load().root, pattern, id))
	return true
}

// cloneNode shallow-copies a node for path-copying: the children map is
// duplicated (the writer will replace one slot), the entry slices are shared
// (they are immutable; terminal mutations substitute fresh slices).
func cloneNode(n *trieNode) *trieNode {
	c := &trieNode{ids: n.ids, anyIDs: n.anyIDs}
	if n.children != nil {
		c.children = make(map[string]*trieNode, len(n.children)+1)
		for k, v := range n.children {
			c.children[k] = v
		}
	}
	return c
}

// insertPath returns a new root with the entry registered under pattern,
// sharing every node off the mutated path with the previous generation.
func insertPath(root *trieNode, pattern string, e entry) *trieNode {
	segs := Split(pattern)
	terminalAny := segs[len(segs)-1] == WildcardAny
	if terminalAny {
		segs = segs[:len(segs)-1]
	}
	newRoot := cloneNode(root)
	node := newRoot
	for _, s := range segs {
		var next *trieNode
		if child, ok := node.children[s]; ok {
			next = cloneNode(child)
		} else {
			next = &trieNode{}
		}
		if node.children == nil {
			node.children = make(map[string]*trieNode, 1)
		}
		node.children[s] = next
		node = next
	}
	if terminalAny {
		node.anyIDs = withEntry(node.anyIDs, e)
	} else {
		node.ids = withEntry(node.ids, e)
	}
	return newRoot
}

// withEntry returns a fresh slice with e appended, or substituted for an
// existing registration of the same id (attachment refresh). The old slice
// is never written: concurrent matchers may still be iterating it.
func withEntry(old []entry, e entry) []entry {
	out := make([]entry, len(old), len(old)+1)
	copy(out, old)
	for i := range out {
		if out[i].id == e.id {
			out[i] = e
			return out
		}
	}
	return append(out, e)
}

// removePath returns a new root without (id, pattern), pruning nodes the
// removal empties. Untouched subtrees are shared with the old generation.
func removePath(root *trieNode, pattern, id string) *trieNode {
	segs := Split(pattern)
	terminalAny := segs[len(segs)-1] == WildcardAny
	if terminalAny {
		segs = segs[:len(segs)-1]
	}
	newRoot := cloneNode(root)
	path := make([]*trieNode, 0, len(segs)+1)
	path = append(path, newRoot)
	node := newRoot
	for _, s := range segs {
		child, ok := node.children[s]
		if !ok {
			return newRoot // bookkeeping said it exists; nothing to prune
		}
		next := cloneNode(child)
		node.children[s] = next
		node = next
		path = append(path, next)
	}
	if terminalAny {
		node.anyIDs = without(node.anyIDs, id)
	} else {
		node.ids = without(node.ids, id)
	}
	// Prune empty leaves bottom-up; every node on the path is a fresh clone,
	// so deleting from its parent's children map is safe.
	for i := len(path) - 1; i > 0; i-- {
		n := path[i]
		if len(n.ids) == 0 && len(n.anyIDs) == 0 && len(n.children) == 0 {
			delete(path[i-1].children, segs[i-1])
		} else {
			break
		}
	}
	return newRoot
}

// without returns a fresh slice with the id's entry removed (or the original
// slice unchanged when absent).
func without(old []entry, id string) []entry {
	for i := range old {
		if old[i].id == id {
			out := make([]entry, 0, len(old)-1)
			out = append(out, old[:i]...)
			return append(out, old[i+1:]...)
		}
	}
	return old
}

// Match returns the sorted, de-duplicated subscriber ids whose patterns
// match the concrete topic. It is a convenience wrapper over MatchAppend;
// hot paths that can reuse a scratch buffer should call MatchAppend,
// MatchEach or MatchEachUnique instead.
func (t *Table) Match(topic string) []string {
	ids := t.MatchAppend(topic, nil)
	if len(ids) == 0 {
		return nil
	}
	sort.Strings(ids)
	return ids
}

// MatchAppend appends the de-duplicated (but unsorted) subscriber ids whose
// patterns match the concrete topic to dst and returns the extended slice.
// Passing a caller-owned scratch buffer with sufficient capacity makes the
// whole match allocation-free; ids already present in dst are not appended
// again, so dst doubles as the de-duplication window.
func (t *Table) MatchAppend(topic string, dst []string) []string {
	return matchAppendTrie(t.snap.Load().root, topic, 0, dst)
}

// MatchEach invokes visit for every subscriber id whose pattern matches the
// concrete topic, without allocating. An id registered under several
// patterns that all match is visited once per matching pattern; callers
// needing exactly-once semantics use MatchEachUnique with a Scratch.
func (t *Table) MatchEach(topic string, visit func(id string)) {
	matchEachTrie(t.snap.Load().root, topic, 0, visit)
}

// Scratch is the reusable dedup state for MatchEachUnique: an epoch-stamped
// array indexed by the table's dense subscriber indexes, so de-duplicating a
// visit costs one array load instead of a string comparison sweep. The zero
// value is ready. A Scratch must not be used concurrently, but may be reused
// across calls and across tables (it grows to the widest generation seen).
type Scratch struct {
	seen []uint32
	seq  uint32
}

// MatchEachUnique invokes visit exactly once per matching subscriber with
// the attachment supplied at registration (nil for Subscribe). It takes no
// locks and allocates nothing once the scratch has grown to the table's
// subscriber high-water mark.
func (t *Table) MatchEachUnique(topic string, sc *Scratch, visit func(id string, val any)) {
	s := t.snap.Load()
	if int(s.width) > len(sc.seen) {
		sc.seen = make([]uint32, s.width+s.width/2+8)
	}
	sc.seq++
	if sc.seq == 0 { // epoch wrap: stale stamps could alias, reset
		clear(sc.seen)
		sc.seq = 1
	}
	matchUniqueTrie(s.root, topic, 0, sc, visit)
}

func (sc *Scratch) visitNew(es []entry, visit func(id string, val any)) {
	for i := range es {
		e := &es[i]
		if sc.seen[e.idx] == sc.seq {
			continue
		}
		sc.seen[e.idx] = sc.seq
		visit(e.id, e.val)
	}
}

func matchUniqueTrie(node *trieNode, topic string, start int, sc *Scratch, visit func(id string, val any)) {
	// A terminal ** at this node matches the (non-empty) remaining suffix —
	// and also an exact end: "a/**" matches "a/b" and "a/b/c" but not "a".
	if start > len(topic) {
		sc.visitNew(node.ids, visit)
		return
	}
	sc.visitNew(node.anyIDs, visit)
	if node.children == nil {
		return
	}
	seg, next := nextSegment(topic, start)
	if child, ok := node.children[seg]; ok {
		matchUniqueTrie(child, topic, next, sc, visit)
	}
	if child, ok := node.children[WildcardOne]; ok {
		matchUniqueTrie(child, topic, next, sc, visit)
	}
}

func matchAppendTrie(node *trieNode, topic string, start int, dst []string) []string {
	if start > len(topic) {
		for i := range node.ids {
			dst = appendUnique(dst, node.ids[i].id)
		}
		return dst
	}
	for i := range node.anyIDs {
		dst = appendUnique(dst, node.anyIDs[i].id)
	}
	if node.children == nil {
		return dst
	}
	seg, next := nextSegment(topic, start)
	if child, ok := node.children[seg]; ok {
		dst = matchAppendTrie(child, topic, next, dst)
	}
	if child, ok := node.children[WildcardOne]; ok {
		dst = matchAppendTrie(child, topic, next, dst)
	}
	return dst
}

// appendUnique appends id unless dst already holds it. The linear scan is
// cheaper than a map for the small fan-out sets a single event matches, and
// it allocates nothing.
func appendUnique(dst []string, id string) []string {
	for _, have := range dst {
		if have == id {
			return dst
		}
	}
	return append(dst, id)
}

func matchEachTrie(node *trieNode, topic string, start int, visit func(id string)) {
	if start > len(topic) {
		for i := range node.ids {
			visit(node.ids[i].id)
		}
		return
	}
	for i := range node.anyIDs {
		visit(node.anyIDs[i].id)
	}
	if node.children == nil {
		return
	}
	seg, next := nextSegment(topic, start)
	if child, ok := node.children[seg]; ok {
		matchEachTrie(child, topic, next, visit)
	}
	if child, ok := node.children[WildcardOne]; ok {
		matchEachTrie(child, topic, next, visit)
	}
}

// HasMatch reports whether any subscriber matches the topic (cheaper than
// Match when only a boolean is needed, e.g. deciding whether to forward).
func (t *Table) HasMatch(topic string) bool {
	return hasMatchTrie(t.snap.Load().root, topic, 0)
}

func hasMatchTrie(node *trieNode, topic string, start int) bool {
	if start > len(topic) {
		return len(node.ids) > 0
	}
	if len(node.anyIDs) > 0 {
		return true
	}
	if node.children == nil {
		return false
	}
	seg, next := nextSegment(topic, start)
	if child, ok := node.children[seg]; ok && hasMatchTrie(child, topic, next) {
		return true
	}
	if child, ok := node.children[WildcardOne]; ok && hasMatchTrie(child, topic, next) {
		return true
	}
	return false
}

// Patterns returns the sorted patterns registered by a subscriber.
func (t *Table) Patterns(id string) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	pats := t.byID[id]
	if len(pats) == 0 {
		return nil
	}
	out := make([]string, 0, len(pats))
	for p := range pats {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Len returns the total number of (subscriber, pattern) registrations.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.subs
}

// Subscribers returns the number of distinct subscriber ids.
func (t *Table) Subscribers() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byID)
}
