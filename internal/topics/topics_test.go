package topics

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := []string{"a", "a/b", "Services/BrokerDiscoveryNodes/BrokerAdvertisement"}
	for _, s := range good {
		if err := Validate(s); err != nil {
			t.Errorf("Validate(%q) = %v", s, err)
		}
	}
	bad := []string{"", "/a", "a/", "a//b", "a/*/b", "a/**", "*"}
	for _, s := range bad {
		if err := Validate(s); err == nil {
			t.Errorf("Validate(%q) accepted", s)
		}
	}
	deep := strings.Repeat("x/", MaxDepth) + "x"
	if err := Validate(deep); err == nil {
		t.Error("over-deep topic accepted")
	}
}

func TestValidatePattern(t *testing.T) {
	good := []string{"a", "a/*", "a/*/c", "a/**", "**", "*"}
	for _, s := range good {
		if err := ValidatePattern(s); err != nil {
			t.Errorf("ValidatePattern(%q) = %v", s, err)
		}
	}
	bad := []string{"", "/a", "a//b", "a/**/c", "**/a"}
	for _, s := range bad {
		if err := ValidatePattern(s); err == nil {
			t.Errorf("ValidatePattern(%q) accepted", s)
		}
	}
}

func TestMatch(t *testing.T) {
	cases := []struct {
		pattern, topic string
		want           bool
	}{
		{"a/b/c", "a/b/c", true},
		{"a/b/c", "a/b", false},
		{"a/b", "a/b/c", false},
		{"a/*/c", "a/b/c", true},
		{"a/*/c", "a/x/c", true},
		{"a/*/c", "a/b/d", false},
		{"*", "a", true},
		{"*", "a/b", false},
		{"a/**", "a/b", true},
		{"a/**", "a/b/c/d", true},
		{"a/**", "a", false},
		{"**", "anything/at/all", true},
		{"Services/*/BrokerAdvertisement", AdvertisementTopic, true},
		{"Services/**", DiscoveryTopic, true},
	}
	for _, c := range cases {
		if got := Match(c.pattern, c.topic); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.pattern, c.topic, got, c.want)
		}
	}
}

func TestTableExact(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Subscribe("s1", "a/b"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Subscribe("s2", "a/b"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Subscribe("s3", "a/c"); err != nil {
		t.Fatal(err)
	}
	got := tbl.Match("a/b")
	if len(got) != 2 || got[0] != "s1" || got[1] != "s2" {
		t.Fatalf("Match = %v", got)
	}
	if got := tbl.Match("a/d"); got != nil {
		t.Fatalf("Match(a/d) = %v, want nil", got)
	}
}

func TestTableWildcards(t *testing.T) {
	tbl := NewTable()
	mustSub := func(id, p string) {
		t.Helper()
		if err := tbl.Subscribe(id, p); err != nil {
			t.Fatal(err)
		}
	}
	mustSub("one", "a/*/c")
	mustSub("any", "a/**")
	mustSub("exact", "a/b/c")
	mustSub("root", "**")

	got := tbl.Match("a/b/c")
	want := []string{"any", "exact", "one", "root"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Match = %v, want %v", got, want)
	}
	got = tbl.Match("a")
	// "a/**" must NOT match bare "a"; "**" must (non-empty suffix).
	if fmt.Sprint(got) != fmt.Sprint([]string{"root"}) {
		t.Fatalf("Match(a) = %v", got)
	}
}

func TestTableDuplicateSubscribeIdempotent(t *testing.T) {
	tbl := NewTable()
	_ = tbl.Subscribe("s", "a/b")
	_ = tbl.Subscribe("s", "a/b")
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
	got := tbl.Match("a/b")
	if len(got) != 1 {
		t.Fatalf("Match = %v", got)
	}
}

func TestTableSubscribeInvalid(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Subscribe("s", "a//b"); err == nil {
		t.Fatal("invalid pattern accepted")
	}
}

func TestUnsubscribe(t *testing.T) {
	tbl := NewTable()
	_ = tbl.Subscribe("s", "a/b")
	_ = tbl.Subscribe("s", "a/**")
	if !tbl.Unsubscribe("s", "a/b") {
		t.Fatal("Unsubscribe returned false for live registration")
	}
	if tbl.Unsubscribe("s", "a/b") {
		t.Fatal("double Unsubscribe returned true")
	}
	if tbl.Unsubscribe("ghost", "a/**") {
		t.Fatal("Unsubscribe for unknown id returned true")
	}
	if got := tbl.Match("a/b"); len(got) != 1 || got[0] != "s" {
		t.Fatalf("Match after partial unsubscribe = %v", got)
	}
	if !tbl.Unsubscribe("s", "a/**") {
		t.Fatal("Unsubscribe ** failed")
	}
	if got := tbl.Match("a/b"); got != nil {
		t.Fatalf("Match after full unsubscribe = %v", got)
	}
	if tbl.Len() != 0 || tbl.Subscribers() != 0 {
		t.Fatalf("table not empty: len=%d subs=%d", tbl.Len(), tbl.Subscribers())
	}
}

func TestUnsubscribeAll(t *testing.T) {
	tbl := NewTable()
	_ = tbl.Subscribe("s", "a/b")
	_ = tbl.Subscribe("s", "c/*")
	_ = tbl.Subscribe("other", "a/b")
	if n := tbl.UnsubscribeAll("s"); n != 2 {
		t.Fatalf("UnsubscribeAll = %d, want 2", n)
	}
	if got := tbl.Match("a/b"); len(got) != 1 || got[0] != "other" {
		t.Fatalf("Match = %v", got)
	}
	if n := tbl.UnsubscribeAll("s"); n != 0 {
		t.Fatalf("second UnsubscribeAll = %d, want 0", n)
	}
}

func TestPatterns(t *testing.T) {
	tbl := NewTable()
	_ = tbl.Subscribe("s", "b/c")
	_ = tbl.Subscribe("s", "a/**")
	got := tbl.Patterns("s")
	if fmt.Sprint(got) != fmt.Sprint([]string{"a/**", "b/c"}) {
		t.Fatalf("Patterns = %v", got)
	}
	if tbl.Patterns("ghost") != nil {
		t.Fatal("Patterns for unknown id not nil")
	}
}

func TestHasMatch(t *testing.T) {
	tbl := NewTable()
	_ = tbl.Subscribe("s", "a/*/c")
	if !tbl.HasMatch("a/b/c") {
		t.Fatal("HasMatch missed a/b/c")
	}
	if tbl.HasMatch("a/b") {
		t.Fatal("HasMatch false positive")
	}
	_ = tbl.Subscribe("w", "x/**")
	if !tbl.HasMatch("x/anything") {
		t.Fatal("HasMatch missed x/**")
	}
}

// TestTableAgreesWithMatch is the central property test: for random patterns
// and topics, the trie must agree exactly with the reference Match function.
func TestTableAgreesWithMatch(t *testing.T) {
	segments := []string{"a", "b", "c", "*", "**"}
	rng := rand.New(rand.NewSource(99))
	randPattern := func() string {
		n := rng.Intn(4) + 1
		parts := make([]string, n)
		for i := range parts {
			if i == n-1 {
				parts[i] = segments[rng.Intn(len(segments))]
			} else {
				parts[i] = segments[rng.Intn(len(segments)-1)] // no ** mid-pattern
			}
		}
		return strings.Join(parts, "/")
	}
	randTopic := func() string {
		n := rng.Intn(4) + 1
		parts := make([]string, n)
		for i := range parts {
			parts[i] = segments[rng.Intn(3)] // concrete only
		}
		return strings.Join(parts, "/")
	}

	for trial := 0; trial < 300; trial++ {
		tbl := NewTable()
		patterns := make(map[string]string) // id -> pattern
		for i := 0; i < 10; i++ {
			id := fmt.Sprintf("sub%d", i)
			p := randPattern()
			if err := tbl.Subscribe(id, p); err != nil {
				t.Fatalf("Subscribe(%q): %v", p, err)
			}
			patterns[id] = p
		}
		topic := randTopic()
		got := tbl.Match(topic)
		gotSet := make(map[string]bool, len(got))
		for _, id := range got {
			gotSet[id] = true
		}
		for id, p := range patterns {
			want := Match(p, topic)
			if gotSet[id] != want {
				t.Fatalf("trial %d: pattern %q vs topic %q: trie=%v reference=%v",
					trial, p, topic, gotSet[id], want)
			}
		}
	}
}

func TestSubscribeUnsubscribeProperty(t *testing.T) {
	// Subscribing then fully unsubscribing must always empty the table.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := NewTable()
		type reg struct{ id, p string }
		var regs []reg
		count := int(n%20) + 1
		for i := 0; i < count; i++ {
			id := fmt.Sprintf("s%d", rng.Intn(5))
			p := fmt.Sprintf("t%d/x%d", rng.Intn(3), rng.Intn(3))
			if err := tbl.Subscribe(id, p); err != nil {
				return false
			}
			regs = append(regs, reg{id, p})
		}
		for _, r := range regs {
			tbl.Unsubscribe(r.id, r.p) // dup regs return false; fine
		}
		return tbl.Len() == 0 && tbl.Subscribers() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableConcurrency(t *testing.T) {
	tbl := NewTable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("g%d", g)
			for i := 0; i < 200; i++ {
				p := fmt.Sprintf("a/b%d/c%d", i%3, g%2)
				_ = tbl.Subscribe(id, p)
				tbl.Match("a/b1/c0")
				tbl.HasMatch("a/b2/c1")
				tbl.Unsubscribe(id, p)
			}
		}(g)
	}
	wg.Wait()
	if tbl.Len() != 0 {
		t.Fatalf("table not empty after balanced ops: %d", tbl.Len())
	}
}

func BenchmarkTableMatch(b *testing.B) {
	tbl := NewTable()
	for i := 0; i < 1000; i++ {
		_ = tbl.Subscribe(fmt.Sprintf("s%d", i), fmt.Sprintf("a/b%d/c%d", i%50, i%7))
	}
	_ = tbl.Subscribe("wild", "a/*/c1")
	_ = tbl.Subscribe("any", "a/**")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Match("a/b17/c3")
	}
}

func BenchmarkMatchFunc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Match("Services/*/BrokerAdvertisement", AdvertisementTopic)
	}
}

func BenchmarkTableMatchAppend(b *testing.B) {
	tbl := NewTable()
	for i := 0; i < 1000; i++ {
		_ = tbl.Subscribe(fmt.Sprintf("s%d", i), fmt.Sprintf("a/b%d/c%d", i%50, i%7))
	}
	_ = tbl.Subscribe("wild", "a/*/c1")
	_ = tbl.Subscribe("any", "a/**")
	scratch := make([]string, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = tbl.MatchAppend("a/b17/c3", scratch[:0])
	}
	_ = scratch
}

func BenchmarkTableMatchEach(b *testing.B) {
	tbl := NewTable()
	for i := 0; i < 1000; i++ {
		_ = tbl.Subscribe(fmt.Sprintf("s%d", i), fmt.Sprintf("a/b%d/c%d", i%50, i%7))
	}
	_ = tbl.Subscribe("wild", "a/*/c1")
	_ = tbl.Subscribe("any", "a/**")
	n := 0
	visit := func(string) { n++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.MatchEach("a/b17/c3", visit)
	}
	_ = n
}
