package topics

import (
	"sort"
	"testing"
)

// FuzzTableMatchDifferential cross-checks the trie-based Table.Match (and
// its allocation-free MatchAppend/MatchEach variants) against the linear
// Match predicate: for any set of registered patterns, the trie must report
// exactly the subscribers whose pattern matches the topic linearly.
func FuzzTableMatchDifferential(f *testing.F) {
	f.Add("a/b/c", "a/*/c", "a/b/c")
	f.Add("a/**", "a/b", "a/b/c")
	f.Add("*", "**", "x")
	f.Add("Services/*/Advertisement", "Services/**", "Services/BrokerDiscoveryNodes/BrokerAdvertisement")
	f.Add("a", "a/b", "a")
	f.Add("*/*", "x/*", "x/y")
	f.Fuzz(func(t *testing.T, p1, p2, topic string) {
		if Validate(topic) != nil {
			return // only concrete topics are publishable
		}
		tbl := NewTable()
		patterns := map[string]string{}
		if ValidatePattern(p1) == nil {
			if err := tbl.Subscribe("id1", p1); err != nil {
				t.Fatalf("subscribe %q: %v", p1, err)
			}
			patterns["id1"] = p1
		}
		if ValidatePattern(p2) == nil {
			if err := tbl.Subscribe("id2", p2); err != nil {
				t.Fatalf("subscribe %q: %v", p2, err)
			}
			patterns["id2"] = p2
		}

		var want []string
		for id, pattern := range patterns {
			if Match(pattern, topic) {
				want = append(want, id)
			}
		}
		sort.Strings(want)

		got := tbl.Match(topic)
		if !equalStrings(got, want) {
			t.Fatalf("Match(%q) = %v, linear reference = %v (patterns %v)",
				topic, got, want, patterns)
		}
		if tbl.HasMatch(topic) != (len(want) > 0) {
			t.Fatalf("HasMatch(%q) = %v disagrees with %v", topic, tbl.HasMatch(topic), want)
		}

		appended := tbl.MatchAppend(topic, nil)
		sort.Strings(appended)
		if !equalStrings(appended, want) {
			t.Fatalf("MatchAppend(%q) = %v, want %v", topic, appended, want)
		}

		visited := map[string]bool{}
		tbl.MatchEach(topic, func(id string) { visited[id] = true })
		if len(visited) != len(want) {
			t.Fatalf("MatchEach(%q) visited %v, want %v", topic, visited, want)
		}
		for _, id := range want {
			if !visited[id] {
				t.Fatalf("MatchEach(%q) missed %s", topic, id)
			}
		}
	})
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
