// Package topics implements the publish/subscribe topic model: topics are
// '/'-separated strings ("these have sometimes also been referred to as
// subjects"); subscribers register interest in topics and the substrate
// routes events published on a topic to the subscribers that registered an
// interest in it.
//
// Subscription patterns extend plain topics with two wildcards:
//
//	"*"  matches exactly one segment       (Services/*/Advertisement)
//	"**" matches any suffix, terminal only (Services/**)
//
// Matching is served by a segment trie, so the cost is proportional to the
// topic depth rather than to the number of subscriptions. The trie is an
// immutable copy-on-write snapshot behind an atomic pointer (RCU-style):
// the match methods on the publish fast path never take a lock and never
// contend with subscription churn — see Table.
package topics

import (
	"errors"
	"fmt"
	"strings"
)

// Well-known topics used by the discovery scheme (paper §2.3).
const (
	// AdvertisementTopic is the public topic all BDNs subscribe to for
	// broker advertisements.
	AdvertisementTopic = "Services/BrokerDiscoveryNodes/BrokerAdvertisement"
	// DiscoveryTopic is the predefined topic on which brokers propagate
	// discovery requests, guaranteeing the request can reach every broker
	// connected in the network.
	DiscoveryTopic = "Services/BrokerDiscoveryNodes/DiscoveryRequest"
)

const (
	// Separator splits topic segments.
	Separator = "/"
	// WildcardOne matches exactly one segment in a pattern.
	WildcardOne = "*"
	// WildcardAny matches any suffix; only valid as the final segment.
	WildcardAny = "**"
	// MaxDepth bounds topic depth to keep tries shallow.
	MaxDepth = 32
)

// Validation errors.
var (
	ErrEmptyTopic      = errors.New("topics: empty topic")
	ErrEmptySegment    = errors.New("topics: empty segment")
	ErrTooDeep         = errors.New("topics: too many segments")
	ErrWildcardInTopic = errors.New("topics: wildcard not allowed in a concrete topic")
	ErrWildcardAnyPos  = errors.New("topics: ** must be the final segment")
)

// Split breaks a topic into segments without validation.
func Split(topic string) []string { return strings.Split(topic, Separator) }

// Validate checks a concrete (publishable) topic.
func Validate(topic string) error {
	segs, err := checkSegments(topic)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s == WildcardOne || s == WildcardAny {
			return fmt.Errorf("%w: %q", ErrWildcardInTopic, topic)
		}
	}
	return nil
}

// ValidatePattern checks a subscription pattern.
func ValidatePattern(pattern string) error {
	segs, err := checkSegments(pattern)
	if err != nil {
		return err
	}
	for i, s := range segs {
		if s == WildcardAny && i != len(segs)-1 {
			return fmt.Errorf("%w: %q", ErrWildcardAnyPos, pattern)
		}
	}
	return nil
}

func checkSegments(topic string) ([]string, error) {
	if topic == "" {
		return nil, ErrEmptyTopic
	}
	segs := Split(topic)
	if len(segs) > MaxDepth {
		return nil, fmt.Errorf("%w: %d segments", ErrTooDeep, len(segs))
	}
	for _, s := range segs {
		if s == "" {
			return nil, fmt.Errorf("%w: %q", ErrEmptySegment, topic)
		}
	}
	return segs, nil
}

// Match reports whether a concrete topic matches a subscription pattern.
// Neither argument is validated; invalid input simply fails to match.
func Match(pattern, topic string) bool {
	ps, ts := Split(pattern), Split(topic)
	for i, p := range ps {
		if p == WildcardAny {
			// Terminal ** matches one or more remaining segments.
			return i == len(ps)-1 && i < len(ts)
		}
		if i >= len(ts) {
			return false
		}
		if p != WildcardOne && p != ts[i] {
			return false
		}
	}
	return len(ps) == len(ts)
}

// nextSegment cuts the segment of topic starting at byte offset start and
// returns it with the offset of the following segment. An offset past
// len(topic) means the topic is exhausted. Operating on offsets instead of
// strings.Split keeps the match path free of allocations.
func nextSegment(topic string, start int) (seg string, next int) {
	if i := strings.IndexByte(topic[start:], '/'); i >= 0 {
		return topic[start : start+i], start + i + 1
	}
	return topic[start:], len(topic) + 1
}
