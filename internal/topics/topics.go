// Package topics implements the publish/subscribe topic model: topics are
// '/'-separated strings ("these have sometimes also been referred to as
// subjects"); subscribers register interest in topics and the substrate
// routes events published on a topic to the subscribers that registered an
// interest in it.
//
// Subscription patterns extend plain topics with two wildcards:
//
//	"*"  matches exactly one segment       (Services/*/Advertisement)
//	"**" matches any suffix, terminal only (Services/**)
//
// Matching is served by a segment trie, so the cost is proportional to the
// topic depth rather than to the number of subscriptions.
package topics

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Well-known topics used by the discovery scheme (paper §2.3).
const (
	// AdvertisementTopic is the public topic all BDNs subscribe to for
	// broker advertisements.
	AdvertisementTopic = "Services/BrokerDiscoveryNodes/BrokerAdvertisement"
	// DiscoveryTopic is the predefined topic on which brokers propagate
	// discovery requests, guaranteeing the request can reach every broker
	// connected in the network.
	DiscoveryTopic = "Services/BrokerDiscoveryNodes/DiscoveryRequest"
)

const (
	// Separator splits topic segments.
	Separator = "/"
	// WildcardOne matches exactly one segment in a pattern.
	WildcardOne = "*"
	// WildcardAny matches any suffix; only valid as the final segment.
	WildcardAny = "**"
	// MaxDepth bounds topic depth to keep tries shallow.
	MaxDepth = 32
)

// Validation errors.
var (
	ErrEmptyTopic      = errors.New("topics: empty topic")
	ErrEmptySegment    = errors.New("topics: empty segment")
	ErrTooDeep         = errors.New("topics: too many segments")
	ErrWildcardInTopic = errors.New("topics: wildcard not allowed in a concrete topic")
	ErrWildcardAnyPos  = errors.New("topics: ** must be the final segment")
)

// Split breaks a topic into segments without validation.
func Split(topic string) []string { return strings.Split(topic, Separator) }

// Validate checks a concrete (publishable) topic.
func Validate(topic string) error {
	segs, err := checkSegments(topic)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s == WildcardOne || s == WildcardAny {
			return fmt.Errorf("%w: %q", ErrWildcardInTopic, topic)
		}
	}
	return nil
}

// ValidatePattern checks a subscription pattern.
func ValidatePattern(pattern string) error {
	segs, err := checkSegments(pattern)
	if err != nil {
		return err
	}
	for i, s := range segs {
		if s == WildcardAny && i != len(segs)-1 {
			return fmt.Errorf("%w: %q", ErrWildcardAnyPos, pattern)
		}
	}
	return nil
}

func checkSegments(topic string) ([]string, error) {
	if topic == "" {
		return nil, ErrEmptyTopic
	}
	segs := Split(topic)
	if len(segs) > MaxDepth {
		return nil, fmt.Errorf("%w: %d segments", ErrTooDeep, len(segs))
	}
	for _, s := range segs {
		if s == "" {
			return nil, fmt.Errorf("%w: %q", ErrEmptySegment, topic)
		}
	}
	return segs, nil
}

// Match reports whether a concrete topic matches a subscription pattern.
// Neither argument is validated; invalid input simply fails to match.
func Match(pattern, topic string) bool {
	ps, ts := Split(pattern), Split(topic)
	for i, p := range ps {
		if p == WildcardAny {
			// Terminal ** matches one or more remaining segments.
			return i == len(ps)-1 && i < len(ts)
		}
		if i >= len(ts) {
			return false
		}
		if p != WildcardOne && p != ts[i] {
			return false
		}
	}
	return len(ps) == len(ts)
}

// Table is a concurrent subscription registry mapping patterns to subscriber
// identities.
type Table struct {
	mu   sync.RWMutex
	root *trieNode
	// byID tracks each subscriber's patterns for bulk removal.
	byID map[string]map[string]struct{}
	subs int // total (id, pattern) registrations
}

type trieNode struct {
	children map[string]*trieNode
	ids      map[string]struct{} // ids subscribed to the exact path ending here
	anyIDs   map[string]struct{} // ids subscribed with a terminal ** here
}

func newTrieNode() *trieNode { return &trieNode{} }

// NewTable returns an empty subscription table.
func NewTable() *Table {
	return &Table{root: newTrieNode(), byID: make(map[string]map[string]struct{})}
}

// Subscribe registers the subscriber id for the pattern.
// Duplicate registrations are idempotent.
func (t *Table) Subscribe(id, pattern string) error {
	_, err := t.SubscribeAdded(id, pattern)
	return err
}

// SubscribeAdded registers the subscriber id for the pattern and reports
// whether a new registration was created (false for idempotent duplicates) —
// the signal interest propagation needs.
func (t *Table) SubscribeAdded(id, pattern string) (bool, error) {
	if err := ValidatePattern(pattern); err != nil {
		return false, err
	}
	segs := Split(pattern)
	t.mu.Lock()
	defer t.mu.Unlock()

	node := t.root
	terminalAny := false
	for i, s := range segs {
		if s == WildcardAny && i == len(segs)-1 {
			terminalAny = true
			break
		}
		if node.children == nil {
			node.children = make(map[string]*trieNode)
		}
		next, ok := node.children[s]
		if !ok {
			next = newTrieNode()
			node.children[s] = next
		}
		node = next
	}
	var set *map[string]struct{}
	if terminalAny {
		set = &node.anyIDs
	} else {
		set = &node.ids
	}
	if *set == nil {
		*set = make(map[string]struct{})
	}
	if _, dup := (*set)[id]; dup {
		return false, nil
	}
	(*set)[id] = struct{}{}

	pats, ok := t.byID[id]
	if !ok {
		pats = make(map[string]struct{})
		t.byID[id] = pats
	}
	pats[pattern] = struct{}{}
	t.subs++
	return true, nil
}

// Unsubscribe removes one (id, pattern) registration; it reports whether the
// registration existed.
func (t *Table) Unsubscribe(id, pattern string) bool {
	if ValidatePattern(pattern) != nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if pats, ok := t.byID[id]; !ok {
		return false
	} else if _, ok := pats[pattern]; !ok {
		return false
	}
	t.removeLocked(id, pattern)
	return true
}

// UnsubscribeAll removes every registration of the subscriber, returning the
// number removed.
func (t *Table) UnsubscribeAll(id string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	pats := t.byID[id]
	n := 0
	for pattern := range pats {
		t.removeLocked(id, pattern)
		n++
	}
	return n
}

// removeLocked deletes one registration and prunes empty trie nodes.
func (t *Table) removeLocked(id, pattern string) {
	segs := Split(pattern)
	terminalAny := segs[len(segs)-1] == WildcardAny
	if terminalAny {
		segs = segs[:len(segs)-1]
	}
	// Walk down recording the path for pruning.
	path := make([]*trieNode, 0, len(segs)+1)
	node := t.root
	path = append(path, node)
	for _, s := range segs {
		next, ok := node.children[s]
		if !ok {
			return
		}
		node = next
		path = append(path, node)
	}
	if terminalAny {
		delete(node.anyIDs, id)
	} else {
		delete(node.ids, id)
	}
	// Prune empty leaves bottom-up.
	for i := len(path) - 1; i > 0; i-- {
		n := path[i]
		if len(n.ids) == 0 && len(n.anyIDs) == 0 && len(n.children) == 0 {
			delete(path[i-1].children, segs[i-1])
		} else {
			break
		}
	}
	pats := t.byID[id]
	delete(pats, pattern)
	if len(pats) == 0 {
		delete(t.byID, id)
	}
	t.subs--
}

// Match returns the sorted, de-duplicated subscriber ids whose patterns
// match the concrete topic.
func (t *Table) Match(topic string) []string {
	segs := Split(topic)
	out := make(map[string]struct{})
	t.mu.RLock()
	matchTrie(t.root, segs, out)
	t.mu.RUnlock()
	if len(out) == 0 {
		return nil
	}
	ids := make([]string, 0, len(out))
	for id := range out {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func matchTrie(node *trieNode, segs []string, out map[string]struct{}) {
	// A terminal ** at this node matches the (non-empty) remaining suffix —
	// and also an exact end: "a/**" matches "a/b" and "a/b/c" but not "a".
	if len(segs) > 0 {
		for id := range node.anyIDs {
			out[id] = struct{}{}
		}
	}
	if len(segs) == 0 {
		for id := range node.ids {
			out[id] = struct{}{}
		}
		return
	}
	if node.children == nil {
		return
	}
	if next, ok := node.children[segs[0]]; ok {
		matchTrie(next, segs[1:], out)
	}
	if next, ok := node.children[WildcardOne]; ok {
		matchTrie(next, segs[1:], out)
	}
}

// HasMatch reports whether any subscriber matches the topic (cheaper than
// Match when only a boolean is needed, e.g. deciding whether to forward).
func (t *Table) HasMatch(topic string) bool {
	segs := Split(topic)
	t.mu.RLock()
	defer t.mu.RUnlock()
	return hasMatchTrie(t.root, segs)
}

func hasMatchTrie(node *trieNode, segs []string) bool {
	if len(segs) > 0 && len(node.anyIDs) > 0 {
		return true
	}
	if len(segs) == 0 {
		return len(node.ids) > 0
	}
	if node.children == nil {
		return false
	}
	if next, ok := node.children[segs[0]]; ok && hasMatchTrie(next, segs[1:]) {
		return true
	}
	if next, ok := node.children[WildcardOne]; ok && hasMatchTrie(next, segs[1:]) {
		return true
	}
	return false
}

// Patterns returns the sorted patterns registered by a subscriber.
func (t *Table) Patterns(id string) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	pats := t.byID[id]
	if len(pats) == 0 {
		return nil
	}
	out := make([]string, 0, len(pats))
	for p := range pats {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Len returns the total number of (subscriber, pattern) registrations.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.subs
}

// Subscribers returns the number of distinct subscriber ids.
func (t *Table) Subscribers() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.byID)
}
