// Package topics implements the publish/subscribe topic model: topics are
// '/'-separated strings ("these have sometimes also been referred to as
// subjects"); subscribers register interest in topics and the substrate
// routes events published on a topic to the subscribers that registered an
// interest in it.
//
// Subscription patterns extend plain topics with two wildcards:
//
//	"*"  matches exactly one segment       (Services/*/Advertisement)
//	"**" matches any suffix, terminal only (Services/**)
//
// Matching is served by a segment trie, so the cost is proportional to the
// topic depth rather than to the number of subscriptions.
package topics

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Well-known topics used by the discovery scheme (paper §2.3).
const (
	// AdvertisementTopic is the public topic all BDNs subscribe to for
	// broker advertisements.
	AdvertisementTopic = "Services/BrokerDiscoveryNodes/BrokerAdvertisement"
	// DiscoveryTopic is the predefined topic on which brokers propagate
	// discovery requests, guaranteeing the request can reach every broker
	// connected in the network.
	DiscoveryTopic = "Services/BrokerDiscoveryNodes/DiscoveryRequest"
)

const (
	// Separator splits topic segments.
	Separator = "/"
	// WildcardOne matches exactly one segment in a pattern.
	WildcardOne = "*"
	// WildcardAny matches any suffix; only valid as the final segment.
	WildcardAny = "**"
	// MaxDepth bounds topic depth to keep tries shallow.
	MaxDepth = 32
)

// Validation errors.
var (
	ErrEmptyTopic      = errors.New("topics: empty topic")
	ErrEmptySegment    = errors.New("topics: empty segment")
	ErrTooDeep         = errors.New("topics: too many segments")
	ErrWildcardInTopic = errors.New("topics: wildcard not allowed in a concrete topic")
	ErrWildcardAnyPos  = errors.New("topics: ** must be the final segment")
)

// Split breaks a topic into segments without validation.
func Split(topic string) []string { return strings.Split(topic, Separator) }

// Validate checks a concrete (publishable) topic.
func Validate(topic string) error {
	segs, err := checkSegments(topic)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s == WildcardOne || s == WildcardAny {
			return fmt.Errorf("%w: %q", ErrWildcardInTopic, topic)
		}
	}
	return nil
}

// ValidatePattern checks a subscription pattern.
func ValidatePattern(pattern string) error {
	segs, err := checkSegments(pattern)
	if err != nil {
		return err
	}
	for i, s := range segs {
		if s == WildcardAny && i != len(segs)-1 {
			return fmt.Errorf("%w: %q", ErrWildcardAnyPos, pattern)
		}
	}
	return nil
}

func checkSegments(topic string) ([]string, error) {
	if topic == "" {
		return nil, ErrEmptyTopic
	}
	segs := Split(topic)
	if len(segs) > MaxDepth {
		return nil, fmt.Errorf("%w: %d segments", ErrTooDeep, len(segs))
	}
	for _, s := range segs {
		if s == "" {
			return nil, fmt.Errorf("%w: %q", ErrEmptySegment, topic)
		}
	}
	return segs, nil
}

// Match reports whether a concrete topic matches a subscription pattern.
// Neither argument is validated; invalid input simply fails to match.
func Match(pattern, topic string) bool {
	ps, ts := Split(pattern), Split(topic)
	for i, p := range ps {
		if p == WildcardAny {
			// Terminal ** matches one or more remaining segments.
			return i == len(ps)-1 && i < len(ts)
		}
		if i >= len(ts) {
			return false
		}
		if p != WildcardOne && p != ts[i] {
			return false
		}
	}
	return len(ps) == len(ts)
}

// Table is a concurrent subscription registry mapping patterns to subscriber
// identities.
type Table struct {
	mu   sync.RWMutex
	root *trieNode
	// byID tracks each subscriber's patterns for bulk removal.
	byID map[string]map[string]struct{}
	subs int // total (id, pattern) registrations
}

type trieNode struct {
	children map[string]*trieNode
	ids      map[string]struct{} // ids subscribed to the exact path ending here
	anyIDs   map[string]struct{} // ids subscribed with a terminal ** here
}

func newTrieNode() *trieNode { return &trieNode{} }

// NewTable returns an empty subscription table.
func NewTable() *Table {
	return &Table{root: newTrieNode(), byID: make(map[string]map[string]struct{})}
}

// Subscribe registers the subscriber id for the pattern.
// Duplicate registrations are idempotent.
func (t *Table) Subscribe(id, pattern string) error {
	_, err := t.SubscribeAdded(id, pattern)
	return err
}

// SubscribeAdded registers the subscriber id for the pattern and reports
// whether a new registration was created (false for idempotent duplicates) —
// the signal interest propagation needs.
func (t *Table) SubscribeAdded(id, pattern string) (bool, error) {
	if err := ValidatePattern(pattern); err != nil {
		return false, err
	}
	segs := Split(pattern)
	t.mu.Lock()
	defer t.mu.Unlock()

	node := t.root
	terminalAny := false
	for i, s := range segs {
		if s == WildcardAny && i == len(segs)-1 {
			terminalAny = true
			break
		}
		if node.children == nil {
			node.children = make(map[string]*trieNode)
		}
		next, ok := node.children[s]
		if !ok {
			next = newTrieNode()
			node.children[s] = next
		}
		node = next
	}
	var set *map[string]struct{}
	if terminalAny {
		set = &node.anyIDs
	} else {
		set = &node.ids
	}
	if *set == nil {
		*set = make(map[string]struct{})
	}
	if _, dup := (*set)[id]; dup {
		return false, nil
	}
	(*set)[id] = struct{}{}

	pats, ok := t.byID[id]
	if !ok {
		pats = make(map[string]struct{})
		t.byID[id] = pats
	}
	pats[pattern] = struct{}{}
	t.subs++
	return true, nil
}

// Unsubscribe removes one (id, pattern) registration; it reports whether the
// registration existed.
func (t *Table) Unsubscribe(id, pattern string) bool {
	if ValidatePattern(pattern) != nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if pats, ok := t.byID[id]; !ok {
		return false
	} else if _, ok := pats[pattern]; !ok {
		return false
	}
	t.removeLocked(id, pattern)
	return true
}

// UnsubscribeAll removes every registration of the subscriber, returning the
// number removed.
func (t *Table) UnsubscribeAll(id string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	pats := t.byID[id]
	n := 0
	for pattern := range pats {
		t.removeLocked(id, pattern)
		n++
	}
	return n
}

// removeLocked deletes one registration and prunes empty trie nodes.
func (t *Table) removeLocked(id, pattern string) {
	segs := Split(pattern)
	terminalAny := segs[len(segs)-1] == WildcardAny
	if terminalAny {
		segs = segs[:len(segs)-1]
	}
	// Walk down recording the path for pruning.
	path := make([]*trieNode, 0, len(segs)+1)
	node := t.root
	path = append(path, node)
	for _, s := range segs {
		next, ok := node.children[s]
		if !ok {
			return
		}
		node = next
		path = append(path, node)
	}
	if terminalAny {
		delete(node.anyIDs, id)
	} else {
		delete(node.ids, id)
	}
	// Prune empty leaves bottom-up.
	for i := len(path) - 1; i > 0; i-- {
		n := path[i]
		if len(n.ids) == 0 && len(n.anyIDs) == 0 && len(n.children) == 0 {
			delete(path[i-1].children, segs[i-1])
		} else {
			break
		}
	}
	pats := t.byID[id]
	delete(pats, pattern)
	if len(pats) == 0 {
		delete(t.byID, id)
	}
	t.subs--
}

// Match returns the sorted, de-duplicated subscriber ids whose patterns
// match the concrete topic. It is a convenience wrapper over MatchAppend;
// hot paths that can reuse a scratch buffer should call MatchAppend or
// MatchEach instead.
func (t *Table) Match(topic string) []string {
	ids := t.MatchAppend(topic, nil)
	if len(ids) == 0 {
		return nil
	}
	sort.Strings(ids)
	return ids
}

// MatchAppend appends the de-duplicated (but unsorted) subscriber ids whose
// patterns match the concrete topic to dst and returns the extended slice.
// Passing a caller-owned scratch buffer with sufficient capacity makes the
// whole match allocation-free; ids already present in dst are not appended
// again, so dst doubles as the de-duplication window.
func (t *Table) MatchAppend(topic string, dst []string) []string {
	t.mu.RLock()
	dst = matchAppendTrie(t.root, topic, 0, dst)
	t.mu.RUnlock()
	return dst
}

// MatchEach invokes visit for every subscriber id whose pattern matches the
// concrete topic, without allocating. An id registered under several
// patterns that all match is visited once per matching pattern; callers
// needing exactly-once semantics use MatchAppend with a scratch buffer.
func (t *Table) MatchEach(topic string, visit func(id string)) {
	t.mu.RLock()
	matchEachTrie(t.root, topic, 0, visit)
	t.mu.RUnlock()
}

// nextSegment cuts the segment of topic starting at byte offset start and
// returns it with the offset of the following segment. An offset past
// len(topic) means the topic is exhausted. Operating on offsets instead of
// strings.Split keeps the match path free of allocations.
func nextSegment(topic string, start int) (seg string, next int) {
	if i := strings.IndexByte(topic[start:], '/'); i >= 0 {
		return topic[start : start+i], start + i + 1
	}
	return topic[start:], len(topic) + 1
}

func matchAppendTrie(node *trieNode, topic string, start int, dst []string) []string {
	// A terminal ** at this node matches the (non-empty) remaining suffix —
	// and also an exact end: "a/**" matches "a/b" and "a/b/c" but not "a".
	if start > len(topic) {
		for id := range node.ids {
			dst = appendUnique(dst, id)
		}
		return dst
	}
	for id := range node.anyIDs {
		dst = appendUnique(dst, id)
	}
	if node.children == nil {
		return dst
	}
	seg, next := nextSegment(topic, start)
	if child, ok := node.children[seg]; ok {
		dst = matchAppendTrie(child, topic, next, dst)
	}
	if child, ok := node.children[WildcardOne]; ok {
		dst = matchAppendTrie(child, topic, next, dst)
	}
	return dst
}

// appendUnique appends id unless dst already holds it. The linear scan is
// cheaper than a map for the small fan-out sets a single event matches, and
// it allocates nothing.
func appendUnique(dst []string, id string) []string {
	for _, have := range dst {
		if have == id {
			return dst
		}
	}
	return append(dst, id)
}

func matchEachTrie(node *trieNode, topic string, start int, visit func(id string)) {
	if start > len(topic) {
		for id := range node.ids {
			visit(id)
		}
		return
	}
	for id := range node.anyIDs {
		visit(id)
	}
	if node.children == nil {
		return
	}
	seg, next := nextSegment(topic, start)
	if child, ok := node.children[seg]; ok {
		matchEachTrie(child, topic, next, visit)
	}
	if child, ok := node.children[WildcardOne]; ok {
		matchEachTrie(child, topic, next, visit)
	}
}

// HasMatch reports whether any subscriber matches the topic (cheaper than
// Match when only a boolean is needed, e.g. deciding whether to forward).
func (t *Table) HasMatch(topic string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return hasMatchTrie(t.root, topic, 0)
}

func hasMatchTrie(node *trieNode, topic string, start int) bool {
	if start > len(topic) {
		return len(node.ids) > 0
	}
	if len(node.anyIDs) > 0 {
		return true
	}
	if node.children == nil {
		return false
	}
	seg, next := nextSegment(topic, start)
	if child, ok := node.children[seg]; ok && hasMatchTrie(child, topic, next) {
		return true
	}
	if child, ok := node.children[WildcardOne]; ok && hasMatchTrie(child, topic, next) {
		return true
	}
	return false
}

// Patterns returns the sorted patterns registered by a subscriber.
func (t *Table) Patterns(id string) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	pats := t.byID[id]
	if len(pats) == 0 {
		return nil
	}
	out := make([]string, 0, len(pats))
	for p := range pats {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Len returns the total number of (subscriber, pattern) registrations.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.subs
}

// Subscribers returns the number of distinct subscriber ids.
func (t *Table) Subscribers() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.byID)
}
