// Package replay implements the event-replay service the paper lists among
// the NaradaBrokering substrate's capabilities ("reliable delivery, replays,
// (de)compression of large payloads ..."): brokers retain a bounded window
// of recent events per topic, and late-joining subscribers can request the
// events they missed.
package replay

import (
	"sync"

	"narada/internal/event"
	"narada/internal/topics"
)

// DefaultCapacity is the default retained events per topic.
const DefaultCapacity = 64

// Store is a bounded per-topic ring buffer of recent events. It is safe for
// concurrent use by the broker's routing goroutines.
type Store struct {
	capacity int

	mu     sync.Mutex
	byTop  map[string]*ring
	stored uint64
	served uint64
}

type ring struct {
	buf  []*event.Event
	head int // next slot to overwrite
	full bool
}

// NewStore creates a Store retaining capacity events per topic
// (<= 0 means DefaultCapacity).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{capacity: capacity, byTop: make(map[string]*ring)}
}

// Capacity returns the per-topic retention window.
func (s *Store) Capacity() int { return s.capacity }

// Add retains one published event (a defensive clone, so later mutation of
// the routed event cannot corrupt history).
func (s *Store) Add(ev *event.Event) {
	if ev == nil || ev.Type != event.TypePublish || ev.Topic == "" {
		return
	}
	c := ev.Clone()
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.byTop[ev.Topic]
	if !ok {
		r = &ring{buf: make([]*event.Event, s.capacity)}
		s.byTop[ev.Topic] = r
	}
	r.buf[r.head] = c
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
		r.full = true
	}
	s.stored++
}

// events returns a ring's contents oldest-first. Caller holds mu.
func (r *ring) events() []*event.Event {
	if !r.full {
		return append([]*event.Event(nil), r.buf[:r.head]...)
	}
	out := make([]*event.Event, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// Replay returns up to limit retained events whose topic matches the
// subscription pattern, oldest first (limit <= 0 means no limit). Events
// from different topics interleave in per-topic order.
func (s *Store) Replay(pattern string, limit int) []*event.Event {
	if topics.ValidatePattern(pattern) != nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*event.Event
	for topic, r := range s.byTop {
		if !topics.Match(pattern, topic) {
			continue
		}
		out = append(out, r.events()...)
	}
	// Trim to the most recent `limit` (they are the ones a late joiner
	// missed most recently).
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	// Hand out clones so callers cannot corrupt retained history.
	for i, ev := range out {
		out[i] = ev.Clone()
	}
	s.served += uint64(len(out))
	return out
}

// TopicCount returns the number of topics with retained history.
func (s *Store) TopicCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byTop)
}

// Stats returns total events stored and served.
func (s *Store) Stats() (stored, served uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stored, s.served
}
