package replay

import (
	"fmt"
	"sync"
	"testing"

	"narada/internal/event"
)

func pub(topic, payload string) *event.Event {
	return event.New(event.TypePublish, topic, []byte(payload))
}

func TestAddAndReplayExact(t *testing.T) {
	s := NewStore(8)
	s.Add(pub("a/b", "1"))
	s.Add(pub("a/b", "2"))
	s.Add(pub("a/c", "x"))
	got := s.Replay("a/b", 0)
	if len(got) != 2 {
		t.Fatalf("replayed %d, want 2", len(got))
	}
	if string(got[0].Payload) != "1" || string(got[1].Payload) != "2" {
		t.Fatalf("order wrong: %q %q", got[0].Payload, got[1].Payload)
	}
}

func TestReplayWildcard(t *testing.T) {
	s := NewStore(8)
	s.Add(pub("a/b", "1"))
	s.Add(pub("a/c", "2"))
	s.Add(pub("z/z", "3"))
	got := s.Replay("a/*", 0)
	if len(got) != 2 {
		t.Fatalf("replayed %d, want 2", len(got))
	}
	if got := s.Replay("**", 0); len(got) != 3 {
		t.Fatalf("replayed %d for **, want 3", len(got))
	}
}

func TestRingEviction(t *testing.T) {
	s := NewStore(4)
	for i := 0; i < 10; i++ {
		s.Add(pub("t/t", fmt.Sprintf("%d", i)))
	}
	got := s.Replay("t/t", 0)
	if len(got) != 4 {
		t.Fatalf("retained %d, want 4", len(got))
	}
	for i, ev := range got {
		want := fmt.Sprintf("%d", 6+i) // last four, oldest first
		if string(ev.Payload) != want {
			t.Fatalf("slot %d = %q, want %q", i, ev.Payload, want)
		}
	}
}

func TestReplayLimit(t *testing.T) {
	s := NewStore(16)
	for i := 0; i < 10; i++ {
		s.Add(pub("t/t", fmt.Sprintf("%d", i)))
	}
	got := s.Replay("t/t", 3)
	if len(got) != 3 {
		t.Fatalf("limit not applied: %d", len(got))
	}
	if string(got[0].Payload) != "7" || string(got[2].Payload) != "9" {
		t.Fatalf("limit kept wrong window: %q..%q", got[0].Payload, got[2].Payload)
	}
}

func TestIgnoresNonPublish(t *testing.T) {
	s := NewStore(4)
	s.Add(event.New(event.TypePing, "t/t", nil))
	s.Add(nil)
	s.Add(event.New(event.TypePublish, "", []byte("no-topic")))
	if s.TopicCount() != 0 {
		t.Fatalf("non-publish retained: %d topics", s.TopicCount())
	}
}

func TestReplayInvalidPattern(t *testing.T) {
	s := NewStore(4)
	s.Add(pub("a/b", "1"))
	if got := s.Replay("a//b", 0); got != nil {
		t.Fatalf("invalid pattern served %d events", len(got))
	}
}

func TestReplayedEventsAreCopies(t *testing.T) {
	s := NewStore(4)
	ev := pub("a/b", "orig")
	s.Add(ev)
	ev.Payload[0] = 'X' // mutate after store
	got := s.Replay("a/b", 0)
	if string(got[0].Payload) != "orig" {
		t.Fatal("store aliased the caller's event")
	}
	got[0].Payload[0] = 'Y' // mutate the replayed copy
	again := s.Replay("a/b", 0)
	if string(again[0].Payload) != "orig" {
		t.Fatal("replay aliased stored history")
	}
}

func TestDefaultCapacity(t *testing.T) {
	if NewStore(0).Capacity() != DefaultCapacity {
		t.Fatal("capacity not defaulted")
	}
}

func TestStats(t *testing.T) {
	s := NewStore(4)
	s.Add(pub("a/b", "1"))
	s.Add(pub("a/b", "2"))
	_ = s.Replay("a/b", 1)
	stored, served := s.Stats()
	if stored != 2 || served != 1 {
		t.Fatalf("stats = (%d, %d), want (2, 1)", stored, served)
	}
}

func TestConcurrentAddReplay(t *testing.T) {
	s := NewStore(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Add(pub(fmt.Sprintf("c/t%d", g%3), "x"))
				s.Replay("c/*", 10)
			}
		}(g)
	}
	wg.Wait()
	if s.TopicCount() != 3 {
		t.Fatalf("topics = %d", s.TopicCount())
	}
}

func BenchmarkAdd(b *testing.B) {
	s := NewStore(256)
	ev := pub("bench/topic", "payload")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(ev)
	}
}

func BenchmarkReplay(b *testing.B) {
	s := NewStore(256)
	for i := 0; i < 256; i++ {
		s.Add(pub("bench/topic", "payload"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Replay("bench/*", 32)
	}
}
