package obs

import (
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// movablePort is a stand-in for a re-resolvable collector address: the Dial
// hook resolves "the collector" to whatever port currently holds.
type movablePort struct {
	addr atomic.Value // string
}

func (m *movablePort) set(addr string) { m.addr.Store(addr) }

func (m *movablePort) dial(string) (net.Conn, error) {
	return net.Dial("udp", m.addr.Load().(string))
}

func udpListener(t *testing.T) *net.UDPConn {
	t.Helper()
	pc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	return pc
}

// TestExporterRedialsMovedCollector kills the collector socket mid-run and
// rebinds it on a fresh port: after RedialAfter consecutive send failures the
// exporter re-resolves the address and traffic flows to the new port without
// restarting the exporter.
func TestExporterRedialsMovedCollector(t *testing.T) {
	first := udpListener(t)
	mp := &movablePort{}
	mp.set(first.LocalAddr().String())

	e, err := NewExporter(ExporterConfig{
		Addr:            "collector", // logical name; mp.dial resolves it
		Node:            "b1",
		MetricsInterval: -1,
		RedialAfter:     3,
		Dial:            mp.dial,
	})
	if err != nil {
		t.Fatalf("exporter: %v", err)
	}
	defer e.Close()

	probe := EncodeSpanPacket("b1", 0, []SpanRecord{{TraceID: "t", Span: SpanView{Name: "s"}}})
	e.send(probe)
	buf := make([]byte, 64*1024)
	first.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := first.ReadFromUDP(buf); err != nil {
		t.Fatalf("first collector never heard the exporter: %v", err)
	}

	// The collector "restarts" on a different port. Writes to the dead port
	// fail (ICMP port-unreachable surfaces as ECONNREFUSED on the connected
	// socket), and after RedialAfter of them the exporter must follow.
	second := udpListener(t)
	defer second.Close()
	first.Close()
	mp.set(second.LocalAddr().String())

	deadline := time.Now().Add(5 * time.Second)
	for e.Redials() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("exporter never redialled the moved collector")
		}
		e.send(probe)
		time.Sleep(5 * time.Millisecond)
	}

	e.send(probe)
	second.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _, err := second.ReadFromUDP(buf)
	if err != nil {
		t.Fatalf("moved collector never heard the exporter: %v", err)
	}
	pkt, err := DecodeExportPacket(buf[:n])
	if err != nil || pkt.Node != "b1" {
		t.Fatalf("post-redial packet decode = %+v, %v", pkt, err)
	}
}

// TestExporterRedialBackoff checks a failing Dial does not spin: the failure
// counter resets so another full RedialAfter window passes before the next
// attempt, and the exporter keeps counting send errors in the meantime.
func TestExporterRedialBackoff(t *testing.T) {
	dead := udpListener(t)
	addr := dead.LocalAddr().String()
	dead.Close()

	dials := 0
	e, err := NewExporter(ExporterConfig{
		Addr:            addr,
		Node:            "b1",
		MetricsInterval: -1,
		RedialAfter:     2,
		Dial: func(a string) (net.Conn, error) {
			dials++
			if dials > 1 { // first dial (construction) succeeds
				return nil, net.ErrClosed
			}
			return net.Dial("udp", a)
		},
	})
	if err != nil {
		t.Fatalf("exporter: %v", err)
	}
	defer e.Close()

	pkt := EncodeSpanPacket("b1", 0, nil)
	for i := 0; i < 10; i++ {
		e.send(pkt)
		time.Sleep(2 * time.Millisecond)
	}
	if e.Redials() != 0 {
		t.Fatalf("redials = %d with a failing dial, want 0", e.Redials())
	}
	// 10 sends with RedialAfter=2: at most 5 dial attempts, not one per send.
	if dials < 2 || dials > 6 {
		t.Fatalf("dial attempts = %d, want a handful (backoff), not per-send", dials)
	}
	if e.packetsErr.Value() == 0 {
		t.Fatal("send errors were not counted")
	}
}
