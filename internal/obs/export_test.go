package obs

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func sampleSpans() []SpanRecord {
	at := time.Unix(1120176000, 123456789).UTC()
	return []SpanRecord{
		{TraceID: "t1", Span: SpanView{Name: "request-issue", At: at, Dur: 40 * time.Millisecond,
			Attrs: []Attr{{Key: "node", Value: "requester"}, {Key: "via", Value: "bdn"}}}},
		{TraceID: "t1", Span: SpanView{Name: "bdn-ack", At: at.Add(50 * time.Millisecond)}},
		{TraceID: "t2", Span: SpanView{Name: "broker-respond", At: at.Add(time.Second),
			Attrs: []Attr{{Key: "to", Value: "127.0.0.1:4000"}}}},
	}
}

func TestSpanPacketRoundTrip(t *testing.T) {
	spans := sampleSpans()
	pkt, err := DecodeExportPacket(EncodeSpanPacket("broker-umn", -130*time.Millisecond, spans))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if pkt.Node != "broker-umn" || pkt.Offset != -130*time.Millisecond {
		t.Fatalf("header = %q %v", pkt.Node, pkt.Offset)
	}
	if pkt.Families != nil || len(pkt.Spans) != len(spans) {
		t.Fatalf("got %d spans (families %v), want %d", len(pkt.Spans), pkt.Families, len(spans))
	}
	for i, got := range pkt.Spans {
		want := spans[i]
		if got.TraceID != want.TraceID || got.Span.Name != want.Span.Name ||
			!got.Span.At.Equal(want.Span.At) || got.Span.Dur != want.Span.Dur ||
			len(got.Span.Attrs) != len(want.Span.Attrs) {
			t.Fatalf("span %d = %+v, want %+v", i, got, want)
		}
		for j, a := range got.Span.Attrs {
			if a != want.Span.Attrs[j] {
				t.Fatalf("span %d attr %d = %+v, want %+v", i, j, a, want.Span.Attrs[j])
			}
		}
	}
}

func sampleFamilies() []ExportFamily {
	return []ExportFamily{
		{Name: "narada_a_total", Help: "A.", Kind: "counter", Series: []ExportSeries{
			{Labels: []Label{{Key: "node", Value: "b1"}, {Key: "outcome", Value: "ok"}}, Counter: 42},
			{Labels: []Label{{Key: "node", Value: "b1"}, {Key: "outcome", Value: "error"}}, Counter: 7},
		}},
		{Name: "narada_b", Help: "B.", Kind: "gauge", Series: []ExportSeries{
			{Labels: []Label{{Key: "node", Value: "b1"}}, Gauge: -2.5},
		}},
		{Name: "narada_c_seconds", Help: "C.", Kind: "histogram", Series: []ExportSeries{
			{Labels: []Label{{Key: "node", Value: "b1"}},
				Bounds:  []float64{0.01, 0.1, 1},
				Buckets: []uint64{3, 2, 1, 1}, // non-cumulative, +Inf last
				Sum:     1.75, Count: 7},
		}},
	}
}

func familiesEqual(t *testing.T, got, want []ExportFamily) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d families, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Name != w.Name || g.Help != w.Help || g.Kind != w.Kind || len(g.Series) != len(w.Series) {
			t.Fatalf("family %d = %+v, want %+v", i, g, w)
		}
		for j := range w.Series {
			gs, ws := g.Series[j], w.Series[j]
			if gs.Counter != ws.Counter || gs.Gauge != ws.Gauge || gs.Sum != ws.Sum ||
				gs.Count != ws.Count || len(gs.Labels) != len(ws.Labels) ||
				len(gs.Bounds) != len(ws.Bounds) || len(gs.Buckets) != len(ws.Buckets) {
				t.Fatalf("family %d series %d = %+v, want %+v", i, j, gs, ws)
			}
			for k := range ws.Labels {
				if gs.Labels[k] != ws.Labels[k] {
					t.Fatalf("family %d series %d label %d mismatch", i, j, k)
				}
			}
			for k := range ws.Bounds {
				if gs.Bounds[k] != ws.Bounds[k] {
					t.Fatalf("family %d series %d bound %d mismatch", i, j, k)
				}
			}
			for k := range ws.Buckets {
				if gs.Buckets[k] != ws.Buckets[k] {
					t.Fatalf("family %d series %d bucket %d mismatch", i, j, k)
				}
			}
		}
	}
}

func TestMetricsPacketRoundTrip(t *testing.T) {
	fams := sampleFamilies()
	at := time.Unix(1120176060, 0).UTC()
	pkts := EncodeMetricsPackets("b1", 75*time.Millisecond, at, 7, fams, 0)
	if len(pkts) != 1 {
		t.Fatalf("got %d packets, want 1", len(pkts))
	}
	pkt, err := DecodeExportPacket(pkts[0])
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if pkt.Node != "b1" || pkt.Offset != 75*time.Millisecond || !pkt.MetricsAt.Equal(at) {
		t.Fatalf("header = %q %v %v", pkt.Node, pkt.Offset, pkt.MetricsAt)
	}
	if pkt.Seq != 7 {
		t.Fatalf("seq = %d, want 7", pkt.Seq)
	}
	familiesEqual(t, pkt.Families, fams)
}

// TestMetricsPacketChunking forces the snapshot over multiple datagrams and
// checks every family survives, in order, with no packet (except a lone
// oversized family) exceeding the byte budget.
func TestMetricsPacketChunking(t *testing.T) {
	var fams []ExportFamily
	for i := 0; i < 40; i++ {
		f := sampleFamilies()[i%3]
		f.Name = f.Name + string(rune('a'+i%26))
		fams = append(fams, f)
	}
	const maxBytes = 512
	pkts := EncodeMetricsPackets("chunky", 0, time.Unix(0, 0), 1, fams, maxBytes)
	if len(pkts) < 2 {
		t.Fatalf("got %d packets, want several", len(pkts))
	}
	var got []ExportFamily
	for i, raw := range pkts {
		pkt, err := DecodeExportPacket(raw)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if len(pkt.Families) == 0 {
			t.Fatalf("packet %d carries no families", i)
		}
		if len(raw) > maxBytes && len(pkt.Families) > 1 {
			t.Fatalf("packet %d is %d bytes with %d families; only a lone family may exceed %d",
				i, len(raw), len(pkt.Families), maxBytes)
		}
		got = append(got, pkt.Families...)
	}
	familiesEqual(t, got, fams)
}

func TestDecodeExportPacketRejectsGarbage(t *testing.T) {
	good := EncodeSpanPacket("n", 0, sampleSpans())
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte{0x00}, good[1:]...),
		"bad version": {0xb8, 0x7f, 0x01},
		"bad kind":    {0xb8, 0x01, 0x09, 0x01, 'n', 0x00},
		"truncated":   good[:len(good)-3],
	}
	for name, b := range cases {
		if _, err := DecodeExportPacket(b); err == nil {
			t.Errorf("%s: decode accepted %x", name, b)
		}
	}
}

// blockingSink blocks every Write until released — the shape of a wedged
// network path (or a collector that is simply gone while the kernel buffer
// backs up).
type blockingSink struct {
	release chan struct{}
	once    sync.Once
}

func (s *blockingSink) Write(p []byte) (int, error) {
	<-s.release
	return len(p), nil
}

func (s *blockingSink) Release() { s.once.Do(func() { close(s.release) }) }

// TestExporterNeverBlocksWithoutCollector is the drop-safety guarantee: with
// the sink wedged solid, RecordSpan stays non-blocking, the bounded buffer
// overflows into the drop counter, and nothing deadlocks.
func TestExporterNeverBlocksWithoutCollector(t *testing.T) {
	sink := &blockingSink{release: make(chan struct{})}
	e := newExporterWithSink(ExporterConfig{
		Addr: "sink", Node: "b1",
		SpanBuffer: 8, MaxBatch: 4, FlushInterval: time.Millisecond,
	}, sink)
	defer func() {
		sink.Release()
		_ = e.Close()
	}()

	const n = 5000
	start := time.Now()
	sv := SpanView{Name: "e", At: start}
	for i := 0; i < n; i++ {
		e.RecordSpan("trace", sv)
	}
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("recording %d spans against a wedged sink took %v", n, elapsed)
	}
	// Everything beyond the buffer and the one in-flight batch must have hit
	// the drop counter.
	if dropped := e.Dropped(); dropped < n-64 {
		t.Fatalf("dropped = %d, want nearly %d", dropped, n)
	}
}

// TestExporterShipsSpansAndFinalSnapshot covers the happy path: spans batch
// out, Close flushes the tail and a last metrics snapshot.
func TestExporterShipsSpansAndFinalSnapshot(t *testing.T) {
	var mu sync.Mutex
	var packets [][]byte
	capture := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		packets = append(packets, append([]byte(nil), p...))
		return len(p), nil
	})
	reg := NewRegistry()
	reg.Counter("narada_demo_total", "Demo.", L("node", "b1")).Add(9)
	e := newExporterWithSink(ExporterConfig{
		Addr: "sink", Node: "b1", Registry: reg,
		Offset:          func() time.Duration { return 20 * time.Millisecond },
		MetricsInterval: time.Hour, // only the final flush ships
	}, capture)

	const n = 10
	for i := 0; i < n; i++ {
		e.RecordSpan("t1", SpanView{Name: "ev", At: time.Unix(int64(i), 0)})
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	spans, sawDemo := 0, false
	for _, raw := range packets {
		pkt, err := DecodeExportPacket(raw)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if pkt.Node != "b1" || pkt.Offset != 20*time.Millisecond {
			t.Fatalf("packet header = %q %v", pkt.Node, pkt.Offset)
		}
		spans += len(pkt.Spans)
		for _, f := range pkt.Families {
			if f.Name == "narada_demo_total" && f.Series[0].Counter == 9 {
				sawDemo = true
			}
		}
	}
	if spans != n {
		t.Fatalf("shipped %d spans, want %d", spans, n)
	}
	if !sawDemo {
		t.Fatal("final metrics snapshot never shipped")
	}
	if e.Sent() != n || e.Dropped() != 0 {
		t.Fatalf("sent = %d dropped = %d, want %d / 0", e.Sent(), e.Dropped(), n)
	}
	if e.RecordSpan("t1", SpanView{}); false { // post-Close records must not panic
		t.Fatal("unreachable")
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestExporterSinkErrorsCounted: datagram write failures land on the error
// counter and never propagate to callers.
func TestExporterSinkErrorsCounted(t *testing.T) {
	fail := writerFunc(func(p []byte) (int, error) { return 0, errors.New("icmp unreachable") })
	e := newExporterWithSink(ExporterConfig{
		Addr: "sink", Node: "b1", FlushInterval: time.Millisecond,
	}, fail)
	e.RecordSpan("t", SpanView{Name: "x"})
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if v := e.packetsErr.Value(); v == 0 {
		t.Fatal("sink failure not counted")
	}
}

// TestRecordSpanAllocFree pins the record fast path at zero allocations —
// the exporter must stay invisible on the broker's publish path.
func TestRecordSpanAllocFree(t *testing.T) {
	e := newExporterWithSink(ExporterConfig{
		Addr: "sink", Node: "b1", SpanBuffer: 1 << 16,
		FlushInterval: time.Hour, MaxBatch: 1 << 20, // hold everything: measure enqueue only
	}, writerFunc(func(p []byte) (int, error) { return len(p), nil }))
	defer e.Close()
	sv := SpanView{Name: "alloc", At: time.Unix(0, 0), Attrs: []Attr{{Key: "k", Value: "v"}}}
	allocs := testing.AllocsPerRun(1000, func() {
		e.RecordSpan("trace-id", sv)
	})
	if allocs != 0 {
		t.Fatalf("RecordSpan allocates %.1f times per op, want 0", allocs)
	}
}

func BenchmarkRecordSpan(b *testing.B) {
	e := newExporterWithSink(ExporterConfig{
		Addr: "sink", Node: "b1", SpanBuffer: 64, FlushInterval: time.Millisecond,
	}, writerFunc(func(p []byte) (int, error) { return len(p), nil }))
	defer e.Close()
	sv := SpanView{Name: "bench", At: time.Unix(0, 0)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RecordSpan("trace-id", sv)
	}
}
