package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func sampleEvents() []Event {
	base := time.Unix(1120176060, 0).UTC()
	return []Event{
		{Seq: 1, Type: EventNodeStart, At: base, Subject: "127.0.0.1:7001", Detail: ""},
		{Seq: 2, Type: EventLinkUp, At: base.Add(time.Second), Subject: "broker-b", Detail: "role=broker"},
		{Seq: 3, Type: EventAdRefreshed, At: base.Add(2 * time.Second), Subject: "bdn:127.0.0.1:9001", Detail: "ttl=30s"},
	}
}

func TestJournalEmitDrainOrder(t *testing.T) {
	j := NewJournal(16, func() time.Time { return time.Unix(100, 0) })
	j.Emit(EventNodeStart, "addr", "")
	j.Emit(EventLinkUp, "peer-1", "role=broker")
	j.Emit(EventLinkDown, "peer-1", "read error")

	evs := j.Drain()
	if len(evs) != 3 {
		t.Fatalf("drained %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
	if evs[1].Type != EventLinkUp || evs[1].Subject != "peer-1" {
		t.Fatalf("unexpected event: %+v", evs[1])
	}
	if got := j.Drain(); got != nil {
		t.Fatalf("second drain returned %d events, want nil", len(got))
	}
	if j.Seq() != 3 {
		t.Fatalf("seq = %d after drain, want 3 (monotonic across drains)", j.Seq())
	}
}

// TestJournalWraparound fills a tiny ring past capacity and asserts the
// oldest events are overwritten: the drain holds the newest capacity-many
// events in seq order and the loss is counted, so the collector-side gap
// detector has something to see.
func TestJournalWraparound(t *testing.T) {
	j := NewJournal(4, nil)
	for i := 0; i < 10; i++ {
		j.Emit(EventReconnectAttempt, fmt.Sprintf("target-%d", i), "")
	}
	if d := j.Dropped(); d != 6 {
		t.Fatalf("dropped = %d, want 6", d)
	}
	evs := j.Drain()
	if len(evs) != 4 {
		t.Fatalf("drained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		want := uint64(7 + i) // seqs 7..10 survive
		if ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
	// Post-wrap emissions continue the sequence.
	j.Emit(EventReconnectGaveup, "target", "")
	if evs := j.Drain(); len(evs) != 1 || evs[0].Seq != 11 {
		t.Fatalf("post-wrap drain = %+v, want single seq-11 event", evs)
	}
}

// TestJournalConcurrentEmit exercises the ring under -race: concurrent
// emitters and a draining reader must never produce duplicate or zero
// sequence numbers.
func TestJournalConcurrentEmit(t *testing.T) {
	j := NewJournal(64, nil)
	const goroutines, perG = 8, 200

	seen := make(map[uint64]bool)
	var seenMu sync.Mutex
	drain := func() {
		for _, ev := range j.Drain() {
			seenMu.Lock()
			if ev.Seq == 0 || seen[ev.Seq] {
				t.Errorf("bad or duplicate seq %d", ev.Seq)
			}
			seen[ev.Seq] = true
			seenMu.Unlock()
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				drain()
			}
		}
	}()
	var emitters sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		emitters.Add(1)
		go func(g int) {
			defer emitters.Done()
			for i := 0; i < perG; i++ {
				j.Emit(EventLinkUp, fmt.Sprintf("peer-%d", g), "")
			}
		}(g)
	}
	emitters.Wait()
	close(stop)
	wg.Wait()
	drain()

	if j.Seq() != goroutines*perG {
		t.Fatalf("seq = %d, want %d", j.Seq(), goroutines*perG)
	}
	seenMu.Lock()
	kept := uint64(len(seen))
	seenMu.Unlock()
	if kept+j.Dropped() != goroutines*perG {
		t.Fatalf("kept %d + dropped %d != emitted %d", kept, j.Dropped(), goroutines*perG)
	}
}

func TestNilJournalIsSafe(t *testing.T) {
	var j *Journal
	j.Emit(EventLinkUp, "x", "y")
	if j.Drain() != nil || j.Len() != 0 || j.Dropped() != 0 || j.Seq() != 0 {
		t.Fatal("nil journal must be inert")
	}
}

// TestEventsPacketRoundTrip asserts the v4 event frame decodes to exactly
// what was encoded, including the batch drain time and per-event clocks.
func TestEventsPacketRoundTrip(t *testing.T) {
	at := time.Unix(1120176090, 12345).UTC()
	in := sampleEvents()
	frame := EncodeEventsPacket("broker-a", -40*time.Millisecond, at, in)
	pkt, err := DecodeExportPacket(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if pkt.Node != "broker-a" || pkt.Offset != -40*time.Millisecond {
		t.Fatalf("header = %q/%v", pkt.Node, pkt.Offset)
	}
	if !pkt.EventsAt.Equal(at) {
		t.Fatalf("EventsAt = %v, want %v", pkt.EventsAt, at)
	}
	if len(pkt.Events) != len(in) {
		t.Fatalf("decoded %d events, want %d", len(pkt.Events), len(in))
	}
	for i, ev := range pkt.Events {
		want := in[i]
		if ev.Seq != want.Seq || ev.Type != want.Type || ev.Subject != want.Subject ||
			ev.Detail != want.Detail || !ev.At.Equal(want.At) {
			t.Fatalf("event %d = %+v, want %+v", i, ev, want)
		}
	}
}
