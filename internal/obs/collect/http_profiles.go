package collect

import (
	"net/http"
	"time"

	"narada/internal/obs/profile"
)

func (c *Collector) serveProfiles(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := ProfileFilter{
		Node:    q.Get("node"),
		Kind:    q.Get("kind"),
		Trigger: q.Get("trigger"),
	}
	if s := q.Get("since"); s != "" {
		t, err := parseWhen(s, time.Now())
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				map[string]string{"error": "since must be a duration (5m) or RFC3339 time"})
			return
		}
		f.Since = t
	}
	refs := c.Profiles(f)
	if refs == nil {
		refs = []ProfileRef{}
	}
	writeJSON(w, http.StatusOK, refs)
}

func (c *Collector) serveProfile(w http.ResponseWriter, r *http.Request) {
	ref, data, ok := c.profiles.store.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "profile not found"})
		return
	}
	if r.URL.Query().Get("view") == "top" {
		s, err := profile.ParseText(data)
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]string{
				"error": "not a text-parseable profile (cpu profiles are binary; download raw): " + err.Error()})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		profile.WriteTop(w, s, 30)
		return
	}
	if ref.Kind == "cpu" {
		w.Header().Set("Content-Type", "application/octet-stream")
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.Header().Set("Content-Disposition", `attachment; filename="`+ref.ID+`.pprof"`)
	_, _ = w.Write(data)
}

// serveProfileDiff renders the dep-free site diff of two stored text-mode
// profiles (?a= older, ?b= newer) — the goroutine-leak workflow: diff a
// flight capture against the periodic capture that preceded it.
func (c *Collector) serveProfileDiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	aID, bID := q.Get("a"), q.Get("b")
	if aID == "" || bID == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "a and b profile ids are required"})
		return
	}
	_, aData, aOK := c.profiles.store.Get(aID)
	_, bData, bOK := c.profiles.store.Get(bID)
	if !aOK || !bOK {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "profile not found"})
		return
	}
	a, err := profile.ParseText(aData)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": "a: " + err.Error()})
		return
	}
	b, err := profile.ParseText(bData)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": "b: " + err.Error()})
		return
	}
	if a.Kind != b.Kind {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "profiles are of different kinds"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	profile.WriteDiff(w, a, b, 30)
}
