package collect

import (
	"time"

	"narada/internal/obs/collect/health"
)

// Metric families the health rules read from the series store.
const (
	metricEgressDepth     = "narada_broker_egress_queue_depth"
	metricEgressDrops     = "narada_broker_egress_dropped_total"
	metricReconnects      = "narada_broker_reconnects_total"
	metricProbeRuns       = "narada_probe_runs_total"
	metricProbeLatency    = "narada_probe_latency_seconds"
	metricDelivered       = "narada_broker_publish_delivered_total"
	metricDeliveryLatency = "narada_delivery_latency_seconds"
	metricGoroutines      = "narada_process_goroutines"
	metricGCCPU           = "narada_runtime_gc_cpu_fraction"
	metricReplicaRole     = "narada_replica_role"
	metricReplicaLag      = "narada_replica_lag_records"
	metricReplicaLeadAge  = "narada_replica_leader_age_seconds"
)

// Health returns the collector's health engine (alert listing, Firing count).
func (c *Collector) Health() *health.Engine { return c.health }

// Query runs a range query against the series store at the retention tier
// whose step matches (the /query endpoint and tests read through this).
func (c *Collector) Query(metric, node string, step time.Duration, since, now time.Time) []QuerySeries {
	return c.store.Query(metric, node, step, since, now)
}

// StoreResolutions returns the configured retention tiers, finest first.
func (c *Collector) StoreResolutions() []Resolution {
	return c.store.Resolutions()
}

func (c *Collector) healthLoop(interval time.Duration) {
	defer c.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			c.EvaluateHealthNow()
		case <-c.healthStop:
			return
		}
	}
}

// EvaluateHealthNow assembles one health Input from ingest state and the
// series store and runs the rule evaluator. The ticker calls this every
// HealthInterval; tests call it directly for deterministic evaluation.
func (c *Collector) EvaluateHealthNow() {
	now := time.Now()
	hcfg := c.health.Config()

	c.mu.Lock()
	nodes := make([]health.NodeInput, 0, len(c.nodes))
	for _, ns := range c.nodes {
		nodes = append(nodes, health.NodeInput{
			Name:        ns.name,
			LastSeen:    ns.lastSeen,
			ClockOffset: ns.offset,
		})
	}
	c.mu.Unlock()

	staleAfter := time.Duration(hcfg.DeadmanIntervals) * hcfg.ExportInterval
	for i := range nodes {
		n := &nodes[i]
		if depth, ok := c.store.LastGauge(metricEgressDepth, n.Name, staleAfter, now); ok {
			n.HasEgress = true
			n.EgressDepth = depth
		}
		if drops, ok := c.store.WindowSum(metricEgressDrops, n.Name, hcfg.EgressWindow, now); ok {
			n.HasEgress = true
			n.EgressDropRate = drops / hcfg.EgressWindow.Seconds()
		}
		if reconns, ok := c.store.WindowSum(metricReconnects, n.Name, hcfg.FlapWindow, now); ok {
			n.HasFlaps = true
			n.LinkFlapRate = reconns / hcfg.FlapWindow.Seconds()
		}
		// Delivery-latency burn: split the e2e latency histogram at the SLO
		// over both burn windows, exactly like the probe latency SLI.
		fastTotal, fastSlow := c.windowLatencySLI(metricDeliveryLatency, n.Name, hcfg.FastWindow, hcfg.DeliveryLatencySLO, now)
		slowTotal, slowSlow := c.windowLatencySLI(metricDeliveryLatency, n.Name, hcfg.SlowWindow, hcfg.DeliveryLatencySLO, now)
		if fastTotal > 0 || slowTotal > 0 {
			n.HasDelivery = true
			n.DeliveryFastTotal, n.DeliveryFastSlow = fastTotal, fastSlow
			n.DeliverySlowTotal, n.DeliverySlowSlow = slowTotal, slowSlow
		}
		// Drop ratio: drops over delivery attempts. The delivered counter is
		// recorded at egress enqueue, so every dropped data frame is already
		// in the denominator — no double counting.
		if delivered, ok := c.store.WindowSum(metricDelivered, n.Name, hcfg.EgressWindow, now); ok && delivered > 0 {
			drops, _ := c.store.WindowSum(metricEgressDrops, n.Name, hcfg.EgressWindow, now)
			n.HasDropRatio = true
			n.DropVolume = delivered
			n.DropRatio = drops / delivered
		}
		// Runtime-telemetry rules: goroutine trend and GC CPU pressure, from
		// the RuntimeSampler gauges every node exports.
		if minG, lastG, _, ok := c.store.GaugeWindowStats(metricGoroutines, n.Name, hcfg.GoroutineLeakWindow, now); ok {
			n.HasGoroutines = true
			n.GoroutinesMin, n.GoroutinesLast = minG, lastG
		}
		if _, _, avgGC, ok := c.store.GaugeWindowStats(metricGCCPU, n.Name, hcfg.GCBurnWindow, now); ok {
			n.HasGCCPU = true
			n.GCCPUFraction = avgGC
		}
		// Replication rules: role, WAL lag and leader age from the gauges a
		// replicated BDN member exports. Role is the presence marker — the
		// other two legitimately sit at zero on a healthy member.
		if role, ok := c.store.LastGauge(metricReplicaRole, n.Name, staleAfter, now); ok {
			n.HasReplication = true
			n.ReplicaPrimary = role >= 1
			if lag, ok := c.store.LastGauge(metricReplicaLag, n.Name, staleAfter, now); ok {
				n.ReplicationLag = lag
			}
			if age, ok := c.store.LastGauge(metricReplicaLeadAge, n.Name, staleAfter, now); ok {
				n.LeaderAge = age
			}
		}
	}

	var probes []health.ProbeInput
	for _, pn := range c.store.NodesWith(metricProbeRuns) {
		fast := c.store.WindowSumBy(metricProbeRuns, pn, "outcome", hcfg.FastWindow, now)
		slow := c.store.WindowSumBy(metricProbeRuns, pn, "outcome", hcfg.SlowWindow, now)
		pi := health.ProbeInput{
			Node:    pn,
			FastOK:  fast["ok"],
			FastErr: fast["error"],
			SlowOK:  slow["ok"],
			SlowErr: slow["error"],
		}
		pi.FastTotal, pi.FastSlow = c.latencySLI(pn, hcfg.FastWindow, hcfg.LatencySLO, now)
		pi.SlowTotal, pi.SlowSlow = c.latencySLI(pn, hcfg.SlowWindow, hcfg.LatencySLO, now)
		probes = append(probes, pi)
	}

	c.health.Evaluate(health.Input{Now: now, Nodes: nodes, Probes: probes})
	// Alert transitions the evaluation just produced land in the collector's
	// own journal; fold them into the event store immediately so /events and
	// /topology reads never trail the /alerts view.
	c.drainOwnEvents()
}

// latencySLI reads the probe latency histogram window and splits it into
// total observations and those slower than the SLO.
func (c *Collector) latencySLI(node string, window, slo time.Duration, now time.Time) (total, slowOnes float64) {
	return c.windowLatencySLI(metricProbeLatency, node, window, slo, now)
}

// windowLatencySLI reads a latency histogram's window and splits it into
// total observations and those slower than the SLO. Observations land on the
// slow side unless their whole bucket fits under the objective, so the SLI
// never flatters the fabric.
func (c *Collector) windowLatencySLI(metric, node string, window, slo time.Duration, now time.Time) (total, slowOnes float64) {
	bounds, buckets, count, _, ok := c.store.WindowHist(metric, node, window, now)
	if !ok || count == 0 {
		return 0, 0
	}
	good := uint64(0)
	for i, b := range bounds {
		if b <= slo.Seconds() {
			good += buckets[i]
		}
	}
	return float64(count), float64(count - min(good, count))
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
