// Package collect implements the fabric-wide observability collector: a
// connectionless UDP sink for the span batches and metric snapshots every
// broker, BDN and requester exports (internal/obs Exporter), assembling
// per-request cross-node traces and a federated metrics view.
//
// Clock alignment: span timestamps are recorded on each node's local clock,
// which may be skewed from UTC. Every export packet carries the sending
// node's ntptime-estimated offset (local − UTC); the collector subtracts it
// — aligned = recorded − offset — which places all spans on one best-effort
// UTC timeline, accurate to each node's 1-20 ms NTP residual. That is enough
// to render dissemination steps separated by network or processing delays in
// true causal order.
package collect

import (
	"fmt"
	"log/slog"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"narada/internal/obs"
	"narada/internal/obs/collect/health"
)

// DefaultTraceCapacity bounds the assembled-trace ring.
const DefaultTraceCapacity = 512

// Config parameterises a Collector.
type Config struct {
	// Listen is the UDP bind address for export packets (port 0 = auto).
	Listen string
	// TraceCapacity bounds the assembled-trace ring; the oldest trace is
	// evicted when full (<= 0 uses DefaultTraceCapacity).
	TraceCapacity int
	// Logger receives operational events; nil discards them.
	Logger *slog.Logger
	// Registry receives the collector's own metrics; nil creates a private
	// one (still served on /metrics, labelled node="obscollect").
	Registry *obs.Registry
	// Resolutions configures the series store's retention tiers, finest
	// first; nil uses DefaultResolutions (1s/10s/60s).
	Resolutions []Resolution
	// MaxSeries bounds the tracked (node, metric, label-set) series
	// (<= 0 uses DefaultMaxSeries); excess series are dropped and counted.
	MaxSeries int
	// Health parameterises the health engine's rules and sinks; nil runs
	// the engine with its documented defaults. The engine's Registry and
	// Logger default to the collector's own.
	Health *health.Config
	// HealthInterval is the rule-evaluation period (0 uses 1s; < 0
	// disables the ticker — tests call EvaluateHealthNow directly).
	HealthInterval time.Duration
	// EventCapacity bounds the per-node journal-event ring (<= 0 uses
	// DefaultEventCapacity). The ring also bounds how far back /topology
	// can time-travel.
	EventCapacity int
	// ProfileDir spools pulled and flight-recorded profiles to disk; ""
	// keeps them in memory only.
	ProfileDir string
	// ProfilePullInterval is the period of the loop that drains announced
	// node capturer rings into the collector's store (0 disables periodic
	// pulling; the flight recorder still works).
	ProfilePullInterval time.Duration
	// ProfileMaxCount / ProfileMaxBytes bound the profile store (<= 0 uses
	// DefaultProfileMaxCount / DefaultProfileMaxBytes).
	ProfileMaxCount int
	ProfileMaxBytes int64
	// FlightCPUSeconds is the CPU-sampling window of an alert-triggered
	// flight capture (<= 0 uses DefaultFlightCPUSeconds).
	FlightCPUSeconds int
	// DisableFlightRecorder turns off alert-triggered profile capture.
	DisableFlightRecorder bool
}

// span is one recorded span with its provenance: which node recorded it and
// that node's clock offset at export time.
type span struct {
	Node   string
	Offset time.Duration
	View   obs.SpanView
}

// Aligned returns the span's timestamp mapped onto the collector's
// best-effort UTC timeline.
func (s span) Aligned() time.Time { return s.View.At.Add(-s.Offset) }

// trace is one assembling cross-node trace.
type trace struct {
	id        string
	firstSeen time.Time // collector wall clock, for the listing
	spans     []span
}

// nodeState is everything known about one exporting node.
type nodeState struct {
	name      string
	offset    time.Duration // last reported clock offset
	lastSeen  time.Time     // collector wall clock
	metricsAt time.Time     // node-local capture time of families
	seq       uint64        // exporter snapshot sequence (restart detection)
	families  []obs.ExportFamily
	spans     uint64 // spans received from this node
	flowsAt   time.Time
	flows     []obs.FlowSnapshot // last per-topic flow snapshot (top-k)

	// Announced via node-info packets (wire v5): where the node's telemetry
	// HTTP endpoint lives and whether a profile capturer is mounted there.
	telemetryAddr string
	profilesOn    bool
}

// Collector receives export packets and assembles the fabric view.
type Collector struct {
	cfg    Config
	pc     *net.UDPConn
	reg    *obs.Registry
	log    *slog.Logger
	store  *seriesStore
	health *health.Engine

	mu     sync.Mutex
	nodes  map[string]*nodeState
	traces map[string]*trace
	order  []string // trace ids, oldest first
	events map[string]*eventLog

	// journal records the collector's own control-plane events (the health
	// engine's alert transitions), drained into the event store under the
	// collector's identity so alerts sit on the same timeline as the link
	// and advertisement events that explain them.
	journal *obs.Journal

	// profiles is the collector-side profile plane (store + puller + flight
	// recorder); nil only when the store could not be created.
	profiles *profilePlane

	packetsRx       *obs.Counter
	packetsBad      *obs.Counter
	spansRx         *obs.Counter
	profilesStored  *obs.Counter
	profilePullErrs *obs.Counter

	healthStop chan struct{}
	wg         sync.WaitGroup
	closeOnce  sync.Once
}

// New binds the UDP endpoint and starts receiving export packets.
func New(cfg Config) (*Collector, error) {
	if cfg.TraceCapacity <= 0 {
		cfg.TraceCapacity = DefaultTraceCapacity
	}
	if cfg.EventCapacity <= 0 {
		cfg.EventCapacity = DefaultEventCapacity
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Nop()
	}
	addr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("collect: resolve %s: %w", cfg.Listen, err)
	}
	pc, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("collect: listen %s: %w", cfg.Listen, err)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Collector{
		cfg:        cfg,
		pc:         pc,
		reg:        reg,
		log:        cfg.Logger.With("component", "obscollect"),
		store:      newSeriesStore(cfg.Resolutions, cfg.MaxSeries),
		nodes:      make(map[string]*nodeState),
		traces:     make(map[string]*trace),
		events:     make(map[string]*eventLog),
		journal:    obs.NewJournal(cfg.EventCapacity, nil),
		healthStop: make(chan struct{}),
	}
	who := obs.L("node", "obscollect")
	const pkts = "narada_collect_packets_total"
	const pktsHelp = "Export packets received, by result."
	c.packetsRx = reg.Counter(pkts, pktsHelp, who, obs.L("result", "ok"))
	c.packetsBad = reg.Counter(pkts, pktsHelp, who, obs.L("result", "error"))
	c.spansRx = reg.Counter("narada_collect_spans_total",
		"Spans received from exporting nodes.", who)
	reg.GaugeFunc("narada_collect_nodes", "Exporting nodes seen.",
		func() float64 { return float64(c.NodeCount()) }, who)
	reg.GaugeFunc("narada_collect_traces", "Traces currently retained.",
		func() float64 { return float64(c.TraceCount()) }, who)
	reg.GaugeFunc("narada_collect_series", "Time series retained in the store.",
		func() float64 { return float64(c.store.SeriesCount()) }, who)
	reg.CounterFunc("narada_collect_series_dropped_total",
		"Series discarded at the store's capacity cap.", c.store.DroppedSeries, who)

	pstore, err := newProfileStore(cfg.ProfileDir, cfg.ProfileMaxCount, cfg.ProfileMaxBytes)
	if err != nil {
		_ = pc.Close()
		return nil, err
	}
	c.profiles = newProfilePlane(c, pstore, cfg.FlightCPUSeconds)
	c.profilesStored = reg.Counter("narada_collect_profiles_total",
		"Profiles stored (pulled or flight-recorded).", who)
	c.profilePullErrs = reg.Counter("narada_collect_profile_pull_errors_total",
		"Failed profile listing or download requests to nodes.", who)
	reg.GaugeFunc("narada_collect_profile_bytes", "Total bytes of retained profiles.",
		func() float64 { return float64(pstore.Bytes()) }, who)
	reg.GaugeFunc("narada_collect_profiles", "Profiles currently retained.",
		func() float64 { return float64(pstore.Count()) }, who)

	hc := health.Config{}
	if cfg.Health != nil {
		hc = *cfg.Health
	}
	if hc.Registry == nil {
		hc.Registry = reg
	}
	if hc.Logger == nil {
		hc.Logger = c.log
	}
	if len(hc.Sinks) == 0 {
		hc.Sinks = []health.Sink{health.NewLogSink(c.log)}
	}
	if hc.Journal == nil {
		hc.Journal = c.journal
	}
	if !cfg.DisableFlightRecorder {
		hc.Sinks = append(hc.Sinks, c.profiles)
	}
	c.health = health.New(hc)

	c.wg.Add(1)
	go c.recvLoop()
	if cfg.HealthInterval >= 0 {
		interval := cfg.HealthInterval
		if interval == 0 {
			interval = time.Second
		}
		c.wg.Add(1)
		go c.healthLoop(interval)
	}
	if cfg.ProfilePullInterval > 0 {
		c.wg.Add(1)
		go c.profiles.pullLoop(cfg.ProfilePullInterval)
	}
	return c, nil
}

// Addr returns the bound UDP address (what exporters dial).
func (c *Collector) Addr() string { return c.pc.LocalAddr().String() }

// Registry returns the collector's own metric registry — the prober records
// its SLIs here so they appear on the federated exposition.
func (c *Collector) Registry() *obs.Registry { return c.reg }

// Close stops the receive and health-evaluation loops, releases the socket
// and flushes still-firing alerts to the sinks so in-flight incidents
// survive the collector's own shutdown.
func (c *Collector) Close() error {
	c.closeOnce.Do(func() {
		_ = c.pc.Close()
		close(c.healthStop)
		c.profiles.close()
		c.wg.Wait()
		c.health.Flush()
	})
	return nil
}

// NodeCount returns the number of distinct exporting nodes seen.
func (c *Collector) NodeCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// TraceCount returns the number of retained traces.
func (c *Collector) TraceCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.traces)
}

func (c *Collector) recvLoop() {
	defer c.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := c.pc.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		pkt, err := obs.DecodeExportPacket(buf[:n])
		if err != nil {
			c.packetsBad.Inc()
			c.log.Debug("bad export packet", "err", err)
			continue
		}
		c.packetsRx.Inc()
		c.ingest(pkt)
	}
}

func (c *Collector) ingest(pkt *obs.ExportPacket) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	ns := c.nodes[pkt.Node]
	if ns == nil {
		ns = &nodeState{name: pkt.Node}
		c.nodes[pkt.Node] = ns
	}
	ns.offset = pkt.Offset
	ns.lastSeen = now
	if pkt.NodeInfo {
		ns.telemetryAddr = pkt.TelemetryAddr
		ns.profilesOn = pkt.ProfilesOn
	}
	if pkt.Families != nil {
		ns.families = pkt.Families
		ns.metricsAt = pkt.MetricsAt
		ns.seq = pkt.Seq
		c.store.Observe(now, pkt.Node, pkt.Seq, pkt.Families)
	}
	if pkt.Flows != nil {
		ns.flows = pkt.Flows
		ns.flowsAt = pkt.FlowsAt
	}
	if pkt.Events != nil {
		c.ingestEventsLocked(pkt)
	}
	for _, rec := range pkt.Spans {
		ns.spans++
		c.spansRx.Inc()
		tr := c.traces[rec.TraceID]
		if tr == nil {
			tr = &trace{id: rec.TraceID, firstSeen: now}
			if len(c.order) == c.cfg.TraceCapacity {
				old := c.order[0]
				copy(c.order, c.order[1:])
				c.order[len(c.order)-1] = rec.TraceID
				delete(c.traces, old)
			} else {
				c.order = append(c.order, rec.TraceID)
			}
			c.traces[rec.TraceID] = tr
		}
		tr.spans = append(tr.spans, span{Node: pkt.Node, Offset: pkt.Offset, View: rec.Span})
	}
}

// SpanInfo is one span of an assembled trace, with its recording node and
// the offset-corrected timestamp.
type SpanInfo struct {
	Node      string        `json:"node"`
	Name      string        `json:"name"`
	At        time.Time     `json:"at"`        // as recorded (node-local clock)
	AtAligned time.Time     `json:"atAligned"` // offset-corrected best-effort UTC
	Dur       time.Duration `json:"durNs,omitempty"`
	Attrs     []obs.Attr    `json:"attrs,omitempty"`
}

// Trace kinds: discovery/request traces carry the original span taxonomy;
// message traces are assembled from the msg-* spans a sampled publish leaves
// behind at each broker it crosses.
const (
	TraceKindRequest = "request"
	TraceKindMessage = "message"
)

// HopWait is one egress flush of a sampled message: where it happened, which
// queue class it left through, and how long the frame waited in that queue.
type HopWait struct {
	Node        string        `json:"node"`
	Dest        string        `json:"dest"` // "local" (client) or "link"
	QueueWaitNs time.Duration `json:"queueWaitNs"`
	At          time.Time     `json:"at"` // aligned flush time
}

// TraceInfo is an assembled cross-node trace, spans in aligned order. For
// message traces Hops breaks out the per-hop queue waits (one entry per
// msg-flush span, in aligned order) so the dominant queueing delay along the
// path is readable without parsing span attributes.
type TraceInfo struct {
	ID    string     `json:"id"`
	Kind  string     `json:"kind"`
	Nodes []string   `json:"nodes"`
	Spans []SpanInfo `json:"spans"`
	Hops  []HopWait  `json:"hops,omitempty"`
	// EventsURL selects the journal events surrounding the trace's aligned
	// span window — the control-plane context a slow or failed request ran in.
	EventsURL string `json:"eventsUrl,omitempty"`
}

// TraceSummary is the /traces listing entry.
type TraceSummary struct {
	ID        string    `json:"id"`
	Kind      string    `json:"kind"`
	FirstSeen time.Time `json:"firstSeen"`
	SpanCount int       `json:"spanCount"`
	Nodes     []string  `json:"nodes"`
}

// kind classifies a trace by its spans: any msg-* span makes it a message
// trace.
func (t *trace) kind() string {
	for _, s := range t.spans {
		if strings.HasPrefix(s.View.Name, "msg-") {
			return TraceKindMessage
		}
	}
	return TraceKindRequest
}

func (t *trace) nodes() []string {
	seen := make(map[string]struct{}, 4)
	var out []string
	for _, s := range t.spans {
		if _, ok := seen[s.Node]; !ok {
			seen[s.Node] = struct{}{}
			out = append(out, s.Node)
		}
	}
	sort.Strings(out)
	return out
}

// Trace returns the assembled trace for id, spans sorted by aligned time.
func (c *Collector) Trace(id string) (TraceInfo, bool) {
	c.mu.Lock()
	tr := c.traces[id]
	var spans []span
	var kind string
	if tr != nil {
		spans = append(spans, tr.spans...)
		kind = tr.kind()
	}
	c.mu.Unlock()
	if tr == nil {
		return TraceInfo{}, false
	}
	out := TraceInfo{ID: id, Kind: kind}
	nodes := make(map[string]struct{}, 4)
	for _, s := range spans {
		nodes[s.Node] = struct{}{}
		out.Spans = append(out.Spans, SpanInfo{
			Node:      s.Node,
			Name:      s.View.Name,
			At:        s.View.At,
			AtAligned: s.Aligned(),
			Dur:       s.View.Dur,
			Attrs:     s.View.Attrs,
		})
		// msg-flush spans carry the queue wait as their duration and the
		// queue class as the dest attribute; surface them as the per-hop
		// breakdown.
		if s.View.Name == "msg-flush" {
			hop := HopWait{Node: s.Node, QueueWaitNs: s.View.Dur, At: s.Aligned()}
			for _, a := range s.View.Attrs {
				if a.Key == "dest" {
					hop.Dest = a.Value
				}
			}
			out.Hops = append(out.Hops, hop)
		}
	}
	sort.SliceStable(out.Spans, func(i, j int) bool {
		return out.Spans[i].AtAligned.Before(out.Spans[j].AtAligned)
	})
	sort.SliceStable(out.Hops, func(i, j int) bool {
		return out.Hops[i].At.Before(out.Hops[j].At)
	})
	for n := range nodes {
		out.Nodes = append(out.Nodes, n)
	}
	sort.Strings(out.Nodes)
	if len(out.Spans) > 0 {
		first := out.Spans[0].AtAligned
		last := out.Spans[len(out.Spans)-1].AtAligned
		out.EventsURL = eventsURL(first.Add(-5*time.Second), last.Add(5*time.Second), "")
	}
	return out, true
}

// Traces returns summaries of every retained trace, oldest first.
func (c *Collector) Traces() []TraceSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TraceSummary, 0, len(c.order))
	for _, id := range c.order {
		tr := c.traces[id]
		if tr == nil {
			continue
		}
		out = append(out, TraceSummary{
			ID:        tr.id,
			Kind:      tr.kind(),
			FirstSeen: tr.firstSeen,
			SpanCount: len(tr.spans),
			Nodes:     tr.nodes(),
		})
	}
	return out
}
