package collect

import (
	"runtime"
	"testing"
	"time"
)

// goroutineCount samples runtime.NumGoroutine after giving exiting goroutines
// a moment to unwind.
func goroutineCount() int {
	runtime.GC()
	time.Sleep(20 * time.Millisecond)
	return runtime.NumGoroutine()
}

// TestProberStartStopLeaksNoGoroutines cycles a prober against an unreachable
// fabric — probes fail, the exporter keeps shipping — and asserts repeated
// Run/Close cycles return the process to its baseline goroutine count. This
// pins the shutdown ordering: probe loop drained, exporter flushed and
// socket released, no ticker or pump goroutine left behind.
func TestProberStartStopLeaksNoGoroutines(t *testing.T) {
	col := newTestCollector(t, Config{HealthInterval: -1})

	cycle := func() {
		p, err := NewProber(ProbeConfig{
			Interval:      10 * time.Millisecond,
			BDNAddrs:      []string{"127.0.0.1:1"}, // nothing listening
			CollectWindow: 20 * time.Millisecond,
			AckTimeout:    30 * time.Millisecond,
			Export:        col.Addr(),
		})
		if err != nil {
			t.Fatalf("prober: %v", err)
		}
		p.Run()
		time.Sleep(25 * time.Millisecond) // let at least one probe fail
		if err := p.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if err := p.Close(); err != nil { // Close is idempotent
			t.Fatalf("second close: %v", err)
		}
	}

	cycle() // warm up lazy runtime state (netpoller, timer goroutines)
	before := goroutineCount()
	for i := 0; i < 5; i++ {
		cycle()
	}
	// Poll: exporter goroutines unwind asynchronously after Close returns.
	deadline := time.Now().Add(5 * time.Second)
	for {
		after := goroutineCount()
		if after <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines grew %d -> %d after 5 prober cycles\n%s",
				before, after, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
