package collect

import (
	"sort"
	"time"

	"narada/internal/obs"
)

// NodeFlows is one node's last per-topic flow snapshot.
type NodeFlows struct {
	Node  string             `json:"node"`
	At    time.Time          `json:"at"` // node-local capture time
	Flows []obs.FlowSnapshot `json:"flows"`
}

// FlowsView is the /flows payload: each node's top-k table plus the
// fabric-wide merge.
type FlowsView struct {
	Nodes  []NodeFlows        `json:"nodes"`
	Fabric []obs.FlowSnapshot `json:"fabric"`
}

// Flows assembles the fabric flow view from every node's last snapshot. The
// fabric-wide listing merges per-node tables by topic — counts and error
// bounds add, since each node's sketch is an independent space-saving
// estimate of its own traffic — and sorts by published count descending, the
// <other> fold bucket last.
func (c *Collector) Flows() FlowsView {
	c.mu.Lock()
	view := FlowsView{}
	for _, ns := range c.nodes {
		if len(ns.flows) == 0 {
			continue
		}
		flows := make([]obs.FlowSnapshot, len(ns.flows))
		copy(flows, ns.flows)
		view.Nodes = append(view.Nodes, NodeFlows{Node: ns.name, At: ns.flowsAt, Flows: flows})
	}
	c.mu.Unlock()

	sort.Slice(view.Nodes, func(i, j int) bool { return view.Nodes[i].Node < view.Nodes[j].Node })
	merged := make(map[string]*obs.FlowSnapshot)
	for _, nf := range view.Nodes {
		for _, f := range nf.Flows {
			dst := merged[f.Topic]
			if dst == nil {
				cp := f
				merged[f.Topic] = &cp
				continue
			}
			dst.PubMsgs += f.PubMsgs
			dst.PubBytes += f.PubBytes
			dst.DelMsgs += f.DelMsgs
			dst.DelBytes += f.DelBytes
			dst.DropMsgs += f.DropMsgs
			dst.ErrBound += f.ErrBound
			dst.DropQueue += f.DropQueue
			dst.DropConn += f.DropConn
			dst.DropLarge += f.DropLarge
			for i := range dst.Drops {
				dst.Drops[i] += f.Drops[i]
			}
		}
	}
	view.Fabric = make([]obs.FlowSnapshot, 0, len(merged))
	for _, f := range merged {
		view.Fabric = append(view.Fabric, *f)
	}
	sort.Slice(view.Fabric, func(i, j int) bool {
		fi, fj := view.Fabric[i], view.Fabric[j]
		if (fi.Topic == obs.FlowOther) != (fj.Topic == obs.FlowOther) {
			return fj.Topic == obs.FlowOther
		}
		if fi.PubMsgs != fj.PubMsgs {
			return fi.PubMsgs > fj.PubMsgs
		}
		return fi.Topic < fj.Topic
	})
	return view
}
