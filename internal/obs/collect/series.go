package collect

import (
	"sort"
	"strings"
	"sync"
	"time"

	"narada/internal/obs"
)

// Resolution is one retention tier of the series store: Slots ring-buffer
// windows of Step each. The default tiers keep 5 min at 1 s, 1 h at 10 s and
// 4 h at 60 s — enough history for the health engine's fast (5 min) and slow
// (1 h) SLO burn windows plus a few hours of dashboard context.
type Resolution struct {
	Step  time.Duration
	Slots int
}

// Span returns the wall-clock history a resolution retains.
func (r Resolution) Span() time.Duration { return r.Step * time.Duration(r.Slots) }

// DefaultResolutions returns the standard 1s/10s/60s retention tiers.
func DefaultResolutions() []Resolution {
	return []Resolution{
		{Step: time.Second, Slots: 300},
		{Step: 10 * time.Second, Slots: 360},
		{Step: time.Minute, Slots: 240},
	}
}

// DefaultMaxSeries bounds the number of distinct (node, metric, label-set)
// series the store tracks; excess series are dropped and counted, never
// allowed to grow collector memory without bound.
const DefaultMaxSeries = 8192

// slot is one downsampled window of one series at one resolution. The
// populated fields follow the series kind: counters accumulate the windowed
// increase (a rate numerator), gauges keep last/sum/count (last and average),
// histograms keep a mergeable window (bucket increments + sum + count).
type slot struct {
	start int64 // unix nanos of the window start; 0 = empty

	inc float64 // counter: total increase observed in this window

	last float64 // gauge: last sample
	sum  float64 // gauge: sum of samples (avg = sum/n)
	n    uint64  // gauge: sample count

	buckets []uint64 // histogram: per-bucket increments (len(bounds)+1)
	hsum    float64  // histogram: sum increment
	hcount  uint64   // histogram: count increment
}

// ring is one resolution's circular window buffer for one series.
type ring struct {
	step  time.Duration
	slots []slot
}

// at returns the slot covering t, clearing it first if it still holds an
// older window that mapped to the same index.
func (rg *ring) at(t time.Time) *slot {
	start := t.Truncate(rg.step).UnixNano()
	idx := int((start / int64(rg.step)) % int64(len(rg.slots)))
	if idx < 0 {
		idx += len(rg.slots)
	}
	s := &rg.slots[idx]
	if s.start != start {
		buckets := s.buckets
		*s = slot{start: start}
		if buckets != nil {
			for i := range buckets {
				buckets[i] = 0
			}
			s.buckets = buckets
		}
	}
	return s
}

// histCum is the cumulative histogram state remembered between snapshots so
// windowed increments can be derived.
type histCum struct {
	buckets []uint64
	sum     float64
	count   uint64
}

// seriesEntry is the retained state of one (node, metric, label-set) series:
// the cumulative last-snapshot values needed for delta derivation plus one
// ring per resolution.
type seriesEntry struct {
	metric string
	node   string
	kind   string
	labels []obs.Label
	bounds []float64 // histogram series only

	seen        bool   // first snapshot establishes the baseline
	lastSeq     uint64 // snapshot sequence at last observation
	lastCounter uint64
	lastHist    histCum

	rings []ring
}

// seriesStore is the in-memory multi-resolution time-series retention layer:
// every metrics snapshot the collector ingests is downsampled on the fly into
// per-series ring buffers, turning cumulative totals into windowed rates the
// health engine and /query can read. All methods are safe for concurrent use.
type seriesStore struct {
	mu        sync.Mutex
	res       []Resolution
	series    map[string]*seriesEntry   // node+metric+labelKey
	byMetric  map[string][]*seriesEntry // node+metric
	maxSeries int
	dropped   uint64 // series discarded at the maxSeries cap
}

func newSeriesStore(res []Resolution, maxSeries int) *seriesStore {
	if len(res) == 0 {
		res = DefaultResolutions()
	}
	if maxSeries <= 0 {
		maxSeries = DefaultMaxSeries
	}
	return &seriesStore{
		res:       res,
		series:    make(map[string]*seriesEntry),
		byMetric:  make(map[string][]*seriesEntry),
		maxSeries: maxSeries,
	}
}

func storeKey(parts ...string) string {
	var sb strings.Builder
	for _, p := range parts {
		sb.WriteString(p)
		sb.WriteByte('\xff')
	}
	return sb.String()
}

func labelsKey(labels []obs.Label) string {
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte('\xfe')
		sb.WriteString(l.Value)
		sb.WriteByte('\xfd')
	}
	return sb.String()
}

// Resolutions returns the configured retention tiers, finest first.
func (st *seriesStore) Resolutions() []Resolution { return st.res }

// DroppedSeries returns the number of series discarded at the capacity cap.
func (st *seriesStore) DroppedSeries() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.dropped
}

// SeriesCount returns the number of tracked series.
func (st *seriesStore) SeriesCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.series)
}

// entryFor returns (creating on first use) the series entry, or nil when the
// store is at capacity.
func (st *seriesStore) entryFor(node string, f obs.ExportFamily, s obs.ExportSeries) *seriesEntry {
	key := storeKey(node, f.Name, labelsKey(s.Labels))
	e := st.series[key]
	if e != nil {
		return e
	}
	if len(st.series) >= st.maxSeries {
		st.dropped++
		return nil
	}
	e = &seriesEntry{
		metric: f.Name,
		node:   node,
		kind:   f.Kind,
		labels: append([]obs.Label(nil), s.Labels...),
		rings:  make([]ring, len(st.res)),
	}
	if f.Kind == "histogram" {
		e.bounds = append([]float64(nil), s.Bounds...)
	}
	for i, r := range st.res {
		e.rings[i] = ring{step: r.Step, slots: make([]slot, r.Slots)}
	}
	st.series[key] = e
	mk := storeKey(node, f.Name)
	st.byMetric[mk] = append(st.byMetric[mk], e)
	return e
}

// Observe folds one node's metrics snapshot into every resolution ring. seq
// is the exporter's snapshot sequence number: a decrease marks a process
// restart, so cumulative values are re-baselined instead of producing a
// bogus negative (or enormous) delta.
func (st *seriesStore) Observe(now time.Time, node string, seq uint64, fams []obs.ExportFamily) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, f := range fams {
		for _, s := range f.Series {
			e := st.entryFor(node, f, s)
			if e == nil {
				continue
			}
			restarted := e.seen && seq < e.lastSeq
			switch f.Kind {
			case "counter":
				var inc uint64
				switch {
				case !e.seen:
					inc = 0 // baseline: the pre-existing total is not a rate
				case restarted || s.Counter < e.lastCounter:
					inc = s.Counter // counter reset: the whole value is new
				default:
					inc = s.Counter - e.lastCounter
				}
				e.lastCounter = s.Counter
				if inc > 0 {
					for i := range e.rings {
						e.rings[i].at(now).inc += float64(inc)
					}
				}
			case "gauge":
				for i := range e.rings {
					sl := e.rings[i].at(now)
					sl.last = s.Gauge
					sl.sum += s.Gauge
					sl.n++
				}
			case "histogram":
				if len(s.Buckets) != len(e.bounds)+1 {
					continue // bucket layout changed; skip rather than corrupt
				}
				reset := restarted || s.Count < e.lastHist.count || len(e.lastHist.buckets) != len(s.Buckets)
				for i := range e.rings {
					sl := e.rings[i].at(now)
					if sl.buckets == nil {
						sl.buckets = make([]uint64, len(s.Buckets))
					}
					for b := range s.Buckets {
						d := s.Buckets[b]
						if e.seen && !reset {
							d -= e.lastHist.buckets[b]
						} else if !e.seen {
							d = 0
						}
						sl.buckets[b] += d
					}
					switch {
					case !e.seen:
					case reset:
						sl.hsum += s.Sum
						sl.hcount += s.Count
					default:
						sl.hsum += s.Sum - e.lastHist.sum
						sl.hcount += s.Count - e.lastHist.count
					}
				}
				e.lastHist = histCum{
					buckets: append(e.lastHist.buckets[:0], s.Buckets...),
					sum:     s.Sum,
					count:   s.Count,
				}
			}
			e.seen = true
			e.lastSeq = seq
		}
	}
}

// resolutionFor picks the finest tier whose retention covers window (the last
// tier when none does).
func (st *seriesStore) resolutionFor(window time.Duration) int {
	for i, r := range st.res {
		if r.Span() >= window {
			return i
		}
	}
	return len(st.res) - 1
}

// windowSlots calls fn for every populated slot of ring ri overlapping
// [now-window, now].
func (e *seriesEntry) windowSlots(ri int, now time.Time, window time.Duration, fn func(*slot)) {
	rg := &e.rings[ri]
	from := now.Add(-window).Truncate(rg.step).UnixNano()
	for i := range rg.slots {
		s := &rg.slots[i]
		if s.start == 0 || s.start < from || s.start > now.UnixNano() {
			continue
		}
		fn(s)
	}
}

// WindowSum returns the total counter increase for metric on node across all
// label sets over the trailing window. ok is false when the series is
// unknown (no data at all — distinct from a known-idle zero).
func (st *seriesStore) WindowSum(metric, node string, window time.Duration, now time.Time) (float64, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	entries := st.byMetric[storeKey(node, metric)]
	if len(entries) == 0 {
		return 0, false
	}
	ri := st.resolutionFor(window)
	total := 0.0
	for _, e := range entries {
		e.windowSlots(ri, now, window, func(s *slot) { total += s.inc })
	}
	return total, true
}

// WindowSumBy is WindowSum grouped by the value of one label key.
func (st *seriesStore) WindowSumBy(metric, node, labelKey string, window time.Duration, now time.Time) map[string]float64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	entries := st.byMetric[storeKey(node, metric)]
	if len(entries) == 0 {
		return nil
	}
	ri := st.resolutionFor(window)
	out := make(map[string]float64)
	for _, e := range entries {
		val := ""
		for _, l := range e.labels {
			if l.Key == labelKey {
				val = l.Value
				break
			}
		}
		e.windowSlots(ri, now, window, func(s *slot) { out[val] += s.inc })
	}
	return out
}

// LastGauge returns the most recent gauge sample for metric on node no older
// than maxAge, summed across label sets (matching /fabric's aggregation of
// e.g. per-link egress depths).
func (st *seriesStore) LastGauge(metric, node string, maxAge time.Duration, now time.Time) (float64, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	entries := st.byMetric[storeKey(node, metric)]
	if len(entries) == 0 {
		return 0, false
	}
	total, found := 0.0, false
	for _, e := range entries {
		var newest *slot
		e.windowSlots(0, now, maxAge, func(s *slot) {
			if s.n > 0 && (newest == nil || s.start > newest.start) {
				newest = s
			}
		})
		if newest != nil {
			total += newest.last
			found = true
		}
	}
	return total, found
}

// GaugeWindowStats summarises a gauge over the trailing window: the minimum
// and most recent per-slot values (summed across label sets, like LastGauge)
// and the sample-weighted average. The min/last pair is what trend rules
// need — goroutine-leak detection compares where the gauge ended against the
// lowest point it touched inside the window.
func (st *seriesStore) GaugeWindowStats(metric, node string, window time.Duration, now time.Time) (minV, lastV, avgV float64, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	entries := st.byMetric[storeKey(node, metric)]
	if len(entries) == 0 {
		return 0, 0, 0, false
	}
	ri := st.resolutionFor(window)
	byStart := make(map[int64]float64)
	sum, n := 0.0, uint64(0)
	for _, e := range entries {
		if e.kind != "gauge" {
			continue
		}
		e.windowSlots(ri, now, window, func(s *slot) {
			if s.n == 0 {
				return
			}
			byStart[s.start] += s.last
			sum += s.sum
			n += s.n
		})
	}
	if len(byStart) == 0 || n == 0 {
		return 0, 0, 0, false
	}
	first := true
	var lastStart int64
	for start, v := range byStart {
		if first {
			minV, lastV, lastStart, first = v, v, start, false
			continue
		}
		if v < minV {
			minV = v
		}
		if start > lastStart {
			lastStart, lastV = start, v
		}
	}
	return minV, lastV, sum / float64(n), true
}

// WindowHist returns the merged histogram window for metric on node over the
// trailing window: bounds plus per-bucket observation increments. Multiple
// label sets merge when their bucket layouts agree.
func (st *seriesStore) WindowHist(metric, node string, window time.Duration, now time.Time) (bounds []float64, buckets []uint64, count uint64, sum float64, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	entries := st.byMetric[storeKey(node, metric)]
	ri := st.resolutionFor(window)
	for _, e := range entries {
		if e.kind != "histogram" {
			continue
		}
		if bounds == nil {
			bounds = e.bounds
			buckets = make([]uint64, len(e.bounds)+1)
		} else if len(e.bounds) != len(bounds) {
			continue
		}
		e.windowSlots(ri, now, window, func(s *slot) {
			for b := range s.buckets {
				buckets[b] += s.buckets[b]
			}
			count += s.hcount
			sum += s.hsum
		})
	}
	return bounds, buckets, count, sum, bounds != nil
}

// NodesWith returns the nodes currently holding series for metric.
func (st *seriesStore) NodesWith(metric string) []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	seen := make(map[string]struct{})
	var out []string
	for _, e := range st.series {
		if e.metric != metric {
			continue
		}
		if _, ok := seen[e.node]; !ok {
			seen[e.node] = struct{}{}
			out = append(out, e.node)
		}
	}
	sort.Strings(out)
	return out
}

// SeriesPoint is one downsampled window of a queried series. Value is the
// windowed counter increase for counters and the last sample for gauges;
// histogram points carry count/sum and headline percentiles computed from the
// window's merged buckets.
type SeriesPoint struct {
	At    time.Time `json:"at"`
	Value float64   `json:"value"`
	Avg   float64   `json:"avg,omitempty"`
	Count uint64    `json:"count,omitempty"`
	Sum   float64   `json:"sum,omitempty"`
	P50   float64   `json:"p50,omitempty"`
	P90   float64   `json:"p90,omitempty"`
	P99   float64   `json:"p99,omitempty"`
}

// QuerySeries is one series of a /query response: identity plus its points
// in chronological order.
type QuerySeries struct {
	Metric string            `json:"metric"`
	Node   string            `json:"node"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	Points []SeriesPoint     `json:"points"`
}

// Query returns the retained windows for metric at the given resolution step
// since the given time, node-filtered when node is non-empty. Unknown
// metrics and steps return nil (the HTTP layer distinguishes a bad step).
func (st *seriesStore) Query(metric, node string, step time.Duration, since, now time.Time) []QuerySeries {
	st.mu.Lock()
	defer st.mu.Unlock()
	ri := -1
	for i, r := range st.res {
		if r.Step == step {
			ri = i
			break
		}
	}
	if ri < 0 {
		return nil
	}
	window := now.Sub(since)
	if window < 0 {
		window = 0
	}
	var out []QuerySeries
	for _, e := range st.series {
		if e.metric != metric || (node != "" && e.node != node) {
			continue
		}
		qs := QuerySeries{Metric: e.metric, Node: e.node, Kind: e.kind}
		if len(e.labels) > 0 {
			qs.Labels = make(map[string]string, len(e.labels))
			for _, l := range e.labels {
				qs.Labels[l.Key] = l.Value
			}
		}
		e.windowSlots(ri, now, window, func(s *slot) {
			p := SeriesPoint{At: time.Unix(0, s.start)}
			switch e.kind {
			case "counter":
				p.Value = s.inc
			case "gauge":
				p.Value = s.last
				if s.n > 0 {
					p.Avg = s.sum / float64(s.n)
				}
				p.Count = s.n
			case "histogram":
				p.Count = s.hcount
				p.Sum = s.hsum
				if s.hcount > 0 {
					p.P50 = histQuantile(0.50, e.bounds, s.buckets)
					p.P90 = histQuantile(0.90, e.bounds, s.buckets)
					p.P99 = histQuantile(0.99, e.bounds, s.buckets)
				}
			}
			qs.Points = append(qs.Points, p)
		})
		sort.Slice(qs.Points, func(i, j int) bool { return qs.Points[i].At.Before(qs.Points[j].At) })
		if len(qs.Points) > 0 {
			out = append(out, qs)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return labelsKeyMap(out[i].Labels) < labelsKeyMap(out[j].Labels)
	})
	return out
}

func labelsKeyMap(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('\xfe')
		sb.WriteString(m[k])
		sb.WriteByte('\xfd')
	}
	return sb.String()
}
