package collect

import (
	"testing"
	"time"

	"narada/internal/obs"
)

func counterFam(name string, value uint64, labels ...obs.Label) obs.ExportFamily {
	return obs.ExportFamily{Name: name, Kind: "counter",
		Series: []obs.ExportSeries{{Labels: labels, Counter: value}}}
}

func gaugeFam(name string, value float64, labels ...obs.Label) obs.ExportFamily {
	return obs.ExportFamily{Name: name, Kind: "gauge",
		Series: []obs.ExportSeries{{Labels: labels, Gauge: value}}}
}

func histFam(name string, bounds []float64, buckets []uint64, sum float64, count uint64) obs.ExportFamily {
	return obs.ExportFamily{Name: name, Kind: "histogram",
		Series: []obs.ExportSeries{{Bounds: bounds, Buckets: buckets, Sum: sum, Count: count}}}
}

func testResolutions() []Resolution {
	return []Resolution{
		{Step: time.Second, Slots: 60},
		{Step: 10 * time.Second, Slots: 30},
		{Step: time.Minute, Slots: 10},
	}
}

// TestStoreCounterWindows checks that cumulative counter snapshots become
// windowed increases: the first sight is a baseline, later deltas land in
// every resolution tier, and a value decrease re-baselines (process restart).
func TestStoreCounterWindows(t *testing.T) {
	st := newSeriesStore(testResolutions(), 0)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

	st.Observe(base, "b1", 1, []obs.ExportFamily{counterFam("m", 100)})
	now := base.Add(time.Second)
	if sum, ok := st.WindowSum("m", "b1", 30*time.Second, now); !ok || sum != 0 {
		t.Fatalf("after baseline: sum=%v ok=%v, want 0 true", sum, ok)
	}

	st.Observe(base.Add(2*time.Second), "b1", 2, []obs.ExportFamily{counterFam("m", 130)})
	st.Observe(base.Add(4*time.Second), "b1", 3, []obs.ExportFamily{counterFam("m", 150)})
	now = base.Add(5 * time.Second)
	if sum, _ := st.WindowSum("m", "b1", 30*time.Second, now); sum != 50 {
		t.Fatalf("windowed increase = %v, want 50", sum)
	}
	// The coarser tiers saw the same increments.
	if sum, _ := st.WindowSum("m", "b1", 5*time.Minute, now); sum != 50 {
		t.Fatalf("10s tier increase = %v, want 50", sum)
	}

	// Counter reset: value drops to 5 — the new total is all-new increase.
	st.Observe(base.Add(6*time.Second), "b1", 4, []obs.ExportFamily{counterFam("m", 5)})
	now = base.Add(7 * time.Second)
	if sum, _ := st.WindowSum("m", "b1", 30*time.Second, now); sum != 55 {
		t.Fatalf("post-reset increase = %v, want 55", sum)
	}

	if _, ok := st.WindowSum("m", "nosuch", 30*time.Second, now); ok {
		t.Fatal("unknown node reported ok")
	}
}

// TestStoreSeqRestart checks that a sequence-number decrease (exporter
// restart) re-baselines even when the new counter value is higher than the
// old one.
func TestStoreSeqRestart(t *testing.T) {
	st := newSeriesStore(testResolutions(), 0)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

	st.Observe(base, "b1", 900, []obs.ExportFamily{counterFam("m", 40)})
	st.Observe(base.Add(time.Second), "b1", 901, []obs.ExportFamily{counterFam("m", 60)})
	// Restart: seq resets to 1, counter already re-accumulated past the old
	// value. Without seq the delta would read 70-60=10; with it, 70.
	st.Observe(base.Add(2*time.Second), "b1", 1, []obs.ExportFamily{counterFam("m", 70)})
	if sum, _ := st.WindowSum("m", "b1", 30*time.Second, base.Add(3*time.Second)); sum != 90 {
		t.Fatalf("increase = %v, want 90 (20 pre-restart + 70 post)", sum)
	}
}

func TestStoreWindowSumBy(t *testing.T) {
	st := newSeriesStore(testResolutions(), 0)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	fams := func(ok, errs uint64) []obs.ExportFamily {
		return []obs.ExportFamily{{Name: "runs", Kind: "counter", Series: []obs.ExportSeries{
			{Labels: []obs.Label{obs.L("outcome", "ok")}, Counter: ok},
			{Labels: []obs.Label{obs.L("outcome", "error")}, Counter: errs},
		}}}
	}
	st.Observe(base, "p", 1, fams(10, 1))
	st.Observe(base.Add(time.Second), "p", 2, fams(25, 4))
	by := st.WindowSumBy("runs", "p", "outcome", 30*time.Second, base.Add(2*time.Second))
	if by["ok"] != 15 || by["error"] != 3 {
		t.Fatalf("by-outcome = %v, want ok=15 error=3", by)
	}
}

func TestStoreGaugeLastAndAvg(t *testing.T) {
	st := newSeriesStore(testResolutions(), 0)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

	st.Observe(base, "b1", 1, []obs.ExportFamily{gaugeFam("depth", 10)})
	st.Observe(base.Add(time.Second), "b1", 2, []obs.ExportFamily{gaugeFam("depth", 30)})
	now := base.Add(2 * time.Second)
	if v, ok := st.LastGauge("depth", "b1", 30*time.Second, now); !ok || v != 30 {
		t.Fatalf("last gauge = %v ok=%v, want 30 true", v, ok)
	}
	// Outside maxAge the sample is stale.
	if _, ok := st.LastGauge("depth", "b1", 500*time.Millisecond, base.Add(30*time.Second)); ok {
		t.Fatal("stale gauge reported ok")
	}

	// Both samples landed in the same 10s window: avg = 20 at that tier.
	series := st.Query("depth", "b1", 10*time.Second, base.Add(-time.Minute), now)
	if len(series) != 1 || len(series[0].Points) != 1 {
		t.Fatalf("10s query = %+v, want one series with one point", series)
	}
	p := series[0].Points[0]
	if p.Value != 30 || p.Avg != 20 || p.Count != 2 {
		t.Fatalf("10s point = %+v, want last=30 avg=20 n=2", p)
	}
}

func TestStoreHistogramWindows(t *testing.T) {
	st := newSeriesStore(testResolutions(), 0)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	bounds := []float64{0.1, 1, 10}

	st.Observe(base, "p", 1, []obs.ExportFamily{
		histFam("lat", bounds, []uint64{5, 2, 0, 0}, 1.2, 7)})
	st.Observe(base.Add(time.Second), "p", 2, []obs.ExportFamily{
		histFam("lat", bounds, []uint64{8, 2, 3, 1}, 9.9, 14)})

	gotBounds, buckets, count, sum, ok := st.WindowHist("lat", "p", 30*time.Second, base.Add(2*time.Second))
	if !ok {
		t.Fatal("WindowHist not ok")
	}
	if len(gotBounds) != 3 {
		t.Fatalf("bounds = %v", gotBounds)
	}
	want := []uint64{3, 0, 3, 1}
	for i := range want {
		if buckets[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", buckets, want)
		}
	}
	if count != 7 || sum < 8.69 || sum > 8.71 {
		t.Fatalf("count=%d sum=%v, want 7 and ~8.7", count, sum)
	}
}

// TestStoreSlotInvalidation checks the ring wraps correctly: a window older
// than the ring span is overwritten, and queries do not resurrect it.
func TestStoreSlotInvalidation(t *testing.T) {
	st := newSeriesStore([]Resolution{{Step: time.Second, Slots: 5}}, 0)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

	st.Observe(base, "b1", 1, []obs.ExportFamily{counterFam("m", 0)})
	st.Observe(base.Add(time.Second), "b1", 2, []obs.ExportFamily{counterFam("m", 10)})
	// 7s later the ring has wrapped past the old slot's index.
	st.Observe(base.Add(8*time.Second), "b1", 3, []obs.ExportFamily{counterFam("m", 13)})
	if sum, _ := st.WindowSum("m", "b1", 4*time.Second, base.Add(8*time.Second)); sum != 3 {
		t.Fatalf("recent window = %v, want only the fresh delta 3", sum)
	}
}

func TestStoreSeriesCap(t *testing.T) {
	st := newSeriesStore(testResolutions(), 2)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	st.Observe(base, "b1", 1, []obs.ExportFamily{
		counterFam("a", 1), counterFam("b", 1), counterFam("c", 1)})
	if st.SeriesCount() != 2 {
		t.Fatalf("series count = %d, want 2", st.SeriesCount())
	}
	if st.DroppedSeries() != 1 {
		t.Fatalf("dropped = %d, want 1", st.DroppedSeries())
	}
	// Existing series still update past the cap.
	st.Observe(base.Add(time.Second), "b1", 2, []obs.ExportFamily{counterFam("a", 5)})
	if sum, _ := st.WindowSum("a", "b1", 10*time.Second, base.Add(2*time.Second)); sum != 4 {
		t.Fatalf("capped store delta = %v, want 4", sum)
	}
}

func TestStoreQueryResolutionsAndNodes(t *testing.T) {
	st := newSeriesStore(testResolutions(), 0)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 15; i++ {
		at := base.Add(time.Duration(i) * time.Second)
		st.Observe(at, "b1", uint64(i+1), []obs.ExportFamily{counterFam("m", uint64(10*i))})
		st.Observe(at, "b2", uint64(i+1), []obs.ExportFamily{counterFam("m", uint64(i))})
	}
	now := base.Add(15 * time.Second)

	// Finest tier: one point per second with data.
	fine := st.Query("m", "b1", time.Second, base, now)
	if len(fine) != 1 {
		t.Fatalf("fine series = %d, want 1", len(fine))
	}
	if got := len(fine[0].Points); got != 14 { // first observation is baseline-only
		t.Fatalf("fine points = %d, want 14", got)
	}
	var total float64
	for _, p := range fine[0].Points {
		total += p.Value
	}
	if total != 140 {
		t.Fatalf("fine total = %v, want 140", total)
	}

	// 10s tier: two windows covering the same increase.
	coarse := st.Query("m", "b1", 10*time.Second, base, now)
	if len(coarse) != 1 || len(coarse[0].Points) != 2 {
		t.Fatalf("coarse = %+v, want 1 series with 2 points", coarse)
	}
	if coarse[0].Points[0].Value+coarse[0].Points[1].Value != 140 {
		t.Fatalf("coarse total = %v, want 140",
			coarse[0].Points[0].Value+coarse[0].Points[1].Value)
	}

	// Unfiltered query returns both nodes, sorted.
	all := st.Query("m", "", time.Second, base, now)
	if len(all) != 2 || all[0].Node != "b1" || all[1].Node != "b2" {
		t.Fatalf("all-node query order = %+v", all)
	}

	// An unknown step is rejected as nil (HTTP layer reports the valid set).
	if got := st.Query("m", "b1", 3*time.Second, base, now); got != nil {
		t.Fatalf("bad step query = %+v, want nil", got)
	}

	nodes := st.NodesWith("m")
	if len(nodes) != 2 || nodes[0] != "b1" || nodes[1] != "b2" {
		t.Fatalf("NodesWith = %v", nodes)
	}
}
