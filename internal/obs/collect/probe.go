package collect

import (
	"errors"
	"log/slog"
	"math/rand"
	"sync"
	"time"

	"narada/internal/core"
	"narada/internal/ntptime"
	"narada/internal/obs"
	"narada/internal/transport"
)

// ProberNodeName is the identity the synthetic prober uses on the fabric —
// its spans and SLIs are labelled with it.
const ProberNodeName = "obsprobe"

// ProbeConfig parameterises a Prober.
type ProbeConfig struct {
	// Interval between synthetic discoveries.
	Interval time.Duration
	// BDNAddrs to discover through (the fabric under test).
	BDNAddrs []string
	// CollectWindow bounds each probe's response collection (default 1s —
	// probes favour tight SLIs over exhaustive response sets).
	CollectWindow time.Duration
	// AckTimeout bounds each probe's wait for a BDN acknowledgement (0 uses
	// the discoverer default of 1s). It also bounds how long Close can block
	// on an in-flight probe against an unreachable fabric, so tests and
	// fast-shutdown deployments set it low.
	AckTimeout time.Duration
	// BindIP is the local interface for probe traffic (default 127.0.0.1).
	BindIP string
	// Export, when non-empty, is the collector UDP address the prober's own
	// spans are exported to — normally the owning collector's Addr(), which
	// is how probe traces become visible end to end.
	Export string
	// Registry receives the prober's SLIs (probe run counts and latency) —
	// normally the owning collector's registry, which serves them on the
	// federated /metrics directly. When nil the prober keeps a private
	// registry and ships snapshots through the export plane instead (the
	// standalone-prober shape, probing one fabric for a remote collector).
	Registry *obs.Registry
	// Logger receives per-probe outcomes; nil discards them.
	Logger *slog.Logger
}

// Prober runs periodic end-to-end synthetic discoveries against a live
// fabric, recording success-rate and latency SLIs — regressions surface
// without real client traffic. Probe traces export to the collector like any
// other requester's, so every probe is inspectable at /traces/{id}.
type Prober struct {
	cfg    ProbeConfig
	disc   *core.Discoverer
	exp    *obs.Exporter
	tracer *obs.Tracer
	log    *slog.Logger

	runsOK   *obs.Counter
	runsFail *obs.Counter
	latency  *obs.Histogram

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewProber assembles a prober; call Run to start the probe loop.
func NewProber(cfg ProbeConfig) (*Prober, error) {
	if cfg.Interval <= 0 {
		return nil, errors.New("collect: probe Interval must be positive")
	}
	if len(cfg.BDNAddrs) == 0 {
		return nil, errors.New("collect: probe needs at least one BDN address")
	}
	if cfg.CollectWindow <= 0 {
		cfg.CollectWindow = time.Second
	}
	if cfg.BindIP == "" {
		cfg.BindIP = "127.0.0.1"
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Nop()
	}
	reg := cfg.Registry
	ownReg := reg == nil
	if ownReg {
		reg = obs.NewRegistry()
	}

	node := transport.NewRealNode(cfg.BindIP, nil)
	// The prober runs on the collector host's honest wall clock: zero true
	// skew, and the residual models a real NTP peering.
	ntp := ntptime.NewService(node.Clock(), 0, rand.New(rand.NewSource(time.Now().UnixNano())))
	ntp.InitImmediately()

	p := &Prober{cfg: cfg, log: cfg.Logger.With("component", "obsprobe"), closed: make(chan struct{})}
	p.tracer = obs.NewTracer(16, nil)
	if cfg.Export != "" {
		expCfg := obs.ExporterConfig{
			Addr:   cfg.Export,
			Node:   ProberNodeName,
			Offset: ntp.Offset,
		}
		// Snapshot SLIs over the wire only from a private registry: a shared
		// (collector-owned) registry is already on the federated exposition,
		// and exporting it back would duplicate every series.
		if ownReg {
			expCfg.Registry = reg
			expCfg.MetricsInterval = cfg.Interval
		}
		exp, err := obs.NewExporter(expCfg)
		if err != nil {
			return nil, err
		}
		p.exp = exp
		p.tracer.SetExporter(exp)
	}
	p.disc = core.NewDiscoverer(node, ntp, core.Config{
		NodeName:      ProberNodeName,
		BDNAddrs:      cfg.BDNAddrs,
		CollectWindow: cfg.CollectWindow,
		AckTimeout:    cfg.AckTimeout,
		Metrics:       reg,
		Tracer:        p.tracer,
	})

	who := obs.L("node", ProberNodeName)
	const runs = "narada_probe_runs_total"
	const runsHelp = "Synthetic discovery probes, by outcome."
	p.runsOK = reg.Counter(runs, runsHelp, who, obs.L("outcome", "ok"))
	p.runsFail = reg.Counter(runs, runsHelp, who, obs.L("outcome", "error"))
	p.latency = reg.Histogram("narada_probe_latency_seconds",
		"End-to-end synthetic discovery latency.", nil, who)
	return p, nil
}

// Run starts the probe loop: one immediate probe, then one per interval.
func (p *Prober) Run() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		ticker := time.NewTicker(p.cfg.Interval)
		defer ticker.Stop()
		p.probe()
		for {
			select {
			case <-ticker.C:
				p.probe()
			case <-p.closed:
				return
			}
		}
	}()
}

func (p *Prober) probe() {
	start := time.Now()
	res, err := p.disc.Discover()
	elapsed := time.Since(start)
	p.latency.ObserveDuration(elapsed)
	if err != nil {
		p.runsFail.Inc()
		p.log.Warn("probe failed", "err", err, "elapsed", elapsed)
		return
	}
	p.runsOK.Inc()
	p.log.Info("probe ok", "selected", res.Selected.LogicalAddress,
		"responses", len(res.Responses), "elapsed", elapsed,
		"trace", res.RequestID.String())
}

// Close stops the probe loop and flushes the prober's exporter.
func (p *Prober) Close() error {
	p.closeOnce.Do(func() {
		close(p.closed)
		p.wg.Wait()
		_ = p.exp.Close()
	})
	return nil
}
