package collect

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"narada/internal/obs/collect/health"
)

// Profile-plane defaults.
const (
	// DefaultProfileMaxCount bounds the collector's profile store by count.
	DefaultProfileMaxCount = 256
	// DefaultProfileMaxBytes bounds the store by total payload size (64 MiB).
	DefaultProfileMaxBytes = 64 << 20
	// DefaultFlightCPUSeconds is how long the flight recorder samples a
	// node's CPU when an alert fires.
	DefaultFlightCPUSeconds = 2
	// flightLinkCap bounds the profile refs remembered per (rule, node)
	// alert so /alerts links the evidence of the latest firing, not an
	// unbounded history.
	flightLinkCap = 6
)

// ProfileRef is one stored profile's metadata: what /profiles lists and what
// alert views link to. URL is the collector-relative download path.
type ProfileRef struct {
	ID      string    `json:"id"`
	Node    string    `json:"node"`
	Kind    string    `json:"kind"`
	Trigger string    `json:"trigger"`
	At      time.Time `json:"at"`
	Size    int       `json:"size"`
	URL     string    `json:"url"`
}

// storedProfile is one retained capture. Exactly one of data (in-memory) or
// path (on-disk spool) is populated.
type storedProfile struct {
	ref  ProfileRef
	data []byte
	path string
}

// profileStore is the bounded profile retention layer: newest-wins eviction
// by count and total bytes, optionally spooled to a directory so captures
// survive collector restarts of the in-memory state (the index itself is
// rebuilt empty — the directory is a spool, not a database).
type profileStore struct {
	mu         sync.Mutex
	dir        string // "" = in-memory only
	maxCount   int
	maxBytes   int64
	totalBytes int64
	seq        uint64
	order      []*storedProfile // oldest first
	byID       map[string]*storedProfile
}

func newProfileStore(dir string, maxCount int, maxBytes int64) (*profileStore, error) {
	if maxCount <= 0 {
		maxCount = DefaultProfileMaxCount
	}
	if maxBytes <= 0 {
		maxBytes = DefaultProfileMaxBytes
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("collect: profile dir: %w", err)
		}
	}
	return &profileStore{dir: dir, maxCount: maxCount, maxBytes: maxBytes,
		byID: make(map[string]*storedProfile)}, nil
}

// sanitizeID keeps node names URL- and filename-safe inside profile IDs.
func sanitizeID(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, s)
}

// Add stores one capture, evicting oldest entries past the count/bytes
// bounds. A capture larger than the whole byte budget is rejected.
func (ps *profileStore) Add(node, kind, trigger string, at time.Time, data []byte) (ProfileRef, error) {
	if int64(len(data)) > ps.maxBytes {
		return ProfileRef{}, fmt.Errorf("collect: profile of %d bytes exceeds the %d-byte store budget", len(data), ps.maxBytes)
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.seq++
	ref := ProfileRef{
		ID:      fmt.Sprintf("%06d-%s-%s", ps.seq, sanitizeID(node), sanitizeID(kind)),
		Node:    node,
		Kind:    kind,
		Trigger: trigger,
		At:      at,
		Size:    len(data),
	}
	ref.URL = "/profiles/" + ref.ID
	sp := &storedProfile{ref: ref}
	if ps.dir != "" {
		sp.path = filepath.Join(ps.dir, ref.ID+".pprof")
		if err := os.WriteFile(sp.path, data, 0o644); err != nil {
			return ProfileRef{}, fmt.Errorf("collect: spool profile: %w", err)
		}
	} else {
		sp.data = data
	}
	ps.order = append(ps.order, sp)
	ps.byID[ref.ID] = sp
	ps.totalBytes += int64(len(data))
	for len(ps.order) > ps.maxCount || ps.totalBytes > ps.maxBytes {
		old := ps.order[0]
		ps.order = ps.order[1:]
		delete(ps.byID, old.ref.ID)
		ps.totalBytes -= int64(old.ref.Size)
		if old.path != "" {
			_ = os.Remove(old.path)
		}
	}
	return ref, nil
}

// ProfileFilter narrows a profile listing.
type ProfileFilter struct {
	Node    string
	Kind    string
	Trigger string // prefix match, so "flight" selects every flight capture
	Since   time.Time
}

// List returns matching refs, newest first.
func (ps *profileStore) List(f ProfileFilter) []ProfileRef {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]ProfileRef, 0, len(ps.order))
	for _, sp := range ps.order {
		r := sp.ref
		if f.Node != "" && r.Node != f.Node {
			continue
		}
		if f.Kind != "" && r.Kind != f.Kind {
			continue
		}
		if f.Trigger != "" && !strings.HasPrefix(r.Trigger, f.Trigger) {
			continue
		}
		if !f.Since.IsZero() && !r.At.After(f.Since) {
			continue
		}
		out = append(out, r)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At.After(out[j].At) })
	return out
}

// Get returns one capture's ref and bytes.
func (ps *profileStore) Get(id string) (ProfileRef, []byte, bool) {
	ps.mu.Lock()
	sp := ps.byID[id]
	ps.mu.Unlock()
	if sp == nil {
		return ProfileRef{}, nil, false
	}
	if sp.path != "" {
		data, err := os.ReadFile(sp.path)
		if err != nil {
			return ProfileRef{}, nil, false
		}
		return sp.ref, data, true
	}
	return sp.ref, sp.data, true
}

// Count returns the number of retained profiles.
func (ps *profileStore) Count() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.order)
}

// Bytes returns the total retained payload size.
func (ps *profileStore) Bytes() int64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.totalBytes
}

// remoteCapture mirrors the obs/profile capturer's listing entry.
type remoteCapture struct {
	ID      string    `json:"id"`
	Kind    string    `json:"kind"`
	Trigger string    `json:"trigger"`
	At      time.Time `json:"at"`
	Size    int       `json:"size"`
}

// profilePlane is the collector's profile subsystem: the store, the periodic
// puller draining node capturer rings, and the flight recorder capturing
// evidence when alerts fire.
type profilePlane struct {
	c     *Collector
	store *profileStore

	client     *http.Client // listing/downloads and goroutine dumps
	cpuSeconds int

	mu       sync.Mutex
	lastPull map[string]time.Time    // node → newest capture At already pulled
	links    map[string][]ProfileRef // rule+node → linked flight evidence

	stop chan struct{}
}

func newProfilePlane(c *Collector, store *profileStore, cpuSeconds int) *profilePlane {
	if cpuSeconds <= 0 {
		cpuSeconds = DefaultFlightCPUSeconds
	}
	return &profilePlane{
		c:          c,
		store:      store,
		client:     &http.Client{Timeout: 5 * time.Second},
		cpuSeconds: cpuSeconds,
		lastPull:   make(map[string]time.Time),
		links:      make(map[string][]ProfileRef),
		stop:       make(chan struct{}),
	}
}

// nodeEndpoint returns a node's announced telemetry base URL and whether an
// obs/profile capturer is mounted there.
func (c *Collector) nodeEndpoint(node string) (base string, profilesOn bool, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ns := c.nodes[node]
	if ns == nil || ns.telemetryAddr == "" {
		return "", false, false
	}
	return "http://" + ns.telemetryAddr, ns.profilesOn, true
}

// announcedNodes returns every node that has announced a telemetry endpoint.
func (c *Collector) announcedNodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for name, ns := range c.nodes {
		if ns.telemetryAddr != "" {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func (pp *profilePlane) pullLoop(interval time.Duration) {
	defer pp.c.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			pp.pullAll()
		case <-pp.stop:
			return
		}
	}
}

// pullAll drains every announced capturer ring of captures newer than the
// last pull. Periodic pulling is how node-side captures survive the node:
// when a broker dies, its last profiles are already here.
func (pp *profilePlane) pullAll() {
	for _, node := range pp.c.announcedNodes() {
		base, profilesOn, ok := pp.c.nodeEndpoint(node)
		if !ok || !profilesOn {
			continue
		}
		pp.pullNode(node, base)
	}
}

func (pp *profilePlane) pullNode(node, base string) {
	pp.mu.Lock()
	since := pp.lastPull[node]
	pp.mu.Unlock()
	url := base + "/profiles"
	if !since.IsZero() {
		url += "?since=" + since.UTC().Format(time.RFC3339Nano)
	}
	var listing []remoteCapture
	if err := pp.getJSON(url, &listing); err != nil {
		pp.c.log.Debug("profile pull: listing", "node", node, "err", err)
		pp.c.profilePullErrs.Inc()
		return
	}
	newest := since
	for i := len(listing) - 1; i >= 0; i-- { // oldest first so eviction order is sane
		rc := listing[i]
		data, err := pp.getRaw(base + "/profiles/" + rc.ID)
		if err != nil {
			pp.c.log.Debug("profile pull: download", "node", node, "id", rc.ID, "err", err)
			pp.c.profilePullErrs.Inc()
			continue
		}
		if _, err := pp.store.Add(node, rc.Kind, rc.Trigger, rc.At, data); err != nil {
			pp.c.log.Warn("profile pull: store", "node", node, "id", rc.ID, "err", err)
			continue
		}
		pp.c.profilesStored.Inc()
		if rc.At.After(newest) {
			newest = rc.At
		}
	}
	if newest.After(since) {
		pp.mu.Lock()
		pp.lastPull[node] = newest
		pp.mu.Unlock()
	}
}

func (pp *profilePlane) getJSON(url string, v any) error {
	resp, err := pp.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(v)
}

func (pp *profilePlane) getRaw(url string) ([]byte, error) {
	resp, err := pp.client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 16<<20))
}

// Publish implements health.Sink: every alert that transitions to firing
// triggers a flight capture of the affected node. Runs async — sinks are
// called from the evaluation tick and profile capture takes seconds.
func (pp *profilePlane) Publish(a health.Alert) {
	if a.State != health.StateFiring {
		return
	}
	if a.Node == "" || a.Node == "obscollect" {
		return
	}
	select {
	case <-pp.stop:
		return
	default:
	}
	go pp.captureFlight(a)
}

// captureFlight pulls CPU + goroutine profiles from the alerted node's
// pprof endpoint and links them to the alert. When the node is unreachable
// (the deadman case: the process is gone), the most recent retained captures
// for that node become the linked evidence instead — that is exactly what
// the periodic pull was for.
func (pp *profilePlane) captureFlight(a health.Alert) {
	trigger := "flight:" + a.Rule
	var refs []ProfileRef
	if base, _, ok := pp.c.nodeEndpoint(a.Node); ok {
		// Goroutine dump first: it is instant, so even if the CPU capture
		// times out the pileup evidence is saved.
		if data, err := pp.getRaw(base + "/debug/pprof/goroutine?debug=1"); err == nil {
			if ref, err := pp.store.Add(a.Node, "goroutine", trigger, time.Now(), data); err == nil {
				refs = append(refs, ref)
				pp.c.profilesStored.Inc()
			}
		} else {
			pp.c.log.Debug("flight capture: goroutine", "node", a.Node, "rule", a.Rule, "err", err)
		}
		cpuClient := &http.Client{Timeout: time.Duration(pp.cpuSeconds+5) * time.Second}
		cpuURL := fmt.Sprintf("%s/debug/pprof/profile?seconds=%d", base, pp.cpuSeconds)
		if resp, err := cpuClient.Get(cpuURL); err == nil {
			data, rerr := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				if ref, err := pp.store.Add(a.Node, "cpu", trigger, time.Now(), data); err == nil {
					refs = append(refs, ref)
					pp.c.profilesStored.Inc()
				}
			}
		} else {
			pp.c.log.Debug("flight capture: cpu", "node", a.Node, "rule", a.Rule, "err", err)
		}
	}
	if len(refs) == 0 {
		// Node unreachable — fall back to its freshest retained captures.
		recent := pp.store.List(ProfileFilter{Node: a.Node})
		if len(recent) > 2 {
			recent = recent[:2]
		}
		refs = recent
		pp.c.log.Info("flight capture: node unreachable, linking retained profiles",
			"node", a.Node, "rule", a.Rule, "profiles", len(refs))
	} else {
		pp.c.log.Info("flight capture complete", "node", a.Node, "rule", a.Rule, "profiles", len(refs))
	}
	if len(refs) == 0 {
		return
	}
	key := a.Rule + "\xff" + a.Node
	pp.mu.Lock()
	linked := append(pp.links[key], refs...)
	if len(linked) > flightLinkCap {
		linked = linked[len(linked)-flightLinkCap:]
	}
	pp.links[key] = linked
	pp.mu.Unlock()
}

// linksFor returns the flight-recorder evidence linked to one (rule, node)
// alert, newest first.
func (pp *profilePlane) linksFor(rule, node string) []ProfileRef {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	linked := pp.links[rule+"\xff"+node]
	if len(linked) == 0 {
		return nil
	}
	out := append([]ProfileRef(nil), linked...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At.After(out[j].At) })
	return out
}

func (pp *profilePlane) close() {
	close(pp.stop)
}

// Profiles returns matching stored profile refs, newest first — testbed and
// smoke assertions read through this.
func (c *Collector) Profiles(f ProfileFilter) []ProfileRef {
	if c.profiles == nil {
		return nil
	}
	return c.profiles.store.List(f)
}

// PullProfilesNow forces one synchronous pull sweep over every announced
// capturer (tests use this instead of waiting out the pull interval).
func (c *Collector) PullProfilesNow() {
	if c.profiles != nil {
		c.profiles.pullAll()
	}
}
