package collect

import (
	"net/url"
	"sort"
	"strings"
	"time"

	"narada/internal/obs"
)

// DefaultEventCapacity bounds the per-node journal-event ring.
const DefaultEventCapacity = 4096

// NodeEvent is one control-plane event as stored by the collector: the
// emitter's record plus provenance (which node shipped it) and the
// offset-corrected timestamp that places it on the fabric-wide timeline.
type NodeEvent struct {
	Node      string    `json:"node"`
	Seq       uint64    `json:"seq"`
	Type      string    `json:"type"`
	Subject   string    `json:"subject,omitempty"`
	Detail    string    `json:"detail,omitempty"`
	At        time.Time `json:"at"`        // as recorded (node-local clock)
	AtAligned time.Time `json:"atAligned"` // offset-corrected best-effort UTC
}

// eventLog is one node's journal-event ring with sequence-gap accounting.
type eventLog struct {
	buf     []NodeEvent
	start   int
	n       int
	lastSeq uint64
	gaps    *obs.Counter // narada_collector_event_gaps_total{node=...}
}

func (l *eventLog) append(ev NodeEvent) {
	if l.n == len(l.buf) {
		l.buf[l.start] = ev
		l.start = (l.start + 1) % len(l.buf)
	} else {
		l.buf[(l.start+l.n)%len(l.buf)] = ev
		l.n++
	}
}

func (l *eventLog) each(fn func(NodeEvent)) {
	for i := 0; i < l.n; i++ {
		fn(l.buf[(l.start+i)%len(l.buf)])
	}
}

// ingestEventsLocked stores one event packet's batch under the sending node,
// counting sequence gaps — events lost to UDP drops or to emitter ring
// overwrite are visible as a counter, never silently absorbed. A sequence
// that goes backwards marks an emitter restart and re-baselines instead of
// counting a (huge) spurious gap. Requires c.mu.
func (c *Collector) ingestEventsLocked(pkt *obs.ExportPacket) {
	l := c.events[pkt.Node]
	if l == nil {
		l = &eventLog{
			buf: make([]NodeEvent, c.cfg.EventCapacity),
			gaps: c.reg.Counter("narada_collector_event_gaps_total",
				"Journal sequence gaps observed per node (events lost in transit or to emitter overwrite).",
				obs.L("node", pkt.Node)),
		}
		c.events[pkt.Node] = l
	}
	for _, ev := range pkt.Events {
		if ev.Seq > l.lastSeq+1 && l.lastSeq != 0 {
			l.gaps.Add(ev.Seq - l.lastSeq - 1)
		}
		if ev.Seq <= l.lastSeq {
			// Restart (seq reset) or duplicate: re-baseline, don't count.
			if ev.Seq == l.lastSeq {
				continue
			}
		}
		l.lastSeq = ev.Seq
		l.append(NodeEvent{
			Node:      pkt.Node,
			Seq:       ev.Seq,
			Type:      ev.Type,
			Subject:   ev.Subject,
			Detail:    ev.Detail,
			At:        ev.At,
			AtAligned: ev.At.Add(-pkt.Offset),
		})
	}
}

// drainOwnEvents moves the collector's own journal (alert lifecycle events
// from the health engine) into the event store under the collector's
// identity. The collector's clock is the reference timeline, so the offset
// is zero. Called on every health evaluation and before event reads.
func (c *Collector) drainOwnEvents() {
	events := c.journal.Drain()
	if len(events) == 0 {
		return
	}
	c.mu.Lock()
	c.ingestEventsLocked(&obs.ExportPacket{Node: "obscollect", Events: events})
	c.mu.Unlock()
}

// EventFilter selects events for the /events view. Zero fields match
// everything; Limit <= 0 is unlimited.
type EventFilter struct {
	Node  string
	Type  string
	Since time.Time
	Until time.Time
	Limit int
}

// EventsView is the /events payload: matching events in NTP-aligned merged
// order across all nodes, plus the total observed sequence-gap count so a
// reader knows when the record is incomplete.
type EventsView struct {
	Total  int         `json:"total"` // matches before Limit was applied
	Gaps   uint64      `json:"gaps"`  // sequence gaps across all nodes
	Events []NodeEvent `json:"events"`
}

// Events returns journal events matching the filter, merged across nodes and
// sorted by aligned time.
func (c *Collector) Events(f EventFilter) EventsView {
	c.drainOwnEvents()
	c.mu.Lock()
	var out []NodeEvent
	var gaps uint64
	for node, l := range c.events {
		gaps += l.gaps.Value()
		if f.Node != "" && node != f.Node {
			continue
		}
		l.each(func(ev NodeEvent) {
			if f.Type != "" && ev.Type != f.Type {
				return
			}
			if !f.Since.IsZero() && ev.AtAligned.Before(f.Since) {
				return
			}
			if !f.Until.IsZero() && ev.AtAligned.After(f.Until) {
				return
			}
			out = append(out, ev)
		})
	}
	c.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].AtAligned.Equal(out[j].AtAligned) {
			return out[i].AtAligned.Before(out[j].AtAligned)
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Seq < out[j].Seq
	})
	view := EventsView{Total: len(out), Gaps: gaps, Events: out}
	if f.Limit > 0 && len(out) > f.Limit {
		view.Events = out[len(out)-f.Limit:] // keep the newest
	}
	if view.Events == nil {
		view.Events = []NodeEvent{}
	}
	return view
}

// eventsURL renders the /events query selecting the given aligned window.
func eventsURL(from, to time.Time, node string) string {
	q := url.Values{}
	q.Set("since", from.UTC().Format(time.RFC3339Nano))
	q.Set("until", to.UTC().Format(time.RFC3339Nano))
	if node != "" {
		q.Set("node", node)
	}
	return "/events?" + q.Encode()
}

// TopologyNode is one node of the reconstructed fabric graph.
type TopologyNode struct {
	Name  string    `json:"name"`
	Up    bool      `json:"up"`
	Since time.Time `json:"since"` // aligned time of the last lifecycle change
}

// TopologyLink is one directed link (as seen by its owning endpoint).
type TopologyLink struct {
	From  string    `json:"from"`
	To    string    `json:"to"`
	Role  string    `json:"role,omitempty"` // "link" (broker peer) or "bdn"
	Since time.Time `json:"since"`          // aligned time the link came up
}

// TopologyAd is one broker registration held at a BDN, with its TTL state at
// the reconstruction instant.
type TopologyAd struct {
	BDN         string     `json:"bdn"`
	Broker      string     `json:"broker"`
	RefreshedAt time.Time  `json:"refreshedAt"`
	ExpiresAt   *time.Time `json:"expiresAt,omitempty"`
	TTLState    string     `json:"ttlState"` // "live" | "expiring" | "no-ttl"
}

// TopologyView is the /topology payload: the fabric graph reconstructed by
// replaying the event journal up to At. Links and Ads list only what was
// live at that instant — a torn-down link is absent, which is exactly what
// time-travel queries around a fault look for.
type TopologyView struct {
	At     time.Time      `json:"at"`
	Live   bool           `json:"live"`
	Events int            `json:"eventsReplayed"`
	Nodes  []TopologyNode `json:"nodes"`
	Links  []TopologyLink `json:"links"`
	Ads    []TopologyAd   `json:"ads"`
}

// adTTL extracts the "ttl=<duration>" token advertisement events carry in
// their detail; 0 when absent or unparsable.
func adTTL(detail string) time.Duration {
	for _, tok := range strings.Fields(detail) {
		if v, ok := strings.CutPrefix(tok, "ttl="); ok {
			if d, err := time.ParseDuration(v); err == nil {
				return d
			}
		}
	}
	return 0
}

// TopologyAt replays every journal event with aligned time <= at (in merged
// aligned order) into a fabric graph. Replay is stateless and idempotent:
// the same store and instant always reconstruct the same graph, and any
// instant within the retained window can be queried — the "time-travel" in
// the timeline. live marks the reconstruction instant as "now".
func (c *Collector) TopologyAt(at time.Time, live bool) TopologyView {
	c.drainOwnEvents()
	c.mu.Lock()
	var events []NodeEvent
	for _, l := range c.events {
		l.each(func(ev NodeEvent) {
			if !ev.AtAligned.After(at) {
				events = append(events, ev)
			}
		})
	}
	c.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool {
		if !events[i].AtAligned.Equal(events[j].AtAligned) {
			return events[i].AtAligned.Before(events[j].AtAligned)
		}
		if events[i].Node != events[j].Node {
			return events[i].Node < events[j].Node
		}
		return events[i].Seq < events[j].Seq
	})

	type linkKey struct{ from, to string }
	type adKey struct{ bdn, broker string }
	nodes := make(map[string]*TopologyNode)
	links := make(map[linkKey]*TopologyLink)
	ads := make(map[adKey]*TopologyAd)

	touch := func(ev NodeEvent) *TopologyNode {
		n := nodes[ev.Node]
		if n == nil {
			// First sight of a node without an observed node_start: it was
			// already running when the journal window opened.
			n = &TopologyNode{Name: ev.Node, Up: true, Since: ev.AtAligned}
			nodes[ev.Node] = n
		}
		return n
	}
	for _, ev := range events {
		n := touch(ev)
		switch ev.Type {
		case obs.EventNodeStart:
			n.Up, n.Since = true, ev.AtAligned
		case obs.EventNodeStop:
			n.Up, n.Since = false, ev.AtAligned
			for k := range links {
				if k.from == ev.Node {
					delete(links, k)
				}
			}
		case obs.EventLinkUp:
			role := strings.TrimPrefix(ev.Detail, "role=")
			links[linkKey{ev.Node, ev.Subject}] = &TopologyLink{
				From: ev.Node, To: ev.Subject, Role: role, Since: ev.AtAligned,
			}
		case obs.EventLinkDown:
			delete(links, linkKey{ev.Node, ev.Subject})
		case obs.EventAdRegistered, obs.EventAdRefreshed:
			// ad_refreshed is emitted both by BDNs (registration renewed,
			// subject = broker) and by brokers (advertisement sent, subject =
			// "bdn:<addr>" target). Only BDN-held state belongs on the graph.
			if strings.HasPrefix(ev.Subject, "bdn:") {
				continue
			}
			ad := ads[adKey{ev.Node, ev.Subject}]
			if ad == nil {
				ad = &TopologyAd{BDN: ev.Node, Broker: ev.Subject}
				ads[adKey{ev.Node, ev.Subject}] = ad
			}
			ad.RefreshedAt = ev.AtAligned
			if ttl := adTTL(ev.Detail); ttl > 0 {
				exp := ev.AtAligned.Add(ttl)
				ad.ExpiresAt = &exp
			} else {
				ad.ExpiresAt = nil
			}
		case obs.EventAdExpired:
			delete(ads, adKey{ev.Node, ev.Subject})
		}
	}

	view := TopologyView{At: at, Live: live, Events: len(events)}
	for _, n := range nodes {
		view.Nodes = append(view.Nodes, *n)
	}
	for _, l := range links {
		view.Links = append(view.Links, *l)
	}
	for _, ad := range ads {
		a := *ad
		switch {
		case a.ExpiresAt == nil:
			a.TTLState = "no-ttl"
		case a.ExpiresAt.Before(at):
			// Deadline lapsed but no sweep event yet: mirror the BDN's
			// read-path filtering, which treats the entry as gone.
			continue
		case a.ExpiresAt.Sub(at) < a.ExpiresAt.Sub(a.RefreshedAt)/3:
			a.TTLState = "expiring" // inside the last third of its window
		default:
			a.TTLState = "live"
		}
		view.Ads = append(view.Ads, a)
	}
	sort.Slice(view.Nodes, func(i, j int) bool { return view.Nodes[i].Name < view.Nodes[j].Name })
	sort.Slice(view.Links, func(i, j int) bool {
		if view.Links[i].From != view.Links[j].From {
			return view.Links[i].From < view.Links[j].From
		}
		return view.Links[i].To < view.Links[j].To
	})
	sort.Slice(view.Ads, func(i, j int) bool {
		if view.Ads[i].BDN != view.Ads[j].BDN {
			return view.Ads[i].BDN < view.Ads[j].BDN
		}
		return view.Ads[i].Broker < view.Ads[j].Broker
	})
	if view.Nodes == nil {
		view.Nodes = []TopologyNode{}
	}
	if view.Links == nil {
		view.Links = []TopologyLink{}
	}
	if view.Ads == nil {
		view.Ads = []TopologyAd{}
	}
	return view
}

// alertWindow is how far back from an alert's anchor the correlated event
// window reaches: wide enough to hold the reconnect burst and link teardown
// that explain a deadman, narrow enough to exclude unrelated history.
const alertWindow = 30 * time.Second

// maxWindowEvents caps the events embedded inline in an alert; the URL
// always selects the full window.
const maxWindowEvents = 20

// EventWindow links an alert (or trace) to the journal events surrounding
// it: the root-cause view — "deadman at T ⇐ 3 reconnect_gaveup on link X in
// [T−30s, T]" — without a second query.
type EventWindow struct {
	From   time.Time   `json:"from"`
	To     time.Time   `json:"to"`
	URL    string      `json:"url"`
	Events []NodeEvent `json:"events"`
}

// eventWindowFor assembles the correlated event window for an alert on node:
// every event in [anchor−alertWindow, anchor] emitted by the node or naming
// it as subject (a vanished broker emits nothing — the evidence lives in its
// peers' link_down and reconnect_attempt events).
func (c *Collector) eventWindowFor(node string, anchor time.Time) *EventWindow {
	from := anchor.Add(-alertWindow)
	all := c.Events(EventFilter{Since: from, Until: anchor}).Events
	var related []NodeEvent
	for _, ev := range all {
		if ev.Node == node || ev.Subject == node ||
			(ev.Subject != "" && strings.Contains(ev.Subject, node)) {
			related = append(related, ev)
		}
	}
	if len(related) == 0 {
		return nil
	}
	if len(related) > maxWindowEvents {
		related = related[len(related)-maxWindowEvents:]
	}
	return &EventWindow{From: from, To: anchor, URL: eventsURL(from, anchor, ""), Events: related}
}

// EventCount returns the number of retained events across all nodes.
func (c *Collector) EventCount() int {
	c.drainOwnEvents()
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, l := range c.events {
		n += l.n
	}
	return n
}

// EventGaps returns the total sequence gaps observed across all nodes.
func (c *Collector) EventGaps() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var gaps uint64
	for _, l := range c.events {
		gaps += l.gaps.Value()
	}
	return gaps
}
