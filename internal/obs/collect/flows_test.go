package collect

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"narada/internal/obs"
)

func flowsPkt(node string, at time.Time, flows []obs.FlowSnapshot) *obs.ExportPacket {
	for i := range flows {
		// Mirror the decoder: the wire carries Drops; the convenience
		// fields are derived on receipt.
		s := &flows[i]
		s.DropQueue = s.Drops[obs.DropQueueFull]
		s.DropConn = s.Drops[obs.DropConnDown]
		s.DropLarge = s.Drops[obs.DropFrameTooLarge]
		s.DropMsgs = s.DropQueue + s.DropConn + s.DropLarge
	}
	return &obs.ExportPacket{Node: node, FlowsAt: at, Flows: flows}
}

// TestFlowsViewMergesNodes feeds two brokers' flow snapshots and checks the
// assembled view: per-node tables verbatim, the fabric merge summing shared
// topics, ordering by published count with <other> pinned last.
func TestFlowsViewMergesNodes(t *testing.T) {
	c := newTestCollector(t, Config{})
	at := time.Date(2026, 8, 7, 9, 0, 0, 0, time.UTC)

	c.ingest(flowsPkt("broker-a", at, []obs.FlowSnapshot{
		{Topic: "sensors/temp", PubMsgs: 500, PubBytes: 50_000, DelMsgs: 490, DelBytes: 49_000,
			Drops: [obs.NumDropReasons]uint64{10, 0, 0}},
		{Topic: "logs/app", PubMsgs: 100, DelMsgs: 100},
	}))
	c.ingest(flowsPkt("broker-b", at.Add(time.Second), []obs.FlowSnapshot{
		{Topic: "sensors/temp", PubMsgs: 300, PubBytes: 30_000, DelMsgs: 300, DelBytes: 30_000, ErrBound: 7},
		{Topic: obs.FlowOther, DelMsgs: 5, Drops: [obs.NumDropReasons]uint64{0, 2, 0}},
	}))

	view := c.Flows()
	if len(view.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2: %+v", len(view.Nodes), view.Nodes)
	}
	if view.Nodes[0].Node != "broker-a" || view.Nodes[1].Node != "broker-b" {
		t.Fatalf("node order = %s, %s", view.Nodes[0].Node, view.Nodes[1].Node)
	}
	if !view.Nodes[1].At.Equal(at.Add(time.Second)) {
		t.Fatalf("broker-b At = %v", view.Nodes[1].At)
	}
	if len(view.Nodes[0].Flows) != 2 || view.Nodes[0].Flows[0].PubMsgs != 500 {
		t.Fatalf("broker-a table mangled: %+v", view.Nodes[0].Flows)
	}

	// Fabric merge: temp = 800 across both brokers, logs = 100, <other> last.
	if len(view.Fabric) != 3 {
		t.Fatalf("fabric rows = %d, want 3: %+v", len(view.Fabric), view.Fabric)
	}
	temp := view.Fabric[0]
	if temp.Topic != "sensors/temp" || temp.PubMsgs != 800 || temp.DelMsgs != 790 ||
		temp.DropQueue != 10 || temp.ErrBound != 7 {
		t.Fatalf("merged temp = %+v", temp)
	}
	if view.Fabric[1].Topic != "logs/app" {
		t.Fatalf("fabric order: %+v", view.Fabric)
	}
	if last := view.Fabric[2]; last.Topic != obs.FlowOther || last.DropConn != 2 {
		t.Fatalf("<other> not folded last: %+v", last)
	}
}

// TestFlowsSnapshotReplacesNotAccumulates: each flows packet is a full
// snapshot of the node's table, so a later packet replaces the earlier one
// rather than double counting.
func TestFlowsSnapshotReplacesNotAccumulates(t *testing.T) {
	c := newTestCollector(t, Config{})
	at := time.Date(2026, 8, 7, 9, 0, 0, 0, time.UTC)
	c.ingest(flowsPkt("b1", at, []obs.FlowSnapshot{{Topic: "a", PubMsgs: 10}}))
	c.ingest(flowsPkt("b1", at.Add(time.Second), []obs.FlowSnapshot{{Topic: "a", PubMsgs: 25}}))
	view := c.Flows()
	if len(view.Fabric) != 1 || view.Fabric[0].PubMsgs != 25 {
		t.Fatalf("fabric = %+v, want the latest snapshot only", view.Fabric)
	}
}

// TestFlowsHTTPEndpoint round-trips the view through the /flows handler.
func TestFlowsHTTPEndpoint(t *testing.T) {
	c := newTestCollector(t, Config{})
	c.ingest(flowsPkt("b1", time.Now(), []obs.FlowSnapshot{
		{Topic: "sensors/temp", PubMsgs: 42, DelMsgs: 40, Drops: [obs.NumDropReasons]uint64{2, 0, 0}},
	}))
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/flows")
	if err != nil {
		t.Fatalf("GET /flows: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("/flows status %d: %s", resp.StatusCode, body)
	}
	var view FlowsView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatalf("/flows is not JSON: %v\n%s", err, body)
	}
	if len(view.Fabric) != 1 || view.Fabric[0].Topic != "sensors/temp" ||
		view.Fabric[0].PubMsgs != 42 || view.Fabric[0].DropQueue != 2 {
		t.Fatalf("/flows payload = %s", body)
	}
}
