package collect

import (
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"narada/internal/obs"
)

func newTestCollector(t *testing.T, cfg Config) *Collector {
	t.Helper()
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("collector: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func spanPkt(node string, offset time.Duration, traceID, name string, at time.Time) *obs.ExportPacket {
	return &obs.ExportPacket{
		Node:   node,
		Offset: offset,
		Spans:  []obs.SpanRecord{{TraceID: traceID, Span: obs.SpanView{Name: name, At: at}}},
	}
}

// TestIngestAlignsAcrossSkewedClocks feeds spans whose raw timestamps are
// misordered by large clock offsets and asserts the assembled trace comes
// back in offset-corrected causal order.
func TestIngestAlignsAcrossSkewedClocks(t *testing.T) {
	c := newTestCollector(t, Config{})
	base := time.Date(2005, 7, 1, 12, 0, 0, 0, time.UTC)

	// True order: issue (t+0, node fast by +400ms), inject (t+100ms, node
	// slow by -300ms), respond (t+200ms, honest clock). Raw timestamps
	// reverse the first two.
	c.ingest(spanPkt("requester", 400*time.Millisecond, "t1", "request-issue", base.Add(400*time.Millisecond)))
	c.ingest(spanPkt("bdn0", -300*time.Millisecond, "t1", "bdn-inject", base.Add(100*time.Millisecond-300*time.Millisecond)))
	c.ingest(spanPkt("broker-1", 0, "t1", "broker-respond", base.Add(200*time.Millisecond)))

	tr, ok := c.Trace("t1")
	if !ok {
		t.Fatal("trace t1 not assembled")
	}
	want := []string{"request-issue", "bdn-inject", "broker-respond"}
	if len(tr.Spans) != len(want) {
		t.Fatalf("got %d spans, want %d", len(tr.Spans), len(want))
	}
	for i, s := range tr.Spans {
		if s.Name != want[i] {
			t.Fatalf("aligned order = %v, want %v", spanNames(tr), want)
		}
		if !s.AtAligned.Equal(base.Add(time.Duration(i) * 100 * time.Millisecond)) {
			t.Fatalf("span %s aligned to %v, want %v", s.Name, s.AtAligned,
				base.Add(time.Duration(i)*100*time.Millisecond))
		}
	}
	if len(tr.Nodes) != 3 {
		t.Fatalf("trace nodes = %v, want 3", tr.Nodes)
	}
}

func spanNames(tr TraceInfo) []string {
	out := make([]string, len(tr.Spans))
	for i, s := range tr.Spans {
		out[i] = s.Name
	}
	return out
}

// TestTraceRingEviction fills the bounded trace ring past capacity and
// asserts the oldest trace is fully forgotten — listing, lookup and count.
func TestTraceRingEviction(t *testing.T) {
	c := newTestCollector(t, Config{TraceCapacity: 2})
	at := time.Unix(1000, 0)
	c.ingest(spanPkt("n", 0, "t1", "a", at))
	c.ingest(spanPkt("n", 0, "t2", "b", at))
	c.ingest(spanPkt("n", 0, "t3", "c", at))

	if n := c.TraceCount(); n != 2 {
		t.Fatalf("TraceCount = %d, want 2", n)
	}
	if _, ok := c.Trace("t1"); ok {
		t.Fatal("evicted trace t1 still retrievable")
	}
	sums := c.Traces()
	if len(sums) != 2 || sums[0].ID != "t2" || sums[1].ID != "t3" {
		t.Fatalf("summaries = %+v, want t2 then t3", sums)
	}
	// A new span for the evicted id re-creates it (and evicts t2).
	c.ingest(spanPkt("n", 0, "t1", "a2", at))
	if _, ok := c.Trace("t2"); ok {
		t.Fatal("t2 should have been evicted on t1's return")
	}
}

// TestFederatedMetrics merges two nodes' snapshots with the collector's own
// registry and checks the node label discipline.
func TestFederatedMetrics(t *testing.T) {
	c := newTestCollector(t, Config{})
	c.ingest(&obs.ExportPacket{
		Node: "broker-1", MetricsAt: time.Unix(2000, 0),
		Families: []obs.ExportFamily{
			// No node label: federation must add node="broker-1".
			{Name: "narada_broker_links", Help: "Links.", Kind: "gauge",
				Series: []obs.ExportSeries{{Gauge: 4}}},
		},
	})
	c.ingest(&obs.ExportPacket{
		Node: "broker-2", MetricsAt: time.Unix(2000, 0),
		Families: []obs.ExportFamily{
			// Already labelled (per-node registries stamp identity): kept as-is.
			{Name: "narada_broker_links", Help: "Links.", Kind: "gauge",
				Series: []obs.ExportSeries{{Labels: []obs.Label{obs.L("node", "broker-2")}, Gauge: 7}}},
		},
	})

	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)

	for _, want := range []string{
		`narada_broker_links{node="broker-1"} 4`,
		`narada_broker_links{node="broker-2"} 7`,
		`narada_collect_packets_total{node="obscollect",result="ok"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("federated exposition missing %q:\n%s", want, body)
		}
	}
	if strings.Count(body, "# TYPE narada_broker_links gauge") != 1 {
		t.Errorf("family narada_broker_links not merged once:\n%s", body)
	}
}

// TestFabricView checks per-node extraction of load gauges and discovery
// latency percentiles.
func TestFabricView(t *testing.T) {
	c := newTestCollector(t, Config{})
	c.ingest(&obs.ExportPacket{
		Node: "broker-1", Offset: 250 * time.Millisecond, MetricsAt: time.Unix(2000, 0),
		Families: []obs.ExportFamily{
			{Name: "narada_broker_egress_queue_depth", Kind: "gauge",
				Series: []obs.ExportSeries{{Gauge: 3}, {Gauge: 2}}},
			{Name: "narada_broker_egress_dropped_total", Kind: "counter",
				Series: []obs.ExportSeries{{Counter: 5}}},
			{Name: "narada_broker_links", Kind: "gauge", Series: []obs.ExportSeries{{Gauge: 4}}},
			{Name: "narada_broker_clients", Kind: "gauge", Series: []obs.ExportSeries{{Gauge: 9}}},
		},
	})
	c.ingest(&obs.ExportPacket{
		Node: "requester", MetricsAt: time.Unix(2000, 0),
		Families: []obs.ExportFamily{
			{Name: "narada_discovery_total_seconds", Kind: "histogram",
				Series: []obs.ExportSeries{{
					Bounds:  []float64{0.1, 1},
					Buckets: []uint64{8, 2, 0},
					Sum:     1.5, Count: 10,
				}}},
		},
	})

	view := c.Fabric()
	if len(view.Nodes) != 2 {
		t.Fatalf("fabric nodes = %+v, want 2", view.Nodes)
	}
	b := view.Nodes[0]
	if b.Name != "broker-1" || b.EgressDepth != 5 || b.EgressDropped != 5 ||
		b.Links != 4 || b.Clients != 9 || b.ClockOffsetMs != 250 {
		t.Fatalf("broker entry = %+v", b)
	}
	r := view.Nodes[1]
	if r.Discovery == nil || r.Discovery.Count != 10 {
		t.Fatalf("requester entry = %+v", r)
	}
	// Rank 5 of 10 falls mid-way through the 8-strong [0, 0.1) bucket.
	if p50 := r.Discovery.P50; p50 <= 0 || p50 > 0.1 {
		t.Fatalf("p50 = %v, want within (0, 0.1]", p50)
	}
	if p99 := r.Discovery.P99; p99 <= 0.1 || p99 > 1 {
		t.Fatalf("p99 = %v, want within (0.1, 1]", p99)
	}
}

func TestHistQuantile(t *testing.T) {
	bounds := []float64{1, 2, 4}
	buckets := []uint64{10, 10, 0, 5} // 25 observations, 5 in +Inf
	cases := []struct {
		q    float64
		want float64
	}{
		{0.2, 0.5}, // rank 5, halfway through [0,1)
		{0.4, 1},   // rank 10, exactly the first bound
		{0.8, 2},   // rank 20: the empty (2,4] bucket collapses to its bound... rank 20 ends bucket 2
		{0.99, 4},  // lands in +Inf: clamped to the last finite bound
	}
	for _, tc := range cases {
		if got := histQuantile(tc.q, bounds, buckets); got != tc.want {
			t.Errorf("q=%v: got %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := histQuantile(0.5, nil, nil); got != 0 {
		t.Errorf("empty histogram: got %v, want 0", got)
	}
	if got := histQuantile(0.5, bounds, []uint64{1, 2}); got != 0 {
		t.Errorf("malformed buckets: got %v, want 0", got)
	}
}

// TestCollectorOverUDP exercises the real datagram path: encoded packets in,
// assembled state out, and garbage counted without wedging the loop.
func TestCollectorOverUDP(t *testing.T) {
	c := newTestCollector(t, Config{})
	conn, err := net.Dial("udp", c.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	if _, err := conn.Write([]byte("not an export packet")); err != nil {
		t.Fatalf("write garbage: %v", err)
	}
	frame := obs.EncodeSpanPacket("broker-1", 10*time.Millisecond,
		[]obs.SpanRecord{{TraceID: "udp-1", Span: obs.SpanView{Name: "broker-respond", At: time.Unix(3000, 0)}}})
	if _, err := conn.Write(frame); err != nil {
		t.Fatalf("write frame: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := c.Trace("udp-1"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("UDP span packet never ingested")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.packetsBad.Value() != 1 {
		t.Fatalf("bad-packet counter = %d, want 1", c.packetsBad.Value())
	}
	if c.NodeCount() != 1 {
		t.Fatalf("NodeCount = %d, want 1", c.NodeCount())
	}
}

func TestProberConfigValidation(t *testing.T) {
	if _, err := NewProber(ProbeConfig{BDNAddrs: []string{"127.0.0.1:1"}}); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewProber(ProbeConfig{Interval: time.Second}); err == nil {
		t.Error("missing BDN addrs accepted")
	}
}
