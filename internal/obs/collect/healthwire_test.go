package collect

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"narada/internal/obs"
	"narada/internal/obs/collect/health"
)

// recordSink captures published alert transitions for assertions.
type recordSink struct {
	mu  sync.Mutex
	got []health.Alert
}

func (s *recordSink) Publish(a health.Alert) {
	s.mu.Lock()
	s.got = append(s.got, a)
	s.mu.Unlock()
}

func (s *recordSink) alerts() []health.Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]health.Alert(nil), s.got...)
}

func metricsPkt(node string, seq uint64, offset time.Duration, fams ...obs.ExportFamily) *obs.ExportPacket {
	return &obs.ExportPacket{Node: node, Offset: offset, Seq: seq,
		MetricsAt: time.Now(), Families: fams}
}

// healthTestCollector builds a collector with a fast deadman horizon and the
// evaluation ticker disabled — tests drive EvaluateHealthNow directly.
func healthTestCollector(t *testing.T, hc health.Config) (*Collector, *recordSink) {
	t.Helper()
	sink := &recordSink{}
	hc.Sinks = append(hc.Sinks, sink)
	if hc.ExportInterval == 0 {
		hc.ExportInterval = 20 * time.Millisecond
	}
	c := newTestCollector(t, Config{
		Resolutions:    testResolutions(),
		Health:         &hc,
		HealthInterval: -1,
	})
	return c, sink
}

// TestDeadmanFromIngest drives the full path: UDP-shaped ingest state →
// EvaluateHealthNow → deadman firing on silence and resolving on return.
func TestDeadmanFromIngest(t *testing.T) {
	c, sink := healthTestCollector(t, health.Config{DeadmanIntervals: 2})

	c.ingest(metricsPkt("broker-1", 1, 0))
	c.EvaluateHealthNow()
	if got := c.Health().Firing(); got != 0 {
		t.Fatalf("firing = %d for a live node", got)
	}

	// Stay silent past 2 × 20ms: deadman fires.
	time.Sleep(60 * time.Millisecond)
	c.EvaluateHealthNow()
	if got := c.Health().Firing(); got != 1 {
		t.Fatalf("firing = %d after silence, want 1; alerts=%+v", got, c.Health().Alerts())
	}

	// Node comes back and stays back past ResolveAfter (3 × 20ms): resolves.
	deadline := time.Now().Add(2 * time.Second)
	for c.Health().Firing() != 0 {
		c.ingest(metricsPkt("broker-1", 2, 0))
		c.EvaluateHealthNow()
		if time.Now().After(deadline) {
			t.Fatalf("deadman never resolved; alerts=%+v", c.Health().Alerts())
		}
		time.Sleep(10 * time.Millisecond)
	}
	states := []string{}
	for _, a := range sink.alerts() {
		if a.Rule == health.RuleDeadman {
			states = append(states, a.State)
		}
	}
	if len(states) != 2 || states[0] != health.StateFiring || states[1] != health.StateResolved {
		t.Fatalf("deadman transitions = %v, want [firing resolved]", states)
	}
}

func TestClockDriftFromIngest(t *testing.T) {
	c, _ := healthTestCollector(t, health.Config{})
	c.ingest(metricsPkt("broker-1", 1, 25*time.Millisecond))
	c.EvaluateHealthNow()
	var drift *health.Alert
	for _, a := range c.Health().Alerts() {
		if a.Rule == health.RuleClockDrift {
			drift = &a
			break
		}
	}
	if drift == nil || drift.State != health.StateFiring {
		t.Fatalf("no firing clock_drift alert: %+v", c.Health().Alerts())
	}
	if drift.Value < 0.024 || drift.Value > 0.026 {
		t.Fatalf("drift value = %v, want ~0.025", drift.Value)
	}
}

// TestEgressInputsFromStore checks the health input assembly reads the egress
// gauge and windowed drop rate out of the series store.
func TestEgressInputsFromStore(t *testing.T) {
	c, _ := healthTestCollector(t, health.Config{
		EgressDepthMax:    100,
		EgressDropRateMax: 1,
		EgressWindow:      10 * time.Second,
	})
	depth := func(v float64) obs.ExportFamily {
		return obs.ExportFamily{Name: "narada_broker_egress_queue_depth", Kind: "gauge",
			Series: []obs.ExportSeries{{Gauge: v}}}
	}
	drops := func(v uint64) obs.ExportFamily {
		return obs.ExportFamily{Name: "narada_broker_egress_dropped_total", Kind: "counter",
			Series: []obs.ExportSeries{{Counter: v}}}
	}

	c.ingest(metricsPkt("broker-1", 1, 0, depth(50), drops(0)))
	c.EvaluateHealthNow()
	if got := c.Health().Firing(); got != 0 {
		t.Fatalf("healthy broker fired %d alerts: %+v", got, c.Health().Alerts())
	}

	// Saturated queue + 30 drops in the 10s window (3/s > 1/s).
	c.ingest(metricsPkt("broker-1", 2, 0, depth(150), drops(30)))
	c.EvaluateHealthNow()
	firing := map[string]bool{}
	for _, a := range c.Health().Alerts() {
		if a.State == health.StateFiring {
			firing[a.Rule] = true
		}
	}
	if !firing[health.RuleEgressSaturation] || !firing[health.RuleEgressDrops] {
		t.Fatalf("firing rules = %v, want egress saturation and drops", firing)
	}
}

// TestProbeSLOFromStore feeds probe SLI counters and latency histograms
// through ingest and checks both burn-rate rules read them back correctly.
func TestProbeSLOFromStore(t *testing.T) {
	c, _ := healthTestCollector(t, health.Config{
		FastWindow: 10 * time.Second,
		SlowWindow: time.Minute,
		LatencySLO: time.Second,
	})
	runs := func(ok, errs uint64) obs.ExportFamily {
		return obs.ExportFamily{Name: "narada_probe_runs_total", Kind: "counter",
			Series: []obs.ExportSeries{
				{Labels: []obs.Label{obs.L("outcome", "ok")}, Counter: ok},
				{Labels: []obs.Label{obs.L("outcome", "error")}, Counter: errs},
			}}
	}
	lat := func(buckets []uint64, sum float64, count uint64) obs.ExportFamily {
		return obs.ExportFamily{Name: "narada_probe_latency_seconds", Kind: "histogram",
			Series: []obs.ExportSeries{{
				Bounds: []float64{0.5, 1, 5}, Buckets: buckets, Sum: sum, Count: count}}}
	}

	c.ingest(metricsPkt("obsprobe", 1, 0, runs(0, 0), lat([]uint64{0, 0, 0, 0}, 0, 0)))
	c.EvaluateHealthNow()
	if got := c.Health().Firing(); got != 0 {
		t.Fatalf("baseline fired %d alerts", got)
	}

	// 50% probe errors and 75% of latency observations beyond the 1s SLO:
	// both burn rates blow through 14.4x/6x of the 1% budget.
	c.ingest(metricsPkt("obsprobe", 2, 0,
		runs(10, 10), lat([]uint64{5, 0, 10, 5}, 40, 20)))
	c.EvaluateHealthNow()
	firing := map[string]bool{}
	for _, a := range c.Health().Alerts() {
		if a.State == health.StateFiring {
			firing[a.Rule] = true
		}
	}
	if !firing[health.RuleProbeSLOBurn] || !firing[health.RuleProbeLatencyBurn] {
		t.Fatalf("firing rules = %v, want both probe burn rules", firing)
	}
}

// TestAlertsEndpoint checks /alerts serves the firing count and alert list.
func TestAlertsEndpoint(t *testing.T) {
	c, _ := healthTestCollector(t, health.Config{DeadmanIntervals: 2})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	get := func() AlertsView {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/alerts")
		if err != nil {
			t.Fatalf("GET /alerts: %v", err)
		}
		defer resp.Body.Close()
		var v AlertsView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode /alerts: %v", err)
		}
		return v
	}

	if v := get(); v.Firing != 0 || len(v.Alerts) != 0 {
		t.Fatalf("empty engine served %+v", v)
	}

	c.ingest(metricsPkt("broker-1", 1, 0))
	time.Sleep(60 * time.Millisecond)
	c.EvaluateHealthNow()
	v := get()
	if v.Firing != 1 || len(v.Alerts) != 1 {
		t.Fatalf("/alerts = %+v, want one firing", v)
	}
	a := v.Alerts[0]
	if a.Rule != health.RuleDeadman || a.Node != "broker-1" || a.State != health.StateFiring || a.FiredAt == nil {
		t.Fatalf("alert = %+v", a)
	}
}

// TestQueryEndpoint checks parameter validation, resolution selection and the
// downsampled payload of /query.
func TestQueryEndpoint(t *testing.T) {
	c, _ := healthTestCollector(t, health.Config{})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	runs := func(n uint64) obs.ExportFamily {
		return obs.ExportFamily{Name: "narada_probe_runs_total", Kind: "counter",
			Series: []obs.ExportSeries{{Labels: []obs.Label{obs.L("outcome", "ok")}, Counter: n}}}
	}
	c.ingest(metricsPkt("obsprobe", 1, 0, runs(0)))
	c.ingest(metricsPkt("obsprobe", 2, 0, runs(42)))

	get := func(query string) (int, QueryView) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/query" + query)
		if err != nil {
			t.Fatalf("GET /query%s: %v", query, err)
		}
		defer resp.Body.Close()
		var v QueryView
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				t.Fatalf("decode: %v", err)
			}
		}
		return resp.StatusCode, v
	}

	if code, _ := get(""); code != http.StatusBadRequest {
		t.Fatalf("missing metric: status %d, want 400", code)
	}
	if code, _ := get("?metric=m&res=bogus"); code != http.StatusBadRequest {
		t.Fatalf("unparseable res: status %d, want 400", code)
	}
	if code, _ := get("?metric=m&res=7s"); code != http.StatusBadRequest {
		t.Fatalf("unconfigured res: status %d, want 400", code)
	}
	if code, _ := get("?metric=m&since=yesterday"); code != http.StatusBadRequest {
		t.Fatalf("bad since: status %d, want 400", code)
	}

	// Every configured resolution tier serves the series.
	for _, res := range []string{"1s", "10s", "1m0s"} {
		code, v := get("?metric=narada_probe_runs_total&node=obsprobe&res=" + res + "&since=30s")
		if code != http.StatusOK {
			t.Fatalf("res=%s: status %d", res, code)
		}
		if len(v.Series) != 1 {
			t.Fatalf("res=%s: %d series, want 1", res, len(v.Series))
		}
		s := v.Series[0]
		if s.Node != "obsprobe" || s.Kind != "counter" || s.Labels["outcome"] != "ok" {
			t.Fatalf("res=%s series identity = %+v", res, s)
		}
		total := 0.0
		for _, p := range s.Points {
			total += p.Value
		}
		if total != 42 {
			t.Fatalf("res=%s windowed increase = %v, want 42", res, total)
		}
	}

	// Unknown metrics are an empty result, not an error.
	code, v := get("?metric=narada_no_such_metric")
	if code != http.StatusOK || len(v.Series) != 0 {
		t.Fatalf("unknown metric: status %d series %+v", code, v.Series)
	}
}

// TestCloseFlushesAlerts checks Close delivers still-firing alerts to sinks.
func TestCloseFlushesAlerts(t *testing.T) {
	sink := &recordSink{}
	c, err := New(Config{
		Listen:         "127.0.0.1:0",
		Resolutions:    testResolutions(),
		HealthInterval: -1,
		Health: &health.Config{
			ExportInterval:   10 * time.Millisecond,
			DeadmanIntervals: 2,
			Sinks:            []health.Sink{sink},
		},
	})
	if err != nil {
		t.Fatalf("collector: %v", err)
	}
	c.ingest(metricsPkt("broker-1", 1, 0))
	time.Sleep(40 * time.Millisecond)
	c.EvaluateHealthNow()
	if c.Health().Firing() != 1 {
		t.Fatalf("setup: expected one firing alert, got %+v", c.Health().Alerts())
	}
	before := len(sink.alerts())
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got := sink.alerts()
	if len(got) != before+1 || got[len(got)-1].State != health.StateFiring {
		t.Fatalf("flush on close delivered %+v (had %d before)", got, before)
	}
}
