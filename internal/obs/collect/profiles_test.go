package collect

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	rpprof "runtime/pprof"
	"strings"
	"testing"
	"time"

	"narada/internal/obs"
	"narada/internal/obs/collect/health"
	"narada/internal/obs/profile"
)

// nodeTelemetry fakes one node's telemetry HTTP server: an obs/profile
// capturer mounted at /profiles plus the goroutine pprof endpoint the flight
// recorder pulls. Returns the capturer and the announced host:port.
func nodeTelemetry(t *testing.T) (*profile.Capturer, string) {
	t.Helper()
	capt := profile.New(profile.Config{})
	mux := http.NewServeMux()
	mux.Handle("/profiles", capt.Handler())
	mux.Handle("/profiles/", capt.Handler())
	mux.HandleFunc("/debug/pprof/goroutine", func(w http.ResponseWriter, _ *http.Request) {
		_ = rpprof.Lookup("goroutine").WriteTo(w, 1)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return capt, strings.TrimPrefix(srv.URL, "http://")
}

func announce(c *Collector, node, addr string) {
	c.ingest(&obs.ExportPacket{Node: node, NodeInfo: true, TelemetryAddr: addr, ProfilesOn: true})
}

func TestProfilePullAndServe(t *testing.T) {
	capt, addr := nodeTelemetry(t)
	if _, err := capt.CaptureNow("periodic", profile.KindGoroutine, profile.KindHeap); err != nil {
		t.Fatal(err)
	}
	c := newTestCollector(t, Config{HealthInterval: -1})
	announce(c, "b1", addr)
	c.PullProfilesNow()

	refs := c.Profiles(ProfileFilter{Node: "b1"})
	if len(refs) != 2 {
		t.Fatalf("pulled %d profiles, want 2: %+v", len(refs), refs)
	}
	// A second sweep must not re-download already-pulled captures.
	c.PullProfilesNow()
	if got := len(c.Profiles(ProfileFilter{})); got != 2 {
		t.Fatalf("after second pull: %d profiles, want 2 (pull not idempotent)", got)
	}
	// A fresh node-side capture is picked up incrementally.
	if _, err := capt.CaptureNow("periodic", profile.KindGoroutine); err != nil {
		t.Fatal(err)
	}
	c.PullProfilesNow()
	gor := c.Profiles(ProfileFilter{Node: "b1", Kind: "goroutine"})
	if len(gor) != 2 {
		t.Fatalf("goroutine profiles after incremental pull = %d, want 2", len(gor))
	}

	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	var listed []ProfileRef
	resp, err := srv.Client().Get(srv.URL + "/profiles?node=b1&kind=goroutine")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatalf("list decode: %v", err)
	}
	resp.Body.Close()
	if len(listed) != 2 {
		t.Fatalf("/profiles listed %d, want 2", len(listed))
	}

	resp, err = srv.Client().Get(srv.URL + listed[0].URL)
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 64)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.HasPrefix(string(body[:n]), "goroutine profile:") {
		t.Fatalf("download: status %d body %q", resp.StatusCode, body[:n])
	}

	resp, err = srv.Client().Get(srv.URL + listed[0].URL + "?view=top")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("top view: status %d", resp.StatusCode)
	}

	// Diff newest (listed[0]) against oldest (listed[1]).
	resp, err = srv.Client().Get(srv.URL + "/profiles/diff?a=" + listed[1].ID + "&b=" + listed[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("diff: status %d", resp.StatusCode)
	}

	resp, err = srv.Client().Get(srv.URL + "/profiles/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("missing profile: status %d, want 404", resp.StatusCode)
	}
}

// TestFlightRecorderOnGoroutineLeak drives the whole chain: runtime gauges in
// the series store breach the leak rule, the engine fires, the flight
// recorder pulls a goroutine profile from the node and /alerts links it.
func TestFlightRecorderOnGoroutineLeak(t *testing.T) {
	_, addr := nodeTelemetry(t)
	c := newTestCollector(t, Config{HealthInterval: -1})
	announce(c, "b1", addr)

	fams := func(g float64) []obs.ExportFamily {
		return []obs.ExportFamily{{
			Name: "narada_process_goroutines", Kind: "gauge",
			Series: []obs.ExportSeries{{Gauge: g}},
		}}
	}
	now := time.Now()
	c.store.Observe(now.Add(-3*time.Minute), "b1", 1, fams(100))
	c.store.Observe(now, "b1", 2, fams(900))

	c.EvaluateHealthNow()
	if c.health.Firing() < 1 {
		t.Fatalf("goroutine_leak did not fire; alerts: %+v", c.health.Alerts())
	}

	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var av AlertsView
		resp, err := srv.Client().Get(srv.URL + "/alerts")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&av); err != nil {
			t.Fatalf("alerts decode: %v", err)
		}
		resp.Body.Close()
		for _, a := range av.Alerts {
			if a.Rule == health.RuleGoroutineLeak && len(a.Profiles) > 0 {
				p := a.Profiles[0]
				if p.Node != "b1" || p.Trigger != "flight:"+health.RuleGoroutineLeak {
					t.Fatalf("linked profile = %+v", p)
				}
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no profile linked to the goroutine_leak alert; alerts: %+v", av.Alerts)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestFlightRecorderDeadNodeFallback: when the alerted node is unreachable
// (deadman — the process is gone), the alert links the node's freshest
// retained captures instead of fresh ones.
func TestFlightRecorderDeadNodeFallback(t *testing.T) {
	c := newTestCollector(t, Config{HealthInterval: -1})
	ref, err := c.profiles.store.Add("b2", "goroutine", "periodic", time.Now(),
		[]byte("goroutine profile: total 1\n1 @ 0x1\n#\t0x1\tmain.f+0x1\tf.go:1\n"))
	if err != nil {
		t.Fatal(err)
	}
	c.profiles.Publish(health.Alert{Rule: health.RuleDeadman, Node: "b2", State: health.StateFiring})
	deadline := time.Now().Add(5 * time.Second)
	for {
		links := c.profiles.linksFor(health.RuleDeadman, "b2")
		if len(links) > 0 {
			if links[0].ID != ref.ID {
				t.Fatalf("linked %+v, want the retained capture %s", links[0], ref.ID)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("dead-node alert never linked retained captures")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestProfileStoreBoundsAndSpool(t *testing.T) {
	dir := t.TempDir()
	ps, err := newProfileStore(dir, 3, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var refs []ProfileRef
	for i := 0; i < 5; i++ {
		r, err := ps.Add("b1", "goroutine", "periodic", time.Now(), []byte("goroutine profile: total 1\n"))
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	if ps.Count() != 3 {
		t.Fatalf("retained %d, want 3", ps.Count())
	}
	if _, _, ok := ps.Get(refs[0].ID); ok {
		t.Error("oldest profile not evicted")
	}
	if _, err := os.Stat(filepath.Join(dir, refs[0].ID+".pprof")); !os.IsNotExist(err) {
		t.Error("evicted profile's spool file not removed")
	}
	_, data, ok := ps.Get(refs[4].ID)
	if !ok || !strings.HasPrefix(string(data), "goroutine profile:") {
		t.Fatalf("newest profile not readable from spool: ok=%v data=%q", ok, data)
	}

	// Byte budget: a capture bigger than the whole budget is rejected.
	small, err := newProfileStore("", 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := small.Add("b1", "heap", "periodic", time.Now(), make([]byte, 64)); err == nil {
		t.Error("oversized capture accepted")
	}
	// And the running total evicts older entries.
	for i := 0; i < 4; i++ {
		if _, err := small.Add("b1", "heap", "periodic", time.Now(), make([]byte, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if small.Bytes() > 16 {
		t.Fatalf("store holds %d bytes past its 16-byte budget", small.Bytes())
	}
}

func TestGaugeWindowStats(t *testing.T) {
	st := newSeriesStore(nil, 0)
	fams := func(g float64) []obs.ExportFamily {
		return []obs.ExportFamily{{
			Name: "narada_process_goroutines", Kind: "gauge",
			Series: []obs.ExportSeries{{Gauge: g}},
		}}
	}
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	st.Observe(now.Add(-40*time.Second), "b1", 1, fams(300))
	st.Observe(now.Add(-20*time.Second), "b1", 2, fams(100))
	st.Observe(now, "b1", 3, fams(700))

	minV, lastV, avgV, ok := st.GaugeWindowStats("narada_process_goroutines", "b1", time.Minute, now)
	if !ok {
		t.Fatal("no stats for a populated gauge")
	}
	if minV != 100 || lastV != 700 {
		t.Fatalf("min=%v last=%v, want 100/700", minV, lastV)
	}
	if avgV < 300 || avgV > 400 { // (300+100+700)/3
		t.Fatalf("avg=%v, want ~366", avgV)
	}
	if _, _, _, ok := st.GaugeWindowStats("narada_process_goroutines", "nope", time.Minute, now); ok {
		t.Fatal("stats for an unknown node")
	}
}
