package health

import (
	"strings"
	"testing"
	"time"
)

// TestGoroutineLeakRule asserts the leak rule needs BOTH the absolute growth
// and the relative ratio: a big node's churn (large delta, small ratio) and a
// tiny node's startup (large ratio, small delta) both stay quiet.
func TestGoroutineLeakRule(t *testing.T) {
	e := New(Config{})
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	in := func(minG, lastG float64) Input {
		return Input{Now: now, Nodes: []NodeInput{{
			Name: "b1", LastSeen: now,
			HasGoroutines: true, GoroutinesMin: minG, GoroutinesLast: lastG,
		}}}
	}

	// Large absolute growth, tiny ratio: a 10k-goroutine node wobbling.
	e.Evaluate(in(10000, 10600))
	if e.Firing() != 0 {
		t.Fatal("fired on large-baseline churn (ratio guard failed)")
	}
	// Large ratio, small absolute growth: a small process starting workers.
	e.Evaluate(in(10, 100))
	if e.Firing() != 0 {
		t.Fatal("fired on small absolute growth (growth guard failed)")
	}
	// Both guards breached: 200 → 900 is a leak.
	e.Evaluate(in(200, 900))
	if e.Firing() != 1 {
		t.Fatalf("firing = %d, want 1", e.Firing())
	}
	alerts := e.Alerts()
	if alerts[0].Rule != RuleGoroutineLeak {
		t.Fatalf("rule = %s, want %s", alerts[0].Rule, RuleGoroutineLeak)
	}
	if !strings.Contains(alerts[0].Message, "900") {
		t.Errorf("message misses the observed count: %s", alerts[0].Message)
	}
}

func TestGCBurnRule(t *testing.T) {
	e := New(Config{})
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	in := func(frac float64) Input {
		return Input{Now: now, Nodes: []NodeInput{{
			Name: "b1", LastSeen: now, HasGCCPU: true, GCCPUFraction: frac,
		}}}
	}
	e.Evaluate(in(0.10))
	if e.Firing() != 0 {
		t.Fatal("fired at 10% GC CPU, default max is 25%")
	}
	e.Evaluate(in(0.40))
	if e.Firing() != 1 {
		t.Fatalf("firing = %d, want 1", e.Firing())
	}
	if got := e.Alerts()[0].Rule; got != RuleGCBurn {
		t.Fatalf("rule = %s, want %s", got, RuleGCBurn)
	}
}

func TestRuntimeRuleDefaults(t *testing.T) {
	cfg := Config{}
	cfg.fillDefaults()
	if cfg.GoroutineLeakWindow != 5*time.Minute || cfg.GoroutineLeakGrowth != 500 ||
		cfg.GoroutineLeakRatio != 1.5 || cfg.GCBurnWindow != 2*time.Minute || cfg.GCBurnMax != 0.25 {
		t.Fatalf("runtime rule defaults = %+v", cfg)
	}
}
