// Package health is the fabric health engine's rule evaluator and alert
// state machine. The collector feeds it one Input per evaluation tick —
// per-node liveness, clock offsets and windowed rates derived from the
// series store — and the engine turns rule violations into deduplicated
// alerts with a pending → firing → resolved lifecycle, published to
// pluggable sinks and exposed as narada_alerts_firing gauges.
//
// The engine is deliberately decoupled from the collector: it sees only the
// Input snapshot, so every rule is unit-testable with hand-built inputs and
// a deterministic clock.
package health

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"narada/internal/obs"
)

// Rule names, used for dedup keys, sink payloads and alert gauge labels.
const (
	RuleDeadman          = "deadman"
	RuleClockDrift       = "clock_drift"
	RuleEgressSaturation = "egress_saturation"
	RuleEgressDrops      = "egress_drops"
	RuleProbeSLOBurn     = "probe_slo_burn"
	RuleProbeLatencyBurn = "probe_latency_burn"
	RuleLinkFlapping     = "link_flapping"
	// RuleDeliveryLatencyBurn fires when a broker's end-to-end delivery
	// latency (publish timestamp → egress flush) burns its SLO budget on
	// both burn windows — the message-path analogue of the probe rules.
	RuleDeliveryLatencyBurn = "delivery_latency_burn"
	// RuleDropRatio fires when the fraction of a broker's egress traffic
	// being dropped (any reason) exceeds the tolerated ratio, with a
	// minimum-volume guard so an idle broker's single drop cannot alert.
	RuleDropRatio = "drop_ratio"
	// RuleGoroutineLeak fires when a node's goroutine count has grown both
	// absolutely and relatively over the observation window — the flight
	// recorder's goroutine-profile diff then names the leaking site.
	RuleGoroutineLeak = "goroutine_leak"
	// RuleGCBurn fires when a node's garbage collector has been consuming
	// an excessive fraction of CPU over the window: allocation pressure
	// stealing cycles from message routing.
	RuleGCBurn = "gc_burn"
	// RuleReplicationLag fires when a replicated BDN member's WAL lag —
	// records a standby trails the primary, or the primary's
	// worst-trailing peer — exceeds the bound: a promotion now would lose
	// that many registry mutations.
	RuleReplicationLag = "replication_lag"
	// RuleStalePrimary fires when a standby has gone too long without a
	// primary beat: the primary is dead or partitioned and no successor
	// has claimed the lease, so registry mutations are stalling.
	RuleStalePrimary = "stale_primary"
)

// Alert states.
const (
	StatePending  = "pending"
	StateFiring   = "firing"
	StateResolved = "resolved"
)

// Alert is one rule violation for one node, deduplicated by (rule, node):
// re-evaluating an already-known violation updates the existing alert rather
// than raising a new one.
type Alert struct {
	Rule       string     `json:"rule"`
	Node       string     `json:"node"`
	State      string     `json:"state"`
	Message    string     `json:"message"`
	Value      float64    `json:"value"`
	Threshold  float64    `json:"threshold"`
	Since      time.Time  `json:"since"` // condition first observed (this cycle)
	FiredAt    *time.Time `json:"firedAt,omitempty"`
	ResolvedAt *time.Time `json:"resolvedAt,omitempty"`
}

// Sink receives alert lifecycle transitions (firing and resolved; pending
// transitions are internal). Publish must tolerate being called from the
// evaluation tick — keep it fast or buffer internally.
type Sink interface {
	Publish(Alert)
}

// Config parameterises the engine. Zero values fall back to the documented
// defaults.
type Config struct {
	// ExportInterval is the fabric's metric export period — the deadman
	// rule's unit of silence (default 1s).
	ExportInterval time.Duration
	// DeadmanIntervals is how many export intervals a node may stay silent
	// before it is declared vanished (default 3).
	DeadmanIntervals int
	// ClockEnvelope bounds a node's acceptable clock offset estimate; the
	// paper's NTP scheme keeps nodes within 1-20 ms, so an offset beyond
	// ±20 ms (the default) silently corrupts one-way latency estimates.
	ClockEnvelope time.Duration
	// EgressDepthMax is the egress queue depth (summed across links) above
	// which a broker counts as saturated (default 512 — the default
	// per-connection data queue bound).
	EgressDepthMax float64
	// EgressDropRateMax is the tolerated egress drop rate in events/second
	// over EgressWindow (default 1/s).
	EgressDropRateMax float64
	// EgressWindow is the averaging window for the drop rate (default 1m).
	EgressWindow time.Duration
	// FlapWindow is the averaging window for supervised link reconnects
	// (default 5m).
	FlapWindow time.Duration
	// FlapRateMax is the tolerated supervised-reconnect rate in
	// reconnects/second over FlapWindow (default 0.05/s, i.e. 15 relinks in
	// 5 minutes). A steady-state fabric reconnects rarely; a link cycling
	// up and down faster than this is flapping — a path or peer problem the
	// supervision layer is papering over.
	FlapRateMax float64

	// SLOTarget is the probe success-rate objective (default 0.99).
	SLOTarget float64
	// LatencySLO is the probe latency objective: probes slower than this
	// consume latency error budget (default 1s).
	LatencySLO time.Duration
	// FastWindow / SlowWindow are the multi-window burn-rate windows
	// (defaults 5m / 1h).
	FastWindow, SlowWindow time.Duration
	// FastBurnMax / SlowBurnMax are the burn-rate thresholds: the alert
	// fires when BOTH windows burn error budget faster than their bound
	// (defaults 14.4 / 6 — the SRE-workbook page thresholds).
	FastBurnMax, SlowBurnMax float64

	// DeliverySLOTarget is the delivery-latency objective ratio: the fraction
	// of delivered messages that must beat DeliveryLatencySLO (default 0.99).
	DeliverySLOTarget float64
	// DeliveryLatencySLO is the end-to-end delivery latency objective:
	// deliveries slower than this consume error budget (default 100ms — LAN
	// fabrics deliver in microseconds; a sustained breach means queueing).
	DeliveryLatencySLO time.Duration
	// DropRatioMax is the tolerated dropped/(delivered+dropped) ratio over
	// EgressWindow (default 0.01).
	DropRatioMax float64
	// DropMinVolume is the minimum delivered+dropped volume over EgressWindow
	// before the drop-ratio rule evaluates (default 100): ratios over tiny
	// denominators are noise, not outages.
	DropMinVolume float64

	// GoroutineLeakWindow is the trend window of the goroutine-leak rule
	// (default 5m — the finest series-store tier's full span).
	GoroutineLeakWindow time.Duration
	// GoroutineLeakGrowth is the absolute goroutine growth (last − min over
	// the window) above which the leak rule may fire (default 500).
	GoroutineLeakGrowth float64
	// GoroutineLeakRatio is the relative guard: last/min must also exceed
	// this (default 1.5) so a large node's normal churn cannot alert on an
	// absolute delta that is small relative to its baseline.
	GoroutineLeakRatio float64
	// GCBurnWindow is the averaging window for the GC CPU fraction
	// (default 2m).
	GCBurnWindow time.Duration
	// GCBurnMax is the tolerated average GC CPU fraction (default 0.25).
	GCBurnMax float64

	// ReplicationLagMax is the tolerated BDN replication lag in WAL
	// records (default 256 — a quarter of the default snapshot interval,
	// so the rule fires well before a promotion could lose a snapshot's
	// worth of registry mutations).
	ReplicationLagMax float64
	// StalePrimaryAfter is how long a standby may go without a primary
	// beat before the cluster counts as leaderless (default 10s — five
	// default 2s leases, past any orderly failover).
	StalePrimaryAfter time.Duration

	// PendingFor is the hysteresis before a violated rule fires (default 0:
	// fire on first evaluation — deadman detection latency matters more
	// than flap suppression at fabric scale; raise it for noisy fabrics).
	PendingFor time.Duration
	// ResolveAfter is how long a condition must stay clear before a firing
	// alert resolves (default 3 × ExportInterval).
	ResolveAfter time.Duration
	// RetainResolved keeps resolved alerts visible on /alerts (default 10m).
	RetainResolved time.Duration

	// Sinks receive firing and resolved transitions.
	Sinks []Sink
	// Registry, when set, carries narada_alerts_firing{rule,node} gauges.
	Registry *obs.Registry
	// Journal, when set, records alert lifecycle transitions
	// (alert_pending/alert_firing/alert_resolved) for the fabric timeline;
	// the collector wires its own journal here so alert events sit beside
	// the link and advertisement events that explain them.
	Journal *obs.Journal
	// Logger receives evaluation diagnostics; nil discards them.
	Logger *slog.Logger
}

func (c *Config) fillDefaults() {
	if c.ExportInterval <= 0 {
		c.ExportInterval = time.Second
	}
	if c.DeadmanIntervals <= 0 {
		c.DeadmanIntervals = 3
	}
	if c.ClockEnvelope <= 0 {
		c.ClockEnvelope = 20 * time.Millisecond
	}
	if c.EgressDepthMax <= 0 {
		c.EgressDepthMax = 512
	}
	if c.EgressDropRateMax <= 0 {
		c.EgressDropRateMax = 1
	}
	if c.EgressWindow <= 0 {
		c.EgressWindow = time.Minute
	}
	if c.FlapWindow <= 0 {
		c.FlapWindow = 5 * time.Minute
	}
	if c.FlapRateMax <= 0 {
		c.FlapRateMax = 0.05
	}
	if c.SLOTarget <= 0 || c.SLOTarget >= 1 {
		c.SLOTarget = 0.99
	}
	if c.LatencySLO <= 0 {
		c.LatencySLO = time.Second
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 5 * time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = time.Hour
	}
	if c.FastBurnMax <= 0 {
		c.FastBurnMax = 14.4
	}
	if c.SlowBurnMax <= 0 {
		c.SlowBurnMax = 6
	}
	if c.DeliverySLOTarget <= 0 || c.DeliverySLOTarget >= 1 {
		c.DeliverySLOTarget = 0.99
	}
	if c.DeliveryLatencySLO <= 0 {
		c.DeliveryLatencySLO = 100 * time.Millisecond
	}
	if c.DropRatioMax <= 0 {
		c.DropRatioMax = 0.01
	}
	if c.DropMinVolume <= 0 {
		c.DropMinVolume = 100
	}
	if c.GoroutineLeakWindow <= 0 {
		c.GoroutineLeakWindow = 5 * time.Minute
	}
	if c.GoroutineLeakGrowth <= 0 {
		c.GoroutineLeakGrowth = 500
	}
	if c.GoroutineLeakRatio <= 0 {
		c.GoroutineLeakRatio = 1.5
	}
	if c.GCBurnWindow <= 0 {
		c.GCBurnWindow = 2 * time.Minute
	}
	if c.GCBurnMax <= 0 {
		c.GCBurnMax = 0.25
	}
	if c.ReplicationLagMax <= 0 {
		c.ReplicationLagMax = 256
	}
	if c.StalePrimaryAfter <= 0 {
		c.StalePrimaryAfter = 10 * time.Second
	}
	if c.ResolveAfter <= 0 {
		c.ResolveAfter = 3 * c.ExportInterval
	}
	if c.RetainResolved <= 0 {
		c.RetainResolved = 10 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = obs.Nop()
	}
}

// NodeInput is one node's health snapshot for an evaluation tick, assembled
// by the collector from ingest state and the series store.
type NodeInput struct {
	Name        string
	LastSeen    time.Time     // collector wall clock of the last export packet
	ClockOffset time.Duration // node's own NTP offset estimate

	EgressDepth    float64 // current egress queue depth (summed over links)
	HasEgress      bool    // node exports egress gauges (i.e. is a broker)
	EgressDropRate float64 // drops/second over Config.EgressWindow

	LinkFlapRate float64 // supervised reconnects/second over Config.FlapWindow
	HasFlaps     bool    // node exports supervision reconnect counters

	// Delivery SLIs, derived from narada_delivery_latency_seconds: total
	// deliveries and deliveries slower than Config.DeliveryLatencySLO, over
	// the fast and slow burn windows.
	HasDelivery                         bool
	DeliveryFastTotal, DeliveryFastSlow float64
	DeliverySlowTotal, DeliverySlowSlow float64

	// Drop ratio: dropped/(delivered+dropped) over Config.EgressWindow, and
	// the denominator volume for the minimum-volume guard.
	HasDropRatio bool
	DropRatio    float64
	DropVolume   float64

	// Runtime telemetry, derived from the RuntimeSampler families: the
	// goroutine gauge's minimum and latest values over
	// Config.GoroutineLeakWindow, and the average GC CPU fraction over
	// Config.GCBurnWindow.
	HasGoroutines                 bool
	GoroutinesMin, GoroutinesLast float64
	HasGCCPU                      bool
	GCCPUFraction                 float64

	// Replication telemetry, derived from the narada_replica gauges a
	// replicated BDN member exports: its role, WAL lag in records, and how
	// long a standby has gone without a primary beat.
	HasReplication bool
	ReplicaPrimary bool
	ReplicationLag float64
	LeaderAge      float64 // seconds; 0 on the primary itself
}

// ProbeInput is one probe source's windowed SLI snapshot: success and
// latency error counts over the fast and slow burn windows.
type ProbeInput struct {
	Node                string
	FastOK, FastErr     float64
	SlowOK, SlowErr     float64
	FastSlow, FastTotal float64 // latency SLI: slow-vs-total in fast window
	SlowSlow, SlowTotal float64
}

// Input is one evaluation tick's complete view of the fabric.
type Input struct {
	Now    time.Time
	Nodes  []NodeInput
	Probes []ProbeInput
}

// alertState is the retained per-(rule,node) lifecycle state.
type alertState struct {
	Alert
	clearSince time.Time // when the condition was last seen clear (firing only)
	gauge      *obs.Gauge
}

// Engine evaluates the rule set against successive Inputs and runs the alert
// state machine. Safe for concurrent use.
type Engine struct {
	cfg Config

	mu     sync.Mutex
	alerts map[string]*alertState

	evals       *obs.Counter
	transitions *obs.Counter
}

// New assembles an engine.
func New(cfg Config) *Engine {
	cfg.fillDefaults()
	e := &Engine{cfg: cfg, alerts: make(map[string]*alertState)}
	if cfg.Registry != nil {
		who := obs.L("node", "obscollect")
		e.evals = cfg.Registry.Counter("narada_health_evaluations_total",
			"Health rule evaluation ticks.", who)
		e.transitions = cfg.Registry.Counter("narada_health_transitions_total",
			"Alert state transitions (to firing or resolved).", who)
		cfg.Registry.GaugeFunc("narada_alerts_pending",
			"Alerts currently pending.", func() float64 { return float64(e.count(StatePending)) }, who)
	}
	return e
}

// Config returns the effective (default-filled) configuration — the
// collector reads the windows back when assembling Input.
func (e *Engine) Config() Config { return e.cfg }

// Evaluate runs every rule against one input snapshot and advances the alert
// state machine.
func (e *Engine) Evaluate(in Input) {
	if e.evals != nil {
		e.evals.Inc()
	}
	now := in.Now
	deadmanAfter := time.Duration(e.cfg.DeadmanIntervals) * e.cfg.ExportInterval
	for _, n := range in.Nodes {
		silent := now.Sub(n.LastSeen)
		e.apply(RuleDeadman, n.Name, silent > deadmanAfter,
			silent.Seconds(), deadmanAfter.Seconds(),
			fmt.Sprintf("node silent for %s (deadman after %s = %d × %s export interval)",
				silent.Round(time.Millisecond), deadmanAfter, e.cfg.DeadmanIntervals, e.cfg.ExportInterval), now)

		off := n.ClockOffset
		if off < 0 {
			off = -off
		}
		// A vanished node's last reported offset is stale, not drifting.
		driftActive := silent <= deadmanAfter && off > e.cfg.ClockEnvelope
		e.apply(RuleClockDrift, n.Name, driftActive,
			n.ClockOffset.Seconds(), e.cfg.ClockEnvelope.Seconds(),
			fmt.Sprintf("clock offset %s outside the ±%s NTP envelope: one-way latency estimates are suspect",
				n.ClockOffset.Round(time.Millisecond), e.cfg.ClockEnvelope), now)

		if n.HasEgress {
			e.apply(RuleEgressSaturation, n.Name, n.EgressDepth > e.cfg.EgressDepthMax,
				n.EgressDepth, e.cfg.EgressDepthMax,
				fmt.Sprintf("egress queue depth %.0f above %.0f: broker saturated, data frames at risk",
					n.EgressDepth, e.cfg.EgressDepthMax), now)
			e.apply(RuleEgressDrops, n.Name, n.EgressDropRate > e.cfg.EgressDropRateMax,
				n.EgressDropRate, e.cfg.EgressDropRateMax,
				fmt.Sprintf("egress dropping %.2f events/s over %s (max %.2f/s)",
					n.EgressDropRate, e.cfg.EgressWindow, e.cfg.EgressDropRateMax), now)
		}
		if n.HasFlaps {
			e.apply(RuleLinkFlapping, n.Name, n.LinkFlapRate > e.cfg.FlapRateMax,
				n.LinkFlapRate, e.cfg.FlapRateMax,
				fmt.Sprintf("supervised links reconnecting %.3f/s over %s (max %.3f/s): link or peer flapping",
					n.LinkFlapRate, e.cfg.FlapWindow, e.cfg.FlapRateMax), now)
		}
		if n.HasDelivery {
			deliveryBudget := 1 - e.cfg.DeliverySLOTarget
			fastBurn := burnRate(n.DeliveryFastSlow, n.DeliveryFastTotal, deliveryBudget)
			slowBurn := burnRate(n.DeliverySlowSlow, n.DeliverySlowTotal, deliveryBudget)
			e.apply(RuleDeliveryLatencyBurn, n.Name,
				fastBurn >= e.cfg.FastBurnMax && slowBurn >= e.cfg.SlowBurnMax,
				fastBurn, e.cfg.FastBurnMax,
				fmt.Sprintf("delivery latency SLO (p<%s) burning %.1fx budget over %s and %.1fx over %s (SLO %.2f%%)",
					e.cfg.DeliveryLatencySLO, fastBurn, e.cfg.FastWindow, slowBurn, e.cfg.SlowWindow,
					e.cfg.DeliverySLOTarget*100), now)
		}
		if n.HasDropRatio {
			active := n.DropVolume >= e.cfg.DropMinVolume && n.DropRatio > e.cfg.DropRatioMax
			e.apply(RuleDropRatio, n.Name, active,
				n.DropRatio, e.cfg.DropRatioMax,
				fmt.Sprintf("dropping %.1f%% of egress traffic over %s (max %.1f%%, volume %.0f)",
					n.DropRatio*100, e.cfg.EgressWindow, e.cfg.DropRatioMax*100, n.DropVolume), now)
		}
		if n.HasGoroutines {
			growth := n.GoroutinesLast - n.GoroutinesMin
			ratio := 0.0
			if n.GoroutinesMin > 0 {
				ratio = n.GoroutinesLast / n.GoroutinesMin
			}
			active := growth > e.cfg.GoroutineLeakGrowth && ratio > e.cfg.GoroutineLeakRatio
			e.apply(RuleGoroutineLeak, n.Name, active,
				growth, e.cfg.GoroutineLeakGrowth,
				fmt.Sprintf("goroutines grew by %.0f (%.0f → %.0f, %.2fx) over %s: likely leak — diff the flight-recorded goroutine profiles",
					growth, n.GoroutinesMin, n.GoroutinesLast, ratio, e.cfg.GoroutineLeakWindow), now)
		}
		if n.HasReplication {
			e.apply(RuleReplicationLag, n.Name, n.ReplicationLag > e.cfg.ReplicationLagMax,
				n.ReplicationLag, e.cfg.ReplicationLagMax,
				fmt.Sprintf("BDN replication lagging %.0f WAL records (max %.0f): a failover now loses registry mutations",
					n.ReplicationLag, e.cfg.ReplicationLagMax), now)
			// A vanished member's last reported leader age is stale, like
			// its clock offset; and the primary hears no beats by design.
			staleActive := silent <= deadmanAfter && !n.ReplicaPrimary &&
				n.LeaderAge > e.cfg.StalePrimaryAfter.Seconds()
			e.apply(RuleStalePrimary, n.Name, staleActive,
				n.LeaderAge, e.cfg.StalePrimaryAfter.Seconds(),
				fmt.Sprintf("standby heard no primary beat for %.1fs (max %s): BDN cluster leaderless or partitioned",
					n.LeaderAge, e.cfg.StalePrimaryAfter), now)
		}
		if n.HasGCCPU {
			e.apply(RuleGCBurn, n.Name, n.GCCPUFraction > e.cfg.GCBurnMax,
				n.GCCPUFraction, e.cfg.GCBurnMax,
				fmt.Sprintf("GC consumed %.0f%% of CPU over %s (max %.0f%%): allocation pressure is stealing cycles from routing — check the flight-recorded profiles",
					n.GCCPUFraction*100, e.cfg.GCBurnWindow, e.cfg.GCBurnMax*100), now)
		}
	}

	budget := 1 - e.cfg.SLOTarget
	for _, p := range in.Probes {
		fastBurn := burnRate(p.FastErr, p.FastOK+p.FastErr, budget)
		slowBurn := burnRate(p.SlowErr, p.SlowOK+p.SlowErr, budget)
		e.apply(RuleProbeSLOBurn, p.Node,
			fastBurn >= e.cfg.FastBurnMax && slowBurn >= e.cfg.SlowBurnMax,
			fastBurn, e.cfg.FastBurnMax,
			fmt.Sprintf("probe success SLO burning %.1fx budget over %s and %.1fx over %s (SLO %.2f%%)",
				fastBurn, e.cfg.FastWindow, slowBurn, e.cfg.SlowWindow, e.cfg.SLOTarget*100), now)

		fastLatBurn := burnRate(p.FastSlow, p.FastTotal, budget)
		slowLatBurn := burnRate(p.SlowSlow, p.SlowTotal, budget)
		e.apply(RuleProbeLatencyBurn, p.Node,
			fastLatBurn >= e.cfg.FastBurnMax && slowLatBurn >= e.cfg.SlowBurnMax,
			fastLatBurn, e.cfg.FastBurnMax,
			fmt.Sprintf("probe latency SLO (p<%s) burning %.1fx budget over %s and %.1fx over %s",
				e.cfg.LatencySLO, fastLatBurn, e.cfg.FastWindow, slowLatBurn, e.cfg.SlowWindow), now)
	}

	e.gc(now)
}

// burnRate is errors/total divided by the error budget; zero totals burn
// nothing (no data is not an outage).
func burnRate(errs, total, budget float64) float64 {
	if total <= 0 || budget <= 0 {
		return 0
	}
	return (errs / total) / budget
}

// apply advances one (rule, node) through the state machine given whether
// its condition is currently violated.
func (e *Engine) apply(rule, node string, active bool, value, threshold float64, msg string, now time.Time) {
	key := rule + "\xff" + node
	e.mu.Lock()
	st := e.alerts[key]

	if st == nil {
		if !active {
			e.mu.Unlock()
			return
		}
		st = &alertState{Alert: Alert{Rule: rule, Node: node, State: StatePending, Since: now}}
		e.cfg.Journal.Emit(obs.EventAlertPending, node, rule)
		if e.cfg.Registry != nil {
			st.gauge = e.cfg.Registry.Gauge("narada_alerts_firing",
				"Health alerts currently firing, by rule and node.",
				obs.L("rule", rule), obs.L("node", node))
		}
		e.alerts[key] = st
	}
	st.Value, st.Threshold, st.Message = value, threshold, msg

	var fired, resolved *Alert
	switch st.State {
	case StatePending:
		switch {
		case !active:
			delete(e.alerts, key) // condition cleared before firing: drop silently
		case now.Sub(st.Since) >= e.cfg.PendingFor:
			st.State = StateFiring
			at := now
			st.FiredAt, st.ResolvedAt = &at, nil
			if st.gauge != nil {
				st.gauge.Set(1)
			}
			a := st.Alert
			fired = &a
		}
	case StateFiring:
		if active {
			st.clearSince = time.Time{}
		} else {
			if st.clearSince.IsZero() {
				st.clearSince = now
			}
			if now.Sub(st.clearSince) >= e.cfg.ResolveAfter {
				st.State = StateResolved
				at := now
				st.ResolvedAt = &at
				if st.gauge != nil {
					st.gauge.Set(0)
				}
				a := st.Alert
				resolved = &a
			}
		}
	case StateResolved:
		if active {
			// A fresh violation re-arms the same alert entry (dedup by key).
			st.State, st.Since = StatePending, now
			st.FiredAt, st.ResolvedAt = nil, nil
			st.clearSince = time.Time{}
			if now.Sub(st.Since) >= e.cfg.PendingFor {
				st.State = StateFiring
				at := now
				st.FiredAt = &at
				if st.gauge != nil {
					st.gauge.Set(1)
				}
				a := st.Alert
				fired = &a
			}
		}
	}
	e.mu.Unlock()

	if fired != nil {
		e.publish(*fired)
	}
	if resolved != nil {
		e.publish(*resolved)
	}
}

func (e *Engine) publish(a Alert) {
	if e.transitions != nil {
		e.transitions.Inc()
	}
	e.cfg.Logger.Info("alert transition", "rule", a.Rule, "node", a.Node,
		"state", a.State, "value", a.Value, "threshold", a.Threshold, "msg", a.Message)
	switch a.State {
	case StateFiring:
		e.cfg.Journal.Emit(obs.EventAlertFiring, a.Node, a.Rule)
	case StateResolved:
		e.cfg.Journal.Emit(obs.EventAlertResolved, a.Node, a.Rule)
	}
	for _, s := range e.cfg.Sinks {
		s.Publish(a)
	}
}

// gc drops resolved alerts past their retention.
func (e *Engine) gc(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for key, st := range e.alerts {
		if st.State == StateResolved && st.ResolvedAt != nil &&
			now.Sub(*st.ResolvedAt) > e.cfg.RetainResolved {
			delete(e.alerts, key)
		}
	}
}

// stateRank orders /alerts output: firing first, then pending, then resolved.
func stateRank(s string) int {
	switch s {
	case StateFiring:
		return 0
	case StatePending:
		return 1
	default:
		return 2
	}
}

// Alerts returns every retained alert, firing first, then by rule and node.
func (e *Engine) Alerts() []Alert {
	e.mu.Lock()
	out := make([]Alert, 0, len(e.alerts))
	for _, st := range e.alerts {
		out = append(out, st.Alert)
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if r := stateRank(out[i].State) - stateRank(out[j].State); r != 0 {
			return r < 0
		}
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Node < out[j].Node
	})
	return out
}

func (e *Engine) count(state string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, st := range e.alerts {
		if st.State == state {
			n++
		}
	}
	return n
}

// Firing returns the number of alerts currently firing.
func (e *Engine) Firing() int { return e.count(StateFiring) }

// Flush publishes every currently-firing alert to the sinks — called on
// collector shutdown so in-flight incidents are not lost with the process.
func (e *Engine) Flush() {
	e.mu.Lock()
	var firing []Alert
	for _, st := range e.alerts {
		if st.State == StateFiring {
			firing = append(firing, st.Alert)
		}
	}
	e.mu.Unlock()
	sort.Slice(firing, func(i, j int) bool {
		if firing[i].Rule != firing[j].Rule {
			return firing[i].Rule < firing[j].Rule
		}
		return firing[i].Node < firing[j].Node
	})
	for _, a := range firing {
		for _, s := range e.cfg.Sinks {
			s.Publish(a)
		}
	}
}
