package health

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"math/rand"
	"net/http"
	"sync/atomic"
	"time"

	"narada/internal/obs"
)

// LogSink publishes alert transitions as structured log records — the
// always-on sink every deployment gets.
type LogSink struct {
	log *slog.Logger
}

// NewLogSink wraps a logger as a sink.
func NewLogSink(log *slog.Logger) *LogSink { return &LogSink{log: log} }

// Publish logs one transition at warn (firing) or info (resolved).
func (s *LogSink) Publish(a Alert) {
	rec := s.log.Info
	if a.State == StateFiring {
		rec = s.log.Warn
	}
	rec("alert", "rule", a.Rule, "node", a.Node, "state", a.State,
		"value", a.Value, "threshold", a.Threshold, "message", a.Message)
}

// WebhookSink POSTs each alert transition as a JSON document to a generic
// webhook endpoint (chat bridges, incident routers). Delivery is best-effort
// with a bounded per-request timeout and exactly one jittered retry on
// transient failure (transport error or 5xx); a 4xx means the receiver
// rejected the payload and is not retried. Ultimately-failed deliveries are
// counted and logged — the /alerts endpoint remains the source of truth.
type WebhookSink struct {
	url    string
	client *http.Client
	log    *slog.Logger
	sleep  func(time.Duration) // injectable for tests

	delivered atomic.Uint64
	failed    atomic.Uint64
	retried   atomic.Uint64
}

// NewWebhookSink builds a webhook sink; timeout <= 0 uses 3s.
func NewWebhookSink(url string, timeout time.Duration, log *slog.Logger) *WebhookSink {
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	if log == nil {
		log = obs.Nop()
	}
	return &WebhookSink{url: url, client: &http.Client{Timeout: timeout}, log: log, sleep: time.Sleep}
}

// Publish POSTs one alert, retrying once after a jittered pause when the
// failure looks transient.
func (s *WebhookSink) Publish(a Alert) {
	body, err := json.Marshal(a)
	if err != nil {
		s.failed.Add(1)
		return
	}
	for attempt := 0; ; attempt++ {
		retryable := s.post(body)
		if retryable && attempt == 0 {
			s.retried.Add(1)
			// 50–150 ms: enough to ride out a connection blip without
			// stalling the evaluation tick for long.
			s.sleep(50*time.Millisecond + time.Duration(rand.Int63n(int64(100*time.Millisecond))))
			continue
		}
		return
	}
}

// post performs one delivery attempt and reports whether a retry could help.
func (s *WebhookSink) post(body []byte) bool {
	resp, err := s.client.Post(s.url, "application/json", bytes.NewReader(body))
	if err != nil {
		s.failed.Add(1)
		s.log.Warn("webhook delivery failed", "url", s.url, "err", err)
		return true
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		s.failed.Add(1)
		s.log.Warn("webhook rejected alert", "url", s.url, "status", resp.StatusCode)
		return resp.StatusCode >= 500
	}
	s.delivered.Add(1)
	return false
}

// Delivered returns the number of successfully delivered transitions.
func (s *WebhookSink) Delivered() uint64 { return s.delivered.Load() }

// Failed returns the number of failed delivery attempts.
func (s *WebhookSink) Failed() uint64 { return s.failed.Load() }

// Retried returns the number of deliveries that needed the retry.
func (s *WebhookSink) Retried() uint64 { return s.retried.Load() }
