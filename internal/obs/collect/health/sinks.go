package health

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"narada/internal/obs"
)

// LogSink publishes alert transitions as structured log records — the
// always-on sink every deployment gets.
type LogSink struct {
	log *slog.Logger
}

// NewLogSink wraps a logger as a sink.
func NewLogSink(log *slog.Logger) *LogSink { return &LogSink{log: log} }

// Publish logs one transition at warn (firing) or info (resolved).
func (s *LogSink) Publish(a Alert) {
	rec := s.log.Info
	if a.State == StateFiring {
		rec = s.log.Warn
	}
	rec("alert", "rule", a.Rule, "node", a.Node, "state", a.State,
		"value", a.Value, "threshold", a.Threshold, "message", a.Message)
}

// WebhookSink POSTs each alert transition as a JSON document to a generic
// webhook endpoint (chat bridges, incident routers). Delivery is best-effort
// with a bounded timeout; failures are counted and logged, never retried —
// the /alerts endpoint remains the source of truth.
type WebhookSink struct {
	url    string
	client *http.Client
	log    *slog.Logger

	delivered atomic.Uint64
	failed    atomic.Uint64
}

// NewWebhookSink builds a webhook sink; timeout <= 0 uses 3s.
func NewWebhookSink(url string, timeout time.Duration, log *slog.Logger) *WebhookSink {
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	if log == nil {
		log = obs.Nop()
	}
	return &WebhookSink{url: url, client: &http.Client{Timeout: timeout}, log: log}
}

// Publish POSTs one alert.
func (s *WebhookSink) Publish(a Alert) {
	body, err := json.Marshal(a)
	if err != nil {
		s.failed.Add(1)
		return
	}
	resp, err := s.client.Post(s.url, "application/json", bytes.NewReader(body))
	if err != nil {
		s.failed.Add(1)
		s.log.Warn("webhook delivery failed", "url", s.url, "err", err)
		return
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		s.failed.Add(1)
		s.log.Warn("webhook rejected alert", "url", s.url, "status", resp.StatusCode)
		return
	}
	s.delivered.Add(1)
}

// Delivered returns the number of successfully delivered transitions.
func (s *WebhookSink) Delivered() uint64 { return s.delivered.Load() }

// Failed returns the number of failed deliveries.
func (s *WebhookSink) Failed() uint64 { return s.failed.Load() }
