package health

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"narada/internal/obs"
)

// captureSink records every published transition.
type captureSink struct {
	mu  sync.Mutex
	got []Alert
}

func (s *captureSink) Publish(a Alert) {
	s.mu.Lock()
	s.got = append(s.got, a)
	s.mu.Unlock()
}

func (s *captureSink) alerts() []Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Alert(nil), s.got...)
}

func liveNode(name string, now time.Time) NodeInput {
	return NodeInput{Name: name, LastSeen: now}
}

// TestDeadmanLifecycle walks one node through silent → firing → back →
// resolved, checking the hysteresis on both edges.
func TestDeadmanLifecycle(t *testing.T) {
	sink := &captureSink{}
	e := New(Config{
		ExportInterval:   time.Second,
		DeadmanIntervals: 3,
		ResolveAfter:     2 * time.Second,
		Sinks:            []Sink{sink},
	})
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	lastSeen := base

	// Silent for 2 intervals: not yet dead.
	e.Evaluate(Input{Now: base.Add(2 * time.Second), Nodes: []NodeInput{{Name: "b1", LastSeen: lastSeen}}})
	if e.Firing() != 0 {
		t.Fatalf("firing after 2s silence, deadman is 3 intervals")
	}

	// Past the deadman horizon: fires (PendingFor defaults to 0).
	e.Evaluate(Input{Now: base.Add(4 * time.Second), Nodes: []NodeInput{{Name: "b1", LastSeen: lastSeen}}})
	if e.Firing() != 1 {
		t.Fatalf("firing = %d, want 1", e.Firing())
	}
	got := sink.alerts()
	if len(got) != 1 || got[0].Rule != RuleDeadman || got[0].State != StateFiring || got[0].Node != "b1" {
		t.Fatalf("sink saw %+v", got)
	}

	// Node returns; condition clear but within ResolveAfter — still firing.
	lastSeen = base.Add(5 * time.Second)
	e.Evaluate(Input{Now: base.Add(5 * time.Second), Nodes: []NodeInput{{Name: "b1", LastSeen: lastSeen}}})
	if e.Firing() != 1 {
		t.Fatal("alert resolved without hysteresis")
	}

	// Clear for ResolveAfter: resolves.
	e.Evaluate(Input{Now: base.Add(8 * time.Second), Nodes: []NodeInput{{Name: "b1", LastSeen: base.Add(7 * time.Second)}}})
	if e.Firing() != 0 {
		t.Fatalf("firing = %d after recovery, want 0", e.Firing())
	}
	got = sink.alerts()
	if len(got) != 2 || got[1].State != StateResolved {
		t.Fatalf("sink saw %+v, want firing then resolved", got)
	}
	alerts := e.Alerts()
	if len(alerts) != 1 || alerts[0].State != StateResolved || alerts[0].ResolvedAt == nil {
		t.Fatalf("retained alerts = %+v", alerts)
	}
}

// TestPendingHysteresis checks a violation must persist for PendingFor before
// firing, and that a blip shorter than that never reaches the sinks.
func TestPendingHysteresis(t *testing.T) {
	sink := &captureSink{}
	e := New(Config{
		ExportInterval:   time.Second,
		DeadmanIntervals: 3,
		PendingFor:       5 * time.Second,
		Sinks:            []Sink{sink},
	})
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

	// Violation appears: pending, not firing.
	e.Evaluate(Input{Now: base.Add(4 * time.Second), Nodes: []NodeInput{{Name: "b1", LastSeen: base}}})
	if e.Firing() != 0 {
		t.Fatal("fired without waiting out PendingFor")
	}
	if alerts := e.Alerts(); len(alerts) != 1 || alerts[0].State != StatePending {
		t.Fatalf("alerts = %+v, want one pending", alerts)
	}

	// Blip clears before PendingFor: dropped silently.
	e.Evaluate(Input{Now: base.Add(5 * time.Second), Nodes: []NodeInput{liveNode("b1", base.Add(5*time.Second))}})
	if len(e.Alerts()) != 0 || len(sink.alerts()) != 0 {
		t.Fatalf("blip left state: alerts=%+v sink=%+v", e.Alerts(), sink.alerts())
	}

	// Sustained violation fires after PendingFor.
	e.Evaluate(Input{Now: base.Add(10 * time.Second), Nodes: []NodeInput{{Name: "b1", LastSeen: base.Add(5 * time.Second)}}})
	e.Evaluate(Input{Now: base.Add(15 * time.Second), Nodes: []NodeInput{{Name: "b1", LastSeen: base.Add(5 * time.Second)}}})
	if e.Firing() != 1 {
		t.Fatalf("firing = %d after sustained violation, want 1", e.Firing())
	}
}

func TestClockDriftRule(t *testing.T) {
	e := New(Config{ExportInterval: time.Second})
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

	in := func(off time.Duration, lastSeen time.Time) Input {
		return Input{Now: base, Nodes: []NodeInput{{Name: "b1", LastSeen: lastSeen, ClockOffset: off}}}
	}
	e.Evaluate(in(15*time.Millisecond, base))
	if e.Firing() != 0 {
		t.Fatal("15ms offset inside the ±20ms envelope fired")
	}
	e.Evaluate(in(-25*time.Millisecond, base))
	if e.Firing() != 1 {
		t.Fatalf("-25ms offset did not fire; alerts=%+v", e.Alerts())
	}
	found := false
	for _, a := range e.Alerts() {
		if a.Rule == RuleClockDrift && a.State == StateFiring {
			found = true
		}
	}
	if !found {
		t.Fatalf("no firing clock_drift alert: %+v", e.Alerts())
	}

	// A deadman-silent node's stale offset must not raise clock drift.
	e2 := New(Config{ExportInterval: time.Second})
	e2.Evaluate(Input{Now: base.Add(10 * time.Second),
		Nodes: []NodeInput{{Name: "b2", LastSeen: base, ClockOffset: 30 * time.Millisecond}}})
	for _, a := range e2.Alerts() {
		if a.Rule == RuleClockDrift {
			t.Fatalf("silent node raised clock drift: %+v", a)
		}
	}
}

func TestEgressRules(t *testing.T) {
	e := New(Config{EgressDepthMax: 100, EgressDropRateMax: 2})
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

	// Non-broker (HasEgress false) with huge numbers: no egress alerts.
	e.Evaluate(Input{Now: base, Nodes: []NodeInput{{
		Name: "r1", LastSeen: base, EgressDepth: 9999, EgressDropRate: 9999}}})
	if len(e.Alerts()) != 0 {
		t.Fatalf("non-broker raised egress alerts: %+v", e.Alerts())
	}

	e.Evaluate(Input{Now: base, Nodes: []NodeInput{{
		Name: "b1", LastSeen: base, HasEgress: true, EgressDepth: 150, EgressDropRate: 5}}})
	rules := map[string]bool{}
	for _, a := range e.Alerts() {
		if a.State == StateFiring {
			rules[a.Rule] = true
		}
	}
	if !rules[RuleEgressSaturation] || !rules[RuleEgressDrops] {
		t.Fatalf("firing rules = %v, want saturation and drops", rules)
	}
}

// TestLinkFlappingRule checks the supervision-rate rule: a node without
// reconnect counters never evaluates, occasional relinks stay quiet, and a
// link cycling faster than FlapRateMax fires and resolves once it calms.
func TestLinkFlappingRule(t *testing.T) {
	e := New(Config{FlapWindow: 5 * time.Minute, FlapRateMax: 0.05, ResolveAfter: time.Second})
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

	// Non-supervised node (HasFlaps false) with a huge rate: no alert.
	e.Evaluate(Input{Now: base, Nodes: []NodeInput{{
		Name: "r1", LastSeen: base, LinkFlapRate: 10}}})
	if len(e.Alerts()) != 0 {
		t.Fatalf("non-supervised node raised flap alerts: %+v", e.Alerts())
	}

	// A couple of relinks over 5 minutes is healthy self-healing.
	e.Evaluate(Input{Now: base, Nodes: []NodeInput{{
		Name: "b1", LastSeen: base, HasFlaps: true, LinkFlapRate: 2.0 / 300}}})
	if e.Firing() != 0 {
		t.Fatalf("healthy relink rate fired: %+v", e.Alerts())
	}

	// 60 relinks over 5 minutes (0.2/s) is a flapping link.
	e.Evaluate(Input{Now: base, Nodes: []NodeInput{{
		Name: "b1", LastSeen: base, HasFlaps: true, LinkFlapRate: 0.2}}})
	if e.Firing() != 1 {
		t.Fatalf("firing = %d for 0.2/s flap rate, want 1", e.Firing())
	}
	found := false
	for _, a := range e.Alerts() {
		if a.Rule == RuleLinkFlapping && a.State == StateFiring {
			found = true
		}
	}
	if !found {
		t.Fatalf("no firing link_flapping alert: %+v", e.Alerts())
	}

	// Rate back under the bound for ResolveAfter: resolves.
	e.Evaluate(Input{Now: base.Add(time.Second), Nodes: []NodeInput{{
		Name: "b1", LastSeen: base.Add(time.Second), HasFlaps: true, LinkFlapRate: 0}}})
	e.Evaluate(Input{Now: base.Add(3 * time.Second), Nodes: []NodeInput{{
		Name: "b1", LastSeen: base.Add(3 * time.Second), HasFlaps: true, LinkFlapRate: 0}}})
	if e.Firing() != 0 {
		t.Fatalf("flap alert did not resolve: %+v", e.Alerts())
	}
}

// TestBurnRateBothWindows checks the multi-window guard: a fast-window error
// spike alone (slow window healthy) must not fire, and a genuine sustained
// burn (both windows hot) must.
func TestBurnRateBothWindows(t *testing.T) {
	e := New(Config{SLOTarget: 0.99}) // budget 0.01; thresholds 14.4 / 6
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

	// Fast window 50% errors (burn 50x) but slow window clean (burn ~1x).
	e.Evaluate(Input{Now: base, Probes: []ProbeInput{{
		Node: "p", FastOK: 5, FastErr: 5, SlowOK: 990, SlowErr: 10}}})
	if e.Firing() != 0 {
		t.Fatalf("short spike fired: %+v", e.Alerts())
	}

	// Both windows hot: fast 50x, slow 20x.
	e.Evaluate(Input{Now: base.Add(time.Second), Probes: []ProbeInput{{
		Node: "p", FastOK: 5, FastErr: 5, SlowOK: 800, SlowErr: 200}}})
	if e.Firing() != 1 {
		t.Fatalf("sustained burn did not fire: %+v", e.Alerts())
	}

	// No data burns nothing.
	e2 := New(Config{})
	e2.Evaluate(Input{Now: base, Probes: []ProbeInput{{Node: "idle"}}})
	if len(e2.Alerts()) != 0 {
		t.Fatalf("zero-total probe raised alerts: %+v", e2.Alerts())
	}
}

func TestLatencyBurnRule(t *testing.T) {
	e := New(Config{SLOTarget: 0.99})
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	e.Evaluate(Input{Now: base, Probes: []ProbeInput{{
		Node:   "p",
		FastOK: 100, SlowOK: 1000, // success SLI healthy
		FastSlow: 30, FastTotal: 100, // 30% slow => burn 30x
		SlowSlow: 100, SlowTotal: 1000, // 10% slow => burn 10x
	}}})
	firing := map[string]bool{}
	for _, a := range e.Alerts() {
		if a.State == StateFiring {
			firing[a.Rule] = true
		}
	}
	if !firing[RuleProbeLatencyBurn] || firing[RuleProbeSLOBurn] {
		t.Fatalf("firing = %v, want latency burn only", firing)
	}
}

// TestRearmAfterResolve checks dedup: a resolved alert re-fires in place on a
// new violation instead of accumulating duplicate entries.
func TestRearmAfterResolve(t *testing.T) {
	sink := &captureSink{}
	e := New(Config{ExportInterval: time.Second, ResolveAfter: time.Second, Sinks: []Sink{sink}})
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

	dead := func(at time.Time) Input {
		return Input{Now: at, Nodes: []NodeInput{{Name: "b1", LastSeen: base}}}
	}
	alive := func(at time.Time) Input {
		return Input{Now: at, Nodes: []NodeInput{liveNode("b1", at)}}
	}
	e.Evaluate(dead(base.Add(10 * time.Second)))  // fire
	e.Evaluate(alive(base.Add(11 * time.Second))) // clear...
	e.Evaluate(alive(base.Add(13 * time.Second))) // ...resolved
	e.Evaluate(Input{Now: base.Add(30 * time.Second),
		Nodes: []NodeInput{{Name: "b1", LastSeen: base.Add(13 * time.Second)}}}) // fire again
	if e.Firing() != 1 || len(e.Alerts()) != 1 {
		t.Fatalf("firing=%d alerts=%d, want one deduped alert", e.Firing(), len(e.Alerts()))
	}
	states := []string{}
	for _, a := range sink.alerts() {
		states = append(states, a.State)
	}
	want := []string{StateFiring, StateResolved, StateFiring}
	if len(states) != len(want) {
		t.Fatalf("transitions = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", states, want)
		}
	}
}

func TestResolvedGC(t *testing.T) {
	e := New(Config{ExportInterval: time.Second, ResolveAfter: time.Second, RetainResolved: time.Minute})
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	e.Evaluate(Input{Now: base.Add(10 * time.Second), Nodes: []NodeInput{{Name: "b1", LastSeen: base}}})
	e.Evaluate(Input{Now: base.Add(11 * time.Second), Nodes: []NodeInput{liveNode("b1", base.Add(11*time.Second))}})
	e.Evaluate(Input{Now: base.Add(13 * time.Second), Nodes: []NodeInput{liveNode("b1", base.Add(13*time.Second))}})
	if len(e.Alerts()) != 1 {
		t.Fatalf("want one resolved alert retained, got %+v", e.Alerts())
	}
	e.Evaluate(Input{Now: base.Add(2 * time.Minute), Nodes: []NodeInput{liveNode("b1", base.Add(2*time.Minute))}})
	if len(e.Alerts()) != 0 {
		t.Fatalf("resolved alert survived RetainResolved: %+v", e.Alerts())
	}
}

func TestFiringGauges(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{ExportInterval: time.Second, Registry: reg})
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	e.Evaluate(Input{Now: base.Add(10 * time.Second), Nodes: []NodeInput{{Name: "b1", LastSeen: base}}})

	val, found := firingGauge(reg, "b1")
	if !found || val != 1 {
		t.Fatalf("narada_alerts_firing{deadman,b1} = %v found=%v, want 1", val, found)
	}
	e.Evaluate(Input{Now: base.Add(11 * time.Second), Nodes: []NodeInput{liveNode("b1", base.Add(11*time.Second))}})
	e.Evaluate(Input{Now: base.Add(20 * time.Second), Nodes: []NodeInput{liveNode("b1", base.Add(20*time.Second))}})
	if val, _ := firingGauge(reg, "b1"); val != 0 {
		t.Fatalf("gauge = %v after resolve, want 0", val)
	}
}

func firingGauge(reg *obs.Registry, node string) (float64, bool) {
	for _, f := range reg.ExportSnapshot() {
		if f.Name != "narada_alerts_firing" {
			continue
		}
		for _, s := range f.Series {
			match := false
			for _, l := range s.Labels {
				if l.Key == "node" && l.Value == node {
					match = true
				}
			}
			if match {
				return s.Gauge, true
			}
		}
	}
	return 0, false
}

func TestFlushPublishesFiring(t *testing.T) {
	sink := &captureSink{}
	e := New(Config{ExportInterval: time.Second})
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	e.Evaluate(Input{Now: base.Add(10 * time.Second), Nodes: []NodeInput{
		{Name: "b1", LastSeen: base}, {Name: "b2", LastSeen: base}}})

	// Attach the sink only now: Flush must still deliver the firing set.
	e.cfg.Sinks = []Sink{sink}
	e.Flush()
	got := sink.alerts()
	if len(got) != 2 || got[0].Node != "b1" || got[1].Node != "b2" {
		t.Fatalf("flush delivered %+v, want b1 and b2 firing", got)
	}
}

func TestWebhookSink(t *testing.T) {
	var mu sync.Mutex
	var seen []Alert
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var a Alert
		if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		seen = append(seen, a)
		mu.Unlock()
	}))
	defer srv.Close()

	s := NewWebhookSink(srv.URL, time.Second, nil)
	s.Publish(Alert{Rule: RuleDeadman, Node: "b1", State: StateFiring})
	if s.Delivered() != 1 || s.Failed() != 0 {
		t.Fatalf("delivered=%d failed=%d", s.Delivered(), s.Failed())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[0].Node != "b1" || seen[0].State != StateFiring {
		t.Fatalf("webhook saw %+v", seen)
	}
}

func TestWebhookSinkFailure(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusBadGateway)
	}))
	s := NewWebhookSink(srv.URL, time.Second, nil)
	s.sleep = func(time.Duration) {}
	s.Publish(Alert{Rule: RuleDeadman, Node: "b1", State: StateFiring})
	srv.Close()
	s.Publish(Alert{Rule: RuleDeadman, Node: "b1", State: StateResolved}) // connection refused
	// Both failures are transient, so each publish attempts twice.
	if s.Delivered() != 0 || s.Failed() != 4 || s.Retried() != 2 {
		t.Fatalf("delivered=%d failed=%d retried=%d, want 0/4/2",
			s.Delivered(), s.Failed(), s.Retried())
	}
}

// TestWebhookSinkRetryRecovers asserts a single transient 5xx is ridden out
// by the one-shot retry, while a 4xx rejection is terminal (re-posting a
// payload the receiver refused cannot help).
func TestWebhookSinkRetryRecovers(t *testing.T) {
	var calls atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
		}
	}))
	defer srv.Close()
	s := NewWebhookSink(srv.URL, time.Second, nil)
	s.sleep = func(time.Duration) {}
	s.Publish(Alert{Rule: RuleDeadman, Node: "b1", State: StateFiring})
	if s.Delivered() != 1 || s.Retried() != 1 || calls.Load() != 2 {
		t.Fatalf("delivered=%d retried=%d calls=%d, want 1/1/2",
			s.Delivered(), s.Retried(), calls.Load())
	}

	rejects := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "bad payload", http.StatusUnprocessableEntity)
	}))
	defer rejects.Close()
	r := NewWebhookSink(rejects.URL, time.Second, nil)
	r.sleep = func(d time.Duration) { t.Fatalf("4xx must not be retried (slept %s)", d) }
	r.Publish(Alert{Rule: RuleDeadman, Node: "b1", State: StateFiring})
	if r.Failed() != 1 || r.Retried() != 0 {
		t.Fatalf("failed=%d retried=%d, want 1/0", r.Failed(), r.Retried())
	}
}

// TestDeliveryLatencyBurnRule drives the delivery-latency SLI through fire
// and resolve: both burn windows must exceed their thresholds to fire, and a
// recovered SLI must stay clear for ResolveAfter before resolving.
func TestDeliveryLatencyBurnRule(t *testing.T) {
	e := New(Config{DeliverySLOTarget: 0.99, DeliveryLatencySLO: 100 * time.Millisecond,
		ResolveAfter: 2 * time.Second})
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

	// A node without the delivery histogram (HasDelivery false) never
	// evaluates, no matter what the fields say.
	e.Evaluate(Input{Now: base, Nodes: []NodeInput{{
		Name: "r1", LastSeen: base,
		DeliveryFastSlow: 100, DeliveryFastTotal: 100,
		DeliverySlowSlow: 100, DeliverySlowTotal: 100}}})
	if len(e.Alerts()) != 0 {
		t.Fatalf("node without delivery SLI raised %+v", e.Alerts())
	}

	// Fast window burning alone (slow window healthy): a blip, not an alert.
	e.Evaluate(Input{Now: base, Nodes: []NodeInput{{
		Name: "b1", LastSeen: base, HasDelivery: true,
		DeliveryFastSlow: 30, DeliveryFastTotal: 100, // 30% slow => 30x budget
		DeliverySlowSlow: 1, DeliverySlowTotal: 1000}}})
	if e.Firing() != 0 {
		t.Fatalf("fast-window blip fired: %+v", e.Alerts())
	}

	// Both windows burning: fires.
	e.Evaluate(Input{Now: base.Add(time.Second), Nodes: []NodeInput{{
		Name: "b1", LastSeen: base.Add(time.Second), HasDelivery: true,
		DeliveryFastSlow: 30, DeliveryFastTotal: 100, // 30x
		DeliverySlowSlow: 100, DeliverySlowTotal: 1000}}}) // 10x
	firing := map[string]bool{}
	for _, a := range e.Alerts() {
		if a.State == StateFiring {
			firing[a.Rule] = true
		}
	}
	if !firing[RuleDeliveryLatencyBurn] {
		t.Fatalf("both windows burning, firing = %v", firing)
	}

	// Healthy again: clears only after ResolveAfter of continuous calm.
	healthy := func(at time.Time) Input {
		return Input{Now: at, Nodes: []NodeInput{{
			Name: "b1", LastSeen: at, HasDelivery: true,
			DeliveryFastSlow: 0, DeliveryFastTotal: 100,
			DeliverySlowSlow: 0, DeliverySlowTotal: 1000}}}
	}
	e.Evaluate(healthy(base.Add(2 * time.Second)))
	if e.Firing() != 1 {
		t.Fatal("delivery burn resolved without hysteresis")
	}
	e.Evaluate(healthy(base.Add(5 * time.Second)))
	if e.Firing() != 0 {
		t.Fatalf("delivery burn never resolved: %+v", e.Alerts())
	}
}

// TestDropRatioRule drives the egress drop-ratio rule through its guards:
// no evaluation without the SLI, no fire below the volume floor, fire above
// ratio+volume, resolve on healthy volume.
func TestDropRatioRule(t *testing.T) {
	e := New(Config{DropRatioMax: 0.05, DropMinVolume: 100, ResolveAfter: 2 * time.Second,
		EgressWindow: time.Minute})
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

	// No SLI (HasDropRatio false): silent even at ratio 1.0.
	e.Evaluate(Input{Now: base, Nodes: []NodeInput{{
		Name: "r1", LastSeen: base, DropRatio: 1, DropVolume: 1e6}}})
	if len(e.Alerts()) != 0 {
		t.Fatalf("node without drop SLI raised %+v", e.Alerts())
	}

	// Bad ratio but volume below the floor: an idle broker dropping its
	// only frame must not page anyone.
	e.Evaluate(Input{Now: base, Nodes: []NodeInput{{
		Name: "b1", LastSeen: base, HasDropRatio: true, DropRatio: 0.5, DropVolume: 10}}})
	if e.Firing() != 0 {
		t.Fatalf("low-volume ratio fired: %+v", e.Alerts())
	}

	// Volume and ratio both over: fires, carrying the ratio as the value.
	e.Evaluate(Input{Now: base.Add(time.Second), Nodes: []NodeInput{{
		Name: "b1", LastSeen: base.Add(time.Second), HasDropRatio: true,
		DropRatio: 0.25, DropVolume: 4000}}})
	if e.Firing() != 1 {
		t.Fatalf("drop storm did not fire: %+v", e.Alerts())
	}
	var fired Alert
	for _, a := range e.Alerts() {
		if a.Rule == RuleDropRatio {
			fired = a
		}
	}
	if fired.State != StateFiring || fired.Value != 0.25 || fired.Threshold != 0.05 {
		t.Fatalf("drop_ratio alert = %+v", fired)
	}

	// Healthy delivery volume with a clean ratio: resolves after the
	// hysteresis window.
	healthy := func(at time.Time) Input {
		return Input{Now: at, Nodes: []NodeInput{{
			Name: "b1", LastSeen: at, HasDropRatio: true, DropRatio: 0.001, DropVolume: 4000}}}
	}
	e.Evaluate(healthy(base.Add(2 * time.Second)))
	if e.Firing() != 1 {
		t.Fatal("drop_ratio resolved without hysteresis")
	}
	e.Evaluate(healthy(base.Add(5 * time.Second)))
	if e.Firing() != 0 {
		t.Fatalf("drop_ratio never resolved: %+v", e.Alerts())
	}
	for _, a := range e.Alerts() {
		if a.Rule == RuleDropRatio && (a.State != StateResolved || a.ResolvedAt == nil) {
			t.Fatalf("resolved alert malformed: %+v", a)
		}
	}
}

func TestReplicationLagRule(t *testing.T) {
	e := New(Config{ReplicationLagMax: 100, ResolveAfter: 2 * time.Second})
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)

	// Not a replica (HasReplication false): silent at any lag.
	e.Evaluate(Input{Now: base, Nodes: []NodeInput{{
		Name: "b1", LastSeen: base, ReplicationLag: 1e6}}})
	if len(e.Alerts()) != 0 {
		t.Fatalf("non-replica raised %+v", e.Alerts())
	}

	// Standby trailing within the bound: healthy.
	e.Evaluate(Input{Now: base, Nodes: []NodeInput{{
		Name: "bdn-1", LastSeen: base, HasReplication: true, ReplicationLag: 40}}})
	if e.Firing() != 0 {
		t.Fatalf("in-bound lag fired: %+v", e.Alerts())
	}

	// Lag past the bound fires — on primaries too (they report their
	// worst-trailing peer).
	e.Evaluate(Input{Now: base.Add(time.Second), Nodes: []NodeInput{{
		Name: "bdn-1", LastSeen: base.Add(time.Second), HasReplication: true,
		ReplicaPrimary: true, ReplicationLag: 5000}}})
	if e.Firing() != 1 {
		t.Fatalf("lag did not fire: %+v", e.Alerts())
	}
	var fired Alert
	for _, a := range e.Alerts() {
		if a.Rule == RuleReplicationLag {
			fired = a
		}
	}
	if fired.State != StateFiring || fired.Value != 5000 || fired.Threshold != 100 {
		t.Fatalf("replication_lag alert = %+v", fired)
	}

	// Caught up: resolves after the hysteresis window.
	for _, dt := range []time.Duration{2 * time.Second, 5 * time.Second} {
		at := base.Add(dt)
		e.Evaluate(Input{Now: at, Nodes: []NodeInput{{
			Name: "bdn-1", LastSeen: at, HasReplication: true, ReplicaPrimary: true}}})
	}
	if e.Firing() != 0 {
		t.Fatalf("caught-up replica still firing: %+v", e.Alerts())
	}
}

func TestStalePrimaryRule(t *testing.T) {
	e := New(Config{StalePrimaryAfter: 10 * time.Second, ExportInterval: time.Second,
		DeadmanIntervals: 3, ResolveAfter: 2 * time.Second})
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)

	// The primary itself reports leader age 0 and must never trip the rule;
	// a huge age on a PRIMARY input is equally ignored (the primary hears
	// no beats by design).
	e.Evaluate(Input{Now: base, Nodes: []NodeInput{{
		Name: "bdn-1", LastSeen: base, HasReplication: true,
		ReplicaPrimary: true, LeaderAge: 999}}})
	if e.Firing() != 0 {
		t.Fatalf("primary tripped stale_primary: %+v", e.Alerts())
	}

	// Standby freshly beaten: healthy.
	e.Evaluate(Input{Now: base, Nodes: []NodeInput{{
		Name: "bdn-2", LastSeen: base, HasReplication: true, LeaderAge: 1.5}}})
	if e.Firing() != 0 {
		t.Fatalf("fresh standby fired: %+v", e.Alerts())
	}

	// Standby without a beat past the bound: fires.
	e.Evaluate(Input{Now: base.Add(time.Second), Nodes: []NodeInput{{
		Name: "bdn-2", LastSeen: base.Add(time.Second), HasReplication: true,
		LeaderAge: 25}}})
	if e.Firing() != 1 {
		t.Fatalf("leaderless standby did not fire: %+v", e.Alerts())
	}
	var fired Alert
	for _, a := range e.Alerts() {
		if a.Rule == RuleStalePrimary {
			fired = a
		}
	}
	if fired.State != StateFiring || fired.Value != 25 || fired.Threshold != 10 {
		t.Fatalf("stale_primary alert = %+v", fired)
	}

	// A VANISHED standby's last reported age is stale data, not a live
	// leaderless signal — deadman owns that page. The condition reads as
	// clear, so the alert resolves after the hysteresis window.
	for _, dt := range []time.Duration{10 * time.Second, 13 * time.Second} {
		e.Evaluate(Input{Now: base.Add(dt), Nodes: []NodeInput{{
			Name: "bdn-2", LastSeen: base, HasReplication: true, LeaderAge: 60}}})
	}
	for _, a := range e.Alerts() {
		if a.Rule == RuleStalePrimary && a.State == StateFiring {
			t.Fatalf("vanished standby kept stale_primary firing: %+v", a)
		}
	}

	// A promoted member (now primary) keeps the rule clear; only the
	// deadman alert from the vanish above may still be winding down.
	e.Evaluate(Input{Now: base.Add(14 * time.Second), Nodes: []NodeInput{{
		Name: "bdn-2", LastSeen: base.Add(14 * time.Second), HasReplication: true,
		ReplicaPrimary: true, LeaderAge: 0}}})
	for _, a := range e.Alerts() {
		if a.Rule == RuleStalePrimary && a.State == StateFiring {
			t.Fatalf("promoted member still firing stale_primary: %+v", a)
		}
	}
}
