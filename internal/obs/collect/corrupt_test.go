package collect

import (
	"net"
	"testing"
	"time"

	"narada/internal/obs"
)

// TestCollectorDropsCorruptDatagrams sprays malformed datagrams at the real
// UDP ingest path and asserts each is counted and dropped without wedging the
// receive loop: a valid snapshot sent afterwards still reaches the series
// store.
func TestCollectorDropsCorruptDatagrams(t *testing.T) {
	c := newTestCollector(t, Config{Resolutions: testResolutions(), HealthInterval: -1})
	conn, err := net.Dial("udp", c.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	good := obs.EncodeMetricsPackets("b1", 0, time.Now(), 1, []obs.ExportFamily{
		{Name: "narada_broker_links", Kind: "gauge", Series: []obs.ExportSeries{{Gauge: 4}}},
	}, 0)[0]

	truncated := append([]byte(nil), good...)
	truncated = truncated[:len(truncated)/2]
	badMagic := append([]byte(nil), good...)
	badMagic[0] = 0x42
	corrupt := [][]byte{
		truncated,
		badMagic,
		{0xb8, 0x02, 0x01, 0x02, 'n', '1', 0x00, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, // huge span batch
		[]byte("complete garbage"),
	}
	for _, pkt := range corrupt {
		if _, err := conn.Write(pkt); err != nil {
			t.Fatalf("write corrupt: %v", err)
		}
	}
	if _, err := conn.Write(good); err != nil {
		t.Fatalf("write good: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, ok := c.store.LastGauge("narada_broker_links", "b1", time.Minute, time.Now()); ok && v == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("valid snapshot never ingested after corrupt datagrams")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.packetsBad.Value(); got != uint64(len(corrupt)) {
		t.Fatalf("bad-packet counter = %d, want %d", got, len(corrupt))
	}
	if got := c.packetsRx.Value(); got != 1 {
		t.Fatalf("ok-packet counter = %d, want 1", got)
	}
}
