package collect

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"time"

	"narada/internal/obs"
	"narada/internal/obs/collect/health"
)

// Handler assembles the collector's HTTP API:
//
//	/metrics       federated Prometheus exposition — every exporting node's
//	               last snapshot plus the collector's own metrics, with a
//	               node label identifying the source
//	/traces        JSON listing of retained trace summaries
//	/traces/{id}   one assembled cross-node trace, spans in aligned order;
//	               message traces additionally carry the per-hop queue-wait
//	               breakdown assembled from their msg-flush spans
//	/flows         JSON per-topic flow accounting: each node's top-k table
//	               (published/delivered/dropped-by-reason) plus the
//	               fabric-wide merge
//	/fabric        JSON fabric view: per-node liveness, clock offset, load,
//	               egress queue depth and discovery latency percentiles
//	/alerts        JSON health-alert list (firing first), with firing count;
//	               each alert links to its correlated journal-event window
//	/events        JSON control-plane event journal, merged across nodes in
//	               NTP-aligned order: ?node= &type= &since= &until= &limit=
//	/topology      fabric graph (nodes, links, advertisements with TTL
//	               state) replayed from the journal: ?at=RFC3339|5m (ago);
//	               absent or at=live reconstructs the present
//	/query         range query over the retained series store:
//	               ?metric= (required) &node= &res=10s &since=5m|RFC3339
//	/profiles      JSON listing of retained profiles (pulled + flight):
//	               ?node= &kind= &trigger= &since=5m|RFC3339
//	/profiles/{id} raw pprof download; ?view=top renders the dep-free text
//	               summary for goroutine/heap captures
//	/profiles/diff ?a={id}&b={id} text-mode site diff of two goroutine or
//	               heap captures (b − a)
//	/healthz       liveness
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/profiles", c.serveProfiles)
	mux.HandleFunc("/profiles/diff", c.serveProfileDiff)
	mux.HandleFunc("/profiles/{id}", c.serveProfile)
	mux.HandleFunc("/metrics", c.serveMetrics)
	mux.HandleFunc("/traces", c.serveTraces)
	mux.HandleFunc("/traces/{id}", c.serveTrace)
	mux.HandleFunc("/flows", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, c.Flows())
	})
	mux.HandleFunc("/fabric", c.serveFabric)
	mux.HandleFunc("/alerts", c.serveAlerts)
	mux.HandleFunc("/events", c.serveEvents)
	mux.HandleFunc("/topology", c.serveTopology)
	mux.HandleFunc("/query", c.serveQuery)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","goroutines":%d}`+"\n", runtime.NumGoroutine())
	})
	return mux
}

// federatedFamilies merges the last snapshot of every node with the
// collector's own registry. Series gain a node label naming their exporter
// when they do not already carry one (per-node registries label their own
// series with the same identity, so collisions cannot arise).
func (c *Collector) federatedFamilies() []obs.ExportFamily {
	c.mu.Lock()
	nodes := make([]*nodeState, 0, len(c.nodes))
	for _, ns := range c.nodes {
		nodes = append(nodes, ns)
	}
	c.mu.Unlock()

	merged := make(map[string]*obs.ExportFamily)
	add := func(fams []obs.ExportFamily, node string) {
		for _, f := range fams {
			dst := merged[f.Name]
			if dst == nil {
				merged[f.Name] = &obs.ExportFamily{Name: f.Name, Help: f.Help, Kind: f.Kind}
				dst = merged[f.Name]
			} else if dst.Kind != f.Kind {
				continue // conflicting registration across nodes; keep the first
			}
			for _, s := range f.Series {
				dst.Series = append(dst.Series, labelled(s, node))
			}
		}
	}
	add(c.reg.ExportSnapshot(), "")
	// Deterministic order across nodes so the exposition is stable.
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].name < nodes[j].name })
	for _, ns := range nodes {
		c.mu.Lock()
		fams := ns.families
		c.mu.Unlock()
		add(fams, ns.name)
	}

	out := make([]obs.ExportFamily, 0, len(merged))
	for _, f := range merged {
		sort.SliceStable(f.Series, func(i, j int) bool {
			return seriesKey(f.Series[i]) < seriesKey(f.Series[j])
		})
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// labelled returns s with a node label naming the exporter, added when the
// series does not already carry one, and labels re-sorted by key.
func labelled(s obs.ExportSeries, node string) obs.ExportSeries {
	if node == "" {
		return s
	}
	for _, l := range s.Labels {
		if l.Key == "node" {
			return s
		}
	}
	labels := make([]obs.Label, 0, len(s.Labels)+1)
	labels = append(labels, s.Labels...)
	labels = append(labels, obs.L("node", node))
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	s.Labels = labels
	return s
}

func seriesKey(s obs.ExportSeries) string {
	var sb strings.Builder
	for _, l := range s.Labels {
		sb.WriteString(l.Key)
		sb.WriteByte('\xff')
		sb.WriteString(l.Value)
		sb.WriteByte('\xfe')
	}
	return sb.String()
}

func (c *Collector) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WriteFamiliesText(w, c.federatedFamilies())
}

func (c *Collector) serveTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.Traces())
}

func (c *Collector) serveTrace(w http.ResponseWriter, r *http.Request) {
	tr, ok := c.Trace(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "trace not found"})
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

// LatencySummary is a histogram condensed to its headline percentiles.
type LatencySummary struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50Seconds"`
	P90   float64 `json:"p90Seconds"`
	P99   float64 `json:"p99Seconds"`
}

// FabricNode is the /fabric entry for one exporting node. The load fields
// are populated from whichever families the node exports (brokers report
// egress and link gauges; requesters report discovery latency).
type FabricNode struct {
	Name          string          `json:"name"`
	LastSeen      time.Time       `json:"lastSeen"`
	ClockOffsetMs float64         `json:"clockOffsetMs"`
	Spans         uint64          `json:"spans"`
	EgressDepth   float64         `json:"egressQueueDepth"`
	EgressDropped uint64          `json:"egressDropped"`
	Links         float64         `json:"links"`
	Clients       float64         `json:"clients"`
	Discovery     *LatencySummary `json:"discoveryLatency,omitempty"`
}

// FabricView is the /fabric payload.
type FabricView struct {
	Nodes  []FabricNode `json:"nodes"`
	Traces int          `json:"traces"`
}

// Fabric summarises every exporting node's health and load.
func (c *Collector) Fabric() FabricView {
	c.mu.Lock()
	nodes := make([]*nodeState, 0, len(c.nodes))
	for _, ns := range c.nodes {
		nodes = append(nodes, ns)
	}
	traces := len(c.traces)
	c.mu.Unlock()

	view := FabricView{Traces: traces}
	for _, ns := range nodes {
		c.mu.Lock()
		fn := FabricNode{
			Name:          ns.name,
			LastSeen:      ns.lastSeen,
			ClockOffsetMs: float64(ns.offset) / float64(time.Millisecond),
			Spans:         ns.spans,
		}
		fams := ns.families
		c.mu.Unlock()
		for _, f := range fams {
			switch f.Name {
			case "narada_broker_egress_queue_depth":
				for _, s := range f.Series {
					fn.EgressDepth += s.Gauge
				}
			case "narada_broker_egress_dropped_total":
				for _, s := range f.Series {
					fn.EgressDropped += s.Counter
				}
			case "narada_broker_links":
				for _, s := range f.Series {
					fn.Links += s.Gauge
				}
			case "narada_broker_clients":
				for _, s := range f.Series {
					fn.Clients += s.Gauge
				}
			case "narada_discovery_total_seconds":
				for _, s := range f.Series {
					if s.Count == 0 {
						continue
					}
					fn.Discovery = &LatencySummary{
						Count: s.Count,
						P50:   histQuantile(0.50, s.Bounds, s.Buckets),
						P90:   histQuantile(0.90, s.Bounds, s.Buckets),
						P99:   histQuantile(0.99, s.Bounds, s.Buckets),
					}
				}
			}
		}
		view.Nodes = append(view.Nodes, fn)
	}
	sort.Slice(view.Nodes, func(i, j int) bool { return view.Nodes[i].Name < view.Nodes[j].Name })
	return view
}

func (c *Collector) serveFabric(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.Fabric())
}

// histQuantile estimates quantile q from fixed buckets (Prometheus-style
// linear interpolation within the bucket containing the target rank; the
// +Inf bucket clamps to the last finite bound).
func histQuantile(q float64, bounds []float64, buckets []uint64) float64 {
	if len(bounds) == 0 || len(buckets) != len(bounds)+1 {
		return 0
	}
	total := uint64(0)
	for _, b := range buckets {
		total += b
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i, b := range buckets {
		prev := cum
		cum += float64(b)
		if cum < rank {
			continue
		}
		if i == len(bounds) { // +Inf bucket
			return bounds[len(bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		}
		if b == 0 {
			return bounds[i]
		}
		return lower + (bounds[i]-lower)*(rank-prev)/float64(b)
	}
	return bounds[len(bounds)-1]
}

// AlertView is one /alerts entry: the alert plus the journal-event window
// surrounding its anchor — the root-cause correlation ("deadman at T ⇐ 3
// reconnect_gaveup on link X in [T−30s, T]").
type AlertView struct {
	health.Alert
	EventWindow *EventWindow `json:"eventWindow,omitempty"`
	// Profiles links the flight-recorder evidence captured when this alert
	// fired (or, for a dead node, its freshest retained captures).
	Profiles []ProfileRef `json:"profiles,omitempty"`
}

// AlertsView is the /alerts payload.
type AlertsView struct {
	Firing int         `json:"firing"`
	Alerts []AlertView `json:"alerts"`
}

func (c *Collector) serveAlerts(w http.ResponseWriter, _ *http.Request) {
	alerts := c.health.Alerts()
	out := make([]AlertView, 0, len(alerts))
	for _, a := range alerts {
		anchor := a.Since
		if a.FiredAt != nil {
			anchor = *a.FiredAt
		}
		out = append(out, AlertView{
			Alert:       a,
			EventWindow: c.eventWindowFor(a.Node, anchor),
			Profiles:    c.profiles.linksFor(a.Rule, a.Node),
		})
	}
	writeJSON(w, http.StatusOK, AlertsView{Firing: c.health.Firing(), Alerts: out})
}

// parseWhen accepts a duration ("30s", meaning that long ago) or an RFC3339
// instant.
func parseWhen(s string, now time.Time) (time.Time, error) {
	if d, err := time.ParseDuration(s); err == nil {
		return now.Add(-d), nil
	}
	return time.Parse(time.RFC3339, s)
}

func (c *Collector) serveEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := EventFilter{Node: q.Get("node"), Type: q.Get("type")}
	now := time.Now()
	if s := q.Get("since"); s != "" {
		t, err := parseWhen(s, now)
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				map[string]string{"error": "since must be a duration (30s) or RFC3339 time"})
			return
		}
		f.Since = t
	}
	if s := q.Get("until"); s != "" {
		t, err := parseWhen(s, now)
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				map[string]string{"error": "until must be a duration (30s) or RFC3339 time"})
			return
		}
		f.Until = t
	}
	if s := q.Get("limit"); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &f.Limit); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad limit"})
			return
		}
	}
	writeJSON(w, http.StatusOK, c.Events(f))
}

func (c *Collector) serveTopology(w http.ResponseWriter, r *http.Request) {
	at, live := time.Now(), true
	if s := r.URL.Query().Get("at"); s != "" && s != "live" {
		t, err := parseWhen(s, at)
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				map[string]string{"error": "at must be a duration (30s ago), an RFC3339 time, or live"})
			return
		}
		at, live = t, false
	}
	writeJSON(w, http.StatusOK, c.TopologyAt(at, live))
}

// QueryView is the /query payload.
type QueryView struct {
	Metric string        `json:"metric"`
	Step   string        `json:"step"`
	Since  time.Time     `json:"since"`
	Series []QuerySeries `json:"series"`
}

func (c *Collector) serveQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "metric parameter is required"})
		return
	}
	resolutions := c.store.Resolutions()
	step := resolutions[0].Step
	span := resolutions[0].Span()
	if res := q.Get("res"); res != "" {
		d, err := time.ParseDuration(res)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad res: " + err.Error()})
			return
		}
		found := false
		for _, rg := range resolutions {
			if rg.Step == d {
				step, span, found = rg.Step, rg.Span(), true
				break
			}
		}
		if !found {
			steps := make([]string, len(resolutions))
			for i, rg := range resolutions {
				steps[i] = rg.Step.String()
			}
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": "res must be one of: " + strings.Join(steps, ", ")})
			return
		}
	}
	now := time.Now()
	since := now.Add(-span)
	if s := q.Get("since"); s != "" {
		if d, err := time.ParseDuration(s); err == nil {
			since = now.Add(-d)
		} else if t, err := time.Parse(time.RFC3339, s); err == nil {
			since = t
		} else {
			writeJSON(w, http.StatusBadRequest,
				map[string]string{"error": "since must be a duration (5m) or RFC3339 time"})
			return
		}
	}
	series := c.store.Query(metric, q.Get("node"), step, since, now)
	if series == nil {
		series = []QuerySeries{}
	}
	writeJSON(w, http.StatusOK, QueryView{
		Metric: metric, Step: step.String(), Since: since, Series: series,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
