package collect

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"narada/internal/obs"
	"narada/internal/obs/collect/health"
)

func eventPkt(node string, offset time.Duration, events ...obs.Event) *obs.ExportPacket {
	return &obs.ExportPacket{Node: node, Offset: offset, EventsAt: time.Now(), Events: events}
}

func ev(seq uint64, typ string, at time.Time, subject, detail string) obs.Event {
	return obs.Event{Seq: seq, Type: typ, At: at, Subject: subject, Detail: detail}
}

// TestEventsMergedAlignedOrder ingests journals from two nodes with opposite
// clock skews and asserts /events merges them into offset-corrected order,
// with the filters selecting by node, type and window.
func TestEventsMergedAlignedOrder(t *testing.T) {
	c := newTestCollector(t, Config{})
	base := time.Date(2005, 7, 1, 12, 0, 0, 0, time.UTC)

	// True order: a's link_up (t+0), b's link_up (t+1s), a's link_down (t+2s).
	// a runs 400ms fast and b 300ms slow, so raw stamps misorder the first two.
	c.ingest(eventPkt("broker-a", 400*time.Millisecond,
		ev(1, obs.EventLinkUp, base.Add(400*time.Millisecond), "broker-b", "role=link"),
		ev(2, obs.EventLinkDown, base.Add(2*time.Second+400*time.Millisecond), "broker-b", "read error")))
	c.ingest(eventPkt("broker-b", -300*time.Millisecond,
		ev(1, obs.EventLinkUp, base.Add(time.Second-300*time.Millisecond), "broker-a", "role=link")))

	v := c.Events(EventFilter{})
	if v.Total != 3 || len(v.Events) != 3 {
		t.Fatalf("events = %+v, want 3", v)
	}
	for i, want := range []struct {
		node string
		typ  string
		at   time.Time
	}{
		{"broker-a", obs.EventLinkUp, base},
		{"broker-b", obs.EventLinkUp, base.Add(time.Second)},
		{"broker-a", obs.EventLinkDown, base.Add(2 * time.Second)},
	} {
		got := v.Events[i]
		if got.Node != want.node || got.Type != want.typ || !got.AtAligned.Equal(want.at) {
			t.Fatalf("event %d = %+v, want %s %s at %v", i, got, want.node, want.typ, want.at)
		}
	}

	if v := c.Events(EventFilter{Node: "broker-b"}); v.Total != 1 || v.Events[0].Node != "broker-b" {
		t.Fatalf("node filter = %+v", v)
	}
	if v := c.Events(EventFilter{Type: obs.EventLinkDown}); v.Total != 1 || v.Events[0].Type != obs.EventLinkDown {
		t.Fatalf("type filter = %+v", v)
	}
	if v := c.Events(EventFilter{Since: base.Add(500 * time.Millisecond)}); v.Total != 2 {
		t.Fatalf("since filter kept %d, want 2", v.Total)
	}
	if v := c.Events(EventFilter{Until: base.Add(500 * time.Millisecond)}); v.Total != 1 {
		t.Fatalf("until filter kept %d, want 1", v.Total)
	}
	// Limit keeps the newest while Total still reports the full match.
	if v := c.Events(EventFilter{Limit: 1}); v.Total != 3 || len(v.Events) != 1 ||
		v.Events[0].Type != obs.EventLinkDown {
		t.Fatalf("limit = %+v, want newest only with total 3", v)
	}
}

// TestEventSeqGapDetection checks the collector counts journal sequence gaps
// (UDP loss, emitter ring overwrite), skips duplicates, and re-baselines on
// an emitter restart instead of counting a huge spurious gap.
func TestEventSeqGapDetection(t *testing.T) {
	c := newTestCollector(t, Config{})
	at := time.Unix(3000, 0)

	c.ingest(eventPkt("broker-1", 0, ev(1, obs.EventNodeStart, at, "addr", "")))
	if g := c.EventGaps(); g != 0 {
		t.Fatalf("gaps = %d after contiguous ingest, want 0", g)
	}
	// Seqs 2..4 lost: a gap of 3.
	c.ingest(eventPkt("broker-1", 0, ev(5, obs.EventLinkUp, at.Add(time.Second), "peer", "")))
	if g := c.EventGaps(); g != 3 {
		t.Fatalf("gaps = %d after losing seqs 2-4, want 3", g)
	}
	// Duplicate delivery: neither stored nor counted.
	c.ingest(eventPkt("broker-1", 0, ev(5, obs.EventLinkUp, at.Add(time.Second), "peer", "")))
	if g, n := c.EventGaps(), c.EventCount(); g != 3 || n != 2 {
		t.Fatalf("after dup: gaps=%d count=%d, want 3/2", g, n)
	}
	// Emitter restart (seq resets to 1): re-baseline, no spurious gap.
	c.ingest(eventPkt("broker-1", 0, ev(1, obs.EventNodeStart, at.Add(2*time.Second), "addr", "")))
	c.ingest(eventPkt("broker-1", 0, ev(2, obs.EventLinkUp, at.Add(3*time.Second), "peer", "")))
	if g := c.EventGaps(); g != 3 {
		t.Fatalf("gaps = %d after restart re-baseline, want still 3", g)
	}
}

// TestTopologyTimeTravel replays a small fabric history and asserts the
// reconstructed graph differs across query instants: the link exists between
// its link_up and link_down, the dead node's outgoing links vanish with its
// node_stop, and ad TTL states degrade from live to expiring to gone.
func TestTopologyTimeTravel(t *testing.T) {
	c := newTestCollector(t, Config{})
	base := time.Date(2005, 7, 1, 12, 0, 0, 0, time.UTC)

	c.ingest(eventPkt("broker-a", 0,
		ev(1, obs.EventNodeStart, base, "127.0.0.1:7001", ""),
		ev(2, obs.EventLinkUp, base.Add(time.Second), "broker-b", "role=link"),
		// Broker-side advertisement send: subject is the BDN target, must
		// not appear as a registration on the graph.
		ev(3, obs.EventAdRefreshed, base.Add(time.Second), "bdn:127.0.0.1:9001", "")))
	c.ingest(eventPkt("gsl", 0,
		ev(1, obs.EventAdRegistered, base.Add(2*time.Second), "broker-a", "realm=r1 ttl=30s")))
	c.ingest(eventPkt("broker-b", 0,
		ev(1, obs.EventNodeStart, base, "127.0.0.1:7002", ""),
		ev(2, obs.EventLinkUp, base.Add(time.Second), "broker-a", "role=link"),
		ev(3, obs.EventNodeStop, base.Add(10*time.Second), "broker-b", "")))
	c.ingest(eventPkt("broker-a", 0,
		ev(4, obs.EventLinkDown, base.Add(11*time.Second), "broker-b", "read error")))

	link := func(v TopologyView, from, to string) bool {
		for _, l := range v.Links {
			if l.From == from && l.To == to {
				return true
			}
		}
		return false
	}

	// T+5s: both brokers up, both link directions live, ad live.
	v := c.TopologyAt(base.Add(5*time.Second), false)
	if len(v.Nodes) != 3 {
		t.Fatalf("nodes at T+5s = %+v, want broker-a broker-b gsl", v.Nodes)
	}
	if !link(v, "broker-a", "broker-b") || !link(v, "broker-b", "broker-a") {
		t.Fatalf("links at T+5s = %+v, want both directions", v.Links)
	}
	if len(v.Ads) != 1 || v.Ads[0].Broker != "broker-a" || v.Ads[0].BDN != "gsl" ||
		v.Ads[0].TTLState != "live" {
		t.Fatalf("ads at T+5s = %+v, want live broker-a@gsl", v.Ads)
	}

	// T+1s−ε: before any link_up.
	if v := c.TopologyAt(base.Add(999*time.Millisecond), false); len(v.Links) != 0 {
		t.Fatalf("links at T+0.999s = %+v, want none", v.Links)
	}

	// T+10.5s: broker-b stopped (its outgoing link gone with it) but
	// broker-a's side hasn't noticed yet.
	v = c.TopologyAt(base.Add(10500*time.Millisecond), false)
	for _, n := range v.Nodes {
		if n.Name == "broker-b" && n.Up {
			t.Fatalf("broker-b still up at T+10.5s: %+v", v.Nodes)
		}
	}
	if link(v, "broker-b", "broker-a") || !link(v, "broker-a", "broker-b") {
		t.Fatalf("links at T+10.5s = %+v, want only a→b", v.Links)
	}

	// T+12s: broker-a's link_down replayed too.
	if v := c.TopologyAt(base.Add(12*time.Second), false); len(v.Links) != 0 {
		t.Fatalf("links at T+12s = %+v, want none", v.Links)
	}

	// The 30s ad registered at T+2s: expiring inside its last third, gone
	// once the deadline lapses without a refresh.
	if v := c.TopologyAt(base.Add(25*time.Second), false); len(v.Ads) != 1 || v.Ads[0].TTLState != "expiring" {
		t.Fatalf("ads at T+25s = %+v, want expiring", v.Ads)
	}
	if v := c.TopologyAt(base.Add(40*time.Second), false); len(v.Ads) != 0 {
		t.Fatalf("ads at T+40s = %+v, want lapsed entry omitted", v.Ads)
	}
}

// TestAlertEventWindowCorrelation drives a deadman through ingest silence and
// asserts (a) the alert lifecycle lands in the collector's own journal as
// events, and (b) /alerts embeds the correlated event window holding the
// peers' evidence about the vanished node.
func TestAlertEventWindowCorrelation(t *testing.T) {
	c, _ := healthTestCollector(t, health.Config{DeadmanIntervals: 2})

	c.ingest(metricsPkt("broker-1", 1, 0))
	// The surviving peer's journal names the dead node.
	c.ingest(eventPkt("broker-2", 0,
		ev(1, obs.EventLinkDown, time.Now(), "broker-1", "read error"),
		ev(2, obs.EventReconnectAttempt, time.Now(), "broker-1", "fail: connection refused")))
	time.Sleep(60 * time.Millisecond)
	c.EvaluateHealthNow()
	// Both nodes went silent (the event packet registered broker-2 too), so
	// both deadman — the test follows broker-1's alert.
	if c.Health().Firing() == 0 {
		t.Fatalf("setup: deadman not firing: %+v", c.Health().Alerts())
	}

	// The firing transitions were journalled under the collector's identity.
	fired := c.Events(EventFilter{Node: "obscollect", Type: obs.EventAlertFiring})
	subjects := map[string]bool{}
	for _, f := range fired.Events {
		subjects[f.Subject] = true
	}
	if !subjects["broker-1"] {
		t.Fatalf("alert_firing events = %+v, want one for broker-1", fired)
	}

	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/alerts")
	if err != nil {
		t.Fatalf("GET /alerts: %v", err)
	}
	defer resp.Body.Close()
	var v AlertsView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode /alerts: %v", err)
	}
	var target *AlertView
	for i := range v.Alerts {
		if v.Alerts[i].Node == "broker-1" {
			target = &v.Alerts[i]
			break
		}
	}
	if target == nil {
		t.Fatalf("/alerts = %+v, want a broker-1 deadman", v)
	}
	w := target.EventWindow
	if w == nil || w.URL == "" {
		t.Fatalf("alert carries no event window: %+v", target)
	}
	types := map[string]bool{}
	for _, ev := range w.Events {
		types[ev.Type] = true
	}
	if !types[obs.EventLinkDown] || !types[obs.EventReconnectAttempt] {
		t.Fatalf("window events = %+v, want peer link_down + reconnect_attempt", w.Events)
	}
}

// TestEventsAndTopologyEndpoints exercises the HTTP plane: filter parameters,
// bad-parameter rejection and the live/at switch.
func TestEventsAndTopologyEndpoints(t *testing.T) {
	c := newTestCollector(t, Config{})
	now := time.Now()
	c.ingest(eventPkt("broker-1", 0,
		ev(1, obs.EventNodeStart, now.Add(-time.Minute), "addr", ""),
		ev(2, obs.EventLinkUp, now.Add(-30*time.Second), "broker-2", "role=link")))

	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	get := func(path string, into any) int {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if into != nil && resp.StatusCode == 200 {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("decode %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	var evs EventsView
	if code := get("/events?type=link_up", &evs); code != 200 || evs.Total != 1 ||
		evs.Events[0].Type != "link_up" {
		t.Fatalf("/events?type=link_up: code=%d view=%+v", code, evs)
	}
	if code := get("/events?since=45s", &evs); code != 200 || evs.Total != 1 {
		t.Fatalf("/events?since=45s: code=%d total=%d, want 1", code, evs.Total)
	}
	if code := get("/events?since=bogus", nil); code != 400 {
		t.Fatalf("/events?since=bogus: code=%d, want 400", code)
	}
	if code := get("/events?limit=x", nil); code != 400 {
		t.Fatalf("/events?limit=x: code=%d, want 400", code)
	}

	var topo TopologyView
	if code := get("/topology", &topo); code != 200 || !topo.Live || len(topo.Links) != 1 {
		t.Fatalf("/topology: code=%d view=%+v, want live with one link", code, topo)
	}
	// 45s ago predates the link_up: the link must be absent from the replay.
	if code := get("/topology?at=45s", &topo); code != 200 || topo.Live || len(topo.Links) != 0 {
		t.Fatalf("/topology?at=45s: code=%d view=%+v, want non-live without links", code, topo)
	}
	if code := get("/topology?at=bogus", nil); code != 400 {
		t.Fatalf("/topology?at=bogus: code=%d, want 400", code)
	}
}
