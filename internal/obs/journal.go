package obs

import (
	"sync"
	"time"
)

// Control-plane event types. The journal is a typed record of fabric state
// transitions — link lifecycle, advertisement lifecycle, alert state machine,
// fault injection — as opposed to the continuous signals (metrics, flows)
// and per-request signals (spans) the rest of the package carries.
const (
	EventLinkUp           = "link_up"
	EventLinkDown         = "link_down"
	EventReconnectAttempt = "reconnect_attempt"
	EventReconnectGaveup  = "reconnect_gaveup"
	EventAdRegistered     = "ad_registered"
	EventAdRefreshed      = "ad_refreshed"
	EventAdExpired        = "ad_expired"
	EventAdSwept          = "ad_swept"
	EventAlertPending     = "alert_pending"
	EventAlertFiring      = "alert_firing"
	EventAlertResolved    = "alert_resolved"
	EventFaultInjected    = "fault_injected"
	EventNodeStart        = "node_start"
	EventNodeStop         = "node_stop"
	EventWALSnapshot      = "wal_snapshot"
	EventWALReplay        = "wal_replay"
	EventReplicaPromoted  = "replica_promoted"
	EventReplicaDemoted   = "replica_demoted"
)

// Event is one journal entry. The node identity is carried at the transport
// layer (one journal per process), not per event. Seq is assigned by the
// emitting journal and is strictly monotonic per node, so the collector can
// detect dropped packets as sequence gaps. At is the emitter's local clock;
// NTP alignment happens downstream using the per-packet offset.
type Event struct {
	Seq     uint64
	Type    string
	At      time.Time
	Subject string // peer address, topic, rule name, fault name — type-dependent
	Detail  string // free-form context ("role=bdn", "ttl=30s", "expired=3")
}

// DefaultJournalCapacity bounds a journal created with capacity <= 0.
const DefaultJournalCapacity = 1024

// Journal is a bounded ring of control-plane events. Emit is cheap (one
// short mutex hold, no allocation beyond the amortised ring) and never
// blocks on I/O: the exporter drains the ring on its own schedule, and when
// producers outrun the drain the oldest events are overwritten. Overwrites
// surface downstream as sequence gaps, so loss is visible rather than
// silent. All methods are nil-safe so call sites need no journal-enabled
// branch.
type Journal struct {
	clock func() time.Time

	mu      sync.Mutex
	buf     []Event
	start   int // index of oldest buffered event
	n       int // number of buffered events
	seq     uint64
	dropped uint64
}

// NewJournal returns a journal holding at most capacity undrained events.
// A nil clock means time.Now.
func NewJournal(capacity int, clock func() time.Time) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	if clock == nil {
		clock = time.Now
	}
	return &Journal{clock: clock, buf: make([]Event, capacity)}
}

// Emit appends a typed event stamped with the next sequence number and the
// journal's clock. When the ring is full the oldest undrained event is
// overwritten and counted as dropped.
func (j *Journal) Emit(typ, subject, detail string) {
	if j == nil {
		return
	}
	now := j.clock()
	j.mu.Lock()
	j.seq++
	ev := Event{Seq: j.seq, Type: typ, At: now, Subject: subject, Detail: detail}
	if j.n == len(j.buf) {
		// Full: overwrite the oldest. The seq it carried is gone for
		// good; the collector sees the gap.
		j.buf[j.start] = ev
		j.start = (j.start + 1) % len(j.buf)
		j.dropped++
	} else {
		j.buf[(j.start+j.n)%len(j.buf)] = ev
		j.n++
	}
	j.mu.Unlock()
}

// Drain returns all buffered events in sequence order and clears the ring.
// It returns nil when the journal is nil or empty.
func (j *Journal) Drain() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.n == 0 {
		return nil
	}
	out := make([]Event, j.n)
	for i := 0; i < j.n; i++ {
		out[i] = j.buf[(j.start+i)%len(j.buf)]
	}
	j.start, j.n = 0, 0
	return out
}

// Len reports the number of buffered (undrained) events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Dropped reports how many events have been overwritten before a drain.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Seq reports the last assigned sequence number.
func (j *Journal) Seq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}
