// Message-path sampling: the decision-at-publish gate that picks which
// messages get full span instrumentation through the fabric. The decision is
// made exactly once, by the first broker (or an instrumented publisher) that
// sees the message; downstream hops only honour the sampled flag carried in
// the event headers. That keeps the cost model trivial to reason about — the
// unsampled path is one atomic add and a modulo, no clock reads, no map
// touches, no allocations — which is what lets sampling stay compiled into
// the lock-free publish fan-out without moving its 0 allocs/op benchmark.
package obs

import (
	"sync/atomic"
	"time"
)

// samplerSlots is the size of the hashed per-topic rate-limit window array.
// Power of two so the topic hash masks instead of dividing. Distinct topics
// that collide share a budget — acceptable for a limiter whose job is to
// bound collector load, not to be fair.
const samplerSlots = 256

// rateSlot is one hashed per-topic token window: a one-second window start
// and the number of sampling decisions granted inside it.
type rateSlot struct {
	windowSec atomic.Int64
	count     atomic.Uint64
}

// Sampler decides at publish time whether a message is traced. Two gates
// compose: a global 1-in-N counter (Every) thins the firehose, then a hashed
// per-topic rate limit (PerTopicPerSec) stops one hot topic from claiming
// the whole span budget. A nil *Sampler never samples, so call sites don't
// branch on configuration.
type Sampler struct {
	every uint64 // sample every Nth publish; 0 disables
	limit uint64 // per-topic-hash decisions per second; 0 = unlimited
	n     atomic.Uint64
	taken atomic.Uint64
	slots [samplerSlots]rateSlot
}

// NewSampler returns a sampler granting roughly one decision per `every`
// publishes, capped at `perTopicPerSec` decisions per topic-hash per second.
// every == 0 disables sampling entirely; perTopicPerSec == 0 removes the
// per-topic cap.
func NewSampler(every, perTopicPerSec uint64) *Sampler {
	return &Sampler{every: every, limit: perTopicPerSec}
}

// Decide reports whether this publish should be sampled. The unsampled path
// is a single atomic increment plus a modulo — zero allocations, no time
// lookup. Only the 1-in-N winners pay for the clock read and the per-topic
// window check. Safe for concurrent use and on a nil receiver.
func (s *Sampler) Decide(topic string) bool {
	if s == nil || s.every == 0 {
		return false
	}
	if s.n.Add(1)%s.every != 0 {
		return false
	}
	if s.limit != 0 {
		// FNV-1a over the topic bytes; masks into the slot array.
		h := uint64(14695981039346656037)
		for i := 0; i < len(topic); i++ {
			h ^= uint64(topic[i])
			h *= 1099511628211
		}
		slot := &s.slots[h&(samplerSlots-1)]
		sec := time.Now().Unix()
		if w := slot.windowSec.Load(); w != sec {
			// First decision of a new second resets the window. A lost race
			// means another goroutine reset it; fall through and count.
			if slot.windowSec.CompareAndSwap(w, sec) {
				slot.count.Store(0)
			}
		}
		if slot.count.Add(1) > s.limit {
			return false
		}
	}
	s.taken.Add(1)
	return true
}

// Taken returns the number of positive sampling decisions made.
func (s *Sampler) Taken() uint64 {
	if s == nil {
		return 0
	}
	return s.taken.Load()
}

// Seen returns the number of publishes considered (sampled or not).
func (s *Sampler) Seen() uint64 {
	if s == nil {
		return 0
	}
	return s.n.Load()
}
