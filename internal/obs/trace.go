package obs

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCapacity is the default size of the recent-trace ring.
const DefaultTraceCapacity = 128

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A is shorthand for constructing an Attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// SpanView is one recorded span or point event of a trace. A zero Dur marks
// a point event (e.g. "response received"); a non-zero Dur a phase span.
type SpanView struct {
	Name  string        `json:"name"`
	At    time.Time     `json:"at"`
	Dur   time.Duration `json:"durNs,omitempty"`
	Attrs []Attr        `json:"attrs,omitempty"`
}

// TraceView is the queryable snapshot of one trace.
type TraceView struct {
	ID    string     `json:"id"`
	Start time.Time  `json:"start"`
	Spans []SpanView `json:"spans"`
}

// Trace accumulates the spans and events of one request. Obtained from a
// Tracer; all methods are safe for concurrent use and safe on a nil receiver
// (uninstrumented deployments pass a nil Tracer through unchanged).
type Trace struct {
	id string
	t  *Tracer

	mu    sync.Mutex
	start time.Time
	spans []SpanView
}

// Tracer records per-request traces keyed by the request UUID, retaining the
// most recent capacity traces in a FIFO ring for /debug/traces. A nil
// *Tracer is a valid no-op recorder.
type Tracer struct {
	logger *slog.Logger
	cap    int
	exp    atomic.Pointer[Exporter] // optional UDP span exporter

	mu   sync.Mutex
	byID map[string]*Trace
	ring []*Trace // insertion order; oldest evicted first
}

// NewTracer returns a tracer retaining the last capacity traces
// (capacity <= 0 uses DefaultTraceCapacity). A non-nil logger receives one
// structured debug record per span/event as it is recorded.
func NewTracer(capacity int, logger *slog.Logger) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{cap: capacity, logger: logger, byID: make(map[string]*Trace, capacity)}
}

// SetExporter attaches (or, with nil, detaches) a UDP exporter: every span
// recorded from then on is also enqueued for shipping to the collector.
// Safe to call concurrently with recording, and a no-op on a nil tracer.
func (t *Tracer) SetExporter(e *Exporter) {
	if t != nil {
		t.exp.Store(e)
	}
}

// Trace returns the trace for id, creating it (and evicting the oldest
// trace if the ring is full) on first sight. Returns nil on a nil tracer.
func (t *Tracer) Trace(id string) *Trace {
	if t == nil || id == "" {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := t.byID[id]
	if tr == nil {
		tr = &Trace{id: id, t: t}
		if len(t.ring) == t.cap {
			old := t.ring[0]
			copy(t.ring, t.ring[1:])
			t.ring[len(t.ring)-1] = tr
			delete(t.byID, old.id)
		} else {
			t.ring = append(t.ring, tr)
		}
		t.byID[id] = tr
	}
	return tr
}

// Len returns the number of retained traces.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Get returns a snapshot of the trace for id.
func (t *Tracer) Get(id string) (TraceView, bool) {
	if t == nil {
		return TraceView{}, false
	}
	t.mu.Lock()
	tr := t.byID[id]
	t.mu.Unlock()
	if tr == nil {
		return TraceView{}, false
	}
	return tr.view(), true
}

// Snapshot returns snapshots of every retained trace, oldest first.
func (t *Tracer) Snapshot() []TraceView {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	traces := append([]*Trace(nil), t.ring...)
	t.mu.Unlock()
	out := make([]TraceView, len(traces))
	for i, tr := range traces {
		out[i] = tr.view()
	}
	return out
}

// Handler serves the retained traces as JSON: the full ring, or one trace
// with ?id=<uuid>.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id := r.URL.Query().Get("id"); id != "" {
			v, ok := t.Get(id)
			if !ok {
				http.Error(w, `{"error":"trace not found"}`, http.StatusNotFound)
				return
			}
			_ = enc.Encode(v)
			return
		}
		_ = enc.Encode(t.Snapshot())
	})
}

// ID returns the trace's request UUID ("" on nil).
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// Span records a phase span that started at `at` and lasted d.
func (tr *Trace) Span(name string, at time.Time, d time.Duration, attrs ...Attr) {
	tr.record(SpanView{Name: name, At: at, Dur: d, Attrs: attrs})
}

// Event records a point event at time `at`.
func (tr *Trace) Event(name string, at time.Time, attrs ...Attr) {
	tr.record(SpanView{Name: name, At: at, Attrs: attrs})
}

func (tr *Trace) record(sv SpanView) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.start.IsZero() || sv.At.Before(tr.start) {
		tr.start = sv.At
	}
	tr.spans = append(tr.spans, sv)
	tr.mu.Unlock()
	if e := tr.t.exp.Load(); e != nil {
		e.RecordSpan(tr.id, sv)
	}
	if lg := tr.t.logger; lg != nil {
		args := make([]any, 0, 6+2*len(sv.Attrs))
		args = append(args, "trace", tr.id, "span", sv.Name)
		if sv.Dur != 0 {
			args = append(args, "dur", sv.Dur)
		}
		for _, a := range sv.Attrs {
			args = append(args, a.Key, a.Value)
		}
		lg.Debug("trace", args...)
	}
}

func (tr *Trace) view() TraceView {
	tr.mu.Lock()
	spans := append([]SpanView(nil), tr.spans...)
	v := TraceView{ID: tr.id, Start: tr.start}
	tr.mu.Unlock()
	// Chronological order: recorders across a deployment append out of order
	// (a phase span lands at phase end, after the events inside it).
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].At.Before(spans[j].At) })
	v.Spans = spans
	return v
}
