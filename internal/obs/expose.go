package obs

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE headers, one sample
// line per series, histogram buckets cumulative with the canonical
// _bucket/_sum/_count suffixes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WriteFamiliesText(w, r.ExportSnapshot())
}

// WriteFamiliesText renders family value snapshots in the Prometheus text
// format. It is the single renderer behind both a node's own /metrics and
// the collector's federated endpoint, so the two expositions cannot drift.
func WriteFamiliesText(w io.Writer, fams []ExportFamily) error {
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, s := range f.Series {
			writeSeries(bw, f.Name, f.Kind, s)
		}
	}
	return bw.Flush()
}

func writeSeries(w *bufio.Writer, name, kind string, s ExportSeries) {
	switch kind {
	case "counter":
		w.WriteString(name)
		writeLabels(w, s.Labels, "", 0)
		w.WriteByte(' ')
		w.WriteString(strconv.FormatUint(s.Counter, 10))
		w.WriteByte('\n')
	case "gauge":
		w.WriteString(name)
		writeLabels(w, s.Labels, "", 0)
		w.WriteByte(' ')
		w.WriteString(formatFloat(s.Gauge))
		w.WriteByte('\n')
	case "histogram":
		if len(s.Buckets) != len(s.Bounds)+1 {
			return // malformed snapshot (hostile packet); skip the series
		}
		cum := uint64(0)
		for i, b := range s.Bounds {
			cum += s.Buckets[i]
			w.WriteString(name)
			w.WriteString("_bucket")
			writeLabels(w, s.Labels, "le", b)
			w.WriteByte(' ')
			w.WriteString(strconv.FormatUint(cum, 10))
			w.WriteByte('\n')
		}
		cum += s.Buckets[len(s.Buckets)-1]
		w.WriteString(name)
		w.WriteString("_bucket")
		writeLabels(w, s.Labels, "le", math.Inf(1))
		w.WriteByte(' ')
		w.WriteString(strconv.FormatUint(cum, 10))
		w.WriteByte('\n')
		w.WriteString(name)
		w.WriteString("_sum")
		writeLabels(w, s.Labels, "", 0)
		w.WriteByte(' ')
		w.WriteString(formatFloat(s.Sum))
		w.WriteByte('\n')
		w.WriteString(name)
		w.WriteString("_count")
		writeLabels(w, s.Labels, "", 0)
		w.WriteByte(' ')
		w.WriteString(strconv.FormatUint(s.Count, 10))
		w.WriteByte('\n')
	}
}

// writeLabels renders {k="v",...}; leKey, when non-empty, appends the
// histogram le bound as the final label.
func writeLabels(w *bufio.Writer, labels []Label, leKey string, le float64) {
	if len(labels) == 0 && leKey == "" {
		return
	}
	w.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(l.Key)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(l.Value))
		w.WriteByte('"')
	}
	if leKey != "" {
		if len(labels) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(leKey)
		w.WriteString(`="`)
		w.WriteString(formatFloat(le))
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// Handler returns the /metrics HTTP handler for this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// NewMux assembles the telemetry endpoint set: /metrics (Prometheus text),
// /healthz (JSON liveness), /debug/traces (recent discovery traces, when a
// tracer is supplied) and the net/http/pprof handlers under /debug/pprof/.
func NewMux(reg *Registry, tracer *Tracer) *http.ServeMux {
	return NewMuxWith(reg, tracer, nil)
}

// NewMuxWith is NewMux plus extra pattern → handler mounts (e.g. the
// obs/profile capturer's /profiles endpoints). Extra mounts must not collide
// with the built-in telemetry patterns.
func NewMuxWith(reg *Registry, tracer *Tracer, extra map[string]http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","goroutines":%d}`+"\n", runtime.NumGoroutine())
	})
	if tracer != nil {
		mux.Handle("/debug/traces", tracer.Handler())
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, h := range extra {
		mux.Handle(pattern, h)
	}
	return mux
}

// Server is a running telemetry HTTP endpoint.
type Server struct {
	lis  net.Listener
	http *http.Server
	done chan struct{} // closed when the serve goroutine exits
}

// Serve binds addr (host:port; port 0 picks a free one) and serves the
// telemetry mux on it in a background goroutine.
func Serve(addr string, reg *Registry, tracer *Tracer) (*Server, error) {
	return ServeWith(addr, reg, tracer, nil)
}

// ServeWith is Serve with extra mounts on the telemetry mux (see NewMuxWith).
func ServeWith(addr string, reg *Registry, tracer *Tracer, extra map[string]http.Handler) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: telemetry listen %s: %w", addr, err)
	}
	s := &Server{lis: lis, http: &http.Server{Handler: NewMuxWith(reg, tracer, extra)}, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		_ = s.http.Serve(lis)
	}()
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Shutdown stops the server gracefully: the listener closes immediately,
// in-flight requests get until ctx's deadline to finish, and the serve
// goroutine is waited for so a clean process exit leaks nothing.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.http.Shutdown(ctx)
	select {
	case <-s.done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

// Close stops the server immediately, abandoning in-flight requests.
func (s *Server) Close() error {
	err := s.http.Close()
	<-s.done
	return err
}
