package obs

import (
	"fmt"
	"sync"
	"testing"
)

func snapshotByTopic(t *FlowTable) map[string]FlowSnapshot {
	out := make(map[string]FlowSnapshot)
	for _, s := range t.Snapshot() {
		out[s.Topic] = s
	}
	return out
}

func TestFlowTableNilSafe(t *testing.T) {
	var ft *FlowTable
	if e := ft.Published("a", 10); e != nil {
		t.Fatal("nil table returned an entry")
	}
	if s := ft.Snapshot(); s != nil {
		t.Fatalf("nil table snapshot = %v", s)
	}
	var e *FlowEntry
	e.Delivered(5)          // must not panic
	e.Dropped(DropConnDown) // must not panic
}

func TestFlowTableAccounting(t *testing.T) {
	ft := NewFlowTable(8)
	for i := 0; i < 5; i++ {
		e := ft.Published("sensors/temp", 100)
		e.Delivered(100)
	}
	e := ft.Published("sensors/humidity", 40)
	e.Dropped(DropQueueFull)
	e.DroppedN(DropConnDown, 2)

	snaps := ft.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("snapshot has %d rows, want 2: %+v", len(snaps), snaps)
	}
	// Sorted by published count descending.
	if snaps[0].Topic != "sensors/temp" || snaps[1].Topic != "sensors/humidity" {
		t.Fatalf("order = %s, %s", snaps[0].Topic, snaps[1].Topic)
	}
	temp := snaps[0]
	if temp.PubMsgs != 5 || temp.PubBytes != 500 || temp.DelMsgs != 5 || temp.DelBytes != 500 {
		t.Fatalf("temp accounting: %+v", temp)
	}
	hum := snaps[1]
	if hum.PubMsgs != 1 || hum.DropQueue != 1 || hum.DropConn != 2 || hum.DropMsgs != 3 {
		t.Fatalf("humidity accounting: %+v", hum)
	}
	if temp.ErrBound != 0 || hum.ErrBound != 0 {
		t.Fatal("entries inserted below capacity carry an error bound")
	}
}

// TestFlowTableEvictionInheritsErrBound walks the space-saving replacement:
// at capacity, a new topic evicts the current minimum, inherits its count as
// the starting point and error bound, and the evicted topic's delivered and
// dropped tallies fold into <other> so node totals stay exact.
func TestFlowTableEvictionInheritsErrBound(t *testing.T) {
	ft := NewFlowTable(2)
	for i := 0; i < 7; i++ {
		ft.Published("heavy", 10)
	}
	small := ft.Published("small", 10)
	ft.Published("small", 10)
	ft.Published("small", 10) // small: count 3
	small.Delivered(10)
	small.Dropped(DropQueueFull)

	// Table full; a third topic must replace the minimum (small, count 3).
	ft.Published("newcomer", 10)

	byTopic := snapshotByTopic(ft)
	if _, ok := byTopic["small"]; ok {
		t.Fatalf("minimum entry survived eviction: %+v", byTopic)
	}
	nc, ok := byTopic["newcomer"]
	if !ok {
		t.Fatalf("newcomer not tracked: %+v", byTopic)
	}
	// Space-saving: count = evicted minimum + 1, errBound = evicted minimum.
	if nc.PubMsgs != 4 || nc.ErrBound != 3 {
		t.Fatalf("newcomer count=%d errBound=%d, want 4/3", nc.PubMsgs, nc.ErrBound)
	}
	other, ok := byTopic[FlowOther]
	if !ok {
		t.Fatalf("no <other> fold after eviction: %+v", byTopic)
	}
	if other.DelMsgs != 1 || other.DropQueue != 1 {
		t.Fatalf("<other> fold = %+v, want the evicted topic's 1 delivered / 1 dropped", other)
	}

	// The evicted entry handle stays safe: frames in flight may still hold
	// it, and its updates must not panic (they are simply lost to snapshots).
	small.Delivered(10)
	small.Dropped(DropConnDown)
}

// TestFlowTableHeavyHitterGuarantee exercises the top-k claim: a topic with
// true frequency above N/K is present in the sketch no matter how much
// one-shot churn competes for slots, and its count error respects errBound.
func TestFlowTableHeavyHitterGuarantee(t *testing.T) {
	const k = 8
	ft := NewFlowTable(k)
	const heavyTrue = 600
	total := 0
	for i := 0; i < heavyTrue; i++ {
		ft.Published("heavy", 1)
		total++
		// Interleave churn: 900 distinct one-shot topics across the run.
		if i%2 == 0 {
			ft.Published(fmt.Sprintf("churn/%d", i), 1)
			total++
		}
		if i%3 == 0 {
			ft.Published(fmt.Sprintf("churn2/%d", i), 1)
			total++
		}
	}
	if heavyTrue <= total/k {
		t.Fatalf("test invariant broken: heavy %d below N/K = %d", heavyTrue, total/k)
	}
	h, ok := snapshotByTopic(ft)["heavy"]
	if !ok {
		t.Fatalf("heavy hitter (freq %d > N/K = %d) evicted", heavyTrue, total/k)
	}
	// count is an overestimate bounded by errBound: true <= count <= true+err.
	if h.PubMsgs < heavyTrue || h.PubMsgs > heavyTrue+h.ErrBound {
		t.Fatalf("heavy count %d outside [%d, %d]", h.PubMsgs, heavyTrue, heavyTrue+h.ErrBound)
	}
}

// TestFlowTableConcurrent hits the lock-free fast path and the copy-on-write
// insert path from many goroutines (run with -race). The topic set fits the
// table, so no evictions occur and every tally must be exact.
func TestFlowTableConcurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 2_000
		topics     = 4
	)
	ft := NewFlowTable(topics)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				topic := fmt.Sprintf("t/%d", (g+i)%topics)
				e := ft.Published(topic, 8)
				e.Delivered(8)
				if i%10 == 0 {
					e.Dropped(DropQueueFull)
				}
			}
		}(g)
	}
	wg.Wait()

	var pub, del, drop uint64
	for _, s := range ft.Snapshot() {
		pub += s.PubMsgs
		del += s.DelMsgs
		drop += s.DropMsgs
	}
	const want = goroutines * perG
	if pub != want || del != want {
		t.Fatalf("published/delivered = %d/%d, want %d each", pub, del, want)
	}
	if wantDrops := uint64(goroutines * perG / 10); drop != wantDrops {
		t.Fatalf("drops = %d, want %d", drop, wantDrops)
	}
}

// TestFlowEntryInvalidDropReasonIgnored: out-of-range reasons are discarded,
// not a panic or a misattributed bucket.
func TestFlowEntryInvalidDropReasonIgnored(t *testing.T) {
	ft := NewFlowTable(2)
	e := ft.Published("a", 1)
	e.Dropped(-1)
	e.Dropped(NumDropReasons)
	e.DroppedN(DropQueueFull, 0)
	if s := snapshotByTopic(ft)["a"]; s.DropMsgs != 0 {
		t.Fatalf("invalid reasons counted: %+v", s)
	}
}

func BenchmarkFlowPublishedHit(b *testing.B) {
	ft := NewFlowTable(DefaultFlowK)
	ft.Published("bench/topic", 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ft.Published("bench/topic", 256).Delivered(256)
	}
}
