package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// The runtime-telemetry exposition surface is an interface dashboards and the
// collector's health rules depend on: family names and kinds must not drift.
func TestRuntimeFamiliesStable(t *testing.T) {
	reg := NewRegistry()
	RegisterProcessMetrics(reg)

	var sb strings.Builder
	if err := WriteFamiliesText(&sb, reg.ExportSnapshot()); err != nil {
		t.Fatalf("WriteFamiliesText: %v", err)
	}
	text := sb.String()

	wantTypes := map[string]string{
		"narada_build_info":                    "gauge",
		"narada_process_uptime_seconds":        "gauge",
		"narada_process_goroutines":            "gauge",
		"narada_process_heap_inuse_bytes":      "gauge",
		"narada_process_gc_cycles_total":       "gauge",
		"narada_runtime_heap_live_bytes":       "gauge",
		"narada_runtime_heap_goal_bytes":       "gauge",
		"narada_runtime_gc_cpu_fraction":       "gauge",
		"narada_runtime_gc_pause_seconds":      "gauge",
		"narada_runtime_sched_latency_seconds": "gauge",
	}
	for name, typ := range wantTypes {
		want := "# TYPE " + name + " " + typ + "\n"
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", strings.TrimSpace(want))
		}
	}
	for _, q := range []string{"0.5", "0.9", "0.99"} {
		for _, fam := range []string{"narada_runtime_gc_pause_seconds", "narada_runtime_sched_latency_seconds"} {
			want := fam + `{quantile="` + q + `"}`
			if !strings.Contains(text, want) {
				t.Errorf("exposition missing series %q", want)
			}
		}
	}
}

func TestRuntimeSamplerValues(t *testing.T) {
	s := NewRuntimeSampler(time.Millisecond)
	s.SweepNow()
	s.mu.Lock()
	v := s.vals
	s.mu.Unlock()
	if v.goroutines < 1 {
		t.Errorf("goroutines = %v, want >= 1", v.goroutines)
	}
	if v.heapInuse <= 0 {
		t.Errorf("heapInuse = %v, want > 0", v.heapInuse)
	}
	if v.heapGoal <= 0 {
		t.Errorf("heapGoal = %v, want > 0", v.heapGoal)
	}
	if v.gcCPUFraction < 0 || v.gcCPUFraction > 1 {
		t.Errorf("gcCPUFraction = %v, want in [0,1]", v.gcCPUFraction)
	}

	// Force a GC so cycle count and pause quantiles are live.
	runtime.GC()
	s.SweepNow()
	s.mu.Lock()
	v = s.vals
	s.mu.Unlock()
	if v.gcCycles < 1 {
		t.Errorf("gcCycles = %v after runtime.GC, want >= 1", v.gcCycles)
	}
	if v.gcPauseP99 < v.gcPauseP50 {
		t.Errorf("pause p99 %v < p50 %v", v.gcPauseP99, v.gcPauseP50)
	}
	if v.schedLatP99 < v.schedLatP50 {
		t.Errorf("sched p99 %v < p50 %v", v.schedLatP99, v.schedLatP50)
	}
}

// The interval gate must make back-to-back gauge reads share one sweep: a
// scrape touching a dozen families should cost one metrics.Read, not twelve.
func TestRuntimeSamplerCachesWithinInterval(t *testing.T) {
	s := NewRuntimeSampler(time.Hour)
	base := time.Unix(1000, 0)
	s.now = func() time.Time { return base }
	s.refresh()
	first := s.last
	if first.IsZero() {
		t.Fatal("first refresh did not sweep")
	}
	base = base.Add(time.Minute) // < minInterval
	s.refresh()
	if !s.last.Equal(first) {
		t.Error("refresh within minInterval re-swept")
	}
	base = base.Add(2 * time.Hour) // > minInterval
	s.refresh()
	if s.last.Equal(first) {
		t.Error("refresh past minInterval did not re-sweep")
	}
}

// The sweep hot path must be allocation-free in steady state: metrics.Read
// reuses the sample slice's histogram buffers once they exist.
func TestRuntimeSamplerSweepZeroAlloc(t *testing.T) {
	s := NewRuntimeSampler(time.Millisecond)
	s.SweepNow() // warm-up: first sweep allocates the histogram buffers
	s.SweepNow()
	allocs := testing.AllocsPerRun(100, func() { s.SweepNow() })
	if allocs != 0 {
		t.Errorf("sweep allocates %v per run, want 0", allocs)
	}
}

func BenchmarkRuntimeSamplerSweep(b *testing.B) {
	s := NewRuntimeSampler(time.Millisecond)
	s.SweepNow()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SweepNow()
	}
}
