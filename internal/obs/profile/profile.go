// Package profile is a dependency-free continuous profiler: a Capturer takes
// periodic low-overhead CPU/heap/goroutine (and opt-in mutex/block) profiles
// of its own process, keeps them in a bounded in-memory ring, and serves
// them over the node's telemetry mux so the fabric collector can pull them.
// Heap, goroutine, mutex and block captures use the legacy debug=1 text
// format — parseable by the dep-free diff in this package and still accepted
// by `go tool pprof`; CPU captures are the binary proto format.
package profile

import (
	"bytes"
	"fmt"
	"log/slog"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"narada/internal/obs"
)

// Kind names one profile type.
type Kind string

const (
	KindCPU       Kind = "cpu"
	KindHeap      Kind = "heap"
	KindGoroutine Kind = "goroutine"
	KindMutex     Kind = "mutex"
	KindBlock     Kind = "block"
)

// Capture is one stored profile. Listings carry metadata only (Data nil);
// Get returns the bytes.
type Capture struct {
	ID      string    `json:"id"`
	Kind    Kind      `json:"kind"`
	Trigger string    `json:"trigger"` // "periodic", "manual", "flight:<rule>", ...
	At      time.Time `json:"at"`
	Size    int       `json:"size"`
	Data    []byte    `json:"-"`
}

// Config parameterises a Capturer. The zero value is usable: manual captures
// only, default bounds.
type Config struct {
	// Interval between periodic capture rounds; 0 disables the loop
	// (CaptureNow still works — the collector's flight recorder and the
	// /profiles handler are manual paths).
	Interval time.Duration
	// CPUDuration is how long each CPU capture samples. Defaulted to 1s and
	// clamped to a quarter of Interval so the profiler's own duty cycle
	// stays bounded no matter how aggressive the configuration.
	CPUDuration time.Duration
	// MaxCaptureBytes drops any single capture larger than this
	// (default 4 MiB) — a truncated pprof profile is garbage, so oversized
	// captures are discarded whole, not clipped.
	MaxCaptureBytes int
	// MaxCaptures bounds the ring (default 64, oldest evicted).
	MaxCaptures int
	// Mutex / Block include contention profiles in periodic rounds. They
	// only carry data when runtime.SetMutexProfileFraction /
	// runtime.SetBlockProfileRate are enabled (the cmd flags).
	Mutex, Block bool
	Logger       *slog.Logger
}

// Capturer takes and retains profiles of its own process.
type Capturer struct {
	cfg Config

	mu   sync.Mutex
	ring []Capture // oldest first
	seq  uint64

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// New returns a Capturer; call Start to run the periodic loop.
func New(cfg Config) *Capturer {
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = time.Second
	}
	if cfg.Interval > 0 && cfg.CPUDuration > cfg.Interval/4 {
		cfg.CPUDuration = cfg.Interval / 4
	}
	if cfg.MaxCaptureBytes <= 0 {
		cfg.MaxCaptureBytes = 4 << 20
	}
	if cfg.MaxCaptures <= 0 {
		cfg.MaxCaptures = 64
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Nop()
	}
	return &Capturer{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
}

// Start launches the periodic capture loop (no-op when Interval is 0).
func (c *Capturer) Start() {
	if c.cfg.Interval <= 0 {
		close(c.done)
		return
	}
	go c.loop()
}

func (c *Capturer) loop() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			kinds := []Kind{KindCPU, KindHeap, KindGoroutine}
			if c.cfg.Mutex {
				kinds = append(kinds, KindMutex)
			}
			if c.cfg.Block {
				kinds = append(kinds, KindBlock)
			}
			if _, err := c.CaptureNow("periodic", kinds...); err != nil {
				c.cfg.Logger.Warn("profile: periodic capture", "err", err)
			}
		case <-c.stop:
			return
		}
	}
}

// Close stops the periodic loop. Retained captures stay readable.
func (c *Capturer) Close() error {
	c.once.Do(func() { close(c.stop) })
	<-c.done
	return nil
}

// CaptureNow takes the requested profile kinds immediately (all errors are
// joined; kinds that succeed are stored regardless). A CPU capture blocks
// for CPUDuration; an error from a concurrently running CPU profile (e.g. a
// /debug/pprof/profile scrape in flight) is reported, not fatal.
func (c *Capturer) CaptureNow(trigger string, kinds ...Kind) ([]Capture, error) {
	var out []Capture
	var firstErr error
	for _, k := range kinds {
		data, err := c.capture(k)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", k, err)
			}
			continue
		}
		if len(data) > c.cfg.MaxCaptureBytes {
			c.cfg.Logger.Warn("profile: capture over size bound, dropped",
				"kind", string(k), "size", len(data), "max", c.cfg.MaxCaptureBytes)
			continue
		}
		out = append(out, c.store(k, trigger, data))
	}
	return out, firstErr
}

func (c *Capturer) capture(k Kind) ([]byte, error) {
	switch k {
	case KindCPU:
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err != nil {
			return nil, err
		}
		select {
		case <-time.After(c.cfg.CPUDuration):
		case <-c.stop:
		}
		pprof.StopCPUProfile()
		return buf.Bytes(), nil
	case KindHeap, KindGoroutine, KindMutex, KindBlock:
		p := pprof.Lookup(string(k))
		if p == nil {
			return nil, fmt.Errorf("unknown profile %q", k)
		}
		var buf bytes.Buffer
		// debug=1: legacy text format, diffable without the proto decoder.
		if err := p.WriteTo(&buf, 1); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	default:
		return nil, fmt.Errorf("unknown profile kind %q", k)
	}
}

func (c *Capturer) store(k Kind, trigger string, data []byte) Capture {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	cp := Capture{
		ID:      fmt.Sprintf("p%06d-%s", c.seq, k),
		Kind:    k,
		Trigger: trigger,
		At:      time.Now(),
		Size:    len(data),
		Data:    data,
	}
	c.ring = append(c.ring, cp)
	if over := len(c.ring) - c.cfg.MaxCaptures; over > 0 {
		c.ring = append(c.ring[:0], c.ring[over:]...)
	}
	return cp
}

// List returns capture metadata (Data stripped), newest first, filtered to
// captures taken strictly after since (zero = all).
func (c *Capturer) List(since time.Time) []Capture {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Capture, 0, len(c.ring))
	for _, cp := range c.ring {
		if !since.IsZero() && !cp.At.After(since) {
			continue
		}
		cp.Data = nil
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At.After(out[j].At) })
	return out
}

// Get returns the capture with its bytes.
func (c *Capturer) Get(id string) (Capture, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cp := range c.ring {
		if cp.ID == id {
			return cp, true
		}
	}
	return Capture{}, false
}
