package profile

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// leakForTest blocks goroutines on a channel so a goroutine capture has a
// recognisable non-runtime anchor frame.
func leakForTest(n int, release chan struct{}, started *sync.WaitGroup) {
	for i := 0; i < n; i++ {
		started.Add(1)
		go func() {
			started.Done()
			<-release
		}()
	}
}

func TestCaptureGoroutineAndParse(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var started sync.WaitGroup
	leakForTest(25, release, &started)
	started.Wait()

	c := New(Config{})
	caps, err := c.CaptureNow("manual", KindGoroutine)
	if err != nil {
		t.Fatalf("CaptureNow: %v", err)
	}
	if len(caps) != 1 || caps[0].Kind != KindGoroutine {
		t.Fatalf("caps = %+v", caps)
	}
	got, ok := c.Get(caps[0].ID)
	if !ok {
		t.Fatal("Get: capture vanished")
	}
	if !strings.Contains(string(got.Data), "leakForTest") {
		t.Error("raw capture does not mention the leaked frame")
	}

	s, err := ParseText(got.Data)
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if s.Kind != "goroutine" || s.Total < 25 {
		t.Errorf("summary kind=%s total=%d, want goroutine >= 25", s.Kind, s.Total)
	}
	var leakSite *Site
	for i := range s.Sites {
		if strings.Contains(s.Sites[i].Name, "leakForTest") {
			leakSite = &s.Sites[i]
		}
	}
	if leakSite == nil {
		t.Fatalf("no site mentions leakForTest; sites: %+v", s.Sites)
	}
	if leakSite.Count < 25 {
		t.Errorf("leak site count = %d, want >= 25", leakSite.Count)
	}
}

func TestCaptureHeapAndParse(t *testing.T) {
	c := New(Config{})
	caps, err := c.CaptureNow("manual", KindHeap)
	if err != nil {
		t.Fatalf("CaptureNow: %v", err)
	}
	s, err := ParseText(caps[0].Data)
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if s.Kind != "heap" {
		t.Errorf("kind = %s, want heap", s.Kind)
	}
}

func TestRingBound(t *testing.T) {
	c := New(Config{MaxCaptures: 3})
	for i := 0; i < 5; i++ {
		if _, err := c.CaptureNow("manual", KindGoroutine); err != nil {
			t.Fatalf("CaptureNow: %v", err)
		}
	}
	list := c.List(time.Time{})
	if len(list) != 3 {
		t.Fatalf("retained %d captures, want 3", len(list))
	}
	// Oldest evicted: the first two IDs are gone.
	if _, ok := c.Get("p000001-goroutine"); ok {
		t.Error("oldest capture not evicted")
	}
	if _, ok := c.Get(list[0].ID); !ok {
		t.Error("newest capture not retrievable")
	}
}

func TestOversizedCaptureDropped(t *testing.T) {
	c := New(Config{MaxCaptureBytes: 1})
	caps, err := c.CaptureNow("manual", KindGoroutine)
	if err != nil {
		t.Fatalf("CaptureNow: %v", err)
	}
	if len(caps) != 0 {
		t.Fatalf("oversized capture stored: %+v", caps)
	}
}

// leakForDiffTest is a second, distinct anchor frame so TestGoroutineDiff's
// baseline is not polluted by still-draining goroutines from other tests.
func leakForDiffTest(n int, release chan struct{}, started *sync.WaitGroup) {
	for i := 0; i < n; i++ {
		started.Add(1)
		go func() {
			started.Done()
			<-release
		}()
	}
}

func TestGoroutineDiff(t *testing.T) {
	c := New(Config{})
	before, err := c.CaptureNow("manual", KindGoroutine)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	defer close(release)
	var started sync.WaitGroup
	leakForDiffTest(40, release, &started)
	started.Wait()
	after, err := c.CaptureNow("manual", KindGoroutine)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ParseText(before[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseText(after[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	var leak *Delta
	for _, d := range Diff(a, b) {
		if strings.Contains(d.Name, "leakForDiffTest") {
			leak = &d
			break
		}
	}
	if leak == nil || leak.Count < 35 {
		t.Fatalf("diff did not surface the leak: %+v", leak)
	}
	var sb strings.Builder
	WriteDiff(&sb, a, b, 10)
	if !strings.Contains(sb.String(), "leakForDiffTest") {
		t.Errorf("WriteDiff output misses leak site:\n%s", sb.String())
	}
}

func TestHandlerListGetAndTop(t *testing.T) {
	c := New(Config{})
	if _, err := c.CaptureNow("periodic", KindGoroutine, KindHeap); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/profiles")
	if err != nil {
		t.Fatal(err)
	}
	var list []Capture
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("list decode: %v", err)
	}
	resp.Body.Close()
	if len(list) != 2 {
		t.Fatalf("listed %d captures, want 2", len(list))
	}

	resp, err = srv.Client().Get(srv.URL + "/profiles/" + list[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("get capture: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = srv.Client().Get(srv.URL + "/profiles/" + list[0].ID + "?view=top")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("top view: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = srv.Client().Get(srv.URL + "/profiles/nope")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 {
		t.Fatalf("missing capture: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestPeriodicLoopCaptures(t *testing.T) {
	c := New(Config{Interval: 30 * time.Millisecond, CPUDuration: 5 * time.Millisecond})
	c.Start()
	defer c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(c.List(time.Time{})) >= 3 {
			byKind := map[Kind]bool{}
			for _, cp := range c.List(time.Time{}) {
				byKind[cp.Kind] = true
				if cp.Trigger != "periodic" {
					t.Fatalf("unexpected trigger %q", cp.Trigger)
				}
			}
			if !byKind[KindCPU] || !byKind[KindHeap] || !byKind[KindGoroutine] {
				t.Fatalf("kinds captured: %v", byKind)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("periodic loop produced no captures in 5s")
}
