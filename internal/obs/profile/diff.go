package profile

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Summary is the site-aggregated view of a parsed text-mode (debug=1)
// goroutine or heap profile: just enough structure to rank hot sites and
// diff two captures without the pprof proto decoder.
type Summary struct {
	Kind  string // "goroutine" or "heap"
	Total int64  // goroutines, or in-use heap bytes
	Sites []Site // sorted hottest first
}

// Site is one aggregation bucket: all stacks sharing the same anchor frame
// (the first non-runtime frame, where the code under suspicion lives).
type Site struct {
	Name  string `json:"name"`
	Count int64  `json:"count"` // goroutines, or in-use objects
	Bytes int64  `json:"bytes"` // heap only
}

// Delta is one site's change between two summaries (b − a).
type Delta struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	Bytes int64  `json:"bytes"`
}

// ParseText parses a legacy text-format (debug=1) goroutine or heap profile.
// The format is detected from the header line; other profile kinds (cpu is
// binary proto, mutex/block have their own text shape) return an error.
func ParseText(data []byte) (*Summary, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("profile: empty input")
	}
	header := sc.Text()
	switch {
	case strings.HasPrefix(header, "goroutine profile: total "):
		total, err := strconv.ParseInt(strings.TrimPrefix(header, "goroutine profile: total "), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("profile: goroutine header: %w", err)
		}
		return parseRecords(sc, "goroutine", total, parseGoroutineRecord)
	case strings.HasPrefix(header, "heap profile: "):
		s, err := parseRecords(sc, "heap", 0, parseHeapRecord)
		if err != nil {
			return nil, err
		}
		for _, site := range s.Sites {
			s.Total += site.Bytes
		}
		return s, nil
	}
	return nil, fmt.Errorf("profile: unsupported text profile header %q", firstLine(header))
}

func firstLine(s string) string {
	if len(s) > 80 {
		return s[:80] + "…"
	}
	return s
}

// parseGoroutineRecord parses "N @ 0x... 0x..." → count N.
func parseGoroutineRecord(line string) (count, bytes int64, ok bool) {
	head, _, found := strings.Cut(line, " @ ")
	if !found {
		return 0, 0, false
	}
	n, err := strconv.ParseInt(strings.TrimSpace(head), 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return n, 0, true
}

// parseHeapRecord parses "objs: bytes [allocObjs: allocBytes] @ 0x..." →
// in-use objects and bytes.
func parseHeapRecord(line string) (count, bytes int64, ok bool) {
	head, _, found := strings.Cut(line, " @ ")
	if !found {
		return 0, 0, false
	}
	objsStr, rest, found := strings.Cut(head, ": ")
	if !found {
		return 0, 0, false
	}
	bytesStr, _, _ := strings.Cut(rest, " [")
	objs, err1 := strconv.ParseInt(strings.TrimSpace(objsStr), 10, 64)
	b, err2 := strconv.ParseInt(strings.TrimSpace(bytesStr), 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return objs, b, true
}

// parseRecords walks "<weights> @ addrs" records, each followed by
// "#\t0xADDR\tfunc+off\tfile:line" frame lines, aggregating by the first
// non-runtime frame. The heap profile's trailing "# MemStats" commentary
// (plain "# Key = Value" lines, no 0x frame address) is ignored.
func parseRecords(sc *bufio.Scanner, kind string, total int64, parse func(string) (int64, int64, bool)) (*Summary, error) {
	agg := map[string]*Site{}
	var cur *Site // site of the record whose frames we are reading
	var anchored bool
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "#"):
			if cur == nil || anchored {
				continue
			}
			fn, ok := frameFunc(line)
			if !ok {
				continue
			}
			if strings.HasPrefix(fn, "runtime.") {
				continue // park/wait plumbing; anchor on the code that blocked
			}
			anchored = true
			site := agg[fn]
			if site == nil {
				site = &Site{Name: fn}
				agg[fn] = site
			}
			site.Count += cur.Count
			site.Bytes += cur.Bytes
			cur = nil
		case strings.TrimSpace(line) == "":
			finishRecord(agg, cur, anchored)
			cur, anchored = nil, false
		default:
			finishRecord(agg, cur, anchored)
			cur, anchored = nil, false
			if c, b, ok := parse(line); ok {
				cur = &Site{Count: c, Bytes: b}
			}
		}
	}
	finishRecord(agg, cur, anchored)
	if err := sc.Err(); err != nil {
		return nil, err
	}
	s := &Summary{Kind: kind, Total: total, Sites: make([]Site, 0, len(agg))}
	for _, site := range agg {
		s.Sites = append(s.Sites, *site)
	}
	sortSites(s.Sites)
	return s, nil
}

// finishRecord flushes a record whose stack was all runtime frames (or had
// no frames at all) into the catch-all site.
func finishRecord(agg map[string]*Site, cur *Site, anchored bool) {
	if cur == nil || anchored {
		return
	}
	site := agg["(runtime)"]
	if site == nil {
		site = &Site{Name: "(runtime)"}
		agg["(runtime)"] = site
	}
	site.Count += cur.Count
	site.Bytes += cur.Bytes
}

// frameFunc extracts the function name from a "#\t0xADDR\tfunc+0xOFF\t..."
// frame line. Non-frame "#" commentary (heap MemStats trailer) returns false.
func frameFunc(line string) (string, bool) {
	fields := strings.Fields(strings.TrimPrefix(line, "#"))
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "0x") {
		return "", false
	}
	fn := fields[1]
	if i := strings.LastIndex(fn, "+0x"); i > 0 {
		fn = fn[:i]
	}
	return fn, true
}

func sortSites(sites []Site) {
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].Bytes != sites[j].Bytes {
			return sites[i].Bytes > sites[j].Bytes
		}
		if sites[i].Count != sites[j].Count {
			return sites[i].Count > sites[j].Count
		}
		return sites[i].Name < sites[j].Name
	})
}

// Diff returns per-site changes b − a, largest growth first. Sites present
// on only one side count as fully added/removed.
func Diff(a, b *Summary) []Delta {
	m := map[string]*Delta{}
	for _, s := range b.Sites {
		m[s.Name] = &Delta{Name: s.Name, Count: s.Count, Bytes: s.Bytes}
	}
	for _, s := range a.Sites {
		d := m[s.Name]
		if d == nil {
			d = &Delta{Name: s.Name}
			m[s.Name] = d
		}
		d.Count -= s.Count
		d.Bytes -= s.Bytes
	}
	out := make([]Delta, 0, len(m))
	for _, d := range m {
		if d.Count == 0 && d.Bytes == 0 {
			continue
		}
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WriteTop renders the n hottest sites of a summary as aligned text.
func WriteTop(w io.Writer, s *Summary, n int) {
	fmt.Fprintf(w, "%s profile: total %d, %d sites\n", s.Kind, s.Total, len(s.Sites))
	for i, site := range s.Sites {
		if n > 0 && i >= n {
			fmt.Fprintf(w, "… %d more sites\n", len(s.Sites)-n)
			break
		}
		if s.Kind == "heap" {
			fmt.Fprintf(w, "%12d B %8d objs  %s\n", site.Bytes, site.Count, site.Name)
		} else {
			fmt.Fprintf(w, "%8d  %s\n", site.Count, site.Name)
		}
	}
}

// WriteDiff renders the top-n site deltas between two summaries.
func WriteDiff(w io.Writer, a, b *Summary, n int) {
	deltas := Diff(a, b)
	fmt.Fprintf(w, "%s diff: total %+d, %d sites changed\n", b.Kind, b.Total-a.Total, len(deltas))
	for i, d := range deltas {
		if n > 0 && i >= n {
			fmt.Fprintf(w, "… %d more sites\n", len(deltas)-n)
			break
		}
		if b.Kind == "heap" {
			fmt.Fprintf(w, "%+12d B %+8d objs  %s\n", d.Bytes, d.Count, d.Name)
		} else {
			fmt.Fprintf(w, "%+8d  %s\n", d.Count, d.Name)
		}
	}
}
