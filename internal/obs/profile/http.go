package profile

import (
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"time"
)

// SetRuntimeRates applies the process-wide mutex and block profiling rates
// the -mutex-profile-fraction / -block-profile-rate flags carry: mutex
// records ~1/fraction contention events, block records blocking events of at
// least rate nanoseconds. Zero leaves the corresponding profiler off (its
// default), so the flags cost nothing unless set.
func SetRuntimeRates(mutexFraction, blockRate int) {
	if mutexFraction > 0 {
		runtime.SetMutexProfileFraction(mutexFraction)
	}
	if blockRate > 0 {
		runtime.SetBlockProfileRate(blockRate)
	}
}

// Mount returns the extra-handler map obs.ServeWith expects, exposing the
// capturer at /profiles on a node's telemetry mux.
func (c *Capturer) Mount() map[string]http.Handler {
	h := c.Handler()
	return map[string]http.Handler{"/profiles": h, "/profiles/": h}
}

// Handler serves the capturer over HTTP, designed to mount at /profiles on
// the node telemetry mux:
//
//	GET /profiles              capture metadata, newest first (JSON)
//	GET /profiles?since=...    only captures after an RFC3339 time or a
//	                           duration-ago ("30s", "5m")
//	GET /profiles/{id}         raw capture bytes (?view=top renders the
//	                           dep-free site summary for text profiles)
//	POST /profiles/capture     take cpu+heap+goroutine profiles now
//	                           (?kinds=heap,goroutine to narrow)
func (c *Capturer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/profiles")
		rest = strings.Trim(rest, "/")
		switch {
		case rest == "":
			c.serveList(w, r)
		case rest == "capture":
			c.serveCapture(w, r)
		default:
			c.serveOne(w, r, rest)
		}
	})
}

func (c *Capturer) serveList(w http.ResponseWriter, r *http.Request) {
	var since time.Time
	if s := r.URL.Query().Get("since"); s != "" {
		t, err := parseWhen(s, time.Now())
		if err != nil {
			http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = t
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(c.List(since))
}

func (c *Capturer) serveCapture(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	kinds := []Kind{KindCPU, KindHeap, KindGoroutine}
	if ks := r.URL.Query().Get("kinds"); ks != "" {
		kinds = kinds[:0]
		for _, k := range strings.Split(ks, ",") {
			if k = strings.TrimSpace(k); k != "" {
				kinds = append(kinds, Kind(k))
			}
		}
	}
	caps, err := c.CaptureNow("manual", kinds...)
	if err != nil && len(caps) == 0 {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	for i := range caps {
		caps[i].Data = nil
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(caps)
}

func (c *Capturer) serveOne(w http.ResponseWriter, r *http.Request, id string) {
	cp, ok := c.Get(id)
	if !ok {
		http.Error(w, "no such capture", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("view") == "top" {
		s, err := ParseText(cp.Data)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteTop(w, s, 30)
		return
	}
	if cp.Kind == KindCPU {
		w.Header().Set("Content-Type", "application/octet-stream")
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.Header().Set("Content-Disposition", `attachment; filename="`+cp.ID+`.pprof"`)
	_, _ = w.Write(cp.Data)
}

// parseWhen accepts an RFC3339 instant or a duration meaning "that long
// ago" — the same grammar the collector's /events endpoint uses.
func parseWhen(s string, now time.Time) (time.Time, error) {
	if d, err := time.ParseDuration(s); err == nil {
		return now.Add(-d), nil
	}
	return time.Parse(time.RFC3339, s)
}
