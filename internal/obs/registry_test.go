package obs

import (
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("narada_test_frames_total", "frames", L("kind", "publish"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same handle.
	if again := r.Counter("narada_test_frames_total", "frames", L("kind", "publish")); again != c {
		t.Fatal("re-registration returned a different handle")
	}
	// Different labels are a different series.
	other := r.Counter("narada_test_frames_total", "frames", L("kind", "control"))
	if other == c {
		t.Fatal("distinct label sets share a handle")
	}
	// Label order does not matter for identity.
	g := r.Gauge("narada_test_depth", "depth", L("a", "1"), L("b", "2"))
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2.0", got)
	}
	if again := r.Gauge("narada_test_depth", "depth", L("b", "2"), L("a", "1")); again != g {
		t.Fatal("label order changed series identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("narada_test_x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name did not panic")
		}
	}()
	r.Gauge("narada_test_x_total", "x")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("narada test", "bad name")
}

// TestRecordPathAllocs is the acceptance-criteria guard: metric recording on
// the publish fast path must not allocate.
func TestRecordPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("narada_test_hot_total", "hot", L("kind", "publish"))
	g := r.Gauge("narada_test_hot_depth", "hot")
	h := r.Histogram("narada_test_hot_seconds", "hot", nil)
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Errorf("Counter.Add allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.017) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.ObserveDuration(3 * time.Millisecond) }); n != 0 {
		t.Errorf("Histogram.ObserveDuration allocates %v/op, want 0", n)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("narada_bench_total", "bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("narada_bench_seconds", "bench", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.042)
		}
	})
}
