package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing, concurrency-safe event counter.
// Handles are obtained from a Registry and retained; Add is one atomic add.
type Counter struct{ n atomic.Uint64 }

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a concurrency-safe instantaneous value (float64 bits in an
// atomic word).
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge value by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// kind discriminates metric families.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// child is one labelled series of a family. Exactly one of the value fields
// is populated, matching the family kind.
type child struct {
	labels    []Label
	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// family is one metric name with its help text, kind and children.
type family struct {
	name    string
	help    string
	kind    kind
	bounds  []float64 // histogram families only
	mu      sync.Mutex
	byKey   map[string]*child
	ordered []*child // insertion order; exposition sorts by label key
}

// Registry is a concurrency-safe collection of metric families. The zero
// value is not usable; construct with NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey serialises a sorted copy of labels into a map key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte('\xff')
		sb.WriteString(l.Value)
		sb.WriteByte('\xfe')
	}
	return sb.String()
}

// sortLabels returns a copy of labels sorted by key (exposition and identity
// are order-independent).
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// familyFor returns the named family, creating it on first use, and panics
// on a kind mismatch — re-registering a name with a different type is a
// programming error that would silently corrupt the exposition otherwise.
func (r *Registry) familyFor(name, help string, k kind, bounds []float64) *family {
	mustValidName("metric", name)
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{name: name, help: help, kind: k, bounds: bounds, byKey: make(map[string]*child)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q already registered as %s, requested %s", name, f.kind, k))
	}
	return f
}

// childFor returns the series for the label set, creating it with mk on
// first use.
func (f *family) childFor(labels []Label, mk func(*child)) *child {
	labels = sortLabels(labels)
	for _, l := range labels {
		mustValidName("label", l.Key)
	}
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.byKey[key]
	if c == nil {
		c = &child{labels: labels}
		mk(c)
		f.byKey[key] = c
		f.ordered = append(f.ordered, c)
	}
	return c
}

// Counter returns the counter series for name + labels, registering the
// family on first use. Calling again with the same name and labels returns
// the same handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.familyFor(name, help, kindCounter, nil)
	c := f.childFor(labels, func(c *child) { c.counter = &Counter{} })
	if c.counter == nil {
		panic(fmt.Sprintf("obs: counter %q series already registered as a function", name))
	}
	return c.counter
}

// CounterFunc registers a counter series whose value is read from fn at
// exposition time — for monotonic totals a subsystem already maintains
// (e.g. dedup cache hit counts).
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	f := r.familyFor(name, help, kindCounter, nil)
	f.childFor(labels, func(c *child) { c.counterFn = fn })
}

// Gauge returns the gauge series for name + labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.familyFor(name, help, kindGauge, nil)
	c := f.childFor(labels, func(c *child) { c.gauge = &Gauge{} })
	if c.gauge == nil {
		panic(fmt.Sprintf("obs: gauge %q series already registered as a function", name))
	}
	return c.gauge
}

// GaugeFunc registers a gauge series whose value is read from fn at
// exposition time (e.g. queue depths, connection counts, clock offsets).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.familyFor(name, help, kindGauge, nil)
	f.childFor(labels, func(c *child) { c.gaugeFn = fn })
}

// Histogram returns the histogram series for name + labels. buckets are the
// ascending upper bounds (the +Inf bucket is implicit); nil uses DefBuckets.
// All series of one family share the bucket layout of the first registration.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.familyFor(name, help, kindHistogram, buckets)
	c := f.childFor(labels, func(c *child) { c.hist = newHistogram(f.bounds) })
	return c.hist
}

// snapshotFamilies returns the families sorted by name, for exposition.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.RLock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// snapshotChildren returns a family's series sorted by label key.
func (f *family) snapshotChildren() []*child {
	f.mu.Lock()
	out := append([]*child(nil), f.ordered...)
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return labelKey(out[i].labels) < labelKey(out[j].labels)
	})
	return out
}
