package obs

import (
	"sync"
	"testing"
)

func TestSamplerNilAndDisabledNeverSample(t *testing.T) {
	var nilSampler *Sampler
	for i := 0; i < 100; i++ {
		if nilSampler.Decide("a/b") {
			t.Fatal("nil sampler sampled")
		}
	}
	if nilSampler.Taken() != 0 || nilSampler.Seen() != 0 {
		t.Fatalf("nil sampler counted: taken=%d seen=%d", nilSampler.Taken(), nilSampler.Seen())
	}
	off := NewSampler(0, 10)
	for i := 0; i < 100; i++ {
		if off.Decide("a/b") {
			t.Fatal("every=0 sampler sampled")
		}
	}
	if off.Taken() != 0 {
		t.Fatalf("every=0 sampler took %d", off.Taken())
	}
}

func TestSamplerOneInN(t *testing.T) {
	s := NewSampler(4, 0)
	taken := 0
	for i := 0; i < 400; i++ {
		if s.Decide("topic") {
			taken++
		}
	}
	if taken != 100 {
		t.Fatalf("1-in-4 over 400 publishes took %d, want 100", taken)
	}
	if s.Seen() != 400 || s.Taken() != 100 {
		t.Fatalf("counters seen=%d taken=%d, want 400/100", s.Seen(), s.Taken())
	}
}

// TestSamplerPerTopicRateLimit floods one topic with every=1 and a small
// per-topic cap: decisions must be bounded by the cap per one-second window.
// The loop finishes in well under a second, so at most two windows (a
// boundary crossing) can be touched.
func TestSamplerPerTopicRateLimit(t *testing.T) {
	const limit = 5
	s := NewSampler(1, limit)
	taken := 0
	for i := 0; i < 10_000; i++ {
		if s.Decide("hot/topic") {
			taken++
		}
	}
	if taken == 0 {
		t.Fatal("rate limit starved the topic entirely")
	}
	if taken > 2*limit {
		t.Fatalf("took %d decisions, cap is %d/s (max 2 windows => %d)", taken, limit, 2*limit)
	}
}

// TestSamplerConcurrentRateLimit hammers the limiter from many goroutines
// (run with -race): the grant count must stay near the per-second cap, with
// slack only for the window-reset race the implementation documents.
func TestSamplerConcurrentRateLimit(t *testing.T) {
	const (
		limit      = 50
		goroutines = 8
		perG       = 5_000
	)
	s := NewSampler(1, limit)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Decide("storm/topic")
			}
		}()
	}
	wg.Wait()
	if s.Seen() != goroutines*perG {
		t.Fatalf("seen = %d, want %d", s.Seen(), goroutines*perG)
	}
	// Two windows at most, plus per-goroutine slack for resets racing Add.
	if max := uint64(2*limit + goroutines); s.Taken() > max {
		t.Fatalf("took %d decisions under concurrency, want <= %d", s.Taken(), max)
	}
	if s.Taken() == 0 {
		t.Fatal("concurrent limiter granted nothing")
	}
}

// TestSamplerDistinctTopicsGetOwnBudget checks the per-topic window is keyed
// by topic hash: two (non-colliding) topics each get their own allowance.
func TestSamplerDistinctTopicsGetOwnBudget(t *testing.T) {
	const limit = 3
	s := NewSampler(1, limit)
	perTopic := map[string]int{}
	for i := 0; i < 100; i++ {
		for _, topic := range []string{"alpha", "beta"} {
			if s.Decide(topic) {
				perTopic[topic]++
			}
		}
	}
	for _, topic := range []string{"alpha", "beta"} {
		if perTopic[topic] == 0 {
			t.Fatalf("topic %s starved: %v", topic, perTopic)
		}
		if perTopic[topic] > 2*limit {
			t.Fatalf("topic %s took %d, cap %d/s", topic, perTopic[topic], limit)
		}
	}
}

// TestSamplerUnsampledPathAllocFree pins the satellite guarantee: the common
// (not chosen) decision is allocation-free.
func TestSamplerUnsampledPathAllocFree(t *testing.T) {
	s := NewSampler(1<<62, 100) // effectively never fires
	if allocs := testing.AllocsPerRun(1000, func() {
		if s.Decide("some/topic/name") {
			t.Fatal("sampler unexpectedly fired")
		}
	}); allocs != 0 {
		t.Fatalf("unsampled Decide allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkSamplerDecideUnsampled(b *testing.B) {
	s := NewSampler(1<<62, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Decide("bench/topic")
	}
}

func BenchmarkSamplerDecideParallel(b *testing.B) {
	s := NewSampler(1024, 100)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s.Decide("bench/topic")
		}
	})
}
