package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value onto a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds the fabric's shared text logger at the given level.
// Component identity (broker/BDN logical address) is attached by the
// component constructors via Logger.With, so every record carries it.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// Nop returns a logger that discards everything — the default for embedded
// components constructed without an explicit logger.
func Nop() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
