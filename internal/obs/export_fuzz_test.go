package obs

import (
	"testing"
	"time"

	"narada/internal/wire"
)

// corruptCases builds a set of malformed export datagrams alongside the valid
// frames they were derived from. Shared by the table test and the fuzz seed
// corpus.
func corruptCases() map[string][]byte {
	spanFrame := EncodeSpanPacket("n1", 5*time.Millisecond, sampleSpans())
	metricFrames := EncodeMetricsPackets("n1", 0, time.Unix(1120176060, 0), 3, sampleFamilies(), 0)

	truncated := append([]byte(nil), metricFrames[0]...)
	truncated = truncated[:len(truncated)/2]

	badMagic := append([]byte(nil), spanFrame...)
	badMagic[0] = 0x42

	badVersion := append([]byte(nil), spanFrame...)
	badVersion[1] = 0x7f

	// Header claiming 2^40 spans follow: must be rejected by the list bound,
	// not trusted as an allocation size.
	w := wire.GetWriter(64)
	w.Byte(0xb8)
	w.Byte(2)
	w.Byte(1) // packetSpans
	w.String("n1")
	w.Duration(0)
	w.Uvarint(1 << 40)
	hugeSpans := w.Detach()
	w.Release()

	// Metrics packet whose histogram series claims 2^30 buckets.
	w = wire.GetWriter(128)
	w.Byte(0xb8)
	w.Byte(2)
	w.Byte(2) // packetMetrics
	w.String("n1")
	w.Duration(0)
	w.Time(time.Unix(0, 0))
	w.Uvarint(1)       // seq
	w.Uvarint(1)       // one family
	w.String("m")      // name
	w.String("")       // help
	w.Byte(2)          // histogram
	w.Uvarint(1)       // one series
	w.Uvarint(0)       // no labels
	w.Uvarint(1 << 30) // bucket bound count
	hugeBuckets := w.Detach()
	w.Release()

	// Event packet claiming 2^32 events: rejected by the list bound.
	w = wire.GetWriter(64)
	w.Byte(0xb8)
	w.Byte(4)
	w.Byte(4) // packetEvents
	w.String("n1")
	w.Duration(0)
	w.Time(time.Unix(0, 0))
	w.Uvarint(1 << 32)
	hugeEvents := w.Detach()
	w.Release()

	// Valid event frame cut mid-entry: the reader's error must fail the
	// whole packet rather than yield a half-decoded event.
	eventFrame := EncodeEventsPacket("n1", 5*time.Millisecond, time.Unix(1120176060, 0), sampleEvents())
	truncatedEvents := append([]byte(nil), eventFrame...)
	truncatedEvents = truncatedEvents[:len(truncatedEvents)-7]

	// Node-info frame cut mid-address string (wire v5).
	infoFrame := EncodeNodeInfoPacket("n1", 5*time.Millisecond, time.Unix(1120176060, 0), "127.0.0.1:9411", true)
	truncatedInfo := append([]byte(nil), infoFrame...)
	truncatedInfo = truncatedInfo[:len(truncatedInfo)-5]

	return map[string][]byte{
		"truncated chunk":     truncated,
		"bad magic":           badMagic,
		"bad version":         badVersion,
		"oversized spans":     hugeSpans,
		"oversized buckets":   hugeBuckets,
		"oversized events":    hugeEvents,
		"truncated events":    truncatedEvents,
		"truncated node-info": truncatedInfo,
		"empty":               {},
		"header only":         spanFrame[:3],
	}
}

// TestDecodeCorruptExportPackets asserts every corruption is rejected with an
// error — no panic, no partially-trusted result.
func TestDecodeCorruptExportPackets(t *testing.T) {
	for name, frame := range corruptCases() {
		if pkt, err := DecodeExportPacket(frame); err == nil {
			t.Errorf("%s: decoded without error: %+v", name, pkt)
		}
	}
}

// FuzzDecodeExportPacket hammers the varint decoder with mutated frames. The
// invariant is totality: any byte string either decodes into a bounded packet
// or errors — never panics, never allocates unbounded lists.
func FuzzDecodeExportPacket(f *testing.F) {
	f.Add(EncodeSpanPacket("n1", 5*time.Millisecond, sampleSpans()))
	for _, frame := range EncodeMetricsPackets("n1", 0, time.Unix(1120176060, 0), 3, sampleFamilies(), 0) {
		f.Add(frame)
	}
	f.Add(EncodeEventsPacket("n1", 5*time.Millisecond, time.Unix(1120176060, 0), sampleEvents()))
	f.Add(EncodeNodeInfoPacket("n1", 5*time.Millisecond, time.Unix(1120176060, 0), "127.0.0.1:9411", true))
	for _, frame := range corruptCases() {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := DecodeExportPacket(data)
		if err != nil {
			return
		}
		if len(pkt.Spans) > wire.MaxListLen {
			t.Fatalf("decoded %d spans past the list bound", len(pkt.Spans))
		}
		if len(pkt.Families) > wire.MaxListLen {
			t.Fatalf("decoded %d families past the list bound", len(pkt.Families))
		}
		if len(pkt.Events) > wire.MaxListLen {
			t.Fatalf("decoded %d events past the list bound", len(pkt.Events))
		}
		for _, fam := range pkt.Families {
			for _, s := range fam.Series {
				if len(s.Buckets) > wire.MaxListLen+1 {
					t.Fatalf("decoded %d buckets past the list bound", len(s.Buckets))
				}
			}
		}
	})
}
