package obs

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"narada/internal/wire"
)

// Export packet framing. Packets are self-contained UDP datagrams: any one of
// them can be decoded on its own, so loss never corrupts collector state —
// it only widens the gap between snapshots.
const (
	exportMagic   byte = 0xB8 // obs export frame marker (event frames use 0xB7)
	exportVersion byte = 5    // v5 adds node-info packets; v4 events; v3 flows; v2 Seq
	exportMinVer  byte = 1    // v1 (no sequence) still decodes; Seq reads as 0

	packetSpans    byte = 1
	packetMetrics  byte = 2
	packetFlows    byte = 3 // space-saving top-k flow snapshot (wire v3)
	packetEvents   byte = 4 // control-plane journal batch (wire v4)
	packetNodeInfo byte = 5 // telemetry endpoint announcement (wire v5)
)

// Family kind bytes on the wire.
const (
	wireKindCounter   byte = 0
	wireKindGauge     byte = 1
	wireKindHistogram byte = 2
)

// MaxExportPacket bounds an encoded export datagram. Metric snapshots larger
// than this are split on family boundaries into several packets.
const MaxExportPacket = 60 * 1024

// ExportSeries is one labelled series of an ExportFamily, with its value
// captured at snapshot time. The populated fields follow the family kind:
// Counter for counters, Gauge for gauges, Bounds/Buckets/Sum/Count for
// histograms (Buckets holds len(Bounds)+1 non-cumulative counts, the last
// being the +Inf catch-all).
type ExportSeries struct {
	Labels  []Label
	Counter uint64
	Gauge   float64
	Bounds  []float64
	Buckets []uint64
	Sum     float64
	Count   uint64
}

// ExportFamily is the value snapshot of one metric family: what travels from
// a node to the collector, and what both ends render as Prometheus text.
type ExportFamily struct {
	Name   string
	Help   string
	Kind   string // "counter" | "gauge" | "histogram"
	Series []ExportSeries
}

// ExportSnapshot captures every registered family with current values
// (function-backed series are evaluated), sorted by family name with series
// sorted by label key — the same order the exposition uses.
func (r *Registry) ExportSnapshot() []ExportFamily {
	fams := r.snapshotFamilies()
	out := make([]ExportFamily, 0, len(fams))
	for _, f := range fams {
		ef := ExportFamily{Name: f.name, Help: f.help, Kind: f.kind.String()}
		for _, c := range f.snapshotChildren() {
			s := ExportSeries{Labels: c.labels}
			switch f.kind {
			case kindCounter:
				if c.counter != nil {
					s.Counter = c.counter.Value()
				} else if c.counterFn != nil {
					s.Counter = c.counterFn()
				}
			case kindGauge:
				if c.gauge != nil {
					s.Gauge = c.gauge.Value()
				} else if c.gaugeFn != nil {
					s.Gauge = c.gaugeFn()
				}
			case kindHistogram:
				s.Bounds, s.Buckets = c.hist.Snapshot()
				s.Sum = c.hist.Sum()
				s.Count = c.hist.Count()
			}
			ef.Series = append(ef.Series, s)
		}
		out = append(out, ef)
	}
	return out
}

// SpanRecord pairs a completed span with the trace (request UUID) it belongs
// to — the unit the exporter ships.
type SpanRecord struct {
	TraceID string
	Span    SpanView
}

// ExportPacket is one decoded export datagram. Exactly one of Spans or
// Families is populated, matching the packet kind.
type ExportPacket struct {
	Node   string
	Offset time.Duration // sender's estimated local-clock offset from UTC

	Spans []SpanRecord // span batch

	MetricsAt time.Time // metrics snapshot: node-local capture time
	// Seq is the exporter's snapshot sequence number: it increments with
	// every metrics snapshot shipped and restarts from 1 when the process
	// does. Collectors derive counter rates from snapshot-to-snapshot
	// deltas; a sequence decrease marks a restart, so cumulative values are
	// re-baselined instead of read as a (possibly huge) spurious increase.
	Seq      uint64
	Families []ExportFamily

	FlowsAt time.Time      // flow snapshot: node-local capture time
	Flows   []FlowSnapshot // top-k per-topic flow accounting

	EventsAt time.Time // event batch: node-local drain time
	Events   []Event   // control-plane journal events, in seq order

	// Node-info announcement (wire v5): where this node's telemetry HTTP
	// endpoint lives, so the collector can pull pprof profiles and capturer
	// rings on demand. NodeInfo distinguishes a real announcement from the
	// zero value.
	NodeInfo      bool
	InfoAt        time.Time
	TelemetryAddr string // host:port of the node's obs.Serve listener
	ProfilesOn    bool   // node runs an obs/profile capturer at /profiles
}

func encodeExportHeader(w *wire.Writer, kind byte, node string, offset time.Duration) {
	w.Byte(exportMagic)
	w.Byte(exportVersion)
	w.Byte(kind)
	w.String(node)
	w.Duration(offset)
}

// EncodeSpanPacket serialises a batch of spans into one export datagram.
func EncodeSpanPacket(node string, offset time.Duration, spans []SpanRecord) []byte {
	w := wire.GetWriter(256 + 96*len(spans))
	encodeExportHeader(w, packetSpans, node, offset)
	w.Uvarint(uint64(len(spans)))
	for _, r := range spans {
		w.String(r.TraceID)
		w.String(r.Span.Name)
		w.Time(r.Span.At)
		w.Duration(r.Span.Dur)
		w.Uvarint(uint64(len(r.Span.Attrs)))
		for _, a := range r.Span.Attrs {
			w.String(a.Key)
			w.String(a.Value)
		}
	}
	frame := w.Detach()
	w.Release()
	return frame
}

// EncodeFlowsPacket serialises a flow-table snapshot into one export
// datagram. The sketch is fixed-size (top-k plus the <other> fold bucket), so
// a single packet always suffices at any realistic K.
func EncodeFlowsPacket(node string, offset time.Duration, at time.Time, flows []FlowSnapshot) []byte {
	w := wire.GetWriter(128 + 64*len(flows))
	encodeExportHeader(w, packetFlows, node, offset)
	w.Time(at)
	w.Uvarint(uint64(len(flows)))
	for _, f := range flows {
		w.String(f.Topic)
		w.Uvarint(f.PubMsgs)
		w.Uvarint(f.PubBytes)
		w.Uvarint(f.DelMsgs)
		w.Uvarint(f.DelBytes)
		for _, d := range f.Drops {
			w.Uvarint(d)
		}
		w.Uvarint(f.ErrBound)
	}
	frame := w.Detach()
	w.Release()
	return frame
}

// EncodeNodeInfoPacket serialises a telemetry-endpoint announcement (wire
// v5). It is tiny and idempotent; exporters resend it with every metrics
// tick so a collector restarted mid-run re-learns every node's endpoint
// within one export interval.
func EncodeNodeInfoPacket(node string, offset time.Duration, at time.Time, telemetryAddr string, profilesOn bool) []byte {
	w := wire.GetWriter(128)
	encodeExportHeader(w, packetNodeInfo, node, offset)
	w.Time(at)
	w.String(telemetryAddr)
	w.Bool(profilesOn)
	frame := w.Detach()
	w.Release()
	return frame
}

// maxEventsPerPacket keeps an event batch comfortably inside MaxExportPacket
// even with generous subject/detail strings (~200 bytes/event worst case).
const maxEventsPerPacket = 256

// EncodeEventsPacket serialises a batch of journal events into one export
// datagram. Callers chunk at maxEventsPerPacket; the decoder enforces only
// the generic list bound.
func EncodeEventsPacket(node string, offset time.Duration, at time.Time, events []Event) []byte {
	w := wire.GetWriter(128 + 48*len(events))
	encodeExportHeader(w, packetEvents, node, offset)
	w.Time(at)
	w.Uvarint(uint64(len(events)))
	for _, ev := range events {
		w.Uvarint(ev.Seq)
		w.String(ev.Type)
		w.Time(ev.At)
		w.String(ev.Subject)
		w.String(ev.Detail)
	}
	frame := w.Detach()
	w.Release()
	return frame
}

func encodeFamily(w *wire.Writer, f ExportFamily) {
	w.String(f.Name)
	w.String(f.Help)
	switch f.Kind {
	case "gauge":
		w.Byte(wireKindGauge)
	case "histogram":
		w.Byte(wireKindHistogram)
	default:
		w.Byte(wireKindCounter)
	}
	w.Uvarint(uint64(len(f.Series)))
	for _, s := range f.Series {
		w.Uvarint(uint64(len(s.Labels)))
		for _, l := range s.Labels {
			w.String(l.Key)
			w.String(l.Value)
		}
		switch f.Kind {
		case "counter":
			w.Uvarint(s.Counter)
		case "gauge":
			w.Float64(s.Gauge)
		case "histogram":
			w.Uvarint(uint64(len(s.Bounds)))
			for _, b := range s.Bounds {
				w.Float64(b)
			}
			for _, c := range s.Buckets {
				w.Uvarint(c)
			}
			w.Float64(s.Sum)
			w.Uvarint(s.Count)
		}
	}
}

// EncodeMetricsPackets serialises a metrics snapshot into one or more export
// datagrams, splitting on family boundaries so no packet exceeds maxBytes
// (<= 0 uses MaxExportPacket). Each packet repeats the header, capture time
// and snapshot sequence and is independently decodable. A single family
// larger than maxBytes still ships, alone, in an oversized packet.
func EncodeMetricsPackets(node string, offset time.Duration, at time.Time, seq uint64, fams []ExportFamily, maxBytes int) [][]byte {
	if maxBytes <= 0 {
		maxBytes = MaxExportPacket
	}
	// Encode each family body on its own so packets can be packed greedily
	// with the family count up front.
	bodies := make([][]byte, len(fams))
	for i, f := range fams {
		w := wire.GetWriter(512)
		encodeFamily(w, f)
		bodies[i] = w.Detach()
		w.Release()
	}
	header := func(n int) []byte {
		w := wire.GetWriter(64)
		encodeExportHeader(w, packetMetrics, node, offset)
		w.Time(at)
		w.Uvarint(seq)
		w.Uvarint(uint64(n))
		h := w.Detach()
		w.Release()
		return h
	}
	var packets [][]byte
	for i := 0; i < len(bodies); {
		size, n := 72, 0 // 72 ≈ worst-case header
		for i+n < len(bodies) && (n == 0 || size+len(bodies[i+n]) <= maxBytes) {
			size += len(bodies[i+n])
			n++
		}
		pkt := header(n)
		for j := 0; j < n; j++ {
			pkt = append(pkt, bodies[i+j]...)
		}
		packets = append(packets, pkt)
		i += n
	}
	return packets
}

// DecodeExportPacket parses one export datagram.
func DecodeExportPacket(b []byte) (*ExportPacket, error) {
	r := wire.NewReader(b)
	if m := r.Byte(); r.Err() == nil && m != exportMagic {
		return nil, fmt.Errorf("obs: export: bad magic 0x%02x", m)
	}
	version := r.Byte()
	if r.Err() == nil && (version < exportMinVer || version > exportVersion) {
		return nil, fmt.Errorf("obs: export: unsupported version %d", version)
	}
	kind := r.Byte()
	p := &ExportPacket{Node: r.String(), Offset: r.Duration()}
	switch kind {
	case packetSpans:
		n := r.Uvarint()
		if r.Err() == nil && n > wire.MaxListLen {
			return nil, fmt.Errorf("obs: export: span batch of %d", n)
		}
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			rec := SpanRecord{TraceID: r.String()}
			rec.Span.Name = r.String()
			rec.Span.At = r.Time()
			rec.Span.Dur = r.Duration()
			na := r.Uvarint()
			if r.Err() == nil && na > wire.MaxListLen {
				return nil, fmt.Errorf("obs: export: %d attrs", na)
			}
			for j := uint64(0); j < na && r.Err() == nil; j++ {
				rec.Span.Attrs = append(rec.Span.Attrs, Attr{Key: r.String(), Value: r.String()})
			}
			p.Spans = append(p.Spans, rec)
		}
	case packetMetrics:
		p.MetricsAt = r.Time()
		if version >= 2 {
			p.Seq = r.Uvarint()
		}
		nf := r.Uvarint()
		if r.Err() == nil && nf > wire.MaxListLen {
			return nil, fmt.Errorf("obs: export: %d families", nf)
		}
		for i := uint64(0); i < nf && r.Err() == nil; i++ {
			f, ok := decodeFamily(r)
			if !ok {
				// A family that violates a list bound leaves the reader
				// desynchronised; nothing after it can be trusted.
				if err := r.Err(); err != nil {
					return nil, fmt.Errorf("obs: export: %w", err)
				}
				return nil, fmt.Errorf("obs: export: malformed family %q", f.Name)
			}
			p.Families = append(p.Families, f)
		}
	case packetFlows:
		p.FlowsAt = r.Time()
		n := r.Uvarint()
		if r.Err() == nil && n > wire.MaxListLen {
			return nil, fmt.Errorf("obs: export: flow batch of %d", n)
		}
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			f := FlowSnapshot{Topic: r.String()}
			f.PubMsgs = r.Uvarint()
			f.PubBytes = r.Uvarint()
			f.DelMsgs = r.Uvarint()
			f.DelBytes = r.Uvarint()
			for j := range f.Drops {
				f.Drops[j] = r.Uvarint()
			}
			f.ErrBound = r.Uvarint()
			f.finishDrops()
			p.Flows = append(p.Flows, f)
		}
	case packetEvents:
		p.EventsAt = r.Time()
		n := r.Uvarint()
		if r.Err() == nil && n > wire.MaxListLen {
			return nil, fmt.Errorf("obs: export: event batch of %d", n)
		}
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			ev := Event{Seq: r.Uvarint(), Type: r.String()}
			ev.At = r.Time()
			ev.Subject = r.String()
			ev.Detail = r.String()
			p.Events = append(p.Events, ev)
		}
	case packetNodeInfo:
		p.NodeInfo = true
		p.InfoAt = r.Time()
		p.TelemetryAddr = r.String()
		p.ProfilesOn = r.Bool()
	default:
		return nil, fmt.Errorf("obs: export: unknown packet kind %d", kind)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("obs: export: %w", err)
	}
	return p, nil
}

func decodeFamily(r *wire.Reader) (ExportFamily, bool) {
	f := ExportFamily{Name: r.String(), Help: r.String()}
	switch r.Byte() {
	case wireKindGauge:
		f.Kind = "gauge"
	case wireKindHistogram:
		f.Kind = "histogram"
	default:
		f.Kind = "counter"
	}
	n := r.Uvarint()
	if r.Err() != nil || n > wire.MaxListLen {
		return f, false
	}
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		s := ExportSeries{}
		nl := r.Uvarint()
		if r.Err() != nil || nl > wire.MaxListLen {
			return f, false
		}
		for j := uint64(0); j < nl && r.Err() == nil; j++ {
			s.Labels = append(s.Labels, Label{Key: r.String(), Value: r.String()})
		}
		switch f.Kind {
		case "counter":
			s.Counter = r.Uvarint()
		case "gauge":
			s.Gauge = r.Float64()
		case "histogram":
			nb := r.Uvarint()
			if r.Err() != nil || nb > wire.MaxListLen {
				return f, false
			}
			for j := uint64(0); j < nb && r.Err() == nil; j++ {
				s.Bounds = append(s.Bounds, r.Float64())
			}
			for j := uint64(0); j <= nb && r.Err() == nil; j++ {
				s.Buckets = append(s.Buckets, r.Uvarint())
			}
			s.Sum = r.Float64()
			s.Count = r.Uvarint()
		}
		f.Series = append(f.Series, s)
	}
	return f, r.Err() == nil
}

// ExporterConfig parameterises an Exporter.
type ExporterConfig struct {
	// Addr is the collector's UDP address.
	Addr string
	// Node is this process's identity, stamped on every packet (and onto
	// every span the collector assembles from it).
	Node string
	// Offset reports the node's current estimated local-clock offset from
	// UTC (ntptime.Service.Offset); nil exports 0 (honest clock).
	Offset func() time.Duration
	// Registry, when set, is snapshotted every MetricsInterval and shipped;
	// the exporter's own counters also register here. Nil ships spans only.
	Registry *Registry
	// MetricsInterval is the metric-snapshot period (default 1s; < 0
	// disables periodic snapshots — a final one still ships on Close).
	MetricsInterval time.Duration
	// SpanBuffer bounds the in-flight span queue (default 256). When the
	// buffer is full new spans are dropped and counted, never blocked on.
	SpanBuffer int
	// FlushInterval bounds how long a partial span batch waits before being
	// sent (default 25ms).
	FlushInterval time.Duration
	// MaxBatch is the span count that triggers an immediate send (default 64).
	MaxBatch int
	// Flows, when set, is snapshotted alongside every metrics snapshot and
	// shipped as a flow packet (the broker passes its FlowTable's Snapshot).
	Flows func() []FlowSnapshot
	// Journal, when set, is drained alongside every metrics snapshot and
	// shipped as event packets. The final drain on Close ships terminal
	// events (node_stop) from short-lived processes.
	Journal *Journal
	// RedialAfter is the number of failed sends (accumulated since the last
	// redial attempt) after which the exporter re-resolves and redials Addr —
	// so a collector that restarted on a new address behind the same name (a
	// re-scheduled pod, a DNS flip) is picked up without restarting the
	// exporting broker. Failures are not required to be consecutive: ICMP
	// port-unreachable surfaces on a connected UDP socket only every other
	// write, so a dead collector alternates error and success. Default 8;
	// < 0 disables re-resolution.
	RedialAfter int
	// Dial overrides how Addr is resolved and dialled (tests move the
	// collector mid-run; production leaves it nil for net.Dial("udp", …)).
	Dial func(addr string) (net.Conn, error)
}

func (c *ExporterConfig) fillDefaults() {
	if c.MetricsInterval == 0 {
		c.MetricsInterval = time.Second
	}
	if c.SpanBuffer <= 0 {
		c.SpanBuffer = 256
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 25 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.RedialAfter == 0 {
		c.RedialAfter = 8
	}
}

// Exporter ships completed spans and periodic metric snapshots to a collector
// over connectionless UDP. It is strictly fire-and-forget: RecordSpan is a
// non-blocking bounded-buffer enqueue (overflow increments a drop counter),
// datagram sends happen on a background goroutine, and send errors are
// counted and otherwise ignored — a slow, absent or dead collector costs the
// caller's hot path nothing. All methods are safe on a nil *Exporter.
type Exporter struct {
	cfg ExporterConfig

	sendMu    sync.Mutex // guards sink + sendFails (span and metric loops both send)
	sink      io.Writer  // UDP conn in production; injectable for tests
	sendFails int        // failed sends since the last redial attempt

	seq atomic.Uint64 // metrics snapshot sequence; see ExportPacket.Seq

	// announce holds the node-info payload shipped with every metrics tick.
	// It is set late (AnnounceTelemetry) because the telemetry server binds
	// after the exporter exists in every cmd main.
	announce atomic.Pointer[nodeInfoAnnounce]

	ch   chan SpanRecord
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	spansSent    *Counter
	spansDropped *Counter
	packetsOK    *Counter
	packetsErr   *Counter
	redials      *Counter
}

// NewExporter dials the collector and starts the export goroutines.
func NewExporter(cfg ExporterConfig) (*Exporter, error) {
	if cfg.Addr == "" {
		return nil, errors.New("obs: exporter: Addr is required")
	}
	if cfg.Node == "" {
		return nil, errors.New("obs: exporter: Node is required")
	}
	dial := cfg.Dial
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("udp", addr) }
	}
	cfg.Dial = dial
	conn, err := dial(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: exporter: dial %s: %w", cfg.Addr, err)
	}
	e := newExporterWithSink(cfg, conn)
	return e, nil
}

// newExporterWithSink wires an exporter onto an arbitrary datagram sink;
// tests use it to make the sink block or fail deterministically.
func newExporterWithSink(cfg ExporterConfig, sink io.Writer) *Exporter {
	cfg.fillDefaults()
	e := &Exporter{
		cfg:  cfg,
		sink: sink,
		ch:   make(chan SpanRecord, cfg.SpanBuffer),
		done: make(chan struct{}),
	}
	reg := cfg.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	who := L("node", cfg.Node)
	const spans = "narada_obs_export_spans_total"
	const spansHelp = "Spans handed to the UDP exporter, by outcome."
	e.spansSent = reg.Counter(spans, spansHelp, who, L("outcome", "sent"))
	e.spansDropped = reg.Counter(spans, spansHelp, who, L("outcome", "dropped"))
	const pkts = "narada_obs_export_packets_total"
	const pktsHelp = "Export datagrams written, by result."
	e.packetsOK = reg.Counter(pkts, pktsHelp, who, L("result", "ok"))
	e.packetsErr = reg.Counter(pkts, pktsHelp, who, L("result", "error"))
	e.redials = reg.Counter("narada_obs_export_redials_total",
		"Collector re-resolutions after consecutive send failures.", who)

	e.wg.Add(1)
	go e.spanLoop()
	if (cfg.Registry != nil || cfg.Flows != nil || cfg.Journal != nil) && cfg.MetricsInterval > 0 {
		e.wg.Add(1)
		go e.metricsLoop()
	}
	return e
}

// RecordSpan enqueues one completed span for export. Never blocks: a full
// buffer drops the span and increments the drop counter.
func (e *Exporter) RecordSpan(traceID string, sv SpanView) {
	if e == nil {
		return
	}
	select {
	case e.ch <- SpanRecord{TraceID: traceID, Span: sv}:
	default:
		e.spansDropped.Inc()
	}
}

// Dropped returns the number of spans dropped on a full buffer.
func (e *Exporter) Dropped() uint64 {
	if e == nil {
		return 0
	}
	return e.spansDropped.Value()
}

// Sent returns the number of spans handed to the network.
func (e *Exporter) Sent() uint64 {
	if e == nil {
		return 0
	}
	return e.spansSent.Value()
}

func (e *Exporter) offset() time.Duration {
	if e.cfg.Offset == nil {
		return 0
	}
	return e.cfg.Offset()
}

func (e *Exporter) send(pkt []byte) {
	e.sendMu.Lock()
	defer e.sendMu.Unlock()
	if _, err := e.sink.Write(pkt); err != nil {
		e.packetsErr.Inc()
		e.sendFails++
		if e.cfg.RedialAfter > 0 && e.sendFails >= e.cfg.RedialAfter {
			e.redialLocked()
		}
		return
	}
	e.packetsOK.Inc()
}

// redialLocked re-resolves cfg.Addr and swaps the sink. The address is
// resolved fresh on every dial, so a collector that came back on a new IP
// behind the same name — or rebound its port after a restart — is picked up
// without restarting this process. Requires sendMu.
func (e *Exporter) redialLocked() {
	if e.cfg.Dial == nil || e.cfg.Addr == "" {
		return // sink-injected exporter with no address to re-resolve
	}
	conn, err := e.cfg.Dial(e.cfg.Addr)
	if err != nil {
		e.sendFails = 0 // back off: give the next RedialAfter sends a chance
		return
	}
	if c, ok := e.sink.(io.Closer); ok {
		_ = c.Close()
	}
	e.sink = conn
	e.sendFails = 0
	e.redials.Inc()
}

// Redials returns the number of successful collector re-resolutions.
func (e *Exporter) Redials() uint64 {
	if e == nil {
		return 0
	}
	return e.redials.Value()
}

func (e *Exporter) flushSpans(batch []SpanRecord) []SpanRecord {
	if len(batch) == 0 {
		return batch
	}
	e.send(EncodeSpanPacket(e.cfg.Node, e.offset(), batch))
	e.spansSent.Add(uint64(len(batch)))
	return batch[:0]
}

func (e *Exporter) spanLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.cfg.FlushInterval)
	defer ticker.Stop()
	batch := make([]SpanRecord, 0, e.cfg.MaxBatch)
	for {
		select {
		case r := <-e.ch:
			batch = append(batch, r)
			if len(batch) >= e.cfg.MaxBatch {
				batch = e.flushSpans(batch)
			}
		case <-ticker.C:
			batch = e.flushSpans(batch)
		case <-e.done:
			// Drain whatever was enqueued before Close, then flush.
			for {
				select {
				case r := <-e.ch:
					batch = append(batch, r)
					if len(batch) >= e.cfg.MaxBatch {
						batch = e.flushSpans(batch)
					}
				default:
					e.flushSpans(batch)
					return
				}
			}
		}
	}
}

// nodeInfoAnnounce is the telemetry-endpoint announcement payload.
type nodeInfoAnnounce struct {
	addr       string
	profilesOn bool
}

// AnnounceTelemetry sets the telemetry HTTP address (host:port) this node
// serves /metrics and /debug/pprof on, and whether an obs/profile capturer
// is mounted at /profiles. The announcement ships immediately and then with
// every metrics tick (wire v5 node-info packet). Safe on a nil exporter and
// at any time relative to Start.
func (e *Exporter) AnnounceTelemetry(addr string, profilesOn bool) {
	if e == nil || addr == "" {
		return
	}
	e.announce.Store(&nodeInfoAnnounce{addr: addr, profilesOn: profilesOn})
	e.send(EncodeNodeInfoPacket(e.cfg.Node, e.offset(), time.Now(), addr, profilesOn))
}

func (e *Exporter) shipMetrics() {
	now := time.Now()
	if a := e.announce.Load(); a != nil {
		e.send(EncodeNodeInfoPacket(e.cfg.Node, e.offset(), now, a.addr, a.profilesOn))
	}
	if e.cfg.Registry != nil {
		fams := e.cfg.Registry.ExportSnapshot()
		seq := e.seq.Add(1)
		for _, pkt := range EncodeMetricsPackets(e.cfg.Node, e.offset(), now, seq, fams, 0) {
			e.send(pkt)
		}
	}
	if e.cfg.Flows != nil {
		if flows := e.cfg.Flows(); len(flows) > 0 {
			e.send(EncodeFlowsPacket(e.cfg.Node, e.offset(), now, flows))
		}
	}
	if events := e.cfg.Journal.Drain(); len(events) > 0 {
		for len(events) > 0 {
			n := len(events)
			if n > maxEventsPerPacket {
				n = maxEventsPerPacket
			}
			e.send(EncodeEventsPacket(e.cfg.Node, e.offset(), now, events[:n]))
			events = events[n:]
		}
	}
}

func (e *Exporter) metricsLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.cfg.MetricsInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			e.shipMetrics()
		case <-e.done:
			e.shipMetrics() // final snapshot so short-lived processes report
			return
		}
	}
}

// Close flushes buffered spans, ships a final metric snapshot and releases
// the socket.
func (e *Exporter) Close() error {
	if e == nil {
		return nil
	}
	e.once.Do(func() {
		close(e.done)
		e.wg.Wait()
		if c, ok := e.sink.(io.Closer); ok {
			_ = c.Close()
		}
	})
	return nil
}
