// Per-topic flow accounting: a fixed-size space-saving top-k sketch tracking
// the heaviest published topics with per-topic delivered and dropped-by-reason
// tallies. The table answers "where did topic X's messages go" without an
// unbounded per-topic map: K entries, and when a new topic arrives at a full
// table it evicts the current minimum and inherits its count as an error
// bound (the classic Metwally et al. space-saving guarantee: a topic's true
// count is within [count−errBound, count], and any topic with true frequency
// above N/K is guaranteed to be present).
//
// The counting fast path is lock-free: the entry map lives behind an atomic
// pointer and hits only do a map lookup plus atomic adds, so the publish
// fan-out can account every message. Insertions and evictions copy the map
// under a mutex and swap — rare once the heavy hitters are established.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Egress drop reasons, the label values on dropped-frame accounting.
const (
	DropQueueFull     = iota // bounded egress queue overflowed (drop-oldest)
	DropConnDown             // connection already failed when the frame arrived
	DropFrameTooLarge        // frame exceeded the transport's size ceiling
	NumDropReasons
)

// DropReasonNames maps drop reason indices to their metric label values.
var DropReasonNames = [NumDropReasons]string{"queue_full", "conn_down", "frame_too_large"}

// FlowOther is the pseudo-topic under which delivered/dropped traffic for
// topics not tracked by the sketch is folded, so totals stay exact even when
// per-topic attribution is approximate.
const FlowOther = "<other>"

// DefaultFlowK is the sketch width: topics tracked simultaneously.
const DefaultFlowK = 64

// FlowEntry is one tracked topic's live counters. Published hands the entry
// back so the data path can stamp it onto in-flight frames and account
// deliveries and drops with plain atomic adds — no repeat topic hashing on
// the egress writers or the overflow-eviction path. An entry evicted from the
// sketch while frames still hold it keeps absorbing their updates harmlessly;
// those tallies are lost to the snapshot, bounded by the egress queue depth.
type FlowEntry struct {
	topic    string
	pubMsgs  atomic.Uint64
	pubBytes atomic.Uint64
	delMsgs  atomic.Uint64
	delBytes atomic.Uint64
	drops    [NumDropReasons]atomic.Uint64
	errBound uint64 // count inherited from the evicted minimum at insertion
}

// Delivered accounts one delivered message of n bytes. Safe on nil.
func (e *FlowEntry) Delivered(n int) {
	if e == nil {
		return
	}
	e.delMsgs.Add(1)
	e.delBytes.Add(uint64(n))
}

// Dropped accounts one dropped message with the given reason. Safe on nil.
func (e *FlowEntry) Dropped(reason int) { e.DroppedN(reason, 1) }

// DroppedN accounts n dropped messages with the given reason, for callers
// that batch eviction storms into one update. Safe on nil.
func (e *FlowEntry) DroppedN(reason int, n uint64) {
	if e == nil || n == 0 || reason < 0 || reason >= NumDropReasons {
		return
	}
	e.drops[reason].Add(n)
}

// FlowSnapshot is one topic's accounting at a point in time.
type FlowSnapshot struct {
	Topic     string                 `json:"topic"`
	PubMsgs   uint64                 `json:"published_msgs"`
	PubBytes  uint64                 `json:"published_bytes"`
	DelMsgs   uint64                 `json:"delivered_msgs"`
	DelBytes  uint64                 `json:"delivered_bytes"`
	Drops     [NumDropReasons]uint64 `json:"-"`
	DropMsgs  uint64                 `json:"dropped_msgs"`
	ErrBound  uint64                 `json:"err_bound"`
	DropQueue uint64                 `json:"dropped_queue_full"`
	DropConn  uint64                 `json:"dropped_conn_down"`
	DropLarge uint64                 `json:"dropped_frame_too_large"`
}

// FlowTable is the space-saving sketch. A nil *FlowTable ignores all updates,
// so call sites don't branch on whether flow accounting is enabled.
type FlowTable struct {
	k   int
	cur atomic.Pointer[map[string]*FlowEntry]
	mu  sync.Mutex // guards insert/evict (map copy + swap)

	// Fold bucket for delivered/dropped traffic on untracked topics.
	otherDelMsgs  atomic.Uint64
	otherDelBytes atomic.Uint64
	otherDrops    [NumDropReasons]atomic.Uint64
}

// NewFlowTable returns a sketch tracking up to k topics (DefaultFlowK if
// k <= 0).
func NewFlowTable(k int) *FlowTable {
	if k <= 0 {
		k = DefaultFlowK
	}
	t := &FlowTable{k: k}
	m := make(map[string]*FlowEntry, k)
	t.cur.Store(&m)
	return t
}

// Published accounts one published message of n bytes on topic and returns
// the topic's entry for frame stamping. Hits are lock-free (map lookup + two
// atomic adds); a topic not yet tracked takes the mutex-guarded insert/evict
// slow path. Returns nil on a nil table.
func (t *FlowTable) Published(topic string, n int) *FlowEntry {
	if t == nil {
		return nil
	}
	if e, ok := (*t.cur.Load())[topic]; ok {
		e.pubMsgs.Add(1)
		e.pubBytes.Add(uint64(n))
		return e
	}
	return t.insert(topic, n)
}

func (t *FlowTable) insert(topic string, n int) *FlowEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.cur.Load()
	if e, ok := old[topic]; ok { // raced with another inserter
		e.pubMsgs.Add(1)
		e.pubBytes.Add(uint64(n))
		return e
	}
	e := &FlowEntry{topic: topic}
	next := make(map[string]*FlowEntry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	if len(old) >= t.k {
		// Space-saving eviction: replace the minimum-count entry; the
		// newcomer inherits its count as both starting point and error bound.
		var min *FlowEntry
		var minCount uint64
		for _, v := range next {
			if c := v.pubMsgs.Load(); min == nil || c < minCount {
				min, minCount = v, c
			}
		}
		delete(next, min.topic)
		e.errBound = minCount
		e.pubMsgs.Store(minCount)
		// The evicted topic's delivered/dropped tallies fold into <other> so
		// node totals remain exact.
		t.otherDelMsgs.Add(min.delMsgs.Load())
		t.otherDelBytes.Add(min.delBytes.Load())
		for i := range min.drops {
			t.otherDrops[i].Add(min.drops[i].Load())
		}
	}
	e.pubMsgs.Add(1)
	e.pubBytes.Add(uint64(n))
	next[topic] = e
	t.cur.Store(&next)
	return e
}

// Snapshot returns the tracked topics sorted by published count (descending),
// plus a trailing <other> row when untracked traffic was folded there.
func (t *FlowTable) Snapshot() []FlowSnapshot {
	if t == nil {
		return nil
	}
	m := *t.cur.Load()
	out := make([]FlowSnapshot, 0, len(m)+1)
	for _, e := range m {
		s := FlowSnapshot{
			Topic:    e.topic,
			PubMsgs:  e.pubMsgs.Load(),
			PubBytes: e.pubBytes.Load(),
			DelMsgs:  e.delMsgs.Load(),
			DelBytes: e.delBytes.Load(),
			ErrBound: e.errBound,
		}
		for i := range e.drops {
			s.Drops[i] = e.drops[i].Load()
		}
		s.finishDrops()
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PubMsgs != out[j].PubMsgs {
			return out[i].PubMsgs > out[j].PubMsgs
		}
		return out[i].Topic < out[j].Topic
	})
	other := FlowSnapshot{
		Topic:    FlowOther,
		DelMsgs:  t.otherDelMsgs.Load(),
		DelBytes: t.otherDelBytes.Load(),
	}
	for i := range t.otherDrops {
		other.Drops[i] = t.otherDrops[i].Load()
	}
	other.finishDrops()
	if other.DelMsgs != 0 || other.DropMsgs != 0 {
		out = append(out, other)
	}
	return out
}

// finishDrops derives the per-reason and total drop fields from Drops.
func (s *FlowSnapshot) finishDrops() {
	s.DropQueue = s.Drops[DropQueueFull]
	s.DropConn = s.Drops[DropConnDown]
	s.DropLarge = s.Drops[DropFrameTooLarge]
	s.DropMsgs = s.DropQueue + s.DropConn + s.DropLarge
}
