package obs

import (
	"sync"
	"testing"
	"time"

	"narada/internal/wire"
)

// memorySink captures every datagram the exporter writes.
type memorySink struct {
	mu  sync.Mutex
	fms [][]byte
}

func (s *memorySink) Write(p []byte) (int, error) {
	s.mu.Lock()
	s.fms = append(s.fms, append([]byte(nil), p...))
	s.mu.Unlock()
	return len(p), nil
}

func (s *memorySink) frames() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([][]byte(nil), s.fms...)
}

func TestNodeInfoPacketRoundTrip(t *testing.T) {
	at := time.Unix(1120176060, 123456789).UTC()
	frame := EncodeNodeInfoPacket("broker-7", 5*time.Millisecond, at, "127.0.0.1:9411", true)
	p, err := DecodeExportPacket(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !p.NodeInfo {
		t.Fatal("NodeInfo flag not set")
	}
	if p.Node != "broker-7" || p.Offset != 5*time.Millisecond {
		t.Errorf("header: node=%q offset=%v", p.Node, p.Offset)
	}
	if !p.InfoAt.Equal(at) {
		t.Errorf("InfoAt = %v, want %v", p.InfoAt, at)
	}
	if p.TelemetryAddr != "127.0.0.1:9411" {
		t.Errorf("TelemetryAddr = %q", p.TelemetryAddr)
	}
	if !p.ProfilesOn {
		t.Error("ProfilesOn lost")
	}

	// Announcement with profiles off.
	frame = EncodeNodeInfoPacket("bdn-1", 0, at, "10.0.0.2:8080", false)
	p, err = DecodeExportPacket(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if p.ProfilesOn {
		t.Error("ProfilesOn = true, want false")
	}
}

// A v5 collector must keep decoding every pre-v5 packet: the fabric upgrades
// node by node and the collector sees a version mix for the whole rollout.
func TestOlderVersionsStillDecode(t *testing.T) {
	for v := byte(1); v <= 4; v++ {
		frame := EncodeSpanPacket("n1", 0, sampleSpans())
		frame[1] = v // rewrite the version byte; span layout is unchanged since v1
		if _, err := DecodeExportPacket(frame); err != nil {
			t.Errorf("v%d span packet rejected: %v", v, err)
		}
	}
}

func TestNodeInfoCorruptAndTruncated(t *testing.T) {
	at := time.Unix(1120176060, 0)
	good := EncodeNodeInfoPacket("n1", 0, at, "127.0.0.1:9411", true)

	for cut := 1; cut < len(good); cut++ {
		if _, err := DecodeExportPacket(good[:cut]); err == nil {
			t.Errorf("truncation at %d bytes decoded without error", cut)
		}
	}

	// Addr string claiming more bytes than the datagram holds.
	w := wire.GetWriter(64)
	w.Byte(0xb8)
	w.Byte(5)
	w.Byte(5) // packetNodeInfo
	w.String("n1")
	w.Duration(0)
	w.Time(at)
	w.Uvarint(1 << 20) // string length prefix with no payload
	frame := w.Detach()
	w.Release()
	if _, err := DecodeExportPacket(frame); err == nil {
		t.Error("oversized addr length decoded without error")
	}
}

func TestExporterShipsNodeInfo(t *testing.T) {
	sink := &memorySink{}
	e := newExporterWithSink(ExporterConfig{
		Node:            "broker-7",
		MetricsInterval: -1, // no periodic loop; Close ships the final snapshot
		Registry:        NewRegistry(),
	}, sink)
	e.AnnounceTelemetry("127.0.0.1:9411", true)
	_ = e.Close()

	var got *ExportPacket
	for _, frame := range sink.frames() {
		p, err := DecodeExportPacket(frame)
		if err != nil {
			t.Fatalf("decode shipped frame: %v", err)
		}
		if p.NodeInfo {
			got = p
			break
		}
	}
	if got == nil {
		t.Fatal("no node-info packet shipped after AnnounceTelemetry")
	}
	if got.TelemetryAddr != "127.0.0.1:9411" || !got.ProfilesOn {
		t.Errorf("announcement = %q profiles=%v", got.TelemetryAddr, got.ProfilesOn)
	}
}
