package obs

import (
	"math"
	"testing"
)

// TestHistogramBucketBoundaries pins the le semantics: an observation equal
// to a bound lands in that bound's bucket (Prometheus' v <= le), values
// beyond the last bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{0.01, 0.1, 1}
	cases := []struct {
		v      float64
		bucket int // index into the non-cumulative counts, 3 = +Inf
	}{
		{-5, 0},
		{0, 0},
		{0.005, 0},
		{0.01, 0}, // exactly on the bound: v <= le
		{0.0100001, 1},
		{0.1, 1},
		{0.5, 2},
		{1, 2},
		{1.0001, 3},
		{1e9, 3},
		{math.Inf(1), 3},
	}
	for _, tc := range cases {
		h := newHistogram(bounds)
		h.Observe(tc.v)
		_, counts := h.Snapshot()
		for i, c := range counts {
			want := uint64(0)
			if i == tc.bucket {
				want = 1
			}
			if c != want {
				t.Errorf("Observe(%v): bucket[%d] = %d, want %d", tc.v, i, c, want)
			}
		}
	}
}

func TestHistogramSumCount(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d, want 4", h.Count())
	}
	if h.Sum() != 8.0 {
		t.Errorf("Sum = %v, want 8.0", h.Sum())
	}
	_, counts := h.Snapshot()
	want := []uint64{1, 1, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, counts[i], want[i])
		}
	}
}

func TestHistogramRejectsUnsortedBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted buckets did not panic")
		}
	}()
	newHistogram([]float64{1, 1})
}

func TestBucketGenerators(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Errorf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Errorf("ExponentialBuckets = %v", exp)
	}
}
