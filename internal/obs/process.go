package obs

import (
	"runtime"
	"time"
)

// RegisterProcessMetrics adds Go-runtime health gauges to reg, evaluated at
// scrape time: goroutine count, heap in use, total GC cycles and process
// uptime (measured from this call). Call once per process.
func RegisterProcessMetrics(reg *Registry) {
	start := time.Now()
	reg.GaugeFunc("narada_process_goroutines",
		"Live goroutines in the process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("narada_process_heap_inuse_bytes",
		"Bytes in in-use heap spans.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapInuse)
		})
	reg.GaugeFunc("narada_process_gc_cycles_total",
		"Completed GC cycles.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
	reg.GaugeFunc("narada_process_uptime_seconds",
		"Wall-clock seconds since telemetry registration.",
		func() float64 { return time.Since(start).Seconds() })
}
