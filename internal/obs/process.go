package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// buildRevision extracts the VCS revision baked into the binary, truncated to
// the short-hash length Prometheus dashboards expect. Binaries built outside
// a checkout (go test, bare go build of a dirty tree) report "unknown".
func buildRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			if len(s.Value) > 12 {
				return s.Value[:12]
			}
			return s.Value
		}
	}
	return "unknown"
}

// RegisterProcessMetrics adds Go-runtime health gauges to reg, evaluated at
// scrape time: goroutine count, heap in use, total GC cycles, process uptime
// (measured from this call) and a constant build-info series so fleet
// version skew shows up on /metrics. Call once per process.
func RegisterProcessMetrics(reg *Registry) {
	start := time.Now()
	reg.Gauge("narada_build_info",
		"Build identity; constant 1, labelled with toolchain and VCS revision.",
		L("go_version", runtime.Version()),
		L("revision", buildRevision())).Set(1)
	reg.GaugeFunc("narada_process_goroutines",
		"Live goroutines in the process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("narada_process_heap_inuse_bytes",
		"Bytes in in-use heap spans.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapInuse)
		})
	reg.GaugeFunc("narada_process_gc_cycles_total",
		"Completed GC cycles.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
	reg.GaugeFunc("narada_process_uptime_seconds",
		"Wall-clock seconds since telemetry registration.",
		func() float64 { return time.Since(start).Seconds() })
}
