package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// buildRevision extracts the VCS revision baked into the binary, truncated to
// the short-hash length Prometheus dashboards expect. Binaries built outside
// a checkout (go test, bare go build of a dirty tree) report "unknown".
func buildRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			if len(s.Value) > 12 {
				return s.Value[:12]
			}
			return s.Value
		}
	}
	return "unknown"
}

// RegisterProcessMetrics adds Go-runtime health families to reg: goroutine
// count, heap occupancy and GC counters plus the runtime-telemetry families
// (GC pause and sched-latency quantiles, GC CPU fraction, heap live/goal) —
// all served from one shared RuntimeSampler sweep per scrape — alongside
// process uptime (measured from this call) and a constant build-info series
// so fleet version skew shows up on /metrics. Call once per process; the
// sampler is returned for callers that want to force or time sweeps.
func RegisterProcessMetrics(reg *Registry) *RuntimeSampler {
	start := time.Now()
	reg.Gauge("narada_build_info",
		"Build identity; constant 1, labelled with toolchain and VCS revision.",
		L("go_version", runtime.Version()),
		L("revision", buildRevision())).Set(1)
	reg.GaugeFunc("narada_process_uptime_seconds",
		"Wall-clock seconds since telemetry registration.",
		func() float64 { return time.Since(start).Seconds() })
	s := NewRuntimeSampler(0)
	s.Register(reg)
	return s
}
