package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// testTime returns a fixed base instant; trace tests advance from it
// explicitly so recorded orders are deterministic.
func testTime() time.Time {
	return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
}

func TestTraceSpansAndStart(t *testing.T) {
	tr := NewTracer(8, nil)
	base := testTime()
	h := tr.Trace("req-1")
	h.Span("wait-initial-responses", base.Add(10*time.Millisecond), 4*time.Second)
	h.Event("bdn-ack", base, A("bdn", "gridservicelocator.org"))
	v, ok := tr.Get("req-1")
	if !ok {
		t.Fatal("trace not found")
	}
	if !v.Start.Equal(base) {
		t.Errorf("Start = %v, want earliest recorded instant %v", v.Start, base)
	}
	if len(v.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(v.Spans))
	}
	// Views are chronological, not insertion-ordered: the ack (recorded
	// second, timestamped first) leads.
	if v.Spans[0].Name != "bdn-ack" || v.Spans[1].Name != "wait-initial-responses" {
		t.Errorf("span order wrong: %+v", v.Spans)
	}
	if v.Spans[0].Dur != 0 || v.Spans[1].Dur != 4*time.Second {
		t.Errorf("span durations wrong: %+v", v.Spans)
	}
	// Same id returns the same trace.
	if tr.Trace("req-1") != h {
		t.Error("same id produced a new trace")
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	h := tr.Trace("x") // must not panic
	h.Span("p", testTime(), time.Second)
	h.Event("e", testTime())
	if h.ID() != "" || tr.Len() != 0 {
		t.Error("nil tracer recorded something")
	}
	if _, ok := tr.Get("x"); ok {
		t.Error("nil tracer returned a trace")
	}
	if tr.Snapshot() != nil {
		t.Error("nil tracer snapshot non-nil")
	}
}

func TestTraceRingEviction(t *testing.T) {
	tr := NewTracer(3, nil)
	for i := 0; i < 5; i++ {
		tr.Trace(fmt.Sprintf("req-%d", i)).Event("e", testTime())
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	for _, gone := range []string{"req-0", "req-1"} {
		if _, ok := tr.Get(gone); ok {
			t.Errorf("%s should have been evicted", gone)
		}
	}
	snap := tr.Snapshot()
	if len(snap) != 3 || snap[0].ID != "req-2" || snap[2].ID != "req-4" {
		t.Errorf("snapshot order wrong: %+v", snap)
	}
}

// TestTraceRingConcurrent hammers the ring from concurrent recorders (with
// id collisions across workers, so get-or-create and eviction interleave)
// while readers snapshot and look up, under -race. Afterwards the ring must
// be exactly full and every retained trace reachable by id.
func TestTraceRingConcurrent(t *testing.T) {
	const (
		workers   = 8
		perWorker = 200
		capacity  = 16
	)
	tr := NewTracer(capacity, Nop())
	var writers, readers sync.WaitGroup
	done := make(chan struct{})
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, v := range tr.Snapshot() {
					if v.ID == "" || len(v.Spans) == 0 && !v.Start.IsZero() {
						t.Errorf("inconsistent trace snapshot: %+v", v)
						return
					}
				}
				tr.Get("w0-5")
			}
		}()
	}
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			base := testTime()
			for i := 0; i < perWorker; i++ {
				// Worker pairs share ids, so two goroutines race to create
				// and append to the same trace.
				h := tr.Trace(fmt.Sprintf("w%d-%d", w%4, i))
				h.Event("request-issue", base)
				h.Span("ping-measurement", base, time.Millisecond, A("worker", "x"))
			}
		}(w)
	}
	writers.Wait()
	close(done)
	readers.Wait()

	if got := tr.Len(); got != capacity {
		t.Errorf("Len = %d, want full ring %d", got, capacity)
	}
	for _, v := range tr.Snapshot() {
		if _, ok := tr.Get(v.ID); !ok {
			t.Errorf("retained trace %s not indexed", v.ID)
		}
	}
}

// TestTraceByIDIndexBounded proves eviction deletes evicted ids from the byID
// index: after heavy churn the index holds exactly the ring's members, so a
// long-lived tracer cannot leak one map entry per request ever traced.
func TestTraceByIDIndexBounded(t *testing.T) {
	const capacity = 8
	tr := NewTracer(capacity, nil)
	for i := 0; i < 100*capacity; i++ {
		tr.Trace(fmt.Sprintf("req-%d", i)).Event("e", testTime())
	}
	tr.mu.Lock()
	indexed := len(tr.byID)
	ringed := len(tr.ring)
	tr.mu.Unlock()
	if indexed != ringed || indexed != capacity {
		t.Fatalf("byID holds %d entries for a ring of %d (capacity %d); evicted ids leaked",
			indexed, ringed, capacity)
	}
	for i := 0; i < 100*capacity-capacity; i++ {
		if _, ok := tr.Get(fmt.Sprintf("req-%d", i)); ok {
			t.Fatalf("evicted trace req-%d still reachable via byID", i)
		}
	}
}
