package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// runtime/metrics sample names the sampler sweeps. All of them exist since
// Go 1.21; a name the running toolchain does not know reads as KindBad and
// its families export zero rather than panicking, so the sampler degrades
// instead of pinning the build to one runtime version.
const (
	rmGoroutines  = "/sched/goroutines:goroutines"
	rmHeapObjects = "/memory/classes/heap/objects:bytes"
	rmHeapUnused  = "/memory/classes/heap/unused:bytes"
	rmHeapLive    = "/gc/heap/live:bytes"
	rmHeapGoal    = "/gc/heap/goal:bytes"
	rmGCCycles    = "/gc/cycles/total:gc-cycles"
	rmGCPauses    = "/gc/pauses:seconds"
	rmSchedLat    = "/sched/latencies:seconds"
	rmGCCPU       = "/cpu/classes/gc/total:cpu-seconds"
	rmTotalCPU    = "/cpu/classes/total:cpu-seconds"
)

// DefaultRuntimeSampleInterval is the minimum spacing between two
// runtime/metrics sweeps. One Prometheus scrape or export snapshot reads a
// dozen runtime families; the cache turns that into at most one sweep per
// interval instead of one stop-the-world-free-but-not-free read per family.
const DefaultRuntimeSampleInterval = 250 * time.Millisecond

// runtimeValues is one sweep's derived view, read by the registered gauge
// functions under the sampler's mutex.
type runtimeValues struct {
	goroutines    float64
	heapInuse     float64 // objects + unused: in-use heap spans, MemStats.HeapInuse equivalent
	heapLive      float64
	heapGoal      float64
	gcCycles      float64
	gcPauseP50    float64
	gcPauseP90    float64
	gcPauseP99    float64
	schedLatP50   float64
	schedLatP90   float64
	schedLatP99   float64
	gcCPUFraction float64
}

// RuntimeSampler reads the Go runtime's health counters — goroutine count,
// heap occupancy and goal, GC cycle/pause/CPU cost, scheduler latency — in a
// single runtime/metrics sweep and serves every exported family from that
// cache. It replaces per-GaugeFunc runtime.ReadMemStats calls: one scrape
// used to trigger two full mem-stat collections; now any number of families
// share one cheap sweep, re-taken at most once per MinInterval.
//
// The sweep itself is allocation-free after the first call: the sample slice
// and the histogram buffers inside it are reused in place by metrics.Read.
type RuntimeSampler struct {
	minInterval time.Duration
	now         func() time.Time // injectable for tests

	mu      sync.Mutex
	samples []metrics.Sample
	idx     map[string]int // name -> index in samples
	last    time.Time      // zero = never swept
	vals    runtimeValues

	// Previous cumulative CPU readings, for the windowed GC-CPU fraction.
	prevGCCPU, prevTotalCPU float64
	havePrevCPU             bool
}

// NewRuntimeSampler returns a sampler sweeping at most once per minInterval
// (<= 0 uses DefaultRuntimeSampleInterval).
func NewRuntimeSampler(minInterval time.Duration) *RuntimeSampler {
	if minInterval <= 0 {
		minInterval = DefaultRuntimeSampleInterval
	}
	names := []string{
		rmGoroutines, rmHeapObjects, rmHeapUnused, rmHeapLive, rmHeapGoal,
		rmGCCycles, rmGCPauses, rmSchedLat, rmGCCPU, rmTotalCPU,
	}
	s := &RuntimeSampler{
		minInterval: minInterval,
		now:         time.Now,
		samples:     make([]metrics.Sample, len(names)),
		idx:         make(map[string]int, len(names)),
	}
	for i, n := range names {
		s.samples[i].Name = n
		s.idx[n] = i
	}
	return s
}

// refresh re-sweeps when the cache is older than minInterval. Callers hold
// no lock; the first gauge read of a scrape pays for the sweep, the rest of
// the scrape reads the cache.
func (s *RuntimeSampler) refresh() {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	if !s.last.IsZero() && now.Sub(s.last) < s.minInterval {
		return
	}
	s.sweepLocked()
	s.last = now
}

// SweepNow forces an immediate sweep regardless of the interval gate —
// benchmarks and tests measure the sweep itself through this.
func (s *RuntimeSampler) SweepNow() {
	s.mu.Lock()
	s.sweepLocked()
	s.last = s.now()
	s.mu.Unlock()
}

func (s *RuntimeSampler) sweepLocked() {
	metrics.Read(s.samples)
	v := &s.vals
	v.goroutines = s.uintVal(rmGoroutines)
	v.heapInuse = s.uintVal(rmHeapObjects) + s.uintVal(rmHeapUnused)
	v.heapLive = s.uintVal(rmHeapLive)
	v.heapGoal = s.uintVal(rmHeapGoal)
	v.gcCycles = s.uintVal(rmGCCycles)
	v.gcPauseP50, v.gcPauseP90, v.gcPauseP99 = s.histQuantiles(rmGCPauses)
	v.schedLatP50, v.schedLatP90, v.schedLatP99 = s.histQuantiles(rmSchedLat)

	// GC CPU fraction over the sweep-to-sweep window: the cumulative
	// cpu-seconds classes divide cleanly into "since the last sweep", which
	// is what a dashboard (and the gc_burn health rule) wants — a process
	// that burned 80% of its CPU in GC for the last minute should read 0.8
	// now, not averaged down by a quiet past.
	gcCPU, totalCPU := s.floatVal(rmGCCPU), s.floatVal(rmTotalCPU)
	dGC, dTotal := gcCPU, totalCPU
	if s.havePrevCPU {
		dGC, dTotal = gcCPU-s.prevGCCPU, totalCPU-s.prevTotalCPU
	}
	if dTotal > 0 && dGC >= 0 {
		v.gcCPUFraction = dGC / dTotal
	} else if !s.havePrevCPU {
		v.gcCPUFraction = 0
	}
	s.prevGCCPU, s.prevTotalCPU = gcCPU, totalCPU
	s.havePrevCPU = true
}

func (s *RuntimeSampler) uintVal(name string) float64 {
	i, ok := s.idx[name]
	if !ok {
		return 0
	}
	if s.samples[i].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return float64(s.samples[i].Value.Uint64())
}

func (s *RuntimeSampler) floatVal(name string) float64 {
	i, ok := s.idx[name]
	if !ok {
		return 0
	}
	if s.samples[i].Value.Kind() != metrics.KindFloat64 {
		return 0
	}
	return s.samples[i].Value.Float64()
}

// histQuantiles estimates the 50th/90th/99th percentiles of a runtime
// Float64Histogram without allocating: one cumulative pass per quantile
// bound, bucket upper edge as the estimate (pessimistic, like the
// exposition-side histQuantile).
func (s *RuntimeSampler) histQuantiles(name string) (p50, p90, p99 float64) {
	i, ok := s.idx[name]
	if !ok || s.samples[i].Value.Kind() != metrics.KindFloat64Histogram {
		return 0, 0, 0
	}
	h := s.samples[i].Value.Float64Histogram()
	if h == nil || len(h.Counts) == 0 {
		return 0, 0, 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0, 0, 0
	}
	return runtimeHistQuantile(h, total, 0.50),
		runtimeHistQuantile(h, total, 0.90),
		runtimeHistQuantile(h, total, 0.99)
}

// runtimeHistQuantile walks one runtime histogram for one quantile.
// Buckets[i] and Buckets[i+1] bound Counts[i]; the first and last bounds may
// be infinities, which clamp to the nearest finite edge.
func runtimeHistQuantile(h *metrics.Float64Histogram, total uint64, q float64) float64 {
	rank := q * float64(total)
	var cum float64
	for i, c := range h.Counts {
		cum += float64(c)
		if cum < rank {
			continue
		}
		// Upper edge of the bucket; fall back to its lower edge when the
		// histogram's catch-all upper bound is +Inf.
		upper := h.Buckets[i+1]
		if math.IsInf(upper, 1) {
			upper = h.Buckets[i]
		}
		if upper < 0 || math.IsInf(upper, -1) || math.IsNaN(upper) {
			upper = 0
		}
		return upper
	}
	return maxFiniteBound(h)
}

// maxFiniteBound returns the largest finite bucket boundary.
func maxFiniteBound(h *metrics.Float64Histogram) float64 {
	for i := len(h.Buckets) - 1; i >= 0; i-- {
		b := h.Buckets[i]
		if !math.IsInf(b, 0) && !math.IsNaN(b) {
			return b
		}
	}
	return 0
}

// gauge registers one cached-sweep-backed gauge family member.
func (s *RuntimeSampler) gauge(reg *Registry, name, help string, read func(*runtimeValues) float64, labels ...Label) {
	reg.GaugeFunc(name, help, func() float64 {
		s.refresh()
		s.mu.Lock()
		defer s.mu.Unlock()
		return read(&s.vals)
	}, labels...)
}

// Register adds the runtime-telemetry families to reg, all served from the
// sampler's cached sweep:
//
//	narada_process_goroutines            live goroutines
//	narada_process_heap_inuse_bytes      in-use heap spans
//	narada_process_gc_cycles_total       completed GC cycles
//	narada_runtime_heap_live_bytes       bytes of live (reachable) heap
//	narada_runtime_heap_goal_bytes       next GC's heap-size trigger
//	narada_runtime_gc_cpu_fraction       fraction of CPU spent in GC since the last sweep
//	narada_runtime_gc_pause_seconds      GC stop-the-world pause quantiles (quantile label)
//	narada_runtime_sched_latency_seconds goroutine scheduling-latency quantiles
//
// The narada_process_* names predate the sampler and keep their exposition
// identity; they just stopped costing a runtime.ReadMemStats each.
func (s *RuntimeSampler) Register(reg *Registry) {
	s.gauge(reg, "narada_process_goroutines",
		"Live goroutines in the process.",
		func(v *runtimeValues) float64 { return v.goroutines })
	s.gauge(reg, "narada_process_heap_inuse_bytes",
		"Bytes in in-use heap spans.",
		func(v *runtimeValues) float64 { return v.heapInuse })
	s.gauge(reg, "narada_process_gc_cycles_total",
		"Completed GC cycles.",
		func(v *runtimeValues) float64 { return v.gcCycles })
	s.gauge(reg, "narada_runtime_heap_live_bytes",
		"Bytes of live heap at the end of the last GC mark phase.",
		func(v *runtimeValues) float64 { return v.heapLive })
	s.gauge(reg, "narada_runtime_heap_goal_bytes",
		"Heap size that triggers the next GC cycle.",
		func(v *runtimeValues) float64 { return v.heapGoal })
	s.gauge(reg, "narada_runtime_gc_cpu_fraction",
		"Fraction of available CPU spent in the garbage collector between sweeps.",
		func(v *runtimeValues) float64 { return v.gcCPUFraction })
	const pauseName = "narada_runtime_gc_pause_seconds"
	const pauseHelp = "GC stop-the-world pause latency quantiles since process start."
	s.gauge(reg, pauseName, pauseHelp, func(v *runtimeValues) float64 { return v.gcPauseP50 }, L("quantile", "0.5"))
	s.gauge(reg, pauseName, pauseHelp, func(v *runtimeValues) float64 { return v.gcPauseP90 }, L("quantile", "0.9"))
	s.gauge(reg, pauseName, pauseHelp, func(v *runtimeValues) float64 { return v.gcPauseP99 }, L("quantile", "0.99"))
	const schedName = "narada_runtime_sched_latency_seconds"
	const schedHelp = "Goroutine runnable-to-running scheduling latency quantiles since process start."
	s.gauge(reg, schedName, schedHelp, func(v *runtimeValues) float64 { return v.schedLatP50 }, L("quantile", "0.5"))
	s.gauge(reg, schedName, schedHelp, func(v *runtimeValues) float64 { return v.schedLatP90 }, L("quantile", "0.9"))
	s.gauge(reg, schedName, schedHelp, func(v *runtimeValues) float64 { return v.schedLatP99 }, L("quantile", "0.99"))
}
