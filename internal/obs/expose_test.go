package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the exact exposition text for a registry
// covering all metric kinds, so format regressions are caught byte-for-byte.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("narada_broker_frames_total", "Frames received.", L("kind", "publish"), L("broker", "b1"))
	c.Add(7)
	r.Counter("narada_broker_frames_total", "Frames received.", L("kind", "control"), L("broker", "b1")).Add(2)
	g := r.Gauge("narada_broker_links", "Active links.", L("broker", "b1"))
	g.Set(3)
	r.GaugeFunc("narada_ntptime_offset_seconds", "Clock offset.", func() float64 { return -0.004 }, L("node", "b1"))
	r.CounterFunc("narada_dedup_hits_total", "Dedup hits.", func() uint64 { return 41 }, L("cache", "request"))
	h := r.Histogram("narada_discovery_phase_seconds", "Phase latency.", []float64{0.01, 0.1, 1}, L("phase", "ping-measurement"))
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)

	const want = `# HELP narada_broker_frames_total Frames received.
# TYPE narada_broker_frames_total counter
narada_broker_frames_total{broker="b1",kind="control"} 2
narada_broker_frames_total{broker="b1",kind="publish"} 7
# HELP narada_broker_links Active links.
# TYPE narada_broker_links gauge
narada_broker_links{broker="b1"} 3
# HELP narada_dedup_hits_total Dedup hits.
# TYPE narada_dedup_hits_total counter
narada_dedup_hits_total{cache="request"} 41
# HELP narada_discovery_phase_seconds Phase latency.
# TYPE narada_discovery_phase_seconds histogram
narada_discovery_phase_seconds_bucket{phase="ping-measurement",le="0.01"} 1
narada_discovery_phase_seconds_bucket{phase="ping-measurement",le="0.1"} 3
narada_discovery_phase_seconds_bucket{phase="ping-measurement",le="1"} 3
narada_discovery_phase_seconds_bucket{phase="ping-measurement",le="+Inf"} 4
narada_discovery_phase_seconds_sum{phase="ping-measurement"} 5.105
narada_discovery_phase_seconds_count{phase="ping-measurement"} 4
# HELP narada_ntptime_offset_seconds Clock offset.
# TYPE narada_ntptime_offset_seconds gauge
narada_ntptime_offset_seconds{node="b1"} -0.004
`
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionParses walks every emitted line and checks it is a
// syntactically valid Prometheus text-format line: a comment, or
// name{labels} value with a parseable value.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("narada_a_total", "a", L("x", `quote " backslash \ done`)).Add(1)
	r.Gauge("narada_b", "b").Set(4.25)
	r.Histogram("narada_c_seconds", "c", nil).ObserveDuration(0)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		name, value, ok := splitSample(line)
		if !ok {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		base := name
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Errorf("unterminated label set: %q", line)
			}
			base = name[:i]
		}
		if !validName(base) {
			t.Errorf("invalid metric name %q in line %q", base, line)
		}
		if value != "+Inf" && value != "-Inf" && value != "NaN" {
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				t.Errorf("unparseable value %q in line %q", value, line)
			}
		}
	}
}

// splitSample splits a sample line into its series name (with labels) and
// value, honouring spaces inside quoted label values.
func splitSample(line string) (name, value string, ok bool) {
	inQuotes := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\\':
			if inQuotes {
				i++
			}
		case '"':
			inQuotes = !inQuotes
		case ' ':
			if !inQuotes {
				return line[:i], line[i+1:], true
			}
		}
	}
	return "", "", false
}

func TestMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("narada_x_total", "x").Inc()
	tr := NewTracer(4, nil)
	tr.Trace("req-1").Event("broker-respond", testTime(), A("broker", "b1"))
	mux := NewMux(r, tr)

	srv := httptest.NewServer(mux)
	defer srv.Close()

	for path, want := range map[string]string{
		"/metrics":               "narada_x_total 1",
		"/healthz":               `"status":"ok"`,
		"/debug/traces":          "broker-respond",
		"/debug/pprof/":          "profile",
		"/debug/traces?id=req-1": "req-1",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("GET %s: body does not contain %q:\n%s", path, want, body)
		}
	}
}

// TestServerShutdownNoLeak serves real traffic, shuts the telemetry server
// down gracefully, and asserts the serve goroutine (and the connections it
// spawned) are gone — the process-exit path must not leak.
func TestServerShutdownNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	reg := NewRegistry()
	reg.Counter("narada_x_total", "x").Inc()
	srv, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	resp, err := client.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The listener must be released and the serve goroutine gone.
	if _, err := client.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Fatal("server still accepting after Shutdown")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before serve, %d after shutdown", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDebugTracesByID pins the single-trace lookup: ?id= returns exactly that
// trace, and an unknown id is a JSON 404.
func TestDebugTracesByID(t *testing.T) {
	tr := NewTracer(4, nil)
	tr.Trace("req-a").Event("bdn-ack", testTime(), A("requester", "n1"))
	tr.Trace("req-b").Event("broker-respond", testTime())
	srv := httptest.NewServer(NewMux(nil, tr))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/traces?id=req-a")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var v TraceView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, body)
	}
	if v.ID != "req-a" || len(v.Spans) != 1 || v.Spans[0].Name != "bdn-ack" {
		t.Fatalf("trace = %+v, want req-a with one bdn-ack span", v)
	}
	if strings.Contains(string(body), "broker-respond") {
		t.Fatal("?id= lookup leaked another trace's spans")
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/traces?id=nope")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(body), "not found") {
		t.Fatalf("unknown id: status %d body %s", resp.StatusCode, body)
	}
}
