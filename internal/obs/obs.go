// Package obs is the fabric's telemetry layer: a dependency-free metric
// registry (counters, gauges, fixed-bucket histograms with atomic buckets),
// a hand-rolled Prometheus-text-format exposition endpoint with /healthz and
// net/http/pprof wiring, per-request discovery tracing kept in an in-memory
// ring, and shared slog construction helpers.
//
// Metric families follow the naming scheme
//
//	narada_<subsystem>_<name>_<unit>
//
// (e.g. narada_broker_egress_dropped_total, narada_discovery_phase_seconds)
// with instance identity carried in labels (broker="...", bdn="...",
// node="..."), so one registry can expose any number of in-process brokers,
// BDNs and discoverers — the testbed shares a single registry across a whole
// simulated deployment.
//
// The record path is allocation-free: handles are resolved once at component
// start-up and recording is a single atomic add (plus a CAS for histogram
// sums), so the publish fast path can be instrumented without giving back
// PR 1's zero-allocation property.
package obs

import "fmt"

// Label is one metric dimension. Families are identified by name; each
// distinct label set under a family is an independent child series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// validName reports whether s is a legal Prometheus metric or label name:
// [a-zA-Z_:][a-zA-Z0-9_:]* (colons are reserved for recording rules but
// tolerated here).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func mustValidName(kind, s string) {
	if !validName(s) {
		panic(fmt.Sprintf("obs: invalid %s name %q", kind, s))
	}
}
