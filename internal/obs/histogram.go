package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DefBuckets are the default histogram bounds, in seconds: they bracket the
// paper's timescales from sub-millisecond LAN pings up to the multi-second
// response-collection window.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// LinearBuckets returns count bounds starting at start, spaced by width.
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count bounds starting at start, each factor
// times the previous.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Histogram is a fixed-bucket histogram with atomic buckets. Observe is
// allocation-free: a linear scan over the (small, immutable) bound slice,
// one atomic bucket increment, one atomic count increment and a CAS loop for
// the running sum.
//
// Bucket semantics match Prometheus: bucket i counts observations
// v <= bounds[i]; the final bucket is the implicit +Inf catch-all.
// Exposition renders buckets cumulatively.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; immutable after creation
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// newHistogram builds a histogram over the given bounds. Bounds must be
// sorted ascending; this is checked once here, not on the record path.
func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram buckets must be strictly ascending")
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds (the unit all latency
// families use).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot returns the bucket bounds and per-bucket (non-cumulative) counts;
// the final count is the +Inf bucket. Counts are loaded individually, so a
// snapshot taken during concurrent observes may be mid-update across buckets
// — fine for exposition, which Prometheus defines as best-effort.
func (h *Histogram) Snapshot() (bounds []float64, counts []uint64) {
	counts = make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return h.bounds, counts
}
