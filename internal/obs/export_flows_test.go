package obs

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestFlowsPacketRoundTrip(t *testing.T) {
	at := time.Date(2026, 8, 7, 10, 30, 0, 123456789, time.UTC)
	flows := []FlowSnapshot{
		{Topic: "sensors/temp", PubMsgs: 900, PubBytes: 90_000, DelMsgs: 850, DelBytes: 85_000,
			Drops: [NumDropReasons]uint64{40, 9, 1}, ErrBound: 12},
		{Topic: FlowOther, DelMsgs: 7, DelBytes: 700, Drops: [NumDropReasons]uint64{3, 0, 0}},
	}
	pkt, err := DecodeExportPacket(EncodeFlowsPacket("broker-1", 5*time.Millisecond, at, flows))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if pkt.Node != "broker-1" || pkt.Offset != 5*time.Millisecond {
		t.Fatalf("header = %q %v", pkt.Node, pkt.Offset)
	}
	if !pkt.FlowsAt.Equal(at) {
		t.Fatalf("FlowsAt = %v, want %v", pkt.FlowsAt, at)
	}
	if pkt.Families != nil || pkt.Spans != nil {
		t.Fatal("flows packet decoded with spans or families")
	}
	// The decoder derives the per-reason and total convenience fields.
	want := make([]FlowSnapshot, len(flows))
	copy(want, flows)
	for i := range want {
		want[i].finishDrops()
	}
	if !reflect.DeepEqual(pkt.Flows, want) {
		t.Fatalf("flows round-trip:\n got %+v\nwant %+v", pkt.Flows, want)
	}
	if got := pkt.Flows[0]; got.DropQueue != 40 || got.DropConn != 9 || got.DropLarge != 1 || got.DropMsgs != 50 {
		t.Fatalf("derived drop fields: %+v", got)
	}
}

func TestFlowsPacketEmpty(t *testing.T) {
	pkt, err := DecodeExportPacket(EncodeFlowsPacket("b", 0, time.Unix(1, 0), nil))
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if len(pkt.Flows) != 0 {
		t.Fatalf("empty flows decoded as %+v", pkt.Flows)
	}
}

// TestExporterShipsFlows wires a Flows callback into the exporter and checks
// every metrics interval also ships a flow packet — and that an empty table
// ships nothing (no point waking the collector for zero rows).
func TestExporterShipsFlows(t *testing.T) {
	var mu sync.Mutex
	var packets [][]byte
	capture := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		packets = append(packets, append([]byte(nil), p...))
		return len(p), nil
	})

	ft := NewFlowTable(4)
	ft.Published("alpha", 64).Delivered(64)
	e := newExporterWithSink(ExporterConfig{
		Addr: "sink", Node: "b1",
		Flows:           ft.Snapshot,
		MetricsInterval: time.Hour, // only the final flush ships
	}, capture)
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	sawFlows := false
	for _, raw := range packets {
		pkt, err := DecodeExportPacket(raw)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(pkt.Flows) > 0 {
			sawFlows = true
			if pkt.Flows[0].Topic != "alpha" || pkt.Flows[0].DelMsgs != 1 {
				t.Fatalf("shipped flows = %+v", pkt.Flows)
			}
		}
	}
	if !sawFlows {
		t.Fatal("exporter with a populated flow table never shipped a flows packet")
	}

	// An exporter whose table is empty ships no flow packets at all.
	packets = packets[:0]
	empty := newExporterWithSink(ExporterConfig{
		Addr: "sink", Node: "b2",
		Flows:           NewFlowTable(4).Snapshot,
		MetricsInterval: time.Hour,
	}, capture)
	if err := empty.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for _, raw := range packets {
		pkt, err := DecodeExportPacket(raw)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(pkt.Flows) > 0 {
			t.Fatalf("empty flow table still shipped %+v", pkt.Flows)
		}
	}
}
