package core

import (
	"math/rand"
	"testing"
)

// TestDecodersNeverPanic drives every protocol decoder with random garbage:
// a hostile or corrupted datagram must produce an error, never a panic —
// brokers decode traffic straight off the wire.
func TestDecodersNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	decoders := map[string]func([]byte) error{
		"advertisement": func(b []byte) error { _, err := DecodeAdvertisement(b); return err },
		"request":       func(b []byte) error { _, err := DecodeDiscoveryRequest(b); return err },
		"response":      func(b []byte) error { _, err := DecodeDiscoveryResponse(b); return err },
		"ack":           func(b []byte) error { _, err := DecodeAck(b); return err },
		"ping":          func(b []byte) error { _, err := DecodePing(b); return err },
		"pong":          func(b []byte) error { _, err := DecodePong(b); return err },
	}
	for name, decode := range decoders {
		for trial := 0; trial < 2000; trial++ {
			n := rng.Intn(256)
			buf := make([]byte, n)
			rng.Read(buf)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: panic on %d random bytes: %v", name, n, r)
					}
				}()
				_ = decode(buf)
			}()
		}
	}
}

// TestDecodersRejectBitFlips corrupts valid encodings one byte at a time:
// every mutation must either decode to *something* structurally valid or
// error — never panic — and truncations must always error.
func TestDecodersRejectBitFlips(t *testing.T) {
	valid := map[string]struct {
		blob   []byte
		decode func([]byte) error
	}{
		"request": {
			EncodeDiscoveryRequest(&DiscoveryRequest{Requester: "r", ResponseAddr: "a/b:1",
				Protocols: []string{"tcp"}, Credentials: []byte("c")}),
			func(b []byte) error { _, err := DecodeDiscoveryRequest(b); return err },
		},
		"response": {
			EncodeDiscoveryResponse(&DiscoveryResponse{Broker: sampleBrokerInfo()}),
			func(b []byte) error { _, err := DecodeDiscoveryResponse(b); return err },
		},
	}
	for name, v := range valid {
		for i := range v.blob {
			mutated := append([]byte(nil), v.blob...)
			mutated[i] ^= 0xFF
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: panic with byte %d flipped: %v", name, i, r)
					}
				}()
				_ = v.decode(mutated)
			}()
		}
		for cut := 0; cut < len(v.blob); cut++ {
			if err := v.decode(v.blob[:cut]); err == nil {
				t.Errorf("%s: truncation at %d accepted", name, cut)
			}
		}
	}
}
