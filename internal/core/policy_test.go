package core

import (
	"testing"

	"narada/internal/uuid"
)

func req(realm string, creds []byte) *DiscoveryRequest {
	return &DiscoveryRequest{ID: uuid.New(), Requester: "n", Realm: realm, Credentials: creds}
}

func TestOpenPolicyPermitsEveryone(t *testing.T) {
	p := OpenPolicy
	if !p.Permits(req("anywhere", nil)) {
		t.Fatal("open policy denied a request")
	}
}

func TestCredentialPolicy(t *testing.T) {
	p := ResponsePolicy{RequiredCredential: []byte("sesame")}
	if p.Permits(req("x", nil)) {
		t.Fatal("missing credential permitted")
	}
	if p.Permits(req("x", []byte("wrong!"))) {
		t.Fatal("wrong credential permitted")
	}
	if p.Permits(req("x", []byte("sesam"))) {
		t.Fatal("short credential permitted")
	}
	if !p.Permits(req("x", []byte("sesame"))) {
		t.Fatal("correct credential denied")
	}
}

func TestRealmPolicy(t *testing.T) {
	p := ResponsePolicy{AllowedRealms: []string{"indiana", "umn"}}
	if !p.Permits(req("indiana", nil)) || !p.Permits(req("umn", nil)) {
		t.Fatal("allowed realm denied")
	}
	if p.Permits(req("cardiff", nil)) {
		t.Fatal("disallowed realm permitted")
	}
	if p.Permits(req("", nil)) {
		t.Fatal("empty realm permitted with realm whitelist")
	}
}

func TestRealmAndCredentialCombined(t *testing.T) {
	p := ResponsePolicy{
		AllowedRealms:      []string{"indiana"},
		RequiredCredential: []byte("k"),
	}
	if p.Permits(req("indiana", nil)) {
		t.Fatal("realm ok but missing credential permitted")
	}
	if p.Permits(req("cardiff", []byte("k"))) {
		t.Fatal("credential ok but wrong realm permitted")
	}
	if !p.Permits(req("indiana", []byte("k"))) {
		t.Fatal("fully valid request denied")
	}
}

func TestVerifierOverridesCredential(t *testing.T) {
	called := false
	p := ResponsePolicy{
		RequiredCredential: []byte("ignored"),
		Verifier: func(c []byte) bool {
			called = true
			return len(c) == 3
		},
	}
	if !p.Permits(req("x", []byte("abc"))) {
		t.Fatal("verifier-approved request denied")
	}
	if !called {
		t.Fatal("verifier not invoked")
	}
	if p.Permits(req("x", []byte("toolong"))) {
		t.Fatal("verifier-rejected request permitted")
	}
}
