package core

import (
	"testing"
	"testing/quick"
	"time"

	"narada/internal/metrics"
	"narada/internal/uuid"
)

func sampleBrokerInfo() BrokerInfo {
	return BrokerInfo{
		LogicalAddress: "broker-fsu",
		Hostname:       "pamd2.fsit.fsu.edu",
		Realm:          "fsu",
		Endpoints: []TransportEndpoint{
			{Protocol: "tcp", Address: "fsu/broker-fsu:10001"},
			{Protocol: "udp", Address: "fsu/broker-fsu:10002"},
		},
		Geo:         "Tallahassee, FL, USA",
		Institution: "Florida State University",
	}
}

func brokersEqual(a, b BrokerInfo) bool {
	if a.LogicalAddress != b.LogicalAddress || a.Hostname != b.Hostname ||
		a.Realm != b.Realm || a.Geo != b.Geo || a.Institution != b.Institution ||
		len(a.Endpoints) != len(b.Endpoints) {
		return false
	}
	for i := range a.Endpoints {
		if a.Endpoints[i] != b.Endpoints[i] {
			return false
		}
	}
	return true
}

func TestBrokerInfoEndpoint(t *testing.T) {
	b := sampleBrokerInfo()
	if b.Endpoint("udp") != "fsu/broker-fsu:10002" {
		t.Fatalf("Endpoint(udp) = %q", b.Endpoint("udp"))
	}
	if b.Endpoint("carrier-pigeon") != "" {
		t.Fatal("unknown protocol returned an endpoint")
	}
}

func TestAdvertisementRoundTrip(t *testing.T) {
	a := &Advertisement{
		Broker:   sampleBrokerInfo(),
		IssuedAt: time.Date(2005, 7, 1, 8, 0, 0, 0, time.UTC),
	}
	got, err := DecodeAdvertisement(EncodeAdvertisement(a))
	if err != nil {
		t.Fatal(err)
	}
	if !brokersEqual(got.Broker, a.Broker) || !got.IssuedAt.Equal(a.IssuedAt) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestAdvertisementRejectsGarbage(t *testing.T) {
	if _, err := DecodeAdvertisement([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDiscoveryRequestRoundTrip(t *testing.T) {
	q := &DiscoveryRequest{
		ID:           uuid.New(),
		Requester:    "client-bloomington",
		Realm:        "bloomington",
		ResponseAddr: "bloomington/client:20001",
		Protocols:    []string{"tcp", "udp"},
		Credentials:  []byte("secret"),
		IssuedAt:     time.Date(2005, 7, 1, 9, 0, 0, 0, time.UTC),
		Hops:         3,
	}
	got, err := DecodeDiscoveryRequest(EncodeDiscoveryRequest(q))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != q.ID || got.Requester != q.Requester || got.Realm != q.Realm ||
		got.ResponseAddr != q.ResponseAddr || string(got.Credentials) != "secret" ||
		!got.IssuedAt.Equal(q.IssuedAt) || got.Hops != 3 || len(got.Protocols) != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestDiscoveryRequestPropertyRoundTrip(t *testing.T) {
	f := func(id [16]byte, requester, realm, respAddr string, creds []byte, hops uint8) bool {
		q := &DiscoveryRequest{
			ID:           uuid.UUID(id),
			Requester:    requester,
			Realm:        realm,
			ResponseAddr: respAddr,
			Credentials:  creds,
			Hops:         hops,
		}
		got, err := DecodeDiscoveryRequest(EncodeDiscoveryRequest(q))
		if err != nil {
			return false
		}
		return got.ID == q.ID && got.Requester == requester &&
			got.ResponseAddr == respAddr && got.Hops == hops &&
			string(got.Credentials) == string(creds)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiscoveryResponseRoundTrip(t *testing.T) {
	p := &DiscoveryResponse{
		RequestID: uuid.New(),
		Timestamp: time.Date(2005, 7, 1, 9, 0, 1, 500, time.UTC),
		Broker:    sampleBrokerInfo(),
		Usage: metrics.Usage{
			TotalMemBytes: 512 << 20,
			UsedMemBytes:  100 << 20,
			Links:         4,
			CPULoad:       0.35,
		},
	}
	got, err := DecodeDiscoveryResponse(EncodeDiscoveryResponse(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.RequestID != p.RequestID || !got.Timestamp.Equal(p.Timestamp) ||
		!brokersEqual(got.Broker, p.Broker) || got.Usage != p.Usage {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestAckRoundTrip(t *testing.T) {
	a := &Ack{RequestID: uuid.New(), BDN: "gridservicelocator.org"}
	got, err := DecodeAck(EncodeAck(a))
	if err != nil {
		t.Fatal(err)
	}
	if got.RequestID != a.RequestID || got.BDN != a.BDN {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestPingPongRoundTrip(t *testing.T) {
	ping := &Ping{ID: uuid.New(), SentAt: time.Unix(1120212000, 42).UTC(), Seq: 7}
	gotPing, err := DecodePing(EncodePing(ping))
	if err != nil {
		t.Fatal(err)
	}
	if gotPing.ID != ping.ID || !gotPing.SentAt.Equal(ping.SentAt) || gotPing.Seq != 7 {
		t.Fatalf("ping mismatch: %+v", gotPing)
	}
	pong := &Pong{ID: ping.ID, EchoSent: ping.SentAt, Seq: 7, Responder: "broker-umn"}
	gotPong, err := DecodePong(EncodePong(pong))
	if err != nil {
		t.Fatal(err)
	}
	if gotPong.ID != pong.ID || !gotPong.EchoSent.Equal(pong.EchoSent) ||
		gotPong.Seq != 7 || gotPong.Responder != "broker-umn" {
		t.Fatalf("pong mismatch: %+v", gotPong)
	}
}

func TestDecodersRejectTruncation(t *testing.T) {
	adv := EncodeAdvertisement(&Advertisement{Broker: sampleBrokerInfo()})
	req := EncodeDiscoveryRequest(&DiscoveryRequest{ID: uuid.New(), Requester: "x"})
	resp := EncodeDiscoveryResponse(&DiscoveryResponse{RequestID: uuid.New(), Broker: sampleBrokerInfo()})
	for name, blob := range map[string][]byte{"adv": adv, "req": req, "resp": resp} {
		for _, cut := range []int{0, 1, len(blob) / 2, len(blob) - 1} {
			var err error
			switch name {
			case "adv":
				_, err = DecodeAdvertisement(blob[:cut])
			case "req":
				_, err = DecodeDiscoveryRequest(blob[:cut])
			case "resp":
				_, err = DecodeDiscoveryResponse(blob[:cut])
			}
			if err == nil {
				t.Errorf("%s truncated at %d accepted", name, cut)
			}
		}
	}
}

func BenchmarkEncodeDiscoveryResponse(b *testing.B) {
	p := &DiscoveryResponse{
		RequestID: uuid.New(),
		Timestamp: time.Now(),
		Broker:    sampleBrokerInfo(),
		Usage:     metrics.Usage{TotalMemBytes: 512 << 20, UsedMemBytes: 100 << 20, Links: 4, CPULoad: 0.3},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeDiscoveryResponse(p)
	}
}

func BenchmarkDecodeDiscoveryResponse(b *testing.B) {
	blob := EncodeDiscoveryResponse(&DiscoveryResponse{
		RequestID: uuid.New(),
		Timestamp: time.Now(),
		Broker:    sampleBrokerInfo(),
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeDiscoveryResponse(blob); err != nil {
			b.Fatal(err)
		}
	}
}
