package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"narada/internal/metrics"
	"narada/internal/uuid"
)

const mib = 1024 * 1024

func candidate(name string, latencyMs int, usage metrics.Usage) Candidate {
	return Candidate{
		Response: &DiscoveryResponse{
			RequestID: uuid.Nil,
			Broker:    BrokerInfo{LogicalAddress: name},
			Usage:     usage,
		},
		EstLatency: time.Duration(latencyMs) * time.Millisecond,
	}
}

func idleUsage() metrics.Usage {
	return metrics.Usage{TotalMemBytes: 512 * mib, UsedMemBytes: 64 * mib}
}

func TestShortlistTruncatesToTargetSize(t *testing.T) {
	var cands []Candidate
	for i := 0; i < 25; i++ {
		cands = append(cands, candidate(fmt.Sprintf("b%d", i), i, idleUsage()))
	}
	cfg := DefaultSelectionConfig()
	out := Shortlist(cands, cfg)
	if len(out) != DefaultTargetSetSize {
		t.Fatalf("target set size = %d, want %d", len(out), DefaultTargetSetSize)
	}
	// size(T) <= size(N) when fewer responses than the target size.
	small := Shortlist(cands[:3], cfg)
	if len(small) != 3 {
		t.Fatalf("small target set size = %d, want 3", len(small))
	}
}

func TestShortlistOrdersByScore(t *testing.T) {
	out := Shortlist([]Candidate{
		candidate("far", 300, idleUsage()),
		candidate("near", 5, idleUsage()),
		candidate("mid", 80, idleUsage()),
	}, DefaultSelectionConfig())
	want := []string{"near", "mid", "far"}
	for i, w := range want {
		if got := out[i].Response.Broker.LogicalAddress; got != w {
			t.Fatalf("position %d = %s, want %s (scores: %v)", i, got, w, scoresOf(out))
		}
	}
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i].Score > out[j].Score }) {
		t.Fatal("shortlist not sorted by descending score")
	}
}

func scoresOf(cs []Candidate) []float64 {
	out := make([]float64, len(cs))
	for i := range cs {
		out[i] = cs[i].Score
	}
	return out
}

func TestShortlistPrefersNewIdleBroker(t *testing.T) {
	// Paper §8 advantage 3: "a newly added broker within a cluster would be
	// preferentially utilized" because responses include the usage metric.
	busy := metrics.Usage{TotalMemBytes: 512 * mib, UsedMemBytes: 400 * mib, Links: 30, CPULoad: 0.8}
	fresh := metrics.Usage{TotalMemBytes: 512 * mib, UsedMemBytes: 32 * mib, Links: 0, CPULoad: 0.01}
	out := Shortlist([]Candidate{
		candidate("veteran", 10, busy),
		candidate("newcomer", 12, fresh), // barely farther, much less loaded
	}, DefaultSelectionConfig())
	if out[0].Response.Broker.LogicalAddress != "newcomer" {
		t.Fatalf("newcomer not preferred: scores %v", scoresOf(out))
	}
}

func TestShortlistLatencyPenaltyDisabled(t *testing.T) {
	cfg := DefaultSelectionConfig()
	cfg.LatencyPenaltyPerMs = 0
	out := Shortlist([]Candidate{
		candidate("far-idle", 500, idleUsage()),
		candidate("near-busy", 1, metrics.Usage{TotalMemBytes: 512 * mib, UsedMemBytes: 500 * mib, Links: 50, CPULoad: 1}),
	}, cfg)
	if out[0].Response.Broker.LogicalAddress != "far-idle" {
		t.Fatal("with zero latency penalty, usage alone must rank")
	}
}

func TestShortlistDoesNotMutateInput(t *testing.T) {
	in := []Candidate{
		candidate("a", 100, idleUsage()),
		candidate("b", 1, idleUsage()),
	}
	_ = Shortlist(in, DefaultSelectionConfig())
	if in[0].Response.Broker.LogicalAddress != "a" || in[0].Score != 0 {
		t.Fatal("input slice mutated")
	}
}

func TestShortlistZeroTargetSizeDefaults(t *testing.T) {
	var cands []Candidate
	for i := 0; i < 15; i++ {
		cands = append(cands, candidate(fmt.Sprintf("b%d", i), i, idleUsage()))
	}
	out := Shortlist(cands, SelectionConfig{Weights: metrics.DefaultWeights()})
	if len(out) != DefaultTargetSetSize {
		t.Fatalf("len = %d, want default %d", len(out), DefaultTargetSetSize)
	}
}

func TestPickByPingLowestRTT(t *testing.T) {
	targets := []Candidate{
		candidate("a", 10, idleUsage()),
		candidate("b", 10, idleUsage()),
		candidate("c", 10, idleUsage()),
	}
	targets[0].PingRTT, targets[0].PingCount = 40*time.Millisecond, 3
	targets[1].PingRTT, targets[1].PingCount = 12*time.Millisecond, 3
	targets[2].PingRTT, targets[2].PingCount = 90*time.Millisecond, 2
	idx, ok := PickByPing(targets)
	if !ok || idx != 1 {
		t.Fatalf("PickByPing = (%d, %v), want (1, true)", idx, ok)
	}
}

func TestPickByPingSkipsSilentBrokers(t *testing.T) {
	// "the response's arrival or the lack thereof provides a good indicator"
	targets := []Candidate{
		candidate("silent", 1, idleUsage()),
		candidate("heard", 50, idleUsage()),
	}
	targets[1].PingRTT, targets[1].PingCount = 70*time.Millisecond, 1
	idx, ok := PickByPing(targets)
	if !ok || idx != 1 {
		t.Fatalf("PickByPing = (%d, %v), want (1, true)", idx, ok)
	}
}

func TestPickByPingAllSilentFallsBackToScore(t *testing.T) {
	targets := []Candidate{
		candidate("best-score", 1, idleUsage()),
		candidate("second", 9, idleUsage()),
	}
	idx, ok := PickByPing(targets)
	if ok {
		t.Fatal("ok = true with no pongs")
	}
	if idx != 0 {
		t.Fatalf("idx = %d, want 0 (shortlist head)", idx)
	}
}

func TestPickByPingEmpty(t *testing.T) {
	idx, ok := PickByPing(nil)
	if idx != -1 || ok {
		t.Fatalf("PickByPing(nil) = (%d, %v)", idx, ok)
	}
}

func TestEstimateLatency(t *testing.T) {
	base := time.Date(2005, 7, 1, 12, 0, 0, 0, time.UTC)
	if got := EstimateLatency(base, base.Add(35*time.Millisecond)); got != 35*time.Millisecond {
		t.Fatalf("EstimateLatency = %v", got)
	}
	// Clock residual pushing the estimate negative is clamped at zero.
	if got := EstimateLatency(base, base.Add(-5*time.Millisecond)); got != 0 {
		t.Fatalf("negative latency not clamped: %v", got)
	}
}

func TestShortlistStability(t *testing.T) {
	// Equal-scored candidates keep their arrival order (stable sort), which
	// keeps selection deterministic for reproducible experiments.
	var cands []Candidate
	for i := 0; i < 6; i++ {
		cands = append(cands, candidate(fmt.Sprintf("tied%d", i), 10, idleUsage()))
	}
	out := Shortlist(cands, DefaultSelectionConfig())
	for i := range out {
		if out[i].Response.Broker.LogicalAddress != fmt.Sprintf("tied%d", i) {
			t.Fatalf("stability violated at %d: %s", i, out[i].Response.Broker.LogicalAddress)
		}
	}
}

func TestShortlistRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(30) + 1
		cands := make([]Candidate, n)
		for i := range cands {
			cands[i] = candidate(fmt.Sprintf("b%d", i), rng.Intn(400), metrics.Usage{
				TotalMemBytes: uint64(rng.Intn(2048)+1) * mib,
				UsedMemBytes:  uint64(rng.Intn(512)) * mib,
				Links:         rng.Intn(50),
				CPULoad:       rng.Float64(),
			})
		}
		size := rng.Intn(15) + 1
		cfg := DefaultSelectionConfig()
		cfg.TargetSetSize = size
		out := Shortlist(cands, cfg)
		if want := min(size, n); len(out) != want {
			t.Fatalf("len = %d, want %d", len(out), want)
		}
		for i := 1; i < len(out); i++ {
			if out[i].Score > out[i-1].Score {
				t.Fatalf("not sorted at %d", i)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
