package core

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestBreakdownTotalsAndPercents(t *testing.T) {
	var b Breakdown
	b.Set(PhaseRequestIssue, 100*time.Millisecond)
	b.Set(PhaseWaitResponses, 800*time.Millisecond)
	b.Set(PhaseShortlist, 10*time.Millisecond)
	b.Set(PhasePing, 80*time.Millisecond)
	b.Set(PhaseDecide, 10*time.Millisecond)

	if b.Total() != time.Second {
		t.Fatalf("Total = %v", b.Total())
	}
	if got := b.Percent(PhaseWaitResponses); math.Abs(got-80) > 1e-9 {
		t.Fatalf("wait percent = %v, want 80", got)
	}
	sum := 0.0
	for _, p := range Phases() {
		sum += b.Percent(p)
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Fatalf("percentages sum to %v", sum)
	}
}

func TestBreakdownEmpty(t *testing.T) {
	var b Breakdown
	if b.Total() != 0 {
		t.Fatal("empty breakdown has nonzero total")
	}
	if b.Percent(PhasePing) != 0 {
		t.Fatal("empty breakdown has nonzero percent")
	}
}

func TestBreakdownAdd(t *testing.T) {
	var a, b Breakdown
	a.Set(PhasePing, 10*time.Millisecond)
	b.Set(PhasePing, 5*time.Millisecond)
	b.Set(PhaseDecide, 1*time.Millisecond)
	a.Add(&b)
	if a.Get(PhasePing) != 15*time.Millisecond || a.Get(PhaseDecide) != time.Millisecond {
		t.Fatalf("Add wrong: %v", a)
	}
}

func TestBreakdownOutOfRange(t *testing.T) {
	var b Breakdown
	b.Set(Phase(-1), time.Second)
	b.Set(Phase(99), time.Second)
	if b.Total() != 0 {
		t.Fatal("out-of-range Set mutated the breakdown")
	}
	if b.Get(Phase(-1)) != 0 || b.Get(Phase(99)) != 0 {
		t.Fatal("out-of-range Get nonzero")
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseWaitResponses.String() != "wait-initial-responses" {
		t.Fatalf("String = %q", PhaseWaitResponses.String())
	}
	if !strings.Contains(Phase(42).String(), "42") {
		t.Fatalf("unknown phase String = %q", Phase(42).String())
	}
}

func TestBreakdownString(t *testing.T) {
	var b Breakdown
	b.Set(PhaseWaitResponses, time.Second)
	s := b.String()
	if !strings.Contains(s, "wait-initial-responses") || !strings.Contains(s, "total") {
		t.Fatalf("String missing content:\n%s", s)
	}
}

func TestPhasesOrdered(t *testing.T) {
	ps := Phases()
	if len(ps) != int(phaseCount) {
		t.Fatalf("Phases len = %d", len(ps))
	}
	for i, p := range ps {
		if int(p) != i {
			t.Fatalf("phase %d out of order", i)
		}
	}
}
