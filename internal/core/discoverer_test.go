package core

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"narada/internal/event"
	"narada/internal/metrics"
	"narada/internal/ntptime"
	"narada/internal/simnet"
	"narada/internal/transport"
	"narada/internal/uuid"
)

// fakeBroker is a minimal scripted responder: it answers discovery requests
// arriving on its UDP endpoint and echoes pings, without the full broker
// machinery — letting these tests exercise the Discoverer in isolation.
type fakeBroker struct {
	name   string
	node   *transport.SimNode
	pc     transport.PacketConn
	usage  metrics.Usage
	mute   bool // do not answer discovery requests
	noPong bool // do not answer pings
}

func startFakeBroker(t *testing.T, net *simnet.Network, site, name string) *fakeBroker {
	t.Helper()
	node := transport.NewSimNode(net, site, name, 0)
	pc, err := node.ListenPacket(0)
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeBroker{name: name, node: node, pc: pc,
		usage: metrics.Usage{TotalMemBytes: 1 << 29, UsedMemBytes: 1 << 26}}
	go f.serve()
	t.Cleanup(func() { _ = pc.Close() })
	return f
}

func (f *fakeBroker) info() BrokerInfo {
	return BrokerInfo{
		LogicalAddress: f.name,
		Realm:          f.node.Site(),
		Endpoints: []TransportEndpoint{
			{Protocol: "udp", Address: f.pc.LocalAddr()},
		},
	}
}

func (f *fakeBroker) serve() {
	for {
		payload, from, err := f.pc.Recv()
		if err != nil {
			return
		}
		ev, err := event.Decode(payload)
		if err != nil {
			continue
		}
		switch ev.Type {
		case event.TypeDiscoveryRequest:
			if f.mute {
				continue
			}
			req, err := DecodeDiscoveryRequest(ev.Payload)
			if err != nil {
				continue
			}
			resp := &DiscoveryResponse{
				RequestID: req.ID,
				Timestamp: f.node.Clock().Now(),
				Broker:    f.info(),
				Usage:     f.usage,
			}
			reply := event.New(event.TypeDiscoveryResponse, "", EncodeDiscoveryResponse(resp))
			_ = f.pc.Send(req.ResponseAddr, event.Encode(reply))
		case event.TypePing:
			if f.noPong {
				continue
			}
			ping, err := DecodePing(ev.Payload)
			if err != nil {
				continue
			}
			pong := &Pong{ID: ping.ID, EchoSent: ping.SentAt, Seq: ping.Seq, Responder: f.name}
			reply := event.New(event.TypePong, "", EncodePong(pong))
			_ = f.pc.Send(from, event.Encode(reply))
		}
	}
}

// silentBDN accepts request streams; it acks only after `ignoreFirst`
// requests have been swallowed, exercising the retransmission path.
type silentBDN struct {
	name        string
	listener    transport.Listener
	ignoreFirst int
	forwardTo   []*fakeBroker
}

func startSilentBDN(t *testing.T, net *simnet.Network, ignoreFirst int, brokers ...*fakeBroker) *silentBDN {
	t.Helper()
	node := transport.NewSimNode(net, simnet.SiteBloomington, "silent-bdn", 0)
	l, err := node.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	s := &silentBDN{name: "silent-bdn", listener: l, ignoreFirst: ignoreFirst, forwardTo: brokers}
	go s.serve(node)
	t.Cleanup(func() { _ = l.Close() })
	return s
}

func (s *silentBDN) serve(node *transport.SimNode) {
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			swallowed := 0
			for {
				frame, err := conn.Recv()
				if err != nil {
					return
				}
				ev, err := event.Decode(frame)
				if err != nil || ev.Type != event.TypeDiscoveryRequest {
					continue
				}
				if swallowed < s.ignoreFirst {
					swallowed++
					continue
				}
				req, err := DecodeDiscoveryRequest(ev.Payload)
				if err != nil {
					continue
				}
				ack := event.New(event.TypeDiscoveryAck, "", EncodeAck(&Ack{RequestID: req.ID, BDN: s.name}))
				_ = conn.Send(event.Encode(ack))
				// Forward over UDP to the fake brokers.
				pc, err := node.ListenPacket(0)
				if err != nil {
					continue
				}
				for _, b := range s.forwardTo {
					_ = pc.Send(b.pc.LocalAddr(), frame)
				}
				_ = pc.Close()
			}
		}()
	}
}

func newDiscoverer(t *testing.T, net *simnet.Network, cfg Config) *Discoverer {
	t.Helper()
	node := transport.NewSimNode(net, simnet.SiteBloomington, "client-"+uuid.New().String()[:8], 0)
	ntp := ntptime.NewService(node.Clock(), 0, rand.New(rand.NewSource(1)))
	ntp.InitImmediately()
	return NewDiscoverer(node, ntp, cfg)
}

func fastNet(seed int64) *simnet.Network {
	return simnet.NewPaperWAN(simnet.Config{Scale: 300, Seed: seed})
}

func TestDiscoverRetransmitsUntilAck(t *testing.T) {
	net := fastNet(1)
	b := startFakeBroker(t, net, simnet.SiteIndianapolis, "fb1")
	bdn := startSilentBDN(t, net, 2, b) // swallow 2 sends, ack the 3rd

	cfg := Config{
		BDNAddrs:       []string{bdn.listener.Addr()},
		CollectWindow:  800 * time.Millisecond,
		MaxResponses:   1,
		AckTimeout:     200 * time.Millisecond,
		MaxRetransmits: 3,
		PingWindow:     400 * time.Millisecond,
	}
	d := newDiscoverer(t, net, cfg)
	res, err := d.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Retransmits != 2 {
		t.Fatalf("retransmits = %d, want 2", res.Retransmits)
	}
	if res.Selected.LogicalAddress != "fb1" {
		t.Fatalf("selected %s", res.Selected.LogicalAddress)
	}
}

func TestDiscoverGivesUpAfterMaxRetransmits(t *testing.T) {
	net := fastNet(2)
	b := startFakeBroker(t, net, simnet.SiteIndianapolis, "fb1")
	bdn := startSilentBDN(t, net, 100, b) // never acks

	cfg := Config{
		BDNAddrs:       []string{bdn.listener.Addr()},
		CollectWindow:  300 * time.Millisecond,
		AckTimeout:     150 * time.Millisecond,
		MaxRetransmits: 2,
	}
	d := newDiscoverer(t, net, cfg)
	if _, err := d.Discover(); !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}

func TestDiscoverSeededTargetSet(t *testing.T) {
	// A node can be primed with a persisted target set and discover with no
	// BDN and no multicast at all.
	net := fastNet(3)
	b1 := startFakeBroker(t, net, simnet.SiteIndianapolis, "fb1")
	b2 := startFakeBroker(t, net, simnet.SiteCardiff, "fb2")

	cfg := Config{
		CollectWindow: 800 * time.Millisecond,
		MaxResponses:  2,
		PingWindow:    500 * time.Millisecond,
	}
	d := newDiscoverer(t, net, cfg)
	d.SeedTargetSet([]BrokerInfo{b1.info(), b2.info()})
	res, err := d.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Via != ViaCached {
		t.Fatalf("Via = %s", res.Via)
	}
	if res.Selected.LogicalAddress != "fb1" {
		t.Fatalf("selected %s, want the near broker", res.Selected.LogicalAddress)
	}
	if len(d.LastTargetSet()) == 0 {
		t.Fatal("target set not refreshed")
	}
}

func TestDiscoverPonglessBrokerNotSelected(t *testing.T) {
	// A broker that answers discovery but whose pings vanish must lose to a
	// pinging broker even if farther: "the response's arrival or the lack
	// thereof provides a good indicator".
	net := fastNet(4)
	ghost := startFakeBroker(t, net, simnet.SiteIndianapolis, "ghost")
	ghost.noPong = true
	real := startFakeBroker(t, net, simnet.SiteFSU, "real")

	cfg := Config{
		CollectWindow: 800 * time.Millisecond,
		MaxResponses:  2,
		PingWindow:    400 * time.Millisecond,
	}
	d := newDiscoverer(t, net, cfg)
	d.SeedTargetSet([]BrokerInfo{ghost.info(), real.info()})
	res, err := d.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if !res.PingDecided {
		t.Fatal("expected a ping-driven decision")
	}
	if res.Selected.LogicalAddress != "real" {
		t.Fatalf("selected %s, want real", res.Selected.LogicalAddress)
	}
}

func TestDiscoverAllPongless(t *testing.T) {
	net := fastNet(5)
	b := startFakeBroker(t, net, simnet.SiteIndianapolis, "fb")
	b.noPong = true
	cfg := Config{
		CollectWindow: 500 * time.Millisecond,
		MaxResponses:  1,
		PingWindow:    300 * time.Millisecond,
	}
	d := newDiscoverer(t, net, cfg)
	d.SeedTargetSet([]BrokerInfo{b.info()})
	res, err := d.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if res.PingDecided {
		t.Fatal("PingDecided true with no pongs")
	}
	if res.Selected.LogicalAddress != "fb" {
		t.Fatalf("selected %s", res.Selected.LogicalAddress)
	}
}

func TestDiscoverNoResponses(t *testing.T) {
	net := fastNet(6)
	mute := startFakeBroker(t, net, simnet.SiteIndianapolis, "mute")
	mute.mute = true
	cfg := Config{CollectWindow: 300 * time.Millisecond}
	d := newDiscoverer(t, net, cfg)
	d.SeedTargetSet([]BrokerInfo{mute.info()})
	if _, err := d.Discover(); !errors.Is(err, ErrNoResponses) {
		t.Fatalf("err = %v, want ErrNoResponses", err)
	}
}

func TestDiscoverWithUnsyncedNTP(t *testing.T) {
	// Before NTP init completes, discovery must still work (latency
	// estimates degrade; selection still ping-driven).
	net := fastNet(7)
	b := startFakeBroker(t, net, simnet.SiteIndianapolis, "fb")
	node := transport.NewSimNode(net, simnet.SiteBloomington, "unsynced", 0)
	ntp := ntptime.NewService(node.Clock(), 0, nil) // never initialized
	cfg := Config{CollectWindow: 800 * time.Millisecond, MaxResponses: 1,
		PingWindow: 400 * time.Millisecond}
	cfg.fillDefaults()
	d := NewDiscoverer(node, ntp, cfg)
	d.SeedTargetSet([]BrokerInfo{b.info()})
	res, err := d.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected.LogicalAddress != "fb" {
		t.Fatalf("selected %s", res.Selected.LogicalAddress)
	}
}

func TestConfigDefaultsFilled(t *testing.T) {
	d := newDiscoverer(t, fastNet(8), Config{})
	cfg := d.Config()
	if cfg.CollectWindow != DefaultCollectWindow ||
		cfg.Selection.TargetSetSize != DefaultTargetSetSize ||
		cfg.PingCount != DefaultPingCount ||
		cfg.AckTimeout != DefaultAckTimeout {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
	if cfg.Selection.Weights == (metrics.Weights{}) {
		t.Fatal("weights not defaulted")
	}
	if len(cfg.Protocols) == 0 {
		t.Fatal("protocols not defaulted")
	}
}
