package core_test

import (
	"fmt"
	"time"

	"narada/internal/core"
	"narada/internal/metrics"
)

func ExampleShortlist() {
	mib := uint64(1024 * 1024)
	candidates := []core.Candidate{
		{
			Response: &core.DiscoveryResponse{
				Broker: core.BrokerInfo{LogicalAddress: "overloaded-near"},
				Usage: metrics.Usage{TotalMemBytes: 512 * mib,
					UsedMemBytes: 490 * mib, Links: 45, CPULoad: 0.95},
			},
			EstLatency: 5 * time.Millisecond,
		},
		{
			Response: &core.DiscoveryResponse{
				Broker: core.BrokerInfo{LogicalAddress: "fresh-nearby"},
				Usage: metrics.Usage{TotalMemBytes: 512 * mib,
					UsedMemBytes: 40 * mib, Links: 2, CPULoad: 0.05},
			},
			EstLatency: 9 * time.Millisecond,
		},
	}
	target := core.Shortlist(candidates, core.DefaultSelectionConfig())
	fmt.Println(target[0].Response.Broker.LogicalAddress)
	// Output: fresh-nearby
}

func ExamplePickByPing() {
	targets := []core.Candidate{
		{Response: &core.DiscoveryResponse{Broker: core.BrokerInfo{LogicalAddress: "a"}},
			PingRTT: 42 * time.Millisecond, PingCount: 3},
		{Response: &core.DiscoveryResponse{Broker: core.BrokerInfo{LogicalAddress: "b"}},
			PingRTT: 11 * time.Millisecond, PingCount: 3},
		{Response: &core.DiscoveryResponse{Broker: core.BrokerInfo{LogicalAddress: "silent"}}},
	}
	idx, measured := core.PickByPing(targets)
	fmt.Println(targets[idx].Response.Broker.LogicalAddress, measured)
	// Output: b true
}
