// Package core implements the paper's primary contribution: the broker
// discovery scheme for distributed publish/subscribe messaging
// infrastructures. It defines the protocol messages (broker advertisements,
// discovery requests/responses, acknowledgements and UDP pings), the
// response-processing pipeline (latency estimation from NTP timestamps,
// usage-metric weighting, target-set shortlisting, ping refinement) and the
// Discoverer — the client engine that drives a complete discovery, with
// multicast fallback and a cached last-target-set for BDN-less rediscovery.
package core

import (
	"fmt"
	"time"

	"narada/internal/metrics"
	"narada/internal/uuid"
	"narada/internal/wire"
)

// TransportEndpoint describes one way to reach a broker.
type TransportEndpoint struct {
	Protocol string // "tcp", "udp"
	Address  string // transport address peers can dial
}

// BrokerInfo is the broker process information carried in advertisements and
// discovery responses: "the hostname/ipaddress of the responding broker, the
// communication protocols supported and port information associated with each
// of these supported protocols", plus the NB logical address and, if
// provided, geographical and institutional information.
type BrokerInfo struct {
	LogicalAddress string // NaradaBrokering logical address (unique broker id)
	Hostname       string
	Realm          string // network realm (site) the broker lives in
	Endpoints      []TransportEndpoint
	Geo            string // optional geographical information
	Institution    string // optional institutional information
}

// Endpoint returns the address for the requested protocol ("" when absent).
func (b *BrokerInfo) Endpoint(protocol string) string {
	for _, e := range b.Endpoints {
		if e.Protocol == protocol {
			return e.Address
		}
	}
	return ""
}

func (b *BrokerInfo) encode(w *wire.Writer) {
	w.String(b.LogicalAddress)
	w.String(b.Hostname)
	w.String(b.Realm)
	w.Uvarint(uint64(len(b.Endpoints)))
	for _, e := range b.Endpoints {
		w.String(e.Protocol)
		w.String(e.Address)
	}
	w.String(b.Geo)
	w.String(b.Institution)
}

func decodeBrokerInfo(r *wire.Reader) BrokerInfo {
	b := BrokerInfo{
		LogicalAddress: r.String(),
		Hostname:       r.String(),
		Realm:          r.String(),
	}
	n := r.Uvarint()
	if r.Err() != nil || n > wire.MaxListLen {
		return b
	}
	for i := uint64(0); i < n; i++ {
		b.Endpoints = append(b.Endpoints, TransportEndpoint{
			Protocol: r.String(),
			Address:  r.String(),
		})
	}
	b.Geo = r.String()
	b.Institution = r.String()
	return b
}

// Advertisement is a broker's registration with a BDN (paper §2.2): issued
// directly to configured BDNs and/or published on the public advertisement
// topic that all BDNs subscribe to.
type Advertisement struct {
	Broker   BrokerInfo
	IssuedAt time.Time // NTP UTC at the broker
	// TTL is how long the registration stays valid at a BDN before the
	// broker must refresh it (0 = never expires). Registration freshness is
	// a protocol concern: a crashed broker's advertisement must age out so
	// dead brokers stop appearing in target sets.
	TTL time.Duration
}

// EncodeAdvertisement serialises an advertisement body.
func EncodeAdvertisement(a *Advertisement) []byte {
	w := wire.NewWriter(128)
	a.Broker.encode(w)
	w.Time(a.IssuedAt)
	w.Duration(a.TTL)
	return w.Bytes()
}

// DecodeAdvertisement parses an advertisement body.
func DecodeAdvertisement(b []byte) (*Advertisement, error) {
	r := wire.NewReader(b)
	a := &Advertisement{Broker: decodeBrokerInfo(r), IssuedAt: r.Time(), TTL: r.Duration()}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("core: advertisement: %w", err)
	}
	return a, nil
}

// DiscoveryRequest signifies that an entity is interested in connecting to
// the nearest available broker (paper §3). The ResponseAddr is the UDP
// endpoint brokers send their responses to.
type DiscoveryRequest struct {
	ID           uuid.UUID // unique request identity (idempotency, correlation)
	Requester    string    // hostname / logical name of the requesting node
	Realm        string    // network realm of the requester
	ResponseAddr string    // UDP address for discovery responses
	Protocols    []string  // transport protocols the requester can speak
	Credentials  []byte    // optional credentials for authorized access
	IssuedAt     time.Time // NTP UTC at the requester
	Hops         uint8     // dissemination hop count (diagnostics)
}

// EncodeDiscoveryRequest serialises a request body.
func EncodeDiscoveryRequest(q *DiscoveryRequest) []byte {
	w := wire.NewWriter(128)
	w.Bytes16([16]byte(q.ID))
	w.String(q.Requester)
	w.String(q.Realm)
	w.String(q.ResponseAddr)
	w.StringList(q.Protocols)
	w.BytesField(q.Credentials)
	w.Time(q.IssuedAt)
	w.Byte(q.Hops)
	return w.Bytes()
}

// DecodeDiscoveryRequest parses a request body.
func DecodeDiscoveryRequest(b []byte) (*DiscoveryRequest, error) {
	r := wire.NewReader(b)
	q := &DiscoveryRequest{
		ID:           uuid.UUID(r.Bytes16()),
		Requester:    r.String(),
		Realm:        r.String(),
		ResponseAddr: r.String(),
		Protocols:    r.StringList(),
		Credentials:  r.BytesField(),
		IssuedAt:     r.Time(),
		Hops:         r.Byte(),
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("core: discovery request: %w", err)
	}
	return q, nil
}

// DiscoveryResponse is a broker's answer (paper §5.1): the request UUID, the
// broker's NTP timestamp (for latency estimation), the broker process
// information (for connecting) and the usage metrics (for load-aware
// selection). It travels over UDP.
type DiscoveryResponse struct {
	RequestID uuid.UUID
	Timestamp time.Time // NTP UTC at the responding broker
	Broker    BrokerInfo
	Usage     metrics.Usage
}

// EncodeDiscoveryResponse serialises a response body.
func EncodeDiscoveryResponse(p *DiscoveryResponse) []byte {
	w := wire.NewWriter(160)
	w.Bytes16([16]byte(p.RequestID))
	w.Time(p.Timestamp)
	p.Broker.encode(w)
	p.Usage.Encode(w)
	return w.Bytes()
}

// DecodeDiscoveryResponse parses a response body.
func DecodeDiscoveryResponse(b []byte) (*DiscoveryResponse, error) {
	r := wire.NewReader(b)
	p := &DiscoveryResponse{
		RequestID: uuid.UUID(r.Bytes16()),
		Timestamp: r.Time(),
		Broker:    decodeBrokerInfo(r),
		Usage:     metrics.DecodeUsage(r),
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("core: discovery response: %w", err)
	}
	return p, nil
}

// Ack is the BDN's timely acknowledgement of a discovery request (paper §3);
// absence of an Ack drives the requester's retransmission.
type Ack struct {
	RequestID uuid.UUID
	BDN       string // acknowledging BDN's name
}

// EncodeAck serialises an acknowledgement body.
func EncodeAck(a *Ack) []byte {
	w := wire.NewWriter(32)
	w.Bytes16([16]byte(a.RequestID))
	w.String(a.BDN)
	return w.Bytes()
}

// DecodeAck parses an acknowledgement body.
func DecodeAck(b []byte) (*Ack, error) {
	r := wire.NewReader(b)
	a := &Ack{RequestID: uuid.UUID(r.Bytes16()), BDN: r.String()}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("core: ack: %w", err)
	}
	return a, nil
}

// Ping is the UDP probe used to measure precise network delay to target-set
// brokers (paper §6): "This ping request contains the timestamp at the
// requesting node at the instant the ping request is sent."
type Ping struct {
	ID     uuid.UUID
	SentAt time.Time // requester's local clock, echoed back verbatim
	Seq    uint32    // sequence within a multi-ping RTT average
}

// EncodePing serialises a ping body.
func EncodePing(p *Ping) []byte {
	w := wire.NewWriter(40)
	w.Bytes16([16]byte(p.ID))
	w.Time(p.SentAt)
	w.Uvarint(uint64(p.Seq))
	return w.Bytes()
}

// DecodePing parses a ping body.
func DecodePing(b []byte) (*Ping, error) {
	r := wire.NewReader(b)
	p := &Ping{ID: uuid.UUID(r.Bytes16()), SentAt: r.Time(), Seq: uint32(r.Uvarint())}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("core: ping: %w", err)
	}
	return p, nil
}

// Pong echoes a Ping; the requester computes RTT by subtracting the echoed
// timestamp from its local clock, so no clock agreement is needed.
type Pong struct {
	ID        uuid.UUID
	EchoSent  time.Time // Ping.SentAt echoed verbatim
	Seq       uint32
	Responder string // broker logical address
}

// EncodePong serialises a pong body.
func EncodePong(p *Pong) []byte {
	w := wire.NewWriter(48)
	w.Bytes16([16]byte(p.ID))
	w.Time(p.EchoSent)
	w.Uvarint(uint64(p.Seq))
	w.String(p.Responder)
	return w.Bytes()
}

// DecodePong parses a pong body.
func DecodePong(b []byte) (*Pong, error) {
	r := wire.NewReader(b)
	p := &Pong{
		ID:        uuid.UUID(r.Bytes16()),
		EchoSent:  r.Time(),
		Seq:       uint32(r.Uvarint()),
		Responder: r.String(),
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("core: pong: %w", err)
	}
	return p, nil
}
